// Package hpxgo's root benchmark suite maps one testing.B benchmark to each
// table and figure of the paper. Each benchmark runs a scaled-down
// representative measurement of its experiment and reports the figure's
// metric (message rate, one-way latency, or steps/s) via b.ReportMetric.
// The full multi-series sweeps that regenerate entire figures live in
// cmd/experiments.
package hpxgo

import (
	"testing"

	"hpxgo/internal/bench"
	"hpxgo/internal/parcelport"
)

// --- Tables ---

func BenchmarkTable1Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(parcelport.Table1()) != 11 {
			b.Fatal("Table 1 must list 11 configurations")
		}
		_ = bench.Table1Text()
	}
}

func BenchmarkTable2ExpanseProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.TableSystemText(bench.Expanse)
	}
}

func BenchmarkTable3RostamProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.TableSystemText(bench.Rostam)
	}
}

// --- Microbenchmarks: message rate (Figs 1-6) ---

// msgRate runs one unlimited-injection message-rate measurement and reports
// the achieved message rate.
func msgRate(b *testing.B, cfg string, size, batch, total int) {
	b.Helper()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := bench.MessageRate(cfg, bench.MsgRateParams{
			Size: size, Batch: batch, Total: total,
			Workers: bench.Expanse.WorkersPerLocality,
			Fabric:  bench.Expanse.Fabric(2),
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.MsgRate
	}
	b.ReportMetric(rate, "msgs/s")
	b.ReportMetric(0, "ns/op") // wall time is not the metric here
}

func BenchmarkFig1MessageRate8B_MPIvsLCI_lci(b *testing.B) {
	msgRate(b, "lci_psr_cq_pin_i", 8, 100, 5000)
}

func BenchmarkFig1MessageRate8B_MPIvsLCI_mpi(b *testing.B) {
	msgRate(b, "mpi_i", 8, 100, 5000)
}

func BenchmarkFig2MessageRate8B_LCIVariants_mt(b *testing.B) {
	msgRate(b, "lci_psr_cq_mt_i", 8, 100, 5000)
}

func BenchmarkFig3PeakRate8B_sr_sy(b *testing.B) {
	msgRate(b, "lci_sr_sy_mt_i", 8, 100, 5000)
}

func BenchmarkFig4MessageRate16K_MPIvsLCI_lci(b *testing.B) {
	msgRate(b, "lci_psr_cq_pin_i", 16*1024, 10, 500)
}

func BenchmarkFig4MessageRate16K_MPIvsLCI_mpi(b *testing.B) {
	msgRate(b, "mpi_i", 16*1024, 10, 500)
}

func BenchmarkFig5MessageRate16K_LCIVariants_sy(b *testing.B) {
	msgRate(b, "lci_psr_sy_pin_i", 16*1024, 10, 500)
}

func BenchmarkFig6PeakRate16K_aggregated(b *testing.B) {
	msgRate(b, "lci_psr_cq_pin", 16*1024, 10, 500)
}

// --- Microbenchmarks: latency (Figs 7-9) ---

// latency runs one ping-pong measurement and reports one-way latency.
func latency(b *testing.B, cfg string, size, window int) {
	b.Helper()
	var us float64
	for i := 0; i < b.N; i++ {
		v, err := bench.Latency(cfg, bench.LatencyParams{
			Size: size, Window: window, Steps: 100,
			Workers: bench.Expanse.WorkersPerLocality,
			Fabric:  bench.Expanse.Fabric(2),
		})
		if err != nil {
			b.Fatal(err)
		}
		us = v
	}
	b.ReportMetric(us, "us/msg")
}

func BenchmarkFig7LatencyVsSize_8B_lci(b *testing.B)    { latency(b, "lci_psr_cq_pin_i", 8, 1) }
func BenchmarkFig7LatencyVsSize_64K_lci(b *testing.B)   { latency(b, "lci_psr_cq_pin_i", 64*1024, 1) }
func BenchmarkFig7LatencyVsSize_64K_mpi(b *testing.B)   { latency(b, "mpi_i", 64*1024, 1) }
func BenchmarkFig8LatencyWindow8B_w16_lci(b *testing.B) { latency(b, "lci_psr_cq_pin_i", 8, 16) }
func BenchmarkFig8LatencyWindow8B_w16_mpi(b *testing.B) { latency(b, "mpi_i", 8, 16) }
func BenchmarkFig9LatencyWindow16K_w16_lci(b *testing.B) {
	latency(b, "lci_psr_cq_pin_i", 16*1024, 16)
}
func BenchmarkFig9LatencyWindow16K_w16_mpi(b *testing.B) { latency(b, "mpi_i", 16*1024, 16) }

// --- Application benchmark (Figs 10-11, §3.1 ablation) ---

// octo runs one Octo-Tiger strong-scaling point and reports steps/s.
func octo(b *testing.B, cfg string, plat bench.Platform, nodes, level int) {
	b.Helper()
	var sps float64
	for i := 0; i < b.N; i++ {
		v, err := bench.OctoTiger(cfg, bench.OctoParams{
			Platform: plat, Nodes: nodes, Level: level, Steps: 1, Subgrid: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		sps = v
	}
	b.ReportMetric(sps, "steps/s")
}

func BenchmarkFig10OctoExpanse_lci(b *testing.B)  { octo(b, "lci", bench.Expanse, 4, 2) }
func BenchmarkFig10OctoExpanse_mpi(b *testing.B)  { octo(b, "mpi", bench.Expanse, 4, 2) }
func BenchmarkFig10OctoExpanse_mpiI(b *testing.B) { octo(b, "mpi_i", bench.Expanse, 4, 2) }
func BenchmarkFig11OctoRostam_lci(b *testing.B)   { octo(b, "lci", bench.Rostam, 4, 2) }
func BenchmarkFig11OctoRostam_mpi(b *testing.B)   { octo(b, "mpi", bench.Rostam, 4, 2) }

func BenchmarkAblationMPIOriginal(b *testing.B) { octo(b, "mpi_orig", bench.Expanse, 2, 2) }
func BenchmarkAblationMPIImproved(b *testing.B) { octo(b, "mpi", bench.Expanse, 2, 2) }

// §7.2 future work: replicated LCI devices.
func benchMultiDev(b *testing.B, devs int) {
	b.Helper()
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := bench.MessageRate("lci", bench.MsgRateParams{
			Size: 8, Batch: 100, Total: 5000,
			Workers:    bench.Expanse.WorkersPerLocality,
			Fabric:     bench.Expanse.Fabric(2),
			LCIDevices: devs,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.MsgRate
	}
	b.ReportMetric(rate, "msgs/s")
}

func BenchmarkAblationMultiDev1(b *testing.B) { benchMultiDev(b, 1) }
func BenchmarkAblationMultiDev2(b *testing.B) { benchMultiDev(b, 2) }

// AMR regridding: Octo-Tiger with the tree re-adapting each step.
func BenchmarkOctoRegrid(b *testing.B) {
	var sps float64
	for i := 0; i < b.N; i++ {
		v, err := bench.OctoTiger("lci", bench.OctoParams{
			Platform: bench.Expanse, Nodes: 2, Level: 3, Steps: 2, Subgrid: 4,
			RegridEvery: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		sps = v
	}
	b.ReportMetric(sps, "steps/s")
}

// TCP parcelport reference point (not part of the paper's figures).
func BenchmarkTCPMessageRate8B(b *testing.B) {
	msgRate(b, "tcp", 8, 100, 5000)
}
