# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race check bench fuzz examples experiments clean

all: build vet test

# The full gate: build, vet, tests, and the race detector over the
# concurrency-heavy packages (communication libraries, fabric ARQ,
# parcelports).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -timeout 900s

race:
	$(GO) test -race ./internal/lci/... ./internal/mpisim/... ./internal/fabric/... ./internal/parcelport/... -timeout 1800s

bench:
	$(GO) test -bench=. -benchmem ./... -timeout 3600s

fuzz:
	$(GO) test ./internal/serialization/ -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/serialization/ -fuzz FuzzParseTransmissionSizes -fuzztime 15s
	$(GO) test ./internal/parcelport/ -fuzz FuzzDecodeHeader -fuzztime 15s

examples:
	$(GO) test . -run TestExamplesRun -v

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -out results all

clean:
	$(GO) clean ./...
