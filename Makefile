# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet fmt-check test race check alloc-gate bench bench-quick bench-fabric bench-deliver bench-collectives bench-msgrate bench-autotune bench-rendezvous bench-latency bench-serve bench-inline bench-gate fuzz examples experiments clean

all: build vet test

# The full gate: build, vet, formatting, tests, the race detector over the
# concurrency-heavy packages (communication libraries, fabric ARQ,
# parcelports, serving tier), the collectives perf snapshot, the serving-tier
# SLO snapshot, and the message-rate/rendezvous/latency/serve regression
# gate.
check: build vet fmt-check test race alloc-gate bench-collectives bench-serve bench-gate

# The receiver-datapath allocation gate: delivering a warm eager-sized bundle
# must not allocate, spawned or inline (see DESIGN.md §9 and §14). Run with
# -count=1 so a cached pass never masks a regression.
alloc-gate:
	$(GO) test ./internal/core/ -run 'TestDeliverBundleZeroAllocs|TestDeliverInlineBundleZeroAllocs|TestCollBoxFastPathZeroAlloc' -count=1
	$(GO) test ./internal/serialization/ -run TestDecodeIntoSteadyStateAllocs -count=1
	$(GO) test ./internal/tune/ -run TestSteadyStatePathsZeroAlloc -count=1
	$(GO) test ./internal/lci/ -run TestChunkedZeroAllocSteadyState -count=1
	$(GO) test ./internal/serve/ -run 'TestServeCachedGetZeroAllocs|TestTokenBucketZeroAllocs' -count=1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./... -timeout 900s

race:
	$(GO) test -race ./internal/lci/... ./internal/mpisim/... ./internal/fabric/... ./internal/parcelport/... ./internal/amt/... ./internal/core/... ./internal/serve/... -timeout 1800s

bench:
	$(GO) test -bench=. -benchmem ./... -timeout 3600s

# Fabric datapath microbenchmarks: per-packet inject/poll cost, allocation
# counts, and the poll-cost-vs-cluster-size scaling the ready index flattens
# (results/fabric-datapath.txt has the prose before/after; BENCH_fabric.json
# is the machine-readable artifact, claims-checked on regeneration).
bench-fabric:
	$(GO) test -bench 'BenchmarkInjectPoll|BenchmarkPoll' -benchmem ./internal/fabric/ -timeout 1800s
	$(GO) run ./cmd/experiments -scale quick -out results fabric-bench

# Flat-vs-tree collectives latency sweep, emitting the machine-readable
# BENCH_collectives.json (op, impl, nodes, ns/op, allocs/op, commit) next to
# the text figure — the perf-trajectory artifact tracked across PRs. Quick
# scale here keeps `make check` fast; run with -scale full to regenerate the
# recorded results/ numbers (256 localities).
bench-collectives:
	$(GO) run ./cmd/experiments -scale quick -out results collectives

# Receiver datapath microbenchmarks: bundled-message delivery (decode +
# dispatch + spawn + execute) and batched task spawn
# (results/receiver-datapath.txt has the prose before/after;
# BENCH_deliver.json is the machine-readable artifact, claims-checked on
# regeneration).
bench-deliver:
	$(GO) test -bench BenchmarkDeliverBundle -benchmem ./internal/core/ -timeout 1800s
	$(GO) test -bench BenchmarkSpawnBatch -benchmem ./internal/amt/ -timeout 1800s
	$(GO) run ./cmd/experiments -scale quick -out results deliver-bench

# Regenerate the committed message-rate regression baseline
# (results/BENCH_msgrate.json). Pinned to quick scale — the same scale
# bench-gate runs at — so the committed rows stay comparable.
bench-msgrate:
	$(GO) run ./cmd/experiments -scale quick -out results msgrate-bench

# Regenerate the committed large-message rendezvous bandwidth baseline
# (results/BENCH_rendezvous.json): chunked multi-rail striping vs the
# monolithic single-blob path. Pinned to quick scale — the same scale
# bench-gate runs at — so the committed rows stay comparable.
bench-rendezvous:
	$(GO) run ./cmd/experiments -scale quick -out results rendezvous-bench

# Regenerate the committed small/medium latency snapshot
# (results/BENCH_latency.json): one-way 8 B and 16 KiB latency at 1 and 8
# workers. Gated by bench-gate with noise-band-derived factors (2x mean/p50,
# 3x p99 — see EXPERIMENTS.md); pinned to quick scale, the same scale
# bench-gate runs at.
bench-latency:
	$(GO) run ./cmd/experiments -scale quick -out results latency-bench

# Regenerate the committed serving-tier SLO baseline
# (results/BENCH_serve.json): KV throughput and tail latency with the
# hot-key cache, single-flight coalescing, and admission control toggled
# per row. Claims-checked on every run (cache >= 2x cache-off on the Zipf
# mix; admission bounds the overload tail). Pinned to quick scale — the
# same scale bench-gate runs at.
bench-serve:
	$(GO) run ./cmd/experiments -scale quick -out results serve

# Regenerate the committed inline-lane baseline (results/BENCH_inline.json):
# 64 B aggregated message rate with run-to-completion delivery on vs forced
# spawn-always, plus the serving-tier Zipf capacity with the lane on.
# Claims-checked on every run (inline >= 1.3x spawn-always; serve capacity
# comparable to the committed serving-tier row). Pinned to quick scale — the
# same scale bench-gate runs at.
bench-inline:
	$(GO) run ./cmd/experiments -scale quick -out results inline

# Adaptive-vs-static acceptance sweep: the self-tuning runtime must match or
# beat every hand-tuned static config on every workload (within the noise
# band). Emits results/BENCH_autotune.json and fails on any lost verdict.
bench-autotune:
	$(GO) run ./cmd/experiments -scale quick -out results autotune

# Re-measure the gated rows (message rate, rendezvous, latency, serve) and
# compare against the committed baselines; fails on step regressions and on
# broken structural claims.
bench-gate:
	$(GO) run ./cmd/experiments -scale quick bench-gate

# Quick A/B of the 64 B message-rate benchmark with the sender-side
# aggregation layer off and on.
bench-quick:
	$(GO) run ./cmd/msgrate -config lci -size 64 -total 20000
	$(GO) run ./cmd/msgrate -config lci -size 64 -total 20000 -agg

fuzz:
	$(GO) test ./internal/serialization/ -fuzz FuzzDecode -fuzztime 30s
	$(GO) test ./internal/serialization/ -fuzz FuzzParseTransmissionSizes -fuzztime 15s
	$(GO) test ./internal/parcelport/ -fuzz FuzzDecodeHeader -fuzztime 15s

examples:
	$(GO) test . -run TestExamplesRun -v

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -out results all

clean:
	$(GO) clean ./...
