// Command latency runs the §4.2 multi-chain ping-pong microbenchmark once
// and prints the one-way latency.
//
// Example:
//
//	latency -config mpi_i -size 16384 -window 8 -steps 300
package main

import (
	"flag"
	"fmt"
	"os"

	"hpxgo/internal/bench"
)

func main() {
	config := flag.String("config", "lci", "parcelport configuration (Table 1 name)")
	size := flag.Int("size", 8, "message size in bytes")
	window := flag.Int("window", 1, "number of concurrent ping-pong chains")
	steps := flag.Int("steps", 300, "one-way legs per chain")
	workers := flag.Int("workers", bench.Expanse.WorkersPerLocality, "worker threads per locality")
	dist := flag.Bool("dist", false, "also report p50/p99/max one-way latency")
	flag.Parse()

	d, err := bench.LatencyDistribution(*config, bench.LatencyParams{
		Size: *size, Window: *window, Steps: *steps,
		Workers: *workers, Fabric: bench.Expanse.Fabric(2),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "latency: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("config=%s size=%dB window=%d one_way_latency=%.2fus", *config, *size, *window, d.Mean)
	if *dist {
		fmt.Printf(" p50=%.2fus p99=%.2fus max=%.2fus", d.P50, d.P99, d.Max)
	}
	fmt.Println()
}
