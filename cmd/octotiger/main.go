// Command octotiger runs the §5 application benchmark (the Octo-Tiger
// proxy) once and prints steps per second.
//
// Example:
//
//	octotiger -config lci -platform expanse -nodes 8 -level 3 -steps 3
package main

import (
	"flag"
	"fmt"
	"os"

	"hpxgo/internal/bench"
	"hpxgo/internal/core"
)

func main() {
	config := flag.String("config", "lci", "parcelport configuration (Table 1 name)")
	platform := flag.String("platform", "expanse", "platform profile: expanse or rostam")
	nodes := flag.Int("nodes", 4, "number of simulated compute nodes")
	level := flag.Int("level", 3, "maximum octree level")
	steps := flag.Int("steps", 3, "stop step (iteration count)")
	subgrid := flag.Int("subgrid", 6, "subgrid edge length per leaf")
	fields := flag.Int("fields", 4, "hydro fields per boundary exchange")
	stats := flag.Bool("stats", false, "print runtime performance counters after the run")
	regrid := flag.Int("regrid", 0, "adaptively regrid every N steps (0 = off)")
	flag.Parse()

	var plat bench.Platform
	switch *platform {
	case "expanse":
		plat = bench.Expanse
	case "rostam":
		plat = bench.Rostam
	default:
		fmt.Fprintf(os.Stderr, "octotiger: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	params := bench.OctoParams{
		Platform: plat, Nodes: *nodes, Level: *level, Steps: *steps,
		Subgrid: *subgrid, Fields: *fields, RegridEvery: *regrid,
	}
	if *stats {
		params.Inspect = func(rt *core.Runtime) { fmt.Print(rt.StatsText()) }
	}
	sps, err := bench.OctoTiger(*config, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "octotiger: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("config=%s platform=%s nodes=%d level=%d steps_per_second=%.4f\n",
		*config, plat.Name, *nodes, *level, sps)
}
