// Command experiments regenerates the tables and figures of the paper's
// evaluation. Each target prints the same rows/series the paper reports
// (text form; x, y, yerr per point).
//
// Usage:
//
//	experiments [-scale full|quick] [-out dir] <target>...
//
// Targets: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8
// fig9 fig10 fig11 ablation-mpi reliability all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hpxgo/internal/bench"
	"hpxgo/internal/stats"
)

// provenance stamps each output with enough context to interpret it later.
func provenance(scale string) string {
	host, _ := os.Hostname()
	return fmt.Sprintf("# generated: %s | host: %s | %s/%s GOMAXPROCS=%d | %s | scale: %s\n",
		time.Now().Format(time.RFC3339), host,
		runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0), runtime.Version(), scale)
}

func main() {
	scale := flag.String("scale", "full", "experiment scale: full or quick")
	out := flag.String("out", "", "also write each target's output to <dir>/<target>.txt")
	format := flag.String("format", "text", "figure output format: text or csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-scale full|quick] [-out dir] <target>...\n")
		fmt.Fprintf(os.Stderr, "targets: table1 table2 table3 fig1..fig11 ablation-mpi ablation-multidev profile check latency-tails reliability collectives autotune msgrate-bench rendezvous-bench latency-bench serve inline fabric-bench deliver-bench bench-gate all\n")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var sc bench.Scale
	switch *scale {
	case "full":
		sc = bench.FullScale()
	case "quick":
		sc = bench.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	targets := flag.Args()
	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{
			"table1", "table2", "table3",
			"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
			"fig7", "fig8", "fig9", "fig10", "fig11",
			"ablation-mpi", "ablation-multidev", "profile", "check", "latency-tails",
			"reliability", "collectives",
		}
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}
	for _, target := range targets {
		start := time.Now()
		var text string
		var err error
		var extra map[string][]byte // side artifacts, written next to the .txt
		switch target {
		case "collectives":
			text, extra, err = runCollectives(sc, *scale, *format == "csv")
		case "autotune":
			text, extra, err = runAutotune(sc, *scale)
		case "msgrate-bench":
			text, extra, err = runMsgRateBench(sc, *scale)
		case "rendezvous-bench":
			text, extra, err = runRendezvousBench(sc, *scale)
		case "latency-bench":
			text, extra, err = runLatencyBench(sc, *scale)
		case "serve":
			text, extra, err = runServeBench(sc, *scale)
		case "inline":
			text, extra, err = runInlineBench(sc, *scale)
		case "fabric-bench":
			text, extra, err = runDatapathBench(sc, *scale, "BENCH_fabric.json", bench.FabricBench)
		case "deliver-bench":
			text, extra, err = runDatapathBench(sc, *scale, "BENCH_deliver.json", bench.DeliverBench)
		case "bench-gate":
			text, err = runBenchGate(sc, *scale)
		default:
			text, err = run(target, sc, *format == "csv")
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", target, err)
			os.Exit(1)
		}
		text = provenance(*scale) + text
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", target, time.Since(start).Seconds(), text)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, target+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			for name, data := range extra {
				if err := os.WriteFile(filepath.Join(*out, name), data, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}

// runCollectives runs the flat-vs-tree collectives sweep; alongside the text
// figure it emits BENCH_collectives.json, the machine-readable perf record
// (op, impl, nodes, ns/op, allocs/op, commit).
func runCollectives(sc bench.Scale, scaleName string, csv bool) (string, map[string][]byte, error) {
	text, rep, err := bench.CollectivesText(sc, scaleName, csv)
	if err != nil {
		return "", nil, err
	}
	js, err := rep.JSON()
	if err != nil {
		return "", nil, err
	}
	return text, map[string][]byte{"BENCH_collectives.json": js}, nil
}

// runAutotune runs the adaptive-vs-static acceptance sweep; alongside the
// text table it emits BENCH_autotune.json. The target fails if the adaptive
// runtime loses to any hand-tuned static configuration beyond the noise
// band.
func runAutotune(sc bench.Scale, scaleName string) (string, map[string][]byte, error) {
	rep, err := bench.AutotuneSweep(sc, scaleName)
	if err != nil {
		return "", nil, err
	}
	text := rep.Text()
	js, err := rep.JSON()
	if err != nil {
		return "", nil, err
	}
	if err := rep.Err(); err != nil {
		return "", nil, fmt.Errorf("%w\n%s", err, text)
	}
	return text, map[string][]byte{"BENCH_autotune.json": js}, nil
}

// runMsgRateBench measures the gated message-rate rows and emits
// BENCH_msgrate.json (the committed baseline bench-gate compares against).
func runMsgRateBench(sc bench.Scale, scaleName string) (string, map[string][]byte, error) {
	rep, err := bench.MsgRateBench(sc, scaleName)
	if err != nil {
		return "", nil, err
	}
	js, err := rep.JSON()
	if err != nil {
		return "", nil, err
	}
	return rep.Text(), map[string][]byte{"BENCH_msgrate.json": js}, nil
}

// runRendezvousBench measures the large-message rendezvous bandwidth sweep
// (size × rails × chunk size vs the single-blob baseline) and emits
// BENCH_rendezvous.json. Fails if the striping claims don't hold.
func runRendezvousBench(sc bench.Scale, scaleName string) (string, map[string][]byte, error) {
	rep, err := bench.RendezvousBench(sc, scaleName)
	if err != nil {
		if rep == nil {
			return "", nil, err
		}
		return "", nil, fmt.Errorf("%w\n%s", err, rep.Text())
	}
	js, err := rep.JSON()
	if err != nil {
		return "", nil, err
	}
	return rep.Text(), map[string][]byte{"BENCH_rendezvous.json": js}, nil
}

// runLatencyBench measures the latency trajectory rows and emits
// BENCH_latency.json.
func runLatencyBench(sc bench.Scale, scaleName string) (string, map[string][]byte, error) {
	rep, err := bench.LatencyBench(sc, scaleName)
	if err != nil {
		return "", nil, err
	}
	js, err := rep.JSON()
	if err != nil {
		return "", nil, err
	}
	return rep.Text(), map[string][]byte{"BENCH_latency.json": js}, nil
}

// runServeBench drives the serving-tier load mixes (cache on/off, Zipf vs
// uniform, admission) and emits BENCH_serve.json. Fails if the cache
// speedup or admission claims don't hold.
func runServeBench(sc bench.Scale, scaleName string) (string, map[string][]byte, error) {
	rep, err := bench.ServeBench(sc, scaleName)
	if err != nil {
		if rep == nil {
			return "", nil, err
		}
		return "", nil, fmt.Errorf("%w\n%s", err, rep.Text())
	}
	js, err := rep.JSON()
	if err != nil {
		return "", nil, err
	}
	return rep.Text(), map[string][]byte{"BENCH_serve.json": js}, nil
}

// serveZipfBaseline reads the committed serving-tier artifact and extracts
// the Zipf capacity row the inline serve claim compares against. Missing
// artifact degrades to 0 (claim skipped) rather than failing the run.
func serveZipfBaseline() float64 {
	data, err := os.ReadFile(serveGateArtifact)
	if err != nil {
		return 0
	}
	committed, err := bench.ParseServeReport(data)
	if err != nil {
		return 0
	}
	return bench.ServeZipfBaseline(committed)
}

// runInlineBench A/Bs the run-to-completion inline lane against spawn-always
// delivery on the 64 B aggregated message-rate workload, measures the
// serving-tier Zipf capacity with the lane on, and emits BENCH_inline.json.
// Fails if the inline speedup or serve-capacity claims don't hold.
func runInlineBench(sc bench.Scale, scaleName string) (string, map[string][]byte, error) {
	rep, err := bench.InlineBench(sc, scaleName, serveZipfBaseline())
	if err != nil {
		if rep == nil {
			return "", nil, err
		}
		return "", nil, fmt.Errorf("%w\n%s", err, rep.Text())
	}
	js, err := rep.JSON()
	if err != nil {
		return "", nil, err
	}
	return rep.Text(), map[string][]byte{"BENCH_inline.json": js}, nil
}

// runDatapathBench measures one datapath artifact (fabric or receiver) and
// emits it under the given artifact name. Fails if the flatness/zero-alloc
// claims don't hold.
func runDatapathBench(sc bench.Scale, scaleName, artifact string, f func(bench.Scale, string) (*bench.DatapathReport, error)) (string, map[string][]byte, error) {
	rep, err := f(sc, scaleName)
	if err != nil {
		if rep == nil {
			return "", nil, err
		}
		return "", nil, fmt.Errorf("%w\n%s", err, rep.Text())
	}
	js, err := rep.JSON()
	if err != nil {
		return "", nil, err
	}
	return rep.Text(), map[string][]byte{artifact: js}, nil
}

// Committed baselines bench-gate checks against.
const (
	benchGateArtifact      = "results/BENCH_msgrate.json"
	rendezvousGateArtifact = "results/BENCH_rendezvous.json"
	serveGateArtifact      = "results/BENCH_serve.json"
	latencyGateArtifact    = "results/BENCH_latency.json"
	inlineGateArtifact     = "results/BENCH_inline.json"
)

// runBenchGate re-measures the gated rows (message rate, rendezvous
// bandwidth, latency, serving tier) and compares them against the committed
// artifacts, failing on throughput/ns-per-op/allocs regressions, on broken
// striping claims, and on broken serve cache/admission claims.
func runBenchGate(sc bench.Scale, scaleName string) (string, error) {
	data, err := os.ReadFile(benchGateArtifact)
	if err != nil {
		return "", fmt.Errorf("bench-gate: %w (run `make bench-msgrate` and commit the artifact)", err)
	}
	committed, err := bench.ParseMsgRateReport(data)
	if err != nil {
		return "", err
	}
	fresh, err := bench.MsgRateBench(sc, scaleName)
	if err != nil {
		return "", err
	}
	text, err := bench.MsgRateGate(fresh, committed)
	if err != nil {
		return "", fmt.Errorf("%w\n%s", err, text)
	}

	rdata, err := os.ReadFile(rendezvousGateArtifact)
	if err != nil {
		return "", fmt.Errorf("bench-gate: %w (run `make bench-rendezvous` and commit the artifact)", err)
	}
	rcommitted, err := bench.ParseRendezvousReport(rdata)
	if err != nil {
		return "", err
	}
	rfresh, err := bench.RendezvousBench(sc, scaleName)
	if err != nil && rfresh == nil {
		return "", err
	}
	rtext, err := bench.RendezvousGate(rfresh, rcommitted)
	if err != nil {
		return "", fmt.Errorf("%w\n%s", err, rtext)
	}

	ldata, err := os.ReadFile(latencyGateArtifact)
	if err != nil {
		return "", fmt.Errorf("bench-gate: %w (run `make bench-latency` and commit the artifact)", err)
	}
	lcommitted, err := bench.ParseLatencyReport(ldata)
	if err != nil {
		return "", err
	}
	lfresh, err := bench.LatencyBench(sc, scaleName)
	if err != nil {
		return "", err
	}
	ltext, err := bench.LatencyGate(lfresh, lcommitted)
	if err != nil {
		return "", fmt.Errorf("%w\n%s", err, ltext)
	}

	sdata, err := os.ReadFile(serveGateArtifact)
	if err != nil {
		return "", fmt.Errorf("bench-gate: %w (run `make bench-serve` and commit the artifact)", err)
	}
	scommitted, err := bench.ParseServeReport(sdata)
	if err != nil {
		return "", err
	}
	sfresh, err := bench.ServeBench(sc, scaleName)
	if err != nil && sfresh == nil {
		return "", err
	}
	stext, err := bench.ServeGate(sfresh, scommitted)
	if err != nil {
		return "", fmt.Errorf("%w\n%s", err, stext)
	}

	idata, err := os.ReadFile(inlineGateArtifact)
	if err != nil {
		return "", fmt.Errorf("bench-gate: %w (run `make bench-inline` and commit the artifact)", err)
	}
	icommitted, err := bench.ParseInlineReport(idata)
	if err != nil {
		return "", err
	}
	ifresh, err := bench.InlineBench(sc, scaleName, bench.ServeZipfBaseline(scommitted))
	if err != nil && ifresh == nil {
		return "", err
	}
	itext, err := bench.InlineGate(ifresh, icommitted, bench.ServeZipfBaseline(scommitted))
	if err != nil {
		return "", fmt.Errorf("%w\n%s", err, itext)
	}
	return text + "\n" + rtext + "\n" + ltext + "\n" + stext + "\n" + itext, nil
}

// run executes one target at the given scale.
func run(target string, sc bench.Scale, csv bool) (string, error) {
	figure := func(f func(bench.Scale) (*stats.Figure, error)) (string, error) {
		fig, err := f(sc)
		if err != nil {
			return "", err
		}
		if csv {
			return fig.RenderCSV(), nil
		}
		return fig.Render(), nil
	}
	switch target {
	case "table1":
		return bench.Table1Text(), nil
	case "table2":
		return bench.TableSystemText(bench.Expanse), nil
	case "table3":
		return bench.TableSystemText(bench.Rostam), nil
	case "fig1":
		return figure(bench.Fig1)
	case "fig2":
		return figure(bench.Fig2)
	case "fig3":
		return figure(bench.Fig3)
	case "fig4":
		return figure(bench.Fig4)
	case "fig5":
		return figure(bench.Fig5)
	case "fig6":
		return figure(bench.Fig6)
	case "fig7":
		return figure(bench.Fig7)
	case "fig8":
		return figure(bench.Fig8)
	case "fig9":
		return figure(bench.Fig9)
	case "fig10":
		return figure(bench.Fig10)
	case "fig11":
		return figure(bench.Fig11)
	case "ablation-mpi":
		return figure(bench.AblationMPI)
	case "ablation-multidev":
		return figure(bench.AblationMultiDevice)
	case "profile":
		return bench.ProfileText(sc)
	case "check":
		return bench.ClaimsText(sc)
	case "latency-tails":
		return figure(bench.LatencyTails)
	case "reliability":
		return bench.ReliabilityText(sc)
	default:
		return "", fmt.Errorf("unknown target %q", target)
	}
}
