// Command msgrate runs the §4.1 message-rate microbenchmark once and prints
// the achieved injection and message rates.
//
// Example:
//
//	msgrate -config lci_psr_cq_pin_i -size 8 -batch 100 -total 20000 -rate 400000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"hpxgo/internal/bench"
	"hpxgo/internal/core"
	"hpxgo/internal/fabric"
)

// writeProfile dumps a named runtime profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
	}
}

func main() {
	config := flag.String("config", "lci", "parcelport configuration (Table 1 name)")
	size := flag.Int("size", 8, "message size in bytes")
	batch := flag.Int("batch", 100, "messages per task")
	total := flag.Int("total", 20000, "total messages")
	rate := flag.Float64("rate", 0, "attempted injection rate in msgs/s (0 = unlimited)")
	workers := flag.Int("workers", bench.Expanse.WorkersPerLocality, "worker threads per locality")
	stats := flag.Bool("stats", false, "print runtime performance counters after the run")
	reliable := flag.Bool("reliable", false, "enable end-to-end reliable delivery (implied by any fault probability)")
	drop := flag.Float64("drop", 0, "fault injection: per-transmission packet drop probability")
	dup := flag.Float64("dup", 0, "fault injection: packet duplication probability")
	corrupt := flag.Float64("corrupt", 0, "fault injection: packet corruption probability")
	spike := flag.Float64("spike", 0, "fault injection: latency spike probability")
	seed := flag.Int64("faultseed", 1, "fault injection: RNG seed")
	large := flag.Bool("large", false, "run the large-message rendezvous bandwidth benchmark instead of the message-rate loop")
	chunk := flag.Int("chunk", 0, "rendezvous chunk size in bytes (0 = device default 64 KiB; with -large)")
	stripe := flag.Int("stripe", 0, "rendezvous stripe width in rails (0 = all rails; with -large)")
	rails := flag.Int("rails", 4, "fabric rail count (with -large)")
	blob := flag.Bool("blob", false, "use the monolithic single-blob long path (baseline; with -large)")
	agg := flag.Bool("agg", false, "enable the sender-side aggregation layer")
	inline := flag.Bool("inline", true, "run small non-blocking actions inline on the draining goroutine")
	inlinebudget := flag.Int("inlinebudget", 0, "inline-lane per-drain budget seed (0 = default; ignored with -inline=false)")
	autotune := flag.Bool("autotune", false, "enable the adaptive control layer (per-peer knobs replace the static ones)")
	aggsize := flag.Int("aggsize", 0, "aggregation flush size threshold in bytes (0 = default)")
	aggdelay := flag.Duration("aggdelay", 0, "aggregation flush age deadline (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	blockprofile := flag.String("blockprofile", "", "write a blocking profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		// Label the progress / amt-worker / inline-deliver lanes so the
		// profile splits by goroutine role (go tool pprof -tagfocus=lane=...).
		core.EnableProfilingLabels(true)
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprofile)
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprofile)
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC() // settle live-heap statistics before the dump
			writeProfile("heap", *memprofile)
		}()
	}

	if *large {
		sz := *size
		if sz <= 8 { // the message-rate default is 8 B; pick a rendezvous-sized default
			sz = 1 << 20
		}
		res, err := bench.Rendezvous(bench.RendezvousParams{
			Size: sz, Rails: *rails, ChunkSize: *chunk, Stripe: *stripe, SingleBlob: *blob,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("rendezvous size=%dB rails=%d chunk=%dB stripe=%d blob=%v ns/op=%.0f bandwidth=%.2fGb/s allocs/op=%.2f\n",
			sz, *rails, *chunk, *stripe, *blob, res.NsOp, res.Gbps, res.AllocsOp)
		return
	}

	params := bench.MsgRateParams{
		Size: *size, Batch: *batch, Total: *total, Rate: *rate,
		Workers: *workers, Fabric: bench.Expanse.Fabric(2),
		Agg: *agg, AggSize: *aggsize, AggDelay: *aggdelay, Autotune: *autotune,
		InlineOff: !*inline, InlineBudget: *inlinebudget,
	}
	params.Fabric.Reliability = *reliable
	if *drop != 0 || *dup != 0 || *corrupt != 0 || *spike != 0 {
		params.Fabric.Faults = fabric.FaultConfig{
			DropProb: *drop, DupProb: *dup, CorruptProb: *corrupt,
			SpikeProb: *spike, Seed: *seed,
		}
		params.Fabric.RetransmitTimeoutNs = 200_000
		params.Fabric.AckDelayNs = 50_000
		params.Fabric.RetryBudget = 50
	}
	if *stats {
		params.Inspect = func(rt *core.Runtime) { fmt.Print(rt.StatsText()) }
	}
	res, err := bench.MessageRate(*config, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("config=%s size=%dB attempted=%.0f/s achieved_injection=%.0f/s message_rate=%.0f/s\n",
		*config, *size, res.AttemptedRate, res.AchievedInj, res.MsgRate)
}
