// Command msgrate runs the §4.1 message-rate microbenchmark once and prints
// the achieved injection and message rates.
//
// Example:
//
//	msgrate -config lci_psr_cq_pin_i -size 8 -batch 100 -total 20000 -rate 400000
package main

import (
	"flag"
	"fmt"
	"os"

	"hpxgo/internal/bench"
	"hpxgo/internal/core"
)

func main() {
	config := flag.String("config", "lci", "parcelport configuration (Table 1 name)")
	size := flag.Int("size", 8, "message size in bytes")
	batch := flag.Int("batch", 100, "messages per task")
	total := flag.Int("total", 20000, "total messages")
	rate := flag.Float64("rate", 0, "attempted injection rate in msgs/s (0 = unlimited)")
	workers := flag.Int("workers", bench.Expanse.WorkersPerLocality, "worker threads per locality")
	stats := flag.Bool("stats", false, "print runtime performance counters after the run")
	flag.Parse()

	params := bench.MsgRateParams{
		Size: *size, Batch: *batch, Total: *total, Rate: *rate,
		Workers: *workers, Fabric: bench.Expanse.Fabric(2),
	}
	if *stats {
		params.Inspect = func(rt *core.Runtime) { fmt.Print(rt.StatsText()) }
	}
	res, err := bench.MessageRate(*config, params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msgrate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("config=%s size=%dB attempted=%.0f/s achieved_injection=%.0f/s message_rate=%.0f/s\n",
		*config, *size, res.AttemptedRate, res.AchievedInj, res.MsgRate)
}
