module hpxgo

go 1.22
