module hpxgo

go 1.23
