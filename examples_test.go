package hpxgo

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example binary end to end and checks its
// self-verification output. Examples double as integration tests of the
// public API.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples in -short mode")
	}
	cases := []struct {
		dir    string
		needle string // output that proves the example did its job
	}{
		{"quickstart", "hello world, from locality 1"},
		{"pingpong", "one-way"},
		{"taskgraph", "sum="},
		{"octotree", "conserved"},
		{"lcidirect", "rendezvous"},
		{"graphbfs", "verified: results match"},
		{"poisson", "verified against the manufactured solution"},
		{"dfft", "verified: distributed FFT matches the serial reference"},
		{"kvserve", "verified: serving tier absorbed the hot set"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+tc.dir)
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("example %s timed out", tc.dir)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.needle) {
				t.Fatalf("example %s output missing %q:\n%s", tc.dir, tc.needle, out)
			}
		})
	}
}
