// Graphbfs: distributed breadth-first search over a synthetic graph
// partitioned across four localities — the irregular graph-analytics
// workload the paper's introduction motivates (and the domain LCI was first
// used in). Each BFS level expands local frontiers in parallel tasks,
// ships cross-partition visits as batched actions, and synchronizes levels
// with the runtime's Reduce collective. The distributed result is verified
// against a sequential BFS.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/wire"
)

const (
	localities = 4
	vertices   = 20000
	degree     = 6
	source     = 1
)

// splitmix64 provides the deterministic synthetic edge structure.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// neighbors returns vertex v's out-edges (deterministic pseudo-random).
func neighbors(v uint32) []uint32 {
	out := make([]uint32, 0, degree)
	for k := 0; k < degree; k++ {
		out = append(out, uint32(splitmix64(uint64(v)<<8|uint64(k))%vertices))
	}
	return out
}

// owner maps a vertex to its locality (contiguous ranges).
func owner(v uint32) int { return int(v) * localities / vertices }

// bfsState is one locality's partition state.
type bfsState struct {
	mu       sync.Mutex
	visited  map[uint32]bool
	frontier []uint32 // owned vertices to expand this level
	next     []uint32 // owned vertices discovered this level
}

func main() {
	rt, err := core.NewRuntime(core.Config{
		Localities:         localities,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
	})
	if err != nil {
		log.Fatal(err)
	}
	states := make([]*bfsState, localities)
	for i := range states {
		states[i] = &bfsState{visited: make(map[uint32]bool)}
	}

	// bfs_visit: mark a batch of owned vertices, queueing fresh ones for the
	// next level.
	rt.MustRegisterAction("bfs_visit", func(loc *core.Locality, args [][]byte) [][]byte {
		verts, err := wire.ToU32s(args[0])
		if err != nil {
			return nil
		}
		st := states[loc.ID()]
		st.mu.Lock()
		for _, v := range verts {
			if !st.visited[v] {
				st.visited[v] = true
				st.next = append(st.next, v)
			}
		}
		st.mu.Unlock()
		return nil
	})

	// bfs_expand: expand this locality's current frontier, batching
	// cross-partition visits per destination locality.
	rt.MustRegisterAction("bfs_expand", func(loc *core.Locality, args [][]byte) [][]byte {
		st := states[loc.ID()]
		st.mu.Lock()
		frontier := st.frontier
		st.frontier = nil
		st.mu.Unlock()
		batches := make([][]uint32, localities)
		for _, v := range frontier {
			for _, w := range neighbors(v) {
				batches[owner(w)] = append(batches[owner(w)], w)
			}
		}
		futs := make([]interface{ Wait() }, 0, localities)
		for dst, batch := range batches {
			if len(batch) == 0 {
				continue
			}
			f := loc.Call(dst, "bfs_visit", wire.U32s(batch))
			futs = append(futs, f)
		}
		for _, f := range futs {
			f.Wait()
		}
		return nil
	})

	// bfs_advance: promote the next-level queue to the current frontier and
	// report how many vertices it holds.
	rt.MustRegisterAction("bfs_advance", func(loc *core.Locality, args [][]byte) [][]byte {
		st := states[loc.ID()]
		st.mu.Lock()
		st.frontier = st.next
		st.next = nil
		n := len(st.frontier)
		st.mu.Unlock()
		return [][]byte{wire.U64(uint64(n))}
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	// Seed the source vertex at its owner.
	seedSt := states[owner(source)]
	seedSt.visited[source] = true
	seedSt.frontier = []uint32{source}

	start := time.Now()
	level := 0
	for {
		if err := rt.Broadcast(0, time.Minute, "bfs_expand"); err != nil {
			log.Fatal(err)
		}
		res, err := rt.Reduce(0, time.Minute, "bfs_advance", wire.SumU64Fold)
		if err != nil {
			log.Fatal(err)
		}
		newFrontier, _ := wire.ToU64(res[0])
		level++
		fmt.Printf("level %2d: frontier %d\n", level, newFrontier)
		if newFrontier == 0 {
			break
		}
	}
	elapsed := time.Since(start)

	distributed := 0
	for _, st := range states {
		distributed += len(st.visited)
	}

	// Sequential verification.
	seen := map[uint32]bool{source: true}
	queue := []uint32{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range neighbors(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}

	fmt.Printf("distributed BFS visited %d vertices in %d levels (%v)\n", distributed, level, elapsed.Round(time.Millisecond))
	fmt.Printf("sequential  BFS visited %d vertices\n", len(seen))
	if distributed != len(seen) {
		log.Fatal("MISMATCH between distributed and sequential BFS")
	}
	fmt.Println("verified: results match")
}
