// Octotree: run the Octo-Tiger proxy application (adaptive octree + FMM-ish
// step cycle) on a four-locality simulated cluster and report steps per
// second and the conserved mass — a miniature of the paper's §5 benchmark.
package main

import (
	"fmt"
	"log"

	"hpxgo/internal/core"
	"hpxgo/internal/octotiger"
)

func main() {
	rt, err := core.NewRuntime(core.Config{
		Localities:         4,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := octotiger.New(rt, octotiger.Params{
		MaxLevel:    3,
		MinLevel:    2,
		SubgridSize: 6,
		Fields:      4,
		StopStep:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	tree := app.Tree()
	fmt.Printf("octree: %d leaves, %d faces crossing locality boundaries\n",
		len(tree.Leaves), tree.RemoteFaces())

	sps, err := app.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d steps: %.3f steps/s\n", app.Steps(), sps)
	fmt.Printf("mass: initial=%.6f final=%.6f (conserved)\n", app.InitialMass(), app.TotalMass())
	fmt.Printf("checksum: %.9f (parcelport- and partition-independent)\n", app.PotentialChecksum())
}
