// Quickstart: a two-locality "cluster" in one process, one registered
// action, one remote call — the smallest complete program against the
// public API.
package main

import (
	"fmt"
	"log"
	"time"

	"hpxgo/internal/core"
)

func main() {
	// Build a runtime: 2 localities (simulated compute nodes), 2 worker
	// threads each, the baseline LCI parcelport.
	rt, err := core.NewRuntime(core.Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Parcelport:         "lci", // alias for lci_psr_cq_pin_i
	})
	if err != nil {
		log.Fatal(err)
	}

	// Register an action before starting. Actions run as tasks on the
	// target locality and may return result blobs.
	rt.MustRegisterAction("greet", func(loc *core.Locality, args [][]byte) [][]byte {
		msg := fmt.Sprintf("hello %s, from locality %d", args[0], loc.ID())
		return [][]byte{[]byte(msg)}
	})
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	// Call the action on locality 1 from locality 0 and wait on the future.
	fut := rt.Locality(0).Call(1, "greet", []byte("world"))
	res, err := fut.GetTimeout(10 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(res[0]))
	fmt.Printf("parcelport: %s\n", rt.ParcelportName())
}
