// Pingpong: measure round-trip latency between two localities under two
// parcelport configurations — a miniature of the paper's Fig 7 experiment,
// written directly against the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"hpxgo/internal/core"
)

// measure runs `rounds` ping-pongs of the given payload size and returns
// the mean one-way latency.
func measure(ppName string, size, rounds int) (time.Duration, error) {
	rt, err := core.NewRuntime(core.Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Parcelport:         ppName,
	})
	if err != nil {
		return 0, err
	}
	defer rt.Shutdown()
	rt.MustRegisterAction("echo", func(loc *core.Locality, args [][]byte) [][]byte {
		return args
	})
	if err := rt.Start(); err != nil {
		return 0, err
	}

	payload := make([]byte, size)
	sender := rt.Locality(0)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := sender.Call(1, "echo", payload).GetTimeout(time.Minute); err != nil {
			return 0, err
		}
	}
	// Each round is two one-way messages.
	return time.Since(start) / time.Duration(2*rounds), nil
}

func main() {
	const rounds = 200
	for _, size := range []int{8, 1024, 16 * 1024} {
		for _, pp := range []string{"lci_psr_cq_pin_i", "mpi_i"} {
			lat, err := measure(pp, size, rounds)
			if err != nil {
				log.Fatalf("%s: %v", pp, err)
			}
			fmt.Printf("%-18s %6dB  one-way %8.1fus\n", pp, size, float64(lat.Nanoseconds())/1e3)
		}
	}
}
