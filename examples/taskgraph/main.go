// Taskgraph: a distributed divide-and-conquer task graph across four
// localities — the irregular, fine-grained communication pattern AMTs exist
// for. Each node of the tree computes on one locality and recursively calls
// its children on other localities, with futures stitching the graph
// together.
package main

import (
	"fmt"
	"log"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/wire"
)

const localities = 4

func main() {
	rt, err := core.NewRuntime(core.Config{
		Localities:         localities,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
	})
	if err != nil {
		log.Fatal(err)
	}

	// sum(depth, value): if depth == 0 return value; otherwise recurse to
	// two child localities chosen by value, and add the results.
	rt.MustRegisterAction("sum", func(loc *core.Locality, args [][]byte) [][]byte {
		depth, _ := wire.ToU64(args[0])
		value, _ := wire.ToU64(args[1])
		if depth == 0 {
			return [][]byte{wire.U64(value)}
		}
		left := loc.Call(int(2*value)%localities, "sum", wire.U64(depth-1), wire.U64(2*value))
		right := loc.Call(int(2*value+1)%localities, "sum", wire.U64(depth-1), wire.U64(2*value+1))
		lres, err := left.GetTimeout(time.Minute)
		if err != nil {
			return [][]byte{wire.U64(0)}
		}
		rres, err := right.GetTimeout(time.Minute)
		if err != nil {
			return [][]byte{wire.U64(0)}
		}
		lv, _ := wire.ToU64(lres[0])
		rv, _ := wire.ToU64(rres[0])
		total := lv + rv
		return [][]byte{wire.U64(total)}
	})
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	const depth = 6
	start := time.Now()
	res, err := rt.Locality(0).Call(1, "sum", wire.U64(depth), wire.U64(1)).GetTimeout(2 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	got, _ := wire.ToU64(res[0])

	// The leaves of this tree are values 2^depth .. 2^(depth+1)-1 seeded at
	// value=1, so the expected total is their sum.
	var want uint64
	for v := uint64(1 << depth); v < 1<<(depth+1); v++ {
		want += v
	}
	fmt.Printf("task tree depth=%d (%d leaf tasks across %d localities)\n", depth, 1<<depth, localities)
	fmt.Printf("sum=%d want=%d elapsed=%v\n", got, want, time.Since(start).Round(time.Millisecond))
	if got != want {
		log.Fatal("wrong result")
	}
}
