// Lcidirect: program against the LCI communication library itself (below
// the runtime), showing the three completion mechanisms the paper describes
// — completion queue, synchronizer, and function handler — combined with
// two-sided medium sends, the one-sided dynamic put, and the long
// (rendezvous) protocol.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"hpxgo/internal/fabric"
	"hpxgo/internal/lci"
)

func main() {
	net, err := fabric.NewNetwork(fabric.Config{
		Nodes:       2,
		LatencyNs:   1000,
		GbitsPerSec: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	a := lci.NewDevice(net.Device(0), lci.Config{}, nil)
	b := lci.NewDevice(net.Device(1), lci.Config{}, nil)

	// A progress goroutine per device: nothing completes unless someone
	// drives the engine (the property the paper's pin/mt axis is about).
	stop := make(chan struct{})
	for _, d := range []*lci.Device{a, b} {
		d := d
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					d.Progress()
				}
			}
		}()
	}
	defer close(stop)

	// 1. Two-sided medium send, completion queue on the receiver.
	cq := lci.NewCompQueue(16)
	buf := make([]byte, 64)
	if err := b.Recvm(0, 1, buf, cq, "cq-demo"); err != nil {
		log.Fatal(err)
	}
	if err := a.Sendm(1, 1, []byte("two-sided medium"), nil, nil); err != nil {
		log.Fatal(err)
	}
	req := popWait(cq)
	fmt.Printf("completion queue: %q (ctx=%v)\n", req.Data, req.Ctx)

	// 2. One-sided dynamic put: no receive posted at all; the target buffer
	// is allocated by the runtime and surfaces in the pre-configured CQ.
	pkt, err := a.GetPacket()
	if err != nil {
		log.Fatal(err)
	}
	n := copy(pkt.Data, "one-sided dynamic put, assembled in an LCI packet")
	if err := a.PutdPacket(1, 0xCAFE, pkt, n); err != nil {
		log.Fatal(err)
	}
	req = popWait(b.PutCQ())
	fmt.Printf("dynamic put:      %q (meta=%#x)\n", req.Data, req.Tag)

	// 3. Long (rendezvous) protocol with a synchronizer.
	sync2 := lci.NewSynchronizer(1)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	big := make([]byte, len(payload))
	if err := b.Recvl(0, 2, big, sync2, nil); err != nil {
		log.Fatal(err)
	}
	if err := a.Sendl(1, 2, payload, nil, nil); err != nil {
		log.Fatal(err)
	}
	for !sync2.Test() {
		time.Sleep(time.Microsecond)
	}
	fmt.Printf("rendezvous:       %d KiB received via synchronizer\n", len(big)/1024)

	// 4. Function-handler completion: runs inline on the progress thread.
	var handled atomic.Bool
	h := lci.Handler(func(r lci.Request) {
		fmt.Printf("handler:          %q ran inline on the progress engine\n", r.Data)
		handled.Store(true)
	})
	small := make([]byte, 32)
	if err := b.Recvm(0, 3, small, h, nil); err != nil {
		log.Fatal(err)
	}
	if err := a.Sendm(1, 3, []byte("handler completion"), nil, nil); err != nil {
		log.Fatal(err)
	}
	for !handled.Load() {
		time.Sleep(time.Microsecond)
	}

	sa, sb := a.Stats(), b.Stats()
	fmt.Printf("stats: a sent %d medium / %d puts / %d long; b progress calls %d\n",
		sa.MediumSent, sa.PutsSent, sa.LongSent, sb.ProgressCalls)
}

// popWait spins until a completion appears on q.
func popWait(q *lci.CompQueue) lci.Request {
	for {
		if r, ok := q.Pop(); ok {
			return r
		}
		time.Sleep(time.Microsecond)
	}
}
