// Dfft: a distributed 2-D fast Fourier transform over a row-partitioned
// complex grid — the HPX communication benchmark of arXiv 2504.03657, which
// stresses collectives in a way tree-structured octree traffic does not.
// Each locality FFTs its local rows, the grid is transposed with the
// runtime's pairwise AllToAll (the bandwidth-bound step that dominates
// distributed FFTs), the rows — now columns — are FFTed again, and the
// spectrum is checked three ways: an AllReduce'd Parseval energy identity,
// a full comparison against a serial 2-D FFT at the root, and direct-DFT
// spot checks of individual bins.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/wire"
)

const (
	localities = 4
	gridN      = 64 // rows = cols = gridN; gridN/localities rows per locality
	rpl        = gridN / localities
	seed       = 0x5eed
)

// splitmix64 drives the deterministic input grid.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// sample returns the deterministic input value at (row, col).
func sample(row, col int) complex128 {
	h := splitmix64(seed ^ uint64(row)<<20 ^ uint64(col))
	re := float64(h>>11)/float64(1<<53)*2 - 1
	h = splitmix64(h)
	im := float64(h>>11)/float64(1<<53)*2 - 1
	return complex(re, im)
}

// fft runs an in-place iterative radix-2 Cooley-Tukey transform
// (unnormalized, decimation in time). len(x) must be a power of two.
func fft(x []complex128) {
	n := len(x)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for span := 2; span <= n; span <<= 1 {
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(span)))
		for s := 0; s < n; s += span {
			t := complex(1, 0)
			for k := s; k < s+span/2; k++ {
				u, v := x[k], x[k+span/2]*t
				x[k], x[k+span/2] = u+v, u-v
				t *= w
			}
		}
	}
}

// rowsToBytes flattens rows into interleaved (re, im) float64s.
func rowsToBytes(rows [][]complex128) []byte {
	fs := make([]float64, 0, 2*len(rows)*len(rows[0]))
	for _, r := range rows {
		for _, c := range r {
			fs = append(fs, real(c), imag(c))
		}
	}
	return wire.F64s(fs)
}

// bytesToRows rebuilds n rows of interleaved (re, im) float64s.
func bytesToRows(b []byte, n int) ([][]complex128, error) {
	fs, err := wire.ToF64s(b)
	if err != nil {
		return nil, err
	}
	if len(fs)%(2*n) != 0 {
		return nil, fmt.Errorf("dfft: %d floats do not form %d rows", len(fs), n)
	}
	w := len(fs) / (2 * n)
	rows := make([][]complex128, n)
	for i := range rows {
		rows[i] = make([]complex128, w)
		for j := range rows[i] {
			rows[i][j] = complex(fs[(i*w+j)*2], fs[(i*w+j)*2+1])
		}
	}
	return rows, nil
}

// dfftState is one locality's block of rows (original rows before the
// transpose; transposed rows — i.e. columns — after).
type dfftState struct {
	rows [][]complex128
}

func main() {
	rt, err := core.NewRuntime(core.Config{
		Localities:         localities,
		WorkersPerLocality: 2,
		// Aggregation on: the transpose's many small blocks are exactly the
		// traffic the sender-side bundling layer exists for.
		Parcelport: "lci_agg",
	})
	if err != nil {
		log.Fatal(err)
	}
	states := make([]*dfftState, localities)
	for i := range states {
		states[i] = &dfftState{}
	}

	// dfft_init: fill this locality's row block deterministically.
	rt.MustRegisterAction("dfft_init", func(loc *core.Locality, args [][]byte) [][]byte {
		st := states[loc.ID()]
		st.rows = make([][]complex128, rpl)
		for i := range st.rows {
			st.rows[i] = make([]complex128, gridN)
			for j := range st.rows[i] {
				st.rows[i][j] = sample(loc.ID()*rpl+i, j)
			}
		}
		return nil
	})

	// dfft_rows: FFT every local row in place.
	rt.MustRegisterAction("dfft_rows", func(loc *core.Locality, args [][]byte) [][]byte {
		for _, r := range states[loc.ID()].rows {
			fft(r)
		}
		return nil
	})

	// dfft_pack (AllToAll produce): block d carries my rows restricted to
	// destination d's column range — the (rpl x rpl) tile it needs to
	// assemble its transposed rows.
	rt.MustRegisterAction("dfft_pack", func(loc *core.Locality, args [][]byte) [][]byte {
		st := states[loc.ID()]
		blocks := make([][]byte, localities)
		for d := 0; d < localities; d++ {
			tile := make([][]complex128, rpl)
			for i := range tile {
				tile[i] = st.rows[i][d*rpl : (d+1)*rpl]
			}
			blocks[d] = rowsToBytes(tile)
		}
		return blocks
	})

	// dfft_unpack (AllToAll consume): args[s] is source s's tile; transposed
	// row t (global column loc*rpl+t) collects element [i][t] of every tile,
	// ordered by global row s*rpl+i.
	rt.MustRegisterAction("dfft_unpack", func(loc *core.Locality, args [][]byte) [][]byte {
		st := states[loc.ID()]
		next := make([][]complex128, rpl)
		for t := range next {
			next[t] = make([]complex128, gridN)
		}
		for s := 0; s < localities; s++ {
			tile, err := bytesToRows(args[s], rpl)
			if err != nil {
				log.Fatalf("dfft_unpack from %d: %v", s, err)
			}
			for i := 0; i < rpl; i++ {
				for t := 0; t < rpl; t++ {
					next[t][s*rpl+i] = tile[i][t]
				}
			}
		}
		st.rows = next
		return nil
	})

	// dfft_energy: local contribution to the spectral energy sum.
	rt.MustRegisterAction("dfft_energy", func(loc *core.Locality, args [][]byte) [][]byte {
		var e float64
		for _, r := range states[loc.ID()].rows {
			for _, c := range r {
				e += real(c)*real(c) + imag(c)*imag(c)
			}
		}
		return [][]byte{wire.F64(e)}
	})

	// dfft_dump: this locality's rows, for the root's full verification.
	rt.MustRegisterAction("dfft_dump", func(loc *core.Locality, args [][]byte) [][]byte {
		return [][]byte{rowsToBytes(states[loc.ID()].rows)}
	})

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	// The distributed transform: row FFTs, all-to-all transpose, row FFTs
	// again. The result is the transposed 2-D spectrum: locality d holds
	// transposed rows (= spectrum columns) d*rpl .. (d+1)*rpl-1.
	timeout := time.Minute
	start := time.Now()
	for _, step := range []string{"dfft_init", "dfft_rows"} {
		if err := rt.Broadcast(0, timeout, step); err != nil {
			log.Fatal(err)
		}
	}
	if err := rt.AllToAll(timeout, "dfft_pack", "dfft_unpack"); err != nil {
		log.Fatal(err)
	}
	if err := rt.Broadcast(0, timeout, "dfft_rows"); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Check 1 — Parseval: sum|X|^2 = N * sum|x|^2 for the unnormalized DFT,
	// with the spectral sum computed by the recursive-doubling AllReduce.
	eres, err := rt.AllReduce(timeout, "dfft_energy", wire.SumF64Fold)
	if err != nil {
		log.Fatal(err)
	}
	specEnergy, _ := wire.ToF64(eres[0])
	var inEnergy float64
	for r := 0; r < gridN; r++ {
		for c := 0; c < gridN; c++ {
			v := sample(r, c)
			inEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	wantEnergy := float64(gridN*gridN) * inEnergy
	if rel := math.Abs(specEnergy-wantEnergy) / wantEnergy; rel > 1e-9 {
		log.Fatalf("Parseval MISMATCH: spectral energy %g, want %g (rel err %g)", specEnergy, wantEnergy, rel)
	}

	// Check 2 — full spectrum vs a serial 2-D FFT (row FFTs, then column
	// FFTs directly — no transpose trick, so the reference path is
	// independent of the distributed algorithm's structure).
	dump, err := rt.Gather(0, timeout, "dfft_dump")
	if err != nil {
		log.Fatal(err)
	}
	spectrum := make([][]complex128, gridN) // spectrum[r][c], un-transposed
	for i := range spectrum {
		spectrum[i] = make([]complex128, gridN)
	}
	for d, blobs := range dump {
		tRows, err := bytesToRows(blobs[0], rpl)
		if err != nil {
			log.Fatal(err)
		}
		for t, row := range tRows {
			for r, v := range row {
				spectrum[r][d*rpl+t] = v
			}
		}
	}
	ref := make([][]complex128, gridN)
	for r := range ref {
		ref[r] = make([]complex128, gridN)
		for c := range ref[r] {
			ref[r][c] = sample(r, c)
		}
		fft(ref[r])
	}
	col := make([]complex128, gridN)
	for c := 0; c < gridN; c++ {
		for r := 0; r < gridN; r++ {
			col[r] = ref[r][c]
		}
		fft(col)
		for r := 0; r < gridN; r++ {
			ref[r][c] = col[r]
		}
	}
	var maxErr float64
	for r := 0; r < gridN; r++ {
		for c := 0; c < gridN; c++ {
			if e := cmplx.Abs(spectrum[r][c] - ref[r][c]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 1e-8 {
		log.Fatalf("spectrum MISMATCH: max abs error %g vs serial reference", maxErr)
	}

	// Check 3 — direct DFT spot checks: a few bins evaluated from the
	// definition, independent of any FFT code at all.
	for _, bin := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {7, 13}, {gridN - 1, gridN - 1}} {
		kr, kc := bin[0], bin[1]
		var want complex128
		for r := 0; r < gridN; r++ {
			for c := 0; c < gridN; c++ {
				ph := -2 * math.Pi * (float64(kr*r)/gridN + float64(kc*c)/gridN)
				want += sample(r, c) * cmplx.Exp(complex(0, ph))
			}
		}
		if e := cmplx.Abs(spectrum[kr][kc] - want); e > 1e-7 {
			log.Fatalf("direct DFT MISMATCH at bin (%d,%d): error %g", kr, kc, e)
		}
	}

	fmt.Printf("distributed 2-D FFT of a %dx%d grid across %d localities in %v\n",
		gridN, gridN, localities, elapsed.Round(time.Microsecond))
	fmt.Printf("Parseval energy %.6g matches N*input energy; max spectrum error %.3g\n", specEnergy, maxErr)
	fmt.Println("verified: distributed FFT matches the serial reference and direct DFT")
}
