// Poisson: solve a 3-D Poisson problem with distributed conjugate gradient
// across four localities — the "sparse numerical solver" workload the
// paper's introduction motivates. Each CG iteration performs a halo
// exchange through the parcelport under test and global dot products
// through the runtime's Reduce collective.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/sparse"
)

func main() {
	grid := sparse.Grid{NX: 12, NY: 12, NZ: 12}

	rt, err := core.NewRuntime(core.Config{
		Localities:         4,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
	})
	if err != nil {
		log.Fatal(err)
	}
	solver, err := sparse.New(rt, sparse.Params{Grid: grid, MaxIter: 400, Tol: 1e-9})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	// Manufactured solution: x*_i = sin(i), b = A x* from the stencil.
	n := grid.N()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i))
	}
	b := make([]float64, n)
	idx := func(x, y, z int) int { return x + grid.NX*(y+grid.NY*z) }
	for z := 0; z < grid.NZ; z++ {
		for y := 0; y < grid.NY; y++ {
			for x := 0; x < grid.NX; x++ {
				i := idx(x, y, z)
				acc := 6 * xTrue[i]
				if x > 0 {
					acc -= xTrue[idx(x-1, y, z)]
				}
				if x < grid.NX-1 {
					acc -= xTrue[idx(x+1, y, z)]
				}
				if y > 0 {
					acc -= xTrue[idx(x, y-1, z)]
				}
				if y < grid.NY-1 {
					acc -= xTrue[idx(x, y+1, z)]
				}
				if z > 0 {
					acc -= xTrue[idx(x, y, z-1)]
				}
				if z < grid.NZ-1 {
					acc -= xTrue[idx(x, y, z+1)]
				}
				b[i] = acc
			}
		}
	}
	if err := solver.SetRHS(b); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := solver.Solve()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	x := solver.Solution()
	var maxErr float64
	for i := range x {
		if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("grid %dx%dx%d (N=%d) on 4 localities\n", grid.NX, grid.NY, grid.NZ, n)
	fmt.Printf("CG converged=%v in %d iterations, relres=%.2e (%v)\n",
		res.Converged, res.Iterations, res.RelRes, elapsed.Round(time.Millisecond))
	fmt.Printf("max |x - x*| = %.2e\n", maxErr)
	if !res.Converged || maxErr > 1e-6 {
		log.Fatal("solve failed verification")
	}
	fmt.Println("verified against the manufactured solution")
}
