// Kvserve: the serving-shaped workload — a consistent-hash-sharded
// key-value service on the runtime, read through a per-locality hot-key
// cache with single-flight miss coalescing and admission control, then
// driven with an open-loop Zipf load that reports p50/p99/p999.
//
// This is the "heavy traffic from millions of users" shape scaled to one
// process: locality 0 is a client-only driver simulating hundreds of
// concurrent clients; the other localities own the ring and answer
// __serve_get/__serve_put actions over the LCI parcelport.
package main

import (
	"fmt"
	"log"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/serve"
)

func main() {
	rt, err := core.NewRuntime(core.Config{
		Localities:         3,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Aggregation:        true, // bundle the small GET/PUT parcels
	})
	if err != nil {
		log.Fatal(err)
	}

	// Localities 1 and 2 own the hash ring; each client locality gets a
	// 4096-entry set-associative cache with lock-free reads.
	svc, err := serve.New(rt, serve.Config{
		Owners:       []int{1, 2},
		CacheEntries: 4096,
		CallTimeout:  time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	defer rt.Shutdown()

	// Basic lifecycle through the driver's client: write-through Put,
	// cached Get, Del with cache invalidation.
	c := svc.Client(0)
	if err := c.Put("user:42", []byte("alice")); err != nil {
		log.Fatal(err)
	}
	v, found, err := c.Get("user:42")
	if err != nil || !found {
		log.Fatalf("Get: found=%v err=%v", found, err)
	}
	fmt.Printf("GET user:42 = %q (owner locality %d)\n", v, svc.Ring().KeyOwner("user:42"))

	// Open-loop Zipf load: 128 simulated clients, 95% GETs, latency
	// measured from each request's scheduled arrival.
	keys := serve.KeySet(1024)
	svc.Preload(keys, []byte("warm value"))
	res, err := serve.RunLoad(svc, 0, serve.LoadParams{
		Clients: 128,
		Total:   8000,
		Keys:    1024,
		Zipf:    true,
		Rate:    50e3,
		Timeout: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zipf load: %.0f ops/s  p50=%.1fus p99=%.1fus p999=%.1fus  hit-rate=%.2f\n",
		res.Throughput, res.P50Us, res.P99Us, res.P999Us, res.HitRate)

	st := c.Stats()
	fmt.Printf("client: %d cache hits, %d shard calls, %d coalesced followers\n",
		st.CacheHits, st.ShardCalls, st.Coalesced)
	if res.Completed+res.SplitShed == res.Offered && res.HitRate > 0.3 {
		fmt.Println("verified: serving tier absorbed the hot set")
	}
}
