package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrips(t *testing.T) {
	if v, err := ToU32(U32(0xDEADBEEF)); err != nil || v != 0xDEADBEEF {
		t.Fatalf("u32: %v %v", v, err)
	}
	if v, err := ToU64(U64(1 << 60)); err != nil || v != 1<<60 {
		t.Fatalf("u64: %v %v", v, err)
	}
	if v, err := ToF64(F64(-3.25)); err != nil || v != -3.25 {
		t.Fatalf("f64: %v %v", v, err)
	}
	if ToString(String("hi")) != "hi" {
		t.Fatal("string")
	}
}

func TestScalarErrors(t *testing.T) {
	if _, err := ToU32([]byte{1}); err == nil {
		t.Fatal("short u32")
	}
	if _, err := ToU64([]byte{1, 2, 3}); err == nil {
		t.Fatal("short u64")
	}
	if _, err := ToF64(nil); err == nil {
		t.Fatal("nil f64")
	}
	if _, err := ToU32s([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged u32s")
	}
	if _, err := ToF64s([]byte{1}); err == nil {
		t.Fatal("ragged f64s")
	}
}

func TestSliceRoundTripProperty(t *testing.T) {
	fu := func(vs []uint32) bool {
		got, err := ToU32s(U32s(vs))
		if err != nil || len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fu, nil); err != nil {
		t.Fatal(err)
	}
	ff := func(vs []float64) bool {
		got, err := ToF64s(F64s(vs))
		if err != nil || len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] && !(math.IsNaN(got[i]) && math.IsNaN(vs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(ff, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFolds(t *testing.T) {
	acc := [][]byte{F64(1.5)}
	out := SumF64Fold(acc, [][]byte{F64(2.25)})
	if v, _ := ToF64(out[0]); v != 3.75 {
		t.Fatalf("f64 fold = %v", v)
	}
	out = SumU64Fold([][]byte{U64(40)}, [][]byte{U64(2)})
	if v, _ := ToU64(out[0]); v != 42 {
		t.Fatalf("u64 fold = %v", v)
	}
}
