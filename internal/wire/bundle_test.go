package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestBundleRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("first"),
		{}, // empty frames are legal
		bytes.Repeat([]byte{0xab}, 300),
		[]byte("last"),
	}
	buf := BeginBundle(GetBuf(0))
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	if !IsBundle(buf) {
		t.Fatal("IsBundle = false for a freshly built bundle")
	}
	if got := BundleFrameCount(buf); got != len(payloads) {
		t.Fatalf("frame count = %d, want %d", got, len(payloads))
	}
	var got [][]byte
	err := ForEachFrame(buf, func(frame []byte) error {
		got = append(got, append([]byte(nil), frame...))
		return nil
	})
	if err != nil {
		t.Fatalf("ForEachFrame: %v", err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("iterated %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("frame %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestBundleRejectsMalformed(t *testing.T) {
	ok := AppendFrame(AppendFrame(BeginBundle(nil), []byte("aa")), []byte("bb"))
	nop := func([]byte) error { return nil }

	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short", ok[:3]},
		{"plain message", binary.LittleEndian.AppendUint32(nil, 0x48505831)},
		{"frame header truncated", ok[:len(ok)-3-FrameHeaderSize]},
		{"frame payload truncated", ok[:len(ok)-1]},
		{"trailing garbage", append(append([]byte(nil), ok...), 0xff)},
	} {
		if err := ForEachFrame(tc.b, nop); err == nil {
			t.Errorf("%s: ForEachFrame accepted a malformed bundle", tc.name)
		}
		if tc.name != "frame header truncated" && tc.name != "frame payload truncated" && tc.name != "trailing garbage" {
			if IsBundle(tc.b) {
				t.Errorf("%s: IsBundle = true", tc.name)
			}
		}
	}

	// A count claiming more frames than the bytes hold must error, not scan
	// past the end.
	over := append([]byte(nil), ok...)
	binary.LittleEndian.PutUint32(over[4:], 100)
	if err := ForEachFrame(over, nop); err == nil {
		t.Error("overstated frame count accepted")
	}
}

func TestGetBufPutBuf(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 1 << 20} {
		b := GetBuf(n)
		if len(b) != n {
			t.Fatalf("GetBuf(%d) has len %d", n, len(b))
		}
		for i := range b {
			b[i] = byte(i)
		}
		PutBuf(b)
	}
	// A pooled buffer must come back with its class capacity so in-need
	// appends never reallocate.
	b := GetBuf(100)
	if cap(b) != 256 {
		t.Fatalf("GetBuf(100) cap = %d, want class cap 256", cap(b))
	}
	PutBuf(b)
	// Oversize buffers bypass the pool entirely.
	big := GetBuf(poolClasses[len(poolClasses)-1] + 1)
	if cap(big) != len(big) {
		t.Fatalf("oversize GetBuf got cap %d, want %d", cap(big), len(big))
	}
	PutBuf(big) // must not panic
}

// TestAppendFrameHeader verifies the in-place-encode variant produces the
// same bundle as AppendFrame when the caller appends the payload itself.
func TestAppendFrameHeader(t *testing.T) {
	payloads := [][]byte{[]byte("one"), {}, []byte("three33")}
	viaCopy := BeginBundle(nil)
	viaHeader := BeginBundle(nil)
	for _, p := range payloads {
		viaCopy = AppendFrame(viaCopy, p)
		viaHeader = append(AppendFrameHeader(viaHeader, len(p)), p...)
	}
	if !bytes.Equal(viaCopy, viaHeader) {
		t.Fatalf("bundles differ:\n copy   %x\n header %x", viaCopy, viaHeader)
	}
	if got := BundleFrameCount(viaHeader); got != len(payloads) {
		t.Fatalf("frame count = %d, want %d", got, len(payloads))
	}
	var seen int
	if err := ForEachFrame(viaHeader, func(frame []byte) error {
		if !bytes.Equal(frame, payloads[seen]) {
			t.Fatalf("frame %d = %q, want %q", seen, frame, payloads[seen])
		}
		seen++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
