package wire

import (
	"encoding/binary"
	"fmt"
)

// Bundle framing: the sub-message codec of the sender-side aggregation
// layer. A bundle packs several independently serialized HPX messages
// (their non-zero-copy chunks) bound for the same destination into one
// parcelport transfer:
//
//	u32 magic "HPXB" | u32 count | count × (u32 length | payload)
//
// The magic is distinct from the serialization package's message magic
// ("HPX1"), so the receiver can tell a bundle from a plain message by
// looking at the first four bytes and unbundle before delivery.

// BundleMagic marks a bundle ("HPXB" in the package's little-endian style).
const BundleMagic uint32 = 0x48505842

// BundleHeaderSize is the fixed bundle prefix: magic plus frame count.
const BundleHeaderSize = 8

// FrameHeaderSize is the per-frame length prefix.
const FrameHeaderSize = 4

// ErrBundle is returned by ForEachFrame for malformed bundles.
var ErrBundle = fmt.Errorf("wire: malformed bundle")

// IsBundle reports whether b starts with the bundle magic.
func IsBundle(b []byte) bool {
	return len(b) >= BundleHeaderSize && binary.LittleEndian.Uint32(b) == BundleMagic
}

// BeginBundle appends an empty bundle header to buf (normally a
// zero-length slice from GetBuf) and returns the extended slice.
func BeginBundle(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, BundleMagic)
	return binary.LittleEndian.AppendUint32(buf, 0)
}

// AppendFrame appends one length-prefixed frame holding payload and bumps
// the bundle's frame count. The payload is copied, so the caller's buffer
// is free for reuse on return.
func AppendFrame(buf, payload []byte) []byte {
	binary.LittleEndian.PutUint32(buf[4:], binary.LittleEndian.Uint32(buf[4:])+1)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// AppendFrameHeader bumps the bundle's frame count and appends the length
// prefix of a frame whose payloadLen bytes the caller appends next. It is
// the in-place-encode variant of AppendFrame: the caller writes the payload
// directly into the bundle instead of copying it from a scratch buffer.
func AppendFrameHeader(buf []byte, payloadLen int) []byte {
	binary.LittleEndian.PutUint32(buf[4:], binary.LittleEndian.Uint32(buf[4:])+1)
	return binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
}

// BundleFrameCount returns the frame count of a bundle (0 for non-bundles).
func BundleFrameCount(b []byte) int {
	if !IsBundle(b) {
		return 0
	}
	return int(binary.LittleEndian.Uint32(b[4:]))
}

// ForEachFrame walks the frames of a bundle in order, calling fn with each
// payload (aliasing b, capacity-clipped). It stops at the first error —
// either a truncation/trailing-garbage ErrBundle or an error from fn.
func ForEachFrame(b []byte, fn func(frame []byte) error) error {
	if !IsBundle(b) {
		return fmt.Errorf("%w: missing magic", ErrBundle)
	}
	count := int(binary.LittleEndian.Uint32(b[4:]))
	off := BundleHeaderSize
	for i := 0; i < count; i++ {
		if len(b)-off < FrameHeaderSize {
			return fmt.Errorf("%w: frame %d header truncated", ErrBundle, i)
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += FrameHeaderSize
		if n < 0 || n > len(b)-off {
			return fmt.Errorf("%w: frame %d payload truncated", ErrBundle, i)
		}
		if err := fn(b[off : off+n : off+n]); err != nil {
			return err
		}
		off += n
	}
	if off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBundle, len(b)-off)
	}
	return nil
}
