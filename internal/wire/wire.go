// Package wire provides small typed helpers for encoding action arguments
// and results. Parcels carry opaque byte blobs; applications repeatedly
// need the same little-endian scalar and slice encodings, collected here.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// U32 encodes a uint32.
func U32(v uint32) []byte {
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, v)
	return out
}

// ToU32 decodes a U32 blob.
func ToU32(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("wire: u32 blob has %d bytes", len(b))
	}
	return binary.LittleEndian.Uint32(b), nil
}

// U64 encodes a uint64.
func U64(v uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, v)
	return out
}

// ToU64 decodes a U64 blob.
func ToU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("wire: u64 blob has %d bytes", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// F64 encodes a float64.
func F64(v float64) []byte { return U64(math.Float64bits(v)) }

// ToF64 decodes an F64 blob.
func ToF64(b []byte) (float64, error) {
	u, err := ToU64(b)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

// U32s encodes a uint32 slice.
func U32s(vs []uint32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// ToU32s decodes a U32s blob.
func ToU32s(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("wire: u32 slice blob has %d bytes", len(b))
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out, nil
}

// F64s encodes a float64 slice.
func F64s(vs []float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// ToF64s decodes an F64s blob.
func ToF64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("wire: f64 slice blob has %d bytes", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// String encodes a string.
func String(s string) []byte { return []byte(s) }

// ToString decodes a String blob.
func ToString(b []byte) string { return string(b) }

// ChecksumSeed is the FNV-1a 32-bit offset basis, the starting value for
// Checksum32Add chains.
const ChecksumSeed uint32 = 2166136261

// Checksum32 returns the FNV-1a hash of b: the integrity checksum the fabric
// stamps on packet headers to detect payload corruption.
func Checksum32(b []byte) uint32 { return Checksum32Add(ChecksumSeed, b) }

// Checksum32Add folds b into a running Checksum32 value, so multi-segment
// packets (metadata + payload) hash without concatenation.
func Checksum32Add(h uint32, b []byte) uint32 {
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// SumF64Fold is the float64-sum fold for Runtime.Reduce: both blobs must be
// single F64 results.
func SumF64Fold(acc, partial [][]byte) [][]byte {
	a, _ := ToF64(acc[0])
	p, _ := ToF64(partial[0])
	return [][]byte{F64(a + p)}
}

// SumU64Fold is the uint64-sum fold for Runtime.Reduce.
func SumU64Fold(acc, partial [][]byte) [][]byte {
	a, _ := ToU64(acc[0])
	p, _ := ToU64(partial[0])
	return [][]byte{U64(a + p)}
}
