package wire

import "sync"

// Size-classed byte-buffer pool backing the hot-path allocations of the
// network stack: sender-side header buffers in the parcelports, aggregation
// bundles, and serialization scratch. Buffers are handed out at the exact
// requested length but always carry the capacity of their size class, so a
// caller that appends within its declared need never reallocates.
//
// Ownership is strict: PutBuf may only be called by the single owner of the
// buffer, once nothing aliases it. Returning a buffer that is still
// referenced corrupts a future unrelated message.

// poolClasses are the buffer capacities kept in pools, smallest first.
// Requests above the largest class fall back to plain allocation.
var poolClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}

var pools [len(poolClasses)]sync.Pool

// bufBox carries a slice through sync.Pool behind a pointer: putting a bare
// []byte into a pool boxes its header on every Put, which would make buffer
// recycle itself allocate. Empty boxes recycle through boxPool, so in steady
// state a Get/Put cycle performs zero allocations.
type bufBox struct{ b []byte }

var boxPool = sync.Pool{New: func() any { return new(bufBox) }}

// GetBuf returns a buffer of length n. Contents are unspecified (recycled
// buffers keep their previous bytes); callers must overwrite what they use.
func GetBuf(n int) []byte {
	for i, c := range poolClasses {
		if n <= c {
			if v := pools[i].Get(); v != nil {
				box := v.(*bufBox)
				b := box.b[:n]
				box.b = nil
				boxPool.Put(box)
				return b
			}
			return make([]byte, n, c)
		}
	}
	return make([]byte, n)
}

// PutBuf returns a buffer obtained from GetBuf to its pool. Buffers whose
// capacity is not exactly a pool class (e.g. oversize fallbacks, or slices
// the caller grew past their class) are left to the garbage collector.
func PutBuf(b []byte) {
	c := cap(b)
	for i, pc := range poolClasses {
		if c == pc {
			box := boxPool.Get().(*bufBox)
			box.b = b[:0:pc]
			pools[i].Put(box)
			return
		}
	}
}
