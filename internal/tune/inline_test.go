package tune

import "testing"

// inlineTick feeds one tick interval of inline-lane observations for dst,
// then runs the control pass.
func (s *sim) inlineTick(dst int, runs int, svcNs int64, spills int) {
	for i := 0; i < runs; i++ {
		s.ctl.ObserveInline(dst, svcNs)
	}
	if spills > 0 {
		s.ctl.ObserveInlineSpill(dst, spills)
	}
	s.now += s.ctl.cfg.TickNs
	s.ctl.Tick(s.now)
}

// TestInlineBudgetSeedsAtConfig: parity before evidence.
func TestInlineBudgetSeedsAtConfig(t *testing.T) {
	s := newSim(Config{Dests: 2, InlineBudget: 48})
	if got := s.ctl.InlineBudget(1); got != 48 {
		t.Fatalf("seed budget = %d, want 48", got)
	}
	if got := s.ctl.InlineBudget(-1); got != 48 {
		t.Fatalf("out-of-range dst budget = %d, want static 48", got)
	}
	if s.ctl.InlineHeavyNs() <= 0 {
		t.Fatal("InlineHeavyNs must default positive")
	}
}

// TestInlineBudgetShrinksOnHeavyServiceAndRecovers: a destination whose
// actions run heavy loses budget down to the floor of 1 — never 0, so the
// EWMA stays fed — and relaxes back to the seed once the workload lightens.
func TestInlineBudgetShrinksOnHeavyServiceAndRecovers(t *testing.T) {
	s := newSim(Config{Dests: 2, InlineBudget: 32, InlineHeavyNs: 20_000})
	for i := 0; i < 20; i++ {
		s.inlineTick(1, 8, 100_000, 0) // 100µs per action: heavy
	}
	if got := s.ctl.Peer(1).InlineBudget; got != 1 {
		t.Fatalf("budget under sustained heavy service = %d, want floor 1", got)
	}
	// Light traffic again: the floor-1 inline run keeps observing, the EWMA
	// decays below the ceiling, and the budget relaxes to the seed.
	for i := 0; i < 40; i++ {
		s.inlineTick(1, 8, 1_000, 0)
	}
	if got := s.ctl.Peer(1).InlineBudget; got != 32 {
		t.Fatalf("budget after recovery = %d, want seed 32", got)
	}
}

// TestInlineBudgetGrowsOnSpillUnderBacklog: spills alone must not grow the
// budget (the cap may be doing its job); spills while the worker pool is
// backlogged must, up to the bound.
func TestInlineBudgetGrowsOnSpillUnderBacklog(t *testing.T) {
	s := newSim(Config{Dests: 2, InlineBudget: 32, MaxInlineBudget: 128})

	// Spills with an idle pool: hold (relax law keeps it at the seed).
	for i := 0; i < 10; i++ {
		s.inlineTick(1, 8, 1_000, 16)
	}
	if got := s.ctl.Peer(1).InlineBudget; got != 32 {
		t.Fatalf("budget after spills without backlog = %d, want 32", got)
	}

	// Spills with a saturated pool: grow to the cap.
	s.pending = backlogHigh + 100
	for i := 0; i < 10; i++ {
		s.inlineTick(1, 8, 1_000, 16)
	}
	if got := s.ctl.Peer(1).InlineBudget; got != 128 {
		t.Fatalf("budget under spills+backlog = %d, want cap 128", got)
	}

	// Backlog gone: relax back to the seed.
	s.pending = 0
	for i := 0; i < 20; i++ {
		s.inlineTick(1, 8, 1_000, 0)
	}
	if got := s.ctl.Peer(1).InlineBudget; got != 32 {
		t.Fatalf("budget after backlog cleared = %d, want seed 32", got)
	}
}

// TestInlineBudgetBounded: whatever the observation stream, the budget
// stays within [1, MaxInlineBudget] — monotone actuation toward clamped
// targets, like every other law.
func TestInlineBudgetBounded(t *testing.T) {
	s := newSim(Config{Dests: 2, InlineBudget: 16, MaxInlineBudget: 64})
	rngState := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return int(rngState % uint64(n))
	}
	for i := 0; i < 500; i++ {
		s.pending = int64(next(2 * backlogHigh))
		svc := int64(100 + next(200_000))
		s.inlineTick(1, 1+next(16), svc, next(32))
		got := s.ctl.Peer(1).InlineBudget
		if got < 1 || got > 64 {
			t.Fatalf("tick %d: budget %d escaped [1, 64]", i, got)
		}
	}
}

// TestInlineIdlePeerHolds: no inline traffic means no budget movement (the
// laws only act on live signals).
func TestInlineIdlePeerHolds(t *testing.T) {
	s := newSim(Config{Dests: 3, InlineBudget: 32})
	// Heavy traffic on peer 1 only; peer 2 stays silent.
	for i := 0; i < 10; i++ {
		s.inlineTick(1, 8, 100_000, 0)
	}
	if got := s.ctl.Peer(2).InlineBudget; got != 32 {
		t.Fatalf("idle peer's budget moved to %d, want seed 32", got)
	}
	if got := s.ctl.Peer(1).InlineBudget; got >= 32 {
		t.Fatalf("heavy peer's budget did not shrink: %d", got)
	}
}
