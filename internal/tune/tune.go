// Package tune is the adaptive control layer that replaces the stack's
// static protocol knobs with per-destination feedback controllers. The
// motivation follows the paper's own Table 1 analysis: no single point in
// the design space (bundling vs send-immediate, eager vs rendezvous cutoff,
// progress-thread count) wins on every workload, so the right configuration
// is something the runtime should find, not the operator.
//
// Three controllers share one Controller object:
//
//   - Aggregation: per destination, the effective flush size, flush age and
//     bundling/send-immediate choice move with the observed send rate
//     (interarrival EWMA), bundle fill at flush time, egress queue depth and
//     the ARQ's smoothed ack RTT. Hot peers bundle with a flush age tied to
//     a fraction of the link RTT; cold peers bypass buffering entirely, as
//     do bandwidth-bound peers whose traffic is dominated by rendezvous
//     transfers (bundling cannot relieve a full pipe).
//   - Eager/rendezvous threshold: per destination, the zero-copy cutoff
//     descends under observed pool pressure (resource-exhaustion retries)
//     when the destination's message-size histogram shows mass that a lower
//     cutoff would move off the packet pools, and recovers to the
//     configured static value after sustained calm.
//   - Progress scaling: LoadWatermark is the shared utilization window the
//     lci parcelport uses to add or park dedicated progress goroutines
//     between load watermarks.
//
// Every signal-ingest method (ObserveSend, ObserveFlush, ObserveParcel) and
// every knob read (AggKnobs, Threshold) is lock-free and allocation-free:
// fixed per-destination structs, atomics only. The control laws themselves
// run in Tick, rate-gated to one pass per TickNs, off the per-message path.
// All actuation is clamped to explicit bounds, and every law moves knobs
// monotonically toward a clamped target, so the controllers converge
// instead of oscillating (see the property tests).
package tune

import (
	"sync"
	"sync/atomic"

	"hpxgo/internal/stats"
)

// Signals provides the runtime measurements the controllers read. Any field
// may be nil; the corresponding law then holds its knob at the static
// default.
type Signals struct {
	// RTTNs returns the smoothed send→ack round trip toward dst in ns
	// (0 = unknown). Fed from fabric.Device.LinkRTTNs.
	RTTNs func(dst int) int64
	// QueueDepth returns the packets queued toward dst that the peer has
	// not yet drained. Fed from fabric.Device.EgressQueueDepth.
	QueueDepth func(dst int) int
	// PoolRetries returns the cumulative count of resource-exhaustion
	// retries (packet pool empty, backpressure). Fed from lci device stats.
	PoolRetries func() uint64
	// PendingTasks returns the locality's spawned-but-unfinished task count
	// (the amt scheduler backlog). Fed from amt.Scheduler.Pending; the
	// inline-budget law uses it as its occupancy signal.
	PendingTasks func() int64
}

// Config bounds the controllers' actuation. Zero values select defaults.
type Config struct {
	// Dests is the number of destinations (required).
	Dests int

	// FlushBytes/FlushDelayNs seed every destination's aggregation knobs
	// (the hand-tuned static values; the controllers start from parity).
	FlushBytes   int
	FlushDelayNs int64

	// Aggregation actuation bounds.
	MinFlushBytes   int
	MaxFlushBytes   int
	MinFlushDelayNs int64
	MaxFlushDelayNs int64

	// ZCThreshold is the configured static zero-copy threshold — the upper
	// actuation bound (the adaptive cutoff only ever descends from it, so
	// the receiver's pooled-buffer safety reasoning is untouched).
	ZCThreshold int
	// MinZCThreshold floors the descent.
	MinZCThreshold int

	// StripeWidth seeds the per-destination rendezvous stripe width (how
	// many rails one chunked long transfer spreads across). Zero seeds at
	// MaxStripeWidth — use every rail until evidence says otherwise.
	StripeWidth int
	// MinStripeWidth / MaxStripeWidth bound the stripe-width actuation.
	// MaxStripeWidth should be the fabric's rail count (widths above it are
	// indistinguishable from it); both default to 1 when unset.
	MinStripeWidth int
	MaxStripeWidth int

	// InlineBudget seeds the per-destination inline-execution budget: how
	// many small parcels one completion-drain pass may run to completion on
	// the draining goroutine before spilling the rest to spawned tasks.
	// Default DefaultInlineBudget.
	InlineBudget int
	// MaxInlineBudget bounds the budget's growth. Default 4× InlineBudget.
	MaxInlineBudget int
	// InlineHeavyNs is the per-action service-time EWMA above which a
	// destination's actions are considered too heavy to run inline (each
	// inline run stalls the drain by its full service time). Default 20µs.
	InlineHeavyNs int64
	// DrainBatch is the completion-drain batch seed the parcelports run
	// with (shared round-robin budget per drain pass; the LCI engine's
	// ProgressBatch derives as 2×). Static today — recorded here so the
	// controller sees the knob it shares the drain goroutine with, and so
	// a future law has its seed. Default DefaultDrainBatch.
	DrainBatch int

	// TickNs rate-gates the control pass.
	TickNs int64
	// PressureHigh is the per-tick retry delta that triggers threshold
	// descent.
	PressureHigh uint64
	// CalmTicks is how many pressure-free ticks precede threshold ascent.
	CalmTicks int
}

func (c *Config) fillDefaults() {
	if c.FlushBytes <= 0 {
		c.FlushBytes = 4096
	}
	if c.FlushDelayNs <= 0 {
		c.FlushDelayNs = 50_000
	}
	if c.MinFlushBytes <= 0 {
		c.MinFlushBytes = 512
	}
	if c.MaxFlushBytes <= 0 {
		c.MaxFlushBytes = 16384
	}
	if c.MinFlushDelayNs <= 0 {
		c.MinFlushDelayNs = 5_000
	}
	if c.MaxFlushDelayNs <= 0 {
		c.MaxFlushDelayNs = 200_000
	}
	if c.ZCThreshold <= 0 {
		c.ZCThreshold = 8192
	}
	if c.MinZCThreshold <= 0 {
		c.MinZCThreshold = 1024
	}
	if c.MinZCThreshold > c.ZCThreshold {
		c.MinZCThreshold = c.ZCThreshold
	}
	if c.MinStripeWidth <= 0 {
		c.MinStripeWidth = 1
	}
	if c.MaxStripeWidth <= 0 {
		c.MaxStripeWidth = 1
	}
	if c.MinStripeWidth > c.MaxStripeWidth {
		c.MinStripeWidth = c.MaxStripeWidth
	}
	if c.StripeWidth <= 0 {
		c.StripeWidth = c.MaxStripeWidth
	}
	if c.StripeWidth < c.MinStripeWidth {
		c.StripeWidth = c.MinStripeWidth
	}
	if c.StripeWidth > c.MaxStripeWidth {
		c.StripeWidth = c.MaxStripeWidth
	}
	if c.InlineBudget <= 0 {
		c.InlineBudget = DefaultInlineBudget
	}
	if c.MaxInlineBudget <= 0 {
		c.MaxInlineBudget = 4 * c.InlineBudget
	}
	if c.MaxInlineBudget < c.InlineBudget {
		c.MaxInlineBudget = c.InlineBudget
	}
	if c.InlineHeavyNs <= 0 {
		c.InlineHeavyNs = 20_000
	}
	if c.DrainBatch <= 0 {
		c.DrainBatch = DefaultDrainBatch
	}
	if c.TickNs <= 0 {
		c.TickNs = 1_000_000 // 1ms
	}
	if c.PressureHigh == 0 {
		c.PressureHigh = 4
	}
	if c.CalmTicks <= 0 {
		c.CalmTicks = 4
	}
}

// Queue-depth watermarks for the flush-size law: above deep the peer is
// congested (bundle harder); below shallow growth is safe latency-wise.
const (
	depthDeep    = 128
	depthShallow = 16
)

// DefaultInlineBudget is the seed for the per-destination inline-execution
// budget (parcels run to completion per drain pass). The value is the common
// bundle size at full aggregation: one typical bundle of small parcels runs
// entirely inline, and anything beyond it spills to spawned tasks.
const DefaultInlineBudget = 32

// backlogHigh is the scheduler-backlog watermark for the inline-budget law:
// above it the worker pool is saturated, so running a small parcel inline is
// cheaper than queueing it behind the backlog.
const backlogHigh = 256

// DefaultDrainBatch is the completion-drain batch seed: the shared
// round-robin budget one lcipp drain pass pops across all completion
// queues. The LCI engine's ProgressBatch derives as 2× this value —
// the ratio the pre-knob constants (64:32) shipped with.
const DefaultDrainBatch = 32

// bypassLargeFrac: once this fraction of a destination's parcels travel the
// rendezvous path (size ≥ the static zero-copy threshold), the link to that
// peer is bandwidth-bound, not injection-rate-bound — bundling the small
// remainder cannot relieve the bottleneck and only queues those messages
// behind large transfers, so the peer switches to send-immediate.
const bypassLargeFrac = 0.25

// peer is one destination's controller state: the knobs the datapath reads
// (atomics, lock-free) plus the observation accumulators the laws consume.
type peer struct {
	// Knobs.
	flushBytes   atomic.Int64
	flushDelayNs atomic.Int64
	coldIdleNs   atomic.Int64
	bypass       atomic.Bool
	zcThreshold  atomic.Int64
	stripe       atomic.Int64
	inlineBudget atomic.Int64

	// Observations (per-message ingest).
	lastSendNs   atomic.Int64
	gapEwmaNs    atomic.Int64 // send interarrival EWMA (α = 1/4)
	sends        atomic.Uint64
	fillEwma     atomic.Int64 // bundle bytes at flush (α = 1/4)
	sizeFl       atomic.Uint64
	ageFl        atomic.Uint64
	sizeHist     stats.Hist
	inlSvcEwmaNs atomic.Int64 // inline-run service time EWMA (α = 1/4)
	inlRuns      atomic.Uint64
	inlSpills    atomic.Uint64

	// Tick-private state (only the elected Tick runner touches these).
	calm        int
	lastSends   uint64
	lastSzFl    uint64
	lastAgeFl   uint64
	lastInlRuns uint64
	lastInlSpl  uint64
}

// PeerSnapshot is a plain-value view of one destination's knobs and key
// observations (tests, stats reporting).
type PeerSnapshot struct {
	FlushBytes      int
	FlushDelayNs    int64
	ColdIdleNs      int64
	Bypass          bool
	ZCThreshold     int
	StripeWidth     int
	GapEwmaNs       int64
	Sends           uint64
	InlineBudget    int
	InlineSvcEwmaNs int64
	InlineRuns      uint64
	InlineSpills    uint64
}

// Controller holds every per-destination feedback loop of one locality.
type Controller struct {
	cfg   Config
	sig   Signals
	peers []peer

	tickGate    atomic.Int64
	mu          sync.Mutex // serializes Tick bodies (gate elects, mu protects)
	lastRetries uint64
	ticks       atomic.Uint64
}

// NewController builds the control state for cfg.Dests destinations, seeded
// at the static configuration (parity until evidence accumulates).
func NewController(cfg Config, sig Signals) *Controller {
	cfg.fillDefaults()
	c := &Controller{cfg: cfg, sig: sig, peers: make([]peer, cfg.Dests)}
	for i := range c.peers {
		p := &c.peers[i]
		p.flushBytes.Store(int64(cfg.FlushBytes))
		p.flushDelayNs.Store(cfg.FlushDelayNs)
		p.coldIdleNs.Store(4 * cfg.FlushDelayNs)
		p.zcThreshold.Store(int64(cfg.ZCThreshold))
		p.stripe.Store(int64(cfg.StripeWidth))
		p.inlineBudget.Store(int64(cfg.InlineBudget))
	}
	return c
}

// Ticks reports completed control passes (tests).
func (c *Controller) Ticks() uint64 { return c.ticks.Load() }

// Peer returns dst's current knob/observation snapshot.
func (c *Controller) Peer(dst int) PeerSnapshot {
	if dst < 0 || dst >= len(c.peers) {
		return PeerSnapshot{}
	}
	p := &c.peers[dst]
	return PeerSnapshot{
		FlushBytes:      int(p.flushBytes.Load()),
		FlushDelayNs:    p.flushDelayNs.Load(),
		ColdIdleNs:      p.coldIdleNs.Load(),
		Bypass:          p.bypass.Load(),
		ZCThreshold:     int(p.zcThreshold.Load()),
		StripeWidth:     int(p.stripe.Load()),
		GapEwmaNs:       p.gapEwmaNs.Load(),
		Sends:           p.sends.Load(),
		InlineBudget:    int(p.inlineBudget.Load()),
		InlineSvcEwmaNs: p.inlSvcEwmaNs.Load(),
		InlineRuns:      p.inlRuns.Load(),
		InlineSpills:    p.inlSpills.Load(),
	}
}

// --- datapath ingest & knob reads (lock-free, allocation-free) ---

// AggKnobs returns dst's effective aggregation policy. Implements the
// parcelport Tuner hook.
func (c *Controller) AggKnobs(dst int) (flushBytes int, flushDelayNs, coldIdleNs int64, bypass bool) {
	if dst < 0 || dst >= len(c.peers) {
		return c.cfg.FlushBytes, c.cfg.FlushDelayNs, 4 * c.cfg.FlushDelayNs, false
	}
	p := &c.peers[dst]
	return int(p.flushBytes.Load()), p.flushDelayNs.Load(), p.coldIdleNs.Load(), p.bypass.Load()
}

// ObserveSend records one bundleable send toward dst (bundled or direct).
func (c *Controller) ObserveSend(dst, size int, nowNs int64) {
	if dst < 0 || dst >= len(c.peers) {
		return
	}
	p := &c.peers[dst]
	p.sends.Add(1)
	last := p.lastSendNs.Swap(nowNs)
	if last > 0 && nowNs > last {
		gap := nowNs - last
		old := p.gapEwmaNs.Load()
		if old == 0 {
			p.gapEwmaNs.Store(gap)
		} else {
			p.gapEwmaNs.Store(old + (gap-old)/4)
		}
	}
}

// ObserveFlush records one bundle flush toward dst: the bundle's size, its
// frame count, its age, and whether the size policy (vs the age policy)
// triggered it.
func (c *Controller) ObserveFlush(dst, bytes, frames int, ageNs int64, bySize bool) {
	if dst < 0 || dst >= len(c.peers) {
		return
	}
	p := &c.peers[dst]
	old := p.fillEwma.Load()
	if old == 0 {
		p.fillEwma.Store(int64(bytes))
	} else {
		p.fillEwma.Store(old + (int64(bytes)-old)/4)
	}
	if bySize {
		p.sizeFl.Add(1)
	} else {
		p.ageFl.Add(1)
	}
}

// Threshold returns dst's effective zero-copy threshold. Implements the
// parcel-layer Tuner hook. Always within [MinZCThreshold, ZCThreshold].
func (c *Controller) Threshold(dst int) int {
	if dst < 0 || dst >= len(c.peers) {
		return c.cfg.ZCThreshold
	}
	return int(c.peers[dst].zcThreshold.Load())
}

// StripeWidth returns dst's effective rendezvous stripe width. Implements
// the lci device's stripe-tuner hook. Always within
// [MinStripeWidth, MaxStripeWidth].
func (c *Controller) StripeWidth(dst int) int {
	if dst < 0 || dst >= len(c.peers) {
		return c.cfg.StripeWidth
	}
	return int(c.peers[dst].stripe.Load())
}

// InlineBudget returns src's effective inline-execution budget: how many
// small parcels one drain pass may run to completion on the draining
// goroutine. Implements the delivery-layer Tuner hook. The destination index
// here is the parcel *source* — the peer whose traffic is being delivered.
func (c *Controller) InlineBudget(src int) int {
	if src < 0 || src >= len(c.peers) {
		return c.cfg.InlineBudget
	}
	return int(c.peers[src].inlineBudget.Load())
}

// InlineHeavyNs returns the service-time ceiling for inline eligibility
// (static; the per-destination law consumes the same value).
func (c *Controller) InlineHeavyNs() int64 { return c.cfg.InlineHeavyNs }

// DrainBatch reports the completion-drain batch seed the parcelports run
// with. Static (no law moves it yet); exposed so the controller's view of
// the drain goroutine it shares with the inline lane is complete.
func (c *Controller) DrainBatch() int { return c.cfg.DrainBatch }

// ObserveInline records one parcel from src run inline, with its service
// time in ns.
func (c *Controller) ObserveInline(src int, svcNs int64) {
	if src < 0 || src >= len(c.peers) {
		return
	}
	p := &c.peers[src]
	p.inlRuns.Add(1)
	old := p.inlSvcEwmaNs.Load()
	if old == 0 {
		p.inlSvcEwmaNs.Store(svcNs)
	} else {
		p.inlSvcEwmaNs.Store(old + (svcNs-old)/4)
	}
}

// ObserveInlineSpill records n parcels from src that were eligible for
// inline execution but spilled to spawned tasks (budget or time cap
// exhausted).
func (c *Controller) ObserveInlineSpill(src, n int) {
	if src < 0 || src >= len(c.peers) || n <= 0 {
		return
	}
	c.peers[src].inlSpills.Add(uint64(n))
}

// ObserveParcel records one outbound parcel's payload size toward dst
// (threshold-law histogram feed).
func (c *Controller) ObserveParcel(dst, size int) {
	if dst < 0 || dst >= len(c.peers) {
		return
	}
	c.peers[dst].sizeHist.Observe(size)
}

// --- the control pass ---

// Tick runs one control pass if TickNs has elapsed since the last; cheap
// (one atomic load) otherwise. Safe to call from any background/progress
// loop. Reports whether a pass ran.
func (c *Controller) Tick(nowNs int64) bool {
	next := c.tickGate.Load()
	if nowNs < next || !c.tickGate.CompareAndSwap(next, nowNs+c.cfg.TickNs) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	var pressure uint64
	if c.sig.PoolRetries != nil {
		cur := c.sig.PoolRetries()
		pressure = cur - c.lastRetries
		c.lastRetries = cur
	}
	for i := range c.peers {
		c.tunePeer(i, pressure)
	}
	c.ticks.Add(1)
	return true
}

// tunePeer applies every law to one destination. Runs under c.mu.
func (c *Controller) tunePeer(dst int, pressure uint64) {
	p := &c.peers[dst]
	cfg := &c.cfg

	sends := p.sends.Load()
	active := sends != p.lastSends
	p.lastSends = sends

	// --- flush delay: track a fraction of the link RTT ---
	// A bundled message waits at most flushDelay for company; keeping that
	// below ~RTT/4 bounds the aggregation latency tax to a fraction of what
	// the wire already costs. Move halfway per tick (damped, converges
	// geometrically).
	delay := p.flushDelayNs.Load()
	if c.sig.RTTNs != nil {
		if rtt := c.sig.RTTNs(dst); rtt > 0 {
			target := clamp64(rtt/4, cfg.MinFlushDelayNs, cfg.MaxFlushDelayNs)
			delay += (target - delay) / 2
			if delay < cfg.MinFlushDelayNs {
				delay = cfg.MinFlushDelayNs
			}
			p.flushDelayNs.Store(delay)
		}
	}

	// --- bundling vs send-immediate (hot/cold/bandwidth-bound) with
	// hysteresis ---
	// gapEwma ≫ coldIdle: messages arrive alone, bundling only adds the
	// flush delay — bypass. gapEwma ≪ coldIdle: company is near-certain —
	// bundle. The 4× band between enter and exit prevents oscillation at
	// the boundary. Independently of rate, a destination whose size
	// histogram shows heavy rendezvous mass is bandwidth-bound and bypasses
	// too; that check runs first so a fast small-message trickle cannot
	// re-enter bundling while large transfers still dominate the link.
	coldIdle := clamp64(4*delay, 4*cfg.MinFlushDelayNs, 4*cfg.MaxFlushDelayNs)
	p.coldIdleNs.Store(coldIdle)
	if active {
		if p.sizeHist.FractionAtLeast(cfg.ZCThreshold) >= bypassLargeFrac {
			p.bypass.Store(true)
		} else if gap := p.gapEwmaNs.Load(); gap > 0 {
			if gap > 2*coldIdle {
				p.bypass.Store(true)
			} else if gap < coldIdle/2 {
				p.bypass.Store(false)
			}
		}
	}

	// --- flush size: grow under egress congestion, shrink when bundles age
	// out far below the size target, relax toward the configured seed
	// otherwise ---
	// Size-triggered flushes alone are NOT evidence that bigger bundles
	// help (a hot peer size-flushes at any setting, and over-grown bundles
	// cost receiver-side pipelining); only a backed-up egress queue is,
	// because fewer, larger transfers cut per-packet overhead exactly when
	// the wire is the bottleneck.
	szFl, ageFl := p.sizeFl.Load(), p.ageFl.Load()
	dSz, dAge := szFl-p.lastSzFl, ageFl-p.lastAgeFl
	p.lastSzFl, p.lastAgeFl = szFl, ageFl
	depth := 0
	if c.sig.QueueDepth != nil {
		depth = c.sig.QueueDepth(dst)
	}
	size := p.flushBytes.Load()
	switch {
	case depth >= depthDeep:
		// Peer is backed up: larger bundles cut per-transfer overhead.
		size = clamp64(size*2, int64(cfg.MinFlushBytes), int64(cfg.MaxFlushBytes))
	case dAge > 0 && dSz == 0:
		if fill := p.fillEwma.Load(); fill > 0 && fill < size/4 {
			// Every flush ages out quarter-full: the size target is
			// unreachable at this rate; shrink toward what actually fills.
			size = clamp64(size/2, int64(cfg.MinFlushBytes), int64(cfg.MaxFlushBytes))
		}
	case dSz > 0 && depth < depthShallow && size != int64(cfg.FlushBytes):
		// Congestion is gone but traffic still flows: geometrically relax
		// back to the hand-tuned seed (the best-known uncongested point).
		diff := int64(cfg.FlushBytes) - size
		step := diff / 2
		if step == 0 {
			step = diff
		}
		size = clamp64(size+step, int64(cfg.MinFlushBytes), int64(cfg.MaxFlushBytes))
	}
	p.flushBytes.Store(size)

	// --- stripe width: widen when single large transfers are the traffic,
	// narrow when concurrent traffic already fills every rail ---
	// A wide stripe multiplies one transfer's bandwidth only while rails
	// are otherwise idle. Rendezvous-dominated traffic on a shallow egress
	// queue is exactly that shape, so widen one rail per tick toward the
	// max. A deep egress queue means many transfers already saturate the
	// rail set; striping each of them wider only interleaves packets
	// without adding bandwidth and costs per-chunk overhead, so narrow.
	// Otherwise drift one step per tick back to the configured seed. One
	// rail per tick keeps the law monotone toward its clamped target.
	sw := p.stripe.Load()
	switch {
	case depth >= depthDeep:
		sw--
	case active && p.sizeHist.FractionAtLeast(cfg.ZCThreshold) >= bypassLargeFrac && depth < depthDeep:
		sw++
	case sw < int64(cfg.StripeWidth):
		sw++
	case sw > int64(cfg.StripeWidth):
		sw--
	}
	p.stripe.Store(clamp64(sw, int64(cfg.MinStripeWidth), int64(cfg.MaxStripeWidth)))

	// --- inline-execution budget: shrink when this peer's actions run
	// heavy, grow when light parcels spill into a saturated worker pool,
	// relax toward the configured seed otherwise ---
	// An inline run occupies the draining goroutine for its full service
	// time, so a destination whose actions trend heavy gets its budget
	// halved — but floored at 1, never 0: the lone inline run each pass
	// keeps the service-time EWMA fresh, so a workload that lightens is
	// observed and the budget can recover. The growth side needs both
	// signals: spills alone only say the budget is binding; only when the
	// worker pool is also backlogged does queueing demonstrably cost more
	// than running in place.
	ib := p.inlineBudget.Load()
	inlRuns, inlSpl := p.inlRuns.Load(), p.inlSpills.Load()
	dInl, dSpl := inlRuns-p.lastInlRuns, inlSpl-p.lastInlSpl
	p.lastInlRuns, p.lastInlSpl = inlRuns, inlSpl
	var backlog int64
	if c.sig.PendingTasks != nil {
		backlog = c.sig.PendingTasks()
	}
	switch {
	case p.inlSvcEwmaNs.Load() > cfg.InlineHeavyNs:
		ib = clamp64(ib/2, 1, int64(cfg.MaxInlineBudget))
	case dSpl > 0 && backlog >= backlogHigh:
		ib = clamp64(ib*2, 1, int64(cfg.MaxInlineBudget))
	case (dInl > 0 || dSpl > 0) && ib != int64(cfg.InlineBudget):
		// Geometrically relax back to the hand-tuned seed while traffic
		// still flows (mirrors the flush-size law).
		diff := int64(cfg.InlineBudget) - ib
		step := diff / 2
		if step == 0 {
			step = diff
		}
		ib = clamp64(ib+step, 1, int64(cfg.MaxInlineBudget))
	}
	p.inlineBudget.Store(ib)

	// --- eager/rendezvous threshold: descend under pool pressure when this
	// destination actually carries large messages, recover after calm ---
	th := p.zcThreshold.Load()
	if pressure >= c.cfg.PressureHigh {
		p.calm = 0
		if th > int64(cfg.MinZCThreshold) && p.sizeHist.FractionAtLeast(int(th/2)) > 0.02 {
			p.zcThreshold.Store(clamp64(th/2, int64(cfg.MinZCThreshold), int64(cfg.ZCThreshold)))
		}
	} else if pressure == 0 {
		p.calm++
		if p.calm >= cfg.CalmTicks && th < int64(cfg.ZCThreshold) {
			p.calm = 0
			p.zcThreshold.Store(clamp64(th*2, int64(cfg.MinZCThreshold), int64(cfg.ZCThreshold)))
		}
	} else {
		p.calm = 0
	}
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// --- progress-goroutine scaling ---

// LoadWatermark is the utilization window behind progress-goroutine
// scaling: one observer records whether each progress pass found work;
// every Window samples Decide compares the work ratio against the
// watermarks and votes to scale up (+1), down (-1) or hold (0).
// Observe/Decide are allocation-free. A single goroutine owns the
// Observe/Decide cycle (the base progress worker); the counters are atomics
// only so tests may read them concurrently.
type LoadWatermark struct {
	High   float64 // scale up above this work ratio
	Low    float64 // scale down below this work ratio
	Window uint64  // samples per decision

	passes atomic.Uint64
	work   atomic.Uint64
}

func (w *LoadWatermark) fillDefaults() {
	if w.High == 0 {
		w.High = 0.75
	}
	if w.Low == 0 {
		w.Low = 0.20
	}
	if w.Window == 0 {
		w.Window = 4096
	}
}

// Observe records one progress pass; returns true when a decision window
// completed and the caller should invoke Decide.
func (w *LoadWatermark) Observe(didWork bool) bool {
	w.fillDefaults()
	if didWork {
		w.work.Add(1)
	}
	return w.passes.Add(1)%w.Window == 0
}

// Decide returns the scaling vote for the window just completed and resets
// the counters: +1 (utilization above High), -1 (below Low), 0 otherwise.
func (w *LoadWatermark) Decide() int {
	w.fillDefaults()
	passes := w.passes.Swap(0)
	work := w.work.Swap(0)
	if passes == 0 {
		return 0
	}
	ratio := float64(work) / float64(passes)
	switch {
	case ratio > w.High:
		return 1
	case ratio < w.Low:
		return -1
	default:
		return 0
	}
}
