package tune

import (
	"testing"
)

// sim drives one Controller against a synthetic workload on a virtual
// clock, so the convergence properties are deterministic.
type sim struct {
	ctl *Controller
	now int64

	rtt     int64
	depth   int
	retries uint64
	pending int64
}

func newSim(cfg Config) *sim {
	s := &sim{}
	s.ctl = NewController(cfg, Signals{
		RTTNs:        func(int) int64 { return s.rtt },
		QueueDepth:   func(int) int { return s.depth },
		PoolRetries:  func() uint64 { return s.retries },
		PendingTasks: func() int64 { return s.pending },
	})
	return s
}

// hotTick simulates one tick interval of a hot peer: a burst of closely
// spaced sends plus size-triggered flushes, then the control pass.
func (s *sim) hotTick(dst int, gapNs int64, flushFill int) {
	tickNs := s.ctl.cfg.TickNs
	for t := int64(0); t < tickNs; t += gapNs {
		s.now += gapNs
		s.ctl.ObserveSend(dst, 256, s.now)
	}
	s.ctl.ObserveFlush(dst, flushFill, 8, s.ctl.cfg.FlushDelayNs/2, true)
	s.ctl.Tick(s.now)
}

// coldTick simulates one send arriving alone after gapNs of silence, its
// bundle aging out, then the control pass (gapNs should exceed TickNs).
func (s *sim) coldTick(dst int, gapNs int64, flushFill int) {
	s.now += gapNs
	s.ctl.ObserveSend(dst, 256, s.now)
	s.ctl.ObserveFlush(dst, flushFill, 1, s.ctl.Peer(dst).FlushDelayNs, false)
	s.ctl.Tick(s.now)
}

// TestHotPeerConvergence: under dense traffic with a known link RTT the
// aggregation controller must (a) keep bundling (no bypass), (b) settle the
// flush delay at RTT/4, (c) hold the flush size at the hand-tuned seed
// while the egress queue stays shallow, (d) grow it to the cap under
// sustained congestion, and (e) relax it back to the seed once the
// congestion clears — each within a bounded number of ticks.
func TestHotPeerConvergence(t *testing.T) {
	s := newSim(Config{Dests: 2})
	s.rtt = 400_000 // target delay = 100_000ns, inside [5k, 200k]
	s.depth = 0

	const bound = 32
	for i := 0; i < bound; i++ {
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
	}
	p := s.ctl.Peer(1)
	if p.Bypass {
		t.Fatal("hot peer converged to bypass; want bundling")
	}
	if p.FlushDelayNs < 90_000 || p.FlushDelayNs > 110_000 {
		t.Fatalf("flush delay = %dns, want ~RTT/4 = 100000ns", p.FlushDelayNs)
	}
	if p.FlushBytes != s.ctl.cfg.FlushBytes {
		t.Fatalf("flush size = %d under shallow queues, want held at seed %d",
			p.FlushBytes, s.ctl.cfg.FlushBytes)
	}
	// Stability: once converged the knobs must not move again under the
	// unchanged workload.
	for i := 0; i < bound; i++ {
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
		q := s.ctl.Peer(1)
		if q.Bypass != p.Bypass || q.FlushBytes != p.FlushBytes {
			t.Fatalf("knobs moved after convergence: %+v -> %+v", p, q)
		}
	}
	// Sustained congestion: the egress queue backs up, bundles must grow.
	s.depth = depthDeep * 2
	for i := 0; i < bound; i++ {
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
	}
	if got := s.ctl.Peer(1).FlushBytes; got != s.ctl.cfg.MaxFlushBytes {
		t.Fatalf("flush size = %d under deep queues, want grown to cap %d", got, s.ctl.cfg.MaxFlushBytes)
	}
	// Congestion clears: relax back to the seed.
	s.depth = 0
	for i := 0; i < bound; i++ {
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
	}
	if got := s.ctl.Peer(1).FlushBytes; got != s.ctl.cfg.FlushBytes {
		t.Fatalf("flush size = %d after congestion cleared, want relaxed to seed %d",
			got, s.ctl.cfg.FlushBytes)
	}
}

// TestColdPeerConvergence: a peer whose messages arrive alone (interarrival
// far above the cold-idle window) must switch to send-immediate bypass and
// shrink its unreachable flush-size target, within a bounded number of
// ticks — and flip back to bundling within a bounded number of ticks once
// the peer turns hot.
func TestColdPeerConvergence(t *testing.T) {
	s := newSim(Config{Dests: 2})
	s.rtt = 400_000

	const bound = 32
	for i := 0; i < bound; i++ {
		s.coldTick(1, 10_000_000, 100) // alone, bundles age out near-empty
	}
	p := s.ctl.Peer(1)
	if !p.Bypass {
		t.Fatalf("cold peer (gap %dns vs coldIdle %dns) did not converge to bypass",
			p.GapEwmaNs, p.ColdIdleNs)
	}
	if p.FlushBytes != s.ctl.cfg.MinFlushBytes {
		t.Fatalf("flush size = %d, want shrunk to floor %d under age-only flushes",
			p.FlushBytes, s.ctl.cfg.MinFlushBytes)
	}

	// Reheat: dense traffic must re-enter bundling (hysteresis exit).
	for i := 0; i < bound; i++ {
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
	}
	if s.ctl.Peer(1).Bypass {
		t.Fatal("reheated peer stuck in bypass")
	}
}

// TestBandwidthBoundBypass: a destination that is hot by send rate but whose
// parcel mix is dominated by rendezvous-sized messages must switch to
// send-immediate — the link is bandwidth-bound, so bundling the small
// remainder only queues it behind the large transfers — and must stay
// bypassed even though its interarrival gap alone would demand bundling.
func TestBandwidthBoundBypass(t *testing.T) {
	s := newSim(Config{Dests: 2})
	s.rtt = 400_000
	cfg := s.ctl.cfg

	const bound = 32
	for i := 0; i < bound; i++ {
		// One rendezvous-sized parcel for every two small ones (1/3 ≥ the
		// bypassLargeFrac enter threshold).
		s.ctl.ObserveParcel(1, 64)
		s.ctl.ObserveParcel(1, 1024)
		s.ctl.ObserveParcel(1, cfg.ZCThreshold*2)
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
	}
	if !s.ctl.Peer(1).Bypass {
		t.Fatal("bandwidth-bound hot peer did not converge to bypass")
	}
	// More hot small-message ticks must not re-enter bundling while the
	// rendezvous mass persists in the histogram.
	for i := 0; i < bound; i++ {
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
	}
	if !s.ctl.Peer(1).Bypass {
		t.Fatal("bandwidth-bound peer re-entered bundling on small-message gaps alone")
	}
}

// TestThresholdDescendsUnderPressureAndRecovers: sustained pool pressure on
// a destination that carries large messages must walk the zero-copy
// threshold down to the floor (monotonically — no oscillation while the
// pressure lasts), and sustained calm must walk it back to the configured
// static value.
func TestThresholdDescendsUnderPressureAndRecovers(t *testing.T) {
	s := newSim(Config{Dests: 2})
	cfg := s.ctl.cfg

	// Mixed-size workload: 90% tiny, 10% at the static threshold — enough
	// mass above th/2 for the descent gate.
	feed := func() {
		for i := 0; i < 9; i++ {
			s.ctl.ObserveParcel(1, 256)
		}
		s.ctl.ObserveParcel(1, cfg.ZCThreshold)
	}

	const bound = 16
	prev := s.ctl.Threshold(1)
	if prev != cfg.ZCThreshold {
		t.Fatalf("seed threshold = %d, want %d", prev, cfg.ZCThreshold)
	}
	for i := 0; i < bound; i++ {
		feed()
		s.retries += cfg.PressureHigh + 2 // sustained pressure
		s.now += cfg.TickNs
		s.ctl.Tick(s.now)
		cur := s.ctl.Threshold(1)
		if cur > prev {
			t.Fatalf("threshold rose %d -> %d during sustained pressure", prev, cur)
		}
		prev = cur
	}
	if prev != cfg.MinZCThreshold {
		t.Fatalf("threshold = %d after %d pressure ticks, want floor %d", prev, bound, cfg.MinZCThreshold)
	}

	// Calm: full recovery within CalmTicks per doubling.
	doublings := 0
	for v := cfg.MinZCThreshold; v < cfg.ZCThreshold; v *= 2 {
		doublings++
	}
	recoverBound := (cfg.CalmTicks + 1) * (doublings + 1)
	for i := 0; i < recoverBound; i++ {
		s.now += cfg.TickNs
		s.ctl.Tick(s.now)
	}
	if got := s.ctl.Threshold(1); got != cfg.ZCThreshold {
		t.Fatalf("threshold = %d after %d calm ticks, want recovered to %d", got, recoverBound, cfg.ZCThreshold)
	}
}

// TestSmallTrafficNeverDescends: pressure with no large-message mass at the
// destination must leave the threshold alone — lowering it would not
// relieve the pools.
func TestSmallTrafficNeverDescends(t *testing.T) {
	s := newSim(Config{Dests: 2})
	cfg := s.ctl.cfg
	for i := 0; i < 16; i++ {
		for j := 0; j < 10; j++ {
			s.ctl.ObserveParcel(1, 128) // all tiny
		}
		s.retries += cfg.PressureHigh + 2
		s.now += cfg.TickNs
		s.ctl.Tick(s.now)
	}
	if got := s.ctl.Threshold(1); got != cfg.ZCThreshold {
		t.Fatalf("threshold = %d, want untouched %d (no large-message mass)", got, cfg.ZCThreshold)
	}
}

// TestChaosBoundedOscillation: seeded RTT spikes, pressure spikes and queue
// bursts ride on top of a steady hot workload. After a convergence horizon
// the knobs must stay essentially put: every value inside its actuation
// bounds at every tick, bounded direction changes, and each isolated
// pressure spike at most triggers one down/up threshold excursion.
func TestChaosBoundedOscillation(t *testing.T) {
	s := newSim(Config{Dests: 2})
	cfg := s.ctl.cfg
	s.rtt = 400_000

	chaos := func(tick int) {
		// Deterministic fault schedule (the "seed").
		s.rtt = 400_000
		s.depth = 0
		if tick%23 == 0 {
			s.rtt = 5_000_000 // RTT spike
		}
		if tick%31 == 0 {
			s.retries += cfg.PressureHigh + 4 // pool-pressure spike
		}
		if tick%17 == 0 {
			s.depth = depthDeep + 32 // queue burst
		}
		for i := 0; i < 9; i++ {
			s.ctl.ObserveParcel(1, 256)
		}
		s.ctl.ObserveParcel(1, cfg.ZCThreshold)
	}

	const horizon, run = 64, 256
	for i := 1; i <= horizon; i++ {
		chaos(i)
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
	}

	bypassFlips, sizeDirChanges, thDirChanges := 0, 0, 0
	prev := s.ctl.Peer(1)
	lastSizeDir, lastThDir := 0, 0
	for i := horizon + 1; i <= horizon+run; i++ {
		chaos(i)
		s.hotTick(1, 2_000, int(s.ctl.Peer(1).FlushBytes))
		cur := s.ctl.Peer(1)

		// Invariants: every knob inside its actuation bounds, always.
		if cur.FlushBytes < cfg.MinFlushBytes || cur.FlushBytes > cfg.MaxFlushBytes {
			t.Fatalf("tick %d: flush size %d outside [%d, %d]", i, cur.FlushBytes, cfg.MinFlushBytes, cfg.MaxFlushBytes)
		}
		if cur.FlushDelayNs < cfg.MinFlushDelayNs || cur.FlushDelayNs > cfg.MaxFlushDelayNs {
			t.Fatalf("tick %d: flush delay %d outside [%d, %d]", i, cur.FlushDelayNs, cfg.MinFlushDelayNs, cfg.MaxFlushDelayNs)
		}
		if cur.ZCThreshold < cfg.MinZCThreshold || cur.ZCThreshold > cfg.ZCThreshold {
			t.Fatalf("tick %d: threshold %d outside [%d, %d]", i, cur.ZCThreshold, cfg.MinZCThreshold, cfg.ZCThreshold)
		}

		if cur.Bypass != prev.Bypass {
			bypassFlips++
		}
		if d := dir(cur.FlushBytes - prev.FlushBytes); d != 0 {
			if lastSizeDir != 0 && d != lastSizeDir {
				sizeDirChanges++
			}
			lastSizeDir = d
		}
		if d := dir(cur.ZCThreshold - prev.ZCThreshold); d != 0 {
			if lastThDir != 0 && d != lastThDir {
				thDirChanges++
			}
			lastThDir = d
		}
		prev = cur
	}

	spikes := run / 31
	if bypassFlips > 2 {
		t.Fatalf("bypass flipped %d times under chaos; hysteresis is not holding", bypassFlips)
	}
	if sizeDirChanges > run/8 {
		t.Fatalf("flush size reversed direction %d times over %d ticks", sizeDirChanges, run)
	}
	// Each pressure spike may buy one descend-then-recover excursion
	// (two direction changes); anything beyond that is oscillation.
	if thDirChanges > 2*spikes+2 {
		t.Fatalf("threshold reversed direction %d times for %d pressure spikes", thDirChanges, spikes)
	}
}

func dir(d int) int {
	switch {
	case d > 0:
		return 1
	case d < 0:
		return -1
	default:
		return 0
	}
}

// TestSteadyStatePathsZeroAlloc: every ingest hook and knob read sits on the
// per-message datapath; none may allocate. The control pass itself (and the
// rate-gated fast exit) must be allocation-free too, since it runs from
// progress loops.
func TestSteadyStatePathsZeroAlloc(t *testing.T) {
	s := newSim(Config{Dests: 4})
	s.rtt = 400_000
	now := int64(1)
	if a := testing.AllocsPerRun(200, func() {
		now += 1_000
		s.ctl.ObserveSend(1, 256, now)
		s.ctl.ObserveFlush(1, 4096, 8, 25_000, true)
		s.ctl.ObserveParcel(1, 256)
		s.ctl.ObserveInline(1, 1_500)
		s.ctl.ObserveInlineSpill(1, 2)
		_, _, _, _ = s.ctl.AggKnobs(1)
		_ = s.ctl.Threshold(1)
		_ = s.ctl.InlineBudget(1)
		_ = s.ctl.InlineHeavyNs()
	}); a != 0 {
		t.Fatalf("ingest/knob path allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		s.ctl.Tick(now) // gated: TickNs has not elapsed
	}); a != 0 {
		t.Fatalf("gated Tick allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		now += s.ctl.cfg.TickNs
		if !s.ctl.Tick(now) {
			t.Fatal("full tick did not run")
		}
	}); a != 0 {
		t.Fatalf("control pass allocates %.1f/op, want 0", a)
	}
}

// TestLoadWatermark: the utilization window votes +1 above High, -1 below
// Low, 0 in the band, and resets between windows.
func TestLoadWatermark(t *testing.T) {
	w := &LoadWatermark{High: 0.75, Low: 0.25, Window: 8}
	feed := func(work, idle int) int {
		decisions := 0
		vote := 0
		for i := 0; i < work; i++ {
			if w.Observe(true) {
				decisions++
				vote = w.Decide()
			}
		}
		for i := 0; i < idle; i++ {
			if w.Observe(false) {
				decisions++
				vote = w.Decide()
			}
		}
		if decisions != 1 {
			t.Fatalf("window of %d samples produced %d decisions, want 1", work+idle, decisions)
		}
		return vote
	}
	if v := feed(8, 0); v != 1 {
		t.Fatalf("fully busy window voted %d, want +1", v)
	}
	if v := feed(0, 8); v != -1 {
		t.Fatalf("fully idle window voted %d, want -1", v)
	}
	if v := feed(4, 4); v != 0 {
		t.Fatalf("half-busy window voted %d, want 0 (inside the band)", v)
	}
	if a := testing.AllocsPerRun(100, func() {
		if w.Observe(true) {
			w.Decide()
		}
	}); a != 0 {
		t.Fatalf("watermark observe/decide allocates %.1f/op, want 0", a)
	}
}

// TestNilSignalsHoldStatic: with no signals wired (e.g. the TCP transport)
// every knob must hold its seeded static value forever.
func TestNilSignalsHoldStatic(t *testing.T) {
	ctl := NewController(Config{Dests: 2}, Signals{})
	now := int64(0)
	for i := 0; i < 50; i++ {
		now += ctl.cfg.TickNs
		ctl.ObserveSend(1, 256, now)
		ctl.Tick(now)
	}
	p := ctl.Peer(1)
	if p.FlushBytes != ctl.cfg.FlushBytes || p.FlushDelayNs != ctl.cfg.FlushDelayNs ||
		p.ZCThreshold != ctl.cfg.ZCThreshold {
		t.Fatalf("knobs drifted with nil signals: %+v", p)
	}
}
