package tune

import "testing"

// stripeSim drives ticks with a controllable send size, so the stripe-width
// law's inputs (rendezvous-dominated size histogram, egress depth) can be
// set independently.
func (s *sim) stripeTick(dst, sendSize int) {
	tickNs := s.ctl.cfg.TickNs
	step := tickNs / 8
	for t := int64(0); t < tickNs; t += step {
		s.now += step
		s.ctl.ObserveSend(dst, sendSize, s.now)
		s.ctl.ObserveParcel(dst, sendSize) // feeds the size histogram
	}
	s.ctl.Tick(s.now)
}

// TestStripeWidthLaw: rendezvous-heavy traffic on a shallow egress queue
// widens the stripe to the rail count; a deep egress queue narrows it to
// one rail; neutral traffic relaxes back to the configured seed; the
// actuation never leaves [Min, Max].
func TestStripeWidthLaw(t *testing.T) {
	cfg := Config{Dests: 4, StripeWidth: 4, MinStripeWidth: 1, MaxStripeWidth: 8}
	s := newSim(cfg)
	const dst = 1

	check := func(when string, want int) {
		t.Helper()
		got := s.ctl.StripeWidth(dst)
		if got != want {
			t.Fatalf("%s: StripeWidth = %d, want %d", when, got, want)
		}
		if got < cfg.MinStripeWidth || got > cfg.MaxStripeWidth {
			t.Fatalf("%s: StripeWidth %d escaped [%d, %d]", when, got, cfg.MinStripeWidth, cfg.MaxStripeWidth)
		}
	}
	check("seed", 4)

	// Large (rendezvous-sized) sends, shallow queue: widen one rail per
	// tick until the max.
	s.depth = 0
	for i := 0; i < 10; i++ {
		s.stripeTick(dst, 128<<10)
	}
	check("after rendezvous-heavy ticks", cfg.MaxStripeWidth)

	// Deep egress queue: concurrent traffic already fills the rails, so
	// narrow one rail per tick down to the floor.
	s.depth = depthDeep
	for i := 0; i < 10; i++ {
		s.stripeTick(dst, 128<<10)
	}
	check("after deep-queue ticks", cfg.MinStripeWidth)

	// Congestion gone, small eager traffic: drift back to the seed and
	// hold there. The size histogram is cumulative, so the workload shift
	// must actually dilute the rendezvous mass below the bypass fraction
	// before the relax branch takes over — hence the long run.
	s.depth = 0
	for i := 0; i < 100; i++ {
		s.stripeTick(dst, 256)
	}
	check("after relaxation", cfg.StripeWidth)
	s.stripeTick(dst, 256)
	check("seed is a fixed point", cfg.StripeWidth)
}

// TestStripeWidthDefaults: an unconfigured controller pins the stripe width
// to 1 (no multi-rail fabric announced), and out-of-range destinations fall
// back to the configured seed.
func TestStripeWidthDefaults(t *testing.T) {
	s := newSim(Config{Dests: 2})
	if got := s.ctl.StripeWidth(0); got != 1 {
		t.Fatalf("default StripeWidth = %d, want 1", got)
	}
	if got := s.ctl.StripeWidth(1 << 20); got != s.ctl.cfg.StripeWidth {
		t.Fatalf("out-of-range dst StripeWidth = %d, want seed %d", got, s.ctl.cfg.StripeWidth)
	}
}
