package stats

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of Hist: power-of-two size classes
// from [0,1) up to [2^30, ∞), enough for any message size the stack moves.
const HistBuckets = 32

// Hist is a fixed-bucket log2 histogram with atomic counters: Observe is
// lock-free and allocation-free, so it can sit on per-message hot paths
// (the adaptive tuning layer feeds one per destination). Values bucket by
// bit length: bucket 0 holds 0, bucket k holds [2^(k-1), 2^k).
type Hist struct {
	counts [HistBuckets]atomic.Uint64
}

// histBucket maps a value to its bucket index.
func histBucket(v int) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one value. Safe for concurrent use; never allocates.
func (h *Hist) Observe(v int) {
	h.counts[histBucket(v)].Add(1)
}

// Total returns the number of recorded observations.
func (h *Hist) Total() uint64 {
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// FractionAtLeast returns the fraction of observations whose bucket holds
// values >= cut (bucket granularity: the cut rounds down to its bucket's
// lower bound). Returns 0 when the histogram is empty.
func (h *Hist) FractionAtLeast(cut int) float64 {
	var total, above uint64
	b := histBucket(cut)
	for i := range h.counts {
		c := h.counts[i].Load()
		total += c
		if i >= b {
			above += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(above) / float64(total)
}

// Percentile returns a log2-bucket estimate of the p-th percentile
// (0 <= p <= 100): the bucket holding the p-th observation is located from
// the cumulative counts and the value interpolated linearly inside the
// bucket's [2^(k-1), 2^k) range. The estimate never leaves the true
// bucket, so it is within a factor of 2 of the exact rank statistic — the
// resolution hot paths buy by retaining 32 counters instead of a sample
// per request (tested against the exact stats.Percentile in hist_test.go).
// Returns 0 for an empty histogram.
func (h *Hist) Percentile(p float64) float64 {
	var counts [HistBuckets]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Rank of the target observation, 1-based: percentile p covers the
	// first ceil(p/100 * total) observations.
	rank := p / 100 * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for k := 0; k < HistBuckets; k++ {
		if counts[k] == 0 {
			continue
		}
		next := cum + float64(counts[k])
		if rank <= next {
			lo, hi := bucketBounds(k)
			frac := (rank - cum) / float64(counts[k])
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	// Unreachable when total > 0; fall back to the top bucket's bound.
	lo, hi := bucketBounds(HistBuckets - 1)
	_ = lo
	return hi
}

// bucketBounds returns bucket k's value range [lo, hi): bucket 0 holds 0,
// bucket k holds [2^(k-1), 2^k). The top bucket is open-ended; its upper
// bound is reported as twice its lower bound (the same width rule as every
// other bucket), which keeps the estimate finite.
func bucketBounds(k int) (lo, hi float64) {
	if k == 0 {
		return 0, 1
	}
	lo = float64(uint64(1) << (k - 1))
	return lo, lo * 2
}

// Reset zeroes every bucket (window-based controllers call this per epoch).
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
}
