package stats

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of Hist: power-of-two size classes
// from [0,1) up to [2^30, ∞), enough for any message size the stack moves.
const HistBuckets = 32

// Hist is a fixed-bucket log2 histogram with atomic counters: Observe is
// lock-free and allocation-free, so it can sit on per-message hot paths
// (the adaptive tuning layer feeds one per destination). Values bucket by
// bit length: bucket 0 holds 0, bucket k holds [2^(k-1), 2^k).
type Hist struct {
	counts [HistBuckets]atomic.Uint64
}

// histBucket maps a value to its bucket index.
func histBucket(v int) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one value. Safe for concurrent use; never allocates.
func (h *Hist) Observe(v int) {
	h.counts[histBucket(v)].Add(1)
}

// Total returns the number of recorded observations.
func (h *Hist) Total() uint64 {
	var t uint64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// FractionAtLeast returns the fraction of observations whose bucket holds
// values >= cut (bucket granularity: the cut rounds down to its bucket's
// lower bound). Returns 0 when the histogram is empty.
func (h *Hist) FractionAtLeast(cut int) float64 {
	var total, above uint64
	b := histBucket(cut)
	for i := range h.counts {
		c := h.counts[i].Load()
		total += c
		if i >= b {
			above += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(above) / float64(total)
}

// Reset zeroes every bucket (window-based controllers call this per epoch).
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
}
