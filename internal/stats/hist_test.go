package stats

import "testing"

func TestHistBucketsAndFractions(t *testing.T) {
	var h Hist
	if h.Total() != 0 || h.FractionAtLeast(1) != 0 {
		t.Fatal("empty histogram not empty")
	}
	for i := 0; i < 90; i++ {
		h.Observe(256)
	}
	for i := 0; i < 10; i++ {
		h.Observe(8192)
	}
	if got := h.Total(); got != 100 {
		t.Fatalf("Total = %d, want 100", got)
	}
	if f := h.FractionAtLeast(4096); f != 0.10 {
		t.Fatalf("FractionAtLeast(4096) = %v, want 0.10", f)
	}
	if f := h.FractionAtLeast(1); f != 1.0 {
		t.Fatalf("FractionAtLeast(1) = %v, want 1.0", f)
	}
	// Same-bucket cuts round down to the bucket's lower bound.
	if f := h.FractionAtLeast(8192); f != 0.10 {
		t.Fatalf("FractionAtLeast(8192) = %v, want 0.10", f)
	}
	h.Reset()
	if h.Total() != 0 {
		t.Fatal("Reset left observations behind")
	}
	// Extremes stay in range.
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1 << 62)
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if a := testing.AllocsPerRun(100, func() { h.Observe(512); h.FractionAtLeast(64) }); a != 0 {
		t.Fatalf("hist path allocates %.1f/op, want 0", a)
	}
}

// TestHistPercentileKnownDistributions checks the log2-bucket quantile
// estimate against the exact stats.Percentile on distributions whose shape
// exercises different bucket patterns. The estimate interpolates inside a
// power-of-two bucket, so it is guaranteed only to land within the true
// value's bucket: assert estimate ∈ [exact/2, exact*2] (plus absolute
// slack 1 around the tiny buckets), and tighter where the distribution
// makes the estimate exact.
func TestHistPercentileKnownDistributions(t *testing.T) {
	within := func(t *testing.T, name string, est, exact float64) {
		t.Helper()
		lo, hi := exact/2-1, exact*2+1
		if est < lo || est > hi {
			t.Fatalf("%s: estimate %.2f outside [%.2f, %.2f] (exact %.2f)", name, est, lo, hi, exact)
		}
	}
	t.Run("constant", func(t *testing.T) {
		var h Hist
		for i := 0; i < 1000; i++ {
			h.Observe(100) // bucket [64, 128)
		}
		for _, p := range []float64{1, 50, 99, 99.9} {
			est := h.Percentile(p)
			if est < 64 || est > 128 {
				t.Fatalf("p%v = %.2f escaped the [64,128) bucket", p, est)
			}
		}
	})
	t.Run("uniform", func(t *testing.T) {
		var h Hist
		var xs []float64
		for v := 1; v <= 4096; v++ {
			h.Observe(v)
			xs = append(xs, float64(v))
		}
		for _, p := range []float64{10, 50, 90, 99, 99.9} {
			within(t, "uniform", h.Percentile(p), Percentile(xs, p))
		}
	})
	t.Run("bimodal", func(t *testing.T) {
		// 95% fast ops at ~8, 5% slow at ~8192: p50 must report the fast
		// mode, p99 the slow one.
		var h Hist
		var xs []float64
		for i := 0; i < 950; i++ {
			h.Observe(8)
			xs = append(xs, 8)
		}
		for i := 0; i < 50; i++ {
			h.Observe(8192)
			xs = append(xs, 8192)
		}
		within(t, "bimodal p50", h.Percentile(50), Percentile(xs, 50))
		within(t, "bimodal p99", h.Percentile(99), Percentile(xs, 99))
		if h.Percentile(50) >= 16 {
			t.Fatalf("p50 = %.1f left the fast mode", h.Percentile(50))
		}
		if h.Percentile(99) < 4096 {
			t.Fatalf("p99 = %.1f missed the slow mode", h.Percentile(99))
		}
	})
	t.Run("geometric", func(t *testing.T) {
		// One observation per power of two: every bucket holds exactly one,
		// so percentile rank maps directly onto bucket index.
		var h Hist
		var xs []float64
		for k := 0; k < 16; k++ {
			v := 1 << k
			h.Observe(v)
			xs = append(xs, float64(v))
		}
		for _, p := range []float64{25, 50, 75, 100} {
			within(t, "geometric", h.Percentile(p), Percentile(xs, p))
		}
	})
}

// TestHistPercentileEdges: empty histogram, clamped p, zero bucket, and
// allocation-freedom of the estimate (it may run on hot reporting paths).
func TestHistPercentileEdges(t *testing.T) {
	var h Hist
	if v := h.Percentile(99); v != 0 {
		t.Fatalf("empty Percentile = %v, want 0", v)
	}
	h.Observe(0)
	if v := h.Percentile(50); v < 0 || v > 1 {
		t.Fatalf("all-zero Percentile = %v, want within [0,1]", v)
	}
	h.Reset()
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	if lo, hi := h.Percentile(-5), h.Percentile(250); lo > hi {
		t.Fatalf("clamped percentiles inverted: p(-5)=%v > p(250)=%v", lo, hi)
	}
	if a := testing.AllocsPerRun(100, func() { h.Percentile(99) }); a != 0 {
		t.Fatalf("Percentile allocates %.1f/op, want 0", a)
	}
}
