package stats

import "testing"

func TestHistBucketsAndFractions(t *testing.T) {
	var h Hist
	if h.Total() != 0 || h.FractionAtLeast(1) != 0 {
		t.Fatal("empty histogram not empty")
	}
	for i := 0; i < 90; i++ {
		h.Observe(256)
	}
	for i := 0; i < 10; i++ {
		h.Observe(8192)
	}
	if got := h.Total(); got != 100 {
		t.Fatalf("Total = %d, want 100", got)
	}
	if f := h.FractionAtLeast(4096); f != 0.10 {
		t.Fatalf("FractionAtLeast(4096) = %v, want 0.10", f)
	}
	if f := h.FractionAtLeast(1); f != 1.0 {
		t.Fatalf("FractionAtLeast(1) = %v, want 1.0", f)
	}
	// Same-bucket cuts round down to the bucket's lower bound.
	if f := h.FractionAtLeast(8192); f != 0.10 {
		t.Fatalf("FractionAtLeast(8192) = %v, want 0.10", f)
	}
	h.Reset()
	if h.Total() != 0 {
		t.Fatal("Reset left observations behind")
	}
	// Extremes stay in range.
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1 << 62)
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want 3", h.Total())
	}
	if a := testing.AllocsPerRun(100, func() { h.Observe(512); h.FractionAtLeast(64) }); a != 0 {
		t.Fatalf("hist path allocates %.1f/op, want 0", a)
	}
}
