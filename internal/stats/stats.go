// Package stats provides the small statistical helpers used by the benchmark
// harness: summaries (mean, standard deviation, min, max) over repeated trials
// and labelled series of (x, y, yerr) points that render as the rows of the
// paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a set of repeated measurements of one quantity.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs. An empty slice yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		// Sample standard deviation, matching how error bars are usually
		// reported for a handful of repetitions.
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Stddev returns the sample standard deviation of xs.
func Stddev(xs []float64) float64 { return Summarize(xs).Stddev }

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between the two nearest ranks (the C = 1 variant, as in
// numpy's default): p maps to the fractional rank p/100*(n-1) and the value
// interpolates between the sorted neighbours. p <= 0 yields the minimum,
// p >= 100 the maximum. Returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(ys) {
		return ys[lo]
	}
	return ys[lo]*(1-frac) + ys[lo+1]*frac
}

// Point is one (x, y) sample with an error bar.
type Point struct {
	X    float64
	Y    float64
	Yerr float64
}

// Series is a labelled sequence of points: one line in a figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point to the series.
func (s *Series) Add(x, y, yerr float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Yerr: yerr})
}

// PeakY returns the maximum Y across the series' points (0 if empty).
func (s *Series) PeakY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	peak := s.Points[0].Y
	for _, p := range s.Points[1:] {
		if p.Y > peak {
			peak = p.Y
		}
	}
	return peak
}

// Figure is a set of series plus axis labels, sufficient to regenerate one of
// the paper's plots as text.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends a new empty series with the given label and returns it.
func (f *Figure) AddSeries(label string) *Series {
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// RenderCSV formats the figure as CSV rows (series,x,y,yerr) with a header,
// ready for spreadsheet or gnuplot import.
func (f *Figure) RenderCSV() string {
	var b strings.Builder
	b.WriteString("series,x,y,yerr\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g,%g\n", s.Label, p.X, p.Y, p.Yerr)
		}
	}
	return b.String()
}

// Render formats the figure as an aligned text table: one block per series,
// one row per point.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	fmt.Fprintf(&b, "# x=%s  y=%s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "## %s\n", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%-16.6g %-16.6g %-16.6g\n", p.X, p.Y, p.Yerr)
		}
	}
	return b.String()
}
