package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("stddev %g, want %g", s.Stddev, want)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Stddev != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestMeanStddevHelpers(t *testing.T) {
	xs := []float64{2, 4, 6}
	if Mean(xs) != 4 {
		t.Fatal("mean")
	}
	if math.Abs(Stddev(xs)-2) > 1e-12 {
		t.Fatalf("stddev %g", Stddev(xs))
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 {
		t.Fatal("median sorted the caller's slice")
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Keep sums finite: fold huge magnitudes into a sane range.
			xs[i] = math.Mod(x, 1e9)
		}
		s := Summarize(xs)
		if s.N == 0 {
			return len(xs) == 0
		}
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAndPeak(t *testing.T) {
	var s Series
	s.Add(1, 10, 0.5)
	s.Add(2, 30, 1)
	s.Add(3, 20, 0)
	if s.PeakY() != 30 {
		t.Fatalf("peak %g", s.PeakY())
	}
	if len(s.Points) != 3 || s.Points[1].Yerr != 1 {
		t.Fatalf("points %+v", s.Points)
	}
	empty := &Series{}
	if empty.PeakY() != 0 {
		t.Fatal("empty peak")
	}
}

// TestPeakYAllNegative is the regression test for the peak-initialization
// bug: seeding the scan with 0 made an all-negative series report 0 instead
// of its (negative) maximum.
func TestPeakYAllNegative(t *testing.T) {
	var s Series
	s.Add(1, -30, 0)
	s.Add(2, -10, 0)
	s.Add(3, -20, 0)
	if got := s.PeakY(); got != -10 {
		t.Fatalf("all-negative peak = %g, want -10", got)
	}
	single := &Series{}
	single.Add(1, -5, 0)
	if got := single.PeakY(); got != -5 {
		t.Fatalf("single-negative peak = %g, want -5", got)
	}
	zero := &Series{}
	zero.Add(1, 0, 0)
	zero.Add(2, -1, 0)
	if got := zero.PeakY(); got != 0 {
		t.Fatalf("zero-peak series = %g, want 0", got)
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{Title: "Test Fig", XLabel: "x", YLabel: "y"}
	s := fig.AddSeries("series-a")
	s.Add(1, 2, 0.1)
	out := fig.Render()
	for _, needle := range []string{"# Test Fig", "x=x", "y=y", "## series-a", "1", "2", "0.1"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("render missing %q:\n%s", needle, out)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %g", got)
	}
	if got := Percentile(xs, 75); got != 4 {
		t.Fatalf("p75 = %g", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 25); got != 2.5 {
		t.Fatalf("interpolated p25 = %g", got)
	}
	// Must not mutate the input.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

// TestPercentileBoundaries pins the linear-interpolation contract at its
// edges: p=0/p=100 return min/max (including out-of-range p), a 2-element
// slice interpolates linearly across the whole range, and a singleton is
// constant in p.
func TestPercentileBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"p0 is min", []float64{9, 1, 5}, 0, 1},
		{"p100 is max", []float64{9, 1, 5}, 100, 9},
		{"negative p clamps to min", []float64{9, 1, 5}, -10, 1},
		{"p over 100 clamps to max", []float64{9, 1, 5}, 250, 9},
		{"two elements p0", []float64{10, 20}, 0, 10},
		{"two elements p25", []float64{10, 20}, 25, 12.5},
		{"two elements p50", []float64{10, 20}, 50, 15},
		{"two elements p75", []float64{10, 20}, 75, 17.5},
		{"two elements p100", []float64{10, 20}, 100, 20},
		{"singleton p0", []float64{7}, 0, 7},
		{"singleton p50", []float64{7}, 50, 7},
		{"singleton p100", []float64{7}, 100, 7},
	} {
		if got := Percentile(tc.xs, tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v, %g) = %g, want %g", tc.name, tc.xs, tc.p, got, tc.want)
		}
	}
}
