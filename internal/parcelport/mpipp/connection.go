package mpipp

import (
	"sync/atomic"

	"hpxgo/internal/mpisim"
	"hpxgo/internal/parcelport"
	"hpxgo/internal/serialization"
	"hpxgo/internal/wire"
)

// connKind distinguishes sender from receiver connections.
type connKind uint8

const (
	senderConn connKind = iota
	receiverConn
)

// connection is the per-HPX-message state machine of §3.1. A connection has
// at most one nonblocking operation outstanding; idle workers advance it
// from the pending list once the operation Tests complete.
type connection struct {
	pp   *Parcelport
	kind connKind
	peer int
	tag  int

	busy atomic.Bool // one worker advances a connection at a time
	done atomic.Bool

	cur *mpisim.Request // the outstanding operation, nil if none

	// Sender state.
	msg       *serialization.Message
	headerBuf []byte
	segs      [][]byte // chunks to send after the header, in order
	segIdx    int

	// Receiver state.
	h       parcelport.Header
	owner   *parcelport.RecvBufs // buffer owner handed to the delivered message
	trans   []byte
	nzc     []byte
	zcBufs  [][]byte
	stage   int // index into the receive plan
	planned bool
}

// Receiver stages.
const (
	stageTrans = iota
	stageNZC
	stageZC // stageZC+k receives zero-copy chunk k
)

func (c *connection) finished() bool { return c.done.Load() }

// finishSender marks a sender connection done, returns its tag to the
// allocator so it cannot be matched to a second live connection (improved
// mode; Original recycles tags via receiver-driven tag-release messages),
// and recycles the pooled header buffer. Safe here: the header Isend either
// completed (every operation Tests complete before the next is posted and
// before the connection finishes) or was never posted.
func (c *connection) finishSender() {
	if !c.done.CompareAndSwap(false, true) {
		return
	}
	if !c.pp.cfg.Original {
		c.pp.releaseTag(uint32(c.tag))
	}
	if c.headerBuf != nil {
		wire.PutBuf(c.headerBuf)
		c.headerBuf = nil
	}
}

// --- sender ---

// newSenderConnection builds the chain of MPI messages for one HPX message.
func newSenderConnection(pp *Parcelport, dst, tag int, m *serialization.Message) *connection {
	c := &connection{pp: pp, kind: senderConn, peer: dst, tag: tag, msg: m}
	max := pp.MaxHeaderSize()
	// The improved parcelport allocates the header buffer dynamically at
	// its exact size (§3.1); the original used a fixed 512B stack buffer.
	need, _, _ := parcelport.PlanHeader(len(m.NonZeroCopy), len(m.Transmission), max, !pp.cfg.Original)
	if pp.cfg.Original && need < originalHeaderSize {
		need = originalHeaderSize
	}
	buf := wire.GetBuf(need)
	n, piggyNZC, piggyTrans, err := parcelport.EncodeHeader(buf, uint32(tag), m, max, !pp.cfg.Original)
	if err != nil {
		// Unreachable with a sane config; treat as an empty header so the
		// connection finishes without wedging the pending list.
		c.finishSender()
		return c
	}
	if pp.cfg.Original {
		// The original parcelport always transmits the full fixed-size
		// header buffer; zero the tail so recycled pool bytes never reach
		// the wire.
		clear(buf[n:originalHeaderSize])
		c.headerBuf = buf[:originalHeaderSize]
	} else {
		c.headerBuf = buf[:n]
	}
	if piggyNZC {
		pp.stats.piggyNZC.Add(1)
	}
	if piggyTrans {
		pp.stats.piggyTr.Add(1)
	}
	// Follow-up order per the paper: transmission chunk, non-zero-copy
	// chunk, then each zero-copy chunk — all on the connection tag.
	if len(m.Transmission) > 0 && !piggyTrans {
		c.segs = append(c.segs, m.Transmission)
	}
	if !piggyNZC {
		c.segs = append(c.segs, m.NonZeroCopy)
	}
	c.segs = append(c.segs, m.ZeroCopy...)
	return c
}

// start posts the header send and advances as far as already possible.
func (c *connection) start() {
	if c.done.Load() {
		return
	}
	if c.kind == senderConn {
		r, err := c.pp.comm.Isend(c.headerBuf, c.peer, headerTag)
		if err != nil {
			c.finishSender()
			return
		}
		c.cur = r
	}
	c.advance()
}

// advance drives the state machine while its outstanding operations keep
// completing. Returns true if any progress was made. The caller holds the
// connection's busy flag.
func (c *connection) advance() bool {
	did := false
	for {
		if c.done.Load() {
			return did
		}
		if c.cur != nil {
			if !c.cur.Test() {
				return did
			}
			did = true
		}
		if c.kind == senderConn {
			if !c.advanceSender() {
				return did
			}
		} else {
			if !c.advanceReceiver() {
				return did
			}
		}
	}
}

// advanceSender posts the next chunk send, or finishes. Returns false when
// the connection is done or stuck (stuck never happens: Isend errors finish
// the connection).
func (c *connection) advanceSender() bool {
	if c.segIdx >= len(c.segs) {
		c.cur = nil
		c.pp.stats.sent.Add(1)
		c.msg.Done()
		c.finishSender()
		return false
	}
	seg := c.segs[c.segIdx]
	c.segIdx++
	r, err := c.pp.comm.Isend(seg, c.peer, c.tag)
	if err != nil {
		c.finishSender()
		return false
	}
	c.cur = r
	return true
}

// --- receiver ---

// newReceiverConnection is created when a header message arrives. h's
// piggybacked chunks must already be copied out of the shared header buffer
// into owner-tracked storage; owner also owns every buffer staged later and
// transfers to the delivered message (or is released if the connection
// fails).
func newReceiverConnection(pp *Parcelport, src int, h parcelport.Header, owner *parcelport.RecvBufs) *connection {
	c := &connection{pp: pp, kind: receiverConn, peer: src, tag: int(h.BaseTag), h: h, owner: owner}
	c.trans = h.Trans
	c.nzc = h.NZC
	if h.TransSize == 0 || c.trans != nil {
		c.planZC()
		if c.done.Load() {
			return c
		}
		if c.nzc != nil {
			c.stage = stageZC
		} else {
			c.stage = stageNZC
		}
	} else {
		c.stage = stageTrans
	}
	return c
}

// failRecv abandons a receiver connection, releasing the buffer owner.
func (c *connection) failRecv() {
	c.done.Store(true)
	if c.owner != nil {
		c.owner.Release()
		c.owner = nil
	}
}

// planZC sizes the zero-copy receive buffers from the transmission chunk.
func (c *connection) planZC() {
	c.planned = true
	if c.h.NumZC == 0 {
		return
	}
	sizes, err := serialization.ParseTransmissionSizes(c.trans)
	if err != nil || len(sizes) != int(c.h.NumZC) {
		// Protocol corruption; finish the connection to avoid wedging.
		c.failRecv()
		return
	}
	c.zcBufs = make([][]byte, len(sizes))
	for i, sz := range sizes {
		c.zcBufs[i] = make([]byte, sz)
	}
}

// advanceReceiver posts the next chunk receive or delivers the completed
// message. The previous receive (if any) has already Tested complete.
func (c *connection) advanceReceiver() bool {
	// Absorb the completion of the receive we posted last round.
	if c.cur != nil {
		c.cur = nil
		switch {
		case c.stage == stageTrans:
			c.planZC()
			if c.done.Load() {
				return false
			}
			if c.nzc != nil {
				c.stage = stageZC
			} else {
				c.stage = stageNZC
			}
		case c.stage == stageNZC:
			c.stage = stageZC
		default:
			c.stage++ // next zero-copy chunk
		}
	}
	// Post the receive for the current stage, or deliver.
	switch {
	case c.stage == stageTrans:
		c.trans = c.owner.GetBuf(int(c.h.TransSize))
		return c.post(c.trans)
	case c.stage == stageNZC:
		c.nzc = c.owner.GetBuf(int(c.h.NZCSize))
		return c.post(c.nzc)
	case c.stage-stageZC < len(c.zcBufs):
		return c.post(c.zcBufs[c.stage-stageZC])
	default:
		// Hand the buffer owner to the message; the delivery chain releases
		// it once the last parcel's action finished. Zero-copy buffers are
		// plain GC allocations (they become long-lived arguments) and are
		// not owner-tracked.
		o := c.owner
		c.owner = nil
		o.Msg = serialization.Message{NonZeroCopy: c.nzc, Transmission: c.trans, ZeroCopy: c.zcBufs, Owner: o}
		c.pp.stats.recvd.Add(1)
		if c.pp.cfg.Original {
			c.pp.sendTagRelease(c.peer, uint32(c.tag))
		}
		c.done.Store(true)
		c.pp.deliver(&o.Msg)
		return false
	}
}

func (c *connection) post(buf []byte) bool {
	r, err := c.pp.comm.Irecv(buf, c.peer, c.tag)
	if err != nil {
		c.failRecv()
		return false
	}
	c.cur = r
	return true
}
