package mpipp

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hpxgo/internal/fabric"
	"hpxgo/internal/mpisim"
	"hpxgo/internal/serialization"
)

// rig is a two-locality MPI-parcelport test bench driven by explicit
// BackgroundWork calls.
type rig struct {
	pps [2]*Parcelport

	mu       sync.Mutex
	received [2][]*serialization.Message
}

func newRig(t *testing.T, cfg Config, fcfg fabric.Config) *rig {
	t.Helper()
	fcfg.Nodes = 2
	net, err := fabric.NewNetwork(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	world := mpisim.NewWorld(net, mpisim.Config{EagerThreshold: 1024})
	r := &rig{}
	for i := 0; i < 2; i++ {
		i := i
		r.pps[i] = New(world.Comm(i), cfg)
		err := r.pps[i].Start(func(m *serialization.Message) {
			r.mu.Lock()
			r.received[i] = append(r.received[i], m)
			r.mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		r.pps[0].Stop()
		r.pps[1].Stop()
	})
	return r
}

// pump drives both parcelports until cond holds.
func (r *rig) pump(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		r.pps[0].BackgroundWork(0)
		r.pps[1].BackgroundWork(0)
		r.mu.Lock()
		ok := cond()
		r.mu.Unlock()
		if ok {
			return
		}
	}
	t.Fatalf("condition not reached in %v", timeout)
}

func (r *rig) recvCount(loc int) func() bool {
	return func() bool { return len(r.received[1]) >= loc }
}

// msgWith builds an HPX message from parcels.
func msgWith(t *testing.T, argSizes ...int) (*serialization.Message, *serialization.Parcel) {
	t.Helper()
	p := &serialization.Parcel{Source: 0, Dest: 1, Action: 3}
	for i, sz := range argSizes {
		a := make([]byte, sz)
		for j := range a {
			a[j] = byte(i + j)
		}
		p.Args = append(p.Args, a)
	}
	return serialization.Encode([]*serialization.Parcel{p}, 0), p
}

// checkRoundTrip decodes the received message and compares to the parcel.
func checkRoundTrip(t *testing.T, m *serialization.Message, want *serialization.Parcel) {
	t.Helper()
	ps, err := serialization.Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || len(ps[0].Args) != len(want.Args) {
		t.Fatalf("decoded %d parcels", len(ps))
	}
	for i := range want.Args {
		if !bytes.Equal(ps[0].Args[i], want.Args[i]) {
			t.Fatalf("arg %d corrupted", i)
		}
	}
}

func TestSmallMessageFullyPiggybacked(t *testing.T) {
	r := newRig(t, Config{}, fabric.Config{LatencyNs: 200})
	m, p := msgWith(t, 16, 64)
	var sent bool
	m.OnSent = func() { sent = true }
	r.pps[0].Send(1, m)
	r.pump(t, 5*time.Second, r.recvCount(1))
	checkRoundTrip(t, r.received[1][0], p)
	if !sent {
		t.Fatal("OnSent never fired")
	}
	st := r.pps[0].Stats()
	if st.MessagesSent != 1 || st.HeadersPiggyNZC != 1 {
		t.Fatalf("sender stats %+v", st)
	}
	if r.pps[1].Stats().MessagesRecvd != 1 {
		t.Fatal("receiver count")
	}
}

func TestZeroCopyChunks(t *testing.T) {
	r := newRig(t, Config{}, fabric.Config{LatencyNs: 200})
	// Two zero-copy args (>= 8192) plus small args: header + trans(piggy) +
	// nzc(piggy) + 2 zc follow-ups.
	m, p := msgWith(t, 100, 9000, 20000)
	r.pps[0].Send(1, m)
	r.pump(t, 10*time.Second, r.recvCount(1))
	checkRoundTrip(t, r.received[1][0], p)
}

func TestLargeNZCNotPiggybacked(t *testing.T) {
	r := newRig(t, Config{}, fabric.Config{})
	// An nzc chunk bigger than the max header (many mid-size inline args).
	m, p := msgWith(t, 4000, 4000, 4000)
	if len(m.NonZeroCopy) <= serialization.DefaultZeroCopyThreshold {
		t.Fatalf("test premise: nzc is %d bytes", len(m.NonZeroCopy))
	}
	r.pps[0].Send(1, m)
	r.pump(t, 10*time.Second, r.recvCount(1))
	checkRoundTrip(t, r.received[1][0], p)
	if r.pps[0].Stats().HeadersPiggyNZC != 0 {
		t.Fatal("oversized nzc must not piggyback")
	}
}

func TestManyMessagesInterleaved(t *testing.T) {
	r := newRig(t, Config{}, fabric.Config{LatencyNs: 100})
	const n = 40
	var parcels []*serialization.Parcel
	for i := 0; i < n; i++ {
		m, p := msgWith(t, 32+i, 9000+i)
		parcels = append(parcels, p)
		r.pps[0].Send(1, m)
	}
	r.pump(t, 20*time.Second, func() bool { return len(r.received[1]) == n })
	// Order through one parcelport pair is preserved (header channel is a
	// single serialized stream).
	for i, m := range r.received[1] {
		checkRoundTrip(t, m, parcels[i])
	}
	if got := r.pps[0].PendingConnections(); got != 0 {
		t.Fatalf("pending connections leak: %d", got)
	}
}

func TestBidirectional(t *testing.T) {
	r := newRig(t, Config{}, fabric.Config{})
	m01, p01 := msgWith(t, 10000)
	m10, p10 := msgWith(t, 12000)
	r.pps[0].Send(1, m01)
	r.pps[1].Send(0, m10)
	r.pump(t, 10*time.Second, func() bool {
		return len(r.received[0]) == 1 && len(r.received[1]) == 1
	})
	checkRoundTrip(t, r.received[1][0], p01)
	checkRoundTrip(t, r.received[0][0], p10)
}

func TestOriginalModeTagRelease(t *testing.T) {
	r := newRig(t, Config{Original: true}, fabric.Config{})
	if r.pps[0].MaxHeaderSize() != 512 {
		t.Fatalf("original header size = %d", r.pps[0].MaxHeaderSize())
	}
	const n = 10
	var parcels []*serialization.Parcel
	for i := 0; i < n; i++ {
		m, p := msgWith(t, 64, 9000)
		parcels = append(parcels, p)
		r.pps[0].Send(1, m)
	}
	r.pump(t, 20*time.Second, func() bool { return len(r.received[1]) == n })
	for i, m := range r.received[1] {
		checkRoundTrip(t, m, parcels[i])
	}
	// Tag releases flow back to the sender.
	r.pump(t, 10*time.Second, func() bool {
		return r.pps[0].Stats().TagReleasesRecvd == n
	})
	if r.pps[1].Stats().TagReleasesSent != n {
		t.Fatalf("receiver sent %d releases", r.pps[1].Stats().TagReleasesSent)
	}
}

func TestOriginalModeNoTransPiggyback(t *testing.T) {
	r := newRig(t, Config{Original: true}, fabric.Config{})
	m, p := msgWith(t, 8, 9000) // tiny nzc + one zc: trans would fit, but must not ride
	r.pps[0].Send(1, m)
	r.pump(t, 10*time.Second, r.recvCount(1))
	checkRoundTrip(t, r.received[1][0], p)
	if r.pps[0].Stats().HeadersPiggyTr != 0 {
		t.Fatal("original mode piggybacked the transmission chunk")
	}
}

func TestStartValidation(t *testing.T) {
	net, _ := fabric.NewNetwork(fabric.Config{Nodes: 1})
	world := mpisim.NewWorld(net, mpisim.Config{})
	pp := New(world.Comm(0), Config{})
	if err := pp.Start(nil); err == nil {
		t.Fatal("nil deliver must fail")
	}
}

func TestStopIdempotentAndQuiesces(t *testing.T) {
	r := newRig(t, Config{}, fabric.Config{})
	r.pps[0].Stop()
	r.pps[0].Stop()
	if r.pps[0].BackgroundWork(0) {
		t.Fatal("background work after stop")
	}
}

func TestTagProviderReuse(t *testing.T) {
	p := newTagProvider()
	t1 := p.acquire()
	t2 := p.acquire()
	if t1 < firstFreeTag || t2 < firstFreeTag || t1 == t2 {
		t.Fatalf("tags %d %d", t1, t2)
	}
	p.release(t1)
	if got := p.acquire(); got != t1 {
		t.Fatalf("released tag not reused: got %d want %d", got, t1)
	}
}

func TestNameVariants(t *testing.T) {
	net, _ := fabric.NewNetwork(fabric.Config{Nodes: 1})
	world := mpisim.NewWorld(net, mpisim.Config{})
	if New(world.Comm(0), Config{}).Name() != "mpi" {
		t.Fatal("improved name")
	}
	if New(world.Comm(0), Config{Original: true}).Name() != "mpi_orig" {
		t.Fatal("original name")
	}
}
