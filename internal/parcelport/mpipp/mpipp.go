// Package mpipp implements the HPX MPI parcelport described in §3.1 of the
// paper, on top of the MPI-like library internal/mpisim.
//
// Transferring one HPX message uses a chain of MPI messages: a header
// message on tag 0 (with the non-zero-copy and transmission chunks
// piggybacked when they fit under the zero-copy serialization threshold),
// then — on a connection-private tag from a shared allocator — the
// transmission chunk, the non-zero-copy chunk and each zero-copy chunk, one
// nonblocking operation in flight per connection at a time.
//
// The target always keeps one wildcard receive of the maximum header size
// posted on tag 0. Pending sender and receiver connections live on a
// spinlock-protected list that idle worker threads poll round-robin with
// MPI_Test — every Test taking the library's coarse progress lock, which is
// the contention structure the paper measures.
//
// The Original configuration reproduces the pre-improvement parcelport for
// the §3.1 ablation: header buffers statically sized at 512 bytes that can
// only piggyback the non-zero-copy chunk, and a lock-protected tag provider
// refilled by explicit "tag release" messages from the receiver.
package mpipp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hpxgo/internal/mpisim"
	"hpxgo/internal/parcelport"
	"hpxgo/internal/serialization"
)

// Reserved MPI tags.
const (
	headerTag     = 0 // header messages
	tagReleaseTag = 1 // "tag release" messages (Original mode only)
	firstFreeTag  = 2 // first tag available to connections
)

// originalHeaderSize is the fixed header buffer size of the original
// parcelport.
const originalHeaderSize = 512

// Config tunes the MPI parcelport beyond the Table 1 axes.
type Config struct {
	// ZeroCopyThreshold sets the maximum header size (HPX default 8192).
	ZeroCopyThreshold int
	// Original selects the pre-improvement variant (§3.1).
	Original bool
	// DrainBatch bounds how many pending connections one BackgroundWork
	// pass advances, walking the list from a rotating cursor so a long list
	// cannot monopolize a worker and its tail cannot starve. Zero leaves
	// the sweep unbounded (the pre-knob behavior). Surfaced through
	// core.Config.DrainBatch.
	DrainBatch int
}

// Stats are cumulative parcelport counters.
type Stats struct {
	MessagesSent     uint64
	MessagesRecvd    uint64
	HeadersPiggyNZC  uint64
	HeadersPiggyTr   uint64
	TagReleasesSent  uint64
	TagReleasesRecvd uint64
}

// Parcelport is the MPI parcelport of one locality.
type Parcelport struct {
	cfg     Config
	name    string
	comm    *mpisim.Comm
	deliver parcelport.DeliverFunc

	tags *parcelport.TagAllocator // improved mode: shared in-flight-tracking allocator
	prov *tagProvider             // original mode: lock-protected free list

	headerMu   sync.Mutex // guards the singleton header receive
	headerBuf  []byte
	headerRecv *mpisim.Request

	releaseMu   sync.Mutex // original mode: guards the tag-release receive
	releaseBuf  []byte
	releaseRecv *mpisim.Request

	pendMu   sync.Mutex // the HPX spinlock protecting the pending list
	pending  []*connection
	drainCur atomic.Uint32 // rotating sweep cursor (bounded DrainBatch mode)

	stopped atomic.Bool

	stats struct {
		sent, recvd       atomic.Uint64
		piggyNZC, piggyTr atomic.Uint64
		relSent, relRecvd atomic.Uint64
	}
}

// New creates the MPI parcelport for the given communicator.
func New(comm *mpisim.Comm, cfg Config) *Parcelport {
	if cfg.ZeroCopyThreshold <= 0 {
		cfg.ZeroCopyThreshold = serialization.DefaultZeroCopyThreshold
	}
	name := "mpi"
	if cfg.Original {
		name = "mpi_orig"
	}
	pp := &Parcelport{cfg: cfg, name: name, comm: comm}
	if cfg.Original {
		pp.prov = newTagProvider()
	} else {
		// Tags in [firstFreeTag, TagUB): shift the allocator's [1, bound)
		// range up past the reserved tags.
		pp.tags = parcelport.NewTagAllocator(mpisim.TagUB - firstFreeTag + 1)
	}
	return pp
}

// Name returns the Table 1 abbreviation (without the upper layer's "_i").
func (pp *Parcelport) Name() string { return pp.name }

// MaxHeaderSize returns the header-message size cap.
func (pp *Parcelport) MaxHeaderSize() int {
	if pp.cfg.Original {
		return originalHeaderSize
	}
	return pp.cfg.ZeroCopyThreshold
}

// Stats returns a snapshot of the counters.
func (pp *Parcelport) Stats() Stats {
	return Stats{
		MessagesSent:     pp.stats.sent.Load(),
		MessagesRecvd:    pp.stats.recvd.Load(),
		HeadersPiggyNZC:  pp.stats.piggyNZC.Load(),
		HeadersPiggyTr:   pp.stats.piggyTr.Load(),
		TagReleasesSent:  pp.stats.relSent.Load(),
		TagReleasesRecvd: pp.stats.relRecvd.Load(),
	}
}

// Start posts the persistent header receive (and, in Original mode, the
// tag-release receive) and installs the delivery callback.
func (pp *Parcelport) Start(deliver parcelport.DeliverFunc) error {
	if deliver == nil {
		return fmt.Errorf("mpipp: nil deliver callback")
	}
	pp.deliver = deliver
	pp.headerBuf = make([]byte, pp.MaxHeaderSize())
	r, err := pp.comm.Irecv(pp.headerBuf, mpisim.AnySource, headerTag)
	if err != nil {
		return err
	}
	pp.headerRecv = r
	if pp.cfg.Original {
		pp.releaseBuf = make([]byte, 4)
		rr, err := pp.comm.Irecv(pp.releaseBuf, mpisim.AnySource, tagReleaseTag)
		if err != nil {
			return err
		}
		pp.releaseRecv = rr
	}
	return nil
}

// Stop cancels the persistent receives and stops accepting work.
func (pp *Parcelport) Stop() {
	if !pp.stopped.CompareAndSwap(false, true) {
		return
	}
	pp.headerMu.Lock()
	if pp.headerRecv != nil {
		pp.headerRecv.Cancel()
	}
	pp.headerMu.Unlock()
	pp.releaseMu.Lock()
	if pp.releaseRecv != nil {
		pp.releaseRecv.Cancel()
	}
	pp.releaseMu.Unlock()
}

// Send starts the transfer of one HPX message: it creates a sender
// connection, sends its header message, and parks the connection on the
// pending list for the background workers to advance.
func (pp *Parcelport) Send(dst int, m *serialization.Message) {
	tag := pp.acquireTag()
	c := newSenderConnection(pp, dst, int(tag), m)
	c.start()
	if !c.finished() {
		pp.addPending(c)
	}
}

// BackgroundWork is invoked by idle worker threads. It (a) checks the header
// receive for new HPX messages, (b) checks the tag-release receive in
// Original mode, and (c) round-robins over the pending connection list,
// Testing each connection's outstanding operation — each Test serializing on
// mpisim's coarse progress lock.
func (pp *Parcelport) BackgroundWork(workerID int) bool {
	if pp.stopped.Load() {
		return false
	}
	did := pp.checkHeader()
	if pp.cfg.Original && pp.checkTagRelease() {
		did = true
	}
	if pp.advancePending() {
		did = true
	}
	return did
}

// --- header channel ---

// checkHeader tests the singleton header receive and, when a header has
// arrived, builds a receiver connection and re-posts the receive.
func (pp *Parcelport) checkHeader() bool {
	if !pp.headerMu.TryLock() {
		return false
	}
	defer pp.headerMu.Unlock()
	r := pp.headerRecv
	if r == nil || !r.Test() {
		return false
	}
	st := r.Status()
	h, err := parcelport.DecodeHeader(pp.headerBuf[:st.Count])
	if err != nil {
		// A malformed header is a protocol bug; drop it but keep receiving.
		pp.repostHeaderLocked()
		return true
	}
	// The piggybacked chunks alias headerBuf, which the re-posted receive
	// will overwrite: copy them into pooled buffers tracked by a refcounted
	// owner that the delivery chain releases.
	owner := parcelport.GetRecvBufs()
	h.NZC = owner.Clone(h.NZC)
	h.Trans = owner.Clone(h.Trans)
	if h.NumZC == 0 && h.NZC != nil && (h.Trans != nil || h.TransSize == 0) {
		// Everything rode the header: deliver straight from the copies, no
		// connection, no follow-up receives.
		pp.stats.recvd.Add(1)
		if pp.cfg.Original {
			pp.sendTagRelease(st.Source, h.BaseTag)
		}
		owner.Msg = serialization.Message{NonZeroCopy: h.NZC, Transmission: h.Trans, Owner: owner}
		pp.repostHeaderLocked()
		pp.deliver(&owner.Msg)
		return true
	}
	c := newReceiverConnection(pp, st.Source, h, owner)
	pp.repostHeaderLocked()
	c.start()
	if !c.finished() {
		pp.addPending(c)
	}
	return true
}

func (pp *Parcelport) repostHeaderLocked() {
	if pp.stopped.Load() {
		pp.headerRecv = nil
		return
	}
	r, err := pp.comm.Irecv(pp.headerBuf, mpisim.AnySource, headerTag)
	if err != nil {
		pp.headerRecv = nil
		return
	}
	pp.headerRecv = r
}

// --- pending connection list ---

func (pp *Parcelport) addPending(c *connection) {
	pp.pendMu.Lock()
	pp.pending = append(pp.pending, c)
	pp.pendMu.Unlock()
}

// advancePending walks a snapshot of the pending list, advancing every
// connection whose outstanding operation completed, then compacts the list.
// With Config.DrainBatch set, each pass advances at most that many
// connections, starting from a rotating cursor for fairness.
func (pp *Parcelport) advancePending() bool {
	pp.pendMu.Lock()
	conns := pp.pending
	pp.pendMu.Unlock()
	n := len(conns)
	if n == 0 {
		return false
	}
	start, limit := 0, n
	if b := pp.cfg.DrainBatch; b > 0 && b < n {
		start, limit = int(pp.drainCur.Add(1))%n, b
	}
	did := false
	finished := 0
	for k := 0; k < limit; k++ {
		c := conns[(start+k)%n]
		if c.done.Load() {
			finished++
			continue
		}
		if !c.busy.CompareAndSwap(false, true) {
			continue
		}
		if c.advance() {
			did = true
		}
		if c.finished() {
			finished++
		}
		c.busy.Store(false)
	}
	if finished > 0 {
		pp.compactPending()
	}
	return did
}

func (pp *Parcelport) compactPending() {
	pp.pendMu.Lock()
	// Build a fresh slice: advancePending iterates snapshots of the old
	// backing array outside the lock, so it must never be mutated in place.
	kept := make([]*connection, 0, len(pp.pending))
	for _, c := range pp.pending {
		if !c.done.Load() {
			kept = append(kept, c)
		}
	}
	pp.pending = kept
	pp.pendMu.Unlock()
}

// PendingConnections reports the current pending-list length (tests).
func (pp *Parcelport) PendingConnections() int {
	pp.pendMu.Lock()
	defer pp.pendMu.Unlock()
	return len(pp.pending)
}

// --- tag management ---

// acquireTag returns a connection tag. Improved mode: shared allocator that
// skips tags still held by live connections. Original mode: lock-protected
// tag provider.
func (pp *Parcelport) acquireTag() uint32 {
	if pp.cfg.Original {
		return pp.prov.acquire()
	}
	return pp.tags.Next() + firstFreeTag - 1
}

// releaseTag returns an improved-mode connection tag to the allocator.
func (pp *Parcelport) releaseTag(tag uint32) {
	pp.tags.Release(tag-firstFreeTag+1, 1)
}

// sendTagRelease (Original mode) tells the sender a connection tag is free
// again.
func (pp *Parcelport) sendTagRelease(dst int, tag uint32) {
	buf := []byte{byte(tag), byte(tag >> 8), byte(tag >> 16), byte(tag >> 24)}
	if _, err := pp.comm.Isend(buf, dst, tagReleaseTag); err == nil {
		pp.stats.relSent.Add(1)
	}
}

// checkTagRelease polls the tag-release receive (Original mode).
func (pp *Parcelport) checkTagRelease() bool {
	if !pp.releaseMu.TryLock() {
		return false
	}
	defer pp.releaseMu.Unlock()
	r := pp.releaseRecv
	if r == nil || !r.Test() {
		return false
	}
	tag := uint32(pp.releaseBuf[0]) | uint32(pp.releaseBuf[1])<<8 |
		uint32(pp.releaseBuf[2])<<16 | uint32(pp.releaseBuf[3])<<24
	pp.prov.release(tag)
	pp.stats.relRecvd.Add(1)
	if pp.stopped.Load() {
		pp.releaseRecv = nil
		return true
	}
	if rr, err := pp.comm.Irecv(pp.releaseBuf, mpisim.AnySource, tagReleaseTag); err == nil {
		pp.releaseRecv = rr
	} else {
		pp.releaseRecv = nil
	}
	return true
}

// tagProvider is the original parcelport's tag source: a lock-protected
// vector of released tags, refilled by tag-release messages, falling back to
// an atomic counter when empty (§3.1).
type tagProvider struct {
	mu   sync.Mutex
	free []uint32
	next atomic.Uint32
}

func newTagProvider() *tagProvider {
	p := &tagProvider{}
	p.next.Store(firstFreeTag - 1)
	return p
}

func (p *tagProvider) acquire() uint32 {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return t
	}
	p.mu.Unlock()
	t := p.next.Add(1)
	if t >= mpisim.TagUB {
		// Wrap back into the usable range, same safety assumption as the
		// improved version.
		p.next.CompareAndSwap(t, firstFreeTag-1)
		return p.acquire()
	}
	return t
}

func (p *tagProvider) release(tag uint32) {
	p.mu.Lock()
	p.free = append(p.free, tag)
	p.mu.Unlock()
}
