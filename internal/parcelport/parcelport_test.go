package parcelport

import (
	"bytes"
	"strings"
	"testing"

	"hpxgo/internal/serialization"
)

func TestParseConfigRoundTrip(t *testing.T) {
	names := []string{
		"mpi", "mpi_i", "mpi_orig", "mpi_orig_i", "tcp", "tcp_i",
		"lci_psr_cq_pin", "lci_psr_cq_pin_i", "lci_psr_cq_mt_i",
		"lci_psr_sy_pin_i", "lci_psr_sy_mt_i",
		"lci_sr_cq_pin_i", "lci_sr_cq_mt_i",
		"lci_sr_sy_pin_i", "lci_sr_sy_mt_i",
		"mpi_agg", "mpi_i_agg", "mpi_orig_i_agg", "tcp_agg", "tcp_i_agg",
		"lci_psr_cq_pin_agg", "lci_psr_cq_pin_i_agg", "lci_sr_sy_mt_i_agg",
	}
	for _, n := range names {
		c, err := ParseConfig(n)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", n, err)
		}
		if got := c.String(); got != n {
			t.Fatalf("round trip %q -> %q", n, got)
		}
	}
}

func TestParseConfigAliases(t *testing.T) {
	c, err := ParseConfig("lci")
	if err != nil {
		t.Fatal(err)
	}
	if c != DefaultLCI() {
		t.Fatalf("lci alias = %+v", c)
	}
	if c.String() != "lci_psr_cq_pin_i" {
		t.Fatalf("baseline renders as %q", c.String())
	}
	// "rp" is the paper's name for the pinned progress thread.
	rp, err := ParseConfig("lci_psr_cq_rp_i")
	if err != nil {
		t.Fatal(err)
	}
	if rp != c {
		t.Fatal("rp and pin should parse identically")
	}
	// Case/space insensitivity.
	if _, err := ParseConfig("  MPI_I "); err != nil {
		t.Fatalf("case-insensitive parse failed: %v", err)
	}
	// Trailing-option shorthand on the baseline alias.
	agg, err := ParseConfig("lci_agg")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultLCI()
	want.Aggregate = true
	if agg != want {
		t.Fatalf("lci_agg alias = %+v", agg)
	}
	if agg.String() != "lci_psr_cq_pin_i_agg" {
		t.Fatalf("lci_agg renders as %q", agg.String())
	}
	if both, err := ParseConfig("lci_i_agg"); err != nil || both != want {
		t.Fatalf("lci_i_agg alias = %+v (%v)", both, err)
	}
}

func TestParseConfigErrors(t *testing.T) {
	for _, bad := range []string{
		"", "smoke", "mpi_x", "tcp_x", "lci_psr", "lci_xx_cq_pin", "lci_psr_xx_pin",
		"lci_psr_cq_xx", "lci_psr_cq_pin_z", "lci_aggg", "lci_agg_x", "mpi_agg_x",
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Fatalf("ParseConfig(%q) should fail", bad)
		}
	}
}

func TestTable1Complete(t *testing.T) {
	cfgs := Table1()
	if len(cfgs) != 11 {
		t.Fatalf("Table1 lists %d configs, want 11", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		s := c.String()
		if seen[s] {
			t.Fatalf("duplicate config %q", s)
		}
		seen[s] = true
	}
	for _, want := range []string{"mpi", "mpi_i", "lci_psr_cq_pin", "lci_sr_sy_mt_i"} {
		if !seen[want] {
			t.Fatalf("Table1 missing %q", want)
		}
	}
}

func TestTagAllocatorBasics(t *testing.T) {
	a := NewTagAllocator(1 << 20)
	t1, t2 := a.Next(), a.Next()
	if t1 == 0 || t2 == 0 {
		t.Fatal("tag 0 is reserved for header messages")
	}
	if t1 == t2 {
		t.Fatal("consecutive tags must differ")
	}
}

func TestTagAllocatorBlock(t *testing.T) {
	a := NewTagAllocator(1 << 20)
	first := a.Block(5)
	for k := 0; k < 5; k++ {
		tag := a.Nth(first, k)
		if tag == 0 {
			t.Fatal("block tag 0")
		}
		if k > 0 && tag == first {
			t.Fatalf("block tag %d collided with first", k)
		}
	}
	next := a.Next()
	for k := 0; k < 5; k++ {
		if a.Nth(first, k) == next {
			t.Fatal("block overlaps subsequent allocation")
		}
	}
}

func TestTagAllocatorWraparound(t *testing.T) {
	a := NewTagAllocator(8) // tags in [1,8)
	seen := map[uint32]int{}
	for i := 0; i < 21; i++ {
		tag := a.Next()
		if tag == 0 || tag >= 8 {
			t.Fatalf("tag %d out of range", tag)
		}
		seen[tag]++
		a.Release(tag, 1) // connection completes before the space wraps
	}
	// 21 allocations over 7 tags with prompt release: the cursor sweeps the
	// ring three times and each value is reused exactly 3 times.
	for tag, n := range seen {
		if n != 3 {
			t.Fatalf("tag %d allocated %d times", tag, n)
		}
	}
	if a.InFlight() != 0 {
		t.Fatalf("%d tags leaked", a.InFlight())
	}
}

// TestTagAllocatorWraparoundCollision is the regression test for the
// wraparound bug: the old atomic-counter allocator reissued a tag that was
// still held by a live connection as soon as the counter wrapped. The fixed
// allocator must skip in-flight tags and hand out the one released slot.
func TestTagAllocatorWraparoundCollision(t *testing.T) {
	a := NewTagAllocator(8) // tags in [1,8)
	live := make(map[uint32]bool)
	var tags []uint32
	for i := 0; i < 7; i++ {
		tag := a.Next()
		if live[tag] {
			t.Fatalf("tag %d reissued while in flight", tag)
		}
		live[tag] = true
		tags = append(tags, tag)
	}
	// One connection in the middle completes; the other six stay live.
	released := tags[3]
	a.Release(released, 1)
	delete(live, released)

	// The old allocator returns tags[0] here (counter wrapped to the start),
	// colliding with a live connection. The fixed one must return the single
	// free tag.
	got := a.Next()
	if live[got] {
		t.Fatalf("wraparound collision: tag %d reissued while in flight (old-allocator behaviour)", got)
	}
	if got != released {
		t.Fatalf("Next() = %d, want the released tag %d", got, released)
	}
}

func TestTagAllocatorExhaustionPanics(t *testing.T) {
	a := NewTagAllocator(4) // tags in [1,4)
	for i := 0; i < 3; i++ {
		a.Next()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("allocating from an exhausted tag space must panic, not hand out a live tag")
		}
	}()
	a.Next()
}

func TestTagAllocatorBlockSkipsFragmentation(t *testing.T) {
	a := NewTagAllocator(8)
	t1 := a.Next() // slot 0
	t2 := a.Next() // slot 1
	a.Release(t1, 1)
	// Slot 0 is free but slot 1 is live: a 3-block must skip past it.
	first := a.Block(3)
	for k := 0; k < 3; k++ {
		if tag := a.Nth(first, k); tag == t2 {
			t.Fatalf("block member %d collides with live tag %d", k, t2)
		}
	}
	a.Release(first, 3)
	a.Release(t2, 1)
	if a.InFlight() != 0 {
		t.Fatalf("%d tags leaked", a.InFlight())
	}
}

// TestTagAllocatorBlockWraparound: a block starting near bound-1 must wrap
// cleanly — members stay in [1, bound), remain distinct, span the boundary,
// and Release of the wrapped block frees every slot it reserved.
func TestTagAllocatorBlockWraparound(t *testing.T) {
	a := NewTagAllocator(9) // 8 slots, tags in [1,9)
	// Advance the cursor to slot 6 so a 4-block must wrap past the bound.
	for i := 0; i < 6; i++ {
		a.Release(a.Next(), 1)
	}
	first := a.Block(4) // slots 6,7,0,1
	if first != 7 {
		t.Fatalf("block first tag = %d, want 7 (slot 6)", first)
	}
	seen := map[uint32]bool{}
	for k := 0; k < 4; k++ {
		tag := a.Nth(first, k)
		if tag == 0 || tag >= 9 {
			t.Fatalf("wrapped block member %d = %d out of [1,9)", k, tag)
		}
		if seen[tag] {
			t.Fatalf("wrapped block member %d = %d duplicated", k, tag)
		}
		seen[tag] = true
	}
	if !seen[8] || !seen[1] {
		t.Fatalf("block %v does not span the wraparound boundary", seen)
	}
	if a.InFlight() != 4 {
		t.Fatalf("InFlight = %d, want 4", a.InFlight())
	}
	// A follow-up allocation must not collide with the wrapped block.
	next := a.Next()
	if seen[next] {
		t.Fatalf("Next() = %d collides with the wrapped block", next)
	}
	// Release must clear the same wrapped slots Block reserved.
	a.Release(first, 4)
	if a.InFlight() != 1 {
		t.Fatalf("InFlight after wrapped release = %d, want 1", a.InFlight())
	}
	a.Release(next, 1)
	if a.InFlight() != 0 {
		t.Fatalf("%d tags leaked", a.InFlight())
	}
}

// TestTagAllocatorBlockWraparoundSkipsLiveTag: a run that would wrap onto a
// live tag on the far side of the boundary must be skipped, not split or
// collided with.
func TestTagAllocatorBlockWraparoundSkipsLiveTag(t *testing.T) {
	a := NewTagAllocator(9) // 8 slots, tags in [1,9)
	live := a.Next()        // slot 0, tag 1
	for i := 0; i < 5; i++ {
		a.Release(a.Next(), 1)
	}
	// Cursor sits at slot 6: the natural run 6,7,0 crosses the boundary into
	// the live tag and must be rejected.
	first := a.Block(3)
	for k := 0; k < 3; k++ {
		if a.Nth(first, k) == live {
			t.Fatalf("wrapped block member %d collides with live tag %d", k, live)
		}
	}
	if a.InFlight() != 4 {
		t.Fatalf("InFlight = %d, want 4", a.InFlight())
	}
	a.Release(first, 3)
	a.Release(live, 1)
	if a.InFlight() != 0 {
		t.Fatalf("%d tags leaked", a.InFlight())
	}
}

func TestHeaderEncodeDecodeAllPiggybacked(t *testing.T) {
	m := &serialization.Message{
		NonZeroCopy:  []byte("nonzerocopy-chunk"),
		Transmission: []byte("trans"),
		ZeroCopy:     [][]byte{make([]byte, 9000)},
	}
	buf := make([]byte, 8192)
	n, _, _, err := EncodeHeader(buf, 42, m, 8192, true)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if h.BaseTag != 42 || h.NumZC != 1 {
		t.Fatalf("header fields: %+v", h)
	}
	if !h.PiggyNZC() || !h.PiggyTrans() {
		t.Fatal("both chunks should be piggybacked")
	}
	if !bytes.Equal(h.NZC, m.NonZeroCopy) || !bytes.Equal(h.Trans, m.Transmission) {
		t.Fatal("piggybacked chunks corrupted")
	}
}

func TestHeaderNoPiggybackWhenTooBig(t *testing.T) {
	m := &serialization.Message{
		NonZeroCopy:  bytes.Repeat([]byte{1}, 600),
		Transmission: bytes.Repeat([]byte{2}, 600),
		ZeroCopy:     [][]byte{make([]byte, 9000)},
	}
	buf := make([]byte, 512)
	n, _, _, err := EncodeHeader(buf, 7, m, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != headerFixedSize {
		t.Fatalf("header size %d, want fixed %d", n, headerFixedSize)
	}
	h, err := DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if h.PiggyNZC() || h.PiggyTrans() {
		t.Fatal("nothing should be piggybacked")
	}
	if h.NZCSize != 600 || h.TransSize != 600 || h.NumZC != 1 {
		t.Fatalf("sizes: %+v", h)
	}
}

func TestHeaderOriginalModeSkipsTransPiggyback(t *testing.T) {
	// The original MPI parcelport can only piggyback the non-zero-copy
	// chunk, even when the transmission chunk would fit.
	m := &serialization.Message{
		NonZeroCopy:  []byte("nzc"),
		Transmission: []byte("tr"),
		ZeroCopy:     [][]byte{make([]byte, 9000)},
	}
	buf := make([]byte, 512)
	n, _, _, err := EncodeHeader(buf, 1, m, 512, false)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if h.Trans != nil {
		t.Fatal("original mode must not piggyback the transmission chunk")
	}
	if !h.PiggyNZC() {
		t.Fatal("nzc should still be piggybacked")
	}
}

func TestHeaderPiggyTransOnlyNoTrans(t *testing.T) {
	// A message without zero-copy chunks has no transmission chunk;
	// PiggyTrans must report true (nothing left to fetch).
	m := &serialization.Message{NonZeroCopy: []byte("only")}
	buf := make([]byte, 512)
	n, _, _, err := EncodeHeader(buf, 3, m, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	h, err := DecodeHeader(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !h.PiggyTrans() || h.TransSize != 0 {
		t.Fatalf("absent transmission chunk handled wrong: %+v", h)
	}
}

func TestHeaderEncodeValidation(t *testing.T) {
	m := &serialization.Message{}
	if _, _, _, err := EncodeHeader(make([]byte, 10), 1, m, 10, true); err == nil {
		t.Fatal("maxSize below fixed size should fail")
	}
	if _, _, _, err := EncodeHeader(make([]byte, 10), 1, m, 512, true); err == nil {
		t.Fatal("short buffer should fail")
	}
}

func TestHeaderDecodeErrors(t *testing.T) {
	if _, err := DecodeHeader([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header should fail")
	}
	// Construct a header claiming a piggybacked chunk longer than the data.
	m := &serialization.Message{NonZeroCopy: []byte("abcdef")}
	buf := make([]byte, 512)
	n, _, _, err := EncodeHeader(buf, 1, m, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeHeader(buf[:n-3]); err == nil {
		t.Fatal("truncated piggyback should fail")
	}
}

func TestConfigStringsAreTable1Abbreviations(t *testing.T) {
	// Every rendered name must use only Table 1 vocabulary.
	for _, c := range Table1() {
		for _, part := range strings.Split(c.String(), "_") {
			switch part {
			case "mpi", "lci", "sr", "psr", "sy", "cq", "pin", "mt", "i":
			default:
				t.Fatalf("unexpected abbreviation part %q in %q", part, c.String())
			}
		}
	}
}
