package parcelport

import (
	"fmt"
	"strings"
)

// Transport selects the communication library.
type Transport int

const (
	// TransportMPI uses the MPI-like library (internal/mpisim).
	TransportMPI Transport = iota
	// TransportLCI uses the LCI-like library (internal/lci).
	TransportLCI
	// TransportTCP uses real loopback TCP (internal/parcelport/tcppp), the
	// other backend HPX shipped before this project. Not part of the
	// paper's evaluation.
	TransportTCP
)

// Protocol selects how the LCI parcelport transfers header messages (§3.2.2).
type Protocol int

const (
	// PutSendRecv ("psr") sends headers with the one-sided dynamic put and
	// the remaining messages with two-sided send/receive. Baseline.
	PutSendRecv Protocol = iota
	// SendRecv ("sr") uses only two-sided send/receive; the header channel
	// keeps one wildcard receive posted like the MPI parcelport.
	SendRecv
)

// Completion selects the LCI completion mechanism (§3.2.2).
type Completion int

const (
	// CompletionQueue ("cq") polls one completion queue. Baseline.
	CompletionQueue Completion = iota
	// Synchronizer ("sy") uses per-operation synchronizers kept in a pending
	// list, polled round-robin like the MPI parcelport's connection list.
	// Header puts still complete through the pre-configured CQ (an LCI
	// implementation limitation noted in the paper).
	Synchronizer
)

// ProgressMode selects who calls the LCI progress function (§3.2.2).
type ProgressMode int

const (
	// PinnedProgress ("pin"/"rp") runs a dedicated progress thread created
	// through the resource partitioner. Baseline.
	PinnedProgress ProgressMode = iota
	// WorkerProgress ("mt") has idle worker threads call the (thread-safe)
	// progress function from background work.
	WorkerProgress
)

// Config identifies one of the parcelport configurations of Table 1.
type Config struct {
	Transport  Transport
	Protocol   Protocol     // LCI only
	Completion Completion   // LCI only
	Progress   ProgressMode // LCI only
	// Immediate enables the send-immediate optimization ("_i"): the upper
	// layer bypasses the connection cache and parcel queue.
	Immediate bool
	// Original selects the pre-improvement MPI parcelport of §3.1: fixed
	// 512-byte header buffers that can only piggyback the non-zero-copy
	// chunk, and a lock-protected tag provider with tag-release messages.
	Original bool
	// Aggregate enables the sender-side aggregation layer ("_agg"): small
	// same-destination messages coalesce into one fabric transfer. Not part
	// of Table 1; available on every transport.
	Aggregate bool
}

// DefaultLCI returns the baseline LCI parcelport configuration the paper
// ships as the HPX default (lci_psr_cq_pin_i, a.k.a. lci_psr_cq_rp_i).
func DefaultLCI() Config {
	return Config{Transport: TransportLCI, Immediate: true}
}

// DefaultMPI returns the improved MPI parcelport without send-immediate
// ("mpi"), the best-performing MPI configuration at the application level.
func DefaultMPI() Config {
	return Config{Transport: TransportMPI}
}

// String renders the Table 1 abbreviation for the configuration.
func (c Config) String() string {
	var parts []string
	switch c.Transport {
	case TransportMPI:
		parts = append(parts, "mpi")
		if c.Original {
			parts = append(parts, "orig")
		}
	case TransportTCP:
		parts = append(parts, "tcp")
	default:
		parts = append(parts, "lci")
		if c.Protocol == SendRecv {
			parts = append(parts, "sr")
		} else {
			parts = append(parts, "psr")
		}
		if c.Completion == Synchronizer {
			parts = append(parts, "sy")
		} else {
			parts = append(parts, "cq")
		}
		if c.Progress == WorkerProgress {
			parts = append(parts, "mt")
		} else {
			parts = append(parts, "pin")
		}
	}
	if c.Immediate {
		parts = append(parts, "i")
	}
	if c.Aggregate {
		parts = append(parts, "agg")
	}
	return strings.Join(parts, "_")
}

// ParseConfig parses a Table 1 abbreviation. Accepted forms:
//
//	mpi[_orig][_i][_agg]
//	tcp[_i][_agg]
//	lci[_i][_agg]             (aliases for the baseline lci_psr_cq_pin_i)
//	lci_{sr|psr}_{cq|sy}_{pin|rp|mt}[_i][_agg]
//
// The trailing "agg" option (not in Table 1) enables the sender-side
// aggregation layer on any transport.
func ParseConfig(name string) (Config, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(name)), "_")
	if len(parts) == 0 || parts[0] == "" {
		return Config{}, fmt.Errorf("parcelport: empty configuration name")
	}
	var c Config
	switch parts[0] {
	case "tcp":
		c.Transport = TransportTCP
		for _, p := range parts[1:] {
			switch p {
			case "i":
				c.Immediate = true
			case "agg":
				c.Aggregate = true
			default:
				return Config{}, fmt.Errorf("parcelport: unknown tcp option %q in %q", p, name)
			}
		}
		return c, nil
	case "mpi":
		c.Transport = TransportMPI
		rest := parts[1:]
		for _, p := range rest {
			switch p {
			case "i":
				c.Immediate = true
			case "orig":
				c.Original = true
			case "agg":
				c.Aggregate = true
			default:
				return Config{}, fmt.Errorf("parcelport: unknown mpi option %q in %q", p, name)
			}
		}
		return c, nil
	case "lci":
		c.Transport = TransportLCI
		rest := parts[1:]
		if len(rest) == 0 {
			return DefaultLCI(), nil
		}
		if rest[0] == "i" || rest[0] == "agg" {
			// Trailing-option shorthand on the baseline alias: lci_i,
			// lci_agg, lci_i_agg.
			c = DefaultLCI()
			for _, p := range rest {
				switch p {
				case "i":
					c.Immediate = true
				case "agg":
					c.Aggregate = true
				default:
					return Config{}, fmt.Errorf("parcelport: unknown lci option %q in %q", p, name)
				}
			}
			return c, nil
		}
		if len(rest) < 3 {
			return Config{}, fmt.Errorf("parcelport: lci configuration %q needs protocol, completion and progress", name)
		}
		switch rest[0] {
		case "sr":
			c.Protocol = SendRecv
		case "psr":
			c.Protocol = PutSendRecv
		default:
			return Config{}, fmt.Errorf("parcelport: unknown protocol %q in %q", rest[0], name)
		}
		switch rest[1] {
		case "cq":
			c.Completion = CompletionQueue
		case "sy":
			c.Completion = Synchronizer
		default:
			return Config{}, fmt.Errorf("parcelport: unknown completion %q in %q", rest[1], name)
		}
		switch rest[2] {
		case "pin", "rp":
			c.Progress = PinnedProgress
		case "mt":
			c.Progress = WorkerProgress
		default:
			return Config{}, fmt.Errorf("parcelport: unknown progress mode %q in %q", rest[2], name)
		}
		for _, p := range rest[3:] {
			switch p {
			case "i":
				c.Immediate = true
			case "agg":
				c.Aggregate = true
			default:
				return Config{}, fmt.Errorf("parcelport: unknown lci option %q in %q", p, name)
			}
		}
		return c, nil
	default:
		return Config{}, fmt.Errorf("parcelport: unknown transport %q in %q", parts[0], name)
	}
}

// Table1 returns every configuration the paper's figures evaluate, in the
// order of Fig. 3/Fig. 6.
func Table1() []Config {
	mk := func(s string) Config {
		c, err := ParseConfig(s)
		if err != nil {
			panic(err)
		}
		return c
	}
	return []Config{
		mk("lci_psr_cq_pin"),
		mk("lci_psr_cq_pin_i"),
		mk("lci_psr_cq_mt_i"),
		mk("lci_psr_sy_pin_i"),
		mk("lci_psr_sy_mt_i"),
		mk("lci_sr_cq_pin_i"),
		mk("lci_sr_cq_mt_i"),
		mk("lci_sr_sy_pin_i"),
		mk("lci_sr_sy_mt_i"),
		mk("mpi"),
		mk("mpi_i"),
	}
}
