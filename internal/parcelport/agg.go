package parcelport

import (
	"sync"
	"sync/atomic"
	"time"

	"hpxgo/internal/serialization"
	"hpxgo/internal/wire"
)

// Aggregation defaults. FlushBytes roughly matches one fabric packet of
// small messages; FlushDelay bounds the latency a buffered message can pay
// waiting for company; ColdIdle decides when a destination counts as cold
// (first message after an idle gap goes out immediately rather than waiting
// alone in a buffer).
const (
	DefaultAggFlushBytes = 4096
	DefaultAggFlushDelay = 50 * time.Microsecond
	DefaultAggColdIdle   = 200 * time.Microsecond
)

// AggConfig tunes the sender-side aggregation layer.
type AggConfig struct {
	// FlushBytes flushes a destination buffer once it reaches this size.
	// Default 4096.
	FlushBytes int
	// FlushDelay bounds how long a buffered message may age before the
	// buffer is flushed by background work or the progress thread.
	// Default 50µs.
	FlushDelay time.Duration
	// ColdIdle is the idle gap after which a destination counts as cold:
	// the next message bypasses the buffer (no batching partner is in
	// sight, so buffering would only add latency). Default 4× FlushDelay.
	ColdIdle time.Duration
	// MaxSub caps the size of a sub-message eligible for bundling; larger
	// messages (and any message with zero-copy chunks) pass through.
	// Default FlushBytes/2.
	MaxSub int
	// MaxQueued enforces the per-destination pending cap on buffered
	// sub-messages: reaching it forces a flush (backpressure) and bumps
	// the CapFlushes counter. Default MaxPendingConnections.
	MaxQueued int
}

func (c *AggConfig) fillDefaults() {
	if c.FlushBytes <= 0 {
		c.FlushBytes = DefaultAggFlushBytes
	}
	if c.FlushDelay <= 0 {
		c.FlushDelay = DefaultAggFlushDelay
	}
	if c.ColdIdle <= 0 {
		c.ColdIdle = 4 * c.FlushDelay
	}
	if c.MaxSub <= 0 {
		c.MaxSub = c.FlushBytes / 2
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = MaxPendingConnections
	}
}

// AggStats are cumulative aggregation-layer counters.
type AggStats struct {
	BundledMessages uint64 // sub-messages packed into bundles
	Bundles         uint64 // bundle transfers handed to the inner parcelport
	DirectSends     uint64 // messages passed through unbundled
	ColdSends       uint64 // direct sends taken because the destination was cold
	SizeFlushes     uint64 // buffers flushed by FlushBytes
	AgeFlushes      uint64 // buffers flushed by FlushDelay (background/progress)
	CapFlushes      uint64 // buffers flushed by the MaxQueued backpressure cap
	OrderFlushes    uint64 // buffers flushed ahead of a passthrough message
	StopFlushes     uint64 // buffers drained by Stop at shutdown
	Unbundled       uint64 // sub-messages unpacked from received bundles
}

// aggDest is the per-destination coalescing buffer.
type aggDest struct {
	mu      sync.Mutex
	buf     []byte // nil when empty; otherwise a growing wire bundle
	count   int    // frames in buf
	limit   int    // flush size captured when buf was created (adaptive)
	firstNs int64  // when the oldest buffered frame arrived
	lastNs  int64  // when this destination last saw traffic
	// pending mirrors count != 0 so FlushStale can skip idle destinations
	// without taking their locks.
	pending atomic.Bool
}

// Tuner adapts the per-destination aggregation policy at runtime (see
// internal/tune). Knob reads and observation ingests sit on the per-message
// path, so implementations must be lock-free and allocation-free there.
type Tuner interface {
	// AggKnobs returns dst's effective policy: flush size, flush age, cold
	// idle gap, and whether to bypass bundling entirely (send-immediate).
	AggKnobs(dst int) (flushBytes int, flushDelayNs, coldIdleNs int64, bypass bool)
	// ObserveSend records one bundleable message toward dst.
	ObserveSend(dst, size int, nowNs int64)
	// ObserveFlush records one flushed bundle (size policy vs age policy).
	ObserveFlush(dst, bytes, frames int, ageNs int64, bySize bool)
	// Tick runs one rate-gated control pass.
	Tick(nowNs int64) bool
}

// Aggregator is the sender-side parcel aggregation layer: a Parcelport
// decorator that packs small same-destination messages into one wire
// bundle per fabric transfer and unbundles on the receive side before
// delivery. Large messages, and anything carrying zero-copy chunks, pass
// through untouched (after flushing the destination buffer, preserving
// rough per-destination FIFO order).
//
// Bundles are ordinary messages to the layers below, so they ride the
// fabric's reliability layer like any other transfer: one ack, one
// retransmission unit, exactly-once delivery per bundle and therefore per
// sub-message.
type Aggregator struct {
	inner   Parcelport
	cfg     AggConfig
	start   time.Time
	deliver DeliverFunc
	dests   []*aggDest
	tuner   Tuner // nil = static knobs from cfg

	stats struct {
		bundled, bundles, direct, cold                  atomic.Uint64
		sizeFl, ageFl, capFl, orderFl, stopFl, unbundle atomic.Uint64
	}
}

// NewAggregator wraps inner with a coalescing layer for numDest
// destinations.
func NewAggregator(inner Parcelport, numDest int, cfg AggConfig) *Aggregator {
	cfg.fillDefaults()
	a := &Aggregator{inner: inner, cfg: cfg, start: time.Now()}
	a.dests = make([]*aggDest, numDest)
	for i := range a.dests {
		a.dests[i] = &aggDest{}
	}
	return a
}

// Inner exposes the wrapped parcelport (stats reporting).
func (a *Aggregator) Inner() Parcelport { return a.inner }

// SetTuner installs the adaptive per-destination policy source. Must be
// called before traffic flows; nil keeps the static AggConfig knobs.
func (a *Aggregator) SetTuner(t Tuner) { a.tuner = t }

// knobs returns dst's effective policy: the tuner's when installed, the
// static config otherwise.
func (a *Aggregator) knobs(dst int) (flushBytes int, flushDelayNs, coldIdleNs int64, bypass bool) {
	if t := a.tuner; t != nil {
		return t.AggKnobs(dst)
	}
	return a.cfg.FlushBytes, int64(a.cfg.FlushDelay), int64(a.cfg.ColdIdle), false
}

// observeFlushLocked feeds one flush to the tuner. Caller holds d.mu and
// calls this before takeLocked resets the buffer state.
func (a *Aggregator) observeFlushLocked(dst int, d *aggDest, now int64, bySize bool) {
	if t := a.tuner; t != nil {
		t.ObserveFlush(dst, len(d.buf), d.count, now-d.firstNs, bySize)
	}
}

// Name renders the inner parcelport's name with the aggregation suffix.
func (a *Aggregator) Name() string { return a.inner.Name() + "_agg" }

// Stats returns a snapshot of the aggregation counters.
func (a *Aggregator) Stats() AggStats {
	return AggStats{
		BundledMessages: a.stats.bundled.Load(),
		Bundles:         a.stats.bundles.Load(),
		DirectSends:     a.stats.direct.Load(),
		ColdSends:       a.stats.cold.Load(),
		SizeFlushes:     a.stats.sizeFl.Load(),
		AgeFlushes:      a.stats.ageFl.Load(),
		CapFlushes:      a.stats.capFl.Load(),
		OrderFlushes:    a.stats.orderFl.Load(),
		StopFlushes:     a.stats.stopFl.Load(),
		Unbundled:       a.stats.unbundle.Load(),
	}
}

// QueuedSubMessages reports buffered frames for dst (tests/metrics).
func (a *Aggregator) QueuedSubMessages(dst int) int {
	if dst < 0 || dst >= len(a.dests) {
		return 0
	}
	d := a.dests[dst]
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

func (a *Aggregator) nowNs() int64 { return int64(time.Since(a.start)) }

// Start installs the unbundling delivery wrapper and starts the inner
// parcelport.
func (a *Aggregator) Start(deliver DeliverFunc) error {
	a.deliver = deliver
	return a.inner.Start(a.onDeliver)
}

// Stop flushes every destination buffer and stops the inner parcelport.
// Shutdown drains credit StopFlushes, not AgeFlushes: the buffers never
// reached FlushDelay, and folding them into the age counter would pollute
// the expiry statistics the flush-policy tuning reads.
func (a *Aggregator) Stop() {
	for dst := range a.dests {
		a.flushDest(dst, &a.stats.stopFl)
	}
	a.inner.Stop()
}

// bundleable reports whether m may ride a bundle: non-zero-copy only and
// small. Zero-copy chunks alias user memory the receiver must get as
// separate transfers, and big payloads gain nothing from batching.
func (a *Aggregator) bundleable(m *serialization.Message) bool {
	return len(m.ZeroCopy) == 0 && len(m.Transmission) == 0 &&
		len(m.NonZeroCopy) > 0 && len(m.NonZeroCopy) <= a.cfg.MaxSub
}

// Send coalesces m into dst's buffer or passes it through, flushing per the
// adaptive policy (size, backpressure cap, cold destination).
func (a *Aggregator) Send(dst int, m *serialization.Message) {
	if dst < 0 || dst >= len(a.dests) {
		a.inner.Send(dst, m)
		return
	}
	if !a.bundleable(m) {
		// Flush buffered predecessors first so per-destination order is
		// roughly preserved, then hand the message through untouched.
		a.flushDest(dst, &a.stats.orderFl)
		a.stats.direct.Add(1)
		a.inner.Send(dst, m)
		return
	}
	d := a.dests[dst]
	now := a.nowNs()
	flushBytes, _, coldIdleNs, bypass := a.knobs(dst)
	if t := a.tuner; t != nil {
		t.ObserveSend(dst, len(m.NonZeroCopy), now)
	}
	d.mu.Lock()
	if d.count == 0 && (bypass || now-d.lastNs > coldIdleNs) {
		// Cold destination (or the tuner marked the peer send-immediate):
		// nothing buffered and no batching partner in sight — send
		// immediately rather than paying the flush delay for nothing.
		d.lastNs = now
		d.mu.Unlock()
		a.stats.direct.Add(1)
		a.stats.cold.Add(1)
		a.inner.Send(dst, m)
		return
	}
	a.ensureBufLocked(d, flushBytes)
	d.buf = wire.AppendFrame(d.buf, m.NonZeroCopy)
	out, counter := a.noteAppendLocked(dst, d, now)
	d.mu.Unlock()
	a.stats.bundled.Add(1)
	// The payload was copied into the bundle: the sub-message is locally
	// complete. Done may re-enter Send (the parcel layer drains its queue
	// from OnSent), hence outside d.mu.
	m.Done()
	if out != nil {
		counter.Add(1)
		a.sendBundle(dst, out)
	}
}

// SendParcel encodes p straight into dst's bundle buffer, skipping the
// per-message encode scratch entirely: no scratch allocation, no copy, no
// Message wrapper — the steady-state bundled fast path. It returns false
// when the parcel must take the ordinary encode-then-Send path instead
// (out-of-range destination, too big to bundle, or a cold destination,
// where Send's direct-send policy applies). The caller guarantees every
// argument is below its zero-copy threshold.
func (a *Aggregator) SendParcel(dst int, p serialization.Parcel) bool {
	if dst < 0 || dst >= len(a.dests) {
		return false
	}
	need := serialization.EncodedSizeInline(&p)
	if need > a.cfg.MaxSub {
		return false
	}
	d := a.dests[dst]
	now := a.nowNs()
	flushBytes, _, coldIdleNs, bypass := a.knobs(dst)
	if t := a.tuner; t != nil {
		t.ObserveSend(dst, need, now)
	}
	d.mu.Lock()
	if d.count == 0 && (bypass || now-d.lastNs > coldIdleNs) {
		d.mu.Unlock()
		return false
	}
	a.ensureBufLocked(d, flushBytes)
	d.buf = serialization.AppendEncodeInline(wire.AppendFrameHeader(d.buf, need), &p)
	out, counter := a.noteAppendLocked(dst, d, now)
	d.mu.Unlock()
	a.stats.bundled.Add(1)
	if out != nil {
		counter.Add(1)
		a.sendBundle(dst, out)
	}
	return true
}

// ensureBufLocked lazily allocates dst's bundle buffer, capturing the
// effective flush size for this bundle's lifetime: the limit is fixed at
// creation so the pooled slice is sized once and appends never outgrow it,
// even while the tuner moves the knob. Caller holds d.mu.
func (a *Aggregator) ensureBufLocked(d *aggDest, flushBytes int) {
	if d.buf == nil {
		d.limit = flushBytes
		// Size the buffer so appends never outgrow the pooled slice: the
		// last frame lands when len < limit and adds at most MaxSub
		// payload plus its header.
		need := d.limit + a.cfg.MaxSub + wire.FrameHeaderSize + wire.BundleHeaderSize
		d.buf = wire.BeginBundle(wire.GetBuf(need)[:0])
	}
}

// noteAppendLocked records an appended frame and applies the size and
// backpressure-cap flush policy, returning the detached bundle (if any)
// with the counter to credit. Caller holds d.mu and sends the bundle after
// unlocking.
func (a *Aggregator) noteAppendLocked(dst int, d *aggDest, now int64) (*serialization.Message, *atomic.Uint64) {
	d.count++
	if d.count == 1 {
		d.firstNs = now
		d.pending.Store(true)
	}
	d.lastNs = now
	switch {
	case len(d.buf) >= d.limit:
		a.observeFlushLocked(dst, d, now, true)
		return d.takeLocked(), &a.stats.sizeFl
	case d.count >= a.cfg.MaxQueued:
		a.observeFlushLocked(dst, d, now, true)
		return d.takeLocked(), &a.stats.capFl
	}
	return nil, nil
}

// takeLocked detaches the destination's buffer as a sendable message.
// Caller holds d.mu.
func (d *aggDest) takeLocked() *serialization.Message {
	buf := d.buf
	d.buf = nil
	d.count = 0
	d.pending.Store(false)
	return &serialization.Message{
		NonZeroCopy: buf,
		OnSent:      func() { wire.PutBuf(buf) },
	}
}

// flushDest sends dst's buffered bundle, if any, crediting counter.
func (a *Aggregator) flushDest(dst int, counter *atomic.Uint64) {
	d := a.dests[dst]
	if !d.pending.Load() {
		return
	}
	d.mu.Lock()
	var out *serialization.Message
	if d.count > 0 {
		out = d.takeLocked()
		d.lastNs = a.nowNs()
	}
	d.mu.Unlock()
	if out != nil {
		counter.Add(1)
		a.sendBundle(dst, out)
	}
}

func (a *Aggregator) sendBundle(dst int, out *serialization.Message) {
	a.stats.bundles.Add(1)
	a.inner.Send(dst, out)
}

// FlushStale flushes every destination whose oldest buffered message has
// aged past FlushDelay. Driven from BackgroundWork and, in lci pin mode,
// from the dedicated progress thread. Reports whether anything flushed.
func (a *Aggregator) FlushStale() bool {
	now := a.nowNs()
	did := false
	if t := a.tuner; t != nil && t.Tick(now) {
		// The flush sweep doubles as the controllers' clock: it runs from
		// background work and the dedicated progress thread, exactly the
		// cadence the rate-gated control pass wants.
		did = true
	}
	for dst, d := range a.dests {
		if !d.pending.Load() {
			continue
		}
		_, flushDelayNs, _, _ := a.knobs(dst)
		d.mu.Lock()
		var out *serialization.Message
		if d.count > 0 && now-d.firstNs >= flushDelayNs {
			a.observeFlushLocked(dst, d, now, false)
			out = d.takeLocked()
			d.lastNs = now
		}
		d.mu.Unlock()
		if out != nil {
			a.stats.ageFl.Add(1)
			a.sendBundle(dst, out)
			did = true
		}
	}
	return did
}

// BackgroundWork ages out stale buffers and runs the inner parcelport's
// background work.
func (a *Aggregator) BackgroundWork(workerID int) bool {
	did := a.FlushStale()
	if a.inner.BackgroundWork(workerID) {
		did = true
	}
	return did
}

// onDeliver unbundles received bundles into their sub-messages; everything
// else is delivered as-is.
func (a *Aggregator) onDeliver(m *serialization.Message) {
	if len(m.ZeroCopy) != 0 || !wire.IsBundle(m.NonZeroCopy) {
		a.deliver(m)
		return
	}
	// A malformed bundle stops at the corruption point: frames before it
	// deliver, the rest drop (same policy as a corrupted plain message).
	// One Message struct serves every frame: delivery decodes synchronously
	// and retains only the underlying bytes, never the struct. Every frame
	// aliases the bundle buffer, so each sub-message shares the bundle's
	// owner: one reference per frame, plus releasing the arrival reference
	// once all frames are handed off.
	owner := m.Owner
	var sub serialization.Message
	_ = wire.ForEachFrame(m.NonZeroCopy, func(frame []byte) error {
		a.stats.unbundle.Add(1)
		if owner != nil {
			owner.Retain()
		}
		sub = serialization.Message{NonZeroCopy: frame, Owner: owner}
		a.deliver(&sub)
		return nil
	})
	if owner != nil {
		owner.Release()
	}
}
