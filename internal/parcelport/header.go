package parcelport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hpxgo/internal/serialization"
)

// The header message (§3.1/§3.2.1) is the protocol message a parcelport
// generates per HPX message. It carries the tag for the follow-up messages,
// the size of the non-zero-copy chunk, and the existence and size of the
// transmission chunk — and it piggybacks those chunks when they fit under
// the maximum header size (the zero-copy serialization threshold).

// headerFixedSize is the size of the fixed header fields.
const headerFixedSize = 4 + 8 + 8 + 4 + 1

const (
	flagPiggyNZC   = 1 << 0
	flagPiggyTrans = 1 << 1
)

// Header is a decoded header message.
type Header struct {
	BaseTag   uint32 // tag of the first follow-up message
	NZCSize   uint64 // size of the non-zero-copy chunk
	TransSize uint64 // size of the transmission chunk (0 = none)
	NumZC     uint32 // number of zero-copy chunks
	NZC       []byte // piggybacked non-zero-copy chunk, or nil
	Trans     []byte // piggybacked transmission chunk, or nil
}

// PiggyNZC reports whether the non-zero-copy chunk rode the header.
func (h *Header) PiggyNZC() bool { return h.NZC != nil }

// PiggyTrans reports whether the transmission chunk rode the header (or was
// absent entirely).
func (h *Header) PiggyTrans() bool { return h.Trans != nil || h.TransSize == 0 }

// PlanHeader decides which chunks of a message piggyback on its header and
// returns the resulting header size. Piggybacking is greedy — transmission
// chunk first, then the non-zero-copy chunk — subject to maxSize.
// allowPiggyTrans=false reproduces the original MPI parcelport (§3.1), which
// could only piggyback the non-zero-copy chunk.
func PlanHeader(nzcLen, transLen, maxSize int, allowPiggyTrans bool) (size int, piggyNZC, piggyTrans bool) {
	size = headerFixedSize
	if allowPiggyTrans && transLen > 0 && size+transLen <= maxSize {
		piggyTrans = true
		size += transLen
	}
	if size+nzcLen <= maxSize {
		piggyNZC = true
		size += nzcLen
	}
	return size, piggyNZC, piggyTrans
}

// EncodeHeader assembles a header message for m into buf and returns the
// number of bytes written plus which chunks were piggybacked (per
// PlanHeader). buf must hold the planned header size; maxSize must be at
// least headerFixedSize.
func EncodeHeader(buf []byte, baseTag uint32, m *serialization.Message, maxSize int, allowPiggyTrans bool) (n int, piggyNZC, piggyTrans bool, err error) {
	if maxSize < headerFixedSize {
		return 0, false, false, fmt.Errorf("parcelport: header max size %d below fixed size %d", maxSize, headerFixedSize)
	}
	var need int
	need, piggyNZC, piggyTrans = PlanHeader(len(m.NonZeroCopy), len(m.Transmission), maxSize, allowPiggyTrans)
	if len(buf) < need {
		return 0, false, false, fmt.Errorf("parcelport: header buffer %d smaller than planned size %d", len(buf), need)
	}
	var flags byte
	if piggyTrans {
		flags |= flagPiggyTrans
	}
	if piggyNZC {
		flags |= flagPiggyNZC
	}
	binary.LittleEndian.PutUint32(buf[0:], baseTag)
	binary.LittleEndian.PutUint64(buf[4:], uint64(len(m.NonZeroCopy)))
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(m.Transmission)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(m.ZeroCopy)))
	buf[24] = flags
	off := headerFixedSize
	if flags&flagPiggyTrans != 0 {
		off += copy(buf[off:], m.Transmission)
	}
	if flags&flagPiggyNZC != 0 {
		off += copy(buf[off:], m.NonZeroCopy)
	}
	return off, piggyNZC, piggyTrans, nil
}

// ErrHeader reports a malformed header message.
var ErrHeader = errors.New("parcelport: malformed header message")

// DecodeHeader parses a header message. Piggybacked chunks alias data.
func DecodeHeader(data []byte) (Header, error) {
	var h Header
	if len(data) < headerFixedSize {
		return h, fmt.Errorf("%w: %d bytes", ErrHeader, len(data))
	}
	h.BaseTag = binary.LittleEndian.Uint32(data[0:])
	h.NZCSize = binary.LittleEndian.Uint64(data[4:])
	h.TransSize = binary.LittleEndian.Uint64(data[12:])
	h.NumZC = binary.LittleEndian.Uint32(data[20:])
	flags := data[24]
	off := uint64(headerFixedSize)
	// Subtraction-form bounds checks: off <= len(data) always holds, so
	// `size > len-off` cannot overflow the way `off+size > len` can when a
	// corrupt header carries a size near MaxUint64.
	if flags&flagPiggyTrans != 0 {
		if h.TransSize > uint64(len(data))-off {
			return h, fmt.Errorf("%w: truncated piggybacked transmission chunk", ErrHeader)
		}
		h.Trans = data[off : off+h.TransSize]
		off += h.TransSize
	}
	if flags&flagPiggyNZC != 0 {
		if h.NZCSize > uint64(len(data))-off {
			return h, fmt.Errorf("%w: truncated piggybacked non-zero-copy chunk", ErrHeader)
		}
		h.NZC = data[off : off+h.NZCSize]
	}
	return h, nil
}
