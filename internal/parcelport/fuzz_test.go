package parcelport

import (
	"testing"

	"hpxgo/internal/serialization"
)

// FuzzDecodeHeader feeds arbitrary bytes to the header decoder: it must
// never panic, and valid headers must round-trip.
func FuzzDecodeHeader(f *testing.F) {
	m := &serialization.Message{
		NonZeroCopy:  []byte("nzc-bytes"),
		Transmission: []byte("tr"),
		ZeroCopy:     [][]byte{make([]byte, 9000)},
	}
	buf := make([]byte, 512)
	n, _, _, err := EncodeHeader(buf, 7, m, 512, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf[:n])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil {
			return
		}
		if h.PiggyNZC() && uint64(len(h.NZC)) != h.NZCSize {
			t.Fatal("piggybacked nzc length disagrees with header field")
		}
		if h.Trans != nil && uint64(len(h.Trans)) != h.TransSize {
			t.Fatal("piggybacked trans length disagrees with header field")
		}
	})
}
