package parcelport

import (
	"bytes"
	"testing"

	"hpxgo/internal/serialization"
)

// FuzzDecodeHeader feeds arbitrary bytes to the header decoder: it must
// never panic, and valid headers must round-trip.
func FuzzDecodeHeader(f *testing.F) {
	m := &serialization.Message{
		NonZeroCopy:  []byte("nzc-bytes"),
		Transmission: []byte("tr"),
		ZeroCopy:     [][]byte{make([]byte, 9000)},
	}
	buf := make([]byte, 512)
	n, _, _, err := EncodeHeader(buf, 7, m, 512, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf[:n])
	f.Add([]byte{})

	// Corrupted-wire seeds: the fabric's fault injector flips bits and
	// truncates in flight; the decoder must reject (or round-trip) every
	// mutation without panicking.
	for _, bit := range []int{0, 7, 31, 8 * (n / 2), 8*n - 1} {
		flipped := append([]byte(nil), buf[:n]...)
		flipped[bit/8] ^= 1 << (bit % 8)
		f.Add(flipped)
	}
	for _, cut := range []int{1, n / 2, n - 1} {
		f.Add(append([]byte(nil), buf[:cut]...))
	}
	// Size fields maxed out: length claims far beyond the data.
	maxed := append([]byte(nil), buf[:n]...)
	for i := 4; i < n && i < 28; i++ {
		maxed[i] = 0xFF
	}
	f.Add(maxed)
	// All zeros and all ones at the fixed header size.
	f.Add(make([]byte, n))
	f.Add(bytes.Repeat([]byte{0xFF}, n))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeader(data)
		if err != nil {
			return
		}
		if h.PiggyNZC() && uint64(len(h.NZC)) != h.NZCSize {
			t.Fatal("piggybacked nzc length disagrees with header field")
		}
		if h.Trans != nil && uint64(len(h.Trans)) != h.TransSize {
			t.Fatal("piggybacked trans length disagrees with header field")
		}
	})
}
