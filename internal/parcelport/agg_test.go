package parcelport

import (
	"sync"
	"testing"
	"time"

	"hpxgo/internal/serialization"
	"hpxgo/internal/wire"
)

// fakePP records sends and loops them back to its deliver callback on
// demand; the minimal inner Parcelport for aggregation tests.
type fakePP struct {
	mu      sync.Mutex
	sent    []fakeSend
	deliver DeliverFunc
	bg      int
}

type fakeSend struct {
	dst int
	m   *serialization.Message
}

func (f *fakePP) Name() string              { return "fake" }
func (f *fakePP) Start(d DeliverFunc) error { f.deliver = d; return nil }
func (f *fakePP) Stop()                     {}
func (f *fakePP) BackgroundWork(int) bool   { f.mu.Lock(); f.bg++; f.mu.Unlock(); return false }
func (f *fakePP) Send(dst int, m *serialization.Message) {
	f.mu.Lock()
	f.sent = append(f.sent, fakeSend{dst: dst, m: m})
	f.mu.Unlock()
	m.Done()
}

func (f *fakePP) sends() []fakeSend {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]fakeSend(nil), f.sent...)
}

// loopback replays every recorded send into the deliver callback, as if the
// wire echoed it to the peer.
func (f *fakePP) loopback() {
	for _, s := range f.sends() {
		f.deliver(&serialization.Message{
			NonZeroCopy:  s.m.NonZeroCopy,
			Transmission: s.m.Transmission,
			ZeroCopy:     s.m.ZeroCopy,
		})
	}
}

// warmAgg returns an aggregator whose destinations never read as cold, so
// tests exercise the buffering path deterministically.
func warmAgg(inner Parcelport, dests int, cfg AggConfig) *Aggregator {
	if cfg.ColdIdle == 0 {
		cfg.ColdIdle = time.Hour
	}
	if cfg.FlushDelay == 0 {
		cfg.FlushDelay = time.Hour
	}
	return NewAggregator(inner, dests, cfg)
}

func msgOf(payload []byte) *serialization.Message {
	return &serialization.Message{NonZeroCopy: append([]byte(nil), payload...)}
}

func TestAggregatorBundlesSmallMessages(t *testing.T) {
	inner := &fakePP{}
	a := warmAgg(inner, 2, AggConfig{FlushBytes: 1 << 20})
	var delivered [][]byte
	if err := a.Start(func(m *serialization.Message) {
		delivered = append(delivered, append([]byte(nil), m.NonZeroCopy...))
	}); err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 5; i++ {
		m := msgOf([]byte{byte(i), 0xee})
		m.OnSent = func() { done++ }
		a.Send(1, m)
	}
	if done != 5 {
		t.Fatalf("Done fired for %d/5 sub-messages at copy time", done)
	}
	if got := len(inner.sent); got != 0 {
		t.Fatalf("%d sends reached the inner parcelport before any flush", got)
	}
	if q := a.QueuedSubMessages(1); q != 5 {
		t.Fatalf("QueuedSubMessages = %d, want 5", q)
	}
	a.flushDest(1, &a.stats.ageFl)
	sends := inner.sends()
	if len(sends) != 1 {
		t.Fatalf("flush produced %d transfers, want 1 bundle", len(sends))
	}
	if !wire.IsBundle(sends[0].m.NonZeroCopy) {
		t.Fatal("flushed transfer is not a bundle")
	}
	inner.loopback()
	if len(delivered) != 5 {
		t.Fatalf("unbundled %d sub-messages, want 5", len(delivered))
	}
	for i, d := range delivered {
		if len(d) != 2 || d[0] != byte(i) {
			t.Fatalf("sub-message %d = %v", i, d)
		}
	}
	st := a.Stats()
	if st.BundledMessages != 5 || st.Bundles != 1 || st.Unbundled != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAggregatorSizeFlush(t *testing.T) {
	inner := &fakePP{}
	a := warmAgg(inner, 1, AggConfig{FlushBytes: 64, MaxSub: 32})
	if err := a.Start(func(*serialization.Message) {}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 20)
	for i := 0; i < 10; i++ {
		a.Send(0, msgOf(payload))
	}
	if len(inner.sends()) == 0 {
		t.Fatal("size threshold never flushed")
	}
	if a.Stats().SizeFlushes == 0 {
		t.Fatal("SizeFlushes counter never bumped")
	}
	for _, s := range inner.sends() {
		if len(s.m.NonZeroCopy) < 64 {
			t.Fatalf("size-flushed bundle only %dB", len(s.m.NonZeroCopy))
		}
	}
}

func TestAggregatorAgeFlushViaBackgroundWork(t *testing.T) {
	inner := &fakePP{}
	a := NewAggregator(inner, 1, AggConfig{
		FlushBytes: 1 << 20,
		FlushDelay: time.Nanosecond,
		ColdIdle:   time.Hour,
	})
	if err := a.Start(func(*serialization.Message) {}); err != nil {
		t.Fatal(err)
	}
	a.Send(0, msgOf([]byte("lonely")))
	if len(inner.sends()) != 0 {
		t.Fatal("message flushed before its age deadline")
	}
	time.Sleep(time.Millisecond)
	if !a.BackgroundWork(0) {
		t.Fatal("BackgroundWork reported no work despite a stale buffer")
	}
	if len(inner.sends()) != 1 {
		t.Fatalf("age flush produced %d transfers", len(inner.sends()))
	}
	if a.Stats().AgeFlushes == 0 {
		t.Fatal("AgeFlushes counter never bumped")
	}
	if inner.bg == 0 {
		t.Fatal("inner BackgroundWork not chained")
	}
}

func TestAggregatorCapBackpressure(t *testing.T) {
	inner := &fakePP{}
	a := warmAgg(inner, 1, AggConfig{FlushBytes: 1 << 20, MaxQueued: 3})
	if err := a.Start(func(*serialization.Message) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		a.Send(0, msgOf([]byte{byte(i)}))
	}
	if got := a.Stats().CapFlushes; got != 2 {
		t.Fatalf("CapFlushes = %d, want 2 (7 sends, cap 3)", got)
	}
	if got := len(inner.sends()); got != 2 {
		t.Fatalf("%d transfers, want 2 capped bundles", got)
	}
	if q := a.QueuedSubMessages(0); q != 1 {
		t.Fatalf("%d sub-messages left buffered, want 1", q)
	}
}

func TestAggregatorColdPassthrough(t *testing.T) {
	inner := &fakePP{}
	a := NewAggregator(inner, 1, AggConfig{
		FlushBytes: 1 << 20,
		FlushDelay: time.Hour,
		ColdIdle:   time.Nanosecond,
	})
	if err := a.Start(func(*serialization.Message) {}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	a.Send(0, msgOf([]byte("cold")))
	sends := inner.sends()
	if len(sends) != 1 || wire.IsBundle(sends[0].m.NonZeroCopy) {
		t.Fatalf("cold send not passed straight through: %d sends", len(sends))
	}
	st := a.Stats()
	if st.ColdSends != 1 || st.DirectSends != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAggregatorLargeMessageFlushesFirst(t *testing.T) {
	inner := &fakePP{}
	a := warmAgg(inner, 1, AggConfig{FlushBytes: 1 << 20, MaxSub: 16})
	if err := a.Start(func(*serialization.Message) {}); err != nil {
		t.Fatal(err)
	}
	a.Send(0, msgOf([]byte("small")))
	big := msgOf(make([]byte, 64)) // over MaxSub
	a.Send(0, big)
	sends := inner.sends()
	if len(sends) != 2 {
		t.Fatalf("%d transfers, want buffered bundle then passthrough", len(sends))
	}
	if !wire.IsBundle(sends[0].m.NonZeroCopy) {
		t.Fatal("buffered bundle did not flush ahead of the big message")
	}
	if wire.IsBundle(sends[1].m.NonZeroCopy) || len(sends[1].m.NonZeroCopy) != 64 {
		t.Fatal("big message did not pass through untouched")
	}
	if a.Stats().OrderFlushes != 1 {
		t.Fatalf("OrderFlushes = %d, want 1", a.Stats().OrderFlushes)
	}
	// Zero-copy messages must also bypass bundling.
	zc := &serialization.Message{
		NonZeroCopy: []byte("hdr"),
		ZeroCopy:    [][]byte{make([]byte, 8)},
	}
	a.Send(0, zc)
	if s := inner.sends(); len(s[len(s)-1].m.ZeroCopy) != 1 {
		t.Fatal("zero-copy message mangled by the aggregator")
	}
}

func TestAggregatorStopFlushes(t *testing.T) {
	inner := &fakePP{}
	a := warmAgg(inner, 3, AggConfig{FlushBytes: 1 << 20})
	if err := a.Start(func(*serialization.Message) {}); err != nil {
		t.Fatal(err)
	}
	a.Send(0, msgOf([]byte("a")))
	a.Send(2, msgOf([]byte("b")))
	a.Stop()
	if got := len(inner.sends()); got != 2 {
		t.Fatalf("Stop flushed %d buffers, want 2", got)
	}
	// Shutdown drains must credit the dedicated StopFlushes counter, not
	// AgeFlushes: these buffers never reached their FlushDelay.
	st := a.Stats()
	if st.StopFlushes != 2 {
		t.Fatalf("StopFlushes = %d, want 2", st.StopFlushes)
	}
	if st.AgeFlushes != 0 {
		t.Fatalf("AgeFlushes = %d, want 0 (shutdown drains polluted the age counter)", st.AgeFlushes)
	}
}

func TestAggregatorName(t *testing.T) {
	a := NewAggregator(&fakePP{}, 1, AggConfig{})
	if a.Name() != "fake_agg" {
		t.Fatalf("Name = %q", a.Name())
	}
	if a.Inner().Name() != "fake" {
		t.Fatalf("Inner().Name = %q", a.Inner().Name())
	}
}

// TestAggregatorSendParcelDirectEncode covers the scratch-free fast path:
// parcels encoded straight into the bundle buffer must interleave with
// pre-encoded Send messages in the same bundle and decode identically on
// the receive side.
func TestAggregatorSendParcelDirectEncode(t *testing.T) {
	inner := &fakePP{}
	a := warmAgg(inner, 2, AggConfig{FlushBytes: 1 << 20})
	var delivered []*serialization.Parcel
	if err := a.Start(func(m *serialization.Message) {
		ps, err := serialization.Decode(m)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		delivered = append(delivered, ps...)
	}); err != nil {
		t.Fatal(err)
	}

	if !a.SendParcel(1, serialization.Parcel{
		Source: 0, Dest: 1, Action: 7, Args: [][]byte{[]byte("alpha")},
	}) {
		t.Fatal("SendParcel rejected a small parcel for a warm destination")
	}
	// A pre-encoded message rides the same bundle.
	em := serialization.EncodeOne(&serialization.Parcel{
		Source: 0, Dest: 1, Action: 8, Args: [][]byte{[]byte("beta")},
	}, 0)
	em.RecycleOnSent = true
	a.Send(1, em)
	if !a.SendParcel(1, serialization.Parcel{
		Source: 0, Dest: 1, Action: 9, ContID: 42, Args: [][]byte{nil, []byte("gamma")},
	}) {
		t.Fatal("SendParcel rejected the third parcel")
	}

	if q := a.QueuedSubMessages(1); q != 3 {
		t.Fatalf("QueuedSubMessages = %d, want 3", q)
	}
	a.flushDest(1, &a.stats.ageFl)
	sends := inner.sends()
	if len(sends) != 1 || !wire.IsBundle(sends[0].m.NonZeroCopy) {
		t.Fatalf("flush produced %d transfers (bundle=%v), want 1 bundle",
			len(sends), len(sends) == 1 && wire.IsBundle(sends[0].m.NonZeroCopy))
	}
	inner.loopback()
	if len(delivered) != 3 {
		t.Fatalf("decoded %d parcels, want 3", len(delivered))
	}
	if p := delivered[0]; p.Action != 7 || string(p.Args[0]) != "alpha" {
		t.Fatalf("parcel 0 = %+v", p)
	}
	if p := delivered[1]; p.Action != 8 || string(p.Args[0]) != "beta" {
		t.Fatalf("parcel 1 = %+v", p)
	}
	if p := delivered[2]; p.Action != 9 || p.ContID != 42 ||
		len(p.Args) != 2 || len(p.Args[0]) != 0 || string(p.Args[1]) != "gamma" {
		t.Fatalf("parcel 2 = %+v", p)
	}
	if st := a.Stats(); st.BundledMessages != 3 || st.Bundles != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAggregatorSendParcelFallbacks pins the cases SendParcel must refuse,
// leaving them to the ordinary encode-then-Send path.
func TestAggregatorSendParcelFallbacks(t *testing.T) {
	inner := &fakePP{}
	const coldIdle = 50 * time.Millisecond
	a := NewAggregator(inner, 2, AggConfig{
		FlushBytes: 1 << 20, MaxSub: 64,
		ColdIdle: coldIdle, FlushDelay: time.Hour,
	})
	if err := a.Start(func(*serialization.Message) {}); err != nil {
		t.Fatal(err)
	}
	small := serialization.Parcel{Dest: 1, Action: 1, Args: [][]byte{[]byte("x")}}
	if a.SendParcel(5, small) {
		t.Fatal("SendParcel accepted an out-of-range destination")
	}
	big := serialization.Parcel{Dest: 1, Action: 1, Args: [][]byte{make([]byte, 128)}}
	if a.SendParcel(1, big) {
		t.Fatal("SendParcel accepted a parcel above MaxSub")
	}
	time.Sleep(2 * coldIdle) // let the destination go cold
	if a.SendParcel(1, small) {
		t.Fatal("SendParcel accepted a cold destination")
	}
	// Warm the destination through Send's cold-direct path, then the very
	// next parcel may bundle.
	a.Send(1, msgOf([]byte("warmup")))
	if !a.SendParcel(1, small) {
		t.Fatal("SendParcel rejected a warm destination")
	}
	if st := a.Stats(); st.BundledMessages != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
