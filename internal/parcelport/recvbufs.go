package parcelport

import (
	"sync"
	"sync/atomic"

	"hpxgo/internal/serialization"
	"hpxgo/internal/wire"
)

// RecvBufs is the pooled, refcounted owner of a received message's buffers
// (serialization.RecvOwner). A transport draws one per arriving message,
// tracks the wire-pool buffers it stages chunks into (GetBuf/Clone), and
// optionally chains a transport-level owner such as a pooled lci packet
// (SetInner). The embedded Msg gives the transport a reusable
// serialization.Message to deliver, so the per-arrival &Message{} allocation
// disappears too. The final Release returns every tracked buffer to the wire
// pool, releases the inner owner, and recycles the RecvBufs itself.
type RecvBufs struct {
	refs  atomic.Int32
	bufs  [][]byte
	inner serialization.RecvOwner

	// Msg is the delivery message for transports' single-message fast path.
	// Valid until the final Release.
	Msg serialization.Message
}

var recvBufsPool = sync.Pool{New: func() any { return new(RecvBufs) }}

// GetRecvBufs returns a pooled owner holding one reference (the arrival
// reference the delivery chain releases when done).
func GetRecvBufs() *RecvBufs {
	o := recvBufsPool.Get().(*RecvBufs)
	o.refs.Store(1)
	return o
}

// SetInner chains a transport-level owner (e.g. the pooled fabric packet a
// header arrived in) to be released with the final Release.
func (o *RecvBufs) SetInner(inner serialization.RecvOwner) { o.inner = inner }

// GetBuf draws an n-byte buffer from the wire pool, owned by o: it returns
// to the pool on the final Release.
func (o *RecvBufs) GetBuf(n int) []byte {
	b := wire.GetBuf(n)
	o.bufs = append(o.bufs, b)
	return b
}

// Clone copies b into an owned pooled buffer (nil in, nil out).
func (o *RecvBufs) Clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	c := o.GetBuf(len(b))
	copy(c, b)
	return c
}

// Retain adds a reference; each consumer that keeps the message's buffers
// alive past its callback must pair it with Release.
func (o *RecvBufs) Retain() { o.refs.Add(1) }

// Release drops one reference; the final release returns the tracked
// buffers to the wire pool, releases the inner owner and recycles o.
// Releasing more times than GetRecvBufs+Retain granted panics.
func (o *RecvBufs) Release() {
	n := o.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("parcelport: RecvBufs double-release")
	}
	for i, b := range o.bufs {
		wire.PutBuf(b)
		o.bufs[i] = nil
	}
	o.bufs = o.bufs[:0]
	if o.inner != nil {
		o.inner.Release()
		o.inner = nil
	}
	o.Msg = serialization.Message{}
	recvBufsPool.Put(o)
}
