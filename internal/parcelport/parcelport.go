// Package parcelport defines the HPX parcelport abstraction: the layer that
// transfers serialized HPX messages between localities. It hosts what both
// concrete parcelports (internal/parcelport/mpipp and
// internal/parcelport/lcipp) share — the interface, the Table 1
// configuration grammar, the header-message codec with piggybacking, and the
// atomic tag allocator described in §3 of the paper.
package parcelport

import (
	"fmt"
	"sync"

	"hpxgo/internal/serialization"
)

// DeliverFunc receives a fully reassembled HPX message at the target
// locality. The upper layer decodes it into parcels and spawns their action
// tasks.
type DeliverFunc func(m *serialization.Message)

// Parcelport transfers serialized HPX messages. Implementations must be safe
// for concurrent use: in HPX every worker thread may initiate sends and call
// BackgroundWork when idle.
type Parcelport interface {
	// Name returns the Table 1 configuration string (e.g. "lci_psr_cq_pin_i").
	Name() string
	// Start installs the delivery callback and launches any dedicated
	// threads. Must be called before Send.
	Start(deliver DeliverFunc) error
	// Stop shuts the parcelport down and joins its threads.
	Stop()
	// Send transfers an HPX message to the destination locality. It never
	// blocks on the network; transfers progress via BackgroundWork (and the
	// progress thread, if any). m.Done is called when the transfer completes
	// locally.
	Send(dst int, m *serialization.Message)
	// BackgroundWork performs one bounded slice of network progress on
	// behalf of an idle worker thread. Returns true if any work was done.
	BackgroundWork(workerID int) bool
}

// MaxPendingConnections is HPX's default cap on simultaneously pending
// connections (per destination), 8192 in the paper.
const MaxPendingConnections = 8192

// TagAllocator hands out message tags, wrapping below an upper bound. The
// paper's allocator (§3.1 "Tag management") is a bare atomic counter whose
// wraparound safety *assumes* any connection with the same tag completed
// before the value comes around again — an assumption that silently breaks
// under small tag spaces, slow receivers, or lossy fabrics that stretch
// connection lifetimes. This allocator tracks in-flight tags instead: the
// cursor still advances monotonically (so reuse distance stays maximal), but
// allocation skips tags whose connection has not released them yet, and tag
// space exhaustion fails loudly rather than matching two live connections to
// one tag.
type TagAllocator struct {
	mu     sync.Mutex
	bound  uint64   // tags are in [1, bound); 0 is reserved for header messages
	inUse  []uint64 // bitset over bound-1 slots; slot s <-> tag s+1
	free   uint64   // free slot count
	cursor uint64   // next slot the scan starts from
}

// NewTagAllocator creates an allocator with tags in [1, bound).
func NewTagAllocator(bound uint32) *TagAllocator {
	if bound < 2 {
		bound = 2
	}
	slots := uint64(bound) - 1
	return &TagAllocator{
		bound: uint64(bound),
		inUse: make([]uint64, (slots+63)/64),
		free:  slots,
	}
}

func (a *TagAllocator) isSet(slot uint64) bool { return a.inUse[slot/64]&(1<<(slot%64)) != 0 }
func (a *TagAllocator) set(slot uint64)        { a.inUse[slot/64] |= 1 << (slot % 64) }
func (a *TagAllocator) clear(slot uint64)      { a.inUse[slot/64] &^= 1 << (slot % 64) }

// Next returns one fresh tag, skipping tags still held by live connections.
func (a *TagAllocator) Next() uint32 { return a.Block(1) }

// Block reserves n consecutive tags (modulo wraparound) and returns the
// first. Tag k of the block is Nth(first, k). The block must be released
// with Release(first, n) once the owning connection completes. Block panics
// when no run of n free tags exists: with MaxPendingConnections bounding
// concurrent connections and realistic tag bounds this means tags leaked.
func (a *TagAllocator) Block(n int) uint32 {
	if n <= 0 {
		n = 1
	}
	slots := a.bound - 1
	a.mu.Lock()
	defer a.mu.Unlock()
	if uint64(n) <= a.free && uint64(n) <= slots {
		s, advanced := a.cursor, uint64(0)
		for advanced < slots {
			run := uint64(0)
			for run < uint64(n) && !a.isSet((s+run)%slots) {
				run++
			}
			if run == uint64(n) {
				for k := uint64(0); k < uint64(n); k++ {
					a.set((s + k) % slots)
				}
				a.free -= uint64(n)
				a.cursor = (s + uint64(n)) % slots
				return uint32(s) + 1
			}
			// Skip just past the in-flight tag that blocked the run.
			advanced += run + 1
			s = (s + run + 1) % slots
		}
	}
	panic(fmt.Sprintf(
		"parcelport: tag space exhausted (%d requested, %d free of %d): connections leaked tags or the tag bound is too small",
		n, a.free, slots))
}

// Release returns the n-tag block starting at first to the allocator. Safe
// to call once per Block; releasing an already-free tag is a harmless no-op
// (the original-mode parcelports never release — their receiver-driven tag
// provider recycles tags on its own).
func (a *TagAllocator) Release(first uint32, n int) {
	if n <= 0 {
		n = 1
	}
	slots := a.bound - 1
	a.mu.Lock()
	for k := 0; k < n; k++ {
		slot := (uint64(first) - 1 + uint64(k)) % slots
		if a.isSet(slot) {
			a.clear(slot)
			a.free++
		}
	}
	a.mu.Unlock()
}

// InFlight reports the number of currently reserved tags (tests, stats).
func (a *TagAllocator) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.bound - 1 - a.free)
}

// Nth returns the k-th tag of a block starting at first, applying the same
// wraparound rule as Block. Receivers recompute block members from the
// header's base tag with this, so the arithmetic is part of the wire
// contract and must stay in sync with Block.
func (a *TagAllocator) Nth(first uint32, k int) uint32 {
	return uint32((uint64(first-1)+uint64(k))%(a.bound-1)) + 1
}
