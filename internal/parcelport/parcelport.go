// Package parcelport defines the HPX parcelport abstraction: the layer that
// transfers serialized HPX messages between localities. It hosts what both
// concrete parcelports (internal/parcelport/mpipp and
// internal/parcelport/lcipp) share — the interface, the Table 1
// configuration grammar, the header-message codec with piggybacking, and the
// atomic tag allocator described in §3 of the paper.
package parcelport

import (
	"sync/atomic"

	"hpxgo/internal/serialization"
)

// DeliverFunc receives a fully reassembled HPX message at the target
// locality. The upper layer decodes it into parcels and spawns their action
// tasks.
type DeliverFunc func(m *serialization.Message)

// Parcelport transfers serialized HPX messages. Implementations must be safe
// for concurrent use: in HPX every worker thread may initiate sends and call
// BackgroundWork when idle.
type Parcelport interface {
	// Name returns the Table 1 configuration string (e.g. "lci_psr_cq_pin_i").
	Name() string
	// Start installs the delivery callback and launches any dedicated
	// threads. Must be called before Send.
	Start(deliver DeliverFunc) error
	// Stop shuts the parcelport down and joins its threads.
	Stop()
	// Send transfers an HPX message to the destination locality. It never
	// blocks on the network; transfers progress via BackgroundWork (and the
	// progress thread, if any). m.Done is called when the transfer completes
	// locally.
	Send(dst int, m *serialization.Message)
	// BackgroundWork performs one bounded slice of network progress on
	// behalf of an idle worker thread. Returns true if any work was done.
	BackgroundWork(workerID int) bool
}

// MaxPendingConnections is HPX's default cap on simultaneously pending
// connections (per destination), 8192 in the paper.
const MaxPendingConnections = 8192

// TagAllocator hands out message tags from a shared atomic counter, wrapping
// below an upper bound. As in the paper (§3.1 "Tag management"), wraparound
// safety relies on a connection with the same tag having completed before
// the value is reused; both parcelports share this assumption.
type TagAllocator struct {
	next  atomic.Uint64
	bound uint64 // tags are in [1, bound); 0 is reserved for header messages
}

// NewTagAllocator creates an allocator with tags in [1, bound).
func NewTagAllocator(bound uint32) *TagAllocator {
	if bound < 2 {
		bound = 2
	}
	return &TagAllocator{bound: uint64(bound)}
}

// Next returns one fresh tag.
func (a *TagAllocator) Next() uint32 { return a.Block(1) }

// Block reserves n consecutive tags (modulo wraparound) and returns the
// first. Tag k of the block is Nth(first, k).
func (a *TagAllocator) Block(n int) uint32 {
	start := a.next.Add(uint64(n)) - uint64(n)
	return uint32(start%(a.bound-1)) + 1
}

// Nth returns the k-th tag of a block starting at first, applying the same
// wraparound rule as Block.
func (a *TagAllocator) Nth(first uint32, k int) uint32 {
	return uint32((uint64(first-1)+uint64(k))%(a.bound-1)) + 1
}
