package tcppp

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpxgo/internal/serialization"
)

// rig wires a TCP parcelport group with recording delivery callbacks.
type rig struct {
	g *Group

	mu       sync.Mutex
	received [][]*serialization.Message
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	g, err := NewGroup(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{g: g, received: make([][]*serialization.Message, n)}
	for i := 0; i < n; i++ {
		i := i
		if err := g.Parcelport(i).Start(func(m *serialization.Message) {
			r.mu.Lock()
			r.received[i] = append(r.received[i], m)
			r.mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for i := 0; i < n; i++ {
			g.Parcelport(i).Stop()
		}
	})
	return r
}

func (r *rig) waitCount(t *testing.T, loc, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		r.mu.Lock()
		n := len(r.received[loc])
		r.mu.Unlock()
		if n >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("locality %d received %d messages, want %d", loc, len(r.received[loc]), want)
}

func msgWith(argSizes ...int) (*serialization.Message, *serialization.Parcel) {
	p := &serialization.Parcel{Source: 0, Dest: 1, Action: 4}
	for i, sz := range argSizes {
		a := make([]byte, sz)
		for j := range a {
			a[j] = byte(i*7 + j)
		}
		p.Args = append(p.Args, a)
	}
	return serialization.Encode([]*serialization.Parcel{p}, 0), p
}

func checkRoundTrip(t *testing.T, m *serialization.Message, want *serialization.Parcel) {
	t.Helper()
	ps, err := serialization.Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || len(ps[0].Args) != len(want.Args) {
		t.Fatalf("decoded %d parcels", len(ps))
	}
	for i := range want.Args {
		if !bytes.Equal(ps[0].Args[i], want.Args[i]) {
			t.Fatalf("arg %d corrupted", i)
		}
	}
}

func TestGroupValidation(t *testing.T) {
	if _, err := NewGroup(0, Config{}); err == nil {
		t.Fatal("zero localities should fail")
	}
}

func TestSmallMessageRoundTrip(t *testing.T) {
	r := newRig(t, 2)
	m, p := msgWith(16)
	var sent atomic.Bool
	m.OnSent = func() { sent.Store(true) }
	r.g.Parcelport(0).Send(1, m)
	r.waitCount(t, 1, 1, 10*time.Second)
	checkRoundTrip(t, r.received[1][0], p)
	deadline := time.Now().Add(5 * time.Second)
	for !sent.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !sent.Load() {
		t.Fatal("OnSent never fired")
	}
}

func TestZeroCopyChunksRoundTrip(t *testing.T) {
	r := newRig(t, 2)
	m, p := msgWith(64, 9000, 40000)
	r.g.Parcelport(0).Send(1, m)
	r.waitCount(t, 1, 1, 10*time.Second)
	checkRoundTrip(t, r.received[1][0], p)
}

func TestOrderPreservedPerPair(t *testing.T) {
	// TCP is a byte stream: per-pair ordering is guaranteed.
	r := newRig(t, 2)
	const n = 100
	var parcels []*serialization.Parcel
	for i := 0; i < n; i++ {
		m, p := msgWith(8 + i)
		parcels = append(parcels, p)
		r.g.Parcelport(0).Send(1, m)
	}
	r.waitCount(t, 1, n, 20*time.Second)
	for i, m := range r.received[1] {
		checkRoundTrip(t, m, parcels[i])
	}
}

func TestAllToAll(t *testing.T) {
	const n = 4
	r := newRig(t, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			m, _ := msgWith(100 * (src + 1))
			r.g.Parcelport(src).Send(dst, m)
		}
	}
	for dst := 0; dst < n; dst++ {
		r.waitCount(t, dst, n-1, 20*time.Second)
	}
}

func TestStats(t *testing.T) {
	r := newRig(t, 2)
	m, _ := msgWith(500)
	r.g.Parcelport(0).Send(1, m)
	r.waitCount(t, 1, 1, 10*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for r.g.Parcelport(0).Stats().MessagesSent == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s0, s1 := r.g.Parcelport(0).Stats(), r.g.Parcelport(1).Stats()
	if s0.MessagesSent != 1 || s0.BytesSent == 0 {
		t.Fatalf("sender stats %+v", s0)
	}
	if s1.MessagesRecvd != 1 || s1.BytesRecvd != s0.BytesSent {
		t.Fatalf("receiver stats %+v vs %+v", s1, s0)
	}
}

func TestStartValidation(t *testing.T) {
	g, err := NewGroup(1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Parcelport(0).Stop()
	if err := g.Parcelport(0).Start(nil); err == nil {
		t.Fatal("nil deliver should fail")
	}
	if err := g.Parcelport(0).Start(func(*serialization.Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := g.Parcelport(0).Start(func(*serialization.Message) {}); err == nil {
		t.Fatal("double start should fail")
	}
}

func TestStopIdempotentAndSendAfterStop(t *testing.T) {
	r := newRig(t, 2)
	pp := r.g.Parcelport(0)
	pp.Stop()
	pp.Stop()
	m, _ := msgWith(8)
	pp.Send(1, m) // must not panic or block
	if pp.BackgroundWork(0) {
		t.Fatal("tcp parcelport claims background work")
	}
}

func TestInvalidDestinationDropped(t *testing.T) {
	r := newRig(t, 2)
	m, _ := msgWith(8)
	r.g.Parcelport(0).Send(9, m) // silently dropped, no panic
}
