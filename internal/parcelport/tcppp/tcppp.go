// Package tcppp implements the TCP parcelport — the other communication
// backend HPX shipped before this project ("Prior to this project, it had
// two communication backends (parcelports): TCP and MPI", §1). The paper
// does not evaluate it (it is far slower than both), but a complete
// reproduction of the stack includes it, and it doubles as a reference
// implementation over a real kernel transport.
//
// Unlike the MPI and LCI parcelports it does not ride the simulated fabric:
// localities talk over real loopback TCP connections, with one lazily
// dialled connection per (source, destination) pair, a writer goroutine per
// connection, and length-prefixed frames carrying the three HPX message
// chunk groups. Progress is made by the kernel and the connection
// goroutines, so BackgroundWork has nothing to poll.
package tcppp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"hpxgo/internal/parcelport"
	"hpxgo/internal/serialization"
)

// frameMagic guards against stream desynchronization.
const frameMagic uint32 = 0x48505854 // "HPXT"

// maxFrameChunk bounds any single chunk length (sanity check on decode).
const maxFrameChunk = 1 << 30

// Config tunes the TCP parcelport group.
type Config struct {
	// SendQueue is the per-destination outbound queue depth. Default 1024.
	SendQueue int
	// ListenAddr is the address to listen on. Default "127.0.0.1:0".
	ListenAddr string
}

func (c *Config) fillDefaults() {
	if c.SendQueue <= 0 {
		c.SendQueue = 1024
	}
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
}

// Group wires n localities over loopback TCP. All listeners are created
// eagerly so every parcelport knows every address.
type Group struct {
	cfg Config
	pps []*Parcelport
}

// NewGroup creates the group and its listeners.
func NewGroup(n int, cfg Config) (*Group, error) {
	cfg.fillDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("tcppp: need at least one locality")
	}
	g := &Group{cfg: cfg}
	g.pps = make([]*Parcelport, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			for j := 0; j < i; j++ {
				g.pps[j].ln.Close()
			}
			return nil, fmt.Errorf("tcppp: listen: %w", err)
		}
		g.pps[i] = &Parcelport{group: g, id: i, ln: ln, out: make(map[int]*outConn)}
	}
	return g, nil
}

// Parcelport returns locality i's parcelport.
func (g *Group) Parcelport(i int) *Parcelport { return g.pps[i] }

// Size returns the number of localities.
func (g *Group) Size() int { return len(g.pps) }

// Stats are cumulative parcelport counters.
type Stats struct {
	MessagesSent  uint64
	MessagesRecvd uint64
	BytesSent     uint64
	BytesRecvd    uint64
}

// Parcelport is the TCP parcelport of one locality.
type Parcelport struct {
	group   *Group
	id      int
	ln      net.Listener
	deliver parcelport.DeliverFunc

	outMu sync.Mutex
	out   map[int]*outConn

	inMu sync.Mutex
	in   []net.Conn

	wg      sync.WaitGroup
	started atomic.Bool
	stopped atomic.Bool

	sent, recvd           atomic.Uint64
	bytesSent, bytesRecvd atomic.Uint64
}

// outConn is one outbound connection with its writer goroutine.
type outConn struct {
	conn net.Conn
	q    chan *serialization.Message
}

// Name returns the configuration name (without the upper layer's "_i").
func (pp *Parcelport) Name() string { return "tcp" }

// Addr returns the listen address (tests).
func (pp *Parcelport) Addr() string { return pp.ln.Addr().String() }

// Stats returns a snapshot of the counters.
func (pp *Parcelport) Stats() Stats {
	return Stats{
		MessagesSent:  pp.sent.Load(),
		MessagesRecvd: pp.recvd.Load(),
		BytesSent:     pp.bytesSent.Load(),
		BytesRecvd:    pp.bytesRecvd.Load(),
	}
}

// Start installs the delivery callback and begins accepting connections.
func (pp *Parcelport) Start(deliver parcelport.DeliverFunc) error {
	if deliver == nil {
		return fmt.Errorf("tcppp: nil deliver callback")
	}
	if !pp.started.CompareAndSwap(false, true) {
		return fmt.Errorf("tcppp: already started")
	}
	pp.deliver = deliver
	pp.wg.Add(1)
	go pp.acceptLoop()
	return nil
}

// Stop closes the listener and every connection and joins the goroutines.
func (pp *Parcelport) Stop() {
	if !pp.stopped.CompareAndSwap(false, true) {
		return
	}
	pp.ln.Close()
	pp.outMu.Lock()
	conns := make([]*outConn, 0, len(pp.out))
	for _, oc := range pp.out {
		conns = append(conns, oc)
	}
	pp.out = make(map[int]*outConn)
	pp.outMu.Unlock()
	for _, oc := range conns {
		close(oc.q)
	}
	// Close inbound connections too: their read loops otherwise block until
	// the remote side shuts down, deadlocking the join below.
	pp.inMu.Lock()
	for _, c := range pp.in {
		c.Close()
	}
	pp.in = nil
	pp.inMu.Unlock()
	if pp.started.Load() {
		pp.wg.Wait()
	}
}

// Send frames the message onto the destination's connection queue.
func (pp *Parcelport) Send(dst int, m *serialization.Message) {
	if pp.stopped.Load() {
		return
	}
	oc, err := pp.connTo(dst)
	if err != nil {
		return // destination unreachable; message dropped like a dead TCP peer
	}
	defer func() {
		// The queue may close concurrently with Stop; a send on a closed
		// channel panics, which we absorb as "connection shut down".
		_ = recover()
	}()
	oc.q <- m
}

// BackgroundWork has nothing to do: the kernel and the connection
// goroutines make progress. It exists to satisfy the Parcelport contract.
func (pp *Parcelport) BackgroundWork(workerID int) bool { return false }

// connTo returns (dialling if needed) the outbound connection to dst.
func (pp *Parcelport) connTo(dst int) (*outConn, error) {
	if dst < 0 || dst >= len(pp.group.pps) {
		return nil, fmt.Errorf("tcppp: invalid destination %d", dst)
	}
	pp.outMu.Lock()
	defer pp.outMu.Unlock()
	if oc, ok := pp.out[dst]; ok {
		return oc, nil
	}
	conn, err := net.Dial("tcp", pp.group.pps[dst].Addr())
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	oc := &outConn{conn: conn, q: make(chan *serialization.Message, pp.group.cfg.SendQueue)}
	pp.out[dst] = oc
	pp.wg.Add(1)
	go pp.writeLoop(oc)
	return oc, nil
}

// writeLoop frames queued messages onto one connection.
func (pp *Parcelport) writeLoop(oc *outConn) {
	defer pp.wg.Done()
	defer oc.conn.Close()
	w := bufio.NewWriterSize(oc.conn, 64*1024)
	for m := range oc.q {
		if err := writeFrame(w, m); err != nil {
			m.Done()
			return
		}
		// Flush eagerly when no more messages are queued (latency), batch
		// otherwise (throughput) — the classic asio-style pattern.
		if len(oc.q) == 0 {
			if err := w.Flush(); err != nil {
				m.Done()
				return
			}
		}
		pp.sent.Add(1)
		pp.bytesSent.Add(uint64(m.TotalBytes()))
		m.Done()
	}
	w.Flush()
}

// acceptLoop accepts inbound connections until the listener closes.
func (pp *Parcelport) acceptLoop() {
	defer pp.wg.Done()
	for {
		conn, err := pp.ln.Accept()
		if err != nil {
			return
		}
		pp.inMu.Lock()
		if pp.stopped.Load() {
			pp.inMu.Unlock()
			conn.Close()
			return
		}
		pp.in = append(pp.in, conn)
		pp.inMu.Unlock()
		pp.wg.Add(1)
		go pp.readLoop(conn)
	}
}

// readLoop parses frames from one inbound connection and delivers them.
func (pp *Parcelport) readLoop(conn net.Conn) {
	defer pp.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64*1024)
	for !pp.stopped.Load() {
		// Each frame's small chunks land in pooled buffers tracked by a
		// refcounted owner; the delivery chain releases it when the last
		// parcel's action finished, recycling the buffers.
		owner := parcelport.GetRecvBufs()
		m, err := readFrame(r, owner)
		if err != nil {
			owner.Release()
			return
		}
		pp.recvd.Add(1)
		pp.bytesRecvd.Add(uint64(m.TotalBytes()))
		pp.deliver(m)
	}
}

// writeFrame emits one length-prefixed HPX message.
func writeFrame(w io.Writer, m *serialization.Message) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(m.NonZeroCopy)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(m.Transmission)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(m.ZeroCopy)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var lens [4]byte
	for _, zc := range m.ZeroCopy {
		binary.LittleEndian.PutUint32(lens[:], uint32(len(zc)))
		if _, err := w.Write(lens[:]); err != nil {
			return err
		}
	}
	if _, err := w.Write(m.NonZeroCopy); err != nil {
		return err
	}
	if _, err := w.Write(m.Transmission); err != nil {
		return err
	}
	for _, zc := range m.ZeroCopy {
		if _, err := w.Write(zc); err != nil {
			return err
		}
	}
	return nil
}

// readFrame parses one length-prefixed HPX message into owner's reusable
// message, staging the non-zero-copy and transmission chunks in owner-tracked
// pooled buffers. On error the caller releases owner, which recycles
// whatever was staged. Zero-copy chunks are plain GC allocations (they
// become long-lived arguments) and are not owner-tracked.
func readFrame(r io.Reader, owner *parcelport.RecvBufs) (*serialization.Message, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return nil, fmt.Errorf("tcppp: bad frame magic")
	}
	nzcLen := binary.LittleEndian.Uint32(hdr[4:])
	transLen := binary.LittleEndian.Uint32(hdr[8:])
	numZC := binary.LittleEndian.Uint32(hdr[12:])
	if nzcLen > maxFrameChunk || transLen > maxFrameChunk || numZC > 1<<20 {
		return nil, fmt.Errorf("tcppp: implausible frame sizes")
	}
	zcLens := make([]uint32, numZC)
	var lens [4]byte
	for i := range zcLens {
		if _, err := io.ReadFull(r, lens[:]); err != nil {
			return nil, err
		}
		zcLens[i] = binary.LittleEndian.Uint32(lens[:])
		if zcLens[i] > maxFrameChunk {
			return nil, fmt.Errorf("tcppp: implausible chunk size")
		}
	}
	m := &owner.Msg
	*m = serialization.Message{Owner: owner}
	m.NonZeroCopy = owner.GetBuf(int(nzcLen))
	if _, err := io.ReadFull(r, m.NonZeroCopy); err != nil {
		return nil, err
	}
	if transLen > 0 {
		m.Transmission = owner.GetBuf(int(transLen))
		if _, err := io.ReadFull(r, m.Transmission); err != nil {
			return nil, err
		}
	}
	if numZC > 0 {
		m.ZeroCopy = make([][]byte, numZC)
		for i := range m.ZeroCopy {
			m.ZeroCopy[i] = make([]byte, zcLens[i])
			if _, err := io.ReadFull(r, m.ZeroCopy[i]); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}
