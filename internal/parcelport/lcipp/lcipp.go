// Package lcipp implements the LCI parcelport of §3.2 of the paper, the
// system contribution being reproduced, on top of internal/lci.
//
// Baseline behaviour (lci_psr_cq_pin): the header message is assembled
// directly in an LCI-allocated packet buffer (saving a copy) and transferred
// with the one-sided dynamic put, completing into the pre-configured
// completion queue at the target. Follow-up chunks use two-sided medium
// (eager) or long (rendezvous) send/receive — each follow-up message on its
// own tag from a shared atomic counter, because LCI does not guarantee
// in-order delivery. Completions drain through completion queues, so there
// is no pending-connection list to poll round-robin. A dedicated progress
// thread, created through the scheduler's resource-partitioner analogue,
// drives the LCI progress engine.
//
// Every §3.2.2 research variant is available through Config:
//
//   - Protocol sendrecv ("sr"): the header goes through two-sided
//     send/receive with one wildcard receive kept posted, like the MPI
//     parcelport.
//   - Completion synchronizer ("sy"): operations complete into per-op
//     synchronizers held in a round-robin-polled pending list. Header puts
//     still complete through the pre-configured CQ (an LCI limitation the
//     paper notes).
//   - Progress worker ("mt"): no dedicated progress thread; idle worker
//     threads call the thread-safe progress function.
package lcipp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hpxgo/internal/amt"
	"hpxgo/internal/fabric"
	"hpxgo/internal/lci"
	"hpxgo/internal/parcelport"
	"hpxgo/internal/serialization"
	"hpxgo/internal/tune"
)

// headerMsgTag is the tag of header messages in the sendrecv protocol.
const headerMsgTag = 0

// tagBound is the tag-space bound shared by sender and receiver (they must
// agree for the block arithmetic of TagAllocator.Nth to match).
const tagBound = 1 << 20

// Config tunes the LCI parcelport.
type Config struct {
	// ZeroCopyThreshold caps the header message size (HPX default 8192).
	ZeroCopyThreshold int
	Protocol          parcelport.Protocol
	Completion        parcelport.Completion
	Progress          parcelport.ProgressMode

	// AdaptiveProgress scales the dedicated progress goroutines (pin mode
	// only) between load watermarks: a device whose base progress worker
	// finds work on most passes gains extra dedicated workers, and parks
	// them again once passes run mostly empty. No effect in mt mode.
	AdaptiveProgress bool
	// MaxProgressWorkers caps dedicated progress goroutines per device when
	// AdaptiveProgress is on (default 3).
	MaxProgressWorkers int

	// DrainBatch is the shared completion budget of one background drain
	// pass: at most this many completion records are popped and dispatched
	// across ALL completion queues (every device's put CQ plus the shared
	// op CQ), round-robin interleaved so a hot put stream cannot starve
	// operation completions. Default DefaultDrainBatch. Surfaced through
	// core.Config.DrainBatch (autotune-visible seed).
	DrainBatch int
}

// DefaultDrainBatch is the Config.DrainBatch seed: the per-pass completion
// budget the historical fixed cqBatch constant provided.
const DefaultDrainBatch = 32

// headerCtx marks completions of the per-device wildcard header receive.
type headerCtx struct{ dev int }

// Stats are cumulative parcelport counters.
type Stats struct {
	MessagesSent  uint64
	MessagesRecvd uint64
	SendRetries   uint64 // posts backpressured into the retry list
	SyncPolls     uint64 // synchronizer-list scans (sy mode)
}

// Parcelport is the LCI parcelport of one locality.
type Parcelport struct {
	cfg     Config
	devs    []*lci.Device // one LCI device per replicated network context
	sched   *amt.Scheduler
	deliver parcelport.DeliverFunc

	tags *parcelport.TagAllocator

	// putCQs[i] is device i's pre-configured put completion queue (header
	// arrivals in the putsendrecv protocol).
	putCQs []*lci.CompQueue
	// opCQ collects tracked send/receive completions (cq mode). Baseline
	// single-device operation shares one queue with the puts, preserving
	// the paper's "poll one completion queue" property.
	opCQ *lci.CompQueue

	// cqs/cqDevs is the flattened drain set — every put CQ plus, when
	// distinct, the shared op CQ — with the device index dispatch needs for
	// each queue's records. drainCur rotates the round-robin starting queue
	// across passes so no queue is systematically served first.
	cqs      []*lci.CompQueue
	cqDevs   []int
	drainCur atomic.Uint32

	// syncMu guards the pending synchronizer list (sy mode), polled
	// round-robin like the MPI parcelport's connection list.
	syncMu   sync.Mutex
	pendSync []*syncEntry

	// retryMu guards connections whose last post hit ErrRetry.
	retryMu   sync.Mutex
	retryList []*lconn

	// header receive state for the sendrecv protocol, one per device.
	hdrMu   sync.Mutex
	hdrBufs [][]byte

	// progressHook, when set, runs alongside the LCI progress engine on the
	// dedicated progress thread(s) in pin mode (e.g. the aggregation
	// layer's age-based flush, which must not starve while every worker is
	// busy with tasks).
	progressHook func() bool

	// scalers (one per device) own the adaptive progress workers; the count
	// of live dedicated progress goroutines is mirrored in progressWorkers.
	scalers         []*progScaler
	progressWorkers atomic.Int64

	stopProgress func()
	stopped      atomic.Bool

	stats struct {
		sent, recvd, retries, syncPolls atomic.Uint64
	}
}

// syncEntry pairs a synchronizer with the dispatch of its completions.
type syncEntry struct {
	sync *lci.Synchronizer
	done atomic.Bool
}

// New creates the LCI parcelport on an existing device. sched provides the
// dedicated progress thread in pin mode (may be nil in mt mode).
func New(dev *lci.Device, sched *amt.Scheduler, cfg Config) (*Parcelport, error) {
	return NewMulti([]*lci.Device{dev}, sched, cfg)
}

// NewMulti creates the LCI parcelport over several replicated LCI devices —
// the §7.2 future-work configuration where each device maps to its own
// low-level network context, spreading injection and progress contention.
// Connections stripe across devices by tag; pin mode runs one dedicated
// progress thread per device.
func NewMulti(devs []*lci.Device, sched *amt.Scheduler, cfg Config) (*Parcelport, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("lcipp: need at least one device")
	}
	if cfg.ZeroCopyThreshold <= 0 {
		cfg.ZeroCopyThreshold = serialization.DefaultZeroCopyThreshold
	}
	if cfg.Progress == parcelport.PinnedProgress && sched == nil {
		return nil, fmt.Errorf("lcipp: pinned progress requires a scheduler")
	}
	pp := &Parcelport{
		cfg:   cfg,
		devs:  devs,
		sched: sched,
		tags:  parcelport.NewTagAllocator(tagBound),
	}
	for _, d := range devs {
		pp.putCQs = append(pp.putCQs, d.PutCQ())
	}
	// With one device, tracked completions share the put CQ (one queue to
	// poll). With several, they drain through one extra shared queue.
	if len(devs) == 1 {
		pp.opCQ = devs[0].PutCQ()
	} else {
		pp.opCQ = lci.NewCompQueue(0)
	}
	if pp.cfg.DrainBatch <= 0 {
		pp.cfg.DrainBatch = DefaultDrainBatch
	}
	for i, cq := range pp.putCQs {
		pp.cqs = append(pp.cqs, cq)
		pp.cqDevs = append(pp.cqDevs, i)
	}
	if pp.opCQ != pp.putCQs[0] {
		pp.cqs = append(pp.cqs, pp.opCQ)
		pp.cqDevs = append(pp.cqDevs, 0)
	}
	return pp, nil
}

// Devices returns the number of replicated devices.
func (pp *Parcelport) Devices() int { return len(pp.devs) }

// devFor picks the device a connection with the given base tag stripes to.
func (pp *Parcelport) devFor(baseTag uint32) (*lci.Device, int) {
	i := int(baseTag) % len(pp.devs)
	return pp.devs[i], i
}

// Name renders the Table 1 abbreviation (without the upper layer's "_i").
func (pp *Parcelport) Name() string {
	c := parcelport.Config{
		Transport:  parcelport.TransportLCI,
		Protocol:   pp.cfg.Protocol,
		Completion: pp.cfg.Completion,
		Progress:   pp.cfg.Progress,
	}
	return c.String()
}

// MaxHeaderSize is the header cap: the zero-copy threshold, further bounded
// by LCI's eager limit so a header always fits one medium message / packet.
// Connections stripe across every replicated device, so the binding limit is
// the smallest eager threshold of any device — consulting only devs[0] would
// overrun the packet buffers of a device configured with a smaller limit.
func (pp *Parcelport) MaxHeaderSize() int {
	max := pp.cfg.ZeroCopyThreshold
	for _, d := range pp.devs {
		if e := d.EagerThreshold(); e < max {
			max = e
		}
	}
	return max
}

// Stats returns a snapshot of the counters.
func (pp *Parcelport) Stats() Stats {
	return Stats{
		MessagesSent:  pp.stats.sent.Load(),
		MessagesRecvd: pp.stats.recvd.Load(),
		SendRetries:   pp.stats.retries.Load(),
		SyncPolls:     pp.stats.syncPolls.Load(),
	}
}

// SetProgressHook installs fn to be driven by the dedicated progress
// thread(s) in pin mode, alongside the LCI progress engine. Must be called
// before Start; no-op in mt mode (idle workers drive background work there).
func (pp *Parcelport) SetProgressHook(fn func() bool) { pp.progressHook = fn }

// Start installs the delivery callback, posts the header receive (sendrecv
// protocol) and launches the dedicated progress thread (pin mode).
func (pp *Parcelport) Start(deliver parcelport.DeliverFunc) error {
	if deliver == nil {
		return fmt.Errorf("lcipp: nil deliver callback")
	}
	pp.deliver = deliver
	if pp.cfg.Protocol == parcelport.SendRecv {
		pp.hdrBufs = make([][]byte, len(pp.devs))
		pp.hdrMu.Lock()
		for i := range pp.devs {
			pp.hdrBufs[i] = make([]byte, pp.MaxHeaderSize())
			if err := pp.postHeaderRecvLocked(i); err != nil {
				pp.hdrMu.Unlock()
				return err
			}
		}
		pp.hdrMu.Unlock()
	}
	if pp.cfg.Progress == parcelport.PinnedProgress {
		// One dedicated progress thread per device (§7.2: replicated
		// network resources need replicated progress).
		stops := make([]func(), len(pp.devs))
		for i, d := range pp.devs {
			work := d.Progress
			if hook := pp.progressHook; hook != nil {
				progress := d.Progress
				work = func() bool {
					did := progress()
					if hook() {
						did = true
					}
					return did
				}
			}
			if pp.cfg.AdaptiveProgress {
				max := pp.cfg.MaxProgressWorkers
				if max <= 0 {
					max = defaultMaxProgressWorkers
				}
				ps := &progScaler{pp: pp, dev: i, work: d.Progress, max: max}
				ps.extra = make([]func(), 0, max-1)
				pp.scalers = append(pp.scalers, ps)
				base := work
				work = func() bool {
					did := base()
					ps.observe(did)
					return did
				}
			}
			stops[i] = pp.sched.StartDedicated(fmt.Sprintf("lci-progress-%d", i), false, work)
			pp.progressWorkers.Add(1)
		}
		pp.stopProgress = func() {
			// Base workers first: each scaler's extras list is owned by its
			// base worker's goroutine, so it must quiesce before the extras
			// are stopped here.
			for _, stop := range stops {
				stop()
				pp.progressWorkers.Add(-1)
			}
			for _, ps := range pp.scalers {
				ps.stopExtras()
			}
		}
	}
	return nil
}

// defaultMaxProgressWorkers caps adaptive progress goroutines per device.
const defaultMaxProgressWorkers = 3

// progScaler scales one device's dedicated progress goroutines between 1
// and max under a load watermark: sustained utilization of the base worker
// starts an extra dedicated worker driving the bare device progress engine;
// sustained idleness parks the newest extra again. All mutable state is
// owned by the base worker's goroutine (observe runs inside its loop);
// Stop joins base workers before reaping the surviving extras.
type progScaler struct {
	pp    *Parcelport
	dev   int
	work  func() bool // bare device progress, what extra workers run
	load  tune.LoadWatermark
	max   int
	extra []func() // stop functions of running extra workers
}

// observe feeds one base-worker progress pass into the watermark window and
// actuates at window boundaries. Scaling events are rare (once per Window
// passes at most), so the start/stop cost stays off the steady-state path.
func (ps *progScaler) observe(did bool) {
	if !ps.load.Observe(did) {
		return
	}
	switch ps.load.Decide() {
	case 1:
		if len(ps.extra) < ps.max-1 {
			name := fmt.Sprintf("lci-progress-%d.%d", ps.dev, len(ps.extra)+1)
			ps.extra = append(ps.extra, ps.pp.sched.StartDedicated(name, false, ps.work))
			ps.pp.progressWorkers.Add(1)
		}
	case -1:
		if n := len(ps.extra); n > 0 {
			stop := ps.extra[n-1]
			ps.extra = ps.extra[:n-1]
			stop() // joins promptly: the loop re-checks stop between passes
			ps.pp.progressWorkers.Add(-1)
		}
	}
}

// stopExtras reaps any extra workers still running. Only called after the
// base worker has been joined (no concurrent observe).
func (ps *progScaler) stopExtras() {
	for _, stop := range ps.extra {
		stop()
		ps.pp.progressWorkers.Add(-1)
	}
	ps.extra = ps.extra[:0]
}

// ProgressWorkers reports the dedicated progress goroutines currently
// running across all devices (pin mode; 0 in mt mode or before Start).
func (pp *Parcelport) ProgressWorkers() int { return int(pp.progressWorkers.Load()) }

// Stop shuts the parcelport down (progress thread joined, no new work).
func (pp *Parcelport) Stop() {
	if !pp.stopped.CompareAndSwap(false, true) {
		return
	}
	if pp.stopProgress != nil {
		pp.stopProgress()
	}
}

// Send transfers one HPX message. The header goes out immediately (put or
// medium send); follow-up chunks flow as completions drain.
func (pp *Parcelport) Send(dst int, m *serialization.Message) {
	c := newSenderConn(pp, dst, m)
	c.start()
}

// BackgroundWork drains completions (and, in mt mode, drives progress) on
// behalf of an idle worker.
func (pp *Parcelport) BackgroundWork(workerID int) bool {
	if pp.stopped.Load() {
		return false
	}
	did := false
	if pp.cfg.Progress == parcelport.WorkerProgress {
		for _, d := range pp.devs {
			if d.Progress() {
				did = true
			}
		}
	}
	if pp.drainCQ() {
		did = true
	}
	if pp.cfg.Completion == parcelport.Synchronizer && pp.pollSyncs() {
		did = true
	}
	if pp.drainRetries() {
		did = true
	}
	return did
}

// drainChunk is one round-robin turn's per-queue batch: small enough that
// the queues interleave within a single pass (fairness), large enough to
// amortize the PopN batch pop. The chunk buffer lives on the caller's stack,
// so concurrent background workers drain without sharing scratch state.
const drainChunk = 8

// drainCQ pops and dispatches completion-queue entries from every device's
// put CQ and from the shared op CQ, round-robin interleaved under one shared
// DrainBatch budget. The rotation cursor advances every pass, so under a
// sustained hot put stream the op CQ still gets a proportional share of each
// pass (the historical sequential drain served every put CQ to exhaustion of
// its own fixed batch before touching operation completions).
func (pp *Parcelport) drainCQ() bool {
	budget := pp.cfg.DrainBatch
	nq := len(pp.cqs)
	start := int(pp.drainCur.Add(1))
	var buf [drainChunk]lci.Request
	did := false
	for budget > 0 {
		idle := true
		for qi := 0; qi < nq && budget > 0; qi++ {
			slot := (start + qi) % nq
			want := drainChunk
			if budget < want {
				want = budget
			}
			n := pp.cqs[slot].PopN(buf[:want])
			if n == 0 {
				continue
			}
			idle = false
			did = true
			budget -= n
			for i := 0; i < n; i++ {
				pp.dispatch(pp.cqDevs[slot], buf[i])
			}
		}
		if idle {
			break
		}
	}
	return did
}

// dispatch routes one completion record. devIdx identifies the device whose
// queue delivered it (meaningful for header arrivals).
func (pp *Parcelport) dispatch(devIdx int, req lci.Request) {
	switch {
	case req.Type == lci.CompPut:
		// Header message arrival (putsendrecv protocol). Data is the
		// LCI-allocated buffer: safe to alias. The pooled packet (when the
		// record carries one) rides along so the delivery chain can recycle
		// it once the last parcel finished.
		pp.handleHeader(devIdx, req.Rank, req.Data, false, req.Pkt)
	case req.Ctx == nil:
		// Untracked completion (e.g. a medium send that needed none).
	default:
		switch ctx := req.Ctx.(type) {
		case headerCtx:
			pp.handleHeaderRecv(ctx.dev, req)
		case *lconn:
			ctx.onComplete(req)
		}
	}
}

// handleHeader decodes a header and hands the message on: fully piggybacked
// headers (the eager fast path, the common case for small parcels and
// aggregation bundles) deliver straight from the header buffer with zero
// copies and zero allocations beyond the pooled owner; anything expecting
// follow-up chunks starts a receiver connection on the device the header
// arrived on. mustCopy says the piggybacked chunks alias a buffer about to
// be reused (the sendrecv wildcard receive buffer). pkt, when non-nil, is
// the pooled packet the header arrived in; ownership passes to the delivery
// chain via the message owner.
func (pp *Parcelport) handleHeader(devIdx, src int, data []byte, mustCopy bool, pkt *fabric.Packet) {
	h, err := parcelport.DecodeHeader(data)
	if err != nil {
		if pkt != nil {
			pkt.Release()
		}
		return // malformed protocol message; drop
	}
	owner := parcelport.GetRecvBufs()
	if mustCopy {
		h.NZC = owner.Clone(h.NZC)
		h.Trans = owner.Clone(h.Trans)
	} else if pkt != nil {
		owner.SetInner(pkt)
	}
	if h.NumZC == 0 && h.NZC != nil && (h.Trans != nil || h.TransSize == 0) {
		// Everything rode the header: no connection, no follow-up tags.
		pp.stats.recvd.Add(1)
		owner.Msg = serialization.Message{NonZeroCopy: h.NZC, Transmission: h.Trans, Owner: owner}
		pp.deliver(&owner.Msg)
		return
	}
	c := newReceiverConn(pp, devIdx, src, h, owner)
	c.start()
}

// --- sendrecv-protocol header channel ---

// postHeaderRecvLocked posts device devIdx's singleton wildcard header
// receive. Caller holds hdrMu.
func (pp *Parcelport) postHeaderRecvLocked(devIdx int) error {
	comp, reg := pp.newComp()
	err := pp.devs[devIdx].Recvm(lci.AnyRank, headerMsgTag, pp.hdrBufs[devIdx], comp, headerCtx{dev: devIdx})
	if err != nil {
		return err
	}
	if reg != nil {
		pp.addSync(reg)
	}
	return nil
}

// handleHeaderRecv processes a completed wildcard header receive and
// re-posts it.
func (pp *Parcelport) handleHeaderRecv(devIdx int, req lci.Request) {
	pp.hdrMu.Lock()
	// req.Data aliases the device's header buffer: hand the header off with
	// copies, then re-post the receive.
	pp.handleHeader(devIdx, req.Rank, req.Data, true, nil)
	if !pp.stopped.Load() {
		_ = pp.postHeaderRecvLocked(devIdx)
	}
	pp.hdrMu.Unlock()
}

// --- completion-mechanism plumbing ---

// newComp returns the completion object for one tracked operation: the
// shared CQ in cq mode, or a fresh registered synchronizer in sy mode.
// The returned *syncEntry is non-nil only in sy mode; the caller must
// addSync it after the post succeeds.
func (pp *Parcelport) newComp() (lci.Comp, *syncEntry) {
	if pp.cfg.Completion == parcelport.CompletionQueue {
		return pp.opCQ, nil
	}
	e := &syncEntry{sync: lci.NewSynchronizer(1)}
	return e.sync, e
}

func (pp *Parcelport) addSync(e *syncEntry) {
	pp.syncMu.Lock()
	pp.pendSync = append(pp.pendSync, e)
	pp.syncMu.Unlock()
}

// pollSyncs scans the pending synchronizer list round-robin, dispatching the
// completions of any that triggered — the O(pending) cost the paper
// contrasts with O(1) completion-queue pops.
func (pp *Parcelport) pollSyncs() bool {
	pp.stats.syncPolls.Add(1)
	pp.syncMu.Lock()
	entries := pp.pendSync
	pp.syncMu.Unlock()
	did := false
	finished := 0
	for _, e := range entries {
		if e.done.Load() {
			finished++
			continue
		}
		if !e.sync.Test() {
			continue
		}
		if !e.done.CompareAndSwap(false, true) {
			finished++
			continue
		}
		finished++
		did = true
		for _, req := range e.sync.Requests() {
			pp.dispatch(0, req)
		}
	}
	if finished > 0 {
		pp.compactSyncs()
	}
	return did
}

func (pp *Parcelport) compactSyncs() {
	pp.syncMu.Lock()
	// Build a fresh slice: pollSyncs iterates snapshots of the old backing
	// array outside the lock, so it must never be mutated in place.
	kept := make([]*syncEntry, 0, len(pp.pendSync))
	for _, e := range pp.pendSync {
		if !e.done.Load() {
			kept = append(kept, e)
		}
	}
	pp.pendSync = kept
	pp.syncMu.Unlock()
}

// PendingSyncs reports the synchronizer-list length (tests).
func (pp *Parcelport) PendingSyncs() int {
	pp.syncMu.Lock()
	defer pp.syncMu.Unlock()
	return len(pp.pendSync)
}

// --- retry plumbing ---

// addRetry queues a connection whose post hit ErrRetry.
func (pp *Parcelport) addRetry(c *lconn) {
	pp.stats.retries.Add(1)
	pp.retryMu.Lock()
	pp.retryList = append(pp.retryList, c)
	pp.retryMu.Unlock()
}

// drainRetries re-drives connections that were backpressured.
func (pp *Parcelport) drainRetries() bool {
	pp.retryMu.Lock()
	if len(pp.retryList) == 0 {
		pp.retryMu.Unlock()
		return false
	}
	conns := pp.retryList
	pp.retryList = nil
	pp.retryMu.Unlock()
	did := false
	for _, c := range conns {
		if c.drive() {
			did = true
		}
	}
	return did
}

// isRetry reports whether err is the nonblocking-retry signal.
func isRetry(err error) bool { return errors.Is(err, lci.ErrRetry) }
