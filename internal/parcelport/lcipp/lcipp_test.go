package lcipp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"hpxgo/internal/amt"
	"hpxgo/internal/fabric"
	"hpxgo/internal/lci"
	"hpxgo/internal/parcelport"
	"hpxgo/internal/serialization"
)

// rig is a two-locality LCI-parcelport bench. Worker-progress ("mt")
// configurations are driven entirely by explicit BackgroundWork calls;
// pinned configurations additionally run their real progress thread.
type rig struct {
	pps    [2]*Parcelport
	scheds [2]*amt.Scheduler

	mu       sync.Mutex
	received [2][]*serialization.Message
}

func newRig(t *testing.T, cfg Config, fcfg fabric.Config, lciCfg lci.Config) *rig {
	t.Helper()
	fcfg.Nodes = 2
	net, err := fabric.NewNetwork(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{}
	for i := 0; i < 2; i++ {
		i := i
		r.scheds[i] = amt.New(amt.Config{Workers: 1, Name: fmt.Sprintf("rig-%d", i)})
		dev := lci.NewDevice(net.Device(i), lciCfg, nil)
		pp, err := New(dev, r.scheds[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.pps[i] = pp
		if err := pp.Start(func(m *serialization.Message) {
			r.mu.Lock()
			r.received[i] = append(r.received[i], m)
			r.mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		r.pps[0].Stop()
		r.pps[1].Stop()
		r.scheds[0].Stop()
		r.scheds[1].Stop()
	})
	return r
}

func (r *rig) pump(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		r.pps[0].BackgroundWork(0)
		r.pps[1].BackgroundWork(0)
		r.mu.Lock()
		ok := cond()
		r.mu.Unlock()
		if ok {
			return
		}
	}
	t.Fatalf("condition not reached in %v", timeout)
}

func msgWith(t *testing.T, argSizes ...int) (*serialization.Message, *serialization.Parcel) {
	t.Helper()
	p := &serialization.Parcel{Source: 0, Dest: 1, Action: 9}
	for i, sz := range argSizes {
		a := make([]byte, sz)
		for j := range a {
			a[j] = byte(3*i + j)
		}
		p.Args = append(p.Args, a)
	}
	return serialization.Encode([]*serialization.Parcel{p}, 0), p
}

func checkRoundTrip(t *testing.T, m *serialization.Message, want *serialization.Parcel) {
	t.Helper()
	ps, err := serialization.Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || len(ps[0].Args) != len(want.Args) {
		t.Fatalf("decoded %d parcels", len(ps))
	}
	for i := range want.Args {
		if !bytes.Equal(ps[0].Args[i], want.Args[i]) {
			t.Fatalf("arg %d corrupted", i)
		}
	}
}

// variantConfigs enumerates all 2x2x2 LCI parcelport variants.
func variantConfigs() []Config {
	var out []Config
	for _, proto := range []parcelport.Protocol{parcelport.PutSendRecv, parcelport.SendRecv} {
		for _, comp := range []parcelport.Completion{parcelport.CompletionQueue, parcelport.Synchronizer} {
			for _, prog := range []parcelport.ProgressMode{parcelport.PinnedProgress, parcelport.WorkerProgress} {
				out = append(out, Config{Protocol: proto, Completion: comp, Progress: prog})
			}
		}
	}
	return out
}

func TestAllVariantsRoundTrip(t *testing.T) {
	for _, cfg := range variantConfigs() {
		cfg := cfg
		name := parcelport.Config{Transport: parcelport.TransportLCI, Protocol: cfg.Protocol,
			Completion: cfg.Completion, Progress: cfg.Progress}.String()
		t.Run(name, func(t *testing.T) {
			r := newRig(t, cfg, fabric.Config{LatencyNs: 200, Rails: 2}, lci.Config{})
			if got := r.pps[0].Name(); got != name {
				t.Fatalf("Name = %q, want %q", got, name)
			}
			// Small (all piggybacked), medium follow-up, and zero-copy.
			m1, p1 := msgWith(t, 32)
			m2, p2 := msgWith(t, 4000, 4000, 4000) // nzc too big to piggyback
			m3, p3 := msgWith(t, 64, 9000, 20000)  // zero-copy rendezvous chunks
			r.pps[0].Send(1, m1)
			r.pps[0].Send(1, m2)
			r.pps[0].Send(1, m3)
			// Wait for delivery AND for the sender's final completions to
			// drain (they trail the last payload).
			r.pump(t, 20*time.Second, func() bool {
				return len(r.received[1]) == 3 && r.pps[0].Stats().MessagesSent == 3
			})
			// LCI does not guarantee ordering across messages: match by shape.
			for _, m := range r.received[1] {
				ps, err := serialization.Decode(m)
				if err != nil {
					t.Fatal(err)
				}
				switch len(ps[0].Args) {
				case 1:
					checkRoundTrip(t, m, p1)
				case 3:
					if len(ps[0].Args[1]) == 4000 {
						checkRoundTrip(t, m, p2)
					} else {
						checkRoundTrip(t, m, p3)
					}
				default:
					t.Fatalf("unexpected arg count %d", len(ps[0].Args))
				}
			}
			if st := r.pps[0].Stats(); st.MessagesSent != 3 {
				t.Fatalf("sender stats %+v", st)
			}
			if st := r.pps[1].Stats(); st.MessagesRecvd != 3 {
				t.Fatalf("receiver stats %+v", st)
			}
		})
	}
}

func TestOnSentFires(t *testing.T) {
	r := newRig(t, Config{Progress: parcelport.WorkerProgress}, fabric.Config{}, lci.Config{})
	m, _ := msgWith(t, 64, 9000)
	var sent bool
	r.mu.Lock()
	m.OnSent = func() { sent = true }
	r.mu.Unlock()
	r.pps[0].Send(1, m)
	r.pump(t, 10*time.Second, func() bool { return sent })
}

func TestRetryUnderBackpressure(t *testing.T) {
	// A tiny injection window forces ErrRetry paths; everything must still
	// arrive.
	r := newRig(t, Config{Progress: parcelport.WorkerProgress},
		fabric.Config{MaxInflight: 2, LatencyNs: 2000}, lci.Config{})
	const n = 20
	var parcels []*serialization.Parcel
	for i := 0; i < n; i++ {
		m, p := msgWith(t, 128+i, 9000)
		parcels = append(parcels, p)
		r.pps[0].Send(1, m)
	}
	r.pump(t, 30*time.Second, func() bool { return len(r.received[1]) == n })
	if r.pps[0].Stats().SendRetries == 0 {
		t.Fatal("expected retries under MaxInflight=2")
	}
	// Account for every parcel (order not guaranteed).
	seen := make([]bool, n)
	for _, m := range r.received[1] {
		ps, err := serialization.Decode(m)
		if err != nil {
			t.Fatal(err)
		}
		matched := false
		for i, p := range parcels {
			if !seen[i] && len(ps[0].Args[0]) == len(p.Args[0]) {
				checkRoundTrip(t, m, p)
				seen[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Fatal("received message matches no sent parcel")
		}
	}
}

func TestPoolExhaustionRetries(t *testing.T) {
	// A 4-packet pool forces GetPacket retries for putsendrecv headers.
	r := newRig(t, Config{Progress: parcelport.WorkerProgress},
		fabric.Config{}, lci.Config{PoolPackets: 4})
	const n = 30
	for i := 0; i < n; i++ {
		m, _ := msgWith(t, 64)
		r.pps[0].Send(1, m)
	}
	r.pump(t, 20*time.Second, func() bool { return len(r.received[1]) == n })
}

func TestSyncPendingListDrains(t *testing.T) {
	cfg := Config{Completion: parcelport.Synchronizer, Progress: parcelport.WorkerProgress}
	r := newRig(t, cfg, fabric.Config{}, lci.Config{})
	for i := 0; i < 10; i++ {
		m, _ := msgWith(t, 64, 9000)
		r.pps[0].Send(1, m)
	}
	r.pump(t, 20*time.Second, func() bool { return len(r.received[1]) == 10 })
	r.pump(t, 10*time.Second, func() bool {
		return r.pps[0].PendingSyncs() == 0 && r.pps[1].PendingSyncs() == 0
	})
	if r.pps[1].Stats().SyncPolls == 0 {
		t.Fatal("synchronizer list was never polled")
	}
}

func TestBidirectionalSendRecvProtocol(t *testing.T) {
	cfg := Config{Protocol: parcelport.SendRecv, Progress: parcelport.WorkerProgress}
	r := newRig(t, cfg, fabric.Config{LatencyNs: 100}, lci.Config{})
	m01, p01 := msgWith(t, 9000)
	m10, p10 := msgWith(t, 11000)
	r.pps[0].Send(1, m01)
	r.pps[1].Send(0, m10)
	r.pump(t, 10*time.Second, func() bool {
		return len(r.received[0]) == 1 && len(r.received[1]) == 1
	})
	checkRoundTrip(t, r.received[1][0], p01)
	checkRoundTrip(t, r.received[0][0], p10)
}

func TestNewValidation(t *testing.T) {
	net, _ := fabric.NewNetwork(fabric.Config{Nodes: 1})
	dev := lci.NewDevice(net.Device(0), lci.Config{}, nil)
	if _, err := New(dev, nil, Config{Progress: parcelport.PinnedProgress}); err == nil {
		t.Fatal("pinned progress without scheduler must fail")
	}
	pp, err := New(dev, nil, Config{Progress: parcelport.WorkerProgress})
	if err != nil {
		t.Fatal(err)
	}
	if err := pp.Start(nil); err == nil {
		t.Fatal("nil deliver must fail")
	}
}

func TestMaxHeaderBoundedByEager(t *testing.T) {
	net, _ := fabric.NewNetwork(fabric.Config{Nodes: 1})
	dev := lci.NewDevice(net.Device(0), lci.Config{EagerThreshold: 2048}, nil)
	pp, err := New(dev, nil, Config{Progress: parcelport.WorkerProgress, ZeroCopyThreshold: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if pp.MaxHeaderSize() != 2048 {
		t.Fatalf("MaxHeaderSize = %d, want 2048 (eager bound)", pp.MaxHeaderSize())
	}
}

func TestStopIdempotent(t *testing.T) {
	r := newRig(t, Config{}, fabric.Config{}, lci.Config{})
	r.pps[0].Stop()
	r.pps[0].Stop()
	if r.pps[0].BackgroundWork(0) {
		t.Fatal("background work after stop")
	}
}
