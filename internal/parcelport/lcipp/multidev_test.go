package lcipp

import (
	"sync"
	"testing"
	"time"

	"hpxgo/internal/amt"
	"hpxgo/internal/fabric"
	"hpxgo/internal/lci"
	"hpxgo/internal/parcelport"
	"hpxgo/internal/serialization"
)

// newMultiRig builds a two-locality bench with nDevs replicated LCI devices
// per locality.
func newMultiRig(t *testing.T, cfg Config, nDevs int) *rig {
	t.Helper()
	net, err := fabric.NewNetwork(fabric.Config{Nodes: 2, LatencyNs: 100, DevicesPerNode: nDevs})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{}
	for i := 0; i < 2; i++ {
		i := i
		r.scheds[i] = amt.New(amt.Config{Workers: 1})
		devs := make([]*lci.Device, nDevs)
		for di := range devs {
			devs[di] = lci.NewDevice(net.DeviceN(i, di), lci.Config{}, nil)
		}
		pp, err := NewMulti(devs, r.scheds[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.pps[i] = pp
		if err := pp.Start(func(m *serialization.Message) {
			r.mu.Lock()
			r.received[i] = append(r.received[i], m)
			r.mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		r.pps[0].Stop()
		r.pps[1].Stop()
		r.scheds[0].Stop()
		r.scheds[1].Stop()
	})
	return r
}

func TestMultiDeviceRoundTripAllVariants(t *testing.T) {
	for _, cfg := range variantConfigs() {
		cfg := cfg
		name := parcelport.Config{Transport: parcelport.TransportLCI, Protocol: cfg.Protocol,
			Completion: cfg.Completion, Progress: cfg.Progress}.String()
		t.Run(name, func(t *testing.T) {
			r := newMultiRig(t, cfg, 3)
			if r.pps[0].Devices() != 3 {
				t.Fatalf("Devices = %d", r.pps[0].Devices())
			}
			const n = 30 // enough messages to stripe across all 3 devices
			var parcels []*serialization.Parcel
			for i := 0; i < n; i++ {
				m, p := msgWith(t, 16+i, 9000)
				parcels = append(parcels, p)
				r.pps[0].Send(1, m)
			}
			r.pump(t, 30*time.Second, func() bool {
				return len(r.received[1]) == n && r.pps[0].Stats().MessagesSent == n
			})
			// Match by unique small-arg length (ordering is not guaranteed
			// across devices).
			seen := make([]bool, n)
			for _, m := range r.received[1] {
				ps, err := serialization.Decode(m)
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for i, p := range parcels {
					if !seen[i] && len(ps[0].Args[0]) == len(p.Args[0]) {
						checkRoundTrip(t, m, p)
						seen[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Fatal("message matches no parcel")
				}
			}
		})
	}
}

func TestMultiDeviceStripesAcrossDevices(t *testing.T) {
	r := newMultiRig(t, Config{Progress: parcelport.WorkerProgress}, 3)
	const n = 60
	for i := 0; i < n; i++ {
		m, _ := msgWith(t, 8)
		r.pps[0].Send(1, m)
	}
	r.pump(t, 20*time.Second, func() bool { return len(r.received[1]) == n })
	// Each sender device should have carried some headers.
	used := 0
	for _, d := range r.pps[0].devs {
		if d.Stats().PutsSent > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d of 3 devices carried traffic", used)
	}
}

func TestMultiDeviceConcurrentSenders(t *testing.T) {
	r := newMultiRig(t, Config{Progress: parcelport.WorkerProgress}, 2)
	const senders, each = 4, 25
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m, _ := msgWith(t, 64, 9000)
				r.pps[0].Send(1, m)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	r.pump(t, 60*time.Second, func() bool {
		return len(r.received[1]) == senders*each
	})
	<-done
}

// TestMultiDeviceHeterogeneousEagerCap: the header cap must honour the
// smallest eager threshold across ALL replicated devices, not just devs[0].
// With the old devs[0]-only logic a header planned against an 8192-byte cap
// was encoded into the 2048-byte packet buffers of the smaller device
// whenever a connection striped there, and the message was dropped.
func TestMultiDeviceHeterogeneousEagerCap(t *testing.T) {
	eager := []int{8192, 2048, 8192}
	net, err := fabric.NewNetwork(fabric.Config{Nodes: 2, LatencyNs: 100, DevicesPerNode: len(eager)})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{}
	for i := 0; i < 2; i++ {
		i := i
		r.scheds[i] = amt.New(amt.Config{Workers: 1})
		devs := make([]*lci.Device, len(eager))
		for di := range devs {
			devs[di] = lci.NewDevice(net.DeviceN(i, di), lci.Config{EagerThreshold: eager[di]}, nil)
		}
		pp, err := NewMulti(devs, r.scheds[i], Config{Progress: parcelport.WorkerProgress})
		if err != nil {
			t.Fatal(err)
		}
		r.pps[i] = pp
		if err := pp.Start(func(m *serialization.Message) {
			r.mu.Lock()
			r.received[i] = append(r.received[i], m)
			r.mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		r.pps[0].Stop()
		r.pps[1].Stop()
		r.scheds[0].Stop()
		r.scheds[1].Stop()
	})
	if got := r.pps[0].MaxHeaderSize(); got != 2048 {
		t.Fatalf("MaxHeaderSize = %d, want 2048 (min eager threshold across devices)", got)
	}
	// A zero-copy threshold below every eager limit still wins the min.
	capped, err := NewMulti(r.pps[0].devs, nil, Config{ZeroCopyThreshold: 512, Progress: parcelport.WorkerProgress})
	if err != nil {
		t.Fatal(err)
	}
	if got := capped.MaxHeaderSize(); got != 512 {
		t.Fatalf("MaxHeaderSize = %d, want 512 (zero-copy threshold cap)", got)
	}
	// Payloads above the smallest eager limit but below the largest: headers
	// planned against the old devs[0] cap piggybacked them and overflowed the
	// small device's packets; they must all round-trip as follow-up chunks.
	const n = 30
	var parcels []*serialization.Parcel
	for i := 0; i < n; i++ {
		m, p := msgWith(t, 3000+i)
		parcels = append(parcels, p)
		r.pps[0].Send(1, m)
	}
	r.pump(t, 30*time.Second, func() bool {
		return len(r.received[1]) == n && r.pps[0].Stats().MessagesSent == n
	})
	seen := make([]bool, n)
	for _, m := range r.received[1] {
		ps, err := serialization.Decode(m)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for i, p := range parcels {
			if !seen[i] && len(ps[0].Args[0]) == len(p.Args[0]) {
				checkRoundTrip(t, m, p)
				seen[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatal("message matches no parcel")
		}
	}
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(nil, nil, Config{Progress: parcelport.WorkerProgress}); err == nil {
		t.Fatal("empty device list should fail")
	}
}
