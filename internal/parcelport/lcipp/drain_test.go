package lcipp

import (
	"testing"

	"hpxgo/internal/amt"
	"hpxgo/internal/fabric"
	"hpxgo/internal/lci"
	"hpxgo/internal/parcelport"
)

// newDrainPP builds a two-device parcelport (distinct put CQs plus a shared
// op CQ — the multi-queue drain set) without starting progress threads, so
// tests can feed the queues synthetic records and observe single drainCQ
// passes. The synthetic CompPut records carry no decodable header, so
// dispatch drops them after the pop — exactly what a starvation test needs:
// pops are observable through Len without side effects.
func newDrainPP(t *testing.T, drainBatch int) *Parcelport {
	t.Helper()
	net, err := fabric.NewNetwork(fabric.Config{Nodes: 2, DevicesPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	devs := []*lci.Device{
		lci.NewDevice(net.DeviceN(0, 0), lci.Config{}, nil),
		lci.NewDevice(net.DeviceN(0, 1), lci.Config{}, nil),
	}
	sched := amt.New(amt.Config{Workers: 1, Name: "drain-test"})
	pp, err := NewMulti(devs, sched, Config{
		Progress:   parcelport.WorkerProgress,
		DrainBatch: drainBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		pp.Stop()
		sched.Stop()
	})
	return pp
}

// TestDrainFairnessOpCQNotStarved is the starvation regression test for the
// shared-budget round-robin drain: a hot put stream on one device must not
// consume the whole per-pass budget before operation completions get a
// turn. A sequential exhaust-one-queue-first drain fails this (the op CQ
// would see none of a budget smaller than the hot backlog).
func TestDrainFairnessOpCQNotStarved(t *testing.T) {
	const budget = 16
	pp := newDrainPP(t, budget)

	hot := pp.putCQs[0]
	const hotDepth = 1000
	for i := 0; i < hotDepth; i++ {
		hot.Push(lci.Request{Type: lci.CompPut, Rank: 1})
	}
	const opDepth = 4
	for i := 0; i < opDepth; i++ {
		pp.opCQ.Push(lci.Request{Type: lci.CompSend}) // Ctx nil: untracked, dropped
	}

	if !pp.drainCQ() {
		t.Fatal("drainCQ found no work")
	}

	opDrained := opDepth - pp.opCQ.Len()
	if opDrained == 0 {
		t.Fatalf("op CQ starved: hot put stream consumed the whole %d-record budget", budget)
	}
	if hot.Len() == 0 {
		t.Fatal("bounded pass drained the entire hot queue")
	}
	popped := (hotDepth - hot.Len()) + opDrained
	if popped > budget {
		t.Fatalf("pass popped %d records, budget is %d", popped, budget)
	}
}

// TestDrainRotatesStartingQueue checks that successive passes rotate which
// queue is served first, so no queue is systematically favored when every
// queue holds work.
func TestDrainRotatesStartingQueue(t *testing.T) {
	const budget = drainChunk // exactly one chunk: each pass serves one queue
	pp := newDrainPP(t, budget)

	fill := func() {
		for _, cq := range pp.cqs {
			for cq.Len() < drainChunk {
				cq.Push(lci.Request{Type: lci.CompSend})
			}
		}
	}

	served := make(map[int]bool)
	for pass := 0; pass < len(pp.cqs)*2; pass++ {
		fill()
		before := make([]int, len(pp.cqs))
		for i, cq := range pp.cqs {
			before[i] = cq.Len()
		}
		pp.drainCQ()
		for i, cq := range pp.cqs {
			if cq.Len() < before[i] {
				served[i] = true
			}
		}
	}
	if len(served) != len(pp.cqs) {
		t.Fatalf("rotation served %d of %d queues across passes", len(served), len(pp.cqs))
	}
}

// TestDrainBudgetBoundsOnePass checks the budget is shared across queues,
// not per queue: with every queue deep, one pass pops at most DrainBatch in
// total.
func TestDrainBudgetBoundsOnePass(t *testing.T) {
	const budget = 24
	pp := newDrainPP(t, budget)
	const depth = 200
	for _, cq := range pp.cqs {
		for i := 0; i < depth; i++ {
			cq.Push(lci.Request{Type: lci.CompSend})
		}
	}
	pp.drainCQ()
	popped := 0
	for _, cq := range pp.cqs {
		popped += depth - cq.Len()
	}
	if popped > budget {
		t.Fatalf("one pass popped %d records across queues, shared budget is %d", popped, budget)
	}
	if popped == 0 {
		t.Fatal("pass popped nothing")
	}
}
