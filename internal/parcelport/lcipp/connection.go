package lcipp

import (
	"sync"

	"hpxgo/internal/lci"
	"hpxgo/internal/parcelport"
	"hpxgo/internal/serialization"
	"hpxgo/internal/wire"
)

// lconn is the per-HPX-message connection of the LCI parcelport. Unlike the
// MPI parcelport's connections it is event-driven: instead of sitting on a
// pending list to be Test-polled, it advances when its completions pop out
// of the completion queue (or its synchronizers trigger, in sy mode).
//
// A connection posts one tracked operation at a time; medium sends complete
// locally inside the post (LCI's buffered sendm) and therefore advance
// inline.
type lconn struct {
	pp   *Parcelport
	dev  *lci.Device // the replicated device this connection stripes to
	peer int
	recv bool // receiver side?

	mu       sync.Mutex
	done     bool
	waiting  bool // a tracked operation is outstanding
	released bool // sender's tag block returned to the allocator

	baseTag uint32
	tagIdx  int // follow-up messages consumed so far (receiver)

	// Sender state.
	msg          *serialization.Message
	segs         [][]byte
	segIdx       int
	headerPosted bool

	// Receiver state.
	h      parcelport.Header
	owner  *parcelport.RecvBufs // buffer owner handed to the delivered message
	trans  []byte
	nzc    []byte
	zcBufs [][]byte
	stage  int
}

// Receiver stages.
const (
	stageTrans = iota
	stageNZC
	stageZC // stageZC+k receives zero-copy chunk k
)

// --- sender ---

// newSenderConn plans the chain of LCI messages for one HPX message and
// reserves a block of distinct tags for the follow-ups.
func newSenderConn(pp *Parcelport, dst int, m *serialization.Message) *lconn {
	c := &lconn{pp: pp, peer: dst, msg: m}
	max := pp.MaxHeaderSize()
	_, piggyNZC, piggyTrans := parcelport.PlanHeader(len(m.NonZeroCopy), len(m.Transmission), max, true)
	if len(m.Transmission) > 0 && !piggyTrans {
		c.segs = append(c.segs, m.Transmission)
	}
	if !piggyNZC {
		c.segs = append(c.segs, m.NonZeroCopy)
	}
	c.segs = append(c.segs, m.ZeroCopy...)
	n := len(c.segs)
	if n == 0 {
		n = 1
	}
	c.baseTag = pp.tags.Block(n)
	c.dev, _ = pp.devFor(c.baseTag)
	return c
}

// finishSenderLocked marks a sender connection done and returns its reserved
// tag block to the allocator, exactly once, so the tags cannot be matched to
// a second live connection. Caller holds c.mu.
func (c *lconn) finishSenderLocked() {
	c.done = true
	if c.released {
		return
	}
	c.released = true
	n := len(c.segs)
	if n == 0 {
		n = 1
	}
	c.pp.tags.Release(c.baseTag, n)
}

// start sends the header and advances as far as possible.
func (c *lconn) start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return
	}
	if c.recv {
		c.advanceReceiverLocked()
		return
	}
	if !c.postHeaderLocked() {
		return // backpressured; retry list re-drives us
	}
	c.advanceSenderLocked()
}

// drive re-enters the state machine after a backpressure retry.
func (c *lconn) drive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return false
	}
	if c.recv {
		c.advanceReceiverLocked()
		return true
	}
	if !c.headerPosted {
		if !c.postHeaderLocked() {
			return false
		}
	}
	c.advanceSenderLocked()
	return true
}

// onComplete handles a completion record routed to this connection.
func (c *lconn) onComplete(req lci.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return
	}
	c.waiting = false
	if c.recv {
		c.absorbRecvLocked()
		c.advanceReceiverLocked()
	} else {
		c.advanceSenderLocked()
	}
}

// postHeaderLocked sends the header message: a dynamic put assembled in an
// LCI packet (psr) or a medium send on the header tag (sr). Returns false
// and queues a retry on backpressure.
func (c *lconn) postHeaderLocked() bool {
	pp := c.pp
	max := pp.MaxHeaderSize()
	switch pp.cfg.Protocol {
	case parcelport.PutSendRecv:
		pkt, err := c.dev.GetPacket()
		if err != nil {
			pp.addRetry(c)
			return false
		}
		n, _, _, encErr := parcelport.EncodeHeader(pkt.Data, c.baseTag, c.msg, max, true)
		if encErr != nil {
			c.dev.PutPacket(pkt)
			c.finishSenderLocked()
			return false
		}
		if err := c.dev.PutdPacket(c.peer, 0, pkt, n); err != nil {
			c.dev.PutPacket(pkt)
			if isRetry(err) {
				pp.addRetry(c)
				return false
			}
			c.finishSenderLocked()
			return false
		}
	case parcelport.SendRecv:
		need, _, _ := parcelport.PlanHeader(len(c.msg.NonZeroCopy), len(c.msg.Transmission), max, true)
		buf := wire.GetBuf(need)
		n, _, _, encErr := parcelport.EncodeHeader(buf, c.baseTag, c.msg, max, true)
		if encErr != nil {
			wire.PutBuf(buf)
			c.finishSenderLocked()
			return false
		}
		// Medium sends are buffered: locally complete on return (the fabric
		// copies the payload), so the pooled header buffer can go straight
		// back — including on error, where it was never handed off. A retry
		// re-encodes into a fresh buffer.
		err := c.dev.Sendm(c.peer, headerMsgTag, buf[:n], nil, nil)
		wire.PutBuf(buf)
		if err != nil {
			if isRetry(err) {
				pp.addRetry(c)
				return false
			}
			c.finishSenderLocked()
			return false
		}
	}
	c.headerPosted = true
	return true
}

// advanceSenderLocked posts follow-up chunks until it must wait (long send
// outstanding), hits backpressure, or finishes.
func (c *lconn) advanceSenderLocked() {
	pp := c.pp
	eager := c.dev.EagerThreshold()
	for c.segIdx < len(c.segs) && !c.waiting {
		seg := c.segs[c.segIdx]
		tag := pp.tags.Nth(c.baseTag, c.segIdx)
		if len(seg) <= eager {
			err := c.dev.Sendm(c.peer, tag, seg, nil, nil)
			if err != nil {
				if isRetry(err) {
					pp.addRetry(c)
					return
				}
				c.finishSenderLocked()
				return
			}
			c.segIdx++
			continue
		}
		comp, reg := pp.newComp()
		err := c.dev.Sendl(c.peer, tag, seg, comp, c)
		if err != nil {
			if isRetry(err) {
				pp.addRetry(c)
				return
			}
			c.finishSenderLocked()
			return
		}
		if reg != nil {
			pp.addSync(reg)
		}
		c.waiting = true
		c.segIdx++
	}
	if c.segIdx >= len(c.segs) && !c.waiting {
		c.finishSenderLocked()
		pp.stats.sent.Add(1)
		c.msg.Done()
	}
}

// --- receiver ---

// newReceiverConn is created on header arrival; h's piggybacked chunks must
// not alias a reusable buffer (the caller copies when needed). devIdx is the
// device the header arrived on; follow-ups use the same device. owner owns
// the buffers h's chunks alias plus every buffer staged later; it transfers
// to the delivered message, or is released if the connection fails.
func newReceiverConn(pp *Parcelport, devIdx, src int, h parcelport.Header, owner *parcelport.RecvBufs) *lconn {
	c := &lconn{pp: pp, dev: pp.devs[devIdx], peer: src, recv: true, h: h, baseTag: h.BaseTag, owner: owner}
	c.trans = h.Trans
	c.nzc = h.NZC
	if h.TransSize == 0 || c.trans != nil {
		c.planZC()
		if c.done {
			return c
		}
		if c.nzc != nil {
			c.stage = stageZC
		} else {
			c.stage = stageNZC
		}
	} else {
		c.stage = stageTrans
	}
	return c
}

// failRecvLocked abandons a receiver connection, releasing the buffer owner.
func (c *lconn) failRecvLocked() {
	c.done = true
	if c.owner != nil {
		c.owner.Release()
		c.owner = nil
	}
}

// planZC sizes the zero-copy receive buffers from the transmission chunk.
func (c *lconn) planZC() {
	if c.h.NumZC == 0 {
		return
	}
	sizes, err := serialization.ParseTransmissionSizes(c.trans)
	if err != nil || len(sizes) != int(c.h.NumZC) {
		c.failRecvLocked()
		return
	}
	c.zcBufs = make([][]byte, len(sizes))
	for i, sz := range sizes {
		c.zcBufs[i] = make([]byte, sz)
	}
}

// absorbRecvLocked accounts for the completion of the receive posted last.
func (c *lconn) absorbRecvLocked() {
	switch {
	case c.stage == stageTrans:
		c.planZC()
		if c.done {
			return
		}
		if c.nzc != nil {
			c.stage = stageZC
		} else {
			c.stage = stageNZC
		}
	case c.stage == stageNZC:
		c.stage = stageZC
	default:
		c.stage++
	}
}

// advanceReceiverLocked posts the receive for the current stage or delivers
// the completed message.
func (c *lconn) advanceReceiverLocked() {
	if c.waiting || c.done {
		return
	}
	pp := c.pp
	switch {
	case c.stage == stageTrans:
		c.trans = c.owner.GetBuf(int(c.h.TransSize))
		c.postRecvLocked(c.trans)
	case c.stage == stageNZC:
		c.nzc = c.owner.GetBuf(int(c.h.NZCSize))
		c.postRecvLocked(c.nzc)
	case c.stage-stageZC < len(c.zcBufs):
		c.postRecvLocked(c.zcBufs[c.stage-stageZC])
	default:
		// Hand the buffer owner to the message; the delivery chain releases
		// it once the last parcel's action finished. The zero-copy buffers
		// are plain GC allocations (they become long-lived arguments), so
		// they are not owner-tracked.
		o := c.owner
		c.owner = nil
		o.Msg = serialization.Message{NonZeroCopy: c.nzc, Transmission: c.trans, ZeroCopy: c.zcBufs, Owner: o}
		c.done = true
		pp.stats.recvd.Add(1)
		pp.deliver(&o.Msg)
	}
}

// postRecvLocked posts one follow-up receive on the next block tag, choosing
// medium or long by the expected size (mirroring the sender's choice).
func (c *lconn) postRecvLocked(buf []byte) {
	pp := c.pp
	tag := pp.tags.Nth(c.baseTag, c.tagIdx)
	comp, reg := pp.newComp()
	var err error
	if len(buf) <= c.dev.EagerThreshold() {
		err = c.dev.Recvm(c.peer, tag, buf, comp, c)
	} else {
		// Recvl's ErrRetry means "posted, under handle pressure": the
		// receive is re-queued internally and will still complete.
		if err = c.dev.Recvl(c.peer, tag, buf, comp, c); isRetry(err) {
			err = nil
		}
	}
	if err != nil {
		c.failRecvLocked()
		return
	}
	if reg != nil {
		pp.addSync(reg)
	}
	c.tagIdx++
	c.waiting = true
}
