package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hpxgo/internal/core"
)

// testService builds a started 3-locality runtime (locality 0 = client-only
// driver, 1 and 2 own the ring) with the given serve config.
func testService(t *testing.T, cfg Config) (*core.Runtime, *Service) {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{
		Localities:         3,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Aggregation:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Owners) == 0 {
		cfg.Owners = []int{1, 2}
	}
	svc, err := New(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt, svc
}

// TestServeGetPutDel: the basic lifecycle through a remote client.
func TestServeGetPutDel(t *testing.T) {
	_, svc := testService(t, Config{})
	c := svc.Client(0)
	if _, found, err := c.Get("nope"); err != nil || found {
		t.Fatalf("Get(missing) = found=%v err=%v", found, err)
	}
	if err := c.Put("k", []byte("v0")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("k")
	if err != nil || !found || string(v) != "v0" {
		t.Fatalf("Get = %q found=%v err=%v", v, found, err)
	}
	if err := c.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get("k"); string(v) != "v1" {
		t.Fatalf("Get after Put = %q, want v1", v)
	}
	if err := c.Del("k"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.Get("k"); found {
		t.Fatal("Get after Del found the key")
	}
	st := svc.Stats()
	if st.Served == 0 || st.Puts != 2 {
		t.Fatalf("service stats %+v", st)
	}
}

// TestServeCacheHitServesLocally: the second Get of a key must be a cache
// hit — no new shard call.
func TestServeCacheHitServesLocally(t *testing.T) {
	_, svc := testService(t, Config{})
	c := svc.Client(0)
	if err := c.Put("hot", []byte("x")); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	for i := 0; i < 100; i++ {
		if _, found, err := c.Get("hot"); err != nil || !found {
			t.Fatalf("Get #%d: found=%v err=%v", i, found, err)
		}
	}
	d := c.Stats()
	if calls := d.ShardCalls - before.ShardCalls; calls != 0 {
		t.Fatalf("%d shard calls for a write-through-cached key", calls)
	}
	if hits := d.CacheHits - before.CacheHits; hits != 100 {
		t.Fatalf("cache hits = %d, want 100", hits)
	}
}

// TestServeSingleFlight: a burst of concurrent Gets for one uncached key
// must issue exactly one shard call; everyone gets the value.
func TestServeSingleFlight(t *testing.T) {
	_, svc := testService(t, Config{})
	c := svc.Client(0)
	// Preload without touching the client cache.
	svc.Preload([]string{"burst"}, []byte("payload"))

	const burst = 64
	var wg sync.WaitGroup
	errs := make([]error, burst)
	vals := make([][]byte, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, found, err := c.Get("burst")
			if err == nil && !found {
				err = errors.New("not found")
			}
			vals[i], errs[i] = v, err
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("Get #%d: %v", i, errs[i])
		}
		if string(vals[i]) != "payload" {
			t.Fatalf("Get #%d = %q", i, vals[i])
		}
	}
	st := c.Stats()
	if st.ShardCalls != 1 {
		t.Fatalf("hot-miss burst of %d issued %d shard calls, want exactly 1", burst, st.ShardCalls)
	}
	if st.Coalesced == 0 {
		t.Fatal("no followers coalesced")
	}
}

// TestServeNoStaleReadAfterPut: interleave Gets of a key with Puts through
// the same client; after every Put returns, a Get must never see the
// overwritten value (write-through + version gating).
func TestServeNoStaleReadAfterPut(t *testing.T) {
	_, svc := testService(t, Config{})
	c := svc.Client(0)
	key := "coherent"
	if err := c.Put(key, []byte{0}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Background readers keep the key hot (and racing with the writer).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_, _, _ = c.Get(key)
				}
			}
		}()
	}
	for gen := byte(1); gen < 100; gen++ {
		if err := c.Put(key, []byte{gen}); err != nil {
			t.Fatal(err)
		}
		// The Put has returned: no Get may see a value older than gen.
		for i := 0; i < 5; i++ {
			v, found, err := c.Get(key)
			if err != nil || !found {
				t.Fatalf("gen %d: found=%v err=%v", gen, found, err)
			}
			if v[0] < gen {
				t.Fatalf("stale read after Put: saw gen %d after writing gen %d", v[0], gen)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestServeDelInvalidates: a cached key must not survive its deletion
// through the same client.
func TestServeDelInvalidates(t *testing.T) {
	_, svc := testService(t, Config{})
	c := svc.Client(0)
	if err := c.Put("gone", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.Get("gone"); !found {
		t.Fatal("warm-up Get missed")
	}
	if err := c.Del("gone"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.Get("gone"); found {
		t.Fatal("Get served a deleted key from cache")
	}
}

// TestServeAdmissionSheds: a shard bucket tighter than the offered load
// must shed with statusShed→ErrShed, and the shed counter must move.
func TestServeAdmissionSheds(t *testing.T) {
	_, svc := testService(t, Config{
		CacheEntries: -1, // cache off: every Get goes to the shard
		AdmitRate:    200,
		AdmitBurst:   4,
	})
	c := svc.Client(0)
	svc.Preload(KeySet(32), []byte("v"))
	keys := KeySet(32)
	var shed, ok int
	for i := 0; i < 400; i++ {
		_, found, err := c.Get(keys[i%len(keys)])
		switch {
		case errors.Is(err, ErrShed):
			shed++
		case err == nil && found:
			ok++
		case err != nil:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed == 0 {
		t.Fatalf("no sheds from a 200/s bucket under a tight loop (ok=%d)", ok)
	}
	if ok == 0 {
		t.Fatal("everything shed: bucket admits nothing")
	}
	if svc.Stats().Shed == 0 {
		t.Fatal("server shed counter did not move")
	}
}

// TestServeBackpressureSheds: MaxOutstanding=1 with concurrent misses must
// trip the client-side queue-depth bound.
func TestServeBackpressureSheds(t *testing.T) {
	_, svc := testService(t, Config{
		CacheEntries:   -1,
		MaxOutstanding: 1,
	})
	c := svc.Client(0)
	keys := KeySet(64)
	svc.Preload(keys, []byte("v"))
	var wg sync.WaitGroup
	var mu sync.Mutex
	backpressured := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, _, err := c.Get(keys[(g*50+i)%len(keys)])
				if errors.Is(err, ErrBackpressure) {
					mu.Lock()
					backpressured++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if backpressured == 0 {
		t.Fatal("MaxOutstanding=1 never backpressured 8 concurrent clients")
	}
}

// TestServeLocalOwnerFastPath: a client on an owning locality serves its
// own keys without any shard call.
func TestServeLocalOwnerFastPath(t *testing.T) {
	_, svc := testService(t, Config{})
	c1 := svc.Client(1)
	// Find a key locality 1 owns.
	var own string
	for i := 0; ; i++ {
		k := keyName(i)
		if svc.Ring().KeyOwner(k) == 1 {
			own = k
			break
		}
	}
	if err := c1.Put(own, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c1.Get(own)
	if err != nil || !found || string(v) != "mine" {
		t.Fatalf("local Get = %q found=%v err=%v", v, found, err)
	}
	st := c1.Stats()
	if st.ShardCalls != 0 {
		t.Fatalf("local-owner path issued %d shard calls", st.ShardCalls)
	}
	if st.LocalHits == 0 {
		t.Fatal("local hit counter did not move")
	}
}

// TestServeLoadSmoke: a small open-loop run completes with sane stats and
// a high hit rate on the Zipf mix.
func TestServeLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke in -short mode")
	}
	_, svc := testService(t, Config{})
	svc.Preload(KeySet(128), []byte("warm"))
	res, err := RunLoad(svc, 0, LoadParams{
		Clients: 32, Total: 2000, Keys: 128, Zipf: true,
		Rate: 50e3, Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.SplitShed != res.Offered {
		t.Fatalf("accounting: offered %d != completed %d + shed %d",
			res.Offered, res.Completed, res.SplitShed)
	}
	if res.Throughput <= 0 || res.P99Us <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.HitRate < 0.3 {
		t.Fatalf("Zipf hit rate %.2f implausibly low", res.HitRate)
	}
	// The log2-bucket estimate must bracket the exact p99 within its
	// factor-of-2 resolution.
	if res.HistP99Us > 0 && (res.HistP99Us < res.P99Us/2.1 || res.HistP99Us > res.P99Us*2.1) {
		t.Fatalf("Hist p99 %.1fµs vs exact %.1fµs outside bucket resolution", res.HistP99Us, res.P99Us)
	}
}
