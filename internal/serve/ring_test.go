package serve

import (
	"fmt"
	"testing"
)

// TestRingBalance: with enough vnodes, key ownership is roughly balanced
// across owners (within 2x of fair share for a 64-vnode ring).
func TestRingBalance(t *testing.T) {
	owners := []int{1, 2, 3, 4}
	r, err := NewRing(owners, 64)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20000
	counts := map[int]int{}
	for i := 0; i < keys; i++ {
		counts[r.KeyOwner(keyName(i))]++
	}
	fair := keys / len(owners)
	for _, o := range owners {
		if counts[o] < fair/2 || counts[o] > fair*2 {
			t.Fatalf("owner %d holds %d keys, fair share %d (counts %v)", o, counts[o], fair, counts)
		}
	}
}

// TestRingRemapFraction: removing one of N owners must remap only the keys
// that owner held (~1/N), never keys between two surviving owners — the
// consistent-hashing property that makes the shard map stable under
// membership change.
func TestRingRemapFraction(t *testing.T) {
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rAll, err := NewRing(all, 64)
	if err != nil {
		t.Fatal(err)
	}
	rLess, err := NewRing(all[:len(all)-1], 64)
	if err != nil {
		t.Fatal(err)
	}
	removed := all[len(all)-1]
	const keys = 20000
	moved := 0
	for i := 0; i < keys; i++ {
		k := keyName(i)
		before, after := rAll.KeyOwner(k), rLess.KeyOwner(k)
		if before != after {
			moved++
			if before != removed {
				t.Fatalf("key %s moved %d->%d although owner %d was the one removed", k, before, after, removed)
			}
		}
	}
	// The removed owner held ~1/8 of the keyspace; allow 2x slack.
	if frac := float64(moved) / keys; frac > 2.0/float64(len(all)) {
		t.Fatalf("removal of 1/%d owners remapped %.1f%% of keys", len(all), frac*100)
	}
}

// TestRingDeterminism: the ring is a pure function of (owners, vnodes), so
// every locality builds the identical shard map without coordination.
func TestRingDeterminism(t *testing.T) {
	a, _ := NewRing([]int{3, 1, 2}, 32)
	b, _ := NewRing([]int{3, 1, 2}, 32)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("det_%d", i)
		if a.KeyOwner(k) != b.KeyOwner(k) {
			t.Fatalf("ring not deterministic for %q", k)
		}
	}
}

// TestRingErrors: empty and duplicate owner sets are rejected.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty owner set accepted")
	}
	if _, err := NewRing([]int{1, 1}, 8); err == nil {
		t.Fatal("duplicate owner accepted")
	}
}
