package serve

import (
	"testing"

	"hpxgo/internal/core"
)

// TestServeCachedGetZeroAllocs pins the serving tier's steady-state read
// path: a cache-hit Get — hash, ring lookup, set probe, counter bump —
// must not allocate. Wired into `make check` via the alloc-gate target,
// next to the datapath zero-alloc gates it extends to the serving tier.
func TestServeCachedGetZeroAllocs(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{
		Localities:         3,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(rt, Config{Owners: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	c := svc.Client(0)
	key := "hot_key_0"
	if err := c.Put(key, []byte("value")); err != nil {
		t.Fatal(err)
	}
	// Warm: the first Get may fill; subsequent ones must hit.
	if _, found, err := c.Get(key); err != nil || !found {
		t.Fatalf("warm-up Get: found=%v err=%v", found, err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		v, found, err := c.Get(key)
		if err != nil || !found || len(v) != 5 {
			t.Fatalf("cached Get broke: %q found=%v err=%v", v, found, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cached Get allocates %.2f times per op, want 0", allocs)
	}
}

// TestTokenBucketZeroAllocs pins the admission fast path.
func TestTokenBucketZeroAllocs(t *testing.T) {
	var b tokenBucket
	b.init(1e9, 1<<30)
	now := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 10
		if !b.take(now) {
			t.Fatal("huge bucket shed")
		}
	})
	if allocs != 0 {
		t.Fatalf("bucket take allocates %.2f times per op, want 0", allocs)
	}
}
