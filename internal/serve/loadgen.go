package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"hpxgo/internal/stats"
)

// LoadParams configures one open-loop load run against a Service: Clients
// simulated closed-loop clients collectively issuing Total requests at an
// aggregate offered Rate, keys drawn Zipf or uniformly from a keyspace of
// Keys. With thousands of clients the aggregate is effectively open-loop:
// each client's requests fire on its own fixed schedule, so a slow shard
// does not slow the arrival process, and latency is measured from the
// *scheduled* arrival time — queueing delay and coordinated omission are
// in the number, not hidden by it.
type LoadParams struct {
	Clients    int     // simulated clients (goroutines) on the driver locality
	Rate       float64 // aggregate offered ops/s (0 = no pacing: closed-loop max throughput)
	Total      int     // total requests across all clients
	Keys       int     // keyspace size (key_%08d)
	Zipf       bool    // Zipf(S) key popularity; false = uniform
	ZipfS      float64 // Zipf skew (default 1.2)
	GetFrac    float64 // fraction of GETs, rest PUTs (default 0.95)
	ValueBytes int     // PUT value size (default 64)
	Seed       int64   // rng seed (per-client streams derive from it)
	Timeout    time.Duration
}

func (p *LoadParams) fillDefaults() {
	if p.Clients <= 0 {
		p.Clients = 256
	}
	if p.Total <= 0 {
		p.Total = 10000
	}
	if p.Keys <= 0 {
		p.Keys = 1024
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 1.2
	}
	if p.GetFrac <= 0 || p.GetFrac > 1 {
		p.GetFrac = 0.95
	}
	if p.ValueBytes <= 0 {
		p.ValueBytes = 64
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Timeout <= 0 {
		p.Timeout = 5 * time.Minute
	}
}

// LoadResult is one load run's outcome. Latency percentiles are over
// completed (non-shed) requests, in microseconds, measured from each
// request's scheduled arrival; HistP99Us is the log2-bucket estimate from
// stats.Hist.Percentile over the same stream (the approximation hot paths
// can afford), reported next to the exact value to keep it honest.
type LoadResult struct {
	Elapsed    time.Duration
	Offered    int     // requests issued (scheduled)
	Completed  int     // requests that returned a result (incl. not-found)
	SplitShed  int     // requests shed (ErrShed / ErrBackpressure)
	Errors     int     // other failures (timeouts, transport errors)
	Throughput float64 // Completed / Elapsed, ops/s

	P50Us     float64
	P99Us     float64
	P999Us    float64
	MaxUs     float64
	HistP99Us float64

	HitRate  float64 // cache hits / GETs that could have hit (remote GETs)
	Client   ClientStats
	ShedFrac float64 // SplitShed / Offered
}

// keyName formats key i. Keys are preformatted once per run, so the issue
// loop does no formatting.
func keyName(i int) string { return fmt.Sprintf("key_%08d", i) }

// KeySet returns the n-key keyspace the generator draws from.
func KeySet(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = keyName(i)
	}
	return ks
}

// RunLoad drives the service from driver's client. The service's runtime
// must be started and the keyspace preloaded (Service.Preload) if GETs are
// expected to hit.
func RunLoad(svc *Service, driver int, p LoadParams) (LoadResult, error) {
	p.fillDefaults()
	client := svc.Client(driver)
	before := client.Stats()
	keys := KeySet(p.Keys)
	value := make([]byte, p.ValueBytes)
	for i := range value {
		value[i] = byte(i)
	}

	perClient := p.Total / p.Clients
	if perClient == 0 {
		perClient = 1
		p.Clients = p.Total
	}
	total := perClient * p.Clients

	// Client c issues its i-th request at slot i*Clients+c of the global
	// schedule; at aggregate rate R the slot interval is 1/R.
	var slotNs float64
	if p.Rate > 0 {
		slotNs = 1e9 / p.Rate
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []float64 // µs, completed requests only
		shed      int
		errs      int
		firstErr  error
	)
	hist := &stats.Hist{}
	start := time.Now()
	deadline := start.Add(p.Timeout)
	for c := 0; c < p.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(c)*7919))
			var zipf *rand.Zipf
			if p.Zipf {
				zipf = rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Keys-1))
			}
			lats := make([]float64, 0, perClient)
			myShed, myErrs := 0, 0
			var myFirstErr error
			for i := 0; i < perClient; i++ {
				var sched time.Time
				if slotNs > 0 {
					sched = start.Add(time.Duration(float64(i*p.Clients+c) * slotNs))
					for {
						now := time.Now()
						if !now.Before(sched) {
							break
						}
						if wait := sched.Sub(now); wait > 200*time.Microsecond {
							time.Sleep(wait - 100*time.Microsecond)
						} else {
							runtime.Gosched()
						}
					}
				} else {
					sched = time.Now()
				}
				if time.Now().After(deadline) {
					myErrs += perClient - i
					if myFirstErr == nil {
						myFirstErr = fmt.Errorf("serve: load run exceeded timeout %s", p.Timeout)
					}
					break
				}
				var k int
				if zipf != nil {
					k = int(zipf.Uint64())
				} else {
					k = rng.Intn(p.Keys)
				}
				var err error
				if rng.Float64() < p.GetFrac {
					_, _, err = client.Get(keys[k])
				} else {
					err = client.Put(keys[k], value)
				}
				if err != nil {
					if errors.Is(err, ErrShed) || errors.Is(err, ErrBackpressure) {
						myShed++
					} else {
						myErrs++
						if myFirstErr == nil {
							myFirstErr = err
						}
					}
					continue
				}
				us := float64(time.Since(sched)) / 1e3
				lats = append(lats, us)
				hist.Observe(int(us))
			}
			mu.Lock()
			latencies = append(latencies, lats...)
			shed += myShed
			errs += myErrs
			if firstErr == nil {
				firstErr = myFirstErr
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := client.Stats()
	delta := ClientStats{
		CacheHits:  after.CacheHits - before.CacheHits,
		LocalHits:  after.LocalHits - before.LocalHits,
		ShardCalls: after.ShardCalls - before.ShardCalls,
		Coalesced:  after.Coalesced - before.Coalesced,
		Shed:       after.Shed - before.Shed,
		Puts:       after.Puts - before.Puts,
	}
	res := LoadResult{
		Elapsed:   elapsed,
		Offered:   total,
		Completed: len(latencies),
		SplitShed: shed,
		Errors:    errs,
		P50Us:     stats.Percentile(latencies, 50),
		P99Us:     stats.Percentile(latencies, 99),
		P999Us:    stats.Percentile(latencies, 99.9),
		MaxUs:     stats.Percentile(latencies, 100),
		HistP99Us: hist.Percentile(99),
		Client:    delta,
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Completed) / elapsed.Seconds()
	}
	if total > 0 {
		res.ShedFrac = float64(shed) / float64(total)
	}
	remoteGets := delta.CacheHits + delta.ShardCalls + delta.Coalesced
	if remoteGets > 0 {
		res.HitRate = float64(delta.CacheHits) / float64(remoteGets)
	}
	if errs > 0 && firstErr != nil {
		return res, fmt.Errorf("serve: load run saw %d errors, first: %w", errs, firstErr)
	}
	return res, nil
}
