package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/fabric"
)

// chaosFabric mirrors the core chaos suite's lossy interconnect: every
// fault class active, retransmission tuned for a 1-CPU CI host.
func chaosFabric(drop float64, seed int64) fabric.Config {
	return fabric.Config{
		LatencyNs:   200,
		GbitsPerSec: 100,
		Rails:       2,
		Faults: fabric.FaultConfig{
			DropProb:    drop,
			DupProb:     0.01,
			CorruptProb: 0.01,
			SpikeProb:   0.005,
			SpikeNs:     20_000,
			Seed:        seed,
		},
		RetransmitTimeoutNs: 200_000,
		AckDelayNs:          50_000,
		RetryBudget:         50,
	}
}

// TestServeChaosExactlyOnceWrites drives the KV tier over a dropping,
// duplicating, corrupting fabric and verifies the serving-tier guarantee
// on top of the ARQ's: every Put is applied exactly once (per-key write
// versions equal the writes issued — a duplicated PUT parcel would double
// them), and every subsequent Get observes the last written generation.
func TestServeChaosExactlyOnceWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	rt, err := core.NewRuntime(core.Config{
		Localities:         3,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Aggregation:        true,
		Fabric:             chaosFabric(0.02, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(rt, Config{Owners: []int{1, 2}, CallTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	c := svc.Client(0)
	const keys = 32
	const gens = 8
	var wg sync.WaitGroup
	errCh := make(chan error, keys)
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("chaos_%d", k)
			for g := 1; g <= gens; g++ {
				if err := c.Put(key, []byte{byte(g)}); err != nil {
					errCh <- fmt.Errorf("put %s gen %d: %w", key, g, err)
					return
				}
				v, found, err := c.Get(key)
				if err != nil || !found {
					errCh <- fmt.Errorf("get %s gen %d: found=%v err=%w", key, g, found, err)
					return
				}
				if v[0] != byte(g) {
					errCh <- fmt.Errorf("get %s: generation %d, want %d", key, v[0], g)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Exactly-once application: each key was written exactly gens times, so
	// its store version must be exactly gens — a duplicate-delivered PUT
	// would overshoot, a dropped-but-acked one would undershoot.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("chaos_%d", k)
		h := hashKey(key)
		owner := svc.Ring().Owner(h)
		_, ver, ok := svc.stores[owner].get(key, h)
		if !ok {
			t.Fatalf("%s lost", key)
		}
		if ver != gens {
			t.Fatalf("%s version %d after %d writes (duplicate or lost application)", key, ver, gens)
		}
	}

	// The faults must actually have fired for this to mean anything.
	st := rt.Network().Device(0).Stats()
	if st.Retransmits == 0 {
		t.Fatal("chaos run saw no retransmissions: faults inactive?")
	}
}

// TestServeChaosLoad: the open-loop generator survives a lossy fabric; no
// non-shed errors escape and the run completes.
func TestServeChaosLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	rt, err := core.NewRuntime(core.Config{
		Localities:         3,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Aggregation:        true,
		Fabric:             chaosFabric(0.01, 11),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(rt, Config{Owners: []int{1, 2}, CallTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	svc.Preload(KeySet(64), []byte("chaos"))
	res, err := RunLoad(svc, 0, LoadParams{
		Clients: 16, Total: 800, Keys: 64, Zipf: true,
		Rate: 20e3, Timeout: 2 * time.Minute,
	})
	if err != nil && !errors.Is(err, ErrShed) {
		t.Fatalf("load under chaos: %v (result %+v)", err, res)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed under chaos")
	}
}
