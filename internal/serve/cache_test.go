package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheHitAfterInstall: basic install → lookup → value/version match.
func TestCacheHitAfterInstall(t *testing.T) {
	c := newCache(64)
	k := "alpha"
	h := hashKey(k)
	if _, _, ok := c.lookup(k, h); ok {
		t.Fatal("hit before install")
	}
	c.install(k, h, []byte("v1"), 1, false)
	v, ver, ok := c.lookup(k, h)
	if !ok || string(v) != "v1" || ver != 1 {
		t.Fatalf("lookup = %q v%d ok=%v, want v1 v1 true", v, ver, ok)
	}
}

// TestCacheVersionGate: an install carrying an older version than the
// cached entry must be dropped — the property that makes write-through
// safe against slow in-flight fills.
func TestCacheVersionGate(t *testing.T) {
	c := newCache(64)
	k := "beta"
	h := hashKey(k)
	c.install(k, h, []byte("new"), 5, false)
	c.install(k, h, []byte("stale"), 3, false) // late fill from version 3
	v, ver, ok := c.lookup(k, h)
	if !ok || string(v) != "new" || ver != 5 {
		t.Fatalf("stale install won: %q v%d ok=%v", v, ver, ok)
	}
	if got := c.Stats().StaleSkip; got != 1 {
		t.Fatalf("StaleSkip = %d, want 1", got)
	}
	// Equal-or-newer installs do replace.
	c.install(k, h, []byte("newer"), 5, false)
	if v, _, _ := c.lookup(k, h); string(v) != "newer" {
		t.Fatalf("equal-version install dropped: %q", v)
	}
}

// TestCacheTombstoneFloor: after invalidate(floor), lookups miss and an
// older fill cannot resurrect the key; a fill at/above the floor revives it.
func TestCacheTombstoneFloor(t *testing.T) {
	c := newCache(64)
	k := "gamma"
	h := hashKey(k)
	c.install(k, h, []byte("old"), 2, false)
	c.invalidate(k, h, 3)
	if _, _, ok := c.lookup(k, h); ok {
		t.Fatal("hit through tombstone")
	}
	c.install(k, h, []byte("zombie"), 2, false) // pre-delete fill
	if _, _, ok := c.lookup(k, h); ok {
		t.Fatal("stale fill resurrected a deleted key")
	}
	c.install(k, h, []byte("fresh"), 3, false)
	if v, _, ok := c.lookup(k, h); !ok || string(v) != "fresh" {
		t.Fatalf("post-floor fill rejected: %q ok=%v", v, ok)
	}
}

// TestCacheEviction: filling far past capacity evicts, never errors, and
// the cache keeps serving (CLOCK finds victims even with all bits set).
func TestCacheEviction(t *testing.T) {
	c := newCache(64)
	n := c.Capacity() * 4
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("evict_%d", i)
		c.install(k, hashKey(k), []byte{byte(i)}, 1, false)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions after 4x-capacity fill")
	}
	live := 0
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("evict_%d", i)
		if _, _, ok := c.lookup(k, hashKey(k)); ok {
			live++
		}
	}
	if live == 0 || live > c.Capacity() {
		t.Fatalf("%d live entries after overfill (capacity %d)", live, c.Capacity())
	}
}

// TestCacheHotKeySurvivesScan: a hot key (touched between installs) must
// survive a scan of cold keys through its set — the CLOCK second chance.
func TestCacheHotKeySurvivesScan(t *testing.T) {
	c := newCache(cacheWays) // one set: worst case for scan resistance
	hot := "hot"
	hh := hashKey(hot)
	c.install(hot, hh, []byte("H"), 1, false)
	for i := 0; i < cacheWays*3; i++ {
		k := fmt.Sprintf("cold_%d", i)
		c.install(k, hashKey(k), []byte{1}, 1, false)
		// Touch the hot key between cold installs, as a skewed workload does.
		if _, _, ok := c.lookup(hot, hh); !ok {
			t.Fatalf("hot key evicted after %d cold installs", i+1)
		}
	}
}

// TestCacheConcurrent: readers and writers hammer overlapping keys under
// -race; every hit must observe a (value, version) pair that was actually
// installed for that key (values encode their version).
func TestCacheConcurrent(t *testing.T) {
	c := newCache(256)
	const keys = 64
	const writers = 4
	const readers = 4
	const opsPerWriter = 2000
	var wrong atomic.Int64
	stop := make(chan struct{})
	kname := make([]string, keys)
	khash := make([]uint64, keys)
	for i := range kname {
		kname[i] = fmt.Sprintf("cc_%d", i)
		khash[i] = hashKey(kname[i])
	}
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 1; i <= opsPerWriter; i++ {
				k := (w + i) % keys
				ver := uint64(i)
				val := []byte(fmt.Sprintf("%s@%d", kname[k], ver))
				c.install(kname[k], khash[k], val, ver, false)
			}
		}(w)
	}
	var readWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			i := r
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % keys
				i++
				v, ver, ok := c.lookup(kname[k], khash[k])
				if !ok {
					continue
				}
				want := fmt.Sprintf("%s@%d", kname[k], ver)
				if string(v) != want {
					wrong.Add(1)
				}
			}
		}(r)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d torn (value, version) pairs observed", n)
	}
}
