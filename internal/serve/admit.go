package serve

import (
	"sync/atomic"
)

// Admission control has two layers, both designed to shed load *before* the
// tail collapses rather than to queue it:
//
//   - a server-side token bucket (tokenBucket) on every shard, bounding the
//     request rate one locality accepts: requests beyond rate+burst are
//     answered with statusShed immediately, which costs one tiny reply
//     parcel instead of an unbounded stay in the run queue;
//   - a client-side queue-depth bound (the outstanding gauge in Client),
//     capping in-flight requests per destination shard: when a shard slows
//     down, new requests to it fail fast with ErrBackpressure instead of
//     piling onto the wire.
//
// Both are lock-free and allocation-free: the bucket is a GCRA (virtual
// scheduling) cell — one CAS on a theoretical-arrival-time word — and the
// gauge is an atomic counter per destination.

// tokenBucket is a GCRA-form token bucket: tat holds the theoretical
// arrival time (ns) of the next conforming request. A request conforms if
// admitting it keeps tat within burst×interval of now. Zero rate means
// admission is disabled and take always succeeds.
type tokenBucket struct {
	intervalNs int64 // 1e9 / rate; 0 = unlimited
	burstNs    int64 // burst tolerance in ns (burst * intervalNs)
	tat        atomic.Int64
}

// initBucket configures the bucket for rate requests/second with the given
// burst (minimum 1 when rate is set).
func (b *tokenBucket) init(rate float64, burst int) {
	if rate <= 0 {
		b.intervalNs = 0
		return
	}
	b.intervalNs = int64(1e9 / rate)
	if b.intervalNs < 1 {
		b.intervalNs = 1
	}
	if burst < 1 {
		burst = 1
	}
	b.burstNs = int64(burst) * b.intervalNs
}

// take admits or sheds one request at time nowNs (monotonic nanoseconds).
// Lock-free: one CAS loop over the tat word, no allocation.
func (b *tokenBucket) take(nowNs int64) bool {
	if b.intervalNs == 0 {
		return true
	}
	for {
		tat := b.tat.Load()
		base := tat
		if nowNs > base {
			base = nowNs
		}
		newTat := base + b.intervalNs
		if newTat-nowNs > b.burstNs {
			return false
		}
		if b.tat.CompareAndSwap(tat, newTat) {
			return true
		}
	}
}
