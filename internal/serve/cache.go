package serve

import (
	"sync"
	"sync/atomic"
)

// cacheWays is the set associativity: a key probes exactly one set of this
// many slots, so a Lookup is a bounded scan of atomic pointer loads.
const cacheWays = 8

// cacheEntry is one immutable cached (key, value, version) binding. Only
// the CLOCK reference bit mutates after publication, so readers never need
// a lock: they load the slot pointer and read frozen fields. A tombstone
// (tomb == true) remembers the version floor of an invalidated key so a
// slow in-flight fill holding an older version cannot resurrect stale data
// after a Del (see Cache.install).
type cacheEntry struct {
	key  string
	val  []byte
	ver  uint64
	tomb bool
	ref  atomic.Uint32 // CLOCK "recently used" bit
}

// cacheSet is one associativity set: cacheWays atomically-published slots
// plus the writer-side CLOCK hand. Readers touch only the slots; writers
// (install, invalidate) serialize on mu.
type cacheSet struct {
	mu    sync.Mutex
	slots [cacheWays]atomic.Pointer[cacheEntry]
	hand  uint32
	_     [24]byte // keep neighbouring sets off one another's cache line
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Installs  uint64
	Evictions uint64
	StaleSkip uint64 // installs dropped because a newer version was cached
}

// Cache is the per-locality hot-key cache: a set-associative hash table
// with lock-free, allocation-free reads and CLOCK (second-chance) eviction,
// the classic scan-resistant LRU approximation. The read path is the one
// that must survive "millions of users": a hit is a hash, at most cacheWays
// atomic loads and one atomic bit store — no locks, no allocation (gated by
// TestServeCachedGetZeroAllocs in the alloc-gate).
//
// Entries are versioned by the shard's per-key write version. install is
// last-writer-wins by version, never by arrival order: a fill racing a
// write-through can only lose to it, so a Get after a completed Put through
// the same client never observes the overwritten value (property-tested in
// cache_test.go).
type Cache struct {
	sets []cacheSet
	mask uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	installs  atomic.Uint64
	evictions atomic.Uint64
	staleSkip atomic.Uint64
}

// newCache builds a cache with at least capacity entries (rounded up to a
// power-of-two set count). capacity <= 0 returns nil: a nil *Cache is the
// "caching disabled" configuration and every method tolerates it.
func newCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	nsets := 1
	for nsets*cacheWays < capacity {
		nsets <<= 1
	}
	return &Cache{sets: make([]cacheSet, nsets), mask: uint64(nsets - 1)}
}

// setFor picks the set for hash h. The set index mixes the high bits so
// ring placement (which consumes the raw hash) and set choice decorrelate.
func (c *Cache) setFor(h uint64) *cacheSet {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return &c.sets[h&c.mask]
}

// lookup returns the cached value and version for key, if present and not
// a tombstone. Lock-free and allocation-free; marks the entry recently
// used for the CLOCK hand.
func (c *Cache) lookup(key string, h uint64) (val []byte, ver uint64, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	set := c.setFor(h)
	for i := range set.slots {
		e := set.slots[i].Load()
		if e != nil && e.key == key {
			if e.tomb {
				break // invalidated: a miss that remembers its version floor
			}
			if e.ref.Load() == 0 {
				e.ref.Store(1)
			}
			c.hits.Add(1)
			return e.val, e.ver, true
		}
	}
	c.misses.Add(1)
	return nil, 0, false
}

// install publishes (key, val, ver). If the key is already cached — live or
// tombstoned — the entry is replaced only when ver is at least as new, so a
// slow fill cannot clobber a fresher write-through. New keys evict CLOCK's
// victim: the first slot whose reference bit is clear, clearing bits as the
// hand sweeps (every entry gets one second chance).
func (c *Cache) install(key string, h uint64, val []byte, ver uint64, tomb bool) {
	if c == nil {
		return
	}
	set := c.setFor(h)
	// New entries start with the reference bit CLEAR: an entry earns its
	// second chance by being hit, so one-shot keys (a uniform scan) evict
	// before a hot key that is touched between installs. This is what makes
	// CLOCK scan-resistant here (TestCacheHotKeySurvivesScan).
	ne := &cacheEntry{key: key, val: val, ver: ver, tomb: tomb}
	set.mu.Lock()
	defer set.mu.Unlock()
	// Same key present: version-gated replace.
	var victim *atomic.Pointer[cacheEntry]
	for i := range set.slots {
		e := set.slots[i].Load()
		if e == nil {
			if victim == nil {
				victim = &set.slots[i]
			}
			continue
		}
		if e.key == key {
			if ver < e.ver {
				c.staleSkip.Add(1)
				return
			}
			set.slots[i].Store(ne)
			c.installs.Add(1)
			return
		}
	}
	if victim == nil {
		// CLOCK sweep: at most two laps (first clears bits, second must find
		// a clear one).
		for lap := 0; lap < 2*cacheWays; lap++ {
			i := set.hand % cacheWays
			set.hand++
			e := set.slots[i].Load()
			if e == nil || e.ref.Load() == 0 {
				victim = &set.slots[i]
				break
			}
			e.ref.Store(0)
		}
		if victim == nil { // all bits re-set concurrently: evict at the hand
			victim = &set.slots[set.hand%cacheWays]
			set.hand++
		}
		c.evictions.Add(1)
	}
	victim.Store(ne)
	c.installs.Add(1)
}

// invalidate drops key from the cache, leaving a tombstone carrying the
// version floor: lookups miss, and only an install with ver >= floor (a
// fill that has seen the invalidating write, or a newer one) revives the
// key.
func (c *Cache) invalidate(key string, h uint64, floor uint64) {
	if c == nil {
		return
	}
	c.install(key, h, nil, floor, true)
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Installs:  c.installs.Load(),
		Evictions: c.evictions.Load(),
		StaleSkip: c.staleSkip.Load(),
	}
}

// Capacity returns the entry capacity (0 for a nil cache).
func (c *Cache) Capacity() int {
	if c == nil {
		return 0
	}
	return len(c.sets) * cacheWays
}
