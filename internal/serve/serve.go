package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hpxgo/internal/core"
)

// Wire status codes of the shard reply header (1 status byte + 8 version
// bytes, then the value for a found GET).
const (
	statusOK       = 0
	statusNotFound = 1
	statusShed     = 2
)

// ErrShed is returned when the owning shard's token bucket rejected the
// request (server-side admission control).
var ErrShed = errors.New("serve: shed by shard admission control")

// ErrBackpressure is returned when the client's queue-depth bound for the
// destination shard is reached (client-side backpressure): the request was
// never sent.
var ErrBackpressure = errors.New("serve: destination shard backpressured")

// ErrTimeout is returned when a shard call exceeded Config.CallTimeout.
var ErrTimeout = errors.New("serve: shard call timed out")

// Config tunes one Service.
type Config struct {
	// Owners lists the shard-owning localities. Empty means every locality
	// owns a slice of the ring; a load-generator locality is usually left
	// out so all its traffic is remote.
	Owners []int
	// VNodes is the number of consistent-hash points per owner (default 64).
	VNodes int
	// CacheEntries sizes each client's hot-key cache (rounded up to a
	// power-of-two set count). Zero selects the default (4096); negative
	// disables both the cache and single-flight coalescing — the
	// "cache-off" baseline the serving benchmark gates against.
	CacheEntries int
	// StoreStripes stripes each shard's map (default 16).
	StoreStripes int
	// AdmitRate is the per-shard token-bucket rate in requests/second
	// (0 = admission disabled).
	AdmitRate float64
	// AdmitBurst is the bucket depth in requests (default 64 when AdmitRate
	// is set).
	AdmitBurst int
	// MaxOutstanding bounds in-flight requests per (client, shard) pair;
	// above it Get/Put fail fast with ErrBackpressure (default 256).
	MaxOutstanding int
	// CallTimeout bounds one shard call (default 30s).
	CallTimeout time.Duration
}

func (c *Config) fillDefaults(localities int) {
	if len(c.Owners) == 0 {
		c.Owners = make([]int, localities)
		for i := range c.Owners {
			c.Owners[i] = i
		}
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.StoreStripes <= 0 {
		c.StoreStripes = 16
	}
	if c.AdmitBurst <= 0 {
		c.AdmitBurst = 64
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 256
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
}

// storeVal is one key's current binding: an immutable value slice plus the
// per-key write version (1 on first write). Versions order write-throughs
// against in-flight fills in the client cache and prove exactly-once write
// application under fault chaos (chaos_test.go).
type storeVal struct {
	val []byte
	ver uint64
}

// storeStripe is one lock stripe of a shard store.
type storeStripe struct {
	mu sync.RWMutex
	m  map[string]storeVal
}

// store is one locality's shard: a striped map plus the admission bucket
// and the served/shed counters.
type store struct {
	stripes []storeStripe
	bucket  tokenBucket
	served  atomic.Uint64
	shed    atomic.Uint64
	puts    atomic.Uint64
}

func newStore(stripes int) *store {
	s := &store{stripes: make([]storeStripe, stripes)}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string]storeVal)
	}
	return s
}

func (s *store) stripe(h uint64) *storeStripe {
	return &s.stripes[h%uint64(len(s.stripes))]
}

func (s *store) get(key string, h uint64) ([]byte, uint64, bool) {
	st := s.stripe(h)
	st.mu.RLock()
	sv, ok := st.m[key]
	st.mu.RUnlock()
	return sv.val, sv.ver, ok
}

// put stores a private copy of val and returns the new version.
func (s *store) put(key string, h uint64, val []byte) uint64 {
	cp := make([]byte, len(val))
	copy(cp, val)
	st := s.stripe(h)
	st.mu.Lock()
	sv := st.m[key]
	sv.ver++
	sv.val = cp
	st.m[key] = sv
	st.mu.Unlock()
	s.puts.Add(1)
	return sv.ver
}

// del removes key, returning the version the deletion supersedes + 1 (the
// floor a cache tombstone must carry so older fills cannot resurrect it).
func (s *store) del(key string, h uint64) uint64 {
	st := s.stripe(h)
	st.mu.Lock()
	sv, ok := st.m[key]
	var ver uint64
	if ok {
		ver = sv.ver + 1
		delete(st.m, key)
	}
	st.mu.Unlock()
	return ver
}

// keys returns the number of live keys (tests, stats).
func (s *store) keys() int {
	n := 0
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		n += len(s.stripes[i].m)
		s.stripes[i].mu.RUnlock()
	}
	return n
}

// ServiceStats aggregates server-side counters across all shards.
type ServiceStats struct {
	Served uint64 // requests admitted and executed
	Shed   uint64 // requests rejected by the token bucket
	Puts   uint64 // writes applied
	Keys   int    // live keys across all shards
}

// Service is the sharded KV tier bound to one runtime: the ring, one shard
// store per owning locality, one client per locality, and the three
// registered actions (__serve_get/__serve_put/__serve_del). Build it with
// New before Runtime.Start (action registration seals then).
type Service struct {
	rt      *core.Runtime
	cfg     Config
	ring    *Ring
	isOwner []bool
	stores  []*store // indexed by locality id; nil for non-owners
	clients []*Client
	epoch   time.Time

	getID, putID, delID uint32
}

// New registers the service's actions on rt and builds the shard stores and
// per-locality clients. Must run before rt.Start.
func New(rt *core.Runtime, cfg Config) (*Service, error) {
	cfg.fillDefaults(rt.Localities())
	ring, err := NewRing(cfg.Owners, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	s := &Service{
		rt:      rt,
		cfg:     cfg,
		ring:    ring,
		isOwner: make([]bool, rt.Localities()),
		stores:  make([]*store, rt.Localities()),
		epoch:   time.Now(),
	}
	for _, o := range cfg.Owners {
		if o < 0 || o >= rt.Localities() {
			return nil, fmt.Errorf("serve: owner %d out of range (localities %d)", o, rt.Localities())
		}
		s.isOwner[o] = true
		st := newStore(cfg.StoreStripes)
		st.bucket.init(cfg.AdmitRate, cfg.AdmitBurst)
		s.stores[o] = st
	}
	s.clients = make([]*Client, rt.Localities())
	for i := range s.clients {
		s.clients[i] = &Client{
			svc:         s,
			loc:         rt.Locality(i),
			cache:       newCache(cfg.CacheEntries),
			flights:     make(map[string]*flight),
			outstanding: make([]atomic.Int64, rt.Localities()),
		}
	}
	// The shard actions are inline-hinted: each is a striped-lock map probe
	// plus a token-bucket CAS — small, non-blocking, and faster to run on
	// the draining goroutine than to hand off to a spawned task.
	if s.getID, err = rt.RegisterInlineAction("__serve_get", s.actGet); err != nil {
		return nil, err
	}
	if s.putID, err = rt.RegisterInlineAction("__serve_put", s.actPut); err != nil {
		return nil, err
	}
	if s.delID, err = rt.RegisterInlineAction("__serve_del", s.actDel); err != nil {
		return nil, err
	}
	return s, nil
}

// nowNs is the monotonic clock the admission buckets run on.
func (s *Service) nowNs() int64 { return int64(time.Since(s.epoch)) }

// Ring exposes the hash ring (stats, tests).
func (s *Service) Ring() *Ring { return s.ring }

// Client returns locality i's client handle.
func (s *Service) Client(i int) *Client { return s.clients[i] }

// Stats aggregates the server-side counters.
func (s *Service) Stats() ServiceStats {
	var st ServiceStats
	for _, sh := range s.stores {
		if sh == nil {
			continue
		}
		st.Served += sh.served.Load()
		st.Shed += sh.shed.Load()
		st.Puts += sh.puts.Load()
		st.Keys += sh.keys()
	}
	return st
}

// Preload writes key→val bindings straight into the owning shard stores,
// bypassing the network (benchmark setup). Values are copied. Safe only
// before load is applied.
func (s *Service) Preload(keys []string, val []byte) {
	for _, k := range keys {
		h := hashKey(k)
		st := s.stores[s.ring.Owner(h)]
		st.put(k, h, val)
	}
}

// shedReply is the preallocated statusShed reply header. Immutable;
// shared across all shed responses so shedding under overload costs no
// allocation beyond the reply parcel itself.
var shedReply = [][]byte{{statusShed, 0, 0, 0, 0, 0, 0, 0, 0}}

// replyHeader encodes status+version.
func replyHeader(status byte, ver uint64) []byte {
	hdr := make([]byte, 9)
	hdr[0] = status
	binary.LittleEndian.PutUint64(hdr[1:], ver)
	return hdr
}

// actGet serves __serve_get: args[0] = key. Reply: [status|ver] (+ value
// when found). Admission runs first so an overloaded shard sheds at one
// token-bucket CAS per rejected request.
func (s *Service) actGet(loc *core.Locality, args [][]byte) [][]byte {
	st := s.stores[loc.ID()]
	if st == nil || len(args) < 1 {
		return [][]byte{replyHeader(statusNotFound, 0)}
	}
	if !st.bucket.take(s.nowNs()) {
		st.shed.Add(1)
		return shedReply
	}
	st.served.Add(1)
	h := hashKey(string(args[0]))
	val, ver, ok := st.get(string(args[0]), h)
	if !ok {
		return [][]byte{replyHeader(statusNotFound, 0)}
	}
	return [][]byte{replyHeader(statusOK, ver), val}
}

// actPut serves __serve_put: args[0] = key, args[1] = value. Reply:
// [status|newVersion].
func (s *Service) actPut(loc *core.Locality, args [][]byte) [][]byte {
	st := s.stores[loc.ID()]
	if st == nil || len(args) < 2 {
		return [][]byte{replyHeader(statusNotFound, 0)}
	}
	if !st.bucket.take(s.nowNs()) {
		st.shed.Add(1)
		return shedReply
	}
	st.served.Add(1)
	key := string(args[0])
	ver := st.put(key, hashKey(key), args[1])
	return [][]byte{replyHeader(statusOK, ver)}
}

// actDel serves __serve_del: args[0] = key. Reply: [status|floorVersion].
func (s *Service) actDel(loc *core.Locality, args [][]byte) [][]byte {
	st := s.stores[loc.ID()]
	if st == nil || len(args) < 1 {
		return [][]byte{replyHeader(statusNotFound, 0)}
	}
	if !st.bucket.take(s.nowNs()) {
		st.shed.Add(1)
		return shedReply
	}
	st.served.Add(1)
	key := string(args[0])
	ver := st.del(key, hashKey(key))
	if ver == 0 {
		return [][]byte{replyHeader(statusNotFound, 0)}
	}
	return [][]byte{replyHeader(statusOK, ver)}
}

// flight is one in-flight shard GET that followers piggyback on: the
// single-flight slot. The leader fills val/ver/err and closes done.
type flight struct {
	done chan struct{}
	val  []byte
	ver  uint64
	ok   bool // found
	err  error
}

// ClientStats snapshots a client's counters.
type ClientStats struct {
	CacheHits  uint64
	LocalHits  uint64 // keys owned by this locality, served off the local store
	ShardCalls uint64 // remote GET fills actually issued
	Coalesced  uint64 // GETs absorbed by an in-flight fill (single-flight)
	Shed       uint64 // ErrShed + ErrBackpressure outcomes
	Puts       uint64
}

// Client is one locality's handle on the service: the hot-key cache, the
// single-flight table and the per-destination outstanding gauges. Safe for
// concurrent use by any number of goroutines on its locality.
type Client struct {
	svc         *Service
	loc         *core.Locality
	cache       *Cache
	fmu         sync.Mutex
	flights     map[string]*flight
	outstanding []atomic.Int64

	cacheHits  atomic.Uint64
	localHits  atomic.Uint64
	shardCalls atomic.Uint64
	coalesced  atomic.Uint64
	shed       atomic.Uint64
	puts       atomic.Uint64
}

// Get returns the value bound to key. The fast path — a cache hit — is
// lock-free and allocation-free. Misses coalesce: concurrent Gets of the
// same missing key issue exactly one shard call (single-flight), and every
// caller shares its result. found is false for unknown keys. The returned
// slice is shared and must not be mutated.
func (c *Client) Get(key string) (val []byte, found bool, err error) {
	h := hashKey(key)
	owner := c.svc.ring.Owner(h)
	if owner == c.loc.ID() {
		// Locally-owned key: straight off the shard store. No cache — the
		// store read is already one striped RLock away.
		val, _, ok := c.svc.stores[owner].get(key, h)
		c.localHits.Add(1)
		return val, ok, nil
	}
	if v, _, ok := c.cache.lookup(key, h); ok {
		c.cacheHits.Add(1)
		return v, true, nil
	}
	if c.cache == nil {
		// Cache-off baseline: no coalescing either; every miss is a call.
		return c.fill(key, h, owner)
	}
	// Single-flight: the first misser becomes the leader, everyone else
	// parks on its flight.
	c.fmu.Lock()
	if f, inflight := c.flights[key]; inflight {
		c.fmu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-f.done:
		case <-time.After(c.svc.cfg.CallTimeout):
			return nil, false, ErrTimeout
		}
		return f.val, f.ok, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.fmu.Unlock()

	// fill installs the result into the cache itself (version-gated), so
	// followers arriving after the flight closes hit directly.
	f.val, f.ok, f.err = c.fill(key, h, owner)
	c.fmu.Lock()
	delete(c.flights, key)
	c.fmu.Unlock()
	close(f.done)
	return f.val, f.ok, f.err
}

// fill issues the remote GET to owner and installs the result into the
// cache. Admission: fails fast with ErrBackpressure when the destination's
// outstanding bound is hit, maps a statusShed reply to ErrShed.
func (c *Client) fill(key string, h uint64, owner int) ([]byte, bool, error) {
	g := &c.outstanding[owner]
	if g.Add(1) > int64(c.svc.cfg.MaxOutstanding) {
		g.Add(-1)
		c.shed.Add(1)
		return nil, false, ErrBackpressure
	}
	c.shardCalls.Add(1)
	fut := c.loc.CallID(owner, c.svc.getID, [][]byte{[]byte(key)})
	rets, err := fut.GetTimeout(c.svc.cfg.CallTimeout)
	g.Add(-1)
	if err != nil {
		return nil, false, err
	}
	status, ver, err := parseHeader(rets)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case statusShed:
		c.shed.Add(1)
		return nil, false, ErrShed
	case statusNotFound:
		return nil, false, nil
	}
	if len(rets) < 2 {
		return nil, false, fmt.Errorf("serve: malformed GET reply (no value)")
	}
	val := rets[1]
	c.cache.install(key, h, val, ver, false)
	return val, true, nil
}

// Put binds key to a copy of val on the owning shard and write-through
// updates the local cache with the shard's new version (so a subsequent Get
// through this client never sees the overwritten value). The caller keeps
// ownership of val.
func (c *Client) Put(key string, val []byte) error {
	h := hashKey(key)
	owner := c.svc.ring.Owner(h)
	if owner == c.loc.ID() {
		c.svc.stores[owner].put(key, h, val)
		c.puts.Add(1)
		return nil
	}
	g := &c.outstanding[owner]
	if g.Add(1) > int64(c.svc.cfg.MaxOutstanding) {
		g.Add(-1)
		c.shed.Add(1)
		return ErrBackpressure
	}
	fut := c.loc.CallID(owner, c.svc.putID, [][]byte{[]byte(key), val})
	rets, err := fut.GetTimeout(c.svc.cfg.CallTimeout)
	g.Add(-1)
	if err != nil {
		return err
	}
	status, ver, err := parseHeader(rets)
	if err != nil {
		return err
	}
	if status == statusShed {
		c.shed.Add(1)
		return ErrShed
	}
	c.puts.Add(1)
	// Write-through: install a private copy (the caller may reuse val).
	cp := make([]byte, len(val))
	copy(cp, val)
	c.cache.install(key, h, cp, ver, false)
	return nil
}

// Del removes key from its shard and tombstones the cache at the shard's
// floor version, so an in-flight fill carrying the deleted value cannot
// resurrect it.
func (c *Client) Del(key string) error {
	h := hashKey(key)
	owner := c.svc.ring.Owner(h)
	if owner == c.loc.ID() {
		c.svc.stores[owner].del(key, h)
		return nil
	}
	g := &c.outstanding[owner]
	if g.Add(1) > int64(c.svc.cfg.MaxOutstanding) {
		g.Add(-1)
		c.shed.Add(1)
		return ErrBackpressure
	}
	fut := c.loc.CallID(owner, c.svc.delID, [][]byte{[]byte(key)})
	rets, err := fut.GetTimeout(c.svc.cfg.CallTimeout)
	g.Add(-1)
	if err != nil {
		return err
	}
	status, ver, err := parseHeader(rets)
	if err != nil {
		return err
	}
	switch status {
	case statusShed:
		c.shed.Add(1)
		return ErrShed
	case statusOK:
		c.cache.invalidate(key, h, ver)
	case statusNotFound:
		// Nothing to invalidate past what the cache already holds.
	}
	return nil
}

// Stats snapshots the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		CacheHits:  c.cacheHits.Load(),
		LocalHits:  c.localHits.Load(),
		ShardCalls: c.shardCalls.Load(),
		Coalesced:  c.coalesced.Load(),
		Shed:       c.shed.Load(),
		Puts:       c.puts.Load(),
	}
}

// Cache exposes the client's hot-key cache (tests, stats). Nil when
// caching is disabled.
func (c *Client) Cache() *Cache { return c.cache }

// parseHeader decodes the status+version reply header.
func parseHeader(rets [][]byte) (byte, uint64, error) {
	if len(rets) < 1 || len(rets[0]) != 9 {
		return 0, 0, fmt.Errorf("serve: malformed reply header")
	}
	return rets[0][0], binary.LittleEndian.Uint64(rets[0][1:]), nil
}
