// Package serve is the serving-shaped workload of the stack: a
// consistent-hash-sharded key-value service registered as actions on the
// core runtime, with the perf machinery that keeps it fast under skewed
// ("heavy traffic") load — a per-locality lock-free-read hot-key cache
// (cache.go), single-flight miss coalescing (client.go in serve.go), and
// token-bucket admission control with queue-depth backpressure (admit.go).
// An open-loop load generator (loadgen.go) drives it with Zipf or uniform
// key mixes and reports p50/p99/p999 via internal/stats.
//
// Unlike the HPC workloads (octotiger, dfft, sparse), requests here are
// irregular, latency-sensitive and tiny — exactly the traffic shape the
// HPX+LCI communication-needs study (arXiv 2503.12774) identifies as where
// an AMT network stack earns its keep. Every request rides the full stack
// built in PRs 1-7: aggregation bundles the small GET parcels, the ARQ
// keeps them exactly-once under faults, and the zero-alloc datapath keeps
// the per-request cost flat.
package serve

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters. Key hashing is a
// manual FNV-1a loop so the hot GET path hashes a string key with zero
// allocations (hash/fnv would force a []byte conversion).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashKey hashes a key for both ring placement and cache indexing.
func hashKey(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// Ring is a consistent-hash ring over the shard-owning localities. Each
// owner contributes VNodes points (hashes of owner id × replica index); a
// key belongs to the owner of the first point clockwise from the key's
// hash. The ring is built once and immutable, so Owner is lock-free; the
// consistent-hash property (removing one owner remaps only ~1/N of the
// keyspace, verified by TestRingRemapFraction) is what makes the shard map
// stable under the elastic-membership work ROADMAP item 1 plans.
type Ring struct {
	points []uint64 // sorted vnode hashes
	owners []int    // owners[i] owns points[i]
}

// NewRing builds a ring with vnodes points per owner. Owners must be
// non-empty; duplicate owner ids are rejected.
func NewRing(owners []int, vnodes int) (*Ring, error) {
	if len(owners) == 0 {
		return nil, fmt.Errorf("serve: ring needs at least one owner")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[int]bool, len(owners))
	r := &Ring{
		points: make([]uint64, 0, len(owners)*vnodes),
		owners: make([]int, 0, len(owners)*vnodes),
	}
	type pt struct {
		h     uint64
		owner int
	}
	pts := make([]pt, 0, len(owners)*vnodes)
	var buf [16]byte
	for _, o := range owners {
		if seen[o] {
			return nil, fmt.Errorf("serve: duplicate ring owner %d", o)
		}
		seen[o] = true
		for v := 0; v < vnodes; v++ {
			binary.LittleEndian.PutUint64(buf[0:8], uint64(o)+0x9e3779b97f4a7c15)
			binary.LittleEndian.PutUint64(buf[8:16], uint64(v)*0xbf58476d1ce4e5b9+1)
			h := uint64(fnvOffset)
			for _, b := range buf {
				h ^= uint64(b)
				h *= fnvPrime
			}
			pts = append(pts, pt{h, o})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	for _, p := range pts {
		r.points = append(r.points, p.h)
		r.owners = append(r.owners, p.owner)
	}
	return r, nil
}

// Owner returns the locality owning hash h: binary search for the first
// point >= h, wrapping to the first point past the top of the ring.
func (r *Ring) Owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.owners[i]
}

// KeyOwner returns the locality owning key.
func (r *Ring) KeyOwner(key string) int { return r.Owner(hashKey(key)) }

// Owners returns the distinct owner set (sorted by first appearance order
// is not guaranteed; callers treat it as a set).
func (r *Ring) Owners() []int {
	seen := make(map[int]bool)
	var out []int
	for _, o := range r.owners {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Ints(out)
	return out
}
