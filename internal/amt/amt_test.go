package amt

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newStarted(t *testing.T, workers int) *Scheduler {
	t.Helper()
	s := New(Config{Workers: workers, Name: "test"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestSpawnRunsTasks(t *testing.T) {
	s := newStarted(t, 2)
	var n atomic.Int64
	const k = 100
	for i := 0; i < k; i++ {
		s.Spawn(func() { n.Add(1) })
	}
	if !s.WaitIdle(5 * time.Second) {
		t.Fatal("scheduler did not go idle")
	}
	if n.Load() != k {
		t.Fatalf("ran %d tasks, want %d", n.Load(), k)
	}
	if s.Executed() != k {
		t.Fatalf("Executed = %d, want %d", s.Executed(), k)
	}
}

func TestDoubleStartFails(t *testing.T) {
	s := newStarted(t, 1)
	if err := s.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestNestedSpawn(t *testing.T) {
	s := newStarted(t, 2)
	var n atomic.Int64
	var spawn func(depth int)
	spawn = func(depth int) {
		n.Add(1)
		if depth > 0 {
			s.Spawn(func() { spawn(depth - 1) })
			s.Spawn(func() { spawn(depth - 1) })
		}
	}
	s.Spawn(func() { spawn(6) })
	if !s.WaitIdle(5 * time.Second) {
		t.Fatal("not idle")
	}
	if n.Load() != 127 { // 2^7 - 1 nodes of a binary spawn tree
		t.Fatalf("ran %d tasks, want 127", n.Load())
	}
}

func TestBackgroundInvokedWhenIdle(t *testing.T) {
	s := New(Config{Workers: 2})
	var calls atomic.Int64
	s.SetBackground(func(workerID int) bool {
		calls.Add(1)
		return false
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if calls.Load() < 10 {
		t.Fatalf("background called only %d times", calls.Load())
	}
}

func TestSetBackgroundNil(t *testing.T) {
	s := newStarted(t, 1)
	s.SetBackground(func(int) bool { return false })
	s.SetBackground(nil) // must not crash workers
	var n atomic.Int64
	s.Spawn(func() { n.Add(1) })
	if !s.WaitIdle(2 * time.Second) {
		t.Fatal("not idle")
	}
}

func TestFutureSetGet(t *testing.T) {
	s := newStarted(t, 1)
	f := NewFuture[int](s)
	if f.Ready() {
		t.Fatal("fresh future ready")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		f.Set(42, nil)
	}()
	v, err := f.Get()
	if v != 42 || err != nil {
		t.Fatalf("Get = (%d, %v)", v, err)
	}
	if !f.Ready() {
		t.Fatal("future should be ready")
	}
}

func TestFutureSetOnce(t *testing.T) {
	s := newStarted(t, 1)
	f := NewFuture[int](s)
	if !f.Set(1, nil) {
		t.Fatal("first Set failed")
	}
	if f.Set(2, nil) {
		t.Fatal("second Set succeeded")
	}
	v, _ := f.Get()
	if v != 1 {
		t.Fatalf("value overwritten: %d", v)
	}
}

func TestFutureError(t *testing.T) {
	s := newStarted(t, 1)
	boom := errors.New("boom")
	f := Async(s, func() (string, error) { return "", boom })
	_, err := f.Get()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestFutureThen(t *testing.T) {
	s := newStarted(t, 2)
	f := NewFuture[int](s)
	var got atomic.Int64
	f.Then(func(v int, err error) { got.Store(int64(v)) })
	f.Set(7, nil)
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() != 7 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got.Load() != 7 {
		t.Fatal("Then callback never ran")
	}
	// Then after Set also fires.
	var got2 atomic.Int64
	f.Then(func(v int, err error) { got2.Store(int64(v)) })
	for got2.Load() != 7 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got2.Load() != 7 {
		t.Fatal("post-set Then callback never ran")
	}
}

func TestFutureGetTimeout(t *testing.T) {
	s := newStarted(t, 1)
	f := NewFuture[int](s)
	_, err := f.GetTimeout(20 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	f.Set(3, nil)
	v, err := f.GetTimeout(time.Second)
	if v != 3 || err != nil {
		t.Fatalf("GetTimeout after set = (%d, %v)", v, err)
	}
}

func TestFutureWait(t *testing.T) {
	s := newStarted(t, 1)
	f := NewFuture[struct{}](s)
	done := make(chan struct{})
	go func() {
		f.Wait()
		close(done)
	}()
	f.Set(struct{}{}, nil)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never returned")
	}
}

func TestBlockedTaskDoesNotStarveOthers(t *testing.T) {
	// Many tasks blocked on futures must not prevent further tasks from
	// running: blocked tasks park (like suspended HPX threads) instead of
	// occupying workers.
	s := newStarted(t, 1)
	gate := NewFuture[struct{}](s)
	const blocked = 32
	var woken atomic.Int64
	for i := 0; i < blocked; i++ {
		s.Spawn(func() {
			gate.Get()
			woken.Add(1)
		})
	}
	// A later task must still run promptly and can release the gate.
	release := Async(s, func() (int, error) {
		gate.Set(struct{}{}, nil)
		return 1, nil
	})
	if _, err := release.GetTimeout(5 * time.Second); err != nil {
		t.Fatalf("later task starved: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for woken.Load() != blocked && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if woken.Load() != blocked {
		t.Fatalf("only %d of %d blocked tasks woke", woken.Load(), blocked)
	}
}

func TestWhenAll(t *testing.T) {
	s := newStarted(t, 2)
	fs := make([]*Future[int], 5)
	for i := range fs {
		i := i
		fs[i] = Async(s, func() (int, error) { return i * i, nil })
	}
	all := WhenAll(s, fs...)
	vals, err := all.Get()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
}

func TestWhenAllEmpty(t *testing.T) {
	s := newStarted(t, 1)
	vals, err := WhenAll[int](s).Get()
	if err != nil || vals != nil {
		t.Fatalf("empty WhenAll = (%v, %v)", vals, err)
	}
}

func TestWhenAllPropagatesError(t *testing.T) {
	s := newStarted(t, 2)
	boom := errors.New("boom")
	f1 := Async(s, func() (int, error) { return 1, nil })
	f2 := Async(s, func() (int, error) { return 0, boom })
	_, err := WhenAll(s, f1, f2).Get()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestDedicatedThread(t *testing.T) {
	s := newStarted(t, 1)
	var ticks atomic.Int64
	s.StartDedicated("prog", false, func() bool {
		ticks.Add(1)
		return true
	})
	deadline := time.Now().Add(2 * time.Second)
	for ticks.Load() < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ticks.Load() < 100 {
		t.Fatalf("dedicated thread ticked %d times", ticks.Load())
	}
	s.Stop() // must join the dedicated thread without hanging
}

func TestStopIdempotent(t *testing.T) {
	s := New(Config{Workers: 1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	s.Stop()
}

func TestConcurrentSpawners(t *testing.T) {
	s := newStarted(t, 4)
	var n atomic.Int64
	var wg sync.WaitGroup
	const spawners, each = 8, 200
	for g := 0; g < spawners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Spawn(func() { n.Add(1) })
			}
		}()
	}
	wg.Wait()
	if !s.WaitIdle(10 * time.Second) {
		t.Fatal("not idle")
	}
	if n.Load() != spawners*each {
		t.Fatalf("ran %d, want %d", n.Load(), spawners*each)
	}
}

func TestHelpRunsBackground(t *testing.T) {
	s := New(Config{Workers: 1}) // never started: Help drives background work
	var calls atomic.Int64
	if s.Help() {
		t.Fatal("Help with no background hook should report no work")
	}
	s.SetBackground(func(workerID int) bool {
		if workerID != -1 {
			t.Errorf("Help should pass workerID -1, got %d", workerID)
		}
		calls.Add(1)
		return true
	})
	if !s.Help() {
		t.Fatal("Help should report background progress")
	}
	if calls.Load() != 1 {
		t.Fatalf("background called %d times", calls.Load())
	}
}
