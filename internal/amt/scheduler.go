// Package amt implements the asynchronous many-task execution layer that
// stands in for the HPX thread-scheduling system. Each locality owns one
// Scheduler.
//
// Tasks are goroutines: like HPX's suspendable user-level threads, a task
// that blocks on a future parks and costs nothing until its value arrives
// (the Go scheduler plays the role of HPX's thread scheduler). The
// Scheduler's "workers" are the HPX worker threads in their *idle* role: W
// poller goroutines that continuously invoke the parcelport's
// background-work function — which is how the MPI parcelport polls its
// pending connections and how the LCI parcelport drains completion queues.
// Compute code that wants W-way chunking queries Workers(), as the
// Octo-Tiger proxy does.
//
// The scheduler also provides "dedicated threads" outside the worker pool,
// the analogue of reserving a core through the HPX resource partitioner: the
// LCI parcelport's pinned progress thread runs there.
package amt

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// BackgroundFunc is called by idle workers. It returns true if it performed
// any work (so the worker polls hot) and false otherwise (so the worker may
// back off).
type BackgroundFunc func(workerID int) bool

// Config tunes a Scheduler.
type Config struct {
	// Workers is the number of background-poller goroutines (the idle role
	// of HPX worker threads). Default 2.
	Workers int
	// IdleSleep is how long a worker naps after a stretch of fruitless
	// polling, bounding busy-wait burn on oversubscribed hosts. Default 20µs.
	IdleSleep time.Duration
	// IdleSpins is the number of fruitless iterations before napping.
	// Default 64.
	IdleSpins int
	// MaxIdleRunners bounds the parked task-runner cache across all shards
	// plus the overflow. Default DefaultMaxIdleRunners.
	MaxIdleRunners int
	// Name labels the scheduler in errors (typically "locality-N").
	Name string
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.IdleSleep <= 0 {
		c.IdleSleep = 20 * time.Microsecond
	}
	if c.IdleSpins <= 0 {
		c.IdleSpins = 64
	}
	if c.MaxIdleRunners <= 0 {
		c.MaxIdleRunners = DefaultMaxIdleRunners
	}
}

// Scheduler runs tasks and drives parcelport background work.
type Scheduler struct {
	cfg Config

	background atomic.Pointer[BackgroundFunc]

	spawned   atomic.Int64
	completed atomic.Int64
	inline    atomic.Int64

	// Parked task-runner goroutines, recycled between tasks (LIFO so the
	// hottest stack is reused first), sharded per worker so concurrent
	// spawners and parkers do not serialize on one lock. Runners that find
	// their home shard full spill into the overflow shard. See Spawn.
	shards      []runnerShard
	overflow    runnerShard
	shardCap    int          // parked runners allowed per shard
	overflowCap int          // parked runners allowed in overflow
	idleCount   atomic.Int64 // parked runners across all shards (approximate)
	spawnCur    atomic.Uint32
	parkCur     atomic.Uint32

	stopFlag  atomic.Bool
	wg        sync.WaitGroup
	dedicated []*dedicated
	dedMu     sync.Mutex
	started   atomic.Bool
}

// runnerShard is one stack of parked task runners. Padded so shards sit on
// separate cache lines.
type runnerShard struct {
	mu   sync.Mutex
	idle []chan func()
	_    [64]byte
}

// DefaultMaxIdleRunners bounds the parked task-runner cache. Beyond this,
// finished runners simply exit; a burst larger than the cache still runs
// every task on its own (freshly spawned) goroutine. Sized to absorb a
// benchmark-scale injection burst: the steady-state population tracks the
// largest task burst seen, and a parked runner costs one small stack, so the
// worst case is a few MB per locality. Too small a cache churns goroutines —
// every burst beyond it pays a stack allocation per task again.
const DefaultMaxIdleRunners = 4096

type dedicated struct {
	name     string
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// halt signals the dedicated loop to exit (idempotent).
func (d *dedicated) halt() { d.stopOnce.Do(func() { close(d.stop) }) }

// New creates a scheduler. Call Start to launch the workers.
func New(cfg Config) *Scheduler {
	cfg.fillDefaults()
	s := &Scheduler{cfg: cfg}
	// One runner shard per worker; half the cache lives in the shards, the
	// other half in the shared overflow, summing to cfg.MaxIdleRunners.
	n := cfg.Workers
	s.shards = make([]runnerShard, n)
	s.shardCap = cfg.MaxIdleRunners / (2 * n)
	if s.shardCap < 1 {
		s.shardCap = 1
	}
	s.overflowCap = cfg.MaxIdleRunners - s.shardCap*n
	if s.overflowCap < 0 {
		s.overflowCap = 0
	}
	return s
}

// Name returns the configured scheduler name.
func (s *Scheduler) Name() string { return s.cfg.Name }

// Workers returns the configured worker count (used by applications to
// chunk compute work).
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// SetBackground installs the idle background-work hook (the parcelport's
// background function). May be called before or after Start.
func (s *Scheduler) SetBackground(f BackgroundFunc) {
	if f == nil {
		s.background.Store(nil)
		return
	}
	s.background.Store(&f)
}

// Start launches the worker (background-poller) goroutines. It is an error
// to start twice.
func (s *Scheduler) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return fmt.Errorf("amt: scheduler %q already started", s.cfg.Name)
	}
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.workerLoop(w)
	}
	return nil
}

// Spawn schedules a task. The task owns a goroutine for its entire life and
// may block on futures freely (it parks rather than occupying a worker,
// matching HPX's suspendable threads). Goroutines are recycled through an
// idle-runner cache between tasks, so a flood of small tasks — a bundle of
// small parcels arriving at once — does not pay a fresh stack allocation per
// task, mirroring HPX's thread-object reuse.
func (s *Scheduler) Spawn(task func()) {
	s.spawned.Add(1)
	if rc := s.popRunner(); rc != nil {
		rc <- task
		return
	}
	go s.runTasks(task, s.nextHome())
}

// SpawnBatch schedules every task of a batch, visiting each runner-shard
// lock at most once: a decoded bundle of N parcels pays O(shards) lock
// acquisitions instead of N. Tasks beyond the parked-runner supply run on
// fresh goroutines. The batch slice itself is not retained — the caller may
// reuse it immediately.
func (s *Scheduler) SpawnBatch(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	s.spawned.Add(int64(len(tasks)))
	i := 0
	if s.idleCount.Load() > 0 {
		n := len(s.shards)
		start := int(s.spawnCur.Add(1))
		for si := 0; si < n && i < len(tasks); si++ {
			sh := &s.shards[(start+si)%n]
			sh.mu.Lock()
			for k := len(sh.idle); k > 0 && i < len(tasks); k-- {
				rc := sh.idle[k-1]
				sh.idle[k-1] = nil
				sh.idle = sh.idle[:k-1]
				s.idleCount.Add(-1)
				// The buffered handoff of a parked runner is empty, so this
				// send never blocks under the shard lock.
				rc <- tasks[i]
				i++
			}
			sh.mu.Unlock()
		}
		if i < len(tasks) {
			o := &s.overflow
			o.mu.Lock()
			for k := len(o.idle); k > 0 && i < len(tasks); k-- {
				rc := o.idle[k-1]
				o.idle[k-1] = nil
				o.idle = o.idle[:k-1]
				s.idleCount.Add(-1)
				rc <- tasks[i]
				i++
			}
			o.mu.Unlock()
		}
	}
	for ; i < len(tasks); i++ {
		go s.runTasks(tasks[i], s.nextHome())
	}
}

// popRunner takes a parked runner, scanning the shards from a rotating
// cursor and then the overflow. Returns nil when none is parked. The
// idleCount probe keeps a spawn during a task backlog — when the cache is
// empty because runners never get to park — at one atomic load instead of a
// lock acquisition per shard.
func (s *Scheduler) popRunner() chan func() {
	if s.idleCount.Load() <= 0 {
		return nil
	}
	n := len(s.shards)
	start := int(s.spawnCur.Add(1))
	for i := 0; i < n; i++ {
		sh := &s.shards[(start+i)%n]
		sh.mu.Lock()
		if k := len(sh.idle); k > 0 {
			rc := sh.idle[k-1]
			sh.idle[k-1] = nil
			sh.idle = sh.idle[:k-1]
			s.idleCount.Add(-1)
			sh.mu.Unlock()
			return rc
		}
		sh.mu.Unlock()
	}
	o := &s.overflow
	o.mu.Lock()
	if k := len(o.idle); k > 0 {
		rc := o.idle[k-1]
		o.idle[k-1] = nil
		o.idle = o.idle[:k-1]
		s.idleCount.Add(-1)
		o.mu.Unlock()
		return rc
	}
	o.mu.Unlock()
	return nil
}

// nextHome assigns a home shard to a fresh runner round-robin.
func (s *Scheduler) nextHome() int {
	return int(s.parkCur.Add(1)) % len(s.shards)
}

// runTasks executes task, then parks in the idle-runner cache waiting for
// the next one, until the cache is full or the scheduler stops. The handoff
// channel is buffered so a spawner that pops this runner never blocks even
// if the runner has not reached its receive yet.
func (s *Scheduler) runTasks(task func(), home int) {
	rc := make(chan func(), 1)
	for {
		task()
		s.completed.Add(1)
		if !s.parkRunner(rc, home) {
			return
		}
		var ok bool
		if task, ok = <-rc; !ok {
			return
		}
	}
}

// parkRunner parks rc on its home shard, spilling to the overflow when the
// shard is full. Returns false (runner must exit) when both are full or the
// scheduler is stopping. The stop flag is checked under each lock so a
// runner can never park after Stop's drain passed its shard (see Stop).
func (s *Scheduler) parkRunner(rc chan func(), home int) bool {
	sh := &s.shards[home]
	sh.mu.Lock()
	if s.stopFlag.Load() {
		sh.mu.Unlock()
		return false
	}
	if len(sh.idle) < s.shardCap {
		sh.idle = append(sh.idle, rc)
		s.idleCount.Add(1)
		sh.mu.Unlock()
		return true
	}
	sh.mu.Unlock()
	o := &s.overflow
	o.mu.Lock()
	if s.stopFlag.Load() || len(o.idle) >= s.overflowCap {
		o.mu.Unlock()
		return false
	}
	o.idle = append(o.idle, rc)
	s.idleCount.Add(1)
	o.mu.Unlock()
	return true
}

// IdleRunners returns the number of parked task runners across all shards
// and the overflow (diagnostics and tests).
func (s *Scheduler) IdleRunners() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.idle)
		sh.mu.Unlock()
	}
	s.overflow.mu.Lock()
	n += len(s.overflow.idle)
	s.overflow.mu.Unlock()
	return n
}

// RunInline executes task synchronously on the calling goroutine, with the
// same accounting as a spawned task (it shows up in Executed, and in Pending
// for its duration). This is the run-to-completion lane: the caller — a
// completion-drain pass — trades a goroutine handoff for running the task
// itself, so it must only pass tasks it knows will not block.
func (s *Scheduler) RunInline(task func()) {
	s.spawned.Add(1)
	task()
	s.completed.Add(1)
	s.inline.Add(1)
}

// Pending returns the number of spawned-but-unfinished tasks.
func (s *Scheduler) Pending() int64 { return s.spawned.Load() - s.completed.Load() }

// Executed returns the number of completed tasks.
func (s *Scheduler) Executed() int64 { return s.completed.Load() }

// InlineExecuted returns the number of tasks run via RunInline.
func (s *Scheduler) InlineExecuted() int64 { return s.inline.Load() }

// workerLoop is the idle role of one worker thread: poll background work
// with a spin-then-nap backoff.
func (s *Scheduler) workerLoop(id int) {
	defer s.wg.Done()
	// Label the goroutine so CPU profiles split worker-poll time (which
	// includes inline parcel execution) from task runners and progress
	// threads: `go tool pprof -tagfocus=lane=amt-worker`.
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("lane", "amt-worker", "sched", s.cfg.Name)))
	rng := rand.New(rand.NewSource(int64(id)*2654435761 + 1))
	idle := 0
	for !s.stopFlag.Load() {
		did := false
		if bg := s.background.Load(); bg != nil {
			did = (*bg)(id)
		}
		if did {
			idle = 0
			continue
		}
		idle++
		if idle >= s.cfg.IdleSpins {
			idle = 0
			// Nap with a little jitter so workers don't thunder in lockstep.
			time.Sleep(s.cfg.IdleSleep + time.Duration(rng.Intn(1+int(s.cfg.IdleSleep/4))))
		} else {
			runtime.Gosched()
		}
	}
}

// Help performs one background-work pass on the calling goroutine. External
// drivers may use it to push communication along while waiting.
func (s *Scheduler) Help() bool {
	if bg := s.background.Load(); bg != nil {
		return (*bg)(-1)
	}
	return false
}

// StartDedicated launches a goroutine outside the worker pool, the analogue
// of reserving a core via the HPX resource partitioner. loop is called
// repeatedly until the scheduler (or the returned stopper) stops it; it
// should perform one bounded slice of work per call (e.g. one LCI progress
// pass) and return whether it did anything. lockThread pins the goroutine to
// an OS thread. The returned function stops and joins this thread alone; it
// is safe to call multiple times and concurrently with Stop.
func (s *Scheduler) StartDedicated(name string, lockThread bool, loop func() bool) (stop func()) {
	d := &dedicated{name: name, stop: make(chan struct{}), done: make(chan struct{})}
	s.dedMu.Lock()
	s.dedicated = append(s.dedicated, d)
	s.dedMu.Unlock()
	go func() {
		defer close(d.done)
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("lane", "progress", "thread", name)))
		if lockThread {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
		}
		// A dedicated thread owns its core in the real system, so it polls
		// hot most of the time: yield between fruitless passes, with only a
		// very short nap after a long idle stretch so co-scheduled
		// goroutines on an oversubscribed host are not starved.
		idle := 0
		nap := s.cfg.IdleSleep / 8
		if nap <= 0 {
			nap = time.Microsecond
		}
		for {
			select {
			case <-d.stop:
				return
			default:
			}
			if loop() {
				idle = 0
				continue
			}
			idle++
			if idle >= 4*s.cfg.IdleSpins {
				idle = 0
				time.Sleep(nap)
			} else {
				runtime.Gosched()
			}
		}
	}()
	return func() {
		d.halt()
		<-d.done
	}
}

// WaitIdle blocks until no tasks are pending or the timeout elapses,
// helping with background work meanwhile. Returns true if idle was reached.
func (s *Scheduler) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.Pending() == 0 {
			return true
		}
		if !s.Help() {
			runtime.Gosched()
		}
	}
	return s.Pending() == 0
}

// Stop shuts down workers and dedicated threads. Already-running task
// goroutines continue to completion on their own; tasks parked on futures
// that will never be set are abandoned.
func (s *Scheduler) Stop() {
	if !s.stopFlag.CompareAndSwap(false, true) {
		return
	}
	s.dedMu.Lock()
	ded := append([]*dedicated(nil), s.dedicated...)
	s.dedMu.Unlock()
	for _, d := range ded {
		d.halt()
	}
	for _, d := range ded {
		<-d.done
	}
	if s.started.Load() {
		s.wg.Wait()
	}
	// Release parked task runners. stopFlag is already set, so any runner
	// finishing a task after this drain sees it (under its shard lock) and
	// exits instead of re-parking: no goroutine is left blocked forever.
	var idle []chan func()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		idle = append(idle, sh.idle...)
		s.idleCount.Add(-int64(len(sh.idle)))
		sh.idle = nil
		sh.mu.Unlock()
	}
	s.overflow.mu.Lock()
	idle = append(idle, s.overflow.idle...)
	s.idleCount.Add(-int64(len(s.overflow.idle)))
	s.overflow.idle = nil
	s.overflow.mu.Unlock()
	for _, rc := range idle {
		close(rc)
	}
}
