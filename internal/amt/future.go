package amt

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTimeout is returned by GetTimeout when the deadline passes first.
var ErrTimeout = errors.New("amt: future wait timed out")

// Future is a single-assignment value produced by an asynchronous task, the
// analogue of an HPX future / local control object. Because tasks run as
// goroutines, a task blocked in Get simply parks — the HPX equivalent of a
// suspended user-level thread releasing its worker.
type Future[T any] struct {
	sched *Scheduler
	set   atomic.Bool

	mu        sync.Mutex
	val       T
	err       error
	done      chan struct{}
	callbacks []func(T, error)
}

// NewFuture creates an unset future bound to a scheduler (whose tasks run
// its callbacks).
func NewFuture[T any](s *Scheduler) *Future[T] {
	return &Future[T]{sched: s, done: make(chan struct{})}
}

// Set fulfils the future, waking waiters. Callbacks registered with Then
// are spawned as tasks. Setting twice is a no-op returning false.
func (f *Future[T]) Set(v T, err error) bool {
	f.mu.Lock()
	if f.set.Load() {
		f.mu.Unlock()
		return false
	}
	f.val, f.err = v, err
	cbs := f.callbacks
	f.callbacks = nil
	f.set.Store(true)
	close(f.done)
	f.mu.Unlock()
	for _, cb := range cbs {
		cb := cb
		f.sched.Spawn(func() { cb(v, err) })
	}
	return true
}

// Ready reports whether the future has been set.
func (f *Future[T]) Ready() bool { return f.set.Load() }

// Then registers a callback to run (as a scheduler task) once the future is
// set. If already set, the callback is spawned immediately.
func (f *Future[T]) Then(cb func(T, error)) {
	f.mu.Lock()
	if !f.set.Load() {
		f.callbacks = append(f.callbacks, cb)
		f.mu.Unlock()
		return
	}
	v, err := f.val, f.err
	f.mu.Unlock()
	f.sched.Spawn(func() { cb(v, err) })
}

// Get parks until the value arrives.
func (f *Future[T]) Get() (T, error) {
	<-f.done
	return f.val, f.err
}

// GetTimeout is Get with a deadline.
func (f *Future[T]) GetTimeout(d time.Duration) (T, error) {
	if f.set.Load() {
		return f.val, f.err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.done:
		return f.val, f.err
	case <-t.C:
		var zero T
		return zero, ErrTimeout
	}
}

// Wait parks until the future is set, discarding the value.
func (f *Future[T]) Wait() { <-f.done }

// Async spawns fn on the scheduler and returns a future for its result.
func Async[T any](s *Scheduler, fn func() (T, error)) *Future[T] {
	f := NewFuture[T](s)
	s.Spawn(func() {
		v, err := fn()
		f.Set(v, err)
	})
	return f
}

// WhenAll returns a future that is set once all inputs are set. Its error is
// the first non-nil input error.
func WhenAll[T any](s *Scheduler, fs ...*Future[T]) *Future[[]T] {
	out := NewFuture[[]T](s)
	if len(fs) == 0 {
		out.Set(nil, nil)
		return out
	}
	var remaining atomic.Int64
	remaining.Store(int64(len(fs)))
	vals := make([]T, len(fs))
	var firstErr atomic.Pointer[error]
	for i, f := range fs {
		i, f := i, f
		f.Then(func(v T, err error) {
			vals[i] = v
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
			}
			if remaining.Add(-1) == 0 {
				var e error
				if p := firstErr.Load(); p != nil {
					e = *p
				}
				out.Set(vals, e)
			}
		})
	}
	return out
}
