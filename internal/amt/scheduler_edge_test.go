package amt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSpawnRacingStop hammers Spawn from several goroutines while Stop runs
// concurrently. Every task spawned must eventually run exactly once (Spawn
// never drops work, even mid-shutdown), and nothing may panic or deadlock —
// the dangerous window is a spawner popping a parked runner that Stop is
// about to drain and close.
func TestSpawnRacingStop(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := New(Config{Workers: 2, MaxIdleRunners: 8})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		var ran, spawned atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					spawned.Add(1)
					s.Spawn(func() { ran.Add(1) })
				}
			}()
		}
		close(start)
		s.Stop() // race with the spawners
		wg.Wait()
		deadline := time.Now().Add(5 * time.Second)
		for ran.Load() != spawned.Load() {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: %d of %d tasks ran after Stop race", round, ran.Load(), spawned.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestIdleRunnerCacheOverflow drives a task burst far past a deliberately
// tiny MaxIdleRunners and checks the parked population respects the cap:
// runners beyond shard + overflow capacity must exit, not accumulate.
func TestIdleRunnerCacheOverflow(t *testing.T) {
	const cap = 4
	s := New(Config{Workers: 2, MaxIdleRunners: cap})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// Hold all tasks at a gate so the burst cannot reuse runners, forcing 64
	// concurrent goroutines; on release they all try to park at once.
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		s.Spawn(func() {
			defer wg.Done()
			<-gate
		})
	}
	close(gate)
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := s.IdleRunners()
		if n <= cap {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("IdleRunners = %d, want <= %d", n, cap)
		}
		time.Sleep(time.Millisecond)
	}
	// The cache must still hand out what it kept.
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		s.Spawn(func() { ran.Add(1) })
	}
	for ran.Load() != 8 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 8 post-burst tasks ran", ran.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSpawnBatchSmall covers the degenerate batch sizes: nil and empty are
// no-ops, a 1-element batch runs its task, and the batch slice may be reused
// by the caller immediately after SpawnBatch returns.
func TestSpawnBatchSmall(t *testing.T) {
	s := New(Config{Workers: 2})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.SpawnBatch(nil)
	s.SpawnBatch([]func(){})
	if got := s.Executed(); got != 0 {
		t.Fatalf("empty batches executed %d tasks", got)
	}
	var ran atomic.Int64
	batch := []func(){func() { ran.Add(1) }}
	s.SpawnBatch(batch)
	batch[0] = nil // caller may clobber the slice right away
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("1-element batch task never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSpawnBatchPastRunnerSupply spawns a batch much larger than the parked
// runner population: the excess must run on fresh goroutines and every task
// must execute exactly once.
func TestSpawnBatchPastRunnerSupply(t *testing.T) {
	s := New(Config{Workers: 2, MaxIdleRunners: 4})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	const n = 100
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	batch := make([]func(), n)
	for i := range batch {
		batch[i] = func() { ran.Add(1); wg.Done() }
	}
	s.SpawnBatch(batch)
	wg.Wait()
	if ran.Load() != n {
		t.Fatalf("ran %d of %d batch tasks", ran.Load(), n)
	}
}

// BenchmarkSpawnBatch compares batched spawning of a bundle-sized task burst
// against the per-task Spawn loop it replaced on the receiver datapath.
func BenchmarkSpawnBatch(b *testing.B) {
	for _, size := range []int{8, 32} {
		name := "batch=8"
		if size == 32 {
			name = "batch=32"
		}
		b.Run(name, func(b *testing.B) {
			s := New(Config{Workers: 2})
			if err := s.Start(); err != nil {
				b.Fatal(err)
			}
			defer s.Stop()
			var done atomic.Int64
			batch := make([]func(), size)
			for i := range batch {
				batch[i] = func() { done.Add(1) }
			}
			// Warm the runner cache.
			s.SpawnBatch(batch)
			for done.Load() != int64(size) {
				runtime.Gosched()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done.Store(0)
				s.SpawnBatch(batch)
				for done.Load() != int64(size) {
					runtime.Gosched()
				}
			}
		})
	}
}
