package amt

import (
	"sync/atomic"
	"testing"
)

func BenchmarkSpawnExecute(b *testing.B) {
	s := New(Config{Workers: 1})
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	var n atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Spawn(func() { n.Add(1) })
	}
	for n.Load() < int64(b.N) {
	}
}

func BenchmarkFutureSetGet(b *testing.B) {
	s := New(Config{Workers: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := NewFuture[int](s)
		f.Set(i, nil)
		if v, _ := f.Get(); v != i {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkAsyncRoundTrip(b *testing.B) {
	s := New(Config{Workers: 1})
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := Async(s, func() (int, error) { return i, nil })
		if _, err := f.Get(); err != nil {
			b.Fatal(err)
		}
	}
}
