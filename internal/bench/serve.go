package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/serve"
)

// Serving-tier benchmark: the sharded KV service (internal/serve) under an
// open-loop load that overdrives capacity, with the hot-key cache and miss
// coalescing toggled per row. This is the claims-checked artifact behind
// the serving tier's headline: on a Zipf-popular key mix, the per-locality
// cache plus single-flight coalescing must at least double throughput over
// the cache-off baseline while keeping the p99 bounded (shed requests are
// refused fast instead of queueing). Committed as results/BENCH_serve.json
// and re-checked by `make bench-gate`.

// ServeRecord is one measured load-mix row.
type ServeRecord struct {
	Op        string  `json:"op"`      // e.g. "serve/zipf/cache"
	OpsSec    float64 `json:"ops_sec"` // completed requests per second
	P50Us     float64 `json:"p50_us"`  // latency from *scheduled* arrival
	P99Us     float64 `json:"p99_us"`
	P999Us    float64 `json:"p999_us"`
	HitRate   float64 `json:"hit_rate"`  // cache hits / remote GETs
	ShedFrac  float64 `json:"shed_frac"` // shed (admission+backpressure) / offered
	Completed int     `json:"completed"`
	Offered   int     `json:"offered"`
}

// ServeReport is the artifact: rows plus provenance, the same shape as the
// other BENCH_*.json artifacts.
type ServeReport struct {
	Commit    string        `json:"commit"`
	Generated string        `json:"generated"`
	Scale     string        `json:"scale"`
	Records   []ServeRecord `json:"records"`
}

// Structural claims checked on every fresh report.
const (
	// serveCacheSpeedupMin: on the Zipf mix at saturation (closed-loop),
	// cache + coalescing must reach at least this multiple of the
	// cache-off baseline's throughput. The hot set fits the cache while
	// the keyspace does not, so most GETs are served locally; 2x leaves
	// headroom below the ~3x measured ratio.
	serveCacheSpeedupMin = 2.0
	// serveHitRateMin: the Zipf row's cache hit rate. Zipf(1.2) over a
	// keyspace 8x the cache capacity concentrates ~85% of draws in the
	// cacheable hot set; CLOCK approximation and write-through churn eat
	// some of that.
	serveHitRateMin = 0.5
	// serveShedMin: the admission row must actually engage the shard token
	// bucket — an admission benchmark where nothing sheds measures nothing.
	serveShedMin = 0.05
	// serveAdmitP99Factor: with admission shedding the excess instead of
	// queueing it, the admit row's p99 must not exceed the unprotected
	// overload row's p99 (same offered rate, same cache-off config). In
	// practice shedding wins by >10x; 1.0 is the claim's floor.
	serveAdmitP99Factor = 1.0
	// serveGateTailFactor: gate tolerance for the cache row's p99 against
	// the committed artifact. Closed-loop p99 on the 1-CPU host is
	// scheduler jitter among hundreds of client goroutines and wanders
	// ~3.3x run to run (measured 2.0-6.6 ms across repeated gate runs,
	// and a committed value can land at the low end of that band), so
	// the throughput gate's 1.8x is far too tight for this column. A
	// queueing collapse is 10x+ (see the overload row), still caught.
	serveGateTailFactor = 5.0
)

// Row names the claims reference.
const (
	serveZipfCache   = "serve/zipf/cache"
	serveZipfNoCache = "serve/zipf/nocache"
	serveUniformRow  = "serve/uniform/cache"
	serveOverRow     = "serve/zipf/overload"
	serveAdmitRow    = "serve/zipf/admit"
)

// servePoint is one artifact row: a service configuration plus a load mix.
type servePoint struct {
	op   string
	cfg  serve.Config
	load serve.LoadParams
}

// servePoints enumerates the rows. The first three run closed-loop
// (Rate=0): every client issues back-to-back, so throughput is service
// capacity and the speedup row ratio is capacity vs capacity. The last two
// run open-loop at ServeRate — chosen well above the cache-off capacity —
// so the unprotected row shows the queueing-delay blowup of overload and
// the admission row shows the token bucket converting that backlog into
// fast refusals with a bounded tail.
func servePoints(sc Scale) []servePoint {
	owners := make([]int, sc.ServeLocalities-1)
	for i := range owners {
		owners[i] = i + 1 // locality 0 is the client-only driver
	}
	base := serve.Config{Owners: owners, CacheEntries: sc.ServeCache, CallTimeout: 2 * time.Minute}
	closed := serve.LoadParams{
		Clients: sc.ServeClients,
		Total:   sc.ServeTotal,
		Keys:    sc.ServeKeys,
		Zipf:    true,
		Timeout: 10 * time.Minute,
	}
	nocache := base
	nocache.CacheEntries = -1
	admit := nocache
	admit.AdmitRate = sc.ServeAdmitRate
	// Tight client-side queue-depth bound: excess requests are refused
	// before they are sent, so a shed costs nothing and the completed
	// requests' tail reflects service time, not schedule slip.
	admit.MaxOutstanding = 32
	uniform := closed
	uniform.Zipf = false
	open := closed
	open.Rate = sc.ServeRate
	return []servePoint{
		{serveZipfCache, base, closed},
		{serveZipfNoCache, nocache, closed},
		{serveUniformRow, base, uniform},
		{serveOverRow, nocache, open},
		{serveAdmitRow, admit, open},
	}
}

// serveRow builds a fresh runtime and service for one row, preloads the
// keyspace, and drives the load.
func serveRow(sc Scale, pt servePoint) (ServeRecord, error) {
	rt, err := core.NewRuntime(core.Config{
		Localities:         sc.ServeLocalities,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Aggregation:        true,
	})
	if err != nil {
		return ServeRecord{}, err
	}
	svc, err := serve.New(rt, pt.cfg)
	if err != nil {
		return ServeRecord{}, err
	}
	if err := rt.Start(); err != nil {
		return ServeRecord{}, err
	}
	defer rt.Shutdown()
	svc.Preload(serve.KeySet(pt.load.Keys), make([]byte, 64))
	// Best-of-2 by throughput: a single GC or descheduling stall on the
	// 1-CPU host lands in *every* open-loop latency (measured from the
	// scheduled arrival, so the stall is honestly billed) and can poison a
	// whole row — observed once as a 242 ms admit-row p99 against a stable
	// 11 ms. The stalled rep also loses throughput, so keeping the faster
	// rep keeps the stall-free one. Stalls are rare and independent, so
	// two reps make a poisoned row vanishingly unlikely.
	var best ServeRecord
	for r := 0; r < 2; r++ {
		res, err := serve.RunLoad(svc, 0, pt.load)
		if err != nil {
			return ServeRecord{}, fmt.Errorf("%s: %w", pt.op, err)
		}
		rec := ServeRecord{
			Op:        pt.op,
			OpsSec:    res.Throughput,
			P50Us:     res.P50Us,
			P99Us:     res.P99Us,
			P999Us:    res.P999Us,
			HitRate:   res.HitRate,
			ShedFrac:  res.ShedFrac,
			Completed: res.Completed,
			Offered:   res.Offered,
		}
		if r == 0 || rec.OpsSec > best.OpsSec {
			best = rec
		}
	}
	return best, nil
}

// ServeBench measures every row and checks the structural claims. On a
// claims failure the partial report is returned alongside the error so the
// caller can print the rows.
func ServeBench(sc Scale, scaleName string) (*ServeReport, error) {
	rep := &ServeReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	for _, pt := range servePoints(sc) {
		rec, err := serveRow(sc, pt)
		if err != nil {
			return nil, fmt.Errorf("serve bench %s: %w", pt.op, err)
		}
		rep.Records = append(rep.Records, rec)
	}
	if err := ServeClaims(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// ServeClaims validates the report's structural claims: the cache/coalescing
// speedup on the Zipf mix, a credible hit rate behind it, and admission
// control that sheds instead of queueing.
func ServeClaims(r *ServeReport) error {
	byOp := map[string]ServeRecord{}
	for _, rec := range r.Records {
		byOp[rec.Op] = rec
	}
	cache, nocache := byOp[serveZipfCache], byOp[serveZipfNoCache]
	over, admit := byOp[serveOverRow], byOp[serveAdmitRow]
	var failures []string
	if nocache.OpsSec > 0 && cache.OpsSec < nocache.OpsSec*serveCacheSpeedupMin {
		failures = append(failures, fmt.Sprintf("cache speedup %.2fx < %.1fx (cache %.0f ops/s vs nocache %.0f ops/s)",
			cache.OpsSec/nocache.OpsSec, serveCacheSpeedupMin, cache.OpsSec, nocache.OpsSec))
	}
	if cache.HitRate < serveHitRateMin {
		failures = append(failures, fmt.Sprintf("zipf hit rate %.2f < %.2f (cache not absorbing the hot set)",
			cache.HitRate, serveHitRateMin))
	}
	if admit.ShedFrac < serveShedMin {
		failures = append(failures, fmt.Sprintf("admit row shed fraction %.3f < %.2f (token bucket never engaged)",
			admit.ShedFrac, serveShedMin))
	}
	if over.P99Us > 0 && admit.P99Us > over.P99Us*serveAdmitP99Factor {
		failures = append(failures, fmt.Sprintf("admit p99 %.0fus > %.1fx unprotected overload p99 %.0fus (shedding is not bounding the tail)",
			admit.P99Us, serveAdmitP99Factor, over.P99Us))
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: serve claims failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// JSON renders the report as the BENCH_serve.json artifact.
func (r *ServeReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the rows for the experiments output.
func (r *ServeReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# serving-tier rows (commit %s)\n", r.Commit)
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s %9s %9s\n",
		"op", "ops/s", "p50_us", "p99_us", "p999_us", "hit_rate", "shed")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-22s %10.0f %10.1f %10.1f %10.1f %9.2f %9.2f\n",
			rec.Op, rec.OpsSec, rec.P50Us, rec.P99Us, rec.P999Us, rec.HitRate, rec.ShedFrac)
	}
	return b.String()
}

// ParseServeReport decodes a committed BENCH_serve.json.
func ParseServeReport(data []byte) (*ServeReport, error) {
	var r ServeReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad BENCH_serve.json: %w", err)
	}
	return &r, nil
}

// ServeGate compares a fresh measurement against the committed artifact —
// throughput must not fall below 1/gateNsOpFactor of the committed row, the
// cache row's p99 must not exceed serveGateTailFactor times the committed
// one — and re-validates the structural claims on the fresh rows.
func ServeGate(fresh, committed *ServeReport) (string, error) {
	if fresh.Scale != committed.Scale {
		return "", fmt.Errorf("bench: gate scale %q vs committed artifact scale %q — regenerate the artifact at the gate's scale",
			fresh.Scale, committed.Scale)
	}
	byOp := map[string]ServeRecord{}
	for _, rec := range fresh.Records {
		byOp[rec.Op] = rec
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# serve gate vs committed commit %s\n", committed.Commit)
	fmt.Fprintf(&b, "%-22s %18s %18s %8s\n", "op", "ops/s new/old", "p99_us new/old", "verdict")
	var failures []string
	for _, old := range committed.Records {
		cur, ok := byOp[old.Op]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: row missing from fresh run", old.Op))
			continue
		}
		verdict := "ok"
		if old.OpsSec > 0 && cur.OpsSec < old.OpsSec/gateNsOpFactor {
			verdict = "SLOWER"
			failures = append(failures, fmt.Sprintf("%s: %.0f ops/s < committed %.0f / %.1f",
				old.Op, cur.OpsSec, old.OpsSec, gateNsOpFactor))
		}
		// Only the cache row's tail is a stable promise: the overdriven
		// baseline rows' p99 is queueing delay by design. It gets the
		// wider noise-band factor, not the throughput one.
		if old.Op == serveZipfCache && old.P99Us > 0 && cur.P99Us > old.P99Us*serveGateTailFactor {
			verdict = "TAIL"
			failures = append(failures, fmt.Sprintf("%s: p99 %.0fus > %.1fx committed %.0fus",
				old.Op, cur.P99Us, serveGateTailFactor, old.P99Us))
		}
		fmt.Fprintf(&b, "%-22s %8.0f/%-9.0f %8.0f/%-9.0f %8s\n",
			old.Op, cur.OpsSec, old.OpsSec, cur.P99Us, old.P99Us, verdict)
	}
	if err := ServeClaims(fresh); err != nil {
		failures = append(failures, err.Error())
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("bench: serve regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
