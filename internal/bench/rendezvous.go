package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"hpxgo/internal/fabric"
	"hpxgo/internal/lci"
)

// Large-message rendezvous bandwidth: the chunked, multi-rail-striped long
// path measured against the monolithic single-blob baseline it replaced.
// The single-blob path is kept in the device (Config.SingleBlobLong) as the
// oracle: every measured transfer is byte-compared against the payload, and
// the artifact's blob rows are the before/after reference the striping
// speedup is quoted against. Committed as results/BENCH_rendezvous.json and
// re-checked by `make bench-gate`.

// RendezvousParams configures one large-message bandwidth point between two
// devices on an Expanse-profile fabric with a configurable rail count.
type RendezvousParams struct {
	Size       int  // payload bytes
	Rails      int  // fabric rails
	ChunkSize  int  // 0 = device default (64 KiB)
	Stripe     int  // stripe width; 0 = all rails
	SingleBlob bool // monolithic opLongData baseline (the oracle)
	Reps       int  // timed transfers; the median is reported
	Warmup     int  // untimed warm-up transfers (pools, map capacity)
}

// RendezvousResult is one measured point. The median rep is reported rather
// than the minimum: the blob baseline's per-transfer cost is dominated by
// fresh multi-MiB allocations (the packet pool only recycles payloads up to
// 64 KiB), whose page-fault cost swings ~3x between reps — a minimum would
// quote the baseline's luckiest rep and make the speedup ratio unstable.
type RendezvousResult struct {
	NsOp     float64 // median-rep wall ns per transfer (post → completion)
	Gbps     float64 // payload bandwidth at NsOp, gigabits/second
	AllocsOp float64 // process-wide mallocs per transfer, timed reps only
}

// Rendezvous measures one point: two lci devices on a 2-node fabric with
// the platform's latency/bandwidth model, a single benchmark goroutine
// driving both progress engines (fabric arrival gating means simulated wire
// time, not host scheduling, dominates). Every transfer is verified
// byte-identical against the payload.
func Rendezvous(p RendezvousParams) (RendezvousResult, error) {
	if p.Size <= 0 {
		p.Size = 1 << 20
	}
	if p.Rails <= 0 {
		p.Rails = 2
	}
	if p.Reps <= 0 {
		p.Reps = 5
	}
	if p.Warmup <= 0 {
		p.Warmup = 8 // enough transfers to fill every pool to steady state
	}
	net, err := fabric.NewNetwork(fabric.Config{
		Nodes:               2,
		LatencyNs:           Expanse.LatencyNs,
		GbitsPerSec:         Expanse.GbitsPerSec,
		Rails:               p.Rails,
		PacketOverheadBytes: 64,
	})
	if err != nil {
		return RendezvousResult{}, err
	}
	lcfg := lci.Config{ChunkSize: p.ChunkSize, StripeWidth: p.Stripe, SingleBlobLong: p.SingleBlob}
	snd := lci.NewDevice(net.Device(0), lcfg, nil)
	rcv := lci.NewDevice(net.Device(1), lcfg, nil)
	cq := lci.NewCompQueue(64)
	payload := make([]byte, p.Size)
	buf := make([]byte, p.Size)

	transfer := func(fill byte) (time.Duration, error) {
		for i := range payload {
			payload[i] = fill + byte(i)
		}
		t0 := time.Now()
		if err := rcv.Recvl(0, 1, buf, cq, nil); err != nil {
			return 0, fmt.Errorf("Recvl: %w", err)
		}
		for {
			err := snd.Sendl(1, 1, payload, nil, nil)
			if err == nil {
				break
			}
			if err != lci.ErrRetry {
				return 0, fmt.Errorf("Sendl: %w", err)
			}
			snd.Progress()
		}
		var cqBuf [1]lci.Request
		for cq.PopN(cqBuf[:]) == 0 {
			snd.Progress()
			rcv.Progress()
		}
		elapsed := time.Since(t0)
		if !bytes.Equal(buf, payload) {
			return 0, fmt.Errorf("rendezvous payload mismatch (size %d, rails %d, chunk %d, stripe %d)",
				p.Size, p.Rails, p.ChunkSize, p.Stripe)
		}
		return elapsed, nil
	}

	for w := 0; w < p.Warmup; w++ {
		if _, err := transfer(byte(w)); err != nil {
			return RendezvousResult{}, err
		}
	}
	durations := make([]time.Duration, 0, p.Reps)
	runtime.GC() // settle GC debt from setup so no cycle fires mid-bracket
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for r := 0; r < p.Reps; r++ {
		el, err := transfer(byte(r + 101))
		if err != nil {
			return RendezvousResult{}, err
		}
		durations = append(durations, el)
	}
	runtime.ReadMemStats(&ms1)
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	median := durations[len(durations)/2]
	res := RendezvousResult{
		NsOp:     float64(median.Nanoseconds()),
		AllocsOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(p.Reps),
	}
	if res.NsOp > 0 {
		res.Gbps = float64(p.Size) * 8 / res.NsOp // bits per ns == Gbit/s
	}
	return res, nil
}

// RendezvousRecord is one artifact row.
type RendezvousRecord struct {
	Op       string  `json:"op"`        // e.g. "rendezvous/c64K/1MiB/r4"
	NsOp     float64 `json:"ns_op"`     // wall ns per transfer
	Gbps     float64 `json:"gbps"`      // payload bandwidth
	AllocsOp float64 `json:"allocs_op"` // process-wide mallocs per transfer
}

// RendezvousReport is the artifact: rows plus provenance, the same shape as
// BENCH_msgrate.json / BENCH_collectives.json.
type RendezvousReport struct {
	Commit    string             `json:"commit"`
	Generated string             `json:"generated"`
	Scale     string             `json:"scale"`
	Records   []RendezvousRecord `json:"records"`
}

// Structural claims checked by RendezvousClaims on every fresh report (so
// the claim regressing fails bench-rendezvous and bench-gate, not just a
// reader of the numbers).
const (
	// rendSpeedupMin: chunked 1MiB on 4 rails must reach at least this
	// multiple of the single-blob baseline's bandwidth. Physics allows ~4x
	// (four rails transmit concurrently) and typical runs measure 3.3-3.6x,
	// but the ratio of two median-of-5 rows still dips to ~2.8x about once
	// in ten runs on the 1-CPU host; 2.5 stays under the noise band while
	// still proving the structural win over the blob path.
	rendSpeedupMin = 2.5
	// rendParityMin: chunked on ONE rail must stay within noise of the
	// single-blob path (chunking overhead must not tax the config that
	// cannot benefit from it).
	rendParityMin = 0.75
	// rendAllocsMax: steady-state chunked transfers must not allocate —
	// any chunk size: chunks are injected zero-copy (fabric Borrow), so
	// no payload buffer is ever created on the sender, and the receiver
	// copies into the posted buffer.
	rendAllocsMax = 0.5
)

// Row names the claims reference.
const (
	rendBlobR1 = "rendezvous/blob/1MiB/r1"
	rendBlobR4 = "rendezvous/blob/1MiB/r4"
	rendC64KR1 = "rendezvous/c64K/1MiB/r1"
	rendC64KR4 = "rendezvous/c64K/1MiB/r4"
)

// rendezvousPoints enumerates the artifact rows: the 1 MiB size × rails
// sweep against the blob baseline, plus a chunk-size sweep at 4 rails.
func rendezvousPoints(sc Scale) []struct {
	op string
	p  RendezvousParams
} {
	const mib = 1 << 20
	reps := sc.Reps
	if reps < 5 {
		reps = 5
	}
	return []struct {
		op string
		p  RendezvousParams
	}{
		{rendBlobR1, RendezvousParams{Size: mib, Rails: 1, SingleBlob: true, Reps: reps}},
		{rendBlobR4, RendezvousParams{Size: mib, Rails: 4, SingleBlob: true, Reps: reps}},
		{rendC64KR1, RendezvousParams{Size: mib, Rails: 1, Reps: reps}},
		{"rendezvous/c64K/1MiB/r2", RendezvousParams{Size: mib, Rails: 2, Reps: reps}},
		{rendC64KR4, RendezvousParams{Size: mib, Rails: 4, Reps: reps}},
		{"rendezvous/c64K/1MiB/r8", RendezvousParams{Size: mib, Rails: 8, Reps: reps}},
		{"rendezvous/c16K/1MiB/r4", RendezvousParams{Size: mib, Rails: 4, ChunkSize: 16 << 10, Reps: reps}},
		{"rendezvous/c256K/1MiB/r4", RendezvousParams{Size: mib, Rails: 4, ChunkSize: 256 << 10, Reps: reps}},
		{"rendezvous/c64K/256KiB/r4", RendezvousParams{Size: 256 << 10, Rails: 4, Reps: reps}},
	}
}

// RendezvousBench measures every row and checks the structural claims.
func RendezvousBench(sc Scale, scaleName string) (*RendezvousReport, error) {
	rep := &RendezvousReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	for _, pt := range rendezvousPoints(sc) {
		res, err := Rendezvous(pt.p)
		if err != nil {
			return nil, fmt.Errorf("rendezvous bench %s: %w", pt.op, err)
		}
		rep.Records = append(rep.Records, RendezvousRecord{
			Op: pt.op, NsOp: res.NsOp, Gbps: res.Gbps, AllocsOp: res.AllocsOp,
		})
	}
	if err := RendezvousClaims(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// RendezvousClaims validates the report's structural claims: striping
// speedup at 4 rails, single-rail parity with the blob path, and zero
// steady-state allocations on the chunked rows.
func RendezvousClaims(r *RendezvousReport) error {
	byOp := map[string]RendezvousRecord{}
	for _, rec := range r.Records {
		byOp[rec.Op] = rec
	}
	blob1, blob4 := byOp[rendBlobR1], byOp[rendBlobR4]
	c1, c4 := byOp[rendC64KR1], byOp[rendC64KR4]
	var failures []string
	if blob4.Gbps > 0 && c4.Gbps < blob4.Gbps*rendSpeedupMin {
		failures = append(failures, fmt.Sprintf("striping speedup %.2fx < %.1fx (chunked r4 %.1f Gbps vs blob r4 %.1f Gbps)",
			c4.Gbps/blob4.Gbps, rendSpeedupMin, c4.Gbps, blob4.Gbps))
	}
	if blob1.Gbps > 0 && c1.Gbps < blob1.Gbps*rendParityMin {
		failures = append(failures, fmt.Sprintf("single-rail parity %.2fx < %.2fx (chunked r1 %.1f Gbps vs blob r1 %.1f Gbps)",
			c1.Gbps/blob1.Gbps, rendParityMin, c1.Gbps, blob1.Gbps))
	}
	for _, rec := range r.Records {
		if strings.HasPrefix(rec.Op, "rendezvous/c") && rec.AllocsOp > rendAllocsMax {
			failures = append(failures, fmt.Sprintf("%s: %.2f allocs/op (chunked steady state must not allocate)",
				rec.Op, rec.AllocsOp))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: rendezvous claims failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// JSON renders the report as the BENCH_rendezvous.json artifact.
func (r *RendezvousReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the rows for the experiments output.
func (r *RendezvousReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# rendezvous bandwidth rows (commit %s)\n", r.Commit)
	fmt.Fprintf(&b, "%-28s %10s %12s %10s\n", "op", "Gbps", "ns/op", "allocs/op")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-28s %10.1f %12.0f %10.2f\n", rec.Op, rec.Gbps, rec.NsOp, rec.AllocsOp)
	}
	return b.String()
}

// ParseRendezvousReport decodes a committed BENCH_rendezvous.json.
func ParseRendezvousReport(data []byte) (*RendezvousReport, error) {
	var r RendezvousReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad BENCH_rendezvous.json: %w", err)
	}
	return &r, nil
}

// RendezvousGate compares a fresh measurement against the committed
// artifact (step regressions in ns/op and allocs/op, same tolerances as the
// message-rate gate) and re-validates the structural claims on the fresh
// rows.
func RendezvousGate(fresh, committed *RendezvousReport) (string, error) {
	if fresh.Scale != committed.Scale {
		return "", fmt.Errorf("bench: gate scale %q vs committed artifact scale %q — regenerate the artifact at the gate's scale",
			fresh.Scale, committed.Scale)
	}
	byOp := map[string]RendezvousRecord{}
	for _, rec := range fresh.Records {
		byOp[rec.Op] = rec
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# rendezvous gate vs committed commit %s\n", committed.Commit)
	fmt.Fprintf(&b, "%-28s %14s %16s %8s\n", "op", "ns/op new/old", "allocs/op new/old", "verdict")
	var failures []string
	for _, old := range committed.Records {
		cur, ok := byOp[old.Op]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: row missing from fresh run", old.Op))
			continue
		}
		verdict := "ok"
		if old.NsOp > 0 && cur.NsOp > old.NsOp*gateNsOpFactor {
			verdict = "SLOWER"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f > %.1fx committed %.0f",
				old.Op, cur.NsOp, gateNsOpFactor, old.NsOp))
		}
		if cur.AllocsOp > old.AllocsOp*gateAllocsFactor+gateAllocsSlack {
			verdict = "ALLOCS"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.2f > %.1fx committed %.2f + %.0f",
				old.Op, cur.AllocsOp, gateAllocsFactor, old.AllocsOp, gateAllocsSlack))
		}
		fmt.Fprintf(&b, "%-28s %6.0f/%-7.0f %8.2f/%-7.2f %8s\n",
			old.Op, cur.NsOp, old.NsOp, cur.AllocsOp, old.AllocsOp, verdict)
	}
	if err := RendezvousClaims(fresh); err != nil {
		failures = append(failures, err.Error())
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("bench: rendezvous regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
