package bench

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/fabric"
)

// MsgRateParams configures one message-rate measurement (§4.1): a sender
// locality creates tasks at a fixed attempted rate; each task injects a
// batch of fixed-size messages; the receiver signals back once everything
// arrived.
type MsgRateParams struct {
	Size    int     // message payload bytes
	Batch   int     // messages injected per task
	Total   int     // total messages (rounded down to a batch multiple)
	Rate    float64 // attempted injection rate in messages/second (0 = unlimited)
	Workers int     // worker threads per locality
	Fabric  fabric.Config
	Timeout time.Duration
	// LCIDevices replicates the LCI device per locality (§7.2 ablation).
	LCIDevices int
	// Agg enables the sender-side aggregation layer (also selectable via a
	// trailing "_agg" on the configuration name).
	Agg bool
	// AggSize overrides the aggregation flush size threshold (bytes).
	AggSize int
	// AggDelay overrides the aggregation flush age deadline.
	AggDelay time.Duration
	// Sizes, when non-empty, round-robins the payload size across the run
	// (mixed-size workloads); Size is ignored then.
	Sizes []int
	// Autotune enables the adaptive control layer (core.Config.Autotune):
	// the aggregation knobs and zero-copy threshold become per-destination
	// feedback-controlled values.
	Autotune bool
	// InlineOff disables the receiver's inline-execution lane (spawn-always,
	// the pre-inline behavior); the default runs small sink actions to
	// completion on the draining goroutine.
	InlineOff bool
	// InlineBudget overrides the inline count budget (0 = runtime default).
	InlineBudget int
	// MeasureAllocs samples process-wide allocation counters around the
	// measured section; the per-message delta lands in AllocsPerMsg.
	MeasureAllocs bool
	// Inspect, when non-nil, runs against the live runtime after the
	// measurement completes and before shutdown (profiling hooks).
	Inspect func(rt *core.Runtime)
}

// MsgRateResult is one data point of Figs 1-6.
type MsgRateResult struct {
	AttemptedRate float64 // messages/second requested (0 = unlimited)
	AchievedInj   float64 // messages/second actually generated
	MsgRate       float64 // messages/second actually received
	AllocsPerMsg  float64 // process-wide mallocs per message (MeasureAllocs)
}

// MessageRate runs the §4.1 microbenchmark under one parcelport
// configuration and returns the achieved injection and message rates.
func MessageRate(ppName string, p MsgRateParams) (MsgRateResult, error) {
	if p.Batch <= 0 || p.Total < p.Batch {
		return MsgRateResult{}, fmt.Errorf("bench: bad batch/total %d/%d", p.Batch, p.Total)
	}
	if p.Workers <= 0 {
		p.Workers = 2
	}
	if p.Timeout <= 0 {
		p.Timeout = 5 * time.Minute
	}
	if p.Fabric.Nodes == 0 {
		p.Fabric = Expanse.Fabric(2)
	}
	tasks := p.Total / p.Batch
	total := tasks * p.Batch

	inlineBudget := p.InlineBudget
	if p.InlineOff {
		inlineBudget = -1
	}
	rt, err := core.NewRuntime(core.Config{
		Localities:         2,
		WorkersPerLocality: p.Workers,
		Parcelport:         ppName,
		Fabric:             p.Fabric,
		LCIDevices:         p.LCIDevices,
		Aggregation:        p.Agg,
		AggFlushBytes:      p.AggSize,
		AggFlushDelay:      p.AggDelay,
		Autotune:           p.Autotune,
		InlineBudget:       inlineBudget,
	})
	if err != nil {
		return MsgRateResult{}, err
	}
	defer rt.Shutdown()

	var received atomic.Int64
	var doneAt atomic.Int64 // nanoseconds since start, set by the receiver's ack
	start := time.Now()

	// Both actions are atomic-counter bumps — the canonical inline-safe
	// shape, and exactly the per-message cost the inline lane targets.
	ackID := rt.MustRegisterInlineAction("mr_ack", func(loc *core.Locality, args [][]byte) [][]byte {
		doneAt.Store(int64(time.Since(start)))
		return nil
	})
	sinkID := rt.MustRegisterInlineAction("mr_sink", func(loc *core.Locality, args [][]byte) [][]byte {
		if received.Add(1) == int64(total) {
			// All messages arrived: one short message back to the sender.
			_ = loc.ApplyID(0, ackID, nil)
		}
		return nil
	})
	if err := rt.Start(); err != nil {
		return MsgRateResult{}, err
	}

	sender := rt.Locality(0)
	sizes := p.Sizes
	if len(sizes) == 0 {
		sizes = []int{p.Size}
	}
	payloadArgs := make([][][]byte, len(sizes))
	for k, sz := range sizes {
		payload := make([]byte, sz)
		for i := range payload {
			payload[i] = byte(i)
		}
		payloadArgs[k] = [][]byte{payload}
	}

	var injected atomic.Int64
	var lastInjectAt atomic.Int64

	// The sender creates tasks at the attempted rate; each task injects one
	// batch. Task pacing happens on this driver goroutine, like the
	// benchmark driver thread in the paper's HPX harness.
	var ms0, ms1 runtime.MemStats
	if p.MeasureAllocs {
		runtime.ReadMemStats(&ms0)
	}
	start = time.Now()
	interval := time.Duration(0)
	if p.Rate > 0 {
		interval = time.Duration(float64(p.Batch) / p.Rate * float64(time.Second))
	}
	for tIdx := 0; tIdx < tasks; tIdx++ {
		if interval > 0 {
			target := start.Add(time.Duration(tIdx) * interval)
			for time.Now().Before(target) {
				runtime.Gosched()
			}
		}
		base := tIdx * p.Batch
		sender.Spawn(func() {
			for b := 0; b < p.Batch; b++ {
				_ = sender.ApplyID(1, sinkID, payloadArgs[(base+b)%len(payloadArgs)])
			}
			if injected.Add(int64(p.Batch)) == int64(total) {
				lastInjectAt.Store(int64(time.Since(start)))
			}
		})
	}

	// Wait for the receiver's ack.
	deadline := time.Now().Add(p.Timeout)
	for doneAt.Load() == 0 {
		if time.Now().After(deadline) {
			return MsgRateResult{}, fmt.Errorf("bench: message-rate run timed out (%d/%d received)", received.Load(), total)
		}
		runtime.Gosched()
	}

	res := MsgRateResult{AttemptedRate: p.Rate}
	if p.MeasureAllocs {
		runtime.ReadMemStats(&ms1)
		res.AllocsPerMsg = float64(ms1.Mallocs-ms0.Mallocs) / float64(total)
	}
	if p.Inspect != nil {
		p.Inspect(rt)
	}
	injNs := lastInjectAt.Load()
	commNs := doneAt.Load()
	if injNs > 0 {
		res.AchievedInj = float64(total) / (float64(injNs) / 1e9)
	}
	if commNs > 0 {
		res.MsgRate = float64(total) / (float64(commNs) / 1e9)
	}
	return res, nil
}
