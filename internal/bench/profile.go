package bench

import (
	"fmt"
	"strings"
	"time"

	"hpxgo/internal/core"
)

// ProfileText runs the 16KiB message-rate workload under the improved MPI
// parcelport and the baseline LCI parcelport and reports where the time
// goes — the reproduction of the paper's profiling analysis ("it spent the
// vast majority of time inside the MPI_Test function, spinning on the
// blocking lock of the ucp_progress function").
func ProfileText(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Profiling analysis: 16KiB message-rate workload, unlimited injection.\n\n")

	type mpiProf struct {
		lockWait     [2]time.Duration
		lockAcquires [2]uint64
		testCalls    [2]uint64
		elapsed      time.Duration
	}
	var mp mpiProf
	start := time.Now()
	resMPI, err := MessageRate("mpi_i", MsgRateParams{
		Size: 16 * 1024, Batch: sc.Batch16K, Total: sc.Total16K,
		Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
		Inspect: func(rt *core.Runtime) {
			for i := 0; i < 2; i++ {
				st := rt.MPIComm(i).Stats()
				mp.lockWait[i] = st.LockWait
				mp.lockAcquires[i] = st.LockAcquires
				mp.testCalls[i] = st.TestCalls
			}
		},
	})
	if err != nil {
		return "", err
	}
	mp.elapsed = time.Since(start)
	fmt.Fprintf(&b, "mpi_i: message rate %.0f msgs/s\n", resMPI.MsgRate)
	for i := 0; i < 2; i++ {
		role := "sender"
		if i == 1 {
			role = "receiver"
		}
		fmt.Fprintf(&b, "  rank %d (%s): %d MPI_Test calls (%.1f per HPX message), %d progress-lock acquisitions,\n",
			i, role, mp.testCalls[i], float64(mp.testCalls[i])/float64(sc.Total16K), mp.lockAcquires[i])
		fmt.Fprintf(&b, "    %.2fms spent blocked on the coarse progress lock (%.1f%% of the run)\n",
			float64(mp.lockWait[i].Microseconds())/1e3,
			100*float64(mp.lockWait[i])/float64(mp.elapsed))
	}
	b.WriteString("  Every Test serializes on the one progress lock and round-robins the\n")
	b.WriteString("  pending-connection list: O(pending) polling per completion. On a\n")
	b.WriteString("  single-CPU host the lock is rarely *blocked on* (no true parallelism),\n")
	b.WriteString("  so the cost shows up as the Test-call volume itself; on the paper's\n")
	b.WriteString("  128-core nodes the same structure turns into lock spinning.\n")

	var lciProgress, lciRetries uint64
	resLCI, err := MessageRate("lci", MsgRateParams{
		Size: 16 * 1024, Batch: sc.Batch16K, Total: sc.Total16K,
		Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
		Inspect: func(rt *core.Runtime) {
			for i := 0; i < 2; i++ {
				st := rt.Locality(i).LCIDevice().Stats()
				lciProgress += st.ProgressCalls
				lciRetries += st.Retries
			}
		},
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nlci (lci_psr_cq_pin_i): message rate %.0f msgs/s\n", resLCI.MsgRate)
	fmt.Fprintf(&b, "  %d LCI progress calls across both devices (try-locks + atomics, no\n", lciProgress)
	fmt.Fprintf(&b, "  blocking progress lock to wait on), %d nonblocking-retry events\n", lciRetries)
	if resMPI.MsgRate > 0 {
		fmt.Fprintf(&b, "\nlci / mpi_i message-rate ratio: %.2fx\n", resLCI.MsgRate/resMPI.MsgRate)
	}
	return b.String(), nil
}
