package bench

import (
	"fmt"
	"time"

	"hpxgo/internal/amt"
	"hpxgo/internal/core"
	"hpxgo/internal/fabric"
	"hpxgo/internal/stats"
)

// LatencyParams configures the §4.2 multi-message ping-pong benchmark:
// Window concurrent chains of tasks bounce a fixed-size message between two
// localities for Steps one-way legs each.
type LatencyParams struct {
	Size    int // message payload bytes
	Window  int // number of concurrent chains
	Steps   int // one-way legs per chain (must be even)
	Workers int
	Fabric  fabric.Config
	Timeout time.Duration
}

// LatencyDist describes the one-way latency distribution of a run in
// microseconds.
type LatencyDist struct {
	Mean float64
	P50  float64
	P99  float64
	Max  float64
}

// Latency runs the ping-pong benchmark and returns the mean one-way latency
// in microseconds (total time divided by legs, as in the paper).
func Latency(ppName string, p LatencyParams) (float64, error) {
	d, err := LatencyDistribution(ppName, p)
	return d.Mean, err
}

// LatencyDistribution is Latency with per-round-trip timing: alongside the
// paper's aggregate mean it reports tail percentiles, which is how modern
// communication benchmarks summarize jitter.
func LatencyDistribution(ppName string, p LatencyParams) (LatencyDist, error) {
	if p.Window <= 0 {
		p.Window = 1
	}
	if p.Steps <= 0 {
		p.Steps = 100
	}
	if p.Steps%2 == 1 {
		p.Steps++
	}
	if p.Workers <= 0 {
		p.Workers = 2
	}
	if p.Timeout <= 0 {
		p.Timeout = 5 * time.Minute
	}
	if p.Fabric.Nodes == 0 {
		p.Fabric = Expanse.Fabric(2)
	}

	rt, err := core.NewRuntime(core.Config{
		Localities:         2,
		WorkersPerLocality: p.Workers,
		Parcelport:         ppName,
		Fabric:             p.Fabric,
	})
	if err != nil {
		return LatencyDist{}, err
	}
	defer rt.Shutdown()
	echoID := rt.MustRegisterAction("lat_echo", func(loc *core.Locality, args [][]byte) [][]byte {
		return args
	})
	if err := rt.Start(); err != nil {
		return LatencyDist{}, err
	}

	sender := rt.Locality(0)
	payload := make([]byte, p.Size)
	rounds := p.Steps / 2 // each round trip is two one-way legs

	// Per-chain round-trip samples, halved into one-way legs.
	samples := make([][]float64, p.Window)

	start := time.Now()
	chains := make([]*amt.Future[struct{}], p.Window)
	for w := 0; w < p.Window; w++ {
		w := w
		samples[w] = make([]float64, 0, rounds)
		// Every "ping" and "pong" is a distinct task: the chain body runs as
		// a task on the sender, and each echo runs as a task on the peer.
		chains[w] = core.Async(sender, func() (struct{}, error) {
			for r := 0; r < rounds; r++ {
				t0 := time.Now()
				f := sender.CallID(1, echoID, [][]byte{payload})
				if _, err := f.GetTimeout(p.Timeout); err != nil {
					return struct{}{}, fmt.Errorf("chain leg %d: %w", r, err)
				}
				samples[w] = append(samples[w], float64(time.Since(t0).Nanoseconds())/2e3)
			}
			return struct{}{}, nil
		})
	}
	for w, c := range chains {
		if _, err := c.GetTimeout(p.Timeout); err != nil {
			return LatencyDist{}, fmt.Errorf("bench: latency chain %d: %w", w, err)
		}
	}
	elapsed := time.Since(start)

	var all []float64
	for _, s := range samples {
		all = append(all, s...)
	}
	perLeg := elapsed / time.Duration(p.Steps)
	return LatencyDist{
		Mean: float64(perLeg.Nanoseconds()) / 1e3,
		P50:  stats.Percentile(all, 50),
		P99:  stats.Percentile(all, 99),
		Max:  stats.Percentile(all, 100),
	}, nil
}
