package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hpxgo/internal/core"
)

// Inline-lane benchmark: the run-to-completion delivery artifact behind
// DESIGN.md §14. Two kinds of rows, committed as results/BENCH_inline.json
// and re-checked by `make bench-gate`:
//
//   - the 64 B aggregated message-rate A/B with the inline lane on (default)
//     and forced off (spawn-always, the pre-inline datapath), measured over
//     the same wire and workload — the headline claim is the on/off ratio;
//   - the serving-tier Zipf capacity row with the inline lane on, which must
//     stay no worse than the committed serving-tier baseline (the inline
//     lane must not regress a workload whose actions were already cheap).
//
// The 0 allocs/op inline steady-state claim is enforced separately by
// `make alloc-gate` (TestDeliverInlineBundleZeroAllocs): AllocsPerRun is
// exact where a wire-level process-wide malloc count is noisy.

// InlineRecord is one measured row.
type InlineRecord struct {
	Op         string  `json:"op"`          // e.g. "inline/msgrate/64B/on"
	Rate       float64 `json:"rate"`        // msgs/s or ops/s
	NsOp       float64 `json:"ns_op"`       // wall ns per delivered message
	AllocsOp   float64 `json:"allocs_op"`   // process-wide mallocs per message
	InlineFrac float64 `json:"inline_frac"` // inline-executed / delivered (msgrate rows)
}

// InlineReport is the artifact: rows plus provenance.
type InlineReport struct {
	Commit    string         `json:"commit"`
	Generated string         `json:"generated"`
	Scale     string         `json:"scale"`
	Records   []InlineRecord `json:"records"`
}

// Structural claims checked on every fresh report.
const (
	// inlineSpeedupMin: the inline lane must deliver at least this multiple
	// of the spawn-always 64 B small-parcel rate. Measured ~4x on the 1-CPU
	// host (the spawn path pays handoff, wakeup, and scheduling per parcel
	// that run-to-completion does not); 1.3x is the claim's floor, far below
	// the observed band so scheduler noise cannot flip it.
	inlineSpeedupMin = 1.3
	// inlineEngagedMin: the on-row must actually run a substantial share of
	// its parcels inline — a speedup measured while the lane sat idle would
	// be measuring something else.
	inlineEngagedMin = 0.5
)

// Row names the claims reference.
const (
	inlineOnRow    = "inline/msgrate/64B/on"
	inlineOffRow   = "inline/msgrate/64B/off"
	inlineServeRow = "inline/serve/zipf/cache"
)

// inlineMsgRateRow measures one 64 B aggregated message-rate configuration,
// best-of-reps, capturing the fraction of deliveries the inline lane took.
func inlineMsgRateRow(sc Scale, op string, off bool) (InlineRecord, error) {
	reps := sc.Reps
	if reps < 3 {
		reps = 3
	}
	rec := InlineRecord{Op: op}
	for r := 0; r < reps; r++ {
		var inlined, delivered uint64
		p := MsgRateParams{
			Size: 64, Batch: 50, Total: sc.Total8B, Agg: true,
			Fabric: Expanse.Fabric(2), MeasureAllocs: true,
			InlineOff: off,
			Inspect: func(rt *core.Runtime) {
				for i := 0; i < rt.Localities(); i++ {
					inlined += rt.Locality(i).InlineExecuted()
					delivered += rt.Locality(i).ParcelsExecuted()
				}
			},
		}
		res, err := MessageRate("lci_i", p)
		if err != nil {
			return rec, fmt.Errorf("inline bench %s: %w", op, err)
		}
		if res.MsgRate > rec.Rate {
			rec.Rate = res.MsgRate
			if delivered > 0 {
				rec.InlineFrac = float64(inlined) / float64(delivered)
			}
		}
		if rec.AllocsOp == 0 || res.AllocsPerMsg < rec.AllocsOp {
			rec.AllocsOp = res.AllocsPerMsg
		}
	}
	if rec.Rate > 0 {
		rec.NsOp = 1e9 / rec.Rate
	}
	return rec, nil
}

// inlineServeCapacity measures the serving-tier Zipf closed-loop capacity
// row with the inline lane at its defaults — the same configuration as the
// committed serve/zipf/cache baseline, so the two are directly comparable.
func inlineServeCapacity(sc Scale) (InlineRecord, error) {
	pts := servePoints(sc)
	var pt servePoint
	for _, p := range pts {
		if p.op == serveZipfCache {
			pt = p
		}
	}
	srec, err := serveRow(sc, pt)
	if err != nil {
		return InlineRecord{}, fmt.Errorf("inline bench %s: %w", inlineServeRow, err)
	}
	rec := InlineRecord{Op: inlineServeRow, Rate: srec.OpsSec}
	if rec.Rate > 0 {
		rec.NsOp = 1e9 / rec.Rate
	}
	return rec, nil
}

// InlineBench measures every row and checks the structural claims.
// serveBaseline is the committed serving-tier Zipf capacity (ops/s) the
// serve row must stay comparable to; pass 0 to skip that check. On a claims
// failure the report is returned alongside the error so the caller can
// print the rows.
func InlineBench(sc Scale, scaleName string, serveBaseline float64) (*InlineReport, error) {
	rep := &InlineReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	on, err := inlineMsgRateRow(sc, inlineOnRow, false)
	if err != nil {
		return nil, err
	}
	off, err := inlineMsgRateRow(sc, inlineOffRow, true)
	if err != nil {
		return nil, err
	}
	srv, err := inlineServeCapacity(sc)
	if err != nil {
		return nil, err
	}
	rep.Records = []InlineRecord{on, off, srv}
	if err := InlineClaims(rep, serveBaseline); err != nil {
		return rep, err
	}
	return rep, nil
}

// InlineClaims validates the report: the inline lane's small-parcel speedup
// over spawn-always, genuine lane engagement behind it, and (when a
// committed serving-tier baseline is supplied) Zipf capacity no worse than
// that baseline within the standard gate band.
func InlineClaims(r *InlineReport, serveBaseline float64) error {
	byOp := map[string]InlineRecord{}
	for _, rec := range r.Records {
		byOp[rec.Op] = rec
	}
	on, off, srv := byOp[inlineOnRow], byOp[inlineOffRow], byOp[inlineServeRow]
	var failures []string
	if off.Rate > 0 && on.Rate < off.Rate*inlineSpeedupMin {
		failures = append(failures, fmt.Sprintf("inline speedup %.2fx < %.1fx (on %.0f msgs/s vs spawn-always %.0f msgs/s)",
			on.Rate/off.Rate, inlineSpeedupMin, on.Rate, off.Rate))
	}
	if on.InlineFrac < inlineEngagedMin {
		failures = append(failures, fmt.Sprintf("inline lane took %.2f of deliveries on the on-row, want >= %.2f",
			on.InlineFrac, inlineEngagedMin))
	}
	if off.InlineFrac != 0 {
		failures = append(failures, fmt.Sprintf("spawn-always row ran %.2f of deliveries inline — the A/B is not an A/B",
			off.InlineFrac))
	}
	if serveBaseline > 0 && srv.Rate < serveBaseline/gateNsOpFactor {
		failures = append(failures, fmt.Sprintf("serve zipf capacity %.0f ops/s < committed baseline %.0f / %.1f — inline lane regressed the serving tier",
			srv.Rate, serveBaseline, gateNsOpFactor))
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: inline claims failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// ServeZipfBaseline extracts the committed serving-tier Zipf capacity row
// the inline serve claim compares against.
func ServeZipfBaseline(committed *ServeReport) float64 {
	for _, rec := range committed.Records {
		if rec.Op == serveZipfCache {
			return rec.OpsSec
		}
	}
	return 0
}

// JSON renders the report as the BENCH_inline.json artifact.
func (r *InlineReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the rows for the experiments output.
func (r *InlineReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# inline-lane rows (commit %s)\n", r.Commit)
	fmt.Fprintf(&b, "%-26s %12s %10s %10s %12s\n", "op", "rate/s", "ns/op", "allocs/op", "inline_frac")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-26s %12.0f %10.0f %10.2f %12.2f\n",
			rec.Op, rec.Rate, rec.NsOp, rec.AllocsOp, rec.InlineFrac)
	}
	return b.String()
}

// ParseInlineReport decodes a committed BENCH_inline.json.
func ParseInlineReport(data []byte) (*InlineReport, error) {
	var r InlineReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad BENCH_inline.json: %w", err)
	}
	return &r, nil
}

// InlineGate compares a fresh measurement against the committed artifact —
// rate must not fall below 1/gateNsOpFactor of each committed row, allocs
// must stay within the standard band — and re-validates the structural
// claims on the fresh rows.
func InlineGate(fresh, committed *InlineReport, serveBaseline float64) (string, error) {
	if fresh.Scale != committed.Scale {
		return "", fmt.Errorf("bench: gate scale %q vs committed artifact scale %q — regenerate the artifact at the gate's scale",
			fresh.Scale, committed.Scale)
	}
	byOp := map[string]InlineRecord{}
	for _, rec := range fresh.Records {
		byOp[rec.Op] = rec
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# inline gate vs committed commit %s\n", committed.Commit)
	fmt.Fprintf(&b, "%-26s %18s %18s %8s\n", "op", "rate new/old", "allocs/op new/old", "verdict")
	var failures []string
	for _, old := range committed.Records {
		cur, ok := byOp[old.Op]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: row missing from fresh run", old.Op))
			continue
		}
		verdict := "ok"
		if old.Rate > 0 && cur.Rate < old.Rate/gateNsOpFactor {
			verdict = "SLOWER"
			failures = append(failures, fmt.Sprintf("%s: %.0f/s < committed %.0f / %.1f",
				old.Op, cur.Rate, old.Rate, gateNsOpFactor))
		}
		if cur.AllocsOp > old.AllocsOp*gateAllocsFactor+gateAllocsSlack {
			verdict = "ALLOCS"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.2f > %.1fx committed %.2f + %.0f",
				old.Op, cur.AllocsOp, gateAllocsFactor, old.AllocsOp, gateAllocsSlack))
		}
		fmt.Fprintf(&b, "%-26s %8.0f/%-9.0f %8.2f/%-7.2f %8s\n",
			old.Op, cur.Rate, old.Rate, cur.AllocsOp, old.AllocsOp, verdict)
	}
	if err := InlineClaims(fresh, serveBaseline); err != nil {
		failures = append(failures, err.Error())
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("bench: inline regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
