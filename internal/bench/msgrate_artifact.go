package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Message-rate regression artifact: a small fixed set of datapath
// configurations measured as (ns/op, allocs/op) rows, committed as
// results/BENCH_msgrate.json and re-checked by `make bench-gate` so a
// datapath change that regresses throughput or steady-state allocation
// shows up in `make check` instead of in a later profiling session.

// MsgRateRecord is one measured configuration row.
type MsgRateRecord struct {
	Op       string  `json:"op"`        // e.g. "msgrate/lci_i/64B"
	NsOp     float64 `json:"ns_op"`     // wall ns per delivered message
	AllocsOp float64 `json:"allocs_op"` // process-wide mallocs per message
	MsgRate  float64 `json:"msg_rate"`  // messages/second received
}

// MsgRateReport is the artifact: rows plus provenance.
type MsgRateReport struct {
	Commit    string          `json:"commit"`
	Generated string          `json:"generated"`
	Scale     string          `json:"scale"`
	Records   []MsgRateRecord `json:"records"`
}

// Gate tolerances. ns/op is wall time on a shared host, so the headroom is
// generous — the gate exists to catch step regressions (a lost fast path, a
// new per-message allocation), not percent-level drift. allocs/op is nearly
// deterministic, so its band is tight.
const (
	gateNsOpFactor   = 1.8
	gateAllocsFactor = 1.5
	gateAllocsSlack  = 3.0
)

// msgRatePoints enumerates the gated configurations.
func msgRatePoints(sc Scale) []struct {
	op string
	p  MsgRateParams
} {
	return []struct {
		op string
		p  MsgRateParams
	}{
		{"msgrate/lci_i/64B", MsgRateParams{
			Size: 64, Batch: 50, Total: sc.Total8B, Fabric: Expanse.Fabric(2), MeasureAllocs: true,
		}},
		{"msgrate/lci_i_agg/64B", MsgRateParams{
			Size: 64, Batch: 50, Total: sc.Total8B, Agg: true, Fabric: Expanse.Fabric(2), MeasureAllocs: true,
		}},
		{"msgrate/lci_i/16KiB", MsgRateParams{
			Size: 16384, Batch: 10, Total: sc.Total16K, Fabric: Expanse.Fabric(2), MeasureAllocs: true,
		}},
	}
}

// MsgRateBench measures every gated point, best-of-reps (minimum ns/op and
// allocs/op across repetitions: the gate wants the achievable floor, not
// scheduling noise).
func MsgRateBench(sc Scale, scaleName string) (*MsgRateReport, error) {
	rep := &MsgRateReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	reps := sc.Reps
	if reps < 3 {
		reps = 3
	}
	for _, pt := range msgRatePoints(sc) {
		rec := MsgRateRecord{Op: pt.op}
		for r := 0; r < reps; r++ {
			res, err := MessageRate("lci_i", pt.p)
			if err != nil {
				return nil, fmt.Errorf("msgrate bench %s: %w", pt.op, err)
			}
			if res.MsgRate > rec.MsgRate {
				rec.MsgRate = res.MsgRate
			}
			if rec.AllocsOp == 0 || res.AllocsPerMsg < rec.AllocsOp {
				rec.AllocsOp = res.AllocsPerMsg
			}
		}
		if rec.MsgRate > 0 {
			rec.NsOp = 1e9 / rec.MsgRate
		}
		rep.Records = append(rep.Records, rec)
	}
	return rep, nil
}

// JSON renders the report as the BENCH_msgrate.json artifact.
func (r *MsgRateReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the rows for the experiments output.
func (r *MsgRateReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# message-rate regression rows (commit %s)\n", r.Commit)
	fmt.Fprintf(&b, "%-24s %12s %10s %10s\n", "op", "msgs/s", "ns/op", "allocs/op")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-24s %12.0f %10.0f %10.2f\n", rec.Op, rec.MsgRate, rec.NsOp, rec.AllocsOp)
	}
	return b.String()
}

// ParseMsgRateReport decodes a committed BENCH_msgrate.json.
func ParseMsgRateReport(data []byte) (*MsgRateReport, error) {
	var r MsgRateReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad BENCH_msgrate.json: %w", err)
	}
	return &r, nil
}

// MsgRateGate compares a fresh measurement against the committed artifact
// and fails on regression. Both reports must come from the same scale
// (totals differ otherwise and the rows are not comparable).
func MsgRateGate(fresh, committed *MsgRateReport) (string, error) {
	if fresh.Scale != committed.Scale {
		return "", fmt.Errorf("bench: gate scale %q vs committed artifact scale %q — regenerate the artifact at the gate's scale",
			fresh.Scale, committed.Scale)
	}
	byOp := map[string]MsgRateRecord{}
	for _, rec := range fresh.Records {
		byOp[rec.Op] = rec
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# bench gate vs committed commit %s\n", committed.Commit)
	fmt.Fprintf(&b, "%-24s %14s %16s %8s\n", "op", "ns/op new/old", "allocs/op new/old", "verdict")
	var failures []string
	for _, old := range committed.Records {
		cur, ok := byOp[old.Op]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: row missing from fresh run", old.Op))
			continue
		}
		verdict := "ok"
		if old.NsOp > 0 && cur.NsOp > old.NsOp*gateNsOpFactor {
			verdict = "SLOWER"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f > %.1fx committed %.0f",
				old.Op, cur.NsOp, gateNsOpFactor, old.NsOp))
		}
		if cur.AllocsOp > old.AllocsOp*gateAllocsFactor+gateAllocsSlack {
			verdict = "ALLOCS"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.2f > %.1fx committed %.2f + %.0f",
				old.Op, cur.AllocsOp, gateAllocsFactor, old.AllocsOp, gateAllocsSlack))
		}
		fmt.Fprintf(&b, "%-24s %6.0f/%-7.0f %8.2f/%-7.2f %8s\n",
			old.Op, cur.NsOp, old.NsOp, cur.AllocsOp, old.AllocsOp, verdict)
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("bench: message-rate regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
