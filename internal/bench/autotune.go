package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"hpxgo/internal/core"
)

// Autotune acceptance sweep: the adaptive control layer (internal/tune)
// against every hand-tuned static configuration, on the three workload
// shapes the controllers are built for. The claim under test is the
// tentpole acceptance criterion: on every workload the adaptive runtime
// matches or beats the best static configuration within noise — because no
// single static point wins everywhere, while the controllers move each
// destination to the right point at runtime. The sweep is the source of
// results/BENCH_autotune.json.

// autotuneNoise is the fraction of the best static rate the adaptive run
// may fall short by and still pass (run-to-run noise band of the simulated
// host).
const autotuneNoise = 0.15

// AutotuneKnobs snapshots the adaptive controller's converged per-peer
// knobs after a run (evidence the loops actuated).
type AutotuneKnobs struct {
	FlushBytes   int    `json:"flush_bytes"`
	FlushDelayNs int64  `json:"flush_delay_ns"`
	Bypass       bool   `json:"bypass"`
	ZCThreshold  int    `json:"zc_threshold"`
	Ticks        uint64 `json:"ticks"`
}

// AutotuneRecord is one (workload, config) measurement.
type AutotuneRecord struct {
	Workload string         `json:"workload"`
	Config   string         `json:"config"`
	MsgRate  float64        `json:"msg_rate"` // messages/second received
	NsOp     float64        `json:"ns_op"`    // wall ns per delivered message
	AllocsOp float64        `json:"allocs_op"`
	Knobs    *AutotuneKnobs `json:"knobs,omitempty"` // adaptive rows only
}

// AutotuneVerdict is one workload's adaptive-vs-best-static comparison.
type AutotuneVerdict struct {
	Workload     string  `json:"workload"`
	BestStatic   string  `json:"best_static"`
	BestRate     float64 `json:"best_static_rate"`
	AdaptiveRate float64 `json:"adaptive_rate"`
	Ratio        float64 `json:"ratio"` // adaptive / best static
	Pass         bool    `json:"pass"`  // ratio >= 1 - autotuneNoise
}

// AutotuneReport is the full sweep plus provenance
// (results/BENCH_autotune.json).
type AutotuneReport struct {
	Commit    string            `json:"commit"`
	Generated string            `json:"generated"`
	Scale     string            `json:"scale"`
	Noise     float64           `json:"noise_tolerance"`
	Records   []AutotuneRecord  `json:"records"`
	Verdicts  []AutotuneVerdict `json:"verdicts"`
}

// autotuneConfig is one column of the sweep.
type autotuneConfig struct {
	name     string
	agg      bool
	aggSize  int
	aggDelay time.Duration
	adaptive bool
}

// autotuneConfigs: the hand-tuned static points (bundling off, bundling at
// the default knobs, and the two extreme hand-tunings), plus the adaptive
// runtime. Every config runs the same send-immediate upper layer.
func autotuneConfigs() []autotuneConfig {
	return []autotuneConfig{
		{name: "static/noagg"},
		{name: "static/agg-default", agg: true},
		{name: "static/agg-1KiB-25us", agg: true, aggSize: 1024, aggDelay: 25 * time.Microsecond},
		{name: "static/agg-16KiB-200us", agg: true, aggSize: 16384, aggDelay: 200 * time.Microsecond},
		{name: "adaptive", agg: true, adaptive: true},
	}
}

// autotuneWorkloads: the row shapes. All run over the reliable fabric (the
// ARQ supplies the RTT signal the controllers consume) on the baseline
// send-immediate LCI parcelport.
func autotuneWorkloads(sc Scale) []struct {
	name string
	p    MsgRateParams
} {
	fab := Expanse.Fabric(2)
	fab.Reliability = true
	coldTotal := sc.Total8B / 10
	if coldTotal < 100 {
		coldTotal = 100
	}
	return []struct {
		name string
		p    MsgRateParams
	}{
		// Dense small messages, unlimited rate: the bundling sweet spot.
		{"hot-peer", MsgRateParams{
			Size: 64, Batch: 50, Total: sc.Total8B, Fabric: fab, MeasureAllocs: true,
		}},
		// Sparse singletons: every buffered message just pays the flush
		// delay, so send-immediate (or adaptive bypass) should win.
		{"cold-peer", MsgRateParams{
			Size: 64, Batch: 1, Total: coldTotal, Rate: 2000, Fabric: fab, MeasureAllocs: true,
		}},
		// Mixed sizes spanning the eager/rendezvous boundary.
		{"mixed-size", MsgRateParams{
			Sizes: []int{64, 1024, 16384}, Batch: 10, Total: sc.Total8B / 2,
			Fabric: fab, MeasureAllocs: true,
		}},
	}
}

// AutotuneSweep measures every (workload, config) cell, best-of-reps, and
// derives the per-workload verdicts.
func AutotuneSweep(sc Scale, scaleName string) (*AutotuneReport, error) {
	rep := &AutotuneReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
		Noise:     autotuneNoise,
	}
	reps := sc.Reps
	if reps < 3 {
		reps = 3 // best-of-3 floor: single runs are too noisy to gate on
	}
	for _, wl := range autotuneWorkloads(sc) {
		bestStatic := ""
		bestRate := 0.0
		adaptiveRate := 0.0
		for _, cfg := range autotuneConfigs() {
			p := wl.p
			p.Agg = cfg.agg
			p.AggSize = cfg.aggSize
			p.AggDelay = cfg.aggDelay
			p.Autotune = cfg.adaptive
			var knobs *AutotuneKnobs
			if cfg.adaptive {
				p.Inspect = func(rt *core.Runtime) {
					if ctl := rt.Locality(0).Tuner(); ctl != nil {
						peer := ctl.Peer(1)
						knobs = &AutotuneKnobs{
							FlushBytes:   peer.FlushBytes,
							FlushDelayNs: peer.FlushDelayNs,
							Bypass:       peer.Bypass,
							ZCThreshold:  peer.ZCThreshold,
							Ticks:        ctl.Ticks(),
						}
					}
				}
			}
			best := MsgRateResult{}
			for r := 0; r < reps; r++ {
				res, err := MessageRate("lci_i", p)
				if err != nil {
					return nil, fmt.Errorf("autotune %s/%s: %w", wl.name, cfg.name, err)
				}
				if res.MsgRate > best.MsgRate {
					best = res
				}
			}
			rec := AutotuneRecord{
				Workload: wl.name,
				Config:   cfg.name,
				MsgRate:  best.MsgRate,
				AllocsOp: best.AllocsPerMsg,
				Knobs:    knobs,
			}
			if best.MsgRate > 0 {
				rec.NsOp = 1e9 / best.MsgRate
			}
			rep.Records = append(rep.Records, rec)
			if cfg.adaptive {
				adaptiveRate = best.MsgRate
			} else if best.MsgRate > bestRate {
				bestRate = best.MsgRate
				bestStatic = cfg.name
			}
		}
		v := AutotuneVerdict{
			Workload:     wl.name,
			BestStatic:   bestStatic,
			BestRate:     bestRate,
			AdaptiveRate: adaptiveRate,
		}
		if bestRate > 0 {
			v.Ratio = adaptiveRate / bestRate
		}
		v.Pass = v.Ratio >= 1-autotuneNoise
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep, nil
}

// JSON renders the report as the BENCH_autotune.json artifact.
func (r *AutotuneReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the sweep as the cmd/experiments "autotune" target output.
func (r *AutotuneReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# adaptive self-tuning vs hand-tuned static configs (commit %s)\n", r.Commit)
	fmt.Fprintf(&b, "%-11s %-22s %12s %10s %10s\n", "workload", "config", "msgs/s", "ns/msg", "allocs/msg")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-11s %-22s %12.0f %10.0f %10.2f", rec.Workload, rec.Config, rec.MsgRate, rec.NsOp, rec.AllocsOp)
		if rec.Knobs != nil {
			fmt.Fprintf(&b, "   [flush=%dB/%dus bypass=%v zc=%d ticks=%d]",
				rec.Knobs.FlushBytes, rec.Knobs.FlushDelayNs/1000, rec.Knobs.Bypass,
				rec.Knobs.ZCThreshold, rec.Knobs.Ticks)
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	for _, v := range r.Verdicts {
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "# %-11s adaptive/best-static = %.2f (best static: %s) [%s]\n",
			v.Workload, v.Ratio, v.BestStatic, status)
	}
	return b.String()
}

// Err returns a non-nil error if any workload's verdict failed — the
// acceptance criterion wired into the experiments target.
func (r *AutotuneReport) Err() error {
	for _, v := range r.Verdicts {
		if !v.Pass {
			return fmt.Errorf("autotune: adaptive runtime lost to %s on %s (ratio %.2f < %.2f)",
				v.BestStatic, v.Workload, v.Ratio, 1-autotuneNoise)
		}
	}
	return nil
}
