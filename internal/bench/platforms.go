// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§4 microbenchmarks, §5 Octo-Tiger).
//
// Absolute scales are reduced to fit a single-host simulation (the paper
// runs 500K-message sweeps on 128-core InfiniBand nodes); the scale factors
// are explicit in Scale and recorded in EXPERIMENTS.md. All configurations
// of one figure run under identical scaled parameters, which is what the
// paper's relative claims require.
package bench

import "hpxgo/internal/fabric"

// Platform is a simulated cluster profile, standing in for the systems of
// Table 2 (SDSC Expanse) and Table 3 (Rostam).
type Platform struct {
	Name string

	// Descriptive rows, reproduced from the paper's tables.
	CPU          string
	Memory       string
	Storage      string
	NIC          string
	Interconnect string
	MaxNodes     int
	OS           string
	Compiler     string
	Software     string

	// Simulation knobs derived from the hardware above.
	WorkersPerLocality int     // scaled-down core count per node
	LatencyNs          int64   // fabric one-way latency
	GbitsPerSec        float64 // fabric per-rail bandwidth
	OctoLevel          int     // Octo-Tiger max octree level used in §5
}

// Fabric renders the platform's interconnect as a fabric configuration.
func (p Platform) Fabric(nodes int) fabric.Config {
	return fabric.Config{
		Nodes:               nodes,
		LatencyNs:           p.LatencyNs,
		GbitsPerSec:         p.GbitsPerSec,
		Rails:               2, // LCI's transport may reorder; keep both honest
		PacketOverheadBytes: 64,
	}
}

// Expanse is the SDSC Expanse profile (Table 2). 128 cores per node scale to
// 4 workers; HDR InfiniBand (2x50Gbps) keeps its bandwidth, with ~1us
// one-way latency.
var Expanse = Platform{
	Name:         "expanse",
	CPU:          "AMD EPYC 7742 64-Core Processor (2 sockets, 128 cores per node)",
	Memory:       "256 GB, DDR4",
	Storage:      "1TB Local Intel NVMe SSD",
	NIC:          "Mellanox ConnectX-6",
	Interconnect: "HDR InfiniBand (2x50Gbps)",
	MaxNodes:     32,
	OS:           "Rocky Linux 8.7",
	Compiler:     "GCC 10.2.0",
	Software:     "OpenMPI 4.1.5, UCX 1.14.0",

	WorkersPerLocality: 4,
	LatencyNs:          1000,
	GbitsPerSec:        100,
	OctoLevel:          6,
}

// Rostam is the LSU Rostam profile (Table 3). 40 Skylake cores scale to 2
// workers; FDR InfiniBand (4x14Gbps) has about half HDR's bandwidth and
// slightly higher latency.
var Rostam = Platform{
	Name:         "rostam",
	CPU:          "Intel(R) Xeon(R) Gold 6148 CPU (Skylake) (2 sockets, 40 cores per node)",
	Memory:       "96 GB, DDR4",
	Storage:      "1TB Local NVMe SSD",
	NIC:          "Mellanox ConnectX-3",
	Interconnect: "FDR InfiniBand (4x14Gbps)",
	MaxNodes:     16,
	OS:           "Red Hat Linux 8.8",
	Compiler:     "GCC 10.3.1",
	Software:     "OpenMPI 4.1.5, UCX 1.14.0",

	WorkersPerLocality: 2,
	LatencyNs:          1700,
	GbitsPerSec:        56,
	OctoLevel:          5,
}

// Platforms lists the two evaluation systems.
func Platforms() []Platform { return []Platform{Expanse, Rostam} }

// Scale sets the experiment sizes. The paper's values appear in comments.
type Scale struct {
	Reps int // repetitions per data point (paper: >= 5)

	// Message-rate sweep (Figs 1-6).
	Total8B  int       // total 8B messages (paper: 500_000)
	Batch8B  int       // messages per task (paper: 100)
	Total16K int       // total 16KiB messages (paper: 100_000)
	Batch16K int       // messages per task (paper: 10)
	Rates8B  []float64 // attempted injection rates, msgs/s (0 = unlimited)
	Rates16K []float64

	// Latency (Figs 7-9).
	LatencySteps int   // chain length (one-way legs)
	Sizes7       []int // message sizes of Fig 7
	Windows      []int // window sizes of Figs 8-9

	// Octo-Tiger (Figs 10-11).
	OctoSteps     int   // stop step (paper: 5)
	OctoNodes     []int // node counts per platform sweep
	OctoNodesR    []int
	OctoSubgrid   int
	OctoFields    int
	OctoLevelExp  int // scaled-down levels (paper: 6 and 5)
	OctoLevelRost int

	// Collectives scaling (flat vs tree latency sweep).
	CollNodes []int // simulated locality counts
	CollIters int   // collectives timed per repetition

	// Serving tier (KV over the runtime: cache + coalescing + admission).
	ServeLocalities int     // localities (locality 0 is the client-only driver)
	ServeClients    int     // simulated clients on the driver
	ServeTotal      int     // total requests per row
	ServeKeys       int     // keyspace size
	ServeCache      int     // client cache entries (must be << ServeKeys)
	ServeRate       float64 // aggregate offered ops/s (overdrives capacity)
	ServeAdmitRate  float64 // shard admission rate for the admit row, ops/s

	// Datapath artifacts (BENCH_fabric.json / BENCH_deliver.json).
	FabricIters  int // timed iterations per fabric row (~35-350 ns each)
	DeliverIters int // timed iterations per deliver row (~1-11 us each)
}

// FullScale is used by cmd/experiments: large enough for stable rates on a
// single-CPU host, a ~250x reduction from the paper's counts.
func FullScale() Scale {
	return Scale{
		Reps:          3,
		Total8B:       20000,
		Batch8B:       100,
		Total16K:      2000,
		Batch16K:      10,
		Rates8B:       InjectionRates8B(),
		Rates16K:      InjectionRates16K(),
		LatencySteps:  300,
		Sizes7:        MessageSizes7(),
		Windows:       WindowSizes(),
		OctoSteps:     3,
		OctoNodes:     []int{2, 4, 8, 16, 32},
		OctoNodesR:    []int{2, 4, 8, 16},
		OctoSubgrid:   6,
		OctoFields:    4,
		OctoLevelExp:  3,
		OctoLevelRost: 2,
		CollNodes:     []int{8, 16, 32, 64, 128, 256},
		CollIters:     3,

		ServeLocalities: 4,
		ServeClients:    400,
		ServeTotal:      40000,
		ServeKeys:       2048,
		ServeCache:      256,
		ServeRate:       400e3,
		ServeAdmitRate:  10e3,

		FabricIters:  200000,
		DeliverIters: 20000,
	}
}

// QuickScale keeps unit tests and testing.B benches fast.
func QuickScale() Scale {
	s := FullScale()
	s.Reps = 1
	s.Total8B = 2000
	s.Total16K = 300
	s.Rates8B = []float64{400e3, 0}
	s.Rates16K = []float64{40e3, 0}
	s.LatencySteps = 60
	s.Sizes7 = []int{8, 1024, 16384}
	s.Windows = []int{1, 8}
	s.OctoSteps = 1
	s.OctoNodes = []int{2, 4}
	s.OctoNodesR = []int{2, 4}
	s.OctoSubgrid = 4
	s.OctoLevelExp = 2
	s.OctoLevelRost = 2
	s.CollNodes = []int{4, 8, 16}
	s.CollIters = 2
	s.ServeLocalities = 3
	s.ServeClients = 200
	s.ServeTotal = 20000
	s.ServeKeys = 2048
	s.ServeCache = 256
	s.ServeRate = 400e3
	s.ServeAdmitRate = 10e3
	s.FabricIters = 50000
	s.DeliverIters = 5000
	return s
}

// InjectionRates8B are the attempted injection rates of Figs 1-3 (K
// messages/s; 0 = unlimited). Paper: 100K/s to 1600K/s and unlimited.
func InjectionRates8B() []float64 {
	return []float64{100e3, 200e3, 400e3, 800e3, 1600e3, 0}
}

// InjectionRates16K are the attempted injection rates of Figs 4-6.
// Paper: 10K/s to 640K/s and unlimited.
func InjectionRates16K() []float64 {
	return []float64{10e3, 20e3, 40e3, 80e3, 160e3, 320e3, 640e3, 0}
}

// MessageSizes7 are the message sizes of Fig 7 (bytes), 8B to 64KiB.
func MessageSizes7() []int {
	return []int{8, 64, 512, 1024, 4096, 8192, 16384, 65536}
}

// WindowSizes are the window sizes of Figs 8-9. Paper: 1 to 64.
func WindowSizes() []int { return []int{1, 2, 4, 8, 16, 32, 64} }
