package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"hpxgo/internal/amt"
	"hpxgo/internal/core"
	"hpxgo/internal/fabric"
	"hpxgo/internal/serialization"
)

// Machine-readable datapath artifacts: the fabric and receiver-datapath
// microbenchmarks that results/fabric-datapath.txt and
// results/receiver-datapath.txt record as prose, re-measured through the
// public APIs and emitted as BENCH_fabric.json / BENCH_deliver.json in the
// same artifact format as the other BENCH_*.json files. The structural
// claims those prose files narrate — poll cost flat in cluster size,
// zero-allocation steady state, batching amortization — are validated on
// every regeneration.

// DatapathRecord is one measured row of either artifact.
type DatapathRecord struct {
	Op       string  `json:"op"`        // e.g. "fabric/poll1/n64"
	NsOp     float64 `json:"ns_op"`     // wall ns per operation
	AllocsOp float64 `json:"allocs_op"` // process-wide mallocs per operation
}

// DatapathReport is the artifact: rows plus provenance.
type DatapathReport struct {
	Commit    string           `json:"commit"`
	Generated string           `json:"generated"`
	Scale     string           `json:"scale"`
	Records   []DatapathRecord `json:"records"`
}

// Structural claims, from the prose "reading" sections they replace.
const (
	// dpFlatFactor: per-poll cost at 64 nodes must stay within this factor
	// of the 2-node cost — the ready index makes poll depend on traffic,
	// not cluster size (prose: 234 ns flat across 2/16/64; was 3.7x).
	dpFlatFactor = 2.0
	// dpAllocsMax: every steady-state datapath row must not allocate.
	dpAllocsMax = 0.5
	// dpAmortFactor: delivering a 32-parcel bundle must cost at most this
	// multiple of delivering a 1-parcel message — per-parcel cost at least
	// halves under batching (prose: 10685 vs 1430 ns, i.e. 7.5x for 32x
	// the work).
	dpAmortFactor = 16.0
)

// Row names the claims reference.
const (
	dpPoll1N2      = "fabric/poll1/n2"
	dpPoll1N64     = "fabric/poll1/n64"
	dpPollEmptyN2  = "fabric/pollempty/n2"
	dpPollEmptyN64 = "fabric/pollempty/n64"
	dpDeliverB1    = "deliver/bundle1"
	dpDeliverB32   = "deliver/bundle32"
)

// measureOp times iters runs of f (which performs exactly one operation)
// with a GC-settled MemStats bracket around the whole batch.
func measureOp(iters int, f func() error) (DatapathRecord, error) {
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return DatapathRecord{}, err
		}
	}
	el := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	return DatapathRecord{
		NsOp:     float64(el.Nanoseconds()) / float64(iters),
		AllocsOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
	}, nil
}

// fabricInjectPoll measures one eager inject → poll → release cycle.
func fabricInjectPoll(nodes, payloadBytes, iters int) (DatapathRecord, error) {
	n, err := fabric.NewNetwork(fabric.Config{Nodes: nodes})
	if err != nil {
		return DatapathRecord{}, err
	}
	src, dst := n.Device(1), n.Device(0)
	payload := make([]byte, payloadBytes)
	cycle := func() error {
		if err := src.Inject(fabric.Packet{Dst: 0, Data: payload}); err != nil {
			return err
		}
		var p *fabric.Packet
		for p == nil {
			p = dst.Poll()
		}
		p.Release()
		return nil
	}
	// Warm the packet pool so the timed region is steady state.
	for i := 0; i < 64; i++ {
		if err := cycle(); err != nil {
			return DatapathRecord{}, err
		}
	}
	return measureOp(iters, cycle)
}

// fabricPollEmpty measures the quiescent poll of a device with no traffic.
func fabricPollEmpty(nodes, iters int) (DatapathRecord, error) {
	n, err := fabric.NewNetwork(fabric.Config{Nodes: nodes})
	if err != nil {
		return DatapathRecord{}, err
	}
	dst := n.Device(0)
	return measureOp(iters, func() error {
		if dst.Poll() != nil {
			return fmt.Errorf("unexpected packet on quiescent device")
		}
		return nil
	})
}

// FabricBench measures the fabric datapath rows and checks the claims.
func FabricBench(sc Scale, scaleName string) (*DatapathReport, error) {
	rep := &DatapathReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	iters := sc.FabricIters
	add := func(op string, rec DatapathRecord, err error) error {
		if err != nil {
			return fmt.Errorf("fabric bench %s: %w", op, err)
		}
		rec.Op = op
		rep.Records = append(rep.Records, rec)
		return nil
	}
	rec, err := fabricInjectPoll(2, 8, iters)
	if err := add("fabric/injectpoll/8B", rec, err); err != nil {
		return nil, err
	}
	rec, err = fabricInjectPoll(2, 16384, iters)
	if err := add("fabric/injectpoll/16KiB", rec, err); err != nil {
		return nil, err
	}
	for _, nodes := range []int{2, 16, 64} {
		rec, err = fabricInjectPoll(nodes, 64, iters)
		if err := add(fmt.Sprintf("fabric/poll1/n%d", nodes), rec, err); err != nil {
			return nil, err
		}
	}
	for _, nodes := range []int{2, 16, 64} {
		rec, err = fabricPollEmpty(nodes, iters)
		if err := add(fmt.Sprintf("fabric/pollempty/n%d", nodes), rec, err); err != nil {
			return nil, err
		}
	}
	if err := FabricClaims(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// FabricClaims validates poll-cost flatness in cluster size and the
// zero-allocation steady state.
func FabricClaims(r *DatapathReport) error {
	byOp := map[string]DatapathRecord{}
	for _, rec := range r.Records {
		byOp[rec.Op] = rec
	}
	var failures []string
	for _, pair := range [][2]string{{dpPoll1N2, dpPoll1N64}, {dpPollEmptyN2, dpPollEmptyN64}} {
		small, big := byOp[pair[0]], byOp[pair[1]]
		if small.NsOp > 0 && big.NsOp > small.NsOp*dpFlatFactor {
			failures = append(failures, fmt.Sprintf("%s %.0f ns/op > %.1fx %s %.0f ns/op (poll cost must be flat in cluster size)",
				pair[1], big.NsOp, dpFlatFactor, pair[0], small.NsOp))
		}
	}
	for _, rec := range r.Records {
		if rec.AllocsOp > dpAllocsMax {
			failures = append(failures, fmt.Sprintf("%s: %.2f allocs/op (datapath steady state must not allocate)",
				rec.Op, rec.AllocsOp))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: fabric claims failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// deliverBundleRow measures the receiver datapath — decode, dispatch,
// batch-spawn, execute — for one bundled message of `bundle` 64 B parcels,
// injected through core.Locality.Deliver exactly as the parcelport would.
func deliverBundleRow(bundle, iters int) (DatapathRecord, error) {
	rt, err := core.NewRuntime(core.Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		return DatapathRecord{}, err
	}
	var ran, want uint64
	noop := rt.MustRegisterAction("bench_dp_noop", func(*core.Locality, [][]byte) [][]byte {
		ran++
		return nil
	})
	if err := rt.Start(); err != nil {
		return DatapathRecord{}, err
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	arg := make([]byte, 64)
	ps := make([]*serialization.Parcel, bundle)
	for i := range ps {
		ps[i] = &serialization.Parcel{Source: 1, Dest: 0, Action: noop, Args: [][]byte{arg}}
	}
	m := serialization.Encode(ps, 0)
	cycle := func() error {
		l.Deliver(m)
		want += uint64(bundle)
		for ran < want { // single worker: Gosched lets the tasks run
			runtime.Gosched()
		}
		return nil
	}
	for i := 0; i < 16; i++ { // warm the runner cache and pooled state
		if err := cycle(); err != nil {
			return DatapathRecord{}, err
		}
	}
	return measureOp(iters, cycle)
}

// spawnBatchRow measures amt.Scheduler.SpawnBatch for a bundle-sized burst.
func spawnBatchRow(batch, iters int) (DatapathRecord, error) {
	s := amt.New(amt.Config{Workers: 1})
	if err := s.Start(); err != nil {
		return DatapathRecord{}, err
	}
	defer s.Stop()
	var ran, want uint64
	task := func() { ran++ }
	tasks := make([]func(), batch)
	for i := range tasks {
		tasks[i] = task
	}
	cycle := func() error {
		s.SpawnBatch(tasks)
		want += uint64(batch)
		for ran < want {
			runtime.Gosched()
		}
		return nil
	}
	for i := 0; i < 16; i++ {
		if err := cycle(); err != nil {
			return DatapathRecord{}, err
		}
	}
	return measureOp(iters, cycle)
}

// DeliverBench measures the receiver-datapath rows and checks the claims.
func DeliverBench(sc Scale, scaleName string) (*DatapathReport, error) {
	rep := &DatapathReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	for _, bundle := range []int{1, 8, 32} {
		rec, err := deliverBundleRow(bundle, sc.DeliverIters)
		if err != nil {
			return nil, fmt.Errorf("deliver bench bundle=%d: %w", bundle, err)
		}
		rec.Op = fmt.Sprintf("deliver/bundle%d", bundle)
		rep.Records = append(rep.Records, rec)
	}
	for _, batch := range []int{8, 32} {
		rec, err := spawnBatchRow(batch, sc.DeliverIters)
		if err != nil {
			return nil, fmt.Errorf("deliver bench batch=%d: %w", batch, err)
		}
		rec.Op = fmt.Sprintf("spawn/batch%d", batch)
		rep.Records = append(rep.Records, rec)
	}
	if err := DeliverClaims(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// DeliverClaims validates the zero-allocation delivery path and the
// batching amortization (32 parcels must cost well under 32x one).
func DeliverClaims(r *DatapathReport) error {
	byOp := map[string]DatapathRecord{}
	for _, rec := range r.Records {
		byOp[rec.Op] = rec
	}
	var failures []string
	b1, b32 := byOp[dpDeliverB1], byOp[dpDeliverB32]
	if b1.NsOp > 0 && b32.NsOp > b1.NsOp*dpAmortFactor {
		failures = append(failures, fmt.Sprintf("deliver/bundle32 %.0f ns/op > %.0fx bundle1 %.0f ns/op (bundling must amortize per-parcel cost)",
			b32.NsOp, dpAmortFactor, b1.NsOp))
	}
	for _, rec := range r.Records {
		if rec.AllocsOp > dpAllocsMax {
			failures = append(failures, fmt.Sprintf("%s: %.2f allocs/op (delivery steady state must not allocate)",
				rec.Op, rec.AllocsOp))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: deliver claims failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// JSON renders the report as a BENCH_*.json artifact.
func (r *DatapathReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the rows for the experiments output.
func (r *DatapathReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# datapath rows (commit %s)\n", r.Commit)
	fmt.Fprintf(&b, "%-26s %12s %10s\n", "op", "ns/op", "allocs/op")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-26s %12.1f %10.2f\n", rec.Op, rec.NsOp, rec.AllocsOp)
	}
	return b.String()
}

// ParseDatapathReport decodes a committed BENCH_fabric.json or
// BENCH_deliver.json.
func ParseDatapathReport(data []byte) (*DatapathReport, error) {
	var r DatapathReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad datapath artifact: %w", err)
	}
	return &r, nil
}
