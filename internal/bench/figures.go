package bench

import (
	"fmt"
	"strings"

	"hpxgo/internal/parcelport"
	"hpxgo/internal/stats"
)

// Repeat runs f n times and summarizes the results.
func Repeat(n int, f func() (float64, error)) (stats.Summary, error) {
	if n <= 0 {
		n = 1
	}
	xs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v, err := f()
		if err != nil {
			return stats.Summary{}, err
		}
		xs = append(xs, v)
	}
	return stats.Summarize(xs), nil
}

// fig1Configs are the four configurations of Fig 1 / Fig 4.
func fig1Configs() []string {
	return []string{"lci_psr_cq_pin", "lci_psr_cq_pin_i", "mpi", "mpi_i"}
}

// lciImmediateVariants are the eight LCI "_i" configurations of Fig 2 / Fig 5.
func lciImmediateVariants() []string {
	return []string{
		"lci_psr_cq_pin_i", "lci_psr_cq_mt_i",
		"lci_psr_sy_pin_i", "lci_psr_sy_mt_i",
		"lci_sr_cq_pin_i", "lci_sr_cq_mt_i",
		"lci_sr_sy_pin_i", "lci_sr_sy_mt_i",
	}
}

// allConfigs are the eleven configurations of Fig 3 / Fig 6 / Figs 7-9.
func allConfigs() []string {
	var out []string
	for _, c := range parcelport.Table1() {
		out = append(out, c.String())
	}
	return out
}

// msgRateSweep measures one configuration across attempted injection rates.
func msgRateSweep(ppName string, size, batch, total int, rates []float64, reps int) (*stats.Series, error) {
	s := &stats.Series{Label: ppName}
	for _, rate := range rates {
		var injSum float64
		ys := make([]float64, 0, reps)
		for r := 0; r < max(1, reps); r++ {
			res, err := MessageRate(ppName, MsgRateParams{
				Size: size, Batch: batch, Total: total, Rate: rate,
				Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
			})
			if err != nil {
				return nil, fmt.Errorf("%s rate %.0f: %w", ppName, rate, err)
			}
			injSum += res.AchievedInj
			ys = append(ys, res.MsgRate)
		}
		sum := stats.Summarize(ys)
		// Plot in K/s like the paper.
		s.Add(injSum/float64(len(ys))/1e3, sum.Mean/1e3, sum.Stddev/1e3)
	}
	return s, nil
}

// msgRateFigure builds a Figs 1/2/4/5-style figure.
func msgRateFigure(title string, configs []string, size, batch, total int, rates []float64, reps int) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  title,
		XLabel: "Achieved Injection Rate (K/s)",
		YLabel: "Achieved Message Rate (K/s)",
	}
	for _, cfg := range configs {
		s, err := msgRateSweep(cfg, size, batch, total, rates, reps)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig1 — achieved message rate of 8B messages, MPI vs LCI with/without the
// send-immediate optimization.
func Fig1(sc Scale) (*stats.Figure, error) {
	return msgRateFigure("Fig 1: Message Rate (8B) - MPI vs LCI",
		fig1Configs(), 8, sc.Batch8B, sc.Total8B, sc.Rates8B, sc.Reps)
}

// Fig2 — achieved message rate of 8B messages across LCI variants.
func Fig2(sc Scale) (*stats.Figure, error) {
	return msgRateFigure("Fig 2: Message Rate (8B) - LCI configurations",
		lciImmediateVariants(), 8, sc.Batch8B, sc.Total8B, sc.Rates8B, sc.Reps)
}

// peakFigure builds a Fig 3/6-style highest-rate-per-config chart.
func peakFigure(title string, size, batch, total int, rates []float64, reps int) (*stats.Figure, error) {
	fig := &stats.Figure{Title: title, XLabel: "config (one series each)", YLabel: "Peak Message Rate (K/s)"}
	for _, cfg := range allConfigs() {
		s, err := msgRateSweep(cfg, size, batch, total, rates, reps)
		if err != nil {
			return nil, err
		}
		peak := &stats.Series{Label: cfg}
		peak.Add(0, s.PeakY(), 0)
		fig.Series = append(fig.Series, peak)
	}
	return fig, nil
}

// Fig3 — highest achieved 8B message rate across all injection rates.
func Fig3(sc Scale) (*stats.Figure, error) {
	return peakFigure("Fig 3: Peak Message Rate (8B), all configurations",
		8, sc.Batch8B, sc.Total8B, sc.Rates8B, sc.Reps)
}

// Fig4 — achieved message rate of 16KiB messages, MPI vs LCI.
func Fig4(sc Scale) (*stats.Figure, error) {
	return msgRateFigure("Fig 4: Message Rate (16KiB) - MPI vs LCI",
		fig1Configs(), 16*1024, sc.Batch16K, sc.Total16K, sc.Rates16K, sc.Reps)
}

// Fig5 — achieved message rate of 16KiB messages across LCI variants.
func Fig5(sc Scale) (*stats.Figure, error) {
	return msgRateFigure("Fig 5: Message Rate (16KiB) - LCI configurations",
		lciImmediateVariants(), 16*1024, sc.Batch16K, sc.Total16K, sc.Rates16K, sc.Reps)
}

// Fig6 — highest achieved 16KiB message rate across all injection rates.
func Fig6(sc Scale) (*stats.Figure, error) {
	return peakFigure("Fig 6: Peak Message Rate (16KiB), all configurations",
		16*1024, sc.Batch16K, sc.Total16K, sc.Rates16K, sc.Reps)
}

// Fig7 — single-message ping-pong latency vs message size (window 1).
func Fig7(sc Scale) (*stats.Figure, error) {
	fig := &stats.Figure{Title: "Fig 7: Latency vs Message Size", XLabel: "Message Size (byte)", YLabel: "Latency (us)"}
	for _, cfg := range allConfigs() {
		s := &stats.Series{Label: cfg}
		for _, size := range sc.Sizes7 {
			sum, err := Repeat(sc.Reps, func() (float64, error) {
				return Latency(cfg, LatencyParams{
					Size: size, Window: 1, Steps: sc.LatencySteps,
					Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
				})
			})
			if err != nil {
				return nil, fmt.Errorf("%s size %d: %w", cfg, size, err)
			}
			s.Add(float64(size), sum.Mean, sum.Stddev)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// latencyWindowFigure builds Figs 8-9.
func latencyWindowFigure(title string, size int, sc Scale) (*stats.Figure, error) {
	fig := &stats.Figure{Title: title, XLabel: "Window Size", YLabel: "Latency (us)"}
	for _, cfg := range allConfigs() {
		s := &stats.Series{Label: cfg}
		for _, w := range sc.Windows {
			sum, err := Repeat(sc.Reps, func() (float64, error) {
				return Latency(cfg, LatencyParams{
					Size: size, Window: w, Steps: sc.LatencySteps,
					Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
				})
			})
			if err != nil {
				return nil, fmt.Errorf("%s window %d: %w", cfg, w, err)
			}
			s.Add(float64(w), sum.Mean, sum.Stddev)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8 — 8B message latency vs window size.
func Fig8(sc Scale) (*stats.Figure, error) {
	return latencyWindowFigure("Fig 8: Latency vs Window (8B)", 8, sc)
}

// Fig9 — 16KiB message latency vs window size.
func Fig9(sc Scale) (*stats.Figure, error) {
	return latencyWindowFigure("Fig 9: Latency vs Window (16KiB)", 16*1024, sc)
}

// octoFigure builds Figs 10-11: absolute steps/s for mpi, mpi_i and lci plus
// the lci speedup series.
func octoFigure(title string, plat Platform, nodes []int, level, steps, subgrid, fields, reps int) (*stats.Figure, error) {
	fig := &stats.Figure{Title: title, XLabel: "Node Count", YLabel: "Steps per Second"}
	results := map[string]map[int]float64{}
	for _, cfg := range []string{"mpi", "mpi_i", "lci"} {
		s := &stats.Series{Label: cfg}
		results[cfg] = map[int]float64{}
		for _, n := range nodes {
			sum, err := Repeat(reps, func() (float64, error) {
				return OctoTiger(cfg, OctoParams{
					Platform: plat, Nodes: n, Level: level, Steps: steps,
					Subgrid: subgrid, Fields: fields,
				})
			})
			if err != nil {
				return nil, fmt.Errorf("%s x%d: %w", cfg, n, err)
			}
			s.Add(float64(n), sum.Mean, sum.Stddev)
			results[cfg][n] = sum.Mean
		}
		fig.Series = append(fig.Series, s)
	}
	for _, base := range []string{"mpi", "mpi_i"} {
		sp := &stats.Series{Label: "lci / " + base}
		for _, n := range nodes {
			if results[base][n] > 0 {
				sp.Add(float64(n), results["lci"][n]/results[base][n], 0)
			}
		}
		fig.Series = append(fig.Series, sp)
	}
	return fig, nil
}

// Fig10 — Octo-Tiger strong scaling on the Expanse profile.
func Fig10(sc Scale) (*stats.Figure, error) {
	return octoFigure("Fig 10: Octo-Tiger on SDSC Expanse (profile)", Expanse,
		sc.OctoNodes, sc.OctoLevelExp, sc.OctoSteps, sc.OctoSubgrid, sc.OctoFields, sc.Reps)
}

// Fig11 — Octo-Tiger strong scaling on the Rostam profile.
func Fig11(sc Scale) (*stats.Figure, error) {
	return octoFigure("Fig 11: Octo-Tiger on Rostam (profile)", Rostam,
		sc.OctoNodesR, sc.OctoLevelRost, sc.OctoSteps, sc.OctoSubgrid, sc.OctoFields, sc.Reps)
}

// AblationMPI compares the improved MPI parcelport with the §3.1 original
// (fixed 512B stack headers that can only piggyback the non-zero-copy
// chunk, plus the tag-release protocol with its lock-protected tag
// provider). The paper attributes ~20% of application performance to these
// two changes, dominated by the header-allocation fix. The communication-
// bound message-rate workload isolates the parcelport cost; an Octo-Tiger
// point shows the application-level effect.
func AblationMPI(sc Scale) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Ablation: original vs improved MPI parcelport",
		XLabel: "workload (1=8B rate K/s, 2=16KiB rate K/s, 3=Octo-Tiger steps/s)",
		YLabel: "higher is better",
	}
	for _, cfg := range []string{"mpi", "mpi_orig", "mpi_i", "mpi_orig_i"} {
		cfg := cfg
		s := &stats.Series{Label: cfg}
		for i, workload := range []func() (float64, error){
			func() (float64, error) {
				res, err := MessageRate(cfg, MsgRateParams{
					Size: 8, Batch: sc.Batch8B, Total: sc.Total8B,
					Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
				})
				if err != nil {
					return 0, err
				}
				return res.MsgRate / 1e3, nil
			},
			func() (float64, error) {
				res, err := MessageRate(cfg, MsgRateParams{
					Size: 16 * 1024, Batch: sc.Batch16K, Total: sc.Total16K,
					Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
				})
				if err != nil {
					return 0, err
				}
				return res.MsgRate / 1e3, nil
			},
			func() (float64, error) {
				nodes := sc.OctoNodesR[min(1, len(sc.OctoNodesR)-1)]
				return OctoTiger(cfg, OctoParams{
					Platform: Expanse, Nodes: nodes, Level: sc.OctoLevelExp, Steps: sc.OctoSteps,
					Subgrid: sc.OctoSubgrid, Fields: sc.OctoFields,
				})
			},
		} {
			sum, err := Repeat(sc.Reps, workload)
			if err != nil {
				return nil, fmt.Errorf("%s workload %d: %w", cfg, i+1, err)
			}
			s.Add(float64(i+1), sum.Mean, sum.Stddev)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// LatencyTails measures the one-way latency distribution (mean/p50/p99) of
// the baseline LCI and MPI parcelports at 8B and 16KiB, window 1 and 16 —
// the jitter view modern communication benchmarks add beside the paper's
// means.
func LatencyTails(sc Scale) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Latency tails: mean/p50/p99 one-way latency",
		XLabel: "series encodes config+size+window; x: 0=mean 1=p50 2=p99",
		YLabel: "Latency (us)",
	}
	for _, cfg := range []string{"lci", "mpi_i"} {
		for _, size := range []int{8, 16 * 1024} {
			for _, w := range []int{1, 16} {
				d, err := LatencyDistribution(cfg, LatencyParams{
					Size: size, Window: w, Steps: sc.LatencySteps,
					Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
				})
				if err != nil {
					return nil, fmt.Errorf("%s size %d w %d: %w", cfg, size, w, err)
				}
				s := fig.AddSeries(fmt.Sprintf("%s_%dB_w%d", cfg, size, w))
				s.Add(0, d.Mean, 0)
				s.Add(1, d.P50, 0)
				s.Add(2, d.P99, 0)
			}
		}
	}
	return fig, nil
}

// AblationMultiDevice measures the §7.2 future-work configuration: the
// baseline LCI parcelport with 1, 2 and 4 replicated devices (each its own
// network context and progress thread), under the 8B unlimited-injection
// message-rate workload where the paper expects resource replication to
// raise message rates.
func AblationMultiDevice(sc Scale) (*stats.Figure, error) {
	fig := &stats.Figure{
		Title:  "Ablation: replicated LCI devices (8B message rate)",
		XLabel: "Devices per locality",
		YLabel: "Achieved Message Rate (K/s)",
	}
	s := fig.AddSeries("lci_psr_cq_pin_i")
	for _, devs := range []int{1, 2, 4} {
		sum, err := Repeat(sc.Reps, func() (float64, error) {
			res, err := MessageRate("lci", MsgRateParams{
				Size: 8, Batch: sc.Batch8B, Total: sc.Total8B,
				Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
				LCIDevices: devs,
			})
			if err != nil {
				return 0, err
			}
			return res.MsgRate, nil
		})
		if err != nil {
			return nil, fmt.Errorf("devices=%d: %w", devs, err)
		}
		s.Add(float64(devs), sum.Mean/1e3, sum.Stddev/1e3)
	}
	return fig, nil
}

// Table1Text renders the Table 1 abbreviation key.
func Table1Text() string {
	var b strings.Builder
	b.WriteString("Table 1: Abbreviations for configurations.\n")
	rows := [][2]string{
		{"mpi", "Use the MPI parcelport"},
		{"lci", "Use the LCI parcelport"},
		{"sr", "Use the sendrecv protocol"},
		{"psr", "Use the putsendrecv protocol"},
		{"sy", "Use synchronizer as the completion type"},
		{"cq", "Use completion queue as the completion type"},
		{"pin", "Use a pinned dedicated progress thread"},
		{"mt", "Use all worker threads to make progress"},
		{"i", "Enable the send immediate optimization"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-4s %s\n", r[0], r[1])
	}
	b.WriteString("Evaluated configurations: " + strings.Join(allConfigs(), ", ") + "\n")
	return b.String()
}

// TableSystemText renders Table 2 or Table 3 plus the simulation profile
// derived from it.
func TableSystemText(p Platform) string {
	var b strings.Builder
	fmt.Fprintf(&b, "System configuration (%s):\n", p.Name)
	rows := [][2]string{
		{"CPU", p.CPU},
		{"Memory", p.Memory},
		{"Storage", p.Storage},
		{"NIC", p.NIC},
		{"Interconnect", p.Interconnect},
		{"Max Nodes/Job", fmt.Sprintf("%d", p.MaxNodes)},
		{"OS", p.OS},
		{"Compiler", p.Compiler},
		{"Software", p.Software},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %s\n", r[0], r[1])
	}
	fmt.Fprintf(&b, "Simulation profile: %d workers/locality, %dns latency, %.0f Gb/s, Octo-Tiger level %d\n",
		p.WorkersPerLocality, p.LatencyNs, p.GbitsPerSec, p.OctoLevel)
	return b.String()
}
