package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Latency trajectory artifact: the ping-pong latency distribution of a
// small fixed set of (size, window) points, committed as
// results/BENCH_latency.json so latency regressions show up in perf
// history the same way message-rate and collectives regressions do.
// Latency on a shared host is jitter-prone, so the artifact records the
// trajectory without wiring a hard gate into `make check`.

// LatencyRecord is one measured (size, window) row.
type LatencyRecord struct {
	Op     string  `json:"op"`      // e.g. "latency/lci_i/16KiB/w8"
	MeanUs float64 `json:"mean_us"` // mean one-way latency
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// LatencyReport is the artifact: rows plus provenance, the same shape as
// the other BENCH_*.json artifacts.
type LatencyReport struct {
	Commit    string          `json:"commit"`
	Generated string          `json:"generated"`
	Scale     string          `json:"scale"`
	Records   []LatencyRecord `json:"records"`
}

// latencyPoints enumerates the artifact rows: the smallest and an
// eager-threshold-sized message, solo and windowed.
func latencyPoints(sc Scale) []struct {
	op string
	p  LatencyParams
} {
	return []struct {
		op string
		p  LatencyParams
	}{
		{"latency/lci_i/8B/w1", LatencyParams{Size: 8, Window: 1, Steps: sc.LatencySteps}},
		{"latency/lci_i/8B/w8", LatencyParams{Size: 8, Window: 8, Steps: sc.LatencySteps}},
		{"latency/lci_i/16KiB/w1", LatencyParams{Size: 16384, Window: 1, Steps: sc.LatencySteps}},
		{"latency/lci_i/16KiB/w8", LatencyParams{Size: 16384, Window: 8, Steps: sc.LatencySteps}},
	}
}

// LatencyBench measures every row, best-of-reps by mean (the distribution
// columns come from the best rep, so one row is internally consistent).
func LatencyBench(sc Scale, scaleName string) (*LatencyReport, error) {
	rep := &LatencyReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	reps := sc.Reps
	if reps < 2 {
		reps = 2
	}
	for _, pt := range latencyPoints(sc) {
		rec := LatencyRecord{Op: pt.op}
		for r := 0; r < reps; r++ {
			d, err := LatencyDistribution("lci_i", pt.p)
			if err != nil {
				return nil, fmt.Errorf("latency bench %s: %w", pt.op, err)
			}
			if rec.MeanUs == 0 || d.Mean < rec.MeanUs {
				rec = LatencyRecord{Op: pt.op, MeanUs: d.Mean, P50Us: d.P50, P99Us: d.P99, MaxUs: d.Max}
			}
		}
		rep.Records = append(rep.Records, rec)
	}
	return rep, nil
}

// JSON renders the report as the BENCH_latency.json artifact.
func (r *LatencyReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the rows for the experiments output.
func (r *LatencyReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# latency trajectory rows (commit %s)\n", r.Commit)
	fmt.Fprintf(&b, "%-26s %10s %10s %10s %10s\n", "op", "mean_us", "p50_us", "p99_us", "max_us")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-26s %10.2f %10.2f %10.2f %10.2f\n", rec.Op, rec.MeanUs, rec.P50Us, rec.P99Us, rec.MaxUs)
	}
	return b.String()
}

// ParseLatencyReport decodes a committed BENCH_latency.json.
func ParseLatencyReport(data []byte) (*LatencyReport, error) {
	var r LatencyReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad BENCH_latency.json: %w", err)
	}
	return &r, nil
}
