package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Latency trajectory artifact: the ping-pong latency distribution of a
// small fixed set of (size, window) points, committed as
// results/BENCH_latency.json so latency regressions show up in perf
// history the same way message-rate and collectives regressions do.
// Latency on a shared host is jitter-prone, so the gate factors below are
// derived from the measured run-to-run noise band rather than the tighter
// throughput-gate tolerances (see LatencyGate).

// LatencyRecord is one measured (size, window) row.
type LatencyRecord struct {
	Op     string  `json:"op"`      // e.g. "latency/lci_i/16KiB/w8"
	MeanUs float64 `json:"mean_us"` // mean one-way latency
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// LatencyReport is the artifact: rows plus provenance, the same shape as
// the other BENCH_*.json artifacts.
type LatencyReport struct {
	Commit    string          `json:"commit"`
	Generated string          `json:"generated"`
	Scale     string          `json:"scale"`
	Records   []LatencyRecord `json:"records"`
}

// latencyPoints enumerates the artifact rows: the smallest and an
// eager-threshold-sized message, solo and windowed.
func latencyPoints(sc Scale) []struct {
	op string
	p  LatencyParams
} {
	return []struct {
		op string
		p  LatencyParams
	}{
		{"latency/lci_i/8B/w1", LatencyParams{Size: 8, Window: 1, Steps: sc.LatencySteps}},
		{"latency/lci_i/8B/w8", LatencyParams{Size: 8, Window: 8, Steps: sc.LatencySteps}},
		{"latency/lci_i/16KiB/w1", LatencyParams{Size: 16384, Window: 1, Steps: sc.LatencySteps}},
		{"latency/lci_i/16KiB/w8", LatencyParams{Size: 16384, Window: 8, Steps: sc.LatencySteps}},
	}
}

// LatencyBench measures every row, best-of-reps by mean (the distribution
// columns come from the best rep, so one row is internally consistent).
func LatencyBench(sc Scale, scaleName string) (*LatencyReport, error) {
	rep := &LatencyReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	// Best-of-N by mean: the minimum of a noisy distribution stabilizes as
	// N grows, and each rep costs ~25 ms at quick scale. Best-of-2 wandered
	// ~2.8x run to run on the 8B mean; best-of-5 holds the gate band.
	reps := sc.Reps
	if reps < 5 {
		reps = 5
	}
	for _, pt := range latencyPoints(sc) {
		rec := LatencyRecord{Op: pt.op}
		for r := 0; r < reps; r++ {
			d, err := LatencyDistribution("lci_i", pt.p)
			if err != nil {
				return nil, fmt.Errorf("latency bench %s: %w", pt.op, err)
			}
			if rec.MeanUs == 0 || d.Mean < rec.MeanUs {
				rec = LatencyRecord{Op: pt.op, MeanUs: d.Mean, P50Us: d.P50, P99Us: d.P99, MaxUs: d.Max}
			}
		}
		rep.Records = append(rep.Records, rec)
	}
	return rep, nil
}

// JSON renders the report as the BENCH_latency.json artifact.
func (r *LatencyReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Text renders the rows for the experiments output.
func (r *LatencyReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# latency trajectory rows (commit %s)\n", r.Commit)
	fmt.Fprintf(&b, "%-26s %10s %10s %10s %10s\n", "op", "mean_us", "p50_us", "p99_us", "max_us")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-26s %10.2f %10.2f %10.2f %10.2f\n", rec.Op, rec.MeanUs, rec.P50Us, rec.P99Us, rec.MaxUs)
	}
	return b.String()
}

// ParseLatencyReport decodes a committed BENCH_latency.json.
func ParseLatencyReport(data []byte) (*LatencyReport, error) {
	var r LatencyReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad BENCH_latency.json: %w", err)
	}
	return &r, nil
}

// Latency gate tolerances, set from the measured noise band at quick scale
// on the 1-CPU CI host: across 5 repeated best-of-5 runs the mean and p50
// wander up to ~2.1x between the fastest and slowest run, the p99 up to
// ~2.2x (a single descheduling spike lands in the tail). The factors leave
// headroom over the worst observed fresh-vs-committed wander, so a true
// step regression (eager-path work doubling, a lost fast path —
// historically 3x+) still fails while honest jitter passes.
// Characterization recorded in EXPERIMENTS.md.
const (
	latGateMeanFactor = 2.5 // mean and p50
	latGateTailFactor = 3.0 // p99
)

// LatencyGate compares a fresh measurement against the committed artifact:
// mean and p50 must stay within latGateMeanFactor of the committed row,
// p99 within latGateTailFactor. Max is recorded but not gated — a single
// worst packet is pure scheduler luck on a shared host.
func LatencyGate(fresh, committed *LatencyReport) (string, error) {
	if fresh.Scale != committed.Scale {
		return "", fmt.Errorf("bench: gate scale %q vs committed artifact scale %q — regenerate the artifact at the gate's scale",
			fresh.Scale, committed.Scale)
	}
	byOp := map[string]LatencyRecord{}
	for _, rec := range fresh.Records {
		byOp[rec.Op] = rec
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# latency gate vs committed commit %s\n", committed.Commit)
	fmt.Fprintf(&b, "%-26s %16s %16s %16s %8s\n", "op", "mean new/old", "p50 new/old", "p99 new/old", "verdict")
	var failures []string
	for _, old := range committed.Records {
		cur, ok := byOp[old.Op]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: row missing from fresh run", old.Op))
			continue
		}
		verdict := "ok"
		check := func(name string, curV, oldV, factor float64) {
			if oldV > 0 && curV > oldV*factor {
				verdict = "SLOWER"
				failures = append(failures, fmt.Sprintf("%s: %s %.2fus > %.1fx committed %.2fus",
					old.Op, name, curV, factor, oldV))
			}
		}
		check("mean", cur.MeanUs, old.MeanUs, latGateMeanFactor)
		check("p50", cur.P50Us, old.P50Us, latGateMeanFactor)
		check("p99", cur.P99Us, old.P99Us, latGateTailFactor)
		fmt.Fprintf(&b, "%-26s %7.1f/%-8.1f %7.1f/%-8.1f %7.1f/%-8.1f %8s\n",
			old.Op, cur.MeanUs, old.MeanUs, cur.P50Us, old.P50Us, cur.P99Us, old.P99Us, verdict)
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("bench: latency regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return b.String(), nil
}
