package bench

import (
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/octotiger"
)

// OctoParams configures one §5 Octo-Tiger strong-scaling point.
type OctoParams struct {
	Platform Platform
	Nodes    int
	Level    int // max octree level (0 = platform default, scaled)
	Steps    int // stop step
	Subgrid  int
	Fields   int
	// RegridEvery enables adaptive regridding every N steps (0 = off).
	RegridEvery int
	// Inspect, when non-nil, runs against the live runtime after the run
	// completes and before shutdown (profiling hooks).
	Inspect func(rt *core.Runtime)
}

// OctoTiger runs the proxy application under one parcelport configuration
// and returns the achieved steps per second.
func OctoTiger(ppName string, p OctoParams) (float64, error) {
	if p.Nodes <= 0 {
		p.Nodes = 2
	}
	if p.Steps <= 0 {
		p.Steps = 3
	}
	if p.Subgrid <= 0 {
		p.Subgrid = 6
	}
	if p.Fields <= 0 {
		p.Fields = 4
	}
	level := p.Level
	if level <= 0 {
		level = 3
	}
	rt, err := core.NewRuntime(core.Config{
		Localities:         p.Nodes,
		WorkersPerLocality: p.Platform.WorkersPerLocality,
		Parcelport:         ppName,
		Fabric:             p.Platform.Fabric(p.Nodes),
		IdleSleep:          20 * time.Microsecond,
	})
	if err != nil {
		return 0, err
	}
	defer rt.Shutdown()
	app, err := octotiger.New(rt, octotiger.Params{
		MaxLevel:    level,
		MinLevel:    level - 1,
		SubgridSize: p.Subgrid,
		RegridEvery: p.RegridEvery,
		Fields:      p.Fields,
		StopStep:    p.Steps,
	})
	if err != nil {
		return 0, err
	}
	if err := rt.Start(); err != nil {
		return 0, err
	}
	sps, err := app.Run()
	if err == nil && p.Inspect != nil {
		p.Inspect(rt)
	}
	return sps, err
}
