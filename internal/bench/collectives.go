package bench

import (
	"encoding/json"
	"fmt"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/fabric"
	"hpxgo/internal/stats"
	"hpxgo/internal/wire"
)

// Collectives scaling: flat O(N) fan-out versus tree-structured collectives
// across simulated cluster sizes. This is the experiment behind the PR that
// replaced the flat implementations — the flat references are kept alive in
// core precisely so this comparison stays reproducible — and the source of
// BENCH_collectives.json, the first machine-readable perf-trajectory
// artifact (ROADMAP item 5a).

// CollRecord is one (operation, implementation, cluster size) measurement.
type CollRecord struct {
	Op       string  `json:"op"`    // broadcast | reduce | allreduce
	Impl     string  `json:"impl"`  // tree | flat
	Nodes    int     `json:"nodes"` // simulated localities
	NsOp     float64 `json:"ns_op"` // mean wall time per collective
	NsOpErr  float64 `json:"ns_op_err"`
	AllocsOp float64 `json:"allocs_op"` // process-wide mallocs per collective
	Reps     int     `json:"reps"`
}

// CollReport is the full sweep plus provenance, renderable as a text figure
// or as BENCH_collectives.json.
type CollReport struct {
	Commit    string       `json:"commit"`
	Generated string       `json:"generated"`
	Scale     string       `json:"scale"`
	Records   []CollRecord `json:"records"`
}

// gitCommit resolves the working tree's short commit hash, or "unknown"
// outside a git checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// collOp runs one collective once (the unit the sweep times).
type collOp struct {
	op   string
	impl string
	run  func(rt *core.Runtime) error
}

// collOps enumerates the measured operations. The reduce fold sums one
// uint64 per locality, so payloads stay O(1) and the measurement isolates
// the fan-out/fan-in structure itself.
func collOps() []collOp {
	const timeout = 2 * time.Minute
	return []collOp{
		{"broadcast", "tree", func(rt *core.Runtime) error {
			return rt.Broadcast(0, timeout, "bench_mark")
		}},
		{"broadcast", "flat", func(rt *core.Runtime) error {
			return rt.BroadcastFlat(0, timeout, "bench_mark")
		}},
		{"reduce", "tree", func(rt *core.Runtime) error {
			_, err := rt.Reduce(0, timeout, "bench_myid", wire.SumU64Fold)
			return err
		}},
		{"reduce", "flat", func(rt *core.Runtime) error {
			_, err := rt.ReduceFlat(0, timeout, "bench_myid", wire.SumU64Fold)
			return err
		}},
		{"allreduce", "tree", func(rt *core.Runtime) error {
			_, err := rt.AllReduce(timeout, "bench_myid", wire.SumU64Fold)
			return err
		}},
		{"allreduce", "flat", func(rt *core.Runtime) error {
			_, err := rt.AllReduceFlat(timeout, "bench_myid", wire.SumU64Fold)
			return err
		}},
	}
}

// collRuntime assembles a cluster of n localities for the sweep: one worker
// per locality (the sweep measures communication structure, not compute) on
// the baseline lci parcelport.
//
// The fabric runs with the LogP-style sender-occupancy model on
// (SendGapNs): each packet occupies its sender's egress for 1ms of
// simulated time, serialized across all destinations. That term — not
// bandwidth, which the fabric models per destination pair — is what makes
// a flat fan-out O(N) at its root, and because simulated occupancy
// advances without host CPU, the flat-vs-tree structure stays measurable
// on a single-core host where wall time would otherwise just report total
// CPU serialization. The 1ms gap is deliberately scaled up from real NIC
// overheads (~1µs) by the same style of reduction the rest of the harness
// applies to message counts: it keeps simulated network time dominant over
// the simulator's own CPU cost.
func collRuntime(n int) (*core.Runtime, error) {
	rt, err := core.NewRuntime(core.Config{
		Localities:         n,
		WorkersPerLocality: 1,
		Parcelport:         "lci",
		IdleSleep:          100 * time.Microsecond,
		Fabric: fabric.Config{
			LatencyNs:           100_000, // 100µs one-way
			GbitsPerSec:         100,
			Rails:               1,
			PacketOverheadBytes: 64,
			SendGapNs:           1_000_000, // 1ms egress occupancy per packet
		},
	})
	if err != nil {
		return nil, err
	}
	rt.MustRegisterAction("bench_mark", func(loc *core.Locality, args [][]byte) [][]byte {
		return nil
	})
	rt.MustRegisterAction("bench_myid", func(loc *core.Locality, args [][]byte) [][]byte {
		return [][]byte{wire.U64(uint64(loc.ID()))}
	})
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return rt, nil
}

// CollectivesSweep measures every operation at every cluster size. For each
// (op, nodes) pair it runs one warmup collective, then sc.Reps timed
// repetitions of sc.CollIters collectives each; the mean and stddev over
// repetitions land in the record. Allocation counts are process-wide malloc
// deltas (the whole simulated cluster lives in this process, so they bound
// the collective's true footprint from above).
func CollectivesSweep(sc Scale, scaleName string) (*CollReport, error) {
	rep := &CollReport{
		Commit:    gitCommit(),
		Generated: time.Now().Format(time.RFC3339),
		Scale:     scaleName,
	}
	for _, n := range sc.CollNodes {
		rt, err := collRuntime(n)
		if err != nil {
			return nil, err
		}
		for _, op := range collOps() {
			if err := op.run(rt); err != nil { // warmup
				rt.Shutdown()
				return nil, fmt.Errorf("%s/%s at %d nodes: %w", op.op, op.impl, n, err)
			}
			nsPerRep := make([]float64, 0, sc.Reps)
			var allocs uint64
			var ms0, ms1 runtime.MemStats
			for r := 0; r < sc.Reps; r++ {
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				for i := 0; i < sc.CollIters; i++ {
					if err := op.run(rt); err != nil {
						rt.Shutdown()
						return nil, fmt.Errorf("%s/%s at %d nodes: %w", op.op, op.impl, n, err)
					}
				}
				elapsed := time.Since(start)
				runtime.ReadMemStats(&ms1)
				nsPerRep = append(nsPerRep, float64(elapsed.Nanoseconds())/float64(sc.CollIters))
				allocs += ms1.Mallocs - ms0.Mallocs
			}
			sum := stats.Summarize(nsPerRep)
			rep.Records = append(rep.Records, CollRecord{
				Op:       op.op,
				Impl:     op.impl,
				Nodes:    n,
				NsOp:     sum.Mean,
				NsOpErr:  sum.Stddev,
				AllocsOp: float64(allocs) / float64(sc.Reps*sc.CollIters),
				Reps:     sc.Reps,
			})
		}
		rt.Shutdown()
	}
	return rep, nil
}

// Figure renders the sweep as the standard latency-scaling figure: one
// series per (op, impl), x = localities, y = mean latency per collective.
// Tree series should grow ~log N; flat series ~linearly (the root's
// injection queue serializes them).
func (r *CollReport) Figure() *stats.Figure {
	fig := &stats.Figure{
		Title:  "Collective latency scaling: flat O(N) fan-out vs tree",
		XLabel: "localities",
		YLabel: "latency per collective (us)",
	}
	series := map[string]*stats.Series{}
	for _, rec := range r.Records {
		key := rec.Op + "/" + rec.Impl
		s := series[key]
		if s == nil {
			s = fig.AddSeries(key)
			series[key] = s
		}
		s.Add(float64(rec.Nodes), rec.NsOp/1e3, rec.NsOpErr/1e3)
	}
	return fig
}

// JSON renders the report as the BENCH_collectives.json artifact.
func (r *CollReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Summary appends the headline ratios the acceptance criteria ask about:
// flat-to-tree latency ratio per op at the largest measured size, plus the
// tree's growth factor across the sweep (log-N-like ≪ the N growth factor).
func (r *CollReport) Summary() string {
	if len(r.Records) == 0 {
		return ""
	}
	maxN := 0
	minN := 1 << 30
	for _, rec := range r.Records {
		if rec.Nodes > maxN {
			maxN = rec.Nodes
		}
		if rec.Nodes < minN {
			minN = rec.Nodes
		}
	}
	at := func(op, impl string, n int) float64 {
		for _, rec := range r.Records {
			if rec.Op == op && rec.Impl == impl && rec.Nodes == n {
				return rec.NsOp
			}
		}
		return 0
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\n# summary at %d localities (commit %s)\n", maxN, r.Commit)
	for _, op := range []string{"broadcast", "reduce", "allreduce"} {
		tree, flat := at(op, "tree", maxN), at(op, "flat", maxN)
		if tree <= 0 || flat <= 0 {
			continue
		}
		treeGrow := at(op, "tree", maxN) / at(op, "tree", minN)
		flatGrow := at(op, "flat", maxN) / at(op, "flat", minN)
		fmt.Fprintf(&b, "# %-9s flat/tree latency ratio %5.1fx; growth %dx->%dx localities: tree %4.1fx, flat %5.1fx\n",
			op, flat/tree, minN, maxN, treeGrow, flatGrow)
	}
	return b.String()
}

// CollectivesText runs the sweep and renders figure + summary (the
// cmd/experiments "collectives" target); the report is returned for the
// JSON artifact.
func CollectivesText(sc Scale, scaleName string, csv bool) (string, *CollReport, error) {
	rep, err := CollectivesSweep(sc, scaleName)
	if err != nil {
		return "", nil, err
	}
	fig := rep.Figure()
	if csv {
		return fig.RenderCSV(), rep, nil
	}
	return fig.Render() + rep.Summary(), rep, nil
}
