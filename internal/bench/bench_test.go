package bench

import (
	"strings"
	"testing"
)

func TestMessageRateBasic(t *testing.T) {
	res, err := MessageRate("lci", MsgRateParams{Size: 8, Batch: 50, Total: 1000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MsgRate <= 0 || res.AchievedInj <= 0 {
		t.Fatalf("non-positive rates: %+v", res)
	}
}

func TestMessageRatePacedBelowUnlimited(t *testing.T) {
	// A paced run must achieve roughly the attempted injection rate when it
	// is far below capacity.
	res, err := MessageRate("lci", MsgRateParams{Size: 8, Batch: 10, Total: 500, Rate: 20e3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedInj > 30e3 {
		t.Fatalf("paced injection ran too fast: %.0f msg/s", res.AchievedInj)
	}
	if res.MsgRate <= 0 {
		t.Fatal("no messages received")
	}
}

func TestMessageRateMPI(t *testing.T) {
	res, err := MessageRate("mpi_i", MsgRateParams{Size: 8, Batch: 50, Total: 500, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MsgRate <= 0 {
		t.Fatalf("mpi_i rate: %+v", res)
	}
}

func TestMessageRate16K(t *testing.T) {
	res, err := MessageRate("lci", MsgRateParams{Size: 16 * 1024, Batch: 10, Total: 100, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MsgRate <= 0 {
		t.Fatalf("16KiB rate: %+v", res)
	}
}

func TestMessageRateValidation(t *testing.T) {
	if _, err := MessageRate("lci", MsgRateParams{Size: 8, Batch: 0, Total: 100}); err == nil {
		t.Fatal("zero batch should fail")
	}
	if _, err := MessageRate("lci", MsgRateParams{Size: 8, Batch: 200, Total: 100}); err == nil {
		t.Fatal("total below batch should fail")
	}
	if _, err := MessageRate("nonsense", MsgRateParams{Size: 8, Batch: 10, Total: 100}); err == nil {
		t.Fatal("unknown parcelport should fail")
	}
}

func TestReliabilityOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead comparison in -short mode")
	}
	res, err := ReliabilityOverhead("lci", MsgRateParams{Size: 8, Batch: 50, Total: 5000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.MsgRate <= 0 || res.Reliable.MsgRate <= 0 || res.Lossy.MsgRate <= 0 {
		t.Fatalf("non-positive rates: %+v", res)
	}
	// With faults disabled the ARQ takes the lossless fast path (no
	// retransmission buffer, lock-free sender state), so the overhead is
	// ~0% — but this CI host is a single shared CPU with ±10-20%
	// run-to-run noise even under best-of-3, so assert a floor wide enough
	// not to flake. Measured numbers are recorded in EXPERIMENTS.md.
	if res.Reliable.MsgRate < 0.75*res.Baseline.MsgRate {
		t.Fatalf("fault-free reliability too costly: baseline %.0f vs reliable %.0f msg/s (%.1f%%)",
			res.Baseline.MsgRate, res.Reliable.MsgRate, res.OverheadPct)
	}
	t.Logf("baseline %.0f, reliable %.0f (overhead %.1f%%), 1%%-lossy %.0f msg/s",
		res.Baseline.MsgRate, res.Reliable.MsgRate, res.OverheadPct, res.Lossy.MsgRate)
}

func TestLatencyBasic(t *testing.T) {
	us, err := Latency("lci", LatencyParams{Size: 8, Window: 1, Steps: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if us <= 0 {
		t.Fatalf("latency %.2f us", us)
	}
}

func TestLatencyWindowed(t *testing.T) {
	us, err := Latency("mpi_i", LatencyParams{Size: 1024, Window: 4, Steps: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if us <= 0 {
		t.Fatalf("latency %.2f us", us)
	}
}

func TestLatencyOddStepsRounded(t *testing.T) {
	if _, err := Latency("lci", LatencyParams{Size: 8, Window: 1, Steps: 9, Workers: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestOctoTigerRuns(t *testing.T) {
	sps, err := OctoTiger("lci", OctoParams{Platform: Expanse, Nodes: 2, Level: 2, Steps: 1, Subgrid: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sps <= 0 {
		t.Fatalf("steps/s = %f", sps)
	}
}

func TestRepeat(t *testing.T) {
	n := 0
	sum, err := Repeat(4, func() (float64, error) { n++; return float64(n), nil })
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 4 || sum.Mean != 2.5 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestTableTexts(t *testing.T) {
	t1 := Table1Text()
	for _, needle := range []string{"mpi", "psr", "send immediate", "lci_sr_sy_mt_i"} {
		if !strings.Contains(t1, needle) {
			t.Fatalf("Table 1 text missing %q", needle)
		}
	}
	t2 := TableSystemText(Expanse)
	if !strings.Contains(t2, "EPYC") || !strings.Contains(t2, "HDR InfiniBand") {
		t.Fatal("Table 2 text missing hardware rows")
	}
	t3 := TableSystemText(Rostam)
	if !strings.Contains(t3, "Skylake") || !strings.Contains(t3, "FDR InfiniBand") {
		t.Fatal("Table 3 text missing hardware rows")
	}
}

func TestConfigSetsMatchPaper(t *testing.T) {
	if len(allConfigs()) != 11 {
		t.Fatalf("allConfigs has %d entries, want 11", len(allConfigs()))
	}
	if len(lciImmediateVariants()) != 8 {
		t.Fatalf("lci variants: %d, want 8", len(lciImmediateVariants()))
	}
	if len(fig1Configs()) != 4 {
		t.Fatalf("fig1 configs: %d, want 4", len(fig1Configs()))
	}
}

func TestScalesSane(t *testing.T) {
	for _, sc := range []Scale{FullScale(), QuickScale()} {
		if sc.Total8B < sc.Batch8B || sc.Total16K < sc.Batch16K {
			t.Fatal("totals below batch size")
		}
		if len(sc.Rates8B) == 0 || sc.Rates8B[len(sc.Rates8B)-1] != 0 {
			t.Fatal("rate sweeps must end with the unlimited point")
		}
		if sc.Reps < 1 {
			t.Fatal("reps must be at least 1")
		}
	}
}

func TestFig1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	sc := QuickScale()
	sc.Total8B = 1000
	sc.Rates8B = []float64{0}
	fig, err := Fig1(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("Fig1 has %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Fatalf("series %s empty or non-positive", s.Label)
		}
	}
	if !strings.Contains(fig.Render(), "Fig 1") {
		t.Fatal("render missing title")
	}
}

func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("octo sweep in -short mode")
	}
	sc := QuickScale()
	sc.OctoNodes = []int{2}
	fig, err := Fig10(sc)
	if err != nil {
		t.Fatal(err)
	}
	// mpi, mpi_i, lci + two speedup series.
	if len(fig.Series) != 5 {
		t.Fatalf("Fig10 has %d series", len(fig.Series))
	}
}

func TestLatencyDistribution(t *testing.T) {
	d, err := LatencyDistribution("lci", LatencyParams{Size: 8, Window: 2, Steps: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean <= 0 || d.P50 <= 0 || d.P99 < d.P50 || d.Max < d.P99 {
		t.Fatalf("implausible distribution %+v", d)
	}
}

func TestFig7And8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	sc := QuickScale()
	sc.Sizes7 = []int{8}
	sc.Windows = []int{1}
	sc.LatencySteps = 20
	fig7, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7.Series) != 11 {
		t.Fatalf("Fig7 has %d series, want 11", len(fig7.Series))
	}
	fig8, err := Fig8(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig8.Series {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Fatalf("Fig8 series %s bad", s.Label)
		}
	}
}

func TestFig3PeaksQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("peak sweep in -short mode")
	}
	sc := QuickScale()
	sc.Total8B = 600
	sc.Rates8B = []float64{0}
	fig, err := Fig3(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 11 {
		t.Fatalf("Fig3 has %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if s.Points[0].Y <= 0 {
			t.Fatalf("peak for %s is zero", s.Label)
		}
	}
}

func TestProfileTextQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("profile run in -short mode")
	}
	sc := QuickScale()
	sc.Total16K = 100
	text, err := ProfileText(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"MPI_Test", "progress-lock", "message-rate ratio"} {
		if !strings.Contains(text, needle) {
			t.Fatalf("profile text missing %q:\n%s", needle, text)
		}
	}
}

func TestAblationMultiDeviceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	sc := QuickScale()
	sc.Total8B = 500
	fig, err := AblationMultiDevice(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != 3 {
		t.Fatalf("multidev ablation shape wrong: %+v", fig.Series)
	}
}

func TestPlatformFabric(t *testing.T) {
	f := Rostam.Fabric(4)
	if f.Nodes != 4 || f.GbitsPerSec != 56 || f.Rails != 2 {
		t.Fatalf("Rostam fabric %+v", f)
	}
	if len(Platforms()) != 2 {
		t.Fatal("expected two platforms")
	}
}

func TestInjectionRateLists(t *testing.T) {
	r8 := InjectionRates8B()
	if r8[0] != 100e3 || r8[len(r8)-1] != 0 {
		t.Fatalf("8B rates %v", r8)
	}
	r16 := InjectionRates16K()
	if r16[0] != 10e3 || r16[len(r16)-1] != 0 {
		t.Fatalf("16K rates %v", r16)
	}
	if len(MessageSizes7()) < 5 || len(WindowSizes()) < 5 {
		t.Fatal("sweep lists too short")
	}
}
