package bench

import (
	"fmt"
	"strings"
)

// Claim is one qualitative statement from the paper's evaluation, checked
// against freshly measured numbers.
type Claim struct {
	ID     string
	Text   string // the paper's statement
	Holds  bool
	Detail string // measured evidence
}

// CheckClaims measures the paper's key qualitative claims at the given
// scale and reports which hold in this reproduction. It is the automated
// "did the shape reproduce?" checker behind `cmd/experiments check`.
func CheckClaims(sc Scale) ([]Claim, error) {
	var claims []Claim

	rate := func(cfg string, size, batch, total int, inj float64) (MsgRateResult, error) {
		return MessageRate(cfg, MsgRateParams{
			Size: size, Batch: batch, Total: total, Rate: inj,
			Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
		})
	}
	avgRate := func(cfg string, size, batch, total int, inj float64) (float64, error) {
		sum, err := Repeat(sc.Reps, func() (float64, error) {
			r, err := rate(cfg, size, batch, total, inj)
			if err != nil {
				return 0, err
			}
			return r.MsgRate, nil
		})
		return sum.Mean, err
	}

	// Claim 1: the LCI parcelport beats the MPI parcelport on 16KiB message
	// rate (paper: up to 30x).
	lci16, err := avgRate("lci", 16*1024, sc.Batch16K, sc.Total16K, 0)
	if err != nil {
		return nil, err
	}
	mpi16, err := avgRate("mpi_i", 16*1024, sc.Batch16K, sc.Total16K, 0)
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:     "rate-16k",
		Text:   "LCI parcelport achieves a higher 16KiB message rate than the MPI parcelport",
		Holds:  lci16 > mpi16,
		Detail: fmt.Sprintf("lci %.0f msg/s vs mpi_i %.0f msg/s (%.2fx)", lci16, mpi16, lci16/mpi16),
	})

	// Claim 2: MPI's achieved 16KiB rate decreases as injection pressure
	// grows (paper Fig 4).
	lowRate := sc.Rates16K[0]
	mpiLow, err := avgRate("mpi_i", 16*1024, sc.Batch16K, sc.Total16K, lowRate*2)
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:     "mpi-decline",
		Text:   "MPI's achieved 16KiB rate declines under unlimited injection pressure",
		Holds:  mpi16 < mpiLow,
		Detail: fmt.Sprintf("paced %.0f msg/s vs unlimited %.0f msg/s", mpiLow, mpi16),
	})

	// Claim 3: LCI beats MPI on the 8B message rate (paper Fig 3).
	lci8, err := avgRate("lci", 8, sc.Batch8B, sc.Total8B, 0)
	if err != nil {
		return nil, err
	}
	mpi8, err := avgRate("mpi_i", 8, sc.Batch8B, sc.Total8B, 0)
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:     "rate-8b",
		Text:   "LCI parcelport achieves a higher 8B message rate than the MPI parcelport",
		Holds:  lci8 > mpi8,
		Detail: fmt.Sprintf("lci %.0f msg/s vs mpi_i %.0f msg/s (%.2fx)", lci8, mpi8, lci8/mpi8),
	})

	// Claim 4: one-sided put headers beat two-sided send/recv headers for
	// the 8B rate (paper: psr up to 3.5x sr).
	sr8, err := avgRate("lci_sr_cq_pin_i", 8, sc.Batch8B, sc.Total8B, 0)
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:     "psr-vs-sr",
		Text:   "putsendrecv beats sendrecv for the 8B message rate",
		Holds:  lci8 > sr8,
		Detail: fmt.Sprintf("psr %.0f msg/s vs sr %.0f msg/s (%.2fx)", lci8, sr8, lci8/sr8),
	})

	// Claim 5: the MPI–LCI latency gap moves in LCI's favour as the window
	// grows (paper Figs 8-9: from mpi_i 2x better to 9.6x worse).
	lat := func(cfg string, size, window int) (float64, error) {
		sum, err := Repeat(sc.Reps, func() (float64, error) {
			return Latency(cfg, LatencyParams{
				Size: size, Window: window, Steps: sc.LatencySteps,
				Workers: Expanse.WorkersPerLocality, Fabric: Expanse.Fabric(2),
			})
		})
		return sum.Mean, err
	}
	lciW1, err := lat("lci", 16*1024, 1)
	if err != nil {
		return nil, err
	}
	mpiW1, err := lat("mpi_i", 16*1024, 1)
	if err != nil {
		return nil, err
	}
	bigW := sc.Windows[len(sc.Windows)-1]
	lciWN, err := lat("lci", 16*1024, bigW)
	if err != nil {
		return nil, err
	}
	mpiWN, err := lat("mpi_i", 16*1024, bigW)
	if err != nil {
		return nil, err
	}
	gapW1 := mpiW1 / lciW1
	gapWN := mpiWN / lciWN
	claims = append(claims, Claim{
		ID:   "window-gap",
		Text: "the MPI/LCI 16KiB latency ratio grows with the window size",
		// The ratio must move in LCI's favour from window 1 to the largest.
		Holds: gapWN > gapW1,
		Detail: fmt.Sprintf("mpi_i/lci ratio %.2fx at w=1 vs %.2fx at w=%d",
			gapW1, gapWN, bigW),
	})

	// Claim 6: the §3.1 improvements speed up the MPI parcelport (~20% at
	// the application level). Measured at a node count where inter-locality
	// communication carries weight (2-node runs are compute-bound).
	ablNodes := sc.OctoNodes[min(1, len(sc.OctoNodes)-1)]
	impr, err := Repeat(sc.Reps, func() (float64, error) {
		return OctoTiger("mpi", OctoParams{
			Platform: Expanse, Nodes: ablNodes, Level: sc.OctoLevelExp, Steps: sc.OctoSteps,
			Subgrid: sc.OctoSubgrid, Fields: sc.OctoFields,
		})
	})
	if err != nil {
		return nil, err
	}
	orig, err := Repeat(sc.Reps, func() (float64, error) {
		return OctoTiger("mpi_orig", OctoParams{
			Platform: Expanse, Nodes: ablNodes, Level: sc.OctoLevelExp, Steps: sc.OctoSteps,
			Subgrid: sc.OctoSubgrid, Fields: sc.OctoFields,
		})
	})
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:     "mpi-ablation",
		Text:   "the improved MPI parcelport beats the original (§3.1, ~20% on Octo-Tiger)",
		Holds:  impr.Mean > orig.Mean,
		Detail: fmt.Sprintf("improved %.2f steps/s vs original %.2f steps/s (%.2fx)", impr.Mean, orig.Mean, impr.Mean/orig.Mean),
	})

	// Claim 7: LCI's Octo-Tiger advantage grows with node count (paper
	// Figs 10-11).
	nodesSmall := sc.OctoNodes[0]
	nodesBig := sc.OctoNodes[len(sc.OctoNodes)-1]
	octo := func(cfg string, nodes int) (float64, error) {
		sum, err := Repeat(sc.Reps, func() (float64, error) {
			return OctoTiger(cfg, OctoParams{
				Platform: Expanse, Nodes: nodes, Level: sc.OctoLevelExp, Steps: sc.OctoSteps,
				Subgrid: sc.OctoSubgrid, Fields: sc.OctoFields,
			})
		})
		return sum.Mean, err
	}
	lciS, err := octo("lci", nodesSmall)
	if err != nil {
		return nil, err
	}
	mpiS, err := octo("mpi", nodesSmall)
	if err != nil {
		return nil, err
	}
	lciB, err := octo("lci", nodesBig)
	if err != nil {
		return nil, err
	}
	mpiB, err := octo("mpi", nodesBig)
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:    "octo-scaling",
		Text:  "LCI's Octo-Tiger speedup over MPI grows with node count",
		Holds: lciB/mpiB > lciS/mpiS,
		Detail: fmt.Sprintf("lci/mpi %.3fx at %d nodes vs %.3fx at %d nodes",
			lciS/mpiS, nodesSmall, lciB/mpiB, nodesBig),
	})

	return claims, nil
}

// ClaimsText runs CheckClaims and renders a report.
func ClaimsText(sc Scale) (string, error) {
	claims, err := CheckClaims(sc)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	held := 0
	b.WriteString("Reproduction claim check (paper's qualitative statements vs this host):\n\n")
	for _, c := range claims {
		mark := "REPRODUCED"
		if !c.Holds {
			mark = "NOT REPRODUCED"
		} else {
			held++
		}
		fmt.Fprintf(&b, "[%-14s] %s: %s\n  measured: %s\n", mark, c.ID, c.Text, c.Detail)
	}
	fmt.Fprintf(&b, "\n%d of %d claims reproduced. See EXPERIMENTS.md for the per-figure\n", held, len(claims))
	b.WriteString("analysis, including which gaps are expected on a single-CPU host.\n")
	return b.String(), nil
}
