package bench

import (
	"fmt"
	"strings"
	"time"

	"hpxgo/internal/fabric"
)

// ReliabilityOverheadResult compares the message-rate microbenchmark across
// three fabric modes: the lossless baseline, the ARQ enabled on a clean
// fabric (pure protocol overhead — sequence numbers, checksums, acks), and
// the ARQ absorbing 1% packet loss (retransmission cost on top).
type ReliabilityOverheadResult struct {
	Baseline MsgRateResult // reliability off
	Reliable MsgRateResult // ARQ on, no faults
	Lossy    MsgRateResult // ARQ on, 1% drop + duplication + corruption

	// OverheadPct is the message-rate cost of the fault-free ARQ relative
	// to the baseline, in percent (positive = slower).
	OverheadPct float64
}

// ReliabilityOverhead measures what end-to-end delivery guarantees cost the
// §4.1 message-rate benchmark under one parcelport configuration.
//
// Each mode runs reps times with the modes interleaved (so slow drift on a
// shared host hits all three equally) and the best rate is kept: peak
// attainable rate is the capacity question the overhead comparison asks, and
// best-of is far less sensitive to scheduler noise than a single sample.
func ReliabilityOverhead(ppName string, p MsgRateParams) (ReliabilityOverheadResult, error) {
	const reps = 3
	if p.Fabric.Nodes == 0 {
		p.Fabric = Expanse.Fabric(2)
	}
	if p.Timeout <= 0 {
		p.Timeout = 5 * time.Minute
	}

	base := p

	rel := p
	rel.Fabric.Reliability = true

	lossy := p
	lossy.Fabric.Faults = fabric.FaultConfig{
		DropProb:    0.01,
		DupProb:     0.005,
		CorruptProb: 0.005,
		Seed:        17,
	}
	lossy.Fabric.RetransmitTimeoutNs = 200_000
	lossy.Fabric.AckDelayNs = 50_000
	lossy.Fabric.RetryBudget = 50

	var out ReliabilityOverheadResult
	for i := 0; i < reps; i++ {
		r, err := MessageRate(ppName, base)
		if err != nil {
			return out, err
		}
		if r.MsgRate > out.Baseline.MsgRate {
			out.Baseline = r
		}
		if r, err = MessageRate(ppName, rel); err != nil {
			return out, err
		}
		if r.MsgRate > out.Reliable.MsgRate {
			out.Reliable = r
		}
		if r, err = MessageRate(ppName, lossy); err != nil {
			return out, err
		}
		if r.MsgRate > out.Lossy.MsgRate {
			out.Lossy = r
		}
	}

	if out.Baseline.MsgRate > 0 {
		out.OverheadPct = (out.Baseline.MsgRate - out.Reliable.MsgRate) / out.Baseline.MsgRate * 100
	}
	return out, nil
}

// ReliabilityText renders the reliability-overhead comparison (the
// EXPERIMENTS.md "Reliability overhead" entry) for both parcelports.
func ReliabilityText(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Reliability overhead — 8B message rate, best-of-3 per mode\n")
	b.WriteString("(modes: fabric as-is; ARQ on, no faults; ARQ under 1% drop + 0.5% dup + 0.5% corruption)\n\n")
	p := MsgRateParams{Size: 8, Batch: sc.Batch8B, Total: sc.Total8B, Workers: 2}
	for _, pp := range []string{"lci", "mpi_i"} {
		res, err := ReliabilityOverhead(pp, p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8s baseline %8.0f msg/s | reliable %8.0f msg/s (overhead %+5.1f%%) | 1%%-lossy %8.0f msg/s\n",
			pp, res.Baseline.MsgRate, res.Reliable.MsgRate, res.OverheadPct, res.Lossy.MsgRate)
	}
	return b.String(), nil
}
