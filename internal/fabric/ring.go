package fabric

import "sync/atomic"

// mpmc is a bounded multi-producer multi-consumer FIFO (Dmitry Vyukov's
// sequence-numbered ring), the same pattern internal/lci uses for its
// completion queues and packet freelist. The fabric keeps its own copy so
// the dependency arrow stays lci → fabric. It backs the per-device packet
// pool freelist and the arrival ready-index.
type mpmc[T any] struct {
	mask uint64
	buf  []mpmcSlot[T]
	_    [56]byte // keep enq and deq on separate cache lines
	enq  atomic.Uint64
	_    [56]byte
	deq  atomic.Uint64
}

type mpmcSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// newMPMC creates a ring with capacity rounded up to a power of two.
func newMPMC[T any](capacity int) *mpmc[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &mpmc[T]{mask: uint64(n - 1), buf: make([]mpmcSlot[T], n)}
	for i := range r.buf {
		r.buf[i].seq.Store(uint64(i))
	}
	return r
}

// TryPush enqueues v, returning false if the ring is full.
func (r *mpmc[T]) TryPush(v T) bool {
	pos := r.enq.Load()
	for {
		slot := &r.buf[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.val = v
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			return false // full
		default:
			pos = r.enq.Load()
		}
	}
}

// TryPop dequeues the oldest element, returning false if the ring is empty.
func (r *mpmc[T]) TryPop() (T, bool) {
	var zero T
	pos := r.deq.Load()
	for {
		slot := &r.buf[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				v := slot.val
				slot.val = zero
				slot.seq.Store(pos + r.mask + 1)
				return v, true
			}
			pos = r.deq.Load()
		case seq <= pos:
			return zero, false // empty
		default:
			pos = r.deq.Load()
		}
	}
}

// Len returns an approximate number of queued elements.
func (r *mpmc[T]) Len() int {
	n := int64(r.enq.Load()) - int64(r.deq.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap returns the ring capacity.
func (r *mpmc[T]) Cap() int { return len(r.buf) }
