package fabric

import (
	"testing"
)

// railTestNet builds a 2-node network with the given rail count and no
// reliability framing noise beyond the default.
func railTestNet(t *testing.T, rails int) *Network {
	t.Helper()
	net, err := NewNetwork(Config{Nodes: 2, LatencyNs: 100, Rails: rails})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// railCount returns how many packets are queued (arrived or not) on the
// src→owner rail with the given index.
func railCount(owner *Device, src, rail int) int {
	return int(owner.in[src][rail].count.Load())
}

// TestRailPinRouting: RailPin(r) lands every packet on rail r (mod rails),
// while the zero value keeps round-robin spraying.
func TestRailPinRouting(t *testing.T) {
	const rails = 4
	net := railTestNet(t, rails)
	d0, d1 := net.Device(0), net.Device(1)

	// Pinned: 3 packets per rail, including a pin beyond the rail count
	// (must wrap modulo rails).
	for r := 0; r < rails; r++ {
		for k := 0; k < 3; k++ {
			if err := d0.Inject(Packet{Dst: 1, Op: 1, Rail: RailPin(r)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d0.Inject(Packet{Dst: 1, Op: 1, Rail: RailPin(rails + 1)}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rails; r++ {
		want := 3
		if r == 1 { // RailPin(rails+1) wraps to rail 1
			want = 4
		}
		if got := railCount(d1, 0, r); got != want {
			t.Fatalf("rail %d holds %d packets, want %d", r, got, want)
		}
	}

	// Unpinned: round-robin must spread 8 packets evenly over 4 rails.
	net2 := railTestNet(t, rails)
	e0, e1 := net2.Device(0), net2.Device(1)
	for k := 0; k < 2*rails; k++ {
		if err := e0.Inject(Packet{Dst: 1, Op: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rails; r++ {
		if got := railCount(e1, 0, r); got != 2 {
			t.Fatalf("round-robin rail %d holds %d packets, want 2", r, got)
		}
	}
}

// TestInjectBatchRailRuns: a batch with rail-major runs lands each run on
// its pinned rail (the run grouping must split on Rail, not just Dst).
func TestInjectBatchRailRuns(t *testing.T) {
	const rails = 4
	net := railTestNet(t, rails)
	d0, d1 := net.Device(0), net.Device(1)

	var batch []Packet
	for r := 0; r < rails; r++ {
		for k := 0; k < 4; k++ { // rail-major: consecutive packets share a rail
			batch = append(batch, Packet{Dst: 1, Op: 1, Rail: RailPin(r)})
		}
	}
	n, err := d0.InjectBatch(batch)
	if err != nil || n != len(batch) {
		t.Fatalf("InjectBatch = (%d, %v), want (%d, nil)", n, err, len(batch))
	}
	for r := 0; r < rails; r++ {
		if got := railCount(d1, 0, r); got != 4 {
			t.Fatalf("rail %d holds %d packets, want 4", r, got)
		}
	}
}

// TestBorrowZeroCopy: a Borrow injection must deliver the caller's own
// bytes without copying them (the payload aliases the injected buffer), and
// Release must not recycle the borrowed memory into the packet pool.
func TestBorrowZeroCopy(t *testing.T) {
	net := railTestNet(t, 1)
	d0, d1 := net.Device(0), net.Device(1)

	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := d0.Inject(Packet{Dst: 1, Op: 1, Data: payload, Borrow: true}); err != nil {
		t.Fatal(err)
	}
	var p *Packet
	for p == nil {
		p = d1.Poll()
	}
	if &p.Data[0] != &payload[0] {
		t.Fatal("Borrow injection copied the payload; want the delivered packet to alias the caller's buffer")
	}
	p.Release()

	// The borrowed buffer must not come back out of the pool as a packet
	// payload: drain a pool get and check it does not alias.
	q := d0.getPacket()
	if len(q.Data) > 0 && cap(q.Data) > 0 && &q.Data[:1][0] == &payload[0] {
		t.Fatal("borrowed payload was recycled into the packet pool")
	}
	q.Release()
}

// TestBorrowFallsBackToCopyUnderFaults: with fault injection active the ARQ
// must retain a private copy (retransmissions and corruption injection
// would otherwise touch caller memory), so Borrow is ignored.
func TestBorrowFallsBackToCopyUnderFaults(t *testing.T) {
	net, err := NewNetwork(Config{
		Nodes: 2, LatencyNs: 100,
		Faults: FaultConfig{DropProb: 0.0001, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	d0, d1 := net.Device(0), net.Device(1)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := d0.Inject(Packet{Dst: 1, Op: 1, Data: payload, Borrow: true}); err != nil {
		t.Fatal(err)
	}
	var p *Packet
	for p == nil {
		p = d1.Poll()
	}
	if &p.Data[0] == &payload[0] {
		t.Fatal("buffered ARQ delivered the caller's buffer; want a private copy under fault injection")
	}
	for i := range payload {
		if p.Data[i] != payload[i] {
			t.Fatalf("copied payload differs at %d", i)
		}
	}
	p.Release()
}
