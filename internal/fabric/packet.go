package fabric

// Packet is the unit the fabric moves. The fabric itself assigns no meaning
// to Op, T0, or T1: they are an opcode and two 64-bit metadata words for the
// communication library built on top (tag bits, handle indices, sizes, ...).
//
// Packets returned by Poll are owned by the caller and must be given back
// with Release (see pool.go for the full ownership protocol); the payload
// can be kept past Release only via DetachData.
type Packet struct {
	Src, Dst int
	Op       uint8
	T0, T1   uint64
	// T2 is a third metadata word. mpisim uses it for the per-peer sequence
	// numbers that implement MPI's non-overtaking matching order on top of
	// the (unordered, multi-rail) fabric; the LCI library leaves it unused —
	// LCI explicitly does not guarantee delivery order.
	T2   uint64
	Data []byte

	// Rail selects the transmission rail. Zero (the zero value every
	// existing caller passes) keeps the fabric's round-robin spraying;
	// RailPin(r) pins the packet to rail r. Striping one logical transfer
	// across rails — the chunked rendezvous path — needs the pin so each
	// chunk run lands on a distinct rail deterministically instead of
	// wherever the shared round-robin cursor happens to point.
	Rail int

	// Borrow requests zero-copy injection: the fabric references Data
	// directly instead of making its "DMA" copy into a pooled buffer —
	// the analogue of transmitting straight out of registered memory. The
	// caller must keep Data valid and unmutated until the packet has been
	// delivered and released; a protocol built on Borrow therefore needs a
	// remote completion notification (the chunked rendezvous FIN) before
	// reusing the buffer. Honored on the lossless path only: with fault
	// injection active the fabric falls back to copying, because
	// retransmission and corruption injection both need a private pristine
	// copy.
	Borrow bool

	arriveNs int64 // set by Inject; visible to Poll once passed

	// Pool bookkeeping (pool.go); zero for caller-constructed packets.
	// refs is a plain int32 accessed atomically (not atomic.Int32) so the
	// Inject(p Packet) by-value template API stays copyable under vet.
	owner *Device
	refs  int32

	// Reliability framing (rel.go); zero when Config.Reliability is off.
	relSeq   uint64 // per-(src, dst, device) sequence number, 1-based
	relAck   uint64 // piggybacked cumulative ack for the reverse direction
	relFlags uint8
	sum      uint32 // checksum over metadata + payload
}

// ArrivedAtNs exposes the computed arrival time (nanoseconds since network
// creation) for tests that validate the latency/bandwidth model.
func (p *Packet) ArrivedAtNs() int64 { return p.arriveNs }

// RailPin encodes rail r (0-based, taken modulo the configured rail count)
// for Packet.Rail. The encoding is offset by one so that the Packet zero
// value still means "no pin, round-robin".
func RailPin(r int) int { return r + 1 }
