package fabric

import (
	"sync"
	"testing"
	"time"
)

// drainOne polls until a packet arrives or the deadline passes.
func drainOne(t *testing.T, d *Device) *Packet {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p := d.Poll(); p != nil {
			return p
		}
	}
	t.Fatal("timed out waiting for a packet")
	return nil
}

// TestRailRingWraparound drives a tiny ring through many laps and checks
// per-rail FIFO survives the sequence-counter wraparound of slots.
func TestRailRingWraparound(t *testing.T) {
	n, err := NewNetwork(Config{Nodes: 2, MaxInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.Device(0), n.Device(1)
	next := uint64(0)
	for round := 0; round < 100; round++ {
		for k := 0; k < 4; k++ {
			if err := src.Inject(Packet{Dst: 1, T0: uint64(round*4 + k)}); err != nil {
				t.Fatalf("round %d inject %d: %v", round, k, err)
			}
		}
		for k := 0; k < 4; k++ {
			p := drainOne(t, dst)
			if p.T0 != next {
				t.Fatalf("FIFO violation: got T0=%d want %d", p.T0, next)
			}
			next++
			p.Release()
		}
	}
}

// TestBackpressureBoundary checks the MaxInflight cap is exact: the cap-th
// inject succeeds, cap+1 fails, and popping one packet reopens the rail.
func TestBackpressureBoundary(t *testing.T) {
	const cap = 3
	n, err := NewNetwork(Config{Nodes: 2, MaxInflight: cap})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.Device(0), n.Device(1)
	for i := 0; i < cap; i++ {
		if err := src.Inject(Packet{Dst: 1, T0: uint64(i)}); err != nil {
			t.Fatalf("inject %d within cap: %v", i, err)
		}
	}
	if err := src.Inject(Packet{Dst: 1}); err != ErrBackpressure {
		t.Fatalf("inject beyond cap: got %v, want ErrBackpressure", err)
	}
	drainOne(t, dst).Release()
	if err := src.Inject(Packet{Dst: 1, T0: cap}); err != nil {
		t.Fatalf("inject after drain: %v", err)
	}
	for i := 1; i <= cap; i++ {
		p := drainOne(t, dst)
		if p.T0 != uint64(i) {
			t.Fatalf("got T0=%d want %d", p.T0, i)
		}
		p.Release()
	}
}

// TestOverflowSpill floods one rail far past the ring capacity with no
// MaxInflight cap: the burst must spill to the overflow list and drain back
// out in FIFO order.
func TestOverflowSpill(t *testing.T) {
	const total = defaultRailSlots*2 + 57
	n, err := NewNetwork(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.Device(0), n.Device(1)
	for i := 0; i < total; i++ {
		if err := src.Inject(Packet{Dst: 1, T0: uint64(i)}); err != nil {
			t.Fatalf("inject %d: %v", i, err)
		}
	}
	for i := 0; i < total; i++ {
		p := drainOne(t, dst)
		if p.T0 != uint64(i) {
			t.Fatalf("overflow FIFO violation at %d: got T0=%d", i, p.T0)
		}
		p.Release()
	}
	if dst.Poll() != nil || dst.Pending() {
		t.Fatal("packets left after full drain")
	}
}

// TestConcurrentInjectPollRing hammers one device from many injector
// goroutines while many pollers drain it concurrently (run under -race).
// Every injected packet must be delivered exactly once.
func TestConcurrentInjectPollRing(t *testing.T) {
	const (
		senders   = 4
		pollers   = 4
		perSender = 2000
	)
	n, err := NewNetwork(Config{Nodes: senders + 1, Rails: 2})
	if err != nil {
		t.Fatal(err)
	}
	dst := n.Device(0)
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			src := n.Device(s)
			for i := 0; i < perSender; i++ {
				for {
					if err := src.Inject(Packet{Dst: 0, T0: uint64(i)}); err == nil {
						break
					}
				}
			}
		}(s)
	}
	var mu sync.Mutex
	seen := make(map[[2]uint64]int)
	var pwg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < pollers; w++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for {
				p := dst.Poll()
				if p == nil {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				key := [2]uint64{uint64(p.Src), p.T0}
				mu.Lock()
				seen[key]++
				mu.Unlock()
				p.Release()
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		got := len(seen)
		mu.Unlock()
		if got == senders*perSender || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	pwg.Wait()
	if len(seen) != senders*perSender {
		t.Fatalf("delivered %d distinct messages, want %d", len(seen), senders*perSender)
	}
	for key, count := range seen {
		if count != 1 {
			t.Fatalf("message %v delivered %d times", key, count)
		}
	}
}

// TestInjectBatchRuns checks batch injection preserves order, amortizes
// same-destination runs, and reports partial progress on backpressure.
func TestInjectBatchRuns(t *testing.T) {
	n, err := NewNetwork(Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	src := n.Device(0)
	batch := make([]Packet, 0, 40)
	for i := 0; i < 40; i++ {
		batch = append(batch, Packet{Dst: 1 + i/20, T0: uint64(i)})
	}
	done, err := src.InjectBatch(batch)
	if err != nil || done != len(batch) {
		t.Fatalf("InjectBatch = (%d, %v), want (%d, nil)", done, err, len(batch))
	}
	for dev := 1; dev <= 2; dev++ {
		base := uint64((dev - 1) * 20)
		for k := 0; k < 20; k++ {
			p := drainOne(t, n.Device(dev))
			if p.T0 != base+uint64(k) {
				t.Fatalf("dev %d: got T0=%d want %d", dev, p.T0, base+uint64(k))
			}
			p.Release()
		}
	}
}

func TestInjectBatchBackpressure(t *testing.T) {
	n, err := NewNetwork(Config{Nodes: 2, MaxInflight: 5})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.Device(0), n.Device(1)
	batch := make([]Packet, 8)
	for i := range batch {
		batch[i] = Packet{Dst: 1, T0: uint64(i)}
	}
	done, err := src.InjectBatch(batch)
	if err != ErrBackpressure || done != 5 {
		t.Fatalf("InjectBatch = (%d, %v), want (5, ErrBackpressure)", done, err)
	}
	for i := 0; i < done; i++ {
		p := drainOne(t, dst)
		if p.T0 != uint64(i) {
			t.Fatalf("got T0=%d want %d", p.T0, i)
		}
		p.Release()
	}
	done2, err := src.InjectBatch(batch[done:])
	if err != nil || done2 != 3 {
		t.Fatalf("retry InjectBatch = (%d, %v), want (3, nil)", done2, err)
	}
	for i := done; i < len(batch); i++ {
		drainOne(t, dst).Release()
	}
}

// TestDoubleReleasePanics: releasing a pooled packet twice must panic rather
// than silently corrupt the freelist.
func TestDoubleReleasePanics(t *testing.T) {
	n, err := NewNetwork(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Device(0).Inject(Packet{Dst: 1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	p := drainOne(t, n.Device(1))
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	p.Release()
}

// TestReleaseProtocolBalanced soaks the full ARQ (drops, dups, corruption,
// spikes, retransmits, standalone acks) and asserts that once the network is
// quiescent every pool packet handed out was released back: Gets == Puts on
// every device, i.e. no leaks and no double frees anywhere in the datapath.
func TestReleaseProtocolBalanced(t *testing.T) {
	const nodes = 3
	n, err := NewNetwork(Config{
		Nodes: nodes,
		Faults: FaultConfig{
			Seed:        42,
			DropProb:    0.10,
			DupProb:     0.05,
			CorruptProb: 0.05,
			SpikeProb:   0.05,
			SpikeNs:     20_000,
		},
		RetransmitTimeoutNs: 100_000,
		AckDelayNs:          30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all chatter.
	for round := 0; round < 200; round++ {
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				if s == d {
					continue
				}
				_ = n.Device(s).Inject(Packet{Dst: d, T0: uint64(round), Data: []byte{byte(round), byte(s)}})
			}
		}
		for d := 0; d < nodes; d++ {
			for {
				p := n.Device(d).Poll()
				if p == nil {
					break
				}
				p.Release()
			}
		}
	}
	// Drain to quiescence: no queued packets, no unacked windows, and several
	// consecutive empty polls everywhere (lets retransmit and ack timers run
	// out naturally).
	deadline := time.Now().Add(20 * time.Second)
	idleRounds := 0
	for idleRounds < 50 {
		if time.Now().After(deadline) {
			t.Fatal("network did not quiesce")
		}
		idle := true
		for d := 0; d < nodes; d++ {
			dev := n.Device(d)
			for {
				p := dev.Poll()
				if p == nil {
					break
				}
				idle = false
				p.Release()
			}
			if dev.Pending() {
				idle = false
			}
			for dst := 0; dst < nodes; dst++ {
				if dst != d && dev.rel.unackedTo(dst) > 0 {
					idle = false
				}
			}
		}
		if idle {
			idleRounds++
		} else {
			idleRounds = 0
		}
		time.Sleep(time.Millisecond)
	}
	for d := 0; d < nodes; d++ {
		ps := n.Device(d).PoolStats()
		if ps.Gets != ps.Puts {
			t.Errorf("device %d pool unbalanced: gets=%d puts=%d (allocs=%d drops=%d)",
				d, ps.Gets, ps.Puts, ps.Allocs, ps.Drops)
		}
		if ps.Gets == 0 {
			t.Errorf("device %d pool unused: the soak should exercise it", d)
		}
	}
}

// TestInjectPollReleaseZeroAllocs is the steady-state allocation gate from
// the perf work: once the pool and ring are warm, one eager
// inject → poll → release cycle performs zero heap allocations, with
// reliability framing off and on (lossless ARQ).
func TestInjectPollReleaseZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Nodes: 2}},
		{"lossless-rel", Config{Nodes: 2, Reliability: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n, err := NewNetwork(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			src, dst := n.Device(0), n.Device(1)
			payload := make([]byte, 64)
			cycle := func() {
				if err := src.Inject(Packet{Dst: 1, Data: payload}); err != nil {
					t.Fatal(err)
				}
				var p *Packet
				for p == nil {
					p = dst.Poll()
				}
				p.Release()
			}
			for i := 0; i < 200; i++ {
				cycle() // warm the pool, the rail ring and the ready index
			}
			if avg := testing.AllocsPerRun(500, cycle); avg != 0 {
				t.Fatalf("inject→poll→release allocates %.2f objects/op, want 0", avg)
			}
		})
	}
}

// TestPollCostClusterSizeIndependent is the functional form of
// BenchmarkPollManyNodes: with one active peer, per-poll work must not grow
// with the number of idle nodes (the ready index replaces the full scan).
func TestPollCostClusterSizeIndependent(t *testing.T) {
	measure := func(nodes int) time.Duration {
		n, err := NewNetwork(Config{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		src, dst := n.Device(1), n.Device(0)
		payload := make([]byte, 64)
		const iters = 20000
		// Warm up.
		for i := 0; i < 1000; i++ {
			_ = src.Inject(Packet{Dst: 0, Data: payload})
			for {
				if p := dst.Poll(); p != nil {
					p.Release()
					break
				}
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			_ = src.Inject(Packet{Dst: 0, Data: payload})
			for {
				if p := dst.Poll(); p != nil {
					p.Release()
					break
				}
			}
		}
		return time.Since(start) / iters
	}
	small := measure(2)
	large := measure(64)
	// Allow generous scheduling noise; the pre-ready-index scan cost ~4x
	// from 2 to 64 nodes, the index must stay well under 2x.
	if large > small*2 && large-small > 2*time.Microsecond {
		t.Fatalf("poll cost grew with cluster size: %v at 2 nodes vs %v at 64", small, large)
	}
}
