package fabric

import (
	"sort"
	"testing"
	"time"
)

// --- Config validation (satellite: reject malformed configs loudly) ---

func TestConfigValidationTable(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{Nodes: 2}, true},
		{"full reliability", Config{Nodes: 2, Reliability: true,
			RetransmitTimeoutNs: 1000, RetryBudget: 3, AckDelayNs: 1000}, true},
		{"faults in range", Config{Nodes: 2, Faults: FaultConfig{
			DropProb: 0.5, DupProb: 1, CorruptProb: 0, SpikeProb: 0.01, SpikeNs: 10}}, true},
		{"zero nodes", Config{Nodes: 0}, false},
		{"negative nodes", Config{Nodes: -1}, false},
		{"negative latency", Config{Nodes: 2, LatencyNs: -1}, false},
		{"negative bandwidth", Config{Nodes: 2, GbitsPerSec: -0.5}, false},
		{"negative rails", Config{Nodes: 2, Rails: -1}, false},
		{"negative inflight", Config{Nodes: 2, MaxInflight: -2}, false},
		{"negative overhead", Config{Nodes: 2, PacketOverheadBytes: -64}, false},
		{"negative devices", Config{Nodes: 2, DevicesPerNode: -1}, false},
		{"negative rto", Config{Nodes: 2, RetransmitTimeoutNs: -1}, false},
		{"negative budget", Config{Nodes: 2, RetryBudget: -1}, false},
		{"negative ack delay", Config{Nodes: 2, AckDelayNs: -5}, false},
		{"drop prob > 1", Config{Nodes: 2, Faults: FaultConfig{DropProb: 1.5}}, false},
		{"dup prob < 0", Config{Nodes: 2, Faults: FaultConfig{DupProb: -0.1}}, false},
		{"corrupt prob > 1", Config{Nodes: 2, Faults: FaultConfig{CorruptProb: 2}}, false},
		{"spike prob > 1", Config{Nodes: 2, Faults: FaultConfig{SpikeProb: 1.01}}, false},
		{"negative spike ns", Config{Nodes: 2, Faults: FaultConfig{SpikeProb: 0.1, SpikeNs: -1}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewNetwork(tc.cfg)
			if tc.ok && err != nil {
				t.Fatalf("NewNetwork(%+v) = %v, want success", tc.cfg, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("NewNetwork(%+v) succeeded, want error", tc.cfg)
			}
		})
	}
}

func TestFaultsImplyReliability(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, Faults: FaultConfig{DropProb: 0.1}})
	cfg := n.Config()
	if !cfg.Reliability {
		t.Fatal("active faults should imply Reliability")
	}
	if cfg.RetransmitTimeoutNs == 0 || cfg.RetryBudget == 0 || cfg.AckDelayNs == 0 {
		t.Fatalf("reliability defaults not applied: %+v", cfg)
	}
	if n.Device(0).rel == nil {
		t.Fatal("device has no reliability engine")
	}
}

// chaosCfg is a 2-node fabric with every fault class active, tuned so a
// 1-CPU test host converges quickly (small RTO, generous budget).
func chaosCfg(seed int64) Config {
	return Config{
		Nodes:     2,
		LatencyNs: 200,
		Faults: FaultConfig{
			DropProb:    0.2,
			DupProb:     0.1,
			CorruptProb: 0.1,
			SpikeProb:   0.05,
			SpikeNs:     5_000,
			Seed:        seed,
		},
		RetransmitTimeoutNs: 100_000,
		AckDelayNs:          50_000,
		RetryBudget:         64,
	}
}

// TestExactlyOnceUnderFaults drives heavy drop/dup/corruption at the ARQ and
// checks the upper layer still observes every packet exactly once.
func TestExactlyOnceUnderFaults(t *testing.T) {
	n := mustNet(t, chaosCfg(7))
	a, b := n.Device(0), n.Device(1)

	const total = 500
	seen := make(map[uint64]int)
	deadline := time.Now().Add(30 * time.Second)
	next := uint64(0)
	for len(seen) < total {
		if time.Now().After(deadline) {
			t.Fatalf("delivered only %d/%d distinct packets before deadline", len(seen), total)
		}
		if next < total {
			err := a.Inject(Packet{Dst: 1, Op: 3, T0: next, Data: []byte("payload")})
			if err == nil {
				next++
			} else if err != ErrBackpressure {
				t.Fatalf("Inject: %v", err)
			}
		}
		if p := b.Poll(); p != nil {
			seen[p.T0]++
		}
		a.Poll() // drive sender-side maintenance (retransmits) and eat acks
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("packet T0=%d delivered %d times, want exactly once", id, c)
		}
	}

	st := a.Stats()
	if st.FaultDropped == 0 || st.FaultDuplicated == 0 || st.FaultCorrupted == 0 {
		t.Fatalf("fault injection inactive: %+v", st)
	}
	if st.Retransmits == 0 {
		t.Fatalf("expected retransmissions under 20%% drop: %+v", st)
	}
	if rb := b.Stats(); rb.CorruptDropped == 0 {
		t.Fatalf("receiver never saw a corrupt packet: %+v", rb)
	}
	if st.LinksDowned != 0 {
		t.Fatalf("link went down during chaos run: %+v", st)
	}
}

// TestRetryBudgetDownsLink: with every transmission corrupted no ack can ever
// come back, so the packet exhausts its budget and the link goes HealthDown;
// later injects are blackholed instead of wedging the sender.
func TestRetryBudgetDownsLink(t *testing.T) {
	n := mustNet(t, Config{
		Nodes:               2,
		Faults:              FaultConfig{CorruptProb: 1, Seed: 1},
		RetransmitTimeoutNs: 30_000,
		AckDelayNs:          30_000,
		RetryBudget:         3,
	})
	a, b := n.Device(0), n.Device(1)
	if err := a.Inject(Packet{Dst: 1, T0: 9, Data: []byte("doomed")}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for n.PeerHealth(0, 1) != HealthDown {
		if time.Now().After(deadline) {
			t.Fatalf("link never went down; health=%v stats=%+v", n.PeerHealth(0, 1), a.Stats())
		}
		a.Poll()
		if p := b.Poll(); p != nil {
			t.Fatalf("corrupt packet surfaced to the upper layer: %+v", p)
		}
	}
	st := a.Stats()
	if st.LinksDowned != 1 {
		t.Fatalf("LinksDowned = %d, want 1", st.LinksDowned)
	}
	if a.rel.unackedTo(1) != 0 {
		t.Fatal("unacked window not cleared on link-down")
	}
	// Sends into a down link succeed silently but deliver nothing.
	if err := a.Inject(Packet{Dst: 1, T0: 10}); err != nil {
		t.Fatalf("Inject into down link: %v", err)
	}
	if st := a.Stats(); st.DownDropped != 1 {
		t.Fatalf("DownDropped = %d, want 1", st.DownDropped)
	}
}

func TestSetLinkDownAndHealth(t *testing.T) {
	n := mustNet(t, Config{Nodes: 3, Reliability: true})
	if h := n.PeerHealth(0, 2); h != HealthHealthy {
		t.Fatalf("initial health = %v, want healthy", h)
	}
	n.SetLinkDown(0, 2)
	if h := n.PeerHealth(0, 2); h != HealthDown {
		t.Fatalf("health after SetLinkDown = %v, want down", h)
	}
	if h := n.PeerHealth(0, 1); h != HealthHealthy {
		t.Fatalf("unrelated link health = %v, want healthy", h)
	}
	if h := n.PeerHealth(2, 0); h != HealthHealthy {
		t.Fatalf("reverse direction health = %v, want healthy (one-way cut)", h)
	}
}

// TestSeededReproducibility: identical seeds and a single-threaded operation
// sequence produce identical fault rolls and deliveries. Retransmission and
// ack timers are pushed out past the test horizon so wall-clock jitter cannot
// perturb the per-link RNG streams.
func TestSeededReproducibility(t *testing.T) {
	run := func() ([]uint64, Stats) {
		n := mustNet(t, Config{
			Nodes: 2,
			Faults: FaultConfig{
				DropProb: 0.3, DupProb: 0.2, CorruptProb: 0.1, Seed: 42,
			},
			RetransmitTimeoutNs: int64(time.Hour),
			AckDelayNs:          int64(time.Hour),
			RetryBudget:         1000,
		})
		a, b := n.Device(0), n.Device(1)
		for i := 0; i < 200; i++ {
			if err := a.Inject(Packet{Dst: 1, T0: uint64(i), Data: []byte{byte(i)}}); err != nil {
				t.Fatalf("Inject: %v", err)
			}
		}
		var got []uint64
		idle := 0
		for idle < 100 {
			if p := b.Poll(); p != nil {
				got = append(got, p.T0)
				idle = 0
			} else {
				idle++
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		return got, a.Stats()
	}
	got1, st1 := run()
	got2, st2 := run()
	if len(got1) != len(got2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("delivery sets differ at %d: %d vs %d", i, got1[i], got2[i])
		}
	}
	if st1.FaultDropped != st2.FaultDropped ||
		st1.FaultDuplicated != st2.FaultDuplicated ||
		st1.FaultCorrupted != st2.FaultCorrupted {
		t.Fatalf("fault streams differ: %+v vs %+v", st1, st2)
	}
	if st1.FaultDropped == 0 {
		t.Fatal("no drops rolled; test is vacuous")
	}
}

// TestAckDrainsUnacked: on a healthy reliable link the receiver's ack (idle
// timer driven, no reverse traffic) empties the sender's unacked window.
func TestAckDrainsUnacked(t *testing.T) {
	n := mustNet(t, Config{
		Nodes:               2,
		Reliability:         true,
		RetransmitTimeoutNs: int64(time.Second), // no retransmits needed
		AckDelayNs:          50_000,
	})
	a, b := n.Device(0), n.Device(1)
	for i := 0; i < 5; i++ {
		if err := a.Inject(Packet{Dst: 1, T0: uint64(i), Data: []byte("x")}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		pollWait(t, b, time.Second)
	}
	if w := a.rel.unackedTo(1); w != 5 {
		t.Fatalf("unacked window = %d before ack, want 5", w)
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.rel.unackedTo(1) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("unacked window never drained: %d left, b stats %+v",
				a.rel.unackedTo(1), b.Stats())
		}
		b.Poll() // receiver's idle timer emits the standalone ack
		a.Poll() // sender consumes it
	}
	if st := b.Stats(); st.AcksSent == 0 {
		t.Fatalf("no standalone ack was sent: %+v", st)
	}
	if h := n.PeerHealth(0, 1); h != HealthHealthy {
		t.Fatalf("health after clean run = %v, want healthy", h)
	}
}

// TestReliabilityNoFaultsTransparent: with Reliability on but no faults the
// fabric still delivers everything exactly once and upper-layer metadata
// (Op, T0..T2, payload) is untouched by the framing.
func TestReliabilityNoFaultsTransparent(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, Reliability: true, LatencyNs: 100})
	a, b := n.Device(0), n.Device(1)
	payload := []byte("reliable payload")
	if err := a.Inject(Packet{Dst: 1, Op: 9, T0: 1, T1: 2, T2: 3, Data: payload}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	p := pollWait(t, b, time.Second)
	if p.Op != 9 || p.T0 != 1 || p.T1 != 2 || p.T2 != 3 || string(p.Data) != string(payload) {
		t.Fatalf("metadata mangled by reliability framing: %+v", p)
	}
	if q := b.Poll(); q != nil {
		t.Fatalf("duplicate delivery without faults: %+v", q)
	}
}

func TestHealthString(t *testing.T) {
	if HealthHealthy.String() != "healthy" || HealthDegraded.String() != "degraded" ||
		HealthDown.String() != "down" {
		t.Fatal("Health.String mismatch")
	}
}
