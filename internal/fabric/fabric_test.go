package fabric

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mustNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

// pollWait polls d until a packet arrives or the deadline passes.
func pollWait(t *testing.T, d *Device, timeout time.Duration) *Packet {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p := d.Poll(); p != nil {
			return p
		}
	}
	t.Fatalf("no packet arrived within %v", timeout)
	return nil
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{Nodes: 0}); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := NewNetwork(Config{Nodes: -3}); err == nil {
		t.Fatal("expected error for negative nodes")
	}
	n := mustNet(t, Config{Nodes: 2}) // Rails defaults to 1
	if got := n.Config().Rails; got != 1 {
		t.Fatalf("Rails default = %d, want 1", got)
	}
}

func TestBasicDelivery(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, LatencyNs: 100})
	src, dst := n.Device(0), n.Device(1)
	payload := []byte("hello fabric")
	if err := src.Inject(Packet{Dst: 1, Op: 7, T0: 42, T1: 43, Data: payload}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	p := pollWait(t, dst, time.Second)
	if p.Src != 0 || p.Dst != 1 || p.Op != 7 || p.T0 != 42 || p.T1 != 43 {
		t.Fatalf("bad header: %+v", p)
	}
	if !bytes.Equal(p.Data, payload) {
		t.Fatalf("payload mismatch: %q", p.Data)
	}
	if q := dst.Poll(); q != nil {
		t.Fatalf("unexpected extra packet: %+v", q)
	}
}

func TestInjectCopiesPayload(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2})
	buf := []byte{1, 2, 3, 4}
	if err := n.Device(0).Inject(Packet{Dst: 1, Data: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate after injection: the fabric must have its own copy
	p := pollWait(t, n.Device(1), time.Second)
	if p.Data[0] != 1 {
		t.Fatalf("fabric aliased the caller's buffer: %v", p.Data)
	}
}

func TestInvalidDestination(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2})
	if err := n.Device(0).Inject(Packet{Dst: 5}); err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
	if err := n.Device(0).Inject(Packet{Dst: -1}); err == nil {
		t.Fatal("expected error for negative destination")
	}
}

func TestLatencyHidesPacket(t *testing.T) {
	// With a large latency, an immediate poll must not see the packet.
	n := mustNet(t, Config{Nodes: 2, LatencyNs: int64(50 * time.Millisecond)})
	if err := n.Device(0).Inject(Packet{Dst: 1, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if p := n.Device(1).Poll(); p != nil {
		t.Fatal("packet visible before its latency elapsed")
	}
	if !n.Device(1).Pending() {
		t.Fatal("Pending should report the queued packet")
	}
	p := pollWait(t, n.Device(1), time.Second)
	if string(p.Data) != "x" {
		t.Fatalf("bad payload %q", p.Data)
	}
}

func TestSingleRailFIFO(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, LatencyNs: 1000, Rails: 1})
	src, dst := n.Device(0), n.Device(1)
	const k = 100
	for i := 0; i < k; i++ {
		if err := src.Inject(Packet{Dst: 1, T0: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		p := pollWait(t, dst, time.Second)
		if p.T0 != uint64(i) {
			t.Fatalf("out-of-order delivery on single rail: got %d want %d", p.T0, i)
		}
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// Two large packets on a slow link: the second must arrive measurably
	// after the first (transmission times accumulate on the rail).
	cfg := Config{Nodes: 2, LatencyNs: 0, GbitsPerSec: 1} // 1 bit/ns
	n := mustNet(t, cfg)
	payload := make([]byte, 125000) // 1e6 bits => 1ms at 1 Gb/s
	for i := 0; i < 2; i++ {
		if err := n.Device(0).Inject(Packet{Dst: 1, T0: uint64(i), Data: payload}); err != nil {
			t.Fatal(err)
		}
	}
	p1 := pollWait(t, n.Device(1), 2*time.Second)
	p2 := pollWait(t, n.Device(1), 2*time.Second)
	gap := p2.ArrivedAtNs() - p1.ArrivedAtNs()
	want := n.xmitNs(len(payload))
	if gap < want {
		t.Fatalf("second packet arrived %dns after first, want >= %dns", gap, want)
	}
}

func TestZeroBandwidthMeansInstant(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, GbitsPerSec: 0})
	if got := n.xmitNs(1 << 20); got != 0 {
		t.Fatalf("xmitNs with zero bandwidth = %d, want 0", got)
	}
}

func TestMultiRailCanReorder(t *testing.T) {
	// Saturate rail 0 with a huge packet, then send a small one that lands on
	// rail 1; the small one must overtake it.
	cfg := Config{Nodes: 2, LatencyNs: 0, GbitsPerSec: 1, Rails: 2}
	n := mustNet(t, cfg)
	big := make([]byte, 1<<20)
	if err := n.Device(0).Inject(Packet{Dst: 1, T0: 1, Data: big}); err != nil {
		t.Fatal(err)
	}
	if err := n.Device(0).Inject(Packet{Dst: 1, T0: 2, Data: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	p := pollWait(t, n.Device(1), 5*time.Second)
	if p.T0 != 2 {
		t.Fatalf("expected small packet to overtake on the second rail, got T0=%d", p.T0)
	}
	p = pollWait(t, n.Device(1), 5*time.Second)
	if p.T0 != 1 {
		t.Fatalf("expected big packet second, got T0=%d", p.T0)
	}
}

func TestBackpressure(t *testing.T) {
	cfg := Config{Nodes: 2, LatencyNs: int64(time.Hour), MaxInflight: 4}
	n := mustNet(t, cfg)
	var errs int
	for i := 0; i < 10; i++ {
		if err := n.Device(0).Inject(Packet{Dst: 1}); err != nil {
			if err != ErrBackpressure {
				t.Fatalf("unexpected error: %v", err)
			}
			errs++
		}
	}
	if errs != 6 {
		t.Fatalf("got %d backpressure errors, want 6", errs)
	}
	if got := n.Device(0).Stats().Backpressured; got != 6 {
		t.Fatalf("Backpressured counter = %d, want 6", got)
	}
}

func TestStatsCounters(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2})
	payload := make([]byte, 100)
	for i := 0; i < 5; i++ {
		if err := n.Device(0).Inject(Packet{Dst: 1, Data: payload}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		pollWait(t, n.Device(1), time.Second)
	}
	s0, s1 := n.Device(0).Stats(), n.Device(1).Stats()
	if s0.InjectedPackets != 5 || s0.InjectedBytes != 500 {
		t.Fatalf("sender stats: %+v", s0)
	}
	if s1.DeliveredPackets != 5 || s1.DeliveredBytes != 500 {
		t.Fatalf("receiver stats: %+v", s1)
	}
}

func TestPollInto(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, LatencyNs: 0})
	for i := 0; i < 8; i++ {
		if err := n.Device(0).Inject(Packet{Dst: 1, T0: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	var got []*Packet
	for len(got) < 8 && time.Now().Before(deadline) {
		got = n.Device(1).PollInto(got, 3)
	}
	if len(got) != 8 {
		t.Fatalf("PollInto collected %d packets, want 8", len(got))
	}
}

func TestSelfSend(t *testing.T) {
	// Loopback (node sending to itself) must work: localities on the same
	// node still route through the device in some configurations.
	n := mustNet(t, Config{Nodes: 1, LatencyNs: 10})
	if err := n.Device(0).Inject(Packet{Dst: 0, Data: []byte("loop")}); err != nil {
		t.Fatal(err)
	}
	p := pollWait(t, n.Device(0), time.Second)
	if string(p.Data) != "loop" {
		t.Fatalf("bad loopback payload %q", p.Data)
	}
}

func TestConcurrentInjectPoll(t *testing.T) {
	// Hammer one device from several goroutines while several pollers drain.
	// Verifies no packets are lost or duplicated under concurrency.
	n := mustNet(t, Config{Nodes: 4, LatencyNs: 100, Rails: 2})
	const senders, perSender = 4, 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			src := n.Device(s % 3) // nodes 0..2 send to node 3
			for i := 0; i < perSender; i++ {
				for {
					if err := src.Inject(Packet{Dst: 3, T0: uint64(s*perSender + i)}); err == nil {
						break
					}
				}
			}
		}(s)
	}
	seen := make(map[uint64]bool)
	var seenMu sync.Mutex
	var pollers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				p := n.Device(3).Poll()
				if p != nil {
					seenMu.Lock()
					if seen[p.T0] {
						t.Errorf("duplicate packet %d", p.T0)
					}
					seen[p.T0] = true
					seenMu.Unlock()
					continue
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		seenMu.Lock()
		done := len(seen) == senders*perSender
		seenMu.Unlock()
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	pollers.Wait()
	if len(seen) != senders*perSender {
		t.Fatalf("delivered %d packets, want %d", len(seen), senders*perSender)
	}
}

func TestPayloadRoundTripProperty(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, LatencyNs: 0})
	f := func(data []byte, op uint8, t0, t1 uint64) bool {
		if err := n.Device(0).Inject(Packet{Dst: 1, Op: op, T0: t0, T1: t1, Data: data}); err != nil {
			return false
		}
		var p *Packet
		deadline := time.Now().Add(time.Second)
		for p == nil && time.Now().Before(deadline) {
			p = n.Device(1).Poll()
		}
		if p == nil {
			return false
		}
		return p.Op == op && p.T0 == t0 && p.T1 == t1 && bytes.Equal(p.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDeviceLanes(t *testing.T) {
	// Device i of a node delivers only to device i of the destination:
	// replicated contexts are independent lanes.
	n := mustNet(t, Config{Nodes: 2, DevicesPerNode: 3})
	for di := 0; di < 3; di++ {
		if err := n.DeviceN(0, di).Inject(Packet{Dst: 1, T0: uint64(di)}); err != nil {
			t.Fatal(err)
		}
	}
	for di := 0; di < 3; di++ {
		p := pollWait(t, n.DeviceN(1, di), time.Second)
		if p.T0 != uint64(di) {
			t.Fatalf("device %d got packet %d: lanes crossed", di, p.T0)
		}
		if n.DeviceN(1, di).Poll() != nil {
			t.Fatalf("device %d got a second packet", di)
		}
	}
	if n.DeviceN(0, 1).Index() != 1 {
		t.Fatal("device Index wrong")
	}
}

func TestT2MetadataPreserved(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2})
	if err := n.Device(0).Inject(Packet{Dst: 1, T2: 0xABCDEF}); err != nil {
		t.Fatal(err)
	}
	p := pollWait(t, n.Device(1), time.Second)
	if p.T2 != 0xABCDEF {
		t.Fatalf("T2 = %x", p.T2)
	}
}
