package fabric

import (
	"fmt"
	"math/rand"
)

// FaultConfig injects transport-level faults on every directed (src, dst)
// link. All probabilities are per transmission attempt (retransmissions and
// standalone acks roll again), so a retransmitted packet can be dropped
// twice in a row — exactly the behaviour a lossy wire exhibits. Any active
// fault implies Config.Reliability: the fabric will not silently lose
// traffic the layers above were promised.
//
// Faults are applied on the sender side of the link from a per-link RNG
// seeded by Seed and the link endpoints, so a single-threaded workload
// replays identically and a multi-threaded one keeps per-link distributions
// stable.
type FaultConfig struct {
	// DropProb is the probability a transmission never reaches the
	// destination rail.
	DropProb float64
	// DupProb is the probability a transmission is delivered twice.
	DupProb float64
	// CorruptProb is the probability a transmission arrives with flipped
	// bits. Corruption is detected by the packet checksum and the packet is
	// discarded by the receiver, making it equivalent to a drop plus a
	// counter increment.
	CorruptProb float64
	// SpikeProb is the probability a transmission suffers a transient
	// latency spike of SpikeNs (a degraded link / congested switch).
	SpikeProb float64
	// SpikeNs is the extra one-way latency added on a spike.
	// Zero defaults to 50µs when SpikeProb > 0.
	SpikeNs int64
	// Seed makes the fault streams reproducible. The same seed, topology
	// and (single-threaded) operation sequence replays the same faults.
	Seed int64
}

// Active reports whether any fault is configured.
func (f FaultConfig) Active() bool {
	return f.DropProb > 0 || f.DupProb > 0 || f.CorruptProb > 0 || f.SpikeProb > 0
}

// validate rejects out-of-range fault parameters.
func (f FaultConfig) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", f.DropProb},
		{"DupProb", f.DupProb},
		{"CorruptProb", f.CorruptProb},
		{"SpikeProb", f.SpikeProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fabric: Faults.%s must be in [0, 1], got %v", p.name, p.v)
		}
	}
	if f.SpikeNs < 0 {
		return fmt.Errorf("fabric: Faults.SpikeNs must be non-negative, got %d", f.SpikeNs)
	}
	return nil
}

// validate rejects a malformed Config. Negative values are errors rather
// than silently clamped; zero values select documented defaults.
func (c Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("fabric: Nodes must be positive, got %d", c.Nodes)
	}
	if c.LatencyNs < 0 {
		return fmt.Errorf("fabric: LatencyNs must be non-negative, got %d", c.LatencyNs)
	}
	if c.GbitsPerSec < 0 {
		return fmt.Errorf("fabric: GbitsPerSec must be non-negative, got %v", c.GbitsPerSec)
	}
	if c.Rails < 0 {
		return fmt.Errorf("fabric: Rails must be non-negative, got %d", c.Rails)
	}
	if c.MaxInflight < 0 {
		return fmt.Errorf("fabric: MaxInflight must be non-negative, got %d", c.MaxInflight)
	}
	if c.PacketOverheadBytes < 0 {
		return fmt.Errorf("fabric: PacketOverheadBytes must be non-negative, got %d", c.PacketOverheadBytes)
	}
	if c.DevicesPerNode < 0 {
		return fmt.Errorf("fabric: DevicesPerNode must be non-negative, got %d", c.DevicesPerNode)
	}
	if c.RetransmitTimeoutNs < 0 {
		return fmt.Errorf("fabric: RetransmitTimeoutNs must be non-negative, got %d", c.RetransmitTimeoutNs)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("fabric: RetryBudget must be non-negative, got %d", c.RetryBudget)
	}
	if c.AckDelayNs < 0 {
		return fmt.Errorf("fabric: AckDelayNs must be non-negative, got %d", c.AckDelayNs)
	}
	return c.Faults.validate()
}

// Health is the observed state of a directed (src, dst) link, derived from
// the reliability layer's retransmission history.
type Health uint8

const (
	// HealthHealthy: acks are flowing, no outstanding retransmissions.
	HealthHealthy Health = iota
	// HealthDegraded: several retransmissions since the last ack progress;
	// the link is slow or lossy but still assumed alive.
	HealthDegraded
	// HealthDown: a packet exhausted its retry budget (or the link was
	// administratively cut). Further sends to the peer are blackholed and
	// the upper layers surface peer-unreachable errors.
	HealthDown
)

// String renders the health state for StatsText reports.
func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthDown:
		return "down"
	}
	return fmt.Sprintf("Health(%d)", uint8(h))
}

// linkRNG derives a per-link fault stream: the same seed and endpoints give
// the same stream regardless of construction order.
func linkRNG(seed int64, src, dst, devIdx int) *rand.Rand {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	for _, v := range []uint64{uint64(src), uint64(dst), uint64(devIdx)} {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 31
	}
	return rand.New(rand.NewSource(int64(h)))
}
