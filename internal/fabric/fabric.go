// Package fabric simulates the low-level network that the communication
// libraries (internal/mpisim, internal/lci) are built on. It stands in for
// the InfiniBand NIC + verbs/libfabric stack of the paper's testbeds.
//
// The simulation reproduces the properties the layers above actually depend
// on, rather than modelling hardware details:
//
//   - Finite link throughput: each (source, destination, rail) link serializes
//     packet transmission according to a configured bandwidth.
//   - Nonzero latency: a packet only becomes visible to the receiver once its
//     computed arrival time has passed.
//   - Progress-driven reception: nothing is delivered until the receiving
//     library polls its Device. This is what makes "who calls progress"
//     (dedicated thread vs. idle worker threads) a meaningful design axis.
//   - Out-of-order delivery: with Rails > 1 packets between the same pair of
//     nodes may arrive out of injection order, as LCI's transport permits.
//   - Shared receive structures: the per-device RX rails are real contention
//     points when many threads poll concurrently.
//
// The datapath is allocation-free and cluster-size-independent in steady
// state: stored packets come from per-device pools and return to them via
// Packet.Release (pool.go); each rail is a bounded ring with a short
// producer lock and an atomic consumer pop; and every device keeps a ready
// index of rails with queued traffic, so Poll visits only rails that have
// (or are about to have) arrivals instead of scanning all Nodes × Rails
// links.
//
// By default delivery is reliable: packets are never dropped or corrupted
// (matching the reliable-connection InfiniBand transport used in the paper).
// Config.Faults injects seeded per-link packet drop, duplication, payload
// corruption and latency spikes; Config.Reliability (implied by active
// faults) enables the link-level ARQ in rel.go that absorbs them — sequence
// numbers, checksums, dedup, cumulative acks and retransmission with
// exponential backoff — so the libraries above still observe exactly-once
// (possibly reordered) delivery, and a dead peer surfaces as HealthDown
// instead of a silent hang.
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBackpressure is returned by Inject when the destination rail queue is
// full. The caller is expected to retry later, mirroring the nonblocking
// "temporarily unavailable resources" semantics LCI exposes to its users.
var ErrBackpressure = errors.New("fabric: injection queue full")

// Config describes a simulated cluster interconnect.
type Config struct {
	// Nodes is the number of compute nodes (one Device per node).
	Nodes int
	// LatencyNs is the one-way wire latency per packet in nanoseconds.
	LatencyNs int64
	// GbitsPerSec is the per-rail link bandwidth. Zero disables bandwidth
	// serialization (infinitely fast links).
	GbitsPerSec float64
	// Rails is the number of independent delivery rails per (src, dst) pair.
	// Packets on different rails may be delivered out of order. Must be >= 1;
	// zero defaults to 1.
	Rails int
	// MaxInflight bounds the number of queued packets per rail; Inject
	// returns ErrBackpressure beyond it. Zero means unlimited.
	MaxInflight int
	// PacketOverheadBytes is added to every packet's payload size when
	// computing transmission time (headers, CRCs, ...).
	PacketOverheadBytes int
	// SendGapNs is the per-packet sender occupancy (the LogP model's o/g
	// term): the NIC doorbell/descriptor cost that serializes one node's
	// egress across ALL destinations, unlike per-rail bandwidth. This is
	// what makes a flat fan-out O(N) at its root even on an otherwise
	// uncontended network. Zero (the default) disables the model; the
	// collectives scaling sweep enables it to measure fan-out structure in
	// simulated network time rather than host CPU time.
	SendGapNs int64
	// DevicesPerNode replicates the NIC context per node (the "multiple
	// low-level network contexts" of the paper's §7.2 future work). Device
	// i of a node delivers only to device i of the destination. Zero
	// defaults to 1.
	DevicesPerNode int

	// Faults injects seeded transport faults (see FaultConfig). Any active
	// fault implies Reliability.
	Faults FaultConfig
	// Reliability enables the link-level ARQ even without injected faults,
	// to measure its overhead or to get per-peer health tracking.
	Reliability bool
	// RetransmitTimeoutNs is the base retransmission timeout (wall clock);
	// attempt k backs off exponentially from it with ±25% jitter. Zero
	// defaults to 300µs.
	RetransmitTimeoutNs int64
	// RetryBudget is the number of transmission attempts per packet before
	// the link is declared HealthDown. Zero defaults to 16.
	RetryBudget int
	// AckDelayNs is how long a receiver waits for reverse traffic to
	// piggyback an ack before sending a standalone one. Zero defaults
	// to 100µs.
	AckDelayNs int64
}

// DefaultConfig returns a configuration loosely modelled on a single HDR
// InfiniBand rail (as in the SDSC Expanse system of the paper, Table 2).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:               nodes,
		LatencyNs:           1000, // ~1us one-way
		GbitsPerSec:         100,  // HDR 2x50Gbps
		Rails:               1,
		PacketOverheadBytes: 64,
	}
}

// defaultRailSlots is the rail ring size when MaxInflight does not bound it;
// bursts beyond it spill to the rail's FIFO overflow list, so "unlimited"
// injection still works — the ring is the fast path, not a hard cap.
const defaultRailSlots = 256

// maxRailSlots caps the rail ring so a huge MaxInflight configures overflow
// spilling rather than huge slot arrays.
const maxRailSlots = 4096

// Network is a simulated interconnect between Config.Nodes nodes.
type Network struct {
	cfg     Config
	start   time.Time
	railCap int         // rail ring slots (power of two)
	devices [][]*Device // [node][deviceIndex]
	trace   func(cat, label string, arg int64)
}

// pow2ceil rounds n up to the next power of two (minimum 2).
func pow2ceil(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// NewNetwork builds the network and Config.DevicesPerNode devices per node.
// Malformed configurations (negative counts, probabilities outside [0, 1])
// are rejected; zero values select documented defaults.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rails == 0 {
		cfg.Rails = 1
	}
	if cfg.DevicesPerNode == 0 {
		cfg.DevicesPerNode = 1
	}
	if cfg.Faults.Active() {
		cfg.Reliability = true
		if cfg.Faults.SpikeProb > 0 && cfg.Faults.SpikeNs == 0 {
			cfg.Faults.SpikeNs = 50_000
		}
	}
	if cfg.Reliability {
		if cfg.RetransmitTimeoutNs == 0 {
			cfg.RetransmitTimeoutNs = 300_000
		}
		if cfg.RetryBudget == 0 {
			cfg.RetryBudget = 16
		}
		if cfg.AckDelayNs == 0 {
			cfg.AckDelayNs = 100_000
		}
	}
	n := &Network{cfg: cfg, start: time.Now()}
	n.railCap = defaultRailSlots
	if cfg.MaxInflight > 0 {
		n.railCap = pow2ceil(cfg.MaxInflight)
		if n.railCap > maxRailSlots {
			n.railCap = maxRailSlots
		}
	}
	n.devices = make([][]*Device, cfg.Nodes)
	for i := range n.devices {
		n.devices[i] = make([]*Device, cfg.DevicesPerNode)
		for di := range n.devices[i] {
			d := &Device{net: n, node: i, idx: di}
			d.pool = newPacketPool()
			d.readyIdx = newMPMC[uint32](cfg.Nodes * cfg.Rails)
			d.in = make([][]rail, cfg.Nodes)
			for s := range d.in {
				d.in[s] = make([]rail, cfg.Rails)
				for ri := range d.in[s] {
					r := &d.in[s][ri]
					r.owner = d
					r.id = uint32(s*cfg.Rails + ri)
				}
			}
			if cfg.Reliability {
				d.rel = newRelState(d)
			}
			n.devices[i][di] = d
		}
	}
	return n, nil
}

// SetTrace installs an event sink for reliability events (retransmit, ack,
// corrupt-drop, dup-drop, link-down). Call before traffic starts; the hook
// is read without synchronization on hot paths.
func (n *Network) SetTrace(fn func(cat, label string, arg int64)) { n.trace = fn }

// PeerHealth reports the worst directed-link health from any of src's
// devices toward dst. Always HealthHealthy when reliability is off.
func (n *Network) PeerHealth(src, dst int) Health {
	worst := HealthHealthy
	for _, d := range n.devices[src] {
		if h := d.PeerHealth(dst); h > worst {
			worst = h
		}
	}
	return worst
}

// SetLinkDown administratively cuts the directed link src → dst on every
// device (a one-way partition; cut both directions for a full one).
// Requires reliability; a no-op otherwise.
func (n *Network) SetLinkDown(src, dst int) {
	for _, d := range n.devices[src] {
		if d.rel != nil {
			d.rel.setDown(dst)
		}
	}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Device returns the first NIC of the given node.
func (n *Network) Device(node int) *Device { return n.devices[node][0] }

// DeviceN returns device idx of the given node.
func (n *Network) DeviceN(node, idx int) *Device { return n.devices[node][idx] }

// nowNs returns monotonic nanoseconds since network creation.
func (n *Network) nowNs() int64 { return time.Since(n.start).Nanoseconds() }

// xmitNs returns the transmission time for a payload of the given size.
func (n *Network) xmitNs(payload int) int64 {
	if n.cfg.GbitsPerSec <= 0 {
		return 0
	}
	bits := float64(payload+n.cfg.PacketOverheadBytes) * 8
	return int64(bits / n.cfg.GbitsPerSec) // Gbit/s == bit/ns
}

// rail is one FIFO delivery lane of a (src, dst) link. Packets within a rail
// stay in order; distinct rails are independent.
//
// The rail is a bounded power-of-two ring. Producers (the source device's
// Inject and its ARQ) serialize on a short mutex that also orders the wire
// clock (nextFreeNs); the consumer side pops with an atomic CAS and no lock.
// Traffic beyond the ring capacity — ARQ retransmissions and acks, whose
// liveness must not depend on queue headroom, or plain injection when
// MaxInflight is unlimited — spills into the FIFO overflow list and migrates
// back into the ring as slots free up, preserving per-rail order.
type rail struct {
	owner *Device // receiving device; its ready index tracks this rail
	id    uint32  // flat index (src*Rails + rail) in the owner's ready index

	// Producer side, under mu.
	mu         sync.Mutex
	enq        uint64
	nextFreeNs int64      // when the rail's "wire" is free again
	slots      []railSlot // allocated on first enqueue (idle rails cost 3 words)
	mask       uint64
	overflow   []*Packet // FIFO tail beyond ring capacity

	deq    atomic.Uint64
	count  atomic.Int64  // packets queued (ring + overflow)
	ovf    atomic.Int64  // packets in overflow
	ready  atomic.Uint32 // 1 while the rail id is in (or held from) the ready index
	headNs atomic.Int64  // arrival hint of a not-yet-arrived head (0 = unknown)
}

// railSlot is one ring slot. seq is the Vyukov lap counter; arrive mirrors
// the packet's arrival time so the consumer can gate on it atomically
// without claiming the slot.
type railSlot struct {
	seq    atomic.Uint64
	arrive atomic.Int64
	pkt    *Packet
}

// notify publishes the rail to its owner's ready index on the quiescent →
// pending transition. The CAS guarantees each rail id is in the index at
// most once, so the index (sized for every rail) can never overflow.
func (r *rail) notify() {
	if r.ready.CompareAndSwap(0, 1) {
		r.owner.readyIdx.TryPush(r.id)
	}
}

// retire marks the rail quiescent after a consumer drained it, re-arming the
// notify edge. The count recheck closes the race with a producer that
// enqueued between the final empty pop and the flag clear.
func (r *rail) retire() {
	r.headNs.Store(0)
	r.ready.Store(0)
	if r.count.Load() > 0 {
		r.notify()
	}
}

// ringPushLocked appends pkt to the ring, failing when the ring is full.
// Caller holds r.mu and has set pkt.arriveNs.
func (r *rail) ringPushLocked(pkt *Packet) bool {
	pos := r.enq
	slot := &r.slots[pos&r.mask]
	if slot.seq.Load() != pos {
		return false // full: the consumer has not retired this lap yet
	}
	slot.pkt = pkt
	slot.arrive.Store(pkt.arriveNs)
	slot.seq.Store(pos + 1)
	r.enq = pos + 1
	return true
}

// flushOverflowLocked migrates overflow packets into free ring slots,
// preserving FIFO order. Caller holds r.mu.
func (r *rail) flushOverflowLocked() {
	n := 0
	for _, pkt := range r.overflow {
		if !r.ringPushLocked(pkt) {
			break
		}
		n++
	}
	if n > 0 {
		rem := copy(r.overflow, r.overflow[n:])
		for i := rem; i < len(r.overflow); i++ {
			r.overflow[i] = nil
		}
		r.overflow = r.overflow[:rem]
		r.ovf.Add(int64(-n))
	}
}

// tryPop pops the rail's head packet if it has arrived by now. The boolean
// reports "blocked": a head exists but has not arrived yet (the caller
// re-parks the rail; the headNs hint was refreshed).
func (r *rail) tryPop(now int64) (*Packet, bool) {
	for {
		pos := r.deq.Load()
		if r.slots == nil {
			return nil, false // never produced into
		}
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		if seq > pos+1 {
			continue // deq advanced under us; reload
		}
		if seq < pos+1 {
			// Ring empty from this side; overflow may still hold packets
			// (they could not enter the ring while it was full).
			if r.ovf.Load() > 0 {
				r.mu.Lock()
				r.flushOverflowLocked()
				r.mu.Unlock()
				continue
			}
			return nil, false
		}
		arr := slot.arrive.Load()
		if arr > now {
			r.headNs.Store(arr)
			return nil, true
		}
		if r.deq.CompareAndSwap(pos, pos+1) {
			p := slot.pkt
			slot.pkt = nil
			slot.seq.Store(pos + r.mask + 1)
			r.headNs.Store(0)
			r.count.Add(-1)
			return p, false
		}
	}
}

// Stats are cumulative per-device counters. The reliability and fault
// counters stay zero when the corresponding feature is off.
type Stats struct {
	InjectedPackets  uint64
	InjectedBytes    uint64
	DeliveredPackets uint64
	DeliveredBytes   uint64
	Backpressured    uint64

	// Reliability-layer counters.
	Retransmits    uint64 // transmission attempts beyond the first
	AcksSent       uint64 // standalone ack-only packets emitted
	CorruptDropped uint64 // arrivals discarded on checksum mismatch
	DupDropped     uint64 // arrivals discarded as duplicates
	DownDropped    uint64 // injects blackholed because the link is down
	LinksDowned    uint64 // links declared HealthDown

	// Fault-injection counters (sender side).
	FaultDropped    uint64 // transmissions dropped on the wire
	FaultDuplicated uint64 // transmissions delivered twice
	FaultCorrupted  uint64 // transmissions with flipped bits
	LatencySpikes   uint64 // transmissions delayed by a spike
}

// Device is a node's network interface. Injection is thread-safe; polling is
// thread-safe — concurrent pollers claim distinct ready rails, so they
// contend only on the ready index, not on a shared lock.
type Device struct {
	net  *Network
	node int
	idx  int // device index within the node

	// in[src][rail] holds packets heading to this device from src.
	in [][]rail

	// readyIdx holds the ids of rails with queued traffic. Producers push a
	// rail id on its quiescent → pending edge; Poll drains ready rails and
	// re-parks the ones whose head has not arrived yet, so poll cost scales
	// with traffic, not with cluster size.
	readyIdx *mpmc[uint32]

	pool *packetPool // recycled stored packets (see pool.go)

	railRR atomic.Uint64 // round-robin rail selector for injection

	// sendFreeNs is when this device's egress next becomes free under the
	// SendGapNs occupancy model (0 when the model is off).
	sendFreeNs atomic.Int64

	rel *relState // reliability engine; nil when Config.Reliability is off

	injectedPackets  atomic.Uint64
	injectedBytes    atomic.Uint64
	deliveredPackets atomic.Uint64
	deliveredBytes   atomic.Uint64
	backpressured    atomic.Uint64

	retransmits     atomic.Uint64
	acksSent        atomic.Uint64
	corruptDropped  atomic.Uint64
	dupDropped      atomic.Uint64
	downDropped     atomic.Uint64
	linksDowned     atomic.Uint64
	faultDropped    atomic.Uint64
	faultDuplicated atomic.Uint64
	faultCorrupted  atomic.Uint64
	latencySpikes   atomic.Uint64
}

// trace emits a reliability event to the network's trace hook, if any.
func (d *Device) trace(cat, label string, arg int64) {
	if fn := d.net.trace; fn != nil {
		fn(cat, label, arg)
	}
}

// PeerHealth reports this device's directed-link health toward dst.
// Always HealthHealthy when reliability is off.
func (d *Device) PeerHealth(dst int) Health {
	if d.rel == nil || dst < 0 || dst >= len(d.rel.tx) {
		return HealthHealthy
	}
	return d.rel.health(dst)
}

// LinkRTTNs reports the smoothed send→ack round-trip estimate toward dst in
// nanoseconds, measured by the reliability layer (EWMA, α = 1/8). Zero means
// no sample yet — reliability off, no traffic, or acks still in flight.
func (d *Device) LinkRTTNs(dst int) int64 {
	if d.rel == nil {
		return 0
	}
	return d.rel.rttNs(dst)
}

// EgressQueueDepth reports the packets this device has queued toward dst
// that the destination has not yet drained (ring + overflow, all rails).
// A sustained non-zero depth means the peer's poller is falling behind —
// the backpressure signal the adaptive tuning layer reads.
func (d *Device) EgressQueueDepth(dst int) int {
	if dst < 0 || dst >= len(d.net.devices) {
		return 0
	}
	dstDev := d.net.devices[dst][d.idx]
	depth := int64(0)
	for ri := range dstDev.in[d.node] {
		depth += dstDev.in[d.node][ri].count.Load()
	}
	return int(depth)
}

// Node returns the node id of this device.
func (d *Device) Node() int { return d.node }

// Index returns the device index within its node.
func (d *Device) Index() int { return d.idx }

// railByID maps a ready-index id back to its rail.
func (d *Device) railByID(id uint32) *rail {
	rails := len(d.in[0])
	return &d.in[int(id)/rails][int(id)%rails]
}

// Inject transmits a packet from this device to p.Dst. The payload is copied
// into a pooled fabric-owned buffer (the "DMA"), so the caller may reuse its
// buffer immediately — this is what lets the LCI layer return pool packets
// to its freelist as soon as the send is injected.
//
// Inject returns ErrBackpressure when the destination rail is full. With
// reliability on, injection into a HealthDown link succeeds silently (the
// packet is blackholed; upper layers observe the dead peer through health
// queries and delivery timeouts).
func (d *Device) Inject(p Packet) error {
	if p.Dst < 0 || p.Dst >= len(d.net.devices) {
		return fmt.Errorf("fabric: invalid destination node %d", p.Dst)
	}
	p.Src = d.node
	r := d.railFor(p.Dst, p.Rail)

	// The reliable path copies the payload itself, into a recycled
	// retransmission buffer.
	if d.rel != nil {
		return d.rel.inject(&p, r)
	}

	r.mu.Lock()
	if max := d.net.cfg.MaxInflight; max > 0 && int(r.count.Load()) >= max {
		r.mu.Unlock()
		d.backpressured.Add(1)
		return ErrBackpressure
	}
	d.enqueueLocked(r, d.newStored(&p), 0)
	r.mu.Unlock()
	r.notify()

	d.injectedPackets.Add(1)
	d.injectedBytes.Add(uint64(len(p.Data)))
	return nil
}

// InjectBatch injects pkts in order, amortizing the per-rail producer lock
// across runs of consecutive packets to the same destination and rail
// selector (one rail per run — a run of unpinned packets shares one
// round-robin pick, and a rail-major chunk stream forms one run per rail).
// It returns how many packets were injected; on backpressure or an invalid
// destination it stops there, so the caller retries pkts[n:].
func (d *Device) InjectBatch(pkts []Packet) (int, error) {
	buffered := d.rel != nil && d.rel.buffered
	for i := 0; i < len(pkts); {
		dst := pkts[i].Dst
		if dst < 0 || dst >= len(d.net.devices) {
			return i, fmt.Errorf("fabric: invalid destination node %d", dst)
		}
		if buffered {
			// The fault-absorbing ARQ does per-packet window bookkeeping;
			// no run amortization there.
			p := pkts[i]
			p.Src = d.node
			if err := d.rel.inject(&p, d.railFor(dst, p.Rail)); err != nil {
				return i, err
			}
			i++
			continue
		}
		j := i + 1
		for j < len(pkts) && pkts[j].Dst == dst && pkts[j].Rail == pkts[i].Rail {
			j++
		}
		n, err := d.injectRun(pkts[i:j])
		i += n
		if err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}

// injectRun injects a run of same-destination packets under one producer
// lock acquisition. Handles the baseline and lossless-reliability paths
// (InjectBatch routes the buffered ARQ around it).
func (d *Device) injectRun(run []Packet) (int, error) {
	dst := run[0].Dst
	var tl *txLink
	var rx *rxLink
	if d.rel != nil {
		tl = d.rel.tx[dst]
		if tl.downF.Load() {
			d.downDropped.Add(uint64(len(run)))
			return len(run), nil // blackholed: upper layers time out
		}
		rx = d.rel.rx[dst]
	}
	r := d.railFor(dst, run[0].Rail)
	max := d.net.cfg.MaxInflight
	n := 0
	var bytes uint64
	r.mu.Lock()
	for k := range run {
		if max > 0 && int(r.count.Load()) >= max {
			break
		}
		p := &run[k]
		p.Src = d.node
		stored := d.newStored(p)
		if tl != nil {
			stored.relSeq = tl.seqF.Add(1)
			stored.relFlags = flagRel | flagSeq
			stored.relAck = rx.cum.Load()
			rx.ackOwedNs.Store(0) // this transmission carries the ack
		}
		d.enqueueLocked(r, stored, 0)
		n++
		bytes += uint64(len(p.Data))
	}
	r.mu.Unlock()
	if n > 0 {
		r.notify()
		d.injectedPackets.Add(uint64(n))
		d.injectedBytes.Add(bytes)
	}
	if n < len(run) {
		d.backpressured.Add(1)
		return n, ErrBackpressure
	}
	return n, nil
}

// railFor picks the destination rail for one transmission to dst: the
// RailPin-encoded rail when pin > 0 (taken modulo the rail count), the
// round-robin rotation otherwise. Device i talks to device i: replicated
// contexts are independent lanes. The rotation arithmetic stays in uint64
// the whole way: converting the counter to int first (as an earlier
// revision did) goes negative at wraparound and a negative % would index
// out of bounds.
func (d *Device) railFor(dst int, pin int) *rail {
	dstDev := d.net.devices[dst][d.idx]
	railIdx := 0
	if rails := d.net.cfg.Rails; rails > 1 {
		if pin > 0 {
			railIdx = (pin - 1) % rails
		} else {
			railIdx = int(d.railRR.Add(1) % uint64(rails))
		}
	}
	return &dstDev.in[d.node][railIdx]
}

// Rails reports the configured rail count, so layers striping a transfer
// across rails (the chunked rendezvous path) know how wide they can go.
func (d *Device) Rails() int { return d.net.cfg.Rails }

// reserveSendSlot claims the device's next egress slot under the SendGapNs
// occupancy model: the packet starts transmitting no earlier than the
// device's egress is free, and occupies it for g thereafter. Lock-free so
// concurrent sends to different rails (whose mutexes differ) serialize only
// on this one atomic.
func (d *Device) reserveSendSlot(now, g int64) int64 {
	for {
		free := d.sendFreeNs.Load()
		slot := now
		if free > slot {
			slot = free
		}
		if d.sendFreeNs.CompareAndSwap(free, slot+g) {
			return slot
		}
	}
}

// enqueue places pkt on rail r under the latency/bandwidth model, with
// extraNs of additional one-way latency (fault spikes). It never applies
// backpressure — reliability-layer callers pre-check or deliberately bypass
// the cap (ARQ liveness must not depend on queue headroom; the overflow
// list absorbs what the ring cannot).
func (d *Device) enqueue(r *rail, pkt *Packet, extraNs int64) {
	r.mu.Lock()
	d.enqueueLocked(r, pkt, extraNs)
	r.mu.Unlock()
	r.notify()
}

// enqueueLocked is enqueue with r.mu held; the caller runs r.notify() after
// unlocking.
func (d *Device) enqueueLocked(r *rail, pkt *Packet, extraNs int64) {
	now := d.net.nowNs()
	if g := d.net.cfg.SendGapNs; g > 0 {
		now = d.reserveSendSlot(now, g)
	}
	xmit := d.net.xmitNs(len(pkt.Data))
	start := now
	if r.nextFreeNs > start {
		start = r.nextFreeNs
	}
	r.nextFreeNs = start + xmit
	pkt.arriveNs = start + xmit + d.net.cfg.LatencyNs + extraNs
	if r.slots == nil {
		n := d.net.railCap
		r.slots = make([]railSlot, n)
		for i := range r.slots {
			r.slots[i].seq.Store(uint64(i))
		}
		r.mask = uint64(n - 1)
	}
	if r.ovf.Load() > 0 {
		r.flushOverflowLocked()
	}
	if len(r.overflow) > 0 || !r.ringPushLocked(pkt) {
		r.overflow = append(r.overflow, pkt)
		r.ovf.Add(1)
	}
	r.count.Add(1)
}

// Poll returns one arrived packet destined to this device, or nil if none
// has arrived yet. It drains the device's ready index — only rails with
// queued traffic are visited, so an idle or mostly-idle device polls in O(1)
// regardless of cluster size. Rails whose head has not arrived yet re-park
// cheaply behind an atomic arrival hint. With reliability on it first runs
// the time-gated ARQ maintenance (retransmissions, standalone acks) and
// filters arrivals through the reliability layer — corrupt packets,
// duplicates and ack-only packets are consumed (and released) here and
// never surface.
//
// The returned packet is owned by the caller, who must Release it.
func (d *Device) Poll() *Packet {
	if d.rel != nil {
		d.rel.maintain()
	}
	now := d.net.nowNs()
	// Visit each currently-ready rail at most once per call: re-parked
	// rails go behind the entries counted here.
	for budget := d.readyIdx.Len() + 1; budget > 0; budget-- {
		id, ok := d.readyIdx.TryPop()
		if !ok {
			return nil
		}
		r := d.railByID(id)
		if hint := r.headNs.Load(); hint > now {
			d.readyIdx.TryPush(id) // head not arrived: re-park cheaply
			continue
		}
		for {
			p, blocked := r.tryPop(now)
			if p == nil {
				if blocked {
					d.readyIdx.TryPush(id)
				} else {
					r.retire()
				}
				break
			}
			if d.rel != nil && !d.rel.admit(p) {
				p.Release() // consumed by the ARQ; try the same rail again
				continue
			}
			d.readyIdx.TryPush(id) // more arrivals may be queued behind
			d.deliveredPackets.Add(1)
			d.deliveredBytes.Add(uint64(len(p.Data)))
			return p
		}
	}
	return nil
}

// PollInto appends up to max arrived packets to out and returns the extended
// slice. It is the batched form of Poll used by progress engines. Every
// appended packet is owned by the caller (Release each).
func (d *Device) PollInto(out []*Packet, max int) []*Packet {
	for i := 0; i < max; i++ {
		p := d.Poll()
		if p == nil {
			break
		}
		out = append(out, p)
	}
	return out
}

// Pending reports whether any packet is queued for this device, arrived or
// not. Intended for tests and shutdown draining.
func (d *Device) Pending() bool {
	for s := range d.in {
		for ri := range d.in[s] {
			if d.in[s][ri].count.Load() > 0 {
				return true
			}
		}
	}
	return false
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		InjectedPackets:  d.injectedPackets.Load(),
		InjectedBytes:    d.injectedBytes.Load(),
		DeliveredPackets: d.deliveredPackets.Load(),
		DeliveredBytes:   d.deliveredBytes.Load(),
		Backpressured:    d.backpressured.Load(),
		Retransmits:      d.retransmits.Load(),
		AcksSent:         d.acksSent.Load(),
		CorruptDropped:   d.corruptDropped.Load(),
		DupDropped:       d.dupDropped.Load(),
		DownDropped:      d.downDropped.Load(),
		LinksDowned:      d.linksDowned.Load(),
		FaultDropped:     d.faultDropped.Load(),
		FaultDuplicated:  d.faultDuplicated.Load(),
		FaultCorrupted:   d.faultCorrupted.Load(),
		LatencySpikes:    d.latencySpikes.Load(),
	}
}
