// Package fabric simulates the low-level network that the communication
// libraries (internal/mpisim, internal/lci) are built on. It stands in for
// the InfiniBand NIC + verbs/libfabric stack of the paper's testbeds.
//
// The simulation reproduces the properties the layers above actually depend
// on, rather than modelling hardware details:
//
//   - Finite link throughput: each (source, destination, rail) link serializes
//     packet transmission according to a configured bandwidth.
//   - Nonzero latency: a packet only becomes visible to the receiver once its
//     computed arrival time has passed.
//   - Progress-driven reception: nothing is delivered until the receiving
//     library polls its Device. This is what makes "who calls progress"
//     (dedicated thread vs. idle worker threads) a meaningful design axis.
//   - Out-of-order delivery: with Rails > 1 packets between the same pair of
//     nodes may arrive out of injection order, as LCI's transport permits.
//   - Shared receive structures: the per-device RX queues are lock-protected
//     and become real contention points when many threads poll concurrently.
//
// By default delivery is reliable: packets are never dropped or corrupted
// (matching the reliable-connection InfiniBand transport used in the paper).
// Config.Faults injects seeded per-link packet drop, duplication, payload
// corruption and latency spikes; Config.Reliability (implied by active
// faults) enables the link-level ARQ in rel.go that absorbs them — sequence
// numbers, checksums, dedup, cumulative acks and retransmission with
// exponential backoff — so the libraries above still observe exactly-once
// (possibly reordered) delivery, and a dead peer surfaces as HealthDown
// instead of a silent hang.
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBackpressure is returned by Inject when the destination rail queue is
// full. The caller is expected to retry later, mirroring the nonblocking
// "temporarily unavailable resources" semantics LCI exposes to its users.
var ErrBackpressure = errors.New("fabric: injection queue full")

// Config describes a simulated cluster interconnect.
type Config struct {
	// Nodes is the number of compute nodes (one Device per node).
	Nodes int
	// LatencyNs is the one-way wire latency per packet in nanoseconds.
	LatencyNs int64
	// GbitsPerSec is the per-rail link bandwidth. Zero disables bandwidth
	// serialization (infinitely fast links).
	GbitsPerSec float64
	// Rails is the number of independent delivery rails per (src, dst) pair.
	// Packets on different rails may be delivered out of order. Must be >= 1;
	// zero defaults to 1.
	Rails int
	// MaxInflight bounds the number of queued packets per rail; Inject
	// returns ErrBackpressure beyond it. Zero means unlimited.
	MaxInflight int
	// PacketOverheadBytes is added to every packet's payload size when
	// computing transmission time (headers, CRCs, ...).
	PacketOverheadBytes int
	// DevicesPerNode replicates the NIC context per node (the "multiple
	// low-level network contexts" of the paper's §7.2 future work). Device
	// i of a node delivers only to device i of the destination. Zero
	// defaults to 1.
	DevicesPerNode int

	// Faults injects seeded transport faults (see FaultConfig). Any active
	// fault implies Reliability.
	Faults FaultConfig
	// Reliability enables the link-level ARQ even without injected faults,
	// to measure its overhead or to get per-peer health tracking.
	Reliability bool
	// RetransmitTimeoutNs is the base retransmission timeout (wall clock);
	// attempt k backs off exponentially from it with ±25% jitter. Zero
	// defaults to 300µs.
	RetransmitTimeoutNs int64
	// RetryBudget is the number of transmission attempts per packet before
	// the link is declared HealthDown. Zero defaults to 16.
	RetryBudget int
	// AckDelayNs is how long a receiver waits for reverse traffic to
	// piggyback an ack before sending a standalone one. Zero defaults
	// to 100µs.
	AckDelayNs int64
}

// DefaultConfig returns a configuration loosely modelled on a single HDR
// InfiniBand rail (as in the SDSC Expanse system of the paper, Table 2).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:               nodes,
		LatencyNs:           1000, // ~1us one-way
		GbitsPerSec:         100,  // HDR 2x50Gbps
		Rails:               1,
		PacketOverheadBytes: 64,
	}
}

// Network is a simulated interconnect between Config.Nodes nodes.
type Network struct {
	cfg     Config
	start   time.Time
	devices [][]*Device // [node][deviceIndex]
	trace   func(cat, label string, arg int64)
}

// NewNetwork builds the network and Config.DevicesPerNode devices per node.
// Malformed configurations (negative counts, probabilities outside [0, 1])
// are rejected; zero values select documented defaults.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rails == 0 {
		cfg.Rails = 1
	}
	if cfg.DevicesPerNode == 0 {
		cfg.DevicesPerNode = 1
	}
	if cfg.Faults.Active() {
		cfg.Reliability = true
		if cfg.Faults.SpikeProb > 0 && cfg.Faults.SpikeNs == 0 {
			cfg.Faults.SpikeNs = 50_000
		}
	}
	if cfg.Reliability {
		if cfg.RetransmitTimeoutNs == 0 {
			cfg.RetransmitTimeoutNs = 300_000
		}
		if cfg.RetryBudget == 0 {
			cfg.RetryBudget = 16
		}
		if cfg.AckDelayNs == 0 {
			cfg.AckDelayNs = 100_000
		}
	}
	n := &Network{cfg: cfg, start: time.Now()}
	n.devices = make([][]*Device, cfg.Nodes)
	for i := range n.devices {
		n.devices[i] = make([]*Device, cfg.DevicesPerNode)
		for di := range n.devices[i] {
			d := &Device{net: n, node: i, idx: di}
			d.in = make([][]rail, cfg.Nodes)
			for s := range d.in {
				d.in[s] = make([]rail, cfg.Rails)
			}
			if cfg.Reliability {
				d.rel = newRelState(d)
			}
			n.devices[i][di] = d
		}
	}
	return n, nil
}

// SetTrace installs an event sink for reliability events (retransmit, ack,
// corrupt-drop, dup-drop, link-down). Call before traffic starts; the hook
// is read without synchronization on hot paths.
func (n *Network) SetTrace(fn func(cat, label string, arg int64)) { n.trace = fn }

// PeerHealth reports the worst directed-link health from any of src's
// devices toward dst. Always HealthHealthy when reliability is off.
func (n *Network) PeerHealth(src, dst int) Health {
	worst := HealthHealthy
	for _, d := range n.devices[src] {
		if h := d.PeerHealth(dst); h > worst {
			worst = h
		}
	}
	return worst
}

// SetLinkDown administratively cuts the directed link src → dst on every
// device (a one-way partition; cut both directions for a full one).
// Requires reliability; a no-op otherwise.
func (n *Network) SetLinkDown(src, dst int) {
	for _, d := range n.devices[src] {
		if d.rel != nil {
			d.rel.setDown(dst)
		}
	}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Device returns the first NIC of the given node.
func (n *Network) Device(node int) *Device { return n.devices[node][0] }

// DeviceN returns device idx of the given node.
func (n *Network) DeviceN(node, idx int) *Device { return n.devices[node][idx] }

// nowNs returns monotonic nanoseconds since network creation.
func (n *Network) nowNs() int64 { return time.Since(n.start).Nanoseconds() }

// xmitNs returns the transmission time for a payload of the given size.
func (n *Network) xmitNs(payload int) int64 {
	if n.cfg.GbitsPerSec <= 0 {
		return 0
	}
	bits := float64(payload+n.cfg.PacketOverheadBytes) * 8
	return int64(bits / n.cfg.GbitsPerSec) // Gbit/s == bit/ns
}

// rail is one FIFO delivery lane of a (src, dst) link. Packets within a rail
// stay in order; distinct rails are independent.
type rail struct {
	mu         sync.Mutex
	q          []*Packet
	head       int
	nextFreeNs int64 // when the rail's "wire" is free again
}

// Stats are cumulative per-device counters. The reliability and fault
// counters stay zero when the corresponding feature is off.
type Stats struct {
	InjectedPackets  uint64
	InjectedBytes    uint64
	DeliveredPackets uint64
	DeliveredBytes   uint64
	Backpressured    uint64

	// Reliability-layer counters.
	Retransmits    uint64 // transmission attempts beyond the first
	AcksSent       uint64 // standalone ack-only packets emitted
	CorruptDropped uint64 // arrivals discarded on checksum mismatch
	DupDropped     uint64 // arrivals discarded as duplicates
	DownDropped    uint64 // injects blackholed because the link is down
	LinksDowned    uint64 // links declared HealthDown

	// Fault-injection counters (sender side).
	FaultDropped    uint64 // transmissions dropped on the wire
	FaultDuplicated uint64 // transmissions delivered twice
	FaultCorrupted  uint64 // transmissions with flipped bits
	LatencySpikes   uint64 // transmissions delayed by a spike
}

// Device is a node's network interface. Injection is thread-safe; polling is
// thread-safe but serializes on per-rail locks, which is the intended
// contention point.
type Device struct {
	net  *Network
	node int
	idx  int // device index within the node

	// in[src][rail] holds packets heading to this device from src.
	in [][]rail

	railRR atomic.Uint64 // round-robin rail selector for injection
	pollRR atomic.Uint64 // rotating poll start position

	rel *relState // reliability engine; nil when Config.Reliability is off

	injectedPackets  atomic.Uint64
	injectedBytes    atomic.Uint64
	deliveredPackets atomic.Uint64
	deliveredBytes   atomic.Uint64
	backpressured    atomic.Uint64

	retransmits     atomic.Uint64
	acksSent        atomic.Uint64
	corruptDropped  atomic.Uint64
	dupDropped      atomic.Uint64
	downDropped     atomic.Uint64
	linksDowned     atomic.Uint64
	faultDropped    atomic.Uint64
	faultDuplicated atomic.Uint64
	faultCorrupted  atomic.Uint64
	latencySpikes   atomic.Uint64
}

// trace emits a reliability event to the network's trace hook, if any.
func (d *Device) trace(cat, label string, arg int64) {
	if fn := d.net.trace; fn != nil {
		fn(cat, label, arg)
	}
}

// PeerHealth reports this device's directed-link health toward dst.
// Always HealthHealthy when reliability is off.
func (d *Device) PeerHealth(dst int) Health {
	if d.rel == nil || dst < 0 || dst >= len(d.rel.tx) {
		return HealthHealthy
	}
	return d.rel.health(dst)
}

// Node returns the node id of this device.
func (d *Device) Node() int { return d.node }

// Index returns the device index within its node.
func (d *Device) Index() int { return d.idx }

// Inject transmits a packet from this device to p.Dst. The payload is copied
// into a fabric-owned buffer (the "DMA"), so the caller may reuse its buffer
// immediately — this is what lets the LCI layer return pool packets to its
// freelist as soon as the send is injected.
//
// Inject returns ErrBackpressure when the destination rail is full. With
// reliability on, injection into a HealthDown link succeeds silently (the
// packet is blackholed; upper layers observe the dead peer through health
// queries and delivery timeouts).
func (d *Device) Inject(p Packet) error {
	if p.Dst < 0 || p.Dst >= len(d.net.devices) {
		return fmt.Errorf("fabric: invalid destination node %d", p.Dst)
	}
	p.Src = d.node
	r := d.railFor(p.Dst)

	// The reliable path copies the payload itself, into a recycled
	// retransmission buffer.
	if d.rel != nil {
		return d.rel.inject(&p, r)
	}

	// Copy payload into a fabric-owned buffer.
	stored := &Packet{Src: p.Src, Dst: p.Dst, Op: p.Op, T0: p.T0, T1: p.T1, T2: p.T2}
	if len(p.Data) > 0 {
		stored.Data = make([]byte, len(p.Data))
		copy(stored.Data, p.Data)
	}

	r.mu.Lock()
	if d.net.cfg.MaxInflight > 0 && r.queued() >= d.net.cfg.MaxInflight {
		r.mu.Unlock()
		d.backpressured.Add(1)
		return ErrBackpressure
	}
	d.enqueueLocked(r, stored, 0)
	r.mu.Unlock()

	d.injectedPackets.Add(1)
	d.injectedBytes.Add(uint64(len(stored.Data)))
	return nil
}

// railFor picks the (round-robin) destination rail for one transmission to
// dst. Device i talks to device i: replicated contexts are independent lanes.
func (d *Device) railFor(dst int) *rail {
	dstDev := d.net.devices[dst][d.idx]
	railIdx := 0
	if d.net.cfg.Rails > 1 {
		railIdx = int(d.railRR.Add(1) % uint64(d.net.cfg.Rails))
	}
	return &dstDev.in[d.node][railIdx]
}

// enqueue places pkt on rail r under the latency/bandwidth model, with
// extraNs of additional one-way latency (fault spikes). It never applies
// backpressure — reliability-layer callers pre-check or deliberately bypass
// the cap (ARQ liveness must not depend on queue headroom).
func (d *Device) enqueue(r *rail, pkt *Packet, extraNs int64) {
	r.mu.Lock()
	d.enqueueLocked(r, pkt, extraNs)
	r.mu.Unlock()
}

// enqueueLocked is enqueue with r.mu held.
func (d *Device) enqueueLocked(r *rail, pkt *Packet, extraNs int64) {
	now := d.net.nowNs()
	xmit := d.net.xmitNs(len(pkt.Data))
	start := now
	if r.nextFreeNs > start {
		start = r.nextFreeNs
	}
	r.nextFreeNs = start + xmit
	pkt.arriveNs = start + xmit + d.net.cfg.LatencyNs + extraNs
	r.q = append(r.q, pkt)
}

// Poll returns one arrived packet destined to this device, or nil if none has
// arrived yet. It scans source links starting at a rotating position so no
// source is starved. With reliability on it first runs the time-gated ARQ
// maintenance (retransmissions, standalone acks) and filters arrivals
// through the reliability layer — corrupt packets, duplicates and ack-only
// packets are consumed here and never surface.
func (d *Device) Poll() *Packet {
	if d.rel != nil {
		d.rel.maintain()
	}
	now := d.net.nowNs()
	nLinks := len(d.in) * len(d.in[0])
	startAt := int(d.pollRR.Add(1))
	for i := 0; i < nLinks; i++ {
		idx := (startAt + i) % nLinks
		r := &d.in[idx/len(d.in[0])][idx%len(d.in[0])]
		for {
			p := r.tryPop(now)
			if p == nil {
				break
			}
			if d.rel != nil && !d.rel.admit(p) {
				continue // consumed by the ARQ; try the same rail again
			}
			d.deliveredPackets.Add(1)
			d.deliveredBytes.Add(uint64(len(p.Data)))
			return p
		}
	}
	return nil
}

// PollInto appends up to max arrived packets to out and returns the extended
// slice. It is the batched form of Poll used by progress engines.
func (d *Device) PollInto(out []*Packet, max int) []*Packet {
	for i := 0; i < max; i++ {
		p := d.Poll()
		if p == nil {
			break
		}
		out = append(out, p)
	}
	return out
}

// Pending reports whether any packet is queued for this device, arrived or
// not. Intended for tests and shutdown draining.
func (d *Device) Pending() bool {
	for s := range d.in {
		for r := range d.in[s] {
			q := &d.in[s][r]
			q.mu.Lock()
			n := len(q.q) - q.head
			q.mu.Unlock()
			if n > 0 {
				return true
			}
		}
	}
	return false
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		InjectedPackets:  d.injectedPackets.Load(),
		InjectedBytes:    d.injectedBytes.Load(),
		DeliveredPackets: d.deliveredPackets.Load(),
		DeliveredBytes:   d.deliveredBytes.Load(),
		Backpressured:    d.backpressured.Load(),
		Retransmits:      d.retransmits.Load(),
		AcksSent:         d.acksSent.Load(),
		CorruptDropped:   d.corruptDropped.Load(),
		DupDropped:       d.dupDropped.Load(),
		DownDropped:      d.downDropped.Load(),
		LinksDowned:      d.linksDowned.Load(),
		FaultDropped:     d.faultDropped.Load(),
		FaultDuplicated:  d.faultDuplicated.Load(),
		FaultCorrupted:   d.faultCorrupted.Load(),
		LatencySpikes:    d.latencySpikes.Load(),
	}
}

// queued reports packets currently on the rail. Caller holds r.mu.
func (r *rail) queued() int { return len(r.q) - r.head }

// queuedNow is queued with internal locking (reliability-layer pre-check).
func (r *rail) queuedNow() int {
	r.mu.Lock()
	n := len(r.q) - r.head
	r.mu.Unlock()
	return n
}

// tryPop pops the rail's head packet if it has arrived by now.
func (r *rail) tryPop(now int64) *Packet {
	if !r.mu.TryLock() {
		// Another poller holds this rail; skip rather than block, in the
		// spirit of LCI's fine-grained try-locks. Callers scan other rails.
		return nil
	}
	defer r.mu.Unlock()
	if r.head >= len(r.q) {
		if r.head > 0 {
			r.q = r.q[:0]
			r.head = 0
		}
		return nil
	}
	p := r.q[r.head]
	if p.arriveNs > now {
		return nil
	}
	r.q[r.head] = nil
	r.head++
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
	}
	return p
}
