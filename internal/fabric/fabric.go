// Package fabric simulates the low-level network that the communication
// libraries (internal/mpisim, internal/lci) are built on. It stands in for
// the InfiniBand NIC + verbs/libfabric stack of the paper's testbeds.
//
// The simulation reproduces the properties the layers above actually depend
// on, rather than modelling hardware details:
//
//   - Finite link throughput: each (source, destination, rail) link serializes
//     packet transmission according to a configured bandwidth.
//   - Nonzero latency: a packet only becomes visible to the receiver once its
//     computed arrival time has passed.
//   - Progress-driven reception: nothing is delivered until the receiving
//     library polls its Device. This is what makes "who calls progress"
//     (dedicated thread vs. idle worker threads) a meaningful design axis.
//   - Out-of-order delivery: with Rails > 1 packets between the same pair of
//     nodes may arrive out of injection order, as LCI's transport permits.
//   - Shared receive structures: the per-device RX queues are lock-protected
//     and become real contention points when many threads poll concurrently.
//
// Delivery is reliable: packets are never dropped or corrupted (matching the
// reliable-connection InfiniBand transport used in the paper). Tests may use
// the fault hooks to exercise library backpressure paths.
package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBackpressure is returned by Inject when the destination rail queue is
// full. The caller is expected to retry later, mirroring the nonblocking
// "temporarily unavailable resources" semantics LCI exposes to its users.
var ErrBackpressure = errors.New("fabric: injection queue full")

// Config describes a simulated cluster interconnect.
type Config struct {
	// Nodes is the number of compute nodes (one Device per node).
	Nodes int
	// LatencyNs is the one-way wire latency per packet in nanoseconds.
	LatencyNs int64
	// GbitsPerSec is the per-rail link bandwidth. Zero disables bandwidth
	// serialization (infinitely fast links).
	GbitsPerSec float64
	// Rails is the number of independent delivery rails per (src, dst) pair.
	// Packets on different rails may be delivered out of order. Must be >= 1;
	// zero defaults to 1.
	Rails int
	// MaxInflight bounds the number of queued packets per rail; Inject
	// returns ErrBackpressure beyond it. Zero means unlimited.
	MaxInflight int
	// PacketOverheadBytes is added to every packet's payload size when
	// computing transmission time (headers, CRCs, ...).
	PacketOverheadBytes int
	// DevicesPerNode replicates the NIC context per node (the "multiple
	// low-level network contexts" of the paper's §7.2 future work). Device
	// i of a node delivers only to device i of the destination. Zero
	// defaults to 1.
	DevicesPerNode int
}

// DefaultConfig returns a configuration loosely modelled on a single HDR
// InfiniBand rail (as in the SDSC Expanse system of the paper, Table 2).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:               nodes,
		LatencyNs:           1000, // ~1us one-way
		GbitsPerSec:         100,  // HDR 2x50Gbps
		Rails:               1,
		PacketOverheadBytes: 64,
	}
}

// Network is a simulated interconnect between Config.Nodes nodes.
type Network struct {
	cfg     Config
	start   time.Time
	devices [][]*Device // [node][deviceIndex]
}

// NewNetwork builds the network and Config.DevicesPerNode devices per node.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("fabric: Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.Rails <= 0 {
		cfg.Rails = 1
	}
	if cfg.DevicesPerNode <= 0 {
		cfg.DevicesPerNode = 1
	}
	n := &Network{cfg: cfg, start: time.Now()}
	n.devices = make([][]*Device, cfg.Nodes)
	for i := range n.devices {
		n.devices[i] = make([]*Device, cfg.DevicesPerNode)
		for di := range n.devices[i] {
			d := &Device{net: n, node: i, idx: di}
			d.in = make([][]rail, cfg.Nodes)
			for s := range d.in {
				d.in[s] = make([]rail, cfg.Rails)
			}
			n.devices[i][di] = d
		}
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Device returns the first NIC of the given node.
func (n *Network) Device(node int) *Device { return n.devices[node][0] }

// DeviceN returns device idx of the given node.
func (n *Network) DeviceN(node, idx int) *Device { return n.devices[node][idx] }

// nowNs returns monotonic nanoseconds since network creation.
func (n *Network) nowNs() int64 { return time.Since(n.start).Nanoseconds() }

// xmitNs returns the transmission time for a payload of the given size.
func (n *Network) xmitNs(payload int) int64 {
	if n.cfg.GbitsPerSec <= 0 {
		return 0
	}
	bits := float64(payload+n.cfg.PacketOverheadBytes) * 8
	return int64(bits / n.cfg.GbitsPerSec) // Gbit/s == bit/ns
}

// rail is one FIFO delivery lane of a (src, dst) link. Packets within a rail
// stay in order; distinct rails are independent.
type rail struct {
	mu         sync.Mutex
	q          []*Packet
	head       int
	nextFreeNs int64 // when the rail's "wire" is free again
}

// Stats are cumulative per-device counters.
type Stats struct {
	InjectedPackets  uint64
	InjectedBytes    uint64
	DeliveredPackets uint64
	DeliveredBytes   uint64
	Backpressured    uint64
}

// Device is a node's network interface. Injection is thread-safe; polling is
// thread-safe but serializes on per-rail locks, which is the intended
// contention point.
type Device struct {
	net  *Network
	node int
	idx  int // device index within the node

	// in[src][rail] holds packets heading to this device from src.
	in [][]rail

	railRR atomic.Uint64 // round-robin rail selector for injection
	pollRR atomic.Uint64 // rotating poll start position

	injectedPackets  atomic.Uint64
	injectedBytes    atomic.Uint64
	deliveredPackets atomic.Uint64
	deliveredBytes   atomic.Uint64
	backpressured    atomic.Uint64
}

// Node returns the node id of this device.
func (d *Device) Node() int { return d.node }

// Index returns the device index within its node.
func (d *Device) Index() int { return d.idx }

// Inject transmits a packet from this device to p.Dst. The payload is copied
// into a fabric-owned buffer (the "DMA"), so the caller may reuse its buffer
// immediately — this is what lets the LCI layer return pool packets to its
// freelist as soon as the send is injected.
//
// Inject returns ErrBackpressure when the destination rail is full.
func (d *Device) Inject(p Packet) error {
	if p.Dst < 0 || p.Dst >= len(d.net.devices) {
		return fmt.Errorf("fabric: invalid destination node %d", p.Dst)
	}
	p.Src = d.node
	// Device i talks to device i: replicated contexts are independent lanes.
	dst := d.net.devices[p.Dst][d.idx]

	railIdx := 0
	if d.net.cfg.Rails > 1 {
		railIdx = int(d.railRR.Add(1) % uint64(d.net.cfg.Rails))
	}
	r := &dst.in[d.node][railIdx]

	// Copy payload into a fabric-owned buffer.
	stored := &Packet{Src: p.Src, Dst: p.Dst, Op: p.Op, T0: p.T0, T1: p.T1, T2: p.T2}
	if len(p.Data) > 0 {
		stored.Data = make([]byte, len(p.Data))
		copy(stored.Data, p.Data)
	}

	now := d.net.nowNs()
	xmit := d.net.xmitNs(len(p.Data))

	r.mu.Lock()
	if d.net.cfg.MaxInflight > 0 && len(r.q)-r.head >= d.net.cfg.MaxInflight {
		r.mu.Unlock()
		d.backpressured.Add(1)
		return ErrBackpressure
	}
	start := now
	if r.nextFreeNs > start {
		start = r.nextFreeNs
	}
	r.nextFreeNs = start + xmit
	stored.arriveNs = start + xmit + d.net.cfg.LatencyNs
	r.q = append(r.q, stored)
	r.mu.Unlock()

	d.injectedPackets.Add(1)
	d.injectedBytes.Add(uint64(len(p.Data)))
	return nil
}

// Poll returns one arrived packet destined to this device, or nil if none has
// arrived yet. It scans source links starting at a rotating position so no
// source is starved.
func (d *Device) Poll() *Packet {
	now := d.net.nowNs()
	nLinks := len(d.in) * len(d.in[0])
	startAt := int(d.pollRR.Add(1))
	for i := 0; i < nLinks; i++ {
		idx := (startAt + i) % nLinks
		r := &d.in[idx/len(d.in[0])][idx%len(d.in[0])]
		if p := r.tryPop(now); p != nil {
			d.deliveredPackets.Add(1)
			d.deliveredBytes.Add(uint64(len(p.Data)))
			return p
		}
	}
	return nil
}

// PollInto appends up to max arrived packets to out and returns the extended
// slice. It is the batched form of Poll used by progress engines.
func (d *Device) PollInto(out []*Packet, max int) []*Packet {
	for i := 0; i < max; i++ {
		p := d.Poll()
		if p == nil {
			break
		}
		out = append(out, p)
	}
	return out
}

// Pending reports whether any packet is queued for this device, arrived or
// not. Intended for tests and shutdown draining.
func (d *Device) Pending() bool {
	for s := range d.in {
		for r := range d.in[s] {
			q := &d.in[s][r]
			q.mu.Lock()
			n := len(q.q) - q.head
			q.mu.Unlock()
			if n > 0 {
				return true
			}
		}
	}
	return false
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		InjectedPackets:  d.injectedPackets.Load(),
		InjectedBytes:    d.injectedBytes.Load(),
		DeliveredPackets: d.deliveredPackets.Load(),
		DeliveredBytes:   d.deliveredBytes.Load(),
		Backpressured:    d.backpressured.Load(),
	}
}

// tryPop pops the rail's head packet if it has arrived by now.
func (r *rail) tryPop(now int64) *Packet {
	if !r.mu.TryLock() {
		// Another poller holds this rail; skip rather than block, in the
		// spirit of LCI's fine-grained try-locks. Callers scan other rails.
		return nil
	}
	defer r.mu.Unlock()
	if r.head >= len(r.q) {
		if r.head > 0 {
			r.q = r.q[:0]
			r.head = 0
		}
		return nil
	}
	p := r.q[r.head]
	if p.arriveNs > now {
		return nil
	}
	r.q[r.head] = nil
	r.head++
	if r.head == len(r.q) {
		r.q = r.q[:0]
		r.head = 0
	}
	return p
}
