package fabric

import "sync/atomic"

// The packet pool removes the per-message make([]byte) + Packet allocation
// from the fabric datapath. Every stored packet the fabric creates — the
// "DMA" copy made by Inject, ARQ transmission clones, standalone acks —
// is drawn from the injecting device's pool and returns to it through
// Packet.Release once the consumer is done. In steady state the
// inject → poll → release cycle recycles the same buffers and performs
// zero allocations (enforced by TestInjectPollReleaseZeroAllocs).
//
// Ownership protocol (see DESIGN.md §8):
//
//   - Inject(p) copies p into a pooled packet; the caller keeps owning p
//     and its Data and may reuse both immediately.
//   - Poll transfers ownership of the returned *Packet to the caller, who
//     must call Release exactly once when finished with the packet AND its
//     Data. Holding either past Release is a use-after-free.
//   - DetachData hands the payload buffer to the caller permanently (the
//     zero-copy dynamic-put path); the packet itself is still Released.
//   - Packets the fabric consumes internally (acks, duplicates, corrupt
//     arrivals) are released by the fabric; upper layers never see them.
//
// Releasing is a performance protocol, not a liveness requirement: a packet
// that is never released is simply collected by the GC and the pool
// allocates a replacement. Releasing twice panics.

const (
	// poolFreeCap bounds recycled packets kept per device; releases beyond
	// it fall to the GC (bounded idle memory).
	poolFreeCap = 1024
	// poolInitialPayloadCap is the payload capacity of a freshly allocated
	// pooled packet. Large enough for the short-message immediate word and
	// typical eager headers; append grows it on demand and the grown
	// capacity is what gets recycled.
	poolInitialPayloadCap = 64
	// maxRecycledPayload drops oversized payload buffers at release so one
	// rendezvous transfer cannot pin megabytes in the freelist forever.
	maxRecycledPayload = 64 << 10
)

// packetPool is a per-device freelist of stored packets.
type packetPool struct {
	free *mpmc[*Packet]

	gets   atomic.Uint64 // packets taken from the pool (hit or miss)
	puts   atomic.Uint64 // packets released back (recycled or dropped)
	allocs atomic.Uint64 // pool misses: fresh heap allocations
	drops  atomic.Uint64 // releases that found the freelist full
}

func newPacketPool() *packetPool {
	return &packetPool{free: newMPMC[*Packet](poolFreeCap)}
}

// PoolStats is a snapshot of a device's packet-pool counters. In a quiescent
// network where every consumer released its packets, Gets == Puts.
type PoolStats struct {
	Gets   uint64 // packets handed out by the pool
	Puts   uint64 // packets released back
	Allocs uint64 // pool misses (fresh allocations)
	Drops  uint64 // releases dropped to the GC (freelist full)
}

// PoolStats returns a snapshot of the device's packet-pool counters.
func (d *Device) PoolStats() PoolStats {
	return PoolStats{
		Gets:   d.pool.gets.Load(),
		Puts:   d.pool.puts.Load(),
		Allocs: d.pool.allocs.Load(),
		Drops:  d.pool.drops.Load(),
	}
}

// getPacket takes a recycled packet from the device pool (or allocates one
// on a miss). The returned packet has refs == 1, zeroed reliability framing
// and a zero-length Data slice with whatever capacity it retired with.
func (d *Device) getPacket() *Packet {
	pp := d.pool
	pp.gets.Add(1)
	p, ok := pp.free.TryPop()
	if !ok {
		pp.allocs.Add(1)
		p = &Packet{Data: make([]byte, 0, poolInitialPayloadCap)}
	}
	p.owner = d
	atomic.StoreInt32(&p.refs, 1)
	p.Op, p.T0, p.T1, p.T2 = 0, 0, 0, 0
	p.Rail = 0
	p.Borrow = false
	p.relSeq, p.relAck, p.relFlags, p.sum = 0, 0, 0, 0
	p.arriveNs = 0
	return p
}

// newStored copies the caller's packet template into a pooled stored packet
// (the Inject "DMA" copy). Zero allocations once the recycled payload
// capacity covers the payload size. A Borrow template skips the copy and
// references the caller's payload directly (see Packet.Borrow); Release
// then drops the reference instead of recycling foreign memory into the
// pool.
func (d *Device) newStored(p *Packet) *Packet {
	s := d.getPacket()
	s.Src, s.Dst, s.Op = p.Src, p.Dst, p.Op
	s.T0, s.T1, s.T2 = p.T0, p.T1, p.T2
	if p.Borrow {
		s.Borrow = true
		s.Data = p.Data
		return s
	}
	s.Data = append(s.Data[:0], p.Data...)
	return s
}

// Retain adds a reference to a pooled packet: Release must then be called
// once per holder. A no-op for packets the pool does not manage.
func (p *Packet) Retain() {
	if p.owner != nil {
		atomic.AddInt32(&p.refs, 1)
	}
}

// Release drops one reference; the last release returns the packet (and its
// payload buffer) to the owning device's pool. Releasing more times than
// Retain+Poll granted references panics. Safe to call on packets the pool
// does not manage (no-op), so consumers can release unconditionally.
func (p *Packet) Release() {
	if p.owner == nil {
		return
	}
	n := atomic.AddInt32(&p.refs, -1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("fabric: packet double-release")
	}
	d := p.owner
	pp := d.pool
	pp.puts.Add(1)
	if p.Borrow {
		p.Data = nil // borrowed payload is the injector's memory, never pooled
		p.Borrow = false
	} else if cap(p.Data) > maxRecycledPayload {
		p.Data = nil
	} else {
		p.Data = p.Data[:0]
	}
	if !pp.free.TryPush(p) {
		pp.drops.Add(1)
		p.owner = nil // freelist full: let the GC have it
	}
}

// DetachData transfers ownership of the payload buffer to the caller: the
// pool will not recycle it, so the caller may hold it indefinitely (the
// zero-copy handoff of the dynamic-put path). The packet itself must still
// be Released.
func (p *Packet) DetachData() []byte {
	b := p.Data
	p.Data = nil
	return b
}
