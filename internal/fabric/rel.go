package fabric

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"

	"hpxgo/internal/wire"
)

// The reliability layer is a per-device ARQ (automatic repeat request)
// engine, modelled on what a reliable-connection NIC transport does in
// hardware. It sits entirely below the packet interface: the communication
// libraries above (mpisim, lci) keep their lossless-fabric assumptions, and
// faults injected by FaultConfig are absorbed here.
//
//   - Every data packet on a directed (src, dst) link carries a
//     monotonically increasing sequence number and a checksum over header
//     and payload.
//   - The receiver discards corrupt packets (checksum mismatch) and
//     duplicates (sequence already seen), tracks the cumulative contiguous
//     prefix, and acknowledges it — piggybacked on reverse traffic, or as a
//     standalone ack packet once AckDelayNs of idle time passes.
//   - The sender keeps a pristine copy of every unacked packet and
//     retransmits from its progress loop (Poll) with exponential backoff and
//     jitter. A packet that exhausts Config.RetryBudget transmission
//     attempts declares the link HealthDown: unacked state is dropped and
//     subsequent sends are blackholed, so the layers above observe a dead
//     peer instead of a wedged progress engine.
//
// Delivery through the ARQ is exactly-once but not ordered: rails still
// reorder, and retransmissions reorder further. That matches the guarantees
// the fabric documented before (lci tolerates reordering natively; mpisim
// restores order with its own per-peer sequence numbers).
//
// When reliability is enabled without fault injection, the fabric is
// lossless by construction — nothing can drop, corrupt or duplicate a queued
// packet — so the sender elides the retransmission buffer: packets carry the
// same sequence/ack framing (the wire protocol is identical, and dedup,
// acks, health and SetLinkDown all behave the same), but no pristine copy is
// retained and the retransmit scan never runs. This is the analogue of
// hardware-offloaded reliable delivery: the guarantee is free when the
// transport cannot actually fail, and the benchmark-visible cost of
// "reliability on, faults off" stays within measurement noise of the
// baseline fabric.

// relFlags bits.
const (
	flagRel uint8 = 1 << 0 // reliability framing present: sum and relAck valid
	flagSeq uint8 = 1 << 1 // relSeq valid (a data packet, subject to dedup)
)

// opAck marks fabric-internal standalone ack packets. The value is never
// seen by upper layers (ack-only packets are consumed in Poll).
const opAck uint8 = 0xFF

// degradedAfter is the number of retransmissions since the last ack
// progress beyond which a link reports HealthDegraded.
const degradedAfter = 3

// backoffCapShift caps the exponential retransmission backoff at
// RetransmitTimeoutNs << backoffCapShift.
const backoffCapShift = 6

// relPending is one unacked packet on a tx link. The pristine stored copy is
// embedded by value, so an unacked packet costs one allocation, and acked
// entries are recycled through the link's free list (the payload buffer keeps
// its capacity), keeping the steady-state allocation rate of the reliable
// path equal to the baseline fabric's.
type relPending struct {
	pkt      Packet // pristine stored copy; every transmission sends a clone
	attempts int    // transmission attempts so far (including the first)
	dueNs    int64  // when the next retransmission is due
	sentNs   int64  // first transmission time (RTT sampling)
	next     *relPending
}

// txLink is the sender side of one directed link: sequence numbers, the
// unacked window and the fault stream. The buffered (fault-absorbing) ARQ
// keeps everything under mu; the lossless fast path touches only the three
// atomics below, so the per-message inject never contends with the poller's
// ack processing.
type txLink struct {
	mu              sync.Mutex
	rng             *rand.Rand
	nextSeq         uint64
	maxAcked        uint64
	unacked         map[uint64]*relPending
	free            *relPending // recycled acked entries
	nextDue         int64       // earliest dueNs in the window (may be stale-low)
	down            bool
	retransSinceAck int
	degraded        bool // health hysteresis state; see noteRetransmitLocked

	// Lossless fast-path state (rs.buffered == false); mu is not taken.
	seqF  atomic.Uint64 // sequence counter
	ackF  atomic.Uint64 // highest cumulative ack seen
	downF atomic.Bool   // SetLinkDown blackhole flag

	// RTT sampling. rttEwma is the smoothed send→ack round trip in ns
	// (0 = no sample yet), written under mu on the buffered path and by the
	// sample claimant on the lossless path. The lossless path cannot stamp
	// every packet (no per-packet state is retained), so it keeps at most
	// one outstanding (sampleSeq, sampleNs) probe per link; whoever observes
	// the ack passing sampleSeq claims it with a CAS and folds the sample in.
	rttEwma   atomic.Int64
	sampleSeq atomic.Uint64
	sampleNs  atomic.Int64
}

// observeRTT folds one round-trip sample into the link's EWMA (α = 1/8,
// standard smoothed-RTT gain). Only one writer runs at a time (tl.mu on the
// buffered path, the CAS claimant on the lossless path), so load+store is
// race-free against the lock-free readers.
func (tl *txLink) observeRTT(sampleNs int64) {
	old := tl.rttEwma.Load()
	if old == 0 {
		tl.rttEwma.Store(sampleNs)
		return
	}
	tl.rttEwma.Store(old + (sampleNs-old)/8)
}

// noteRetransmitLocked records one retransmission for health accounting:
// reaching degradedAfter retransmissions since effective ack progress enters
// the Degraded state. Caller holds tl.mu.
func (tl *txLink) noteRetransmitLocked() {
	tl.retransSinceAck++
	if tl.retransSinceAck >= degradedAfter {
		tl.degraded = true
	}
}

// noteAckProgressLocked records cumulative-ack progress for health
// accounting. The counter decays (halves) rather than resetting: under
// steady partial loss acks and retransmissions interleave, and a hard reset
// made health flap healthy↔degraded on every ack. Degraded exits only when
// the counter decays to zero — a run of ack progress without fresh
// retransmissions — giving the enter/exit hysteresis band [0, degradedAfter).
// Caller holds tl.mu.
func (tl *txLink) noteAckProgressLocked() {
	tl.retransSinceAck >>= 1
	if tl.retransSinceAck == 0 {
		tl.degraded = false
	}
}

// rxLink is the receiver side of one directed link: dedup state and the ack
// timer. cum and ackOwedNs are atomics so the sender path can piggyback the
// latest cumulative ack without taking the rx lock (no lock nesting).
type rxLink struct {
	mu        sync.Mutex
	cum       atomic.Uint64 // contiguous prefix [1, cum] delivered
	ooo       map[uint64]struct{}
	ackOwedNs atomic.Int64 // when an unacknowledged arrival was first seen (0 = none)
}

// relState is one device's reliability engine.
type relState struct {
	dev      *Device
	buffered bool      // faults can occur: retain payloads for retransmission
	tx       []*txLink // indexed by destination node
	rx       []*rxLink // indexed by source node

	dueNs     atomic.Int64
	granuleNs int64 // minimum spacing between maintenance passes
}

func newRelState(d *Device) *relState {
	cfg := &d.net.cfg
	rs := &relState{dev: d, buffered: cfg.Faults.Active()}
	rs.tx = make([]*txLink, cfg.Nodes)
	rs.rx = make([]*rxLink, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		rs.tx[n] = &txLink{
			rng:     linkRNG(cfg.Faults.Seed, d.node, n, d.idx),
			unacked: make(map[uint64]*relPending),
		}
		rs.rx[n] = &rxLink{ooo: make(map[uint64]struct{})}
	}
	g := cfg.RetransmitTimeoutNs / 4
	if cfg.AckDelayNs/4 < g {
		g = cfg.AckDelayNs / 4
	}
	if g < 20_000 {
		g = 20_000
	}
	rs.granuleNs = g
	rs.dueNs.Store(d.net.nowNs() + g)
	return rs
}

// packetChecksum hashes the packet metadata and payload. The checksum field
// itself is excluded (it is zero while hashing a fresh clone).
func packetChecksum(p *Packet) uint32 {
	var meta [58]byte
	meta[0] = p.Op
	meta[1] = p.relFlags
	binary.LittleEndian.PutUint64(meta[2:], uint64(p.Src))
	binary.LittleEndian.PutUint64(meta[10:], uint64(p.Dst))
	binary.LittleEndian.PutUint64(meta[18:], p.T0)
	binary.LittleEndian.PutUint64(meta[26:], p.T1)
	binary.LittleEndian.PutUint64(meta[34:], p.T2)
	binary.LittleEndian.PutUint64(meta[42:], p.relSeq)
	binary.LittleEndian.PutUint64(meta[50:], p.relAck)
	return wire.Checksum32Add(wire.Checksum32(meta[:]), p.Data)
}

// clonePacket copies a pristine stored packet into a pooled packet for one
// transmission attempt. The payload is copied too: the delivered clone is
// handed to the upper layer (which may mutate or detach it) and corruption
// injection must never poison the retransmission copy.
func (d *Device) clonePacket(p *Packet) *Packet {
	w := d.getPacket()
	w.Src, w.Dst, w.Op = p.Src, p.Dst, p.Op
	w.T0, w.T1, w.T2 = p.T0, p.T1, p.T2
	w.relSeq, w.relFlags = p.relSeq, p.relFlags
	w.Data = append(w.Data[:0], p.Data...)
	return w
}

// corruptPacket flips one random bit after the checksum was computed, so
// the receiver's verification fails.
func corruptPacket(p *Packet, rng *rand.Rand) {
	if len(p.Data) > 0 {
		p.Data[rng.Intn(len(p.Data))] ^= 1 << uint(rng.Intn(8))
		return
	}
	p.T1 ^= 1 << uint(rng.Intn(64))
}

// lowerDue moves the next maintenance time earlier (never later).
func (rs *relState) lowerDue(ns int64) {
	for {
		cur := rs.dueNs.Load()
		if ns >= cur {
			return
		}
		if rs.dueNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// inject copies the caller's packet into a (recycled) pristine buffer,
// assigns it a sequence number, records it in the unacked window and performs
// the first transmission. Caller has already validated the destination.
func (rs *relState) inject(p *Packet, r *rail) error {
	d := rs.dev
	tl := rs.tx[p.Dst]
	if !rs.buffered {
		// Lossless fast path: full wire framing, no retransmission buffer
		// and no lock (see the package comment). One payload copy, exactly
		// as the baseline fabric.
		if tl.downF.Load() {
			d.downDropped.Add(1)
			return nil // blackholed: the peer is dead, upper layers time out
		}
		if max := d.net.cfg.MaxInflight; max > 0 && int(r.count.Load()) >= max {
			d.backpressured.Add(1)
			return ErrBackpressure
		}
		stored := d.newStored(p)
		stored.relSeq = tl.seqF.Add(1)
		stored.relFlags = flagRel | flagSeq
		stored.relAck = rs.rx[p.Dst].cum.Load()
		rs.rx[p.Dst].ackOwedNs.Store(0) // this transmission carries the ack
		if tl.sampleSeq.Load() == 0 && tl.sampleSeq.CompareAndSwap(0, stored.relSeq) {
			// No probe outstanding: this packet becomes the RTT probe. The
			// timestamp lands after the CAS, but only the admit-side claimant
			// reads it, and it cannot win its CAS before the ack for this
			// sequence exists — i.e. after this store is long visible.
			tl.sampleNs.Store(d.net.nowNs())
		}
		d.enqueue(r, stored, 0)
		d.injectedPackets.Add(1)
		d.injectedBytes.Add(uint64(len(p.Data)))
		return nil
	}
	tl.mu.Lock()
	if tl.down {
		tl.mu.Unlock()
		d.downDropped.Add(1)
		return nil // blackholed: the peer is dead, upper layers time out
	}
	if max := d.net.cfg.MaxInflight; max > 0 && int(r.count.Load()) >= max {
		tl.mu.Unlock()
		d.backpressured.Add(1)
		return ErrBackpressure
	}
	pend := tl.free
	if pend != nil {
		tl.free = pend.next
		pend.next = nil
		pend.attempts = 0
	} else {
		pend = &relPending{}
	}
	w := &pend.pkt
	w.Src, w.Dst, w.Op = p.Src, p.Dst, p.Op
	w.T0, w.T1, w.T2 = p.T0, p.T1, p.T2
	if cap(w.Data) >= len(p.Data) {
		w.Data = w.Data[:len(p.Data)]
	} else {
		w.Data = make([]byte, len(p.Data))
	}
	copy(w.Data, p.Data)
	tl.nextSeq++
	w.relSeq = tl.nextSeq
	w.relFlags = flagRel | flagSeq
	tl.unacked[w.relSeq] = pend
	if len(tl.unacked) == 1 {
		tl.nextDue = 0 // forget the stale minimum of the drained window
	}
	rs.transmitLocked(tl, pend, r)
	tl.mu.Unlock()
	d.injectedPackets.Add(1)
	d.injectedBytes.Add(uint64(len(p.Data)))
	return nil
}

// transmitLocked performs one transmission attempt of pend: clone the
// pristine packet, piggyback the latest cumulative ack for the reverse
// direction, roll the fault dice and enqueue. Caller holds tl.mu.
func (rs *relState) transmitLocked(tl *txLink, pend *relPending, r *rail) {
	d := rs.dev
	cfg := &d.net.cfg
	pend.attempts++
	now := d.net.nowNs()
	if pend.attempts == 1 {
		pend.sentNs = now
	}
	shift := uint(pend.attempts - 1)
	if shift > backoffCapShift {
		shift = backoffCapShift
	}
	backoff := cfg.RetransmitTimeoutNs << shift
	backoff += tl.rng.Int63n(backoff/2+1) - backoff/4 // ±25% jitter
	pend.dueNs = now + backoff
	if tl.nextDue == 0 || pend.dueNs < tl.nextDue {
		tl.nextDue = pend.dueNs
	}
	rs.lowerDue(pend.dueNs)

	copies := 1
	var extraNs int64
	corrupt := false
	if f := &cfg.Faults; f.Active() {
		if f.DropProb > 0 && tl.rng.Float64() < f.DropProb {
			d.faultDropped.Add(1)
			return // lost on the wire; the retransmit timer recovers it
		}
		if f.DupProb > 0 && tl.rng.Float64() < f.DupProb {
			copies = 2
			d.faultDuplicated.Add(1)
		}
		if f.CorruptProb > 0 && tl.rng.Float64() < f.CorruptProb {
			corrupt = true
			d.faultCorrupted.Add(1)
		}
		if f.SpikeProb > 0 && tl.rng.Float64() < f.SpikeProb {
			extraNs = f.SpikeNs
			d.latencySpikes.Add(1)
		}
	}
	for i := 0; i < copies; i++ {
		w := d.clonePacket(&pend.pkt)
		w.relAck = rs.rx[pend.pkt.Dst].cum.Load()
		rs.rx[pend.pkt.Dst].ackOwedNs.Store(0) // this transmission carries the ack
		// The checksum only defends against injected corruption; when none is
		// configured, skip the per-byte hashing on both ends (faults-off ARQ
		// must cost near nothing).
		if cfg.Faults.CorruptProb > 0 {
			w.sum = packetChecksum(w)
		}
		if corrupt && i == 0 {
			corruptPacket(w, tl.rng)
		}
		// Retransmissions and duplicates bypass the backpressure cap: ARQ
		// liveness must not depend on queue headroom.
		d.enqueue(r, w, extraNs)
	}
}

// admit filters one popped packet through the reliability layer. It returns
// true when the packet should be delivered to the upper layer, false when
// the ARQ consumed it (corrupt, duplicate, or ack-only).
func (rs *relState) admit(p *Packet) bool {
	d := rs.dev
	if p.relFlags&flagRel == 0 {
		return true // unframed packet (reliability toggled off-network); deliver
	}
	if d.net.cfg.Faults.CorruptProb > 0 {
		sum := p.sum
		p.sum = 0
		if packetChecksum(p) != sum {
			d.corruptDropped.Add(1)
			d.trace("fabric", "corrupt-drop", int64(p.Src))
			return false // cannot trust any field, not even relAck
		}
		p.sum = sum
	}

	// Process the piggybacked cumulative ack for the reverse direction.
	tl := rs.tx[p.Src]
	if !rs.buffered {
		for {
			cur := tl.ackF.Load()
			if p.relAck <= cur || tl.ackF.CompareAndSwap(cur, p.relAck) {
				break
			}
		}
		// Complete the outstanding RTT probe once the cumulative ack passes
		// it; the CAS elects a single claimant among concurrent pollers.
		if s := tl.sampleSeq.Load(); s != 0 && p.relAck >= s && tl.sampleSeq.CompareAndSwap(s, 0) {
			tl.observeRTT(d.net.nowNs() - tl.sampleNs.Load())
		}
	} else {
		tl.mu.Lock()
		if p.relAck > tl.maxAcked && !tl.down {
			if len(tl.unacked) > 0 {
				now := d.net.nowNs()
				for s := tl.maxAcked + 1; s <= p.relAck; s++ {
					if pend, ok := tl.unacked[s]; ok {
						if pend.attempts == 1 {
							// Karn's rule: only never-retransmitted packets
							// yield RTT samples (a retransmitted ack is
							// ambiguous about which attempt it answers).
							tl.observeRTT(now - pend.sentNs)
						}
						delete(tl.unacked, s)
						pend.next = tl.free
						tl.free = pend
					}
				}
			}
			tl.maxAcked = p.relAck
			tl.noteAckProgressLocked()
		}
		tl.mu.Unlock()
	}

	if p.relFlags&flagSeq == 0 {
		return false // ack-only packet, fully consumed
	}

	rxl := rs.rx[p.Src]
	rxl.mu.Lock()
	seq := p.relSeq
	cum := rxl.cum.Load()
	fresh := false
	if seq > cum {
		if _, dup := rxl.ooo[seq]; !dup {
			fresh = true
			if seq == cum+1 {
				cum++
				for {
					if _, ok := rxl.ooo[cum+1]; !ok {
						break
					}
					delete(rxl.ooo, cum+1)
					cum++
				}
				rxl.cum.Store(cum)
			} else {
				rxl.ooo[seq] = struct{}{}
			}
		}
	}
	// Fresh or duplicate, the sender needs an ack (a duplicate usually means
	// our previous ack was lost).
	if rxl.ackOwedNs.Load() == 0 {
		now := d.net.nowNs()
		rxl.ackOwedNs.Store(now)
		rs.lowerDue(now + d.net.cfg.AckDelayNs)
	}
	rxl.mu.Unlock()
	if !fresh {
		d.dupDropped.Add(1)
		d.trace("fabric", "dup-drop", int64(p.Src))
		return false
	}
	return true
}

// maintain runs the time-gated sender-side duties from Poll: retransmit due
// packets, declare links down, and send standalone acks for idle links. A
// CAS on dueNs elects one poller per pass, keeping the hot path at a single
// atomic load when nothing is due.
func (rs *relState) maintain() {
	d := rs.dev
	now := d.net.nowNs()
	due := rs.dueNs.Load()
	if now < due {
		return
	}
	entry := now + rs.granuleNs
	if !rs.dueNs.CompareAndSwap(due, entry) {
		return
	}
	cfg := &d.net.cfg
	next := now + int64(1_000_000_000) // idle horizon; lowered by real work

	for dst, tl := range rs.tx {
		if !rs.buffered {
			break // nothing retained, nothing to retransmit
		}
		tl.mu.Lock()
		if tl.down || len(tl.unacked) == 0 {
			tl.mu.Unlock()
			continue
		}
		if tl.nextDue > now {
			// The earliest possible retransmission is still in the future:
			// skip the window scan (the common case under healthy acking —
			// this keeps maintenance O(1) rather than O(window) per pass).
			if tl.nextDue < next {
				next = tl.nextDue
			}
			tl.mu.Unlock()
			continue
		}
		linkNext := int64(1) << 62
		for seq, pend := range tl.unacked {
			if pend.dueNs > now {
				if pend.dueNs < linkNext {
					linkNext = pend.dueNs
				}
				continue
			}
			if pend.attempts >= cfg.RetryBudget {
				// Retry budget exhausted: the peer (or the path to it) is
				// gone. Drop the window and blackhole the link.
				tl.down = true
				tl.unacked = make(map[uint64]*relPending)
				d.linksDowned.Add(1)
				d.trace("fabric", "link-down", int64(dst))
				break
			}
			tl.noteRetransmitLocked()
			d.retransmits.Add(1)
			d.trace("fabric", "retransmit", int64(seq))
			rs.transmitLocked(tl, pend, d.railFor(dst, 0))
			if pend.dueNs < linkNext {
				linkNext = pend.dueNs
			}
		}
		if !tl.down {
			tl.nextDue = linkNext
			if linkNext < next {
				next = linkNext
			}
		}
		tl.mu.Unlock()
	}

	for src, rxl := range rs.rx {
		owed := rxl.ackOwedNs.Load()
		if owed == 0 {
			continue
		}
		if now-owed < cfg.AckDelayNs {
			if t := owed + cfg.AckDelayNs; t < next {
				next = t
			}
			continue
		}
		rxl.ackOwedNs.Store(0)
		rs.sendAck(src)
	}

	if next > entry {
		// Nothing due before the horizon: push the next pass out (an inject
		// or arrival lowers it again via lowerDue).
		rs.dueNs.CompareAndSwap(entry, next)
	} else {
		rs.lowerDue(next)
	}
}

// sendAck emits one standalone ack-only packet to dst, subject to the same
// drop/spike faults as data (a lost ack is recovered by the sender's
// retransmission provoking a fresh duplicate ack).
func (rs *relState) sendAck(dst int) {
	d := rs.dev
	tl := rs.tx[dst]
	var extraNs int64
	if !rs.buffered {
		if tl.downF.Load() {
			return
		}
	} else {
		tl.mu.Lock()
		defer tl.mu.Unlock()
		if tl.down {
			return
		}
		if f := &d.net.cfg.Faults; f.Active() {
			if f.DropProb > 0 && tl.rng.Float64() < f.DropProb {
				d.faultDropped.Add(1)
				return
			}
			if f.SpikeProb > 0 && tl.rng.Float64() < f.SpikeProb {
				extraNs = f.SpikeNs
				d.latencySpikes.Add(1)
			}
		}
	}
	w := d.getPacket()
	w.Src, w.Dst, w.Op = d.node, dst, opAck
	w.relFlags = flagRel
	w.relAck = rs.rx[dst].cum.Load()
	if d.net.cfg.Faults.CorruptProb > 0 {
		w.sum = packetChecksum(w)
	}
	d.enqueue(d.railFor(dst, 0), w, extraNs)
	d.acksSent.Add(1)
	d.trace("fabric", "ack", int64(dst))
}

// setDown administratively cuts the directed link to dst (test hook and
// partition simulation).
func (rs *relState) setDown(dst int) {
	tl := rs.tx[dst]
	if !rs.buffered {
		if tl.downF.CompareAndSwap(false, true) {
			rs.dev.linksDowned.Add(1)
		}
		return
	}
	tl.mu.Lock()
	if !tl.down {
		tl.down = true
		tl.unacked = make(map[uint64]*relPending)
		tl.maxAcked = tl.nextSeq
		rs.dev.linksDowned.Add(1)
	}
	tl.mu.Unlock()
}

// health reports the directed link's health toward dst.
func (rs *relState) health(dst int) Health {
	tl := rs.tx[dst]
	if !rs.buffered {
		// A lossless link cannot degrade; only SetLinkDown kills it.
		if tl.downF.Load() {
			return HealthDown
		}
		return HealthHealthy
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	switch {
	case tl.down:
		return HealthDown
	case tl.degraded:
		return HealthDegraded
	default:
		return HealthHealthy
	}
}

// rttNs reports the smoothed ack round-trip estimate toward dst
// (0 = no sample yet).
func (rs *relState) rttNs(dst int) int64 {
	if dst < 0 || dst >= len(rs.tx) {
		return 0
	}
	return rs.tx[dst].rttEwma.Load()
}

// unackedTo reports the unacked window size toward dst (tests).
func (rs *relState) unackedTo(dst int) int {
	tl := rs.tx[dst]
	if !rs.buffered {
		// The lossless fast path retains no packets; the window is the
		// contiguous gap between what was sent and what was acked.
		if tl.downF.Load() {
			return 0
		}
		return int(tl.seqF.Load() - tl.ackF.Load())
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.unacked)
}
