package fabric

import (
	"testing"
	"time"
)

// TestHealthHysteresisUnit drives the txLink health accounting directly
// through the same methods the ARQ uses and checks the enter/exit
// hysteresis: Degraded enters at degradedAfter retransmissions since
// effective ack progress, survives interleaved ack progress under steady
// partial loss (the decay halves the counter instead of resetting it), and
// exits only after a clean run of acks with no fresh retransmissions.
func TestHealthHysteresisUnit(t *testing.T) {
	tl := &txLink{}
	health := func() bool { return tl.degraded }

	// Clean link: acks never degrade.
	for i := 0; i < 10; i++ {
		tl.noteAckProgressLocked()
	}
	if health() {
		t.Fatal("clean link reports degraded")
	}

	// Enter: degradedAfter consecutive retransmissions.
	for i := 0; i < degradedAfter; i++ {
		tl.noteRetransmitLocked()
	}
	if !health() {
		t.Fatalf("link not degraded after %d retransmissions", degradedAfter)
	}

	// Steady partial loss: retransmissions and acks interleave. The old
	// reset-on-ack logic flipped back to healthy on every ack; the decay
	// must hold the link in Degraded throughout.
	for round := 0; round < 20; round++ {
		tl.noteRetransmitLocked()
		tl.noteRetransmitLocked()
		tl.noteAckProgressLocked()
		if !health() {
			t.Fatalf("health flapped to healthy at round %d (counter=%d)", round, tl.retransSinceAck)
		}
	}

	// Recovery: ack progress with no fresh retransmissions decays the
	// counter to zero and exits Degraded within a bounded number of acks.
	for i := 0; i < 8 && health(); i++ {
		tl.noteAckProgressLocked()
	}
	if health() {
		t.Fatal("link never recovered to healthy after loss stopped")
	}
}

// TestHealthNoFlappingUnderSteadyLoss runs real traffic through the ARQ
// under seeded steady drop faults and counts health transitions observed at
// every poll. With the pre-hysteresis logic (reset retransSinceAck on any
// ack) the link oscillated healthy↔degraded continuously; with the decay it
// must settle: bounded transitions over the whole run.
func TestHealthNoFlappingUnderSteadyLoss(t *testing.T) {
	n := mustNet(t, Config{
		Nodes:               2,
		Faults:              FaultConfig{DropProb: 0.35, Seed: 11},
		RetransmitTimeoutNs: 50_000,
		AckDelayNs:          25_000,
		RetryBudget:         1 << 20, // never down the link
	})
	a, b := n.Device(0), n.Device(1)

	const total = 400
	transitions := 0
	prev := a.PeerHealth(1)
	sent, recvd := 0, 0
	deadline := time.Now().Add(30 * time.Second)
	for recvd < total {
		if time.Now().After(deadline) {
			t.Fatalf("delivered only %d/%d before deadline", recvd, total)
		}
		if sent < total {
			if err := a.Inject(Packet{Dst: 1, T0: uint64(sent), Data: []byte("x")}); err == nil {
				sent++
			}
		}
		if p := b.Poll(); p != nil {
			recvd++
			p.Release()
		}
		a.Poll()
		if h := a.PeerHealth(1); h != prev {
			transitions++
			prev = h
		}
	}
	if a.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions under 35% drop; test is vacuous")
	}
	// Entering Degraded once and recovering once is legitimate; a few more
	// edges can occur around the loss-rate boundary. Flapping per-ack would
	// produce hundreds.
	if transitions > 8 {
		t.Fatalf("health flapped: %d transitions over %d messages", transitions, total)
	}
}

// TestLinkRTTBuffered: the buffered ARQ path measures send→ack RTT from
// never-retransmitted packets; the EWMA lands in LinkRTTNs and roughly
// reflects the configured one-way latency (RTT >= 2×LatencyNs minus ack
// coalescing slack).
func TestLinkRTTBuffered(t *testing.T) {
	n := mustNet(t, Config{
		Nodes:               2,
		LatencyNs:           200_000,
		Faults:              FaultConfig{DropProb: 0.0001, Seed: 3}, // buffered path, nearly lossless
		RetransmitTimeoutNs: 50_000_000,
		AckDelayNs:          100_000,
	})
	a, b := n.Device(0), n.Device(1)
	if got := a.LinkRTTNs(1); got != 0 {
		t.Fatalf("RTT before traffic = %d, want 0", got)
	}
	for i := 0; i < 20; i++ {
		if err := a.Inject(Packet{Dst: 1, T0: uint64(i), Data: []byte("rtt")}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.LinkRTTNs(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no RTT sample after acked traffic")
		}
		if p := b.Poll(); p != nil {
			p.Release()
		}
		a.Poll()
	}
	if rtt := a.LinkRTTNs(1); rtt < 2*200_000 {
		t.Fatalf("RTT %dns below the physical round trip (400000ns)", rtt)
	}
}

// TestLinkRTTLossless: the lossless fast path keeps one outstanding probe
// per link and still produces an RTT estimate without retaining packets.
func TestLinkRTTLossless(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, LatencyNs: 150_000, Reliability: true, AckDelayNs: 50_000})
	a, b := n.Device(0), n.Device(1)
	for i := 0; i < 10; i++ {
		if err := a.Inject(Packet{Dst: 1, T0: uint64(i), Data: []byte("rtt")}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.LinkRTTNs(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no RTT sample on the lossless path")
		}
		if p := b.Poll(); p != nil {
			p.Release()
		}
		a.Poll()
	}
	if rtt := a.LinkRTTNs(1); rtt < 2*150_000 {
		t.Fatalf("RTT %dns below the physical round trip (300000ns)", rtt)
	}
}

// TestEgressQueueDepth: queued-but-undrained packets are visible to the
// sender as egress depth, and draining returns it to zero.
func TestEgressQueueDepth(t *testing.T) {
	n := mustNet(t, Config{Nodes: 2, LatencyNs: 100})
	a, b := n.Device(0), n.Device(1)
	if d := a.EgressQueueDepth(1); d != 0 {
		t.Fatalf("idle depth = %d", d)
	}
	const k = 7
	for i := 0; i < k; i++ {
		if err := a.Inject(Packet{Dst: 1, T0: uint64(i), Data: []byte("q")}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	if d := a.EgressQueueDepth(1); d != k {
		t.Fatalf("depth after %d injects = %d", k, d)
	}
	deadline := time.Now().Add(5 * time.Second)
	drained := 0
	for drained < k {
		if time.Now().After(deadline) {
			t.Fatalf("drained only %d/%d", drained, k)
		}
		if p := b.Poll(); p != nil {
			drained++
			p.Release()
		}
	}
	if d := a.EgressQueueDepth(1); d != 0 {
		t.Fatalf("depth after drain = %d", d)
	}
}
