package fabric

import "testing"

func benchNet(b *testing.B, cfg Config) *Network {
	b.Helper()
	cfg.Nodes = 2
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func BenchmarkInjectPoll8B(b *testing.B) {
	n := benchNet(b, Config{})
	src, dst := n.Device(0), n.Device(1)
	payload := make([]byte, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := src.Inject(Packet{Dst: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		for dst.Poll() == nil {
		}
	}
}

func BenchmarkInjectPoll16K(b *testing.B) {
	n := benchNet(b, Config{})
	src, dst := n.Device(0), n.Device(1)
	payload := make([]byte, 16*1024)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if err := src.Inject(Packet{Dst: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		for dst.Poll() == nil {
		}
	}
}

func BenchmarkPollEmpty(b *testing.B) {
	n := benchNet(b, Config{Rails: 2})
	dst := n.Device(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if dst.Poll() != nil {
			b.Fatal("unexpected packet")
		}
	}
}
