package fabric

import (
	"fmt"
	"testing"
)

func benchNet(b *testing.B, cfg Config) *Network {
	b.Helper()
	cfg.Nodes = 2
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func BenchmarkInjectPoll8B(b *testing.B) {
	n := benchNet(b, Config{})
	src, dst := n.Device(0), n.Device(1)
	payload := make([]byte, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := src.Inject(Packet{Dst: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		var p *Packet
		for p == nil {
			p = dst.Poll()
		}
		p.Release()
	}
}

func BenchmarkInjectPoll16K(b *testing.B) {
	n := benchNet(b, Config{})
	src, dst := n.Device(0), n.Device(1)
	payload := make([]byte, 16*1024)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := src.Inject(Packet{Dst: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		var p *Packet
		for p == nil {
			p = dst.Poll()
		}
		p.Release()
	}
}

func BenchmarkPollEmpty(b *testing.B) {
	n := benchNet(b, Config{Rails: 2})
	dst := n.Device(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if dst.Poll() != nil {
			b.Fatal("unexpected packet")
		}
	}
}

// BenchmarkPollManyNodes measures the per-poll cost of a device receiving
// from ONE active peer while the cluster grows around it. Poll cost must
// depend on traffic (rails with arrivals), not on cluster size.
func BenchmarkPollManyNodes(b *testing.B) {
	for _, nodes := range []int{2, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			n, err := NewNetwork(Config{Nodes: nodes})
			if err != nil {
				b.Fatal(err)
			}
			src, dst := n.Device(1), n.Device(0)
			payload := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := src.Inject(Packet{Dst: 0, Data: payload}); err != nil {
					b.Fatal(err)
				}
				var p *Packet
				for p == nil {
					p = dst.Poll()
				}
				p.Release()
			}
		})
	}
}

// BenchmarkPollEmptyManyNodes isolates the quiescent-poll cost: a device
// with no traffic at all, polled in a growing cluster. This is the pure
// "scan all links" overhead the ready index removes.
func BenchmarkPollEmptyManyNodes(b *testing.B) {
	for _, nodes := range []int{2, 16, 64} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			n, err := NewNetwork(Config{Nodes: nodes})
			if err != nil {
				b.Fatal(err)
			}
			dst := n.Device(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dst.Poll() != nil {
					b.Fatal("unexpected packet")
				}
			}
		})
	}
}
