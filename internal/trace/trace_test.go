package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	tr := New(8)
	tr.Emit("a", "b", 1)
	if tr.Total() != 0 || len(tr.Dump()) != 0 {
		t.Fatal("disabled tracer recorded events")
	}
	if tr.Enabled() {
		t.Fatal("fresh tracer enabled")
	}
}

func TestEmitAndDumpOrdered(t *testing.T) {
	tr := New(16)
	tr.Enable(true)
	for i := 0; i < 5; i++ {
		tr.Emit("cat", "ev", int64(i))
	}
	evs := tr.Dump()
	if len(evs) != 5 || tr.Total() != 5 {
		t.Fatalf("dump %d events, total %d", len(evs), tr.Total())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
	if evs[0].Cat != "cat" || evs[0].Label != "ev" {
		t.Fatalf("event %+v", evs[0])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(4)
	tr.Enable(true)
	for i := 0; i < 10; i++ {
		tr.Emit("c", "e", int64(i))
	}
	evs := tr.Dump()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	// The oldest retained event must be one of the most recent four.
	for _, e := range evs {
		if e.Arg < 6 {
			t.Fatalf("stale event %d retained", e.Arg)
		}
	}
}

// TestDumpWraparoundEmissionOrder is the regression test for the Dump
// re-sort bug: the old implementation sorted the ring copy by At with a
// non-stable sort, so events sharing a timestamp (the clock is far coarser
// than the emit rate) could come back out of emission order. Dump must
// reconstruct order from the ring cursor instead — equal timestamps are
// forced here to make any sort-based shuffle observable.
func TestDumpWraparoundEmissionOrder(t *testing.T) {
	tr := New(4)
	tr.Enable(true)
	for i := 0; i < 6; i++ { // wraps: args 2..5 retained, oldest at next
		tr.Emit("c", "e", int64(i))
	}
	// Collapse all timestamps so ordering cannot come from At.
	tr.mu.Lock()
	for i := range tr.ring {
		tr.ring[i].At = 12345
	}
	tr.mu.Unlock()
	evs := tr.Dump()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, e := range evs {
		if want := int64(i + 2); e.Arg != want {
			t.Fatalf("event %d has arg %d, want %d (emission order lost)", i, e.Arg, want)
		}
	}
	// Partially filled rings must come back in emission order too.
	part := New(8)
	part.Enable(true)
	for i := 0; i < 3; i++ {
		part.Emit("c", "e", int64(i))
	}
	for i, e := range part.Dump() {
		if e.Arg != int64(i) {
			t.Fatalf("partial ring event %d has arg %d", i, e.Arg)
		}
	}
}

func TestStringRender(t *testing.T) {
	tr := New(4)
	tr.Enable(true)
	tr.Emit("parcel", "send", 42)
	s := tr.String()
	if !strings.Contains(s, "parcel") || !strings.Contains(s, "send") || !strings.Contains(s, "42") {
		t.Fatalf("render: %q", s)
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New(1024)
	tr.Enable(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit("c", "e", int64(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 1600 {
		t.Fatalf("total = %d", tr.Total())
	}
	if len(tr.Dump()) != 1024 {
		t.Fatalf("retained %d", len(tr.Dump()))
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(0)
	tr.Enable(true)
	tr.Emit("a", "b", 0)
	if len(tr.Dump()) != 1 {
		t.Fatal("default-capacity tracer broken")
	}
}
