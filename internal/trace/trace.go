// Package trace provides a lightweight bounded event tracer for the
// runtime: a fixed-capacity ring of timestamped events that is cheap enough
// to leave compiled in (a disabled tracer costs one atomic load per call
// site) and small enough to dump into a bug report. It is the observability
// companion to the counter-based Stats reports.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	At    time.Duration // since tracer creation
	Cat   string        // category, e.g. "parcel", "action"
	Label string        // event name, e.g. "send"
	Arg   int64         // free-form argument (size, id, ...)
}

// Tracer records events into a bounded ring. All methods are safe for
// concurrent use.
type Tracer struct {
	start   time.Time
	enabled atomic.Bool

	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// New creates a disabled tracer with the given ring capacity (default 4096).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{start: time.Now(), ring: make([]Event, 0, capacity)}
}

// Enable turns recording on or off.
func (t *Tracer) Enable(on bool) { t.enabled.Store(on) }

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Emit records an event (no-op while disabled).
func (t *Tracer) Emit(cat, label string, arg int64) {
	if !t.enabled.Load() {
		return
	}
	e := Event{At: time.Since(t.start), Cat: cat, Label: label, Arg: arg}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Total returns the number of events ever emitted (including overwritten).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dump returns the retained events in emission order. The order is
// reconstructed from the ring structure itself — `next` marks the oldest
// retained slot once the ring has wrapped — rather than by re-sorting on
// timestamps, which would shuffle same-timestamp events (the clock is much
// coarser than the emit rate) under a non-stable sort.
func (t *Tracer) Dump() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		// Not yet wrapped: the ring is already chronological.
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// String renders the retained events, one per line.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, e := range t.Dump() {
		fmt.Fprintf(&b, "%12.3fus %-10s %-16s %d\n", float64(e.At.Nanoseconds())/1e3, e.Cat, e.Label, e.Arg)
	}
	return b.String()
}
