package parcel

import (
	"sync"
	"testing"

	"hpxgo/internal/serialization"
)

// captureSend records sent messages and lets the test control when OnSent
// fires (i.e. when the "connection" completes).
type captureSend struct {
	mu   sync.Mutex
	msgs []*serialization.Message
}

func (c *captureSend) send(dst int, m *serialization.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *captureSend) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *captureSend) completeAll() {
	c.mu.Lock()
	msgs := c.msgs
	c.msgs = nil
	c.mu.Unlock()
	for _, m := range msgs {
		m.Done()
	}
}

func parcelTo(dst int, payload string) *serialization.Parcel {
	return &serialization.Parcel{Dest: dst, Action: 1, Args: [][]byte{[]byte(payload)}}
}

func TestImmediateBypassesQueue(t *testing.T) {
	cs := &captureSend{}
	l := NewLayer(2, Config{Immediate: true}, cs.send)
	for i := 0; i < 5; i++ {
		l.Put(parcelTo(1, "x"))
	}
	if cs.count() != 5 {
		t.Fatalf("immediate mode sent %d messages, want 5 (one per parcel)", cs.count())
	}
	st := l.Stats()
	if st.ParcelsSent != 5 || st.MessagesSent != 5 || st.AggregatedSends != 0 {
		t.Fatalf("stats %+v", st)
	}
	if l.QueuedParcels(1) != 0 {
		t.Fatal("immediate mode must not queue")
	}
}

func TestDefaultModeSendsAndCompletes(t *testing.T) {
	cs := &captureSend{}
	l := NewLayer(2, Config{}, cs.send)
	l.Put(parcelTo(1, "hello"))
	if cs.count() != 1 {
		t.Fatalf("sent %d messages, want 1", cs.count())
	}
	ps, err := serialization.Decode(cs.msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || string(ps[0].Args[0]) != "hello" {
		t.Fatal("parcel corrupted through the layer")
	}
	cs.completeAll()
}

func TestAggregationWhenConnectionBusy(t *testing.T) {
	cs := &captureSend{}
	// One connection only: while it is in flight, further parcels queue and
	// later drain as one aggregated message.
	l := NewLayer(2, Config{MaxConnections: 1}, cs.send)
	l.Put(parcelTo(1, "first"))
	if cs.count() != 1 {
		t.Fatal("first parcel should send immediately")
	}
	for i := 0; i < 4; i++ {
		l.Put(parcelTo(1, "queued"))
	}
	if cs.count() != 1 {
		t.Fatalf("parcels leaked past the exhausted connection cache: %d msgs", cs.count())
	}
	if l.QueuedParcels(1) != 4 {
		t.Fatalf("queued = %d, want 4", l.QueuedParcels(1))
	}
	cs.completeAll() // completing the first send must drain the queue
	if cs.count() != 1 {
		t.Fatalf("drain after completion sent %d messages, want 1", cs.count())
	}
	ps, err := serialization.Decode(cs.msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("aggregated message carries %d parcels, want 4", len(ps))
	}
	st := l.Stats()
	if st.AggregatedSends != 1 {
		t.Fatalf("AggregatedSends = %d, want 1", st.AggregatedSends)
	}
	if st.CacheExhausted == 0 {
		t.Fatal("CacheExhausted should have counted")
	}
	cs.completeAll()
}

func TestConnectionsReused(t *testing.T) {
	cs := &captureSend{}
	l := NewLayer(2, Config{MaxConnections: 1}, cs.send)
	for i := 0; i < 10; i++ {
		l.Put(parcelTo(1, "p"))
		cs.completeAll()
	}
	st := l.Stats()
	if st.MessagesSent != 10 {
		t.Fatalf("MessagesSent = %d, want 10", st.MessagesSent)
	}
	// With sequential completion the single cached connection suffices;
	// the cache was only exhausted if sends overlapped (they did not).
	if st.CacheExhausted != 0 {
		t.Fatalf("CacheExhausted = %d, want 0", st.CacheExhausted)
	}
}

func TestZeroCopyThresholdApplied(t *testing.T) {
	cs := &captureSend{}
	l := NewLayer(2, Config{ZeroCopyThreshold: 64, Immediate: true}, cs.send)
	if l.ZeroCopyThreshold() != 64 {
		t.Fatalf("threshold = %d", l.ZeroCopyThreshold())
	}
	big := make([]byte, 64)
	l.Put(&serialization.Parcel{Dest: 0, Args: [][]byte{big}})
	if len(cs.msgs[0].ZeroCopy) != 1 {
		t.Fatal("argument at threshold should be zero-copy")
	}
}

func TestConcurrentPutsAllDelivered(t *testing.T) {
	cs := &captureSend{}
	l := NewLayer(2, Config{MaxConnections: 2}, cs.send)
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	done := make(chan struct{})
	// Completer goroutine: keeps finishing in-flight sends so connections
	// recycle while producers hammer the queue.
	go func() {
		for {
			cs.completeAll()
			select {
			case <-done:
				cs.completeAll()
				return
			default:
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Put(parcelTo(1, "c"))
			}
		}()
	}
	wg.Wait()
	close(done)
	// Drain any tail.
	for l.QueuedParcels(1) > 0 {
		cs.completeAll()
	}
	if got := l.Stats().ParcelsSent; got != goroutines*each {
		t.Fatalf("ParcelsSent = %d, want %d", got, goroutines*each)
	}
}

func TestDefaultsFilled(t *testing.T) {
	l := NewLayer(1, Config{}, func(int, *serialization.Message) {})
	if l.cfg.MaxConnections != 8192 {
		t.Fatalf("MaxConnections default = %d", l.cfg.MaxConnections)
	}
	if l.cfg.ZeroCopyThreshold != serialization.DefaultZeroCopyThreshold {
		t.Fatalf("ZeroCopyThreshold default = %d", l.cfg.ZeroCopyThreshold)
	}
}

func TestMaxMessageBytesSplitsAggregation(t *testing.T) {
	cs := &captureSend{}
	// One connection, small outbound cap: a backlog must drain in several
	// bounded messages instead of one giant aggregate.
	l := NewLayer(2, Config{MaxConnections: 1, MaxMessageBytes: 1000}, cs.send)
	l.Put(&serialization.Parcel{Dest: 1, Args: [][]byte{make([]byte, 100)}})
	if cs.count() != 1 {
		t.Fatal("first parcel should send immediately")
	}
	for i := 0; i < 12; i++ {
		l.Put(&serialization.Parcel{Dest: 1, Args: [][]byte{make([]byte, 300)}})
	}
	// Complete sends one at a time and count messages/parcels.
	totalParcels := 1
	messages := 1
	for l.QueuedParcels(1) > 0 || cs.count() > 0 {
		cs.mu.Lock()
		msgs := cs.msgs
		cs.msgs = nil
		cs.mu.Unlock()
		for _, m := range msgs {
			if messages > 1 { // skip the singleton first message
				ps, err := serialization.Decode(m)
				if err != nil {
					t.Fatal(err)
				}
				totalParcels += len(ps)
				if got := m.TotalBytes(); got > 1500 {
					t.Fatalf("aggregated message is %d bytes, cap was 1000 (+slack)", got)
				}
			} else {
				totalParcels += 0
			}
			messages++
			m.Done()
		}
	}
	// 1 singleton + 12 queued parcels across >= 4 bounded messages.
	if totalParcels != 13 {
		// The first message had 1 parcel; recount: totalParcels started at 1.
		t.Fatalf("delivered %d parcels, want 13", totalParcels)
	}
	if messages < 5 {
		t.Fatalf("backlog drained in %d messages; cap should force splitting", messages)
	}
}

func TestMaxMessageBytesOversizedParcelStillSent(t *testing.T) {
	cs := &captureSend{}
	l := NewLayer(2, Config{MaxConnections: 1, MaxMessageBytes: 100}, cs.send)
	l.Put(&serialization.Parcel{Dest: 1, Args: [][]byte{make([]byte, 5000)}})
	if cs.count() != 1 {
		t.Fatal("oversized parcel must still be sent (alone)")
	}
	cs.completeAll()
}
