// Package parcel implements the HPX "upper layer" data structures that sit
// between action invocation and the parcelport: the per-destination parcel
// queues and the connection cache (§3.2.2, "Send Immediate Optimization").
//
// In the default configuration a parcel is first enqueued on its
// destination's parcel queue; the sender then acquires a connection from the
// connection cache and drains the whole queue into one serialized HPX
// message — which is where aggregation happens when several threads enqueue
// concurrently or the cache runs out of connections. Both structures are
// lock-protected, so they also add contention and software overhead; the
// send-immediate configuration bypasses them entirely, serializing each
// parcel straight into its own message.
package parcel

import (
	"sync"
	"sync/atomic"

	"hpxgo/internal/parcelport"
	"hpxgo/internal/serialization"
)

// Config tunes the parcel layer.
type Config struct {
	// ZeroCopyThreshold is the zero-copy serialization threshold (bytes).
	// Zero selects serialization.DefaultZeroCopyThreshold.
	ZeroCopyThreshold int
	// MaxConnections caps connections per destination (HPX default 8192).
	MaxConnections int
	// Immediate enables the send-immediate optimization: bypass the parcel
	// queue and connection cache.
	Immediate bool
	// MaxMessageBytes bounds the payload of one aggregated HPX message
	// (HPX's max_outbound_message_size). A drain stops accumulating parcels
	// once the estimated message size would exceed it; oversized single
	// parcels still go out alone. Zero means unlimited.
	MaxMessageBytes int
}

func (c *Config) fillDefaults() {
	if c.ZeroCopyThreshold <= 0 {
		c.ZeroCopyThreshold = serialization.DefaultZeroCopyThreshold
	}
	if c.MaxConnections <= 0 {
		c.MaxConnections = parcelport.MaxPendingConnections
	}
}

// Stats are cumulative parcel-layer counters.
type Stats struct {
	ParcelsSent      uint64
	MessagesSent     uint64
	AggregatedSends  uint64 // messages that carried more than one parcel
	CacheExhausted   uint64 // times the connection cache hit its cap
	DiscardedParcels uint64 // parcels dropped for unreachable destinations
}

// Tuner adapts the per-destination zero-copy threshold at runtime (see
// internal/tune). Both methods sit on the per-parcel path and must be
// lock-free and allocation-free.
type Tuner interface {
	// Threshold returns dst's effective zero-copy threshold. Implementations
	// must never return more than the configured static threshold: the
	// receive side sizes its pooled-buffer safety copies by the static
	// value, so the sender-side cutoff may only descend.
	Threshold(dst int) int
	// ObserveParcel records one outbound parcel's payload size.
	ObserveParcel(dst, size int)
}

// Layer is the per-locality parcel sending layer.
type Layer struct {
	cfg        Config
	sendf      func(dst int, m *serialization.Message)
	sendParcel func(dst int, p serialization.Parcel) bool
	tuner      Tuner // nil = static threshold
	dests      []*destState

	parcelsSent      atomic.Uint64
	messagesSent     atomic.Uint64
	aggregatedSends  atomic.Uint64
	cacheExhausted   atomic.Uint64
	discardedParcels atomic.Uint64
}

// destState holds the two lock-protected structures of one destination.
type destState struct {
	queueMu sync.Mutex // the HPX spinlock protecting the parcel queue
	queue   []*serialization.Parcel

	cacheMu   sync.Mutex // the HPX spinlock protecting the connection cache
	freeConns int        // connections sitting in the cache
	liveConns int        // connections created so far
}

// NewLayer creates a parcel layer for a locality that can reach numDest
// localities. send is the parcelport send hook.
func NewLayer(numDest int, cfg Config, send func(dst int, m *serialization.Message)) *Layer {
	cfg.fillDefaults()
	l := &Layer{cfg: cfg, sendf: send}
	l.dests = make([]*destState, numDest)
	for i := range l.dests {
		l.dests[i] = &destState{}
	}
	return l
}

// ZeroCopyThreshold returns the configured threshold.
func (l *Layer) ZeroCopyThreshold() int { return l.cfg.ZeroCopyThreshold }

// SetTuner installs the adaptive per-destination threshold source. Must be
// called before traffic flows; nil keeps the static configured threshold.
func (l *Layer) SetTuner(t Tuner) { l.tuner = t }

// threshold returns dst's effective zero-copy threshold, clamped to the
// configured static value (the safety ceiling — see Tuner.Threshold).
func (l *Layer) threshold(dst int) int {
	if t := l.tuner; t != nil {
		if th := t.Threshold(dst); th > 0 && th < l.cfg.ZeroCopyThreshold {
			return th
		}
	}
	return l.cfg.ZeroCopyThreshold
}

// SetParcelSender installs a direct parcel-send hook consulted by the
// send-immediate path before serializing. When the hook accepts the parcel
// (returns true) the layer skips the per-message encode entirely — the
// aggregation layer encodes it straight into its bundle buffer. Install
// before traffic flows; the hook never sees parcels whose arguments reach
// the zero-copy threshold.
func (l *Layer) SetParcelSender(fn func(dst int, p serialization.Parcel) bool) {
	l.sendParcel = fn
}

// Stats returns a snapshot of the layer counters.
func (l *Layer) Stats() Stats {
	return Stats{
		ParcelsSent:      l.parcelsSent.Load(),
		MessagesSent:     l.messagesSent.Load(),
		AggregatedSends:  l.aggregatedSends.Load(),
		CacheExhausted:   l.cacheExhausted.Load(),
		DiscardedParcels: l.discardedParcels.Load(),
	}
}

// DiscardDest drops every parcel queued for dst and reports how many were
// discarded. The runtime calls this when the fabric declares the peer down:
// the queued parcels could otherwise pin a dead destination's connection
// forever, and their continuations have already been failed by the reaper.
func (l *Layer) DiscardDest(dst int) int {
	if dst < 0 || dst >= len(l.dests) {
		return 0
	}
	d := l.dests[dst]
	d.queueMu.Lock()
	n := len(d.queue)
	d.queue = nil
	d.queueMu.Unlock()
	if n > 0 {
		l.discardedParcels.Add(uint64(n))
	}
	return n
}

// Put hands one parcel to the sending machinery.
func (l *Layer) Put(p *serialization.Parcel) {
	l.parcelsSent.Add(1)
	if l.cfg.Immediate {
		l.putImmediate(p)
		return
	}
	d := l.dests[p.Dest]
	d.queueMu.Lock()
	d.queue = append(d.queue, p)
	d.queueMu.Unlock()
	l.drain(p.Dest)
}

// PutOne hands a single parcel to the sending machinery by value. On the
// send-immediate path the encode reads the parcel and never retains it, so
// the copy stays on the caller's stack instead of costing a heap allocation
// per message.
func (l *Layer) PutOne(p serialization.Parcel) {
	if l.cfg.Immediate {
		l.parcelsSent.Add(1)
		if t := l.tuner; t != nil {
			size := 0
			for _, a := range p.Args {
				size += len(a)
			}
			t.ObserveParcel(p.Dest, size)
		}
		if sp := l.sendParcel; sp != nil && l.allArgsInline(&p) && sp(p.Dest, p) {
			l.messagesSent.Add(1)
			return
		}
		l.putImmediate(&p)
		return
	}
	q := p
	l.Put(&q)
}

// allArgsInline reports whether p's encoding carries no zero-copy chunks,
// i.e. every argument stays below the destination's effective zero-copy
// threshold.
func (l *Layer) allArgsInline(p *serialization.Parcel) bool {
	th := l.threshold(p.Dest)
	for _, a := range p.Args {
		if len(a) >= th {
			return false
		}
	}
	return true
}

// putImmediate serializes p directly, bypassing the parcel queue and the
// connection cache. The layer owns the encode scratch, so it has the
// parcelport return it to the pool once the transfer locally completes.
func (l *Layer) putImmediate(p *serialization.Parcel) {
	m := serialization.EncodeOne(p, l.threshold(p.Dest))
	m.RecycleOnSent = true
	l.messagesSent.Add(1)
	l.sendf(p.Dest, m)
}

// drain moves queued parcels for dst into one message, if a connection is
// available.
func (l *Layer) drain(dst int) {
	d := l.dests[dst]
	if !l.acquireConn(d) {
		// Cache exhausted: the parcels stay queued; the thread that returns
		// a connection drains them (aggregating in the meantime).
		return
	}
	d.queueMu.Lock()
	var batch []*serialization.Parcel
	if l.cfg.MaxMessageBytes <= 0 {
		batch = d.queue
		d.queue = nil
	} else {
		// Take parcels up to the outbound size cap; at least one always
		// goes (an oversized parcel cannot be split).
		size := 0
		n := 0
		for n < len(d.queue) {
			size += parcelBytes(d.queue[n])
			if n > 0 && size > l.cfg.MaxMessageBytes {
				break
			}
			n++
		}
		batch = d.queue[:n:n]
		rest := d.queue[n:]
		d.queue = nil
		if len(rest) > 0 {
			d.queue = append(d.queue, rest...)
		}
	}
	d.queueMu.Unlock()
	if len(batch) == 0 {
		l.releaseConn(d)
		return
	}
	m := serialization.Encode(batch, l.threshold(dst))
	if len(batch) > 1 {
		l.aggregatedSends.Add(1)
	}
	m.OnSent = func() {
		m.Recycle()
		l.releaseConn(d)
		// Parcels may have queued while the connection was busy.
		d.queueMu.Lock()
		pending := len(d.queue) > 0
		d.queueMu.Unlock()
		if pending {
			l.drain(dst)
		}
	}
	l.messagesSent.Add(1)
	l.sendf(dst, m)
}

// parcelBytes estimates a parcel's serialized footprint.
func parcelBytes(p *serialization.Parcel) int {
	n := 32 // metadata
	for _, a := range p.Args {
		n += 8 + len(a)
	}
	return n
}

// acquireConn takes a connection from the cache or creates one under the cap.
func (l *Layer) acquireConn(d *destState) bool {
	d.cacheMu.Lock()
	defer d.cacheMu.Unlock()
	if d.freeConns > 0 {
		d.freeConns--
		return true
	}
	if d.liveConns < l.cfg.MaxConnections {
		d.liveConns++
		return true
	}
	l.cacheExhausted.Add(1)
	return false
}

// releaseConn returns a connection to the cache.
func (l *Layer) releaseConn(d *destState) {
	d.cacheMu.Lock()
	d.freeConns++
	d.cacheMu.Unlock()
}

// QueuedParcels reports parcels waiting in the dst queue (tests/metrics).
func (l *Layer) QueuedParcels(dst int) int {
	d := l.dests[dst]
	d.queueMu.Lock()
	defer d.queueMu.Unlock()
	return len(d.queue)
}
