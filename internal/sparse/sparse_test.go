package sparse

import (
	"math"
	"math/rand"
	"testing"

	"hpxgo/internal/core"
)

func TestBuildPoissonStructure(t *testing.T) {
	g := Grid{NX: 3, NY: 3, NZ: 3}
	m, err := BuildPoisson(g, 0, g.N())
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 27 {
		t.Fatalf("rows = %d", m.Rows())
	}
	// Interior row (1,1,1) has 7 entries; corner (0,0,0) has 4.
	center := g.index(1, 1, 1)
	if got := m.RowPtr[center+1] - m.RowPtr[center]; got != 7 {
		t.Fatalf("interior row has %d entries, want 7", got)
	}
	if got := m.RowPtr[1] - m.RowPtr[0]; got != 4 {
		t.Fatalf("corner row has %d entries, want 4", got)
	}
	// Diagonal is 6, off-diagonals are -1, columns sorted per row.
	for r := 0; r < m.Rows(); r++ {
		prev := int32(-1)
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] <= prev {
				t.Fatalf("row %d columns not strictly sorted", r)
			}
			prev = m.ColIdx[k]
			if int(m.ColIdx[k]) == r {
				if m.Values[k] != 6 {
					t.Fatalf("diag of row %d = %g", r, m.Values[k])
				}
			} else if m.Values[k] != -1 {
				t.Fatalf("offdiag of row %d = %g", r, m.Values[k])
			}
		}
	}
}

func TestBuildPoissonValidation(t *testing.T) {
	g := Grid{NX: 2, NY: 2, NZ: 2}
	if _, err := BuildPoisson(g, -1, 4); err == nil {
		t.Fatal("negative lo should fail")
	}
	if _, err := BuildPoisson(g, 0, 99); err == nil {
		t.Fatal("hi > N should fail")
	}
}

// denseSpMV is the reference y = A x via stencil arithmetic.
func denseSpMV(g Grid, x []float64) []float64 {
	y := make([]float64, g.N())
	for zz := 0; zz < g.NZ; zz++ {
		for yy := 0; yy < g.NY; yy++ {
			for xx := 0; xx < g.NX; xx++ {
				i := g.index(xx, yy, zz)
				acc := 6 * x[i]
				if xx > 0 {
					acc -= x[g.index(xx-1, yy, zz)]
				}
				if xx < g.NX-1 {
					acc -= x[g.index(xx+1, yy, zz)]
				}
				if yy > 0 {
					acc -= x[g.index(xx, yy-1, zz)]
				}
				if yy < g.NY-1 {
					acc -= x[g.index(xx, yy+1, zz)]
				}
				if zz > 0 {
					acc -= x[g.index(xx, yy, zz-1)]
				}
				if zz < g.NZ-1 {
					acc -= x[g.index(xx, yy, zz+1)]
				}
				y[i] = acc
			}
		}
	}
	return y
}

func TestSpMVMatchesReference(t *testing.T) {
	g := Grid{NX: 4, NY: 3, NZ: 5}
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	want := denseSpMV(g, x)
	// Partitioned into 3 blocks, each using the global x as lookup.
	for _, split := range [][2]int{{0, 20}, {20, 40}, {40, 60}} {
		m, err := BuildPoisson(g, split[0], split[1])
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, m.Rows())
		m.SpMV(y, func(c int32) float64 { return x[c] })
		for r := range y {
			if math.Abs(y[r]-want[split[0]+r]) > 1e-12 {
				t.Fatalf("row %d: %g != %g", split[0]+r, y[r], want[split[0]+r])
			}
		}
	}
}

func TestRemoteColsAndOwner(t *testing.T) {
	g := Grid{NX: 4, NY: 4, NZ: 4}
	N := g.N()
	const n = 4
	for loc := 0; loc < n; loc++ {
		lo, hi := RowRange(N, loc, n)
		m, err := BuildPoisson(g, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range m.RemoteCols() {
			if int(c) >= lo && int(c) < hi {
				t.Fatalf("RemoteCols returned owned column %d", c)
			}
			owner := ownerOf(int(c), N, n)
			olo, ohi := RowRange(N, owner, n)
			if int(c) < olo || int(c) >= ohi {
				t.Fatalf("ownerOf(%d) = %d, range [%d,%d)", c, owner, olo, ohi)
			}
		}
	}
	// Interior blocks must need a halo.
	lo, hi := RowRange(N, 1, n)
	m, _ := BuildPoisson(g, lo, hi)
	if len(m.RemoteCols()) == 0 {
		t.Fatal("interior block has no halo")
	}
}

func TestPackI32RoundTrip(t *testing.T) {
	in := []int32{0, 1, -5, 1 << 20, math.MaxInt32}
	out := unpackI32(packI32(in))
	if len(out) != len(in) {
		t.Fatal("length")
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("idx %d: %d != %d", i, out[i], in[i])
		}
	}
}

// solveOn runs a full distributed CG solve on the given configuration.
func solveOn(t *testing.T, pp string, localities int, g Grid) (Result, []float64, []float64) {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{
		Localities:         localities,
		WorkersPerLocality: 2,
		Parcelport:         pp,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rt, Params{Grid: g, MaxIter: 500, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)

	// Known solution: b = A xTrue.
	rng := rand.New(rand.NewSource(11))
	xTrue := make([]float64, g.N())
	for i := range xTrue {
		xTrue[i] = rng.Float64()
	}
	b := denseSpMV(g, xTrue)
	if err := s.SetRHS(b); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return res, s.Solution(), xTrue
}

func TestSolvePoissonLCI(t *testing.T) {
	res, x, xTrue := solveOn(t, "lci", 3, Grid{NX: 6, NY: 5, NZ: 4})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	var maxErr float64
	for i := range x {
		if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-6 {
		t.Fatalf("solution error %g", maxErr)
	}
}

func TestSolvePoissonMPI(t *testing.T) {
	res, _, _ := solveOn(t, "mpi_i", 2, Grid{NX: 4, NY: 4, NZ: 4})
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
}

func TestSolveZeroRHS(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{NX: 3, NY: 3, NZ: 3}
	s, err := New(rt, Params{Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if err := s.SetRHS(make([]float64, g.N())); err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve()
	if err != nil || !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v, %v", res, err)
	}
	if err := s.SetRHS(make([]float64, 5)); err == nil {
		t.Fatal("wrong rhs length should fail")
	}
}

func TestSolveIndependentOfPartitioning(t *testing.T) {
	g := Grid{NX: 4, NY: 4, NZ: 3}
	_, x1, _ := solveOn(t, "lci", 1, g)
	_, x4, _ := solveOn(t, "mpi", 4, g)
	for i := range x1 {
		if math.Abs(x1[i]-x4[i]) > 1e-6 {
			t.Fatalf("solutions diverge at %d: %g vs %g", i, x1[i], x4[i])
		}
	}
}
