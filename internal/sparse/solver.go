package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"hpxgo/internal/amt"
	"hpxgo/internal/core"
	"hpxgo/internal/wire"
)

// Params configures a distributed CG solve.
type Params struct {
	Grid    Grid
	MaxIter int     // default 200
	Tol     float64 // relative residual target, default 1e-8
}

func (p *Params) fillDefaults() {
	if p.MaxIter <= 0 {
		p.MaxIter = 200
	}
	if p.Tol <= 0 {
		p.Tol = 1e-8
	}
}

// partState is one locality's share of the solve.
type partState struct {
	mat *CSR
	lo  int

	x, r, p, ap []float64
	b           []float64

	// Halo plan: for each peer locality, the global indices of p this
	// locality needs, and the ghost value table filled each iteration.
	need  map[int][]int32
	ghost map[int32]float64
}

// Solver runs distributed CG on a core runtime. Create before rt.Start.
type Solver struct {
	rt    *core.Runtime
	par   Params
	parts []*partState

	aFetch uint32
}

// solveTimeout bounds collective phases.
const solveTimeout = 5 * time.Minute

// New builds the row-partitioned matrix blocks and registers the solver's
// actions. Must be called before rt.Start.
func New(rt *core.Runtime, par Params) (*Solver, error) {
	par.fillDefaults()
	if par.Grid.N() == 0 {
		return nil, fmt.Errorf("sparse: empty grid")
	}
	s := &Solver{rt: rt, par: par}
	n := rt.Localities()
	s.parts = make([]*partState, n)
	for loc := 0; loc < n; loc++ {
		lo, hi := RowRange(par.Grid.N(), loc, n)
		mat, err := BuildPoisson(par.Grid, lo, hi)
		if err != nil {
			return nil, err
		}
		st := &partState{mat: mat, lo: lo}
		rows := mat.Rows()
		st.x = make([]float64, rows)
		st.r = make([]float64, rows)
		st.p = make([]float64, rows)
		st.ap = make([]float64, rows)
		st.b = make([]float64, rows)
		st.ghost = make(map[int32]float64)
		st.need = make(map[int][]int32)
		s.parts[loc] = st
	}
	// Build the static halo plan: owner of each remote column.
	for _, st := range s.parts {
		for _, c := range st.mat.RemoteCols() {
			owner := ownerOf(int(c), par.Grid.N(), n)
			st.need[owner] = append(st.need[owner], c)
		}
	}

	// sp_fetch returns the requested entries of this locality's CURRENT p
	// vector: args[0] = packed int32 global indices.
	s.aFetch = rt.MustRegisterAction("sp_fetch", func(loc *core.Locality, args [][]byte) [][]byte {
		st := s.parts[loc.ID()]
		idxs := unpackI32(args[0])
		out := make([]byte, 8*len(idxs))
		for i, c := range idxs {
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(st.p[int(c)-st.lo]))
		}
		return [][]byte{out}
	})

	// sp_dot computes a local dot product selected by args[0][0]:
	// 0 = r.r, 1 = p.Ap.
	rt.MustRegisterAction("sp_dot", func(loc *core.Locality, args [][]byte) [][]byte {
		st := s.parts[loc.ID()]
		var acc float64
		switch args[0][0] {
		case 0:
			for i, v := range st.r {
				acc += v * st.r[i]
			}
		default:
			for i, v := range st.p {
				acc += v * st.ap[i]
			}
		}
		return [][]byte{wire.F64(acc)}
	})

	// sp_update1: x += alpha p; r -= alpha Ap (alpha in args[0]).
	rt.MustRegisterAction("sp_update1", func(loc *core.Locality, args [][]byte) [][]byte {
		st := s.parts[loc.ID()]
		alpha := math.Float64frombits(binary.LittleEndian.Uint64(args[0]))
		for i := range st.x {
			st.x[i] += alpha * st.p[i]
			st.r[i] -= alpha * st.ap[i]
		}
		return nil
	})

	// sp_update2: p = r + beta p (beta in args[0]).
	rt.MustRegisterAction("sp_update2", func(loc *core.Locality, args [][]byte) [][]byte {
		st := s.parts[loc.ID()]
		beta := math.Float64frombits(binary.LittleEndian.Uint64(args[0]))
		for i := range st.p {
			st.p[i] = st.r[i] + beta*st.p[i]
		}
		return nil
	})

	// sp_spmv: halo-exchange p, then Ap = A p.
	rt.MustRegisterAction("sp_spmv", func(loc *core.Locality, args [][]byte) [][]byte {
		st := s.parts[loc.ID()]
		// Pull each peer's boundary values of p (the irregular small/medium
		// message phase).
		type pending struct {
			idxs []int32
			fut  *amt.Future[[][]byte]
		}
		var pend []pending
		for owner, idxs := range st.need {
			if len(idxs) == 0 {
				continue
			}
			fut := loc.CallID(owner, s.aFetch, [][]byte{packI32(idxs)})
			pend = append(pend, pending{idxs: idxs, fut: fut})
		}
		for _, pe := range pend {
			res, err := pe.fut.GetTimeout(solveTimeout)
			if err != nil || len(res) != 1 {
				return [][]byte{[]byte("halo error")}
			}
			for i, c := range pe.idxs {
				st.ghost[c] = math.Float64frombits(binary.LittleEndian.Uint64(res[0][8*i:]))
			}
		}
		st.mat.SpMV(st.ap, func(col int32) float64 {
			if idx := int(col) - st.lo; idx >= 0 && idx < len(st.p) {
				return st.p[idx]
			}
			return st.ghost[col]
		})
		return nil
	})
	return s, nil
}

// ownerOf maps a global row to its owning locality.
func ownerOf(row, N, n int) int {
	// Inverse of RowRange's proportional split.
	loc := row * n / N
	for {
		lo, hi := RowRange(N, loc, n)
		if row < lo {
			loc--
		} else if row >= hi {
			loc++
		} else {
			return loc
		}
	}
}

// SetRHS installs the right-hand side b (global vector, length N) and
// resets the solver state.
func (s *Solver) SetRHS(b []float64) error {
	if len(b) != s.par.Grid.N() {
		return fmt.Errorf("sparse: rhs length %d != N %d", len(b), s.par.Grid.N())
	}
	for _, st := range s.parts {
		copy(st.b, b[st.lo:st.lo+st.mat.Rows()])
		for i := range st.x {
			st.x[i] = 0
			st.r[i] = st.b[i]
			st.p[i] = st.r[i]
			st.ap[i] = 0
		}
	}
	return nil
}

// Solution copies the assembled global solution vector.
func (s *Solver) Solution() []float64 {
	out := make([]float64, s.par.Grid.N())
	for _, st := range s.parts {
		copy(out[st.lo:], st.x)
	}
	return out
}

// Result summarizes a solve.
type Result struct {
	Iterations int
	RelRes     float64
	Converged  bool
}

// Solve runs CG until convergence or MaxIter. The runtime must be started.
func (s *Solver) Solve() (Result, error) {
	dot := func(which byte) (float64, error) {
		res, err := s.rt.Reduce(0, solveTimeout, "sp_dot", wire.SumF64Fold, []byte{which})
		if err != nil {
			return 0, err
		}
		return wire.ToF64(res[0])
	}
	f64 := wire.F64

	rs, err := dot(0)
	if err != nil {
		return Result{}, err
	}
	norm0 := math.Sqrt(rs)
	if norm0 == 0 {
		return Result{Converged: true}, nil
	}
	for it := 1; it <= s.par.MaxIter; it++ {
		if err := s.rt.Broadcast(0, solveTimeout, "sp_spmv"); err != nil {
			return Result{}, fmt.Errorf("sparse: spmv at iter %d: %w", it, err)
		}
		pap, err := dot(1)
		if err != nil {
			return Result{}, err
		}
		if pap == 0 {
			return Result{Iterations: it, RelRes: math.Sqrt(rs) / norm0}, fmt.Errorf("sparse: breakdown (pAp = 0)")
		}
		alpha := rs / pap
		if err := s.rt.Broadcast(0, solveTimeout, "sp_update1", f64(alpha)); err != nil {
			return Result{}, err
		}
		rsNew, err := dot(0)
		if err != nil {
			return Result{}, err
		}
		rel := math.Sqrt(rsNew) / norm0
		if rel < s.par.Tol {
			return Result{Iterations: it, RelRes: rel, Converged: true}, nil
		}
		beta := rsNew / rs
		rs = rsNew
		if err := s.rt.Broadcast(0, solveTimeout, "sp_update2", f64(beta)); err != nil {
			return Result{}, err
		}
	}
	return Result{Iterations: s.par.MaxIter, RelRes: math.Sqrt(rs) / norm0}, nil
}
