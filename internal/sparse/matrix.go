// Package sparse implements a distributed sparse linear solver — the
// "sparse numerical solvers" the paper's introduction names, alongside graph
// algorithms, as the irregular workloads that challenge the BSP model and
// motivate asynchronous many-task runtimes.
//
// The solver is conjugate gradient on a 7-point Poisson matrix stored in
// CSR, row-block partitioned across localities. Each iteration performs a
// halo exchange of boundary vector entries (pull-based actions over the
// parcelport under test), a local SpMV, and global dot products through the
// runtime's Reduce collective — a latency-and-small-message-bound pattern
// quite different from Octo-Tiger's bulk boundary exchanges.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix block: rows [RowLo, RowHi) of a
// global N x N matrix, with global column indices.
type CSR struct {
	N            int // global dimension
	RowLo, RowHi int // owned row range
	RowPtr       []int64
	ColIdx       []int32
	Values       []float64
}

// Rows returns the number of owned rows.
func (m *CSR) Rows() int { return m.RowHi - m.RowLo }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Values) }

// Grid describes a 3-D Poisson problem discretized with the 7-point stencil
// and Dirichlet boundaries.
type Grid struct {
	NX, NY, NZ int
}

// N returns the global matrix dimension.
func (g Grid) N() int { return g.NX * g.NY * g.NZ }

// index maps grid coordinates to the global row index.
func (g Grid) index(x, y, z int) int { return x + g.NX*(y+g.NY*z) }

// RowRange returns the contiguous row block owned by locality loc of n.
func RowRange(N, loc, n int) (lo, hi int) {
	return N * loc / n, N * (loc + 1) / n
}

// BuildPoisson assembles the CSR block of rows [lo, hi) of the 7-point
// Laplacian: 6 on the diagonal, -1 for each in-grid neighbour.
func BuildPoisson(g Grid, lo, hi int) (*CSR, error) {
	N := g.N()
	if lo < 0 || hi > N || lo > hi {
		return nil, fmt.Errorf("sparse: invalid row range [%d,%d) of %d", lo, hi, N)
	}
	m := &CSR{N: N, RowLo: lo, RowHi: hi}
	m.RowPtr = make([]int64, hi-lo+1)
	for row := lo; row < hi; row++ {
		// Decode coordinates.
		x := row % g.NX
		y := (row / g.NX) % g.NY
		z := row / (g.NX * g.NY)
		type entry struct {
			col int
			val float64
		}
		entries := []entry{{row, 6}}
		add := func(nx, ny, nz int) {
			if nx < 0 || ny < 0 || nz < 0 || nx >= g.NX || ny >= g.NY || nz >= g.NZ {
				return
			}
			entries = append(entries, entry{g.index(nx, ny, nz), -1})
		}
		add(x-1, y, z)
		add(x+1, y, z)
		add(x, y-1, z)
		add(x, y+1, z)
		add(x, y, z-1)
		add(x, y, z+1)
		sort.Slice(entries, func(i, j int) bool { return entries[i].col < entries[j].col })
		for _, e := range entries {
			m.ColIdx = append(m.ColIdx, int32(e.col))
			m.Values = append(m.Values, e.val)
		}
		m.RowPtr[row-lo+1] = int64(len(m.Values))
	}
	return m, nil
}

// SpMV computes y = A x for the owned rows. lookup resolves a global column
// index to its current value (owned entries hit local memory; halo entries
// hit the prefetched ghost table).
func (m *CSR) SpMV(y []float64, lookup func(col int32) float64) {
	for r := 0; r < m.Rows(); r++ {
		var acc float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			acc += m.Values[k] * lookup(m.ColIdx[k])
		}
		y[r] = acc
	}
}

// RemoteCols returns the sorted distinct column indices outside the owned
// row range — the halo this block needs each iteration.
func (m *CSR) RemoteCols() []int32 {
	seen := make(map[int32]bool)
	for _, c := range m.ColIdx {
		if int(c) < m.RowLo || int(c) >= m.RowHi {
			seen[c] = true
		}
	}
	out := make([]int32, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
