package sparse

import "encoding/binary"

// packI32 serializes int32 indices little-endian.
func packI32(vs []int32) []byte {
	out := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// unpackI32 parses a packI32 payload.
func unpackI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
