package core

import (
	"bytes"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"hpxgo/internal/fabric"
)

// TestSoakMixedTraffic hammers a 3-locality runtime with a randomized mix
// of Apply and Call across payload sizes straddling every protocol boundary
// (short, eager, zero-copy rendezvous) for a bounded wall-clock window per
// transport, verifying that nothing is lost, duplicated or corrupted.
func TestSoakMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	for _, pp := range []string{"lci", "mpi_i", "tcp"} {
		pp := pp
		t.Run(pp, func(t *testing.T) {
			rt, err := NewRuntime(Config{
				Localities:         3,
				WorkersPerLocality: 2,
				Parcelport:         pp,
				Fabric:             fabric.Config{LatencyNs: 200, GbitsPerSec: 100, Rails: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			var applied atomic.Int64
			rt.MustRegisterAction("soak_sink", func(loc *Locality, args [][]byte) [][]byte {
				applied.Add(1)
				return nil
			})
			rt.MustRegisterAction("soak_echo", func(loc *Locality, args [][]byte) [][]byte {
				return args
			})
			if err := rt.Start(); err != nil {
				t.Fatal(err)
			}
			defer rt.Shutdown()

			rng := rand.New(rand.NewSource(99))
			deadline := time.Now().Add(2 * time.Second)
			var sentApply, calls int64
			type pending struct {
				fut interface {
					GetTimeout(time.Duration) ([][]byte, error)
				}
				payload []byte
			}
			var outstanding []pending
			for time.Now().Before(deadline) {
				src := rng.Intn(3)
				dst := (src + 1 + rng.Intn(2)) % 3
				size := []int{1, 7, 100, 1024, 8192, 20000}[rng.Intn(6)]
				payload := make([]byte, size)
				payload[0] = byte(rng.Intn(256))
				if rng.Intn(2) == 0 {
					if err := rt.Locality(src).Apply(dst, "soak_sink", payload); err != nil {
						t.Fatal(err)
					}
					sentApply++
				} else {
					outstanding = append(outstanding, pending{
						fut:     rt.Locality(src).Call(dst, "soak_echo", payload),
						payload: payload,
					})
					calls++
				}
				// Bound the in-flight window so memory stays sane.
				if len(outstanding) >= 64 {
					for _, p := range outstanding {
						res, err := p.fut.GetTimeout(time.Minute)
						if err != nil {
							t.Fatalf("%s: call failed: %v", pp, err)
						}
						if len(res) != 1 || !bytes.Equal(res[0], p.payload) {
							t.Fatalf("%s: echo corrupted (%d bytes)", pp, len(p.payload))
						}
					}
					outstanding = outstanding[:0]
				}
			}
			for _, p := range outstanding {
				res, err := p.fut.GetTimeout(time.Minute)
				if err != nil {
					t.Fatalf("%s: tail call failed: %v", pp, err)
				}
				if !bytes.Equal(res[0], p.payload) {
					t.Fatalf("%s: tail echo corrupted", pp)
				}
			}
			waitUntil := time.Now().Add(time.Minute)
			for applied.Load() < sentApply && time.Now().Before(waitUntil) {
				time.Sleep(time.Millisecond)
			}
			if applied.Load() != sentApply {
				t.Fatalf("%s: %d of %d applies delivered", pp, applied.Load(), sentApply)
			}
			t.Logf("%s soak: %d applies + %d calls survived", pp, sentApply, calls)
		})
	}
}
