package core

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"hpxgo/internal/serialization"
)

// stubOwner is a refcount-observing serialization.RecvOwner for tests.
type stubOwner struct {
	retains  atomic.Int64
	releases atomic.Int64
}

func (o *stubOwner) Retain()  { o.retains.Add(1) }
func (o *stubOwner) Release() { o.releases.Add(1) }

// TestDeliverBundleZeroAllocs is the allocation gate of the receiver
// datapath: once pools and the runner cache are warm, delivering an
// eager-sized bundled message — decode, dispatch, spawn, execute, buffer
// release — must not allocate at all.
func TestDeliverBundleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; gate runs in non-race builds")
	}
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Uint64
	noop := rt.MustRegisterAction("zeroalloc_noop", func(*Locality, [][]byte) [][]byte {
		ran.Add(1)
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	const bundle = 8
	m := benchBundle(bundle, 64, noop)
	owner := &stubOwner{}
	m.Owner = owner
	deliverOnce := func() {
		want := ran.Load() + bundle
		rel := owner.releases.Load() + 1
		l.deliver(m)
		for ran.Load() < want || owner.releases.Load() < rel {
			runtime.Gosched()
		}
	}
	// Warm the delivery pool, decode slabs and the runner cache.
	for i := 0; i < 8; i++ {
		deliverOnce()
	}
	// The last task's release happens just before its runner re-parks; wait
	// for the cache to refill so no measured run spawns a fresh goroutine.
	idle := l.sched.IdleRunners()
	settle := func() {
		for l.sched.IdleRunners() < idle {
			runtime.Gosched()
		}
	}
	settle()
	avg := testing.AllocsPerRun(50, func() {
		deliverOnce()
		settle()
	})
	if avg != 0 {
		t.Fatalf("deliver of a warm %d-parcel bundle allocates %.1f times per run, want 0", bundle, avg)
	}
	if owner.retains.Load() != 0 {
		t.Fatalf("unexpected owner retains: %d", owner.retains.Load())
	}
}

// TestDeliverDecodeError checks that a corrupt message is counted, traced
// and dropped with its pooled receive buffers released.
func TestDeliverDecodeError(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 1, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	owner := &stubOwner{}
	m := &serialization.Message{NonZeroCopy: []byte{1, 2, 3}, Owner: owner}
	l.deliver(m)
	if got := l.DecodeErrors(); got != 1 {
		t.Fatalf("DecodeErrors = %d, want 1", got)
	}
	if got := owner.releases.Load(); got != 1 {
		t.Fatalf("owner releases = %d, want 1 (dropped message must release its buffers)", got)
	}
	if txt := rt.StatsText(); !strings.Contains(txt, "decode errors 1") {
		t.Fatalf("StatsText does not surface the decode-error counter:\n%s", txt)
	}
}

// TestDeliverUnknownActionReleasesOwner: parcels whose action id is
// unregistered are skipped without wedging the delivery or leaking the owner.
func TestDeliverUnknownActionReleasesOwner(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 1, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	m := benchBundle(4, 16, 9999) // action id never registered
	owner := &stubOwner{}
	m.Owner = owner
	l.deliver(m)
	if got := owner.releases.Load(); got != 1 {
		t.Fatalf("owner releases = %d, want 1 (no runnable parcel must still release)", got)
	}
}
