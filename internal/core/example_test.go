package core_test

import (
	"fmt"
	"time"

	"hpxgo/internal/core"
)

// Example shows the smallest complete program: two localities, one action,
// one remote call.
func Example() {
	rt, err := core.NewRuntime(core.Config{Localities: 2, Parcelport: "lci"})
	if err != nil {
		panic(err)
	}
	rt.MustRegisterAction("greet", func(loc *core.Locality, args [][]byte) [][]byte {
		return [][]byte{[]byte(fmt.Sprintf("hello %s from locality %d", args[0], loc.ID()))}
	})
	if err := rt.Start(); err != nil {
		panic(err)
	}
	defer rt.Shutdown()

	res, err := rt.Locality(0).Call(1, "greet", []byte("world")).GetTimeout(time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(res[0]))
	// Output: hello world from locality 1
}

// ExampleRuntime_Reduce sums a per-locality value across the cluster.
func ExampleRuntime_Reduce() {
	rt, err := core.NewRuntime(core.Config{Localities: 4, Parcelport: "mpi_i"})
	if err != nil {
		panic(err)
	}
	rt.MustRegisterAction("one", func(loc *core.Locality, args [][]byte) [][]byte {
		return [][]byte{{1}}
	})
	if err := rt.Start(); err != nil {
		panic(err)
	}
	defer rt.Shutdown()

	sum, err := rt.Reduce(0, time.Minute, "one", func(acc, partial [][]byte) [][]byte {
		return [][]byte{{acc[0][0] + partial[0][0]}}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(int(sum[0][0]))
	// Output: 4
}

// ExampleLocality_Apply sends fire-and-forget work to a peer locality.
func ExampleLocality_Apply() {
	rt, err := core.NewRuntime(core.Config{Localities: 2, Parcelport: "lci"})
	if err != nil {
		panic(err)
	}
	done := make(chan string, 1)
	rt.MustRegisterAction("log", func(loc *core.Locality, args [][]byte) [][]byte {
		done <- fmt.Sprintf("locality %d got %q", loc.ID(), args[0])
		return nil
	})
	if err := rt.Start(); err != nil {
		panic(err)
	}
	defer rt.Shutdown()

	if err := rt.Locality(0).Apply(1, "log", []byte("fire-and-forget")); err != nil {
		panic(err)
	}
	fmt.Println(<-done)
	// Output: locality 1 got "fire-and-forget"
}
