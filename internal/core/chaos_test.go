package core

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"hpxgo/internal/fabric"
)

// chaosFabric is a small lossy interconnect: every fault class active, with
// the retransmission timers tuned for a 1-CPU CI host (short RTO, a retry
// budget generous enough that even 5% loss cannot falsely down a link).
func chaosFabric(drop float64, seed int64) fabric.Config {
	return fabric.Config{
		LatencyNs:   200,
		GbitsPerSec: 100,
		Rails:       2,
		Faults: fabric.FaultConfig{
			DropProb:    drop,
			DupProb:     0.01,
			CorruptProb: 0.01,
			SpikeProb:   0.005,
			SpikeNs:     20_000,
			Seed:        seed,
		},
		RetransmitTimeoutNs: 200_000,
		AckDelayNs:          50_000,
		RetryBudget:         50,
	}
}

// TestChaosExactlyOnceDelivery drives both fabric-backed parcelports over a
// lossy, duplicating, corrupting interconnect and verifies the end-to-end
// guarantee: every Apply runs exactly once and every Call returns exactly
// its arguments, with the ARQ (not luck) absorbing the faults.
func TestChaosExactlyOnceDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	for _, tc := range []struct {
		pp   string
		drop float64
	}{
		{"lci", 0.01},
		{"lci", 0.05},
		{"mpi_i", 0.01},
		{"mpi_i", 0.05},
		// Aggregated variants: sub-parcels ride bundled fabric transfers, and
		// the exactly-once guarantee must hold per sub-parcel, not per bundle.
		{"lci_agg", 0.05},
		{"mpi_i_agg", 0.05},
	} {
		tc := tc
		t.Run(tc.pp+"/"+pct(tc.drop), func(t *testing.T) {
			rt, err := NewRuntime(Config{
				Localities:         2,
				WorkersPerLocality: 2,
				Parcelport:         tc.pp,
				Fabric:             chaosFabric(tc.drop, int64(len(tc.pp))+int64(tc.drop*100)),
				// Keep bundles small so the run still produces enough distinct
				// fabric transfers to provoke retransmissions (ignored unless
				// the config enables aggregation).
				AggMaxQueued: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			counts := make(map[uint32]int)
			rt.MustRegisterAction("chaos_sink", func(loc *Locality, args [][]byte) [][]byte {
				if len(args) == 1 && len(args[0]) >= 4 {
					id := binary.LittleEndian.Uint32(args[0])
					mu.Lock()
					counts[id]++
					mu.Unlock()
				}
				return nil
			})
			rt.MustRegisterAction("chaos_echo", func(loc *Locality, args [][]byte) [][]byte {
				return args
			})
			if err := rt.Start(); err != nil {
				t.Fatal(err)
			}
			defer rt.Shutdown()

			const total = 400
			loc0 := rt.Locality(0)
			for i := 0; i < total; i++ {
				buf := make([]byte, 64)
				binary.LittleEndian.PutUint32(buf, uint32(i))
				if err := loc0.Apply(1, "chaos_sink", buf); err != nil {
					t.Fatalf("apply %d: %v", i, err)
				}
				if i%40 == 0 {
					// Interleave request/response traffic so acks piggyback.
					f := loc0.Call(1, "chaos_echo", []byte{byte(i)})
					res, err := f.GetTimeout(time.Minute)
					if err != nil {
						t.Fatalf("call %d: %v", i, err)
					}
					if len(res) != 1 || len(res[0]) != 1 || res[0][0] != byte(i) {
						t.Fatalf("call %d: echoed %v", i, res)
					}
				}
			}

			deadline := time.Now().Add(time.Minute)
			for {
				mu.Lock()
				n := len(counts)
				mu.Unlock()
				if n == total {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("only %d/%d applies delivered", n, total)
				}
				time.Sleep(time.Millisecond)
			}
			mu.Lock()
			for id, c := range counts {
				if c != 1 {
					t.Fatalf("apply %d executed %d times, want exactly once", id, c)
				}
			}
			mu.Unlock()

			st := rt.Network().Device(0).Stats()
			if st.Retransmits == 0 {
				t.Fatalf("no retransmissions under %.0f%% loss: ARQ untested (%+v)", tc.drop*100, st)
			}
			if st.LinksDowned != 0 {
				t.Fatalf("link falsely declared down during chaos run: %+v", st)
			}
			t.Logf("%s at %s loss: %d retransmits, %d acks, %d dup-dropped, %d corrupt-dropped",
				tc.pp, pct(tc.drop), st.Retransmits, st.AcksSent,
				rt.Network().Device(1).Stats().DupDropped,
				rt.Network().Device(1).Stats().CorruptDropped)
		})
	}
}

func pct(p float64) string {
	if p >= 0.05 {
		return "5pct"
	}
	return "1pct"
}

// TestBarrierDeadLink: a Barrier involving a partitioned peer must return
// false within its timeout instead of hanging, and direct Calls to the dead
// peer must fail with ErrPeerUnreachable.
func TestBarrierDeadLink(t *testing.T) {
	rt, err := NewRuntime(Config{
		Localities:         3,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Fabric:             fabric.Config{LatencyNs: 200, GbitsPerSec: 100, Reliability: true},
		DeliveryTimeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	if !rt.Barrier(30 * time.Second) {
		t.Fatal("healthy barrier failed")
	}

	rt.Network().SetLinkDown(0, 2)
	rt.Network().SetLinkDown(2, 0)

	start := time.Now()
	if rt.Barrier(8 * time.Second) {
		t.Fatal("barrier succeeded across a dead link")
	}
	if took := time.Since(start); took > 6*time.Second {
		t.Fatalf("barrier took %v to notice the dead peer", took)
	}

	_, err = rt.Locality(0).Call(2, "__barrier").GetTimeout(10 * time.Second)
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("call to dead peer: err = %v, want ErrPeerUnreachable", err)
	}
	if h := rt.Network().PeerHealth(0, 1); h != fabric.HealthHealthy {
		t.Fatalf("unrelated peer health = %v", h)
	}
}

// TestDeliveryTimeoutSurfacesError: a black-hole link (100% drop, tiny retry
// budget) exhausts its budget, the fabric declares the peer down, and the
// pending Call future fails with ErrPeerUnreachable instead of hanging;
// subsequent Applies fail fast.
func TestDeliveryTimeoutSurfacesError(t *testing.T) {
	rt, err := NewRuntime(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Fabric: fabric.Config{
			LatencyNs:           200,
			GbitsPerSec:         100,
			Faults:              fabric.FaultConfig{DropProb: 1, Seed: 3},
			RetransmitTimeoutNs: 100_000,
			AckDelayNs:          100_000,
			RetryBudget:         5,
		},
		DeliveryTimeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.MustRegisterAction("never_runs", func(loc *Locality, args [][]byte) [][]byte { return args })
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	f := rt.Locality(0).Call(1, "never_runs", []byte("x"))
	if _, err := f.GetTimeout(30 * time.Second); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("call over black-hole link: err = %v, want ErrPeerUnreachable", err)
	}

	// By now the retry budget is long exhausted: the peer reads as down and
	// fire-and-forget sends fail fast instead of queueing into the void.
	deadline := time.Now().Add(10 * time.Second)
	for rt.Network().PeerHealth(0, 1) != fabric.HealthDown {
		if time.Now().After(deadline) {
			t.Fatalf("peer never declared down: %v", rt.Network().PeerHealth(0, 1))
		}
		time.Sleep(time.Millisecond)
	}
	if err := rt.Locality(0).Apply(1, "never_runs", []byte("y")); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("apply to down peer: err = %v, want ErrPeerUnreachable", err)
	}
	if rt.Locality(0).PendingContinuations() != 0 {
		t.Fatalf("%d continuations leaked", rt.Locality(0).PendingContinuations())
	}
}
