package core

import (
	"fmt"
	"time"

	"hpxgo/internal/amt"
)

// Collective helpers built from actions and futures, the way HPX programs
// compose broadcasts and reductions from plain remote calls.

// Broadcast invokes a registered action on every locality (from locality
// `from`) and waits for all of them to finish. Returns the first error.
func (rt *Runtime) Broadcast(from int, timeout time.Duration, action string, args ...[]byte) error {
	if from < 0 || from >= rt.Localities() {
		return fmt.Errorf("core: invalid broadcast source %d", from)
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return fmt.Errorf("core: unknown action %q", action)
	}
	src := rt.Locality(from)
	futs := make([]*amt.Future[[][]byte], rt.Localities())
	for l := 0; l < rt.Localities(); l++ {
		futs[l] = src.CallID(l, id, args)
	}
	deadline := time.Now().Add(timeout)
	for l, f := range futs {
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("core: broadcast of %q timed out at locality %d", action, l)
		}
		if _, err := f.GetTimeout(remain); err != nil {
			return fmt.Errorf("core: broadcast of %q to locality %d: %w", action, l, err)
		}
	}
	return nil
}

// Reduce invokes a registered action on every locality and folds the
// results on locality `root` with fold(acc, partial), seeded with the
// root-local result. The fold order is locality order, so non-commutative
// folds are deterministic.
func (rt *Runtime) Reduce(root int, timeout time.Duration, action string,
	fold func(acc, partial [][]byte) [][]byte, args ...[]byte) ([][]byte, error) {
	if root < 0 || root >= rt.Localities() {
		return nil, fmt.Errorf("core: invalid reduce root %d", root)
	}
	if fold == nil {
		return nil, fmt.Errorf("core: nil fold function")
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return nil, fmt.Errorf("core: unknown action %q", action)
	}
	rootLoc := rt.Locality(root)
	futs := make([]*amt.Future[[][]byte], rt.Localities())
	for l := 0; l < rt.Localities(); l++ {
		futs[l] = rootLoc.CallID(l, id, args)
	}
	deadline := time.Now().Add(timeout)
	var acc [][]byte
	for l, f := range futs {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("core: reduce of %q timed out at locality %d", action, l)
		}
		partial, err := f.GetTimeout(remain)
		if err != nil {
			return nil, fmt.Errorf("core: reduce of %q at locality %d: %w", action, l, err)
		}
		if l == 0 {
			acc = partial
		} else {
			acc = fold(acc, partial)
		}
	}
	return acc, nil
}

// Gather invokes an action on every locality and returns the per-locality
// results indexed by locality id.
func (rt *Runtime) Gather(root int, timeout time.Duration, action string, args ...[]byte) ([][][]byte, error) {
	if root < 0 || root >= rt.Localities() {
		return nil, fmt.Errorf("core: invalid gather root %d", root)
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return nil, fmt.Errorf("core: unknown action %q", action)
	}
	rootLoc := rt.Locality(root)
	futs := make([]*amt.Future[[][]byte], rt.Localities())
	for l := 0; l < rt.Localities(); l++ {
		futs[l] = rootLoc.CallID(l, id, args)
	}
	out := make([][][]byte, rt.Localities())
	deadline := time.Now().Add(timeout)
	for l, f := range futs {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("core: gather of %q timed out at locality %d", action, l)
		}
		res, err := f.GetTimeout(remain)
		if err != nil {
			return nil, fmt.Errorf("core: gather of %q at locality %d: %w", action, l, err)
		}
		out[l] = res
	}
	return out, nil
}
