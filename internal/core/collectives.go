package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hpxgo/internal/amt"
)

// Tree-structured collectives built from actions and futures, the way HPX
// composes broadcasts and reductions from plain remote calls.
//
// The flat O(N) fan-outs this file used to contain made the root's injection
// queue the bottleneck at scale — exactly what the paper's stack was built
// to avoid. They survive as *Flat reference implementations (property tests
// compare against them byte for byte; the experiments harness measures them
// against the trees).
//
// The tree collectives are expressed as reserved relay actions over the
// ordinary Call/continuation machinery, so every tree hop is a plain parcel:
// it rides the sender-side aggregation layer and the zero-alloc datapath
// like any other traffic, and the fabric's ARQ gives each hop exactly-once
// delivery. A relay task may block on its children's futures freely — tasks
// are goroutines, so a blocked relay parks instead of occupying a worker.
//
// Topology: Broadcast, Reduce and Gather use the binomial tree in which the
// parent of root-relative rank r is r with its lowest set bit cleared. The
// subtree below rank r covers the contiguous rank range [r, r+lowbit(r)),
// which is what makes a deterministic fold order cheap: every subtree
// aggregate is a left fold over consecutive ranks. AllReduce uses
// recursive doubling (with the classic fold-in/fold-out pre- and post-phase
// for non-power-of-two N); AllToAll is a pairwise exchange in which node i
// sends to i+1, i+2, ... (mod N) so no destination is hit by every sender at
// once.
//
// Fold order: every reduction combines partials in ascending root-relative
// rank order — the root's own partial first, then (root+1) mod N, (root+2)
// mod N, ... The fold therefore must be associative (subtree aggregates are
// combined, not raw partials), but it need not be commutative, and the
// result is bit-deterministic regardless of message timing.

// FoldFunc combines an accumulated result with one partial (or with a
// subtree's folded aggregate). It must be associative; commutativity is not
// required.
type FoldFunc func(acc, partial [][]byte) [][]byte

// Collective kinds (wire header field; one reserved relay action each).
const (
	collKindBcast = iota + 1
	collKindReduce
	collKindGather
	collKindAllReduce
	collKindAllToAll
)

// collRuntime is the runtime-wide collective state embedded in Runtime:
// the reserved action ids, the fold table and the collective-id allocator.
type collRuntime struct {
	bcastID     uint32
	reduceID    uint32
	gatherID    uint32
	allReduceID uint32
	allToAllID  uint32
	dataID      uint32

	nextID atomic.Uint64

	// folds holds the FoldFunc of every in-flight reduction, keyed by a
	// per-call id carried in the relay header. Only the id crosses the
	// simulated wire; sharing the function table models every rank running
	// the same binary with the same registered operations.
	foldMu   sync.Mutex
	folds    map[uint64]FoldFunc
	nextFold uint64
}

// registerCollectiveActions reserves the relay and data-plane actions. Called
// from NewRuntime after the continuation and barrier actions.
func (rt *Runtime) registerCollectiveActions() {
	rt.coll.folds = make(map[uint64]FoldFunc)
	reserve := func(name string, fn ActionFunc) uint32 {
		id := uint32(len(rt.byID))
		rt.byID = append(rt.byID, fn)
		rt.names = append(rt.names, name)
		rt.byName[name] = id
		// Relay actions fan out further parcels and fold partials — not the
		// small-and-fast shape the inline lane is for.
		rt.inline = append(rt.inline, false)
		return id
	}
	rt.coll.bcastID = reserve("__coll_bcast", rt.collBcastAction)
	rt.coll.reduceID = reserve("__coll_reduce", rt.collReduceAction)
	rt.coll.gatherID = reserve("__coll_gather", rt.collGatherAction)
	rt.coll.allReduceID = reserve("__coll_allreduce", rt.collAllReduceAction)
	rt.coll.allToAllID = reserve("__coll_alltoall", rt.collAllToAllAction)
	rt.coll.dataID = reserve("__coll_data", rt.collDataAction)
}

// registerFold parks fold in the table for the duration of one collective.
func (rt *Runtime) registerFold(fold FoldFunc) uint64 {
	rt.coll.foldMu.Lock()
	rt.coll.nextFold++
	id := rt.coll.nextFold
	rt.coll.folds[id] = fold
	rt.coll.foldMu.Unlock()
	return id
}

func (rt *Runtime) lookupFold(id uint64) FoldFunc {
	rt.coll.foldMu.Lock()
	defer rt.coll.foldMu.Unlock()
	return rt.coll.folds[id]
}

func (rt *Runtime) dropFold(id uint64) {
	rt.coll.foldMu.Lock()
	delete(rt.coll.folds, id)
	rt.coll.foldMu.Unlock()
}

// ---------------------------------------------------------------------------
// Binomial-tree topology over root-relative ranks.

// lowbit returns the lowest set bit of r (r > 0).
func lowbit(r int) int { return r & -r }

// childMasks lists the offsets of root-relative rank rel's children in an
// N-node binomial tree, ascending. rel's children are rel+1, rel+2, rel+4,
// ... while the offset stays below lowbit(rel) (unbounded for the root) and
// the child exists. The subtree below rel covers ranks
// [rel, min(n, rel+lowbit(rel))) — a contiguous range.
func childMasks(rel, n int) []int {
	bound := n
	if rel != 0 {
		bound = lowbit(rel)
	}
	var masks []int
	for m := 1; m < bound && rel+m < n; m <<= 1 {
		masks = append(masks, m)
	}
	return masks
}

// ---------------------------------------------------------------------------
// Wire formats. Collective parcels are ordinary parcels; arg 0 carries a
// small fixed header and the rest are payload blobs.

// collHdr is the control header of a relay parcel.
type collHdr struct {
	kind       byte
	id         uint64 // unique per collective invocation
	root       uint32
	action     uint32 // user action (produce action for allreduce/alltoall)
	aux        uint32 // consume action (alltoall)
	fold       uint64 // fold-table id (reduce/allreduce)
	deadlineNs int64  // unix nanos; bounds every wait in the tree
}

const collHdrLen = 1 + 8 + 4 + 4 + 4 + 8 + 8

func encodeCollHdr(h collHdr) []byte {
	b := make([]byte, collHdrLen)
	b[0] = h.kind
	binary.LittleEndian.PutUint64(b[1:], h.id)
	binary.LittleEndian.PutUint32(b[9:], h.root)
	binary.LittleEndian.PutUint32(b[13:], h.action)
	binary.LittleEndian.PutUint32(b[17:], h.aux)
	binary.LittleEndian.PutUint64(b[21:], h.fold)
	binary.LittleEndian.PutUint64(b[29:], uint64(h.deadlineNs))
	return b
}

// splitCollArgs decodes the control header and returns the user payload.
func splitCollArgs(args [][]byte) (collHdr, [][]byte, error) {
	if len(args) == 0 || len(args[0]) != collHdrLen {
		return collHdr{}, nil, fmt.Errorf("malformed collective header")
	}
	b := args[0]
	h := collHdr{
		kind:       b[0],
		id:         binary.LittleEndian.Uint64(b[1:]),
		root:       binary.LittleEndian.Uint32(b[9:]),
		action:     binary.LittleEndian.Uint32(b[13:]),
		aux:        binary.LittleEndian.Uint32(b[17:]),
		fold:       binary.LittleEndian.Uint64(b[21:]),
		deadlineNs: int64(binary.LittleEndian.Uint64(b[29:])),
	}
	return h, args[1:], nil
}

// collDataHdr is the header of an unsolicited data-plane parcel (all-to-all
// block or allreduce round partial), routed into the destination's collBox.
type collDataHdr struct {
	id         uint64
	src        uint32
	key        uint32 // source rank (alltoall) or round tag (allreduce)
	deadlineNs int64
}

const collDataHdrLen = 8 + 4 + 4 + 8

func encodeCollData(h collDataHdr) []byte {
	b := make([]byte, collDataHdrLen)
	binary.LittleEndian.PutUint64(b, h.id)
	binary.LittleEndian.PutUint32(b[8:], h.src)
	binary.LittleEndian.PutUint32(b[12:], h.key)
	binary.LittleEndian.PutUint64(b[16:], uint64(h.deadlineNs))
	return b
}

func decodeCollData(b []byte) (collDataHdr, error) {
	if len(b) != collDataHdrLen {
		return collDataHdr{}, fmt.Errorf("malformed collective data header")
	}
	return collDataHdr{
		id:         binary.LittleEndian.Uint64(b),
		src:        binary.LittleEndian.Uint32(b[8:]),
		key:        binary.LittleEndian.Uint32(b[12:]),
		deadlineNs: int64(binary.LittleEndian.Uint64(b[16:])),
	}, nil
}

// Relay replies: blob 0 is a status byte string (1 = ok; 0 followed by a
// message = error), the rest is the payload.

func collOK(payload [][]byte) [][]byte {
	return append([][]byte{{1}}, payload...)
}

func collErrf(format string, a ...any) [][]byte {
	return [][]byte{append([]byte{0}, fmt.Sprintf(format, a...)...)}
}

// parseCollReply unwraps a relay reply into its payload.
func parseCollReply(res [][]byte, err error) ([][]byte, error) {
	if err != nil {
		return nil, err
	}
	if len(res) == 0 || len(res[0]) == 0 {
		return nil, fmt.Errorf("malformed collective reply")
	}
	if res[0][0] == 0 {
		return nil, fmt.Errorf("%s", res[0][1:])
	}
	return res[1:], nil
}

// untilNs converts an absolute unix-nano deadline to a wait budget.
func untilNs(deadlineNs int64) time.Duration {
	return time.Until(time.Unix(0, deadlineNs))
}

// ---------------------------------------------------------------------------
// Collective inboxes: per-locality buffers for unsolicited data-plane
// messages keyed by (collective id, key). A block may arrive before its
// receiver has even entered the collective (its start relay is still
// propagating down the tree), so puts get-or-create the box and waits park
// on a per-key channel.

type collBox struct {
	mu         sync.Mutex
	deadlineNs int64
	msgs       map[uint32][][]byte
	waiters    map[uint32]chan struct{}
}

// collWaiterPool recycles wait's one-shot waiter channels. Wakers signal
// with a non-blocking send into the buffered(1) channel instead of close,
// so a consumed channel goes straight back to the pool: a collective round
// parks and wakes without allocating.
var collWaiterPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// collTimerPool recycles wait's deadline timers (go>=1.23 Reset/Stop are
// race-free, so a stopped timer can be rearmed directly).
var collTimerPool sync.Pool

func getCollTimer(d time.Duration) *time.Timer {
	if v := collTimerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putCollTimer(t *time.Timer) {
	t.Stop()
	collTimerPool.Put(t)
}

// wakeWaiter signals ch's parked waiter. Each waiter parks at most once per
// channel and the channel is buffered(1), so the send never blocks; callers
// hold b.mu, which orders the send against the timeout path's map check.
func wakeWaiter(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// collbox returns (creating if needed) the inbox of collective id.
func (l *Locality) collbox(id uint64, deadlineNs int64) *collBox {
	l.maybeSweepCollBoxes(time.Now().UnixNano())
	l.collMu.Lock()
	b := l.collBoxes[id]
	if b == nil {
		b = &collBox{
			deadlineNs: deadlineNs,
			msgs:       make(map[uint32][][]byte),
			waiters:    make(map[uint32]chan struct{}),
		}
		l.collBoxes[id] = b
	}
	l.collMu.Unlock()
	return b
}

// dropCollbox removes a finished collective's inbox.
func (l *Locality) dropCollbox(id uint64) {
	l.collMu.Lock()
	delete(l.collBoxes, id)
	l.collMu.Unlock()
}

// maybeSweepCollBoxes reaps inboxes of abandoned collectives (driver timed
// out before this node's participant task consumed them). Rate-gated to one
// pass per second; boxes get a generous grace period past their deadline so
// a slow participant never loses live data.
func (l *Locality) maybeSweepCollBoxes(nowNs int64) {
	next := l.collSweepNs.Load()
	if nowNs < next || !l.collSweepNs.CompareAndSwap(next, nowNs+int64(time.Second)) {
		return
	}
	const graceNs = int64(5 * time.Second)
	l.collMu.Lock()
	for id, b := range l.collBoxes {
		b.mu.Lock()
		expired := b.deadlineNs > 0 && nowNs > b.deadlineNs+graceNs
		if expired {
			for k, ch := range b.waiters {
				delete(b.waiters, k)
				wakeWaiter(ch)
			}
			delete(l.collBoxes, id)
		}
		b.mu.Unlock()
	}
	l.collMu.Unlock()
}

// put stores one keyed message and wakes its waiter. blobs must already be
// detached from any pooled receive buffer.
func (b *collBox) put(key uint32, blobs [][]byte) {
	if blobs == nil {
		blobs = [][]byte{}
	}
	b.mu.Lock()
	b.msgs[key] = blobs
	if ch := b.waiters[key]; ch != nil {
		delete(b.waiters, key)
		wakeWaiter(ch)
	}
	b.mu.Unlock()
}

// wait blocks until the keyed message arrives or the deadline passes.
func (b *collBox) wait(key uint32, deadlineNs int64) ([][]byte, error) {
	b.mu.Lock()
	if m, ok := b.msgs[key]; ok {
		delete(b.msgs, key)
		b.mu.Unlock()
		return m, nil
	}
	ch := collWaiterPool.Get().(chan struct{})
	b.waiters[key] = ch
	b.mu.Unlock()

	t := getCollTimer(untilNs(deadlineNs))
	select {
	case <-ch:
		putCollTimer(t)
		collWaiterPool.Put(ch) // tick consumed: channel is empty again
	case <-t.C:
		putCollTimer(t)
		b.mu.Lock()
		if b.waiters[key] == ch {
			// No waker claimed the channel; removing it under b.mu means no
			// send can happen later (wakers only send while it is mapped).
			delete(b.waiters, key)
		} else {
			// A waker won the race: its send completed before it released
			// b.mu, so the pending token is there to drain.
			<-ch
		}
		m, ok := b.msgs[key]
		delete(b.msgs, key)
		b.mu.Unlock()
		collWaiterPool.Put(ch)
		if ok {
			return m, nil // arrived in the race window
		}
		return nil, fmt.Errorf("timed out waiting for collective data (key %d)", key)
	}
	b.mu.Lock()
	m, ok := b.msgs[key]
	delete(b.msgs, key)
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("collective inbox swept (key %d)", key)
	}
	return m, nil
}

// detachBlobs returns a GC-safe copy of blobs: a fresh outer slice, with
// blobs below the zero-copy threshold copied out of (possibly pooled)
// receive buffers. Blobs at or above the threshold are zero-copy chunks —
// plain GC memory the receive path never pools — and stay aliased.
func (l *Locality) detachBlobs(blobs [][]byte) [][]byte {
	out := append(make([][]byte, 0, len(blobs)), blobs...)
	sanitizeInlineArgs(out, l.rt.cfg.ZeroCopyThreshold)
	return out
}

// ---------------------------------------------------------------------------
// Tree relay plumbing shared by the relay actions.

// childCall is one forwarded subtree, ascending by child rank so reductions
// fold deterministically.
type childCall struct {
	rel int // child's root-relative rank
	fut *amt.Future[[][]byte]
}

// forwardTree relays the control args to this node's binomial-tree children
// under relay action aid. Children are contacted largest-subtree-first (the
// deepest branch starts earliest) but returned in ascending rank order. The
// control args are detached before forwarding: a child's parcel may be
// encoded after this relay task returns on an error path.
func (l *Locality) forwardTree(root int, aid uint32, args [][]byte) []childCall {
	n := l.rt.Localities()
	rel := (l.id - root + n) % n
	masks := childMasks(rel, n)
	if len(masks) == 0 {
		return nil
	}
	fwd := l.detachBlobs(args)
	calls := make([]childCall, len(masks))
	for i := len(masks) - 1; i >= 0; i-- {
		childRel := rel + masks[i]
		dst := (root + childRel) % n
		calls[i] = childCall{rel: childRel, fut: l.CallID(dst, aid, fwd)}
	}
	return calls
}

// awaitAcks waits for every child subtree to acknowledge completion.
func awaitAcks(calls []childCall, deadlineNs int64) error {
	for _, c := range calls {
		if _, err := parseCollReply(c.fut.GetTimeout(untilNs(deadlineNs))); err != nil {
			return fmt.Errorf("subtree at rank %d: %w", c.rel, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Relay actions.

// collBcastAction relays a broadcast down the binomial tree, runs the user
// action locally, and acknowledges once its whole subtree has run it.
func (rt *Runtime) collBcastAction(loc *Locality, args [][]byte) [][]byte {
	h, user, err := splitCollArgs(args)
	if err != nil {
		return collErrf("locality %d: %v", loc.id, err)
	}
	fn := rt.action(h.action)
	if fn == nil {
		return collErrf("locality %d: unknown action id %d", loc.id, h.action)
	}
	calls := loc.forwardTree(int(h.root), rt.coll.bcastID, args)
	fn(loc, user)
	if err := awaitAcks(calls, h.deadlineNs); err != nil {
		return collErrf("locality %d: %v", loc.id, err)
	}
	return collOK(nil)
}

// collReduceAction computes this subtree's aggregate: the local partial
// folded with each child subtree's aggregate in ascending rank order.
func (rt *Runtime) collReduceAction(loc *Locality, args [][]byte) [][]byte {
	h, user, err := splitCollArgs(args)
	if err != nil {
		return collErrf("locality %d: %v", loc.id, err)
	}
	fn := rt.action(h.action)
	if fn == nil {
		return collErrf("locality %d: unknown action id %d", loc.id, h.action)
	}
	fold := rt.lookupFold(h.fold)
	if fold == nil {
		return collErrf("locality %d: reduce fold %d no longer registered", loc.id, h.fold)
	}
	calls := loc.forwardTree(int(h.root), rt.coll.reduceID, args)
	acc := fn(loc, user)
	for _, c := range calls {
		part, err := parseCollReply(c.fut.GetTimeout(untilNs(h.deadlineNs)))
		if err != nil {
			return collErrf("locality %d: subtree at rank %d: %v", loc.id, c.rel, err)
		}
		acc = fold(acc, part)
	}
	return collOK(acc)
}

// collGatherAction returns the per-locality results of its whole subtree as
// a list of encoded (locality, blobs) records.
func (rt *Runtime) collGatherAction(loc *Locality, args [][]byte) [][]byte {
	h, user, err := splitCollArgs(args)
	if err != nil {
		return collErrf("locality %d: %v", loc.id, err)
	}
	fn := rt.action(h.action)
	if fn == nil {
		return collErrf("locality %d: unknown action id %d", loc.id, h.action)
	}
	calls := loc.forwardTree(int(h.root), rt.coll.gatherID, args)
	out := collOK([][]byte{encodeGatherRec(loc.id, fn(loc, user))})
	for _, c := range calls {
		recs, err := parseCollReply(c.fut.GetTimeout(untilNs(h.deadlineNs)))
		if err != nil {
			return collErrf("locality %d: subtree at rank %d: %v", loc.id, c.rel, err)
		}
		out = append(out, recs...)
	}
	return out
}

// encodeGatherRec packs one locality's result blobs:
// u32 locality, u32 blob count, then (u32 length, bytes) per blob.
func encodeGatherRec(locID int, blobs [][]byte) []byte {
	size := 8
	for _, b := range blobs {
		size += 4 + len(b)
	}
	rec := make([]byte, 8, size)
	binary.LittleEndian.PutUint32(rec, uint32(locID))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(blobs)))
	for _, b := range blobs {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(b)))
		rec = append(rec, l[:]...)
		rec = append(rec, b...)
	}
	return rec
}

func decodeGatherRec(rec []byte) (int, [][]byte, error) {
	if len(rec) < 8 {
		return 0, nil, fmt.Errorf("short gather record")
	}
	locID := int(binary.LittleEndian.Uint32(rec))
	n := int(binary.LittleEndian.Uint32(rec[4:]))
	blobs := make([][]byte, 0, n)
	off := 8
	for i := 0; i < n; i++ {
		if off+4 > len(rec) {
			return 0, nil, fmt.Errorf("truncated gather record")
		}
		l := int(binary.LittleEndian.Uint32(rec[off:]))
		off += 4
		if off+l > len(rec) {
			return 0, nil, fmt.Errorf("truncated gather record blob")
		}
		blobs = append(blobs, rec[off:off+l])
		off += l
	}
	return locID, blobs, nil
}

// Allreduce round tags (collBox keys). Rounds 0..29 use their round index.
const (
	arKeyPre  = 1<<30 + 0 // fold-in partial from the odd extra rank
	arKeyPost = 1<<30 + 1 // final result handed back to the extra rank
)

// collAllReduceAction runs one node's part of a recursive-doubling
// allreduce rooted (for start-relay and ack purposes) at locality 0.
//
// For N not a power of two, let p2 be the largest power of two <= N and
// rem = N - p2. Ranks below 2*rem pair up: the odd rank folds its partial
// into its even neighbour and sits out; the surviving 2*rem/2 + (N - 2*rem)
// = p2 participants run log2(p2) exchange rounds on re-indexed ranks, each
// always holding the left fold of a contiguous block of original ranks; the
// even neighbour finally hands the full result back to the odd one. Every
// node ends with the complete fold; the root's copy is returned to the
// driver.
func (rt *Runtime) collAllReduceAction(loc *Locality, args [][]byte) [][]byte {
	h, user, err := splitCollArgs(args)
	if err != nil {
		return collErrf("locality %d: %v", loc.id, err)
	}
	fn := rt.action(h.action)
	if fn == nil {
		return collErrf("locality %d: unknown action id %d", loc.id, h.action)
	}
	fold := rt.lookupFold(h.fold)
	if fold == nil {
		return collErrf("locality %d: allreduce fold %d no longer registered", loc.id, h.fold)
	}
	n := rt.Localities()
	box := loc.collbox(h.id, h.deadlineNs)
	defer loc.dropCollbox(h.id)
	calls := loc.forwardTree(int(h.root), rt.coll.allReduceID, args)

	acc := fn(loc, user)
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	rem := n - p2
	r := loc.id
	dh := collDataHdr{id: h.id, src: uint32(r), deadlineNs: h.deadlineNs}
	send := func(dst int, key uint32, blobs [][]byte) error {
		dh.key = key
		return loc.ApplyID(dst, rt.coll.dataID,
			append([][]byte{encodeCollData(dh)}, loc.detachBlobs(blobs)...))
	}

	participant, rp := true, 0
	switch {
	case r < 2*rem && r%2 == 1:
		// Fold-in: hand the partial to the left neighbour, wait for the
		// final result in the post phase.
		if err := send(r-1, arKeyPre, acc); err != nil {
			return collErrf("locality %d: fold-in: %v", loc.id, err)
		}
		participant = false
	case r < 2*rem:
		pre, err := box.wait(arKeyPre, h.deadlineNs)
		if err != nil {
			return collErrf("locality %d: fold-in from %d: %v", loc.id, r+1, err)
		}
		acc = fold(acc, pre) // blocks [r, r+1) then [r+1, r+2): rank order
		rp = r / 2
	default:
		rp = r - rem
	}

	if participant {
		round := uint32(0)
		for mask := 1; mask < p2; mask <<= 1 {
			pp := rp ^ mask
			partner := pp + rem
			if pp < rem {
				partner = 2 * pp
			}
			if err := send(partner, round, acc); err != nil {
				return collErrf("locality %d: round %d: %v", loc.id, round, err)
			}
			other, err := box.wait(round, h.deadlineNs)
			if err != nil {
				return collErrf("locality %d: round %d from %d: %v", loc.id, round, partner, err)
			}
			if pp > rp {
				acc = fold(acc, other) // partner holds the adjacent upper block
			} else {
				acc = fold(other, acc) // partner holds the adjacent lower block
			}
			round++
		}
		if r < 2*rem {
			if err := send(r+1, arKeyPost, acc); err != nil {
				return collErrf("locality %d: fold-out: %v", loc.id, err)
			}
		}
	} else {
		final, err := box.wait(arKeyPost, h.deadlineNs)
		if err != nil {
			return collErrf("locality %d: fold-out from %d: %v", loc.id, r-1, err)
		}
		acc = final
	}

	if err := awaitAcks(calls, h.deadlineNs); err != nil {
		return collErrf("locality %d: %v", loc.id, err)
	}
	return collOK(acc)
}

// collAllToAllAction runs one node's part of a pairwise-exchange all-to-all:
// produce the N per-destination blocks, send block d to destination d in the
// staggered order me+1, me+2, ... (so no destination takes N simultaneous
// senders), collect the N-1 inbound blocks, and hand them — indexed by
// source — to the consume action.
func (rt *Runtime) collAllToAllAction(loc *Locality, args [][]byte) [][]byte {
	h, user, err := splitCollArgs(args)
	if err != nil {
		return collErrf("locality %d: %v", loc.id, err)
	}
	produce := rt.action(h.action)
	consume := rt.action(h.aux)
	if produce == nil || consume == nil {
		return collErrf("locality %d: unknown produce/consume action (%d/%d)", loc.id, h.action, h.aux)
	}
	n := rt.Localities()
	box := loc.collbox(h.id, h.deadlineNs)
	defer loc.dropCollbox(h.id)
	calls := loc.forwardTree(int(h.root), rt.coll.allToAllID, args)

	blocks := produce(loc, user)
	if len(blocks) != n {
		return collErrf("locality %d: alltoall produce returned %d blocks, want %d", loc.id, len(blocks), n)
	}
	dh := collDataHdr{id: h.id, src: uint32(loc.id), key: uint32(loc.id), deadlineNs: h.deadlineNs}
	hdr := encodeCollData(dh)
	for k := 1; k < n; k++ {
		dst := (loc.id + k) % n
		blk := loc.detachBlobs(blocks[dst : dst+1])
		if err := loc.ApplyID(dst, rt.coll.dataID, [][]byte{hdr, blk[0]}); err != nil {
			return collErrf("locality %d: send to %d: %v", loc.id, dst, err)
		}
	}
	inputs := make([][]byte, n)
	inputs[loc.id] = blocks[loc.id]
	for k := 1; k < n; k++ {
		src := (loc.id - k + n) % n
		msg, err := box.wait(uint32(src), h.deadlineNs)
		if err != nil {
			return collErrf("locality %d: recv from %d: %v", loc.id, src, err)
		}
		if len(msg) > 0 {
			inputs[src] = msg[0]
		}
	}
	consume(loc, inputs)
	if err := awaitAcks(calls, h.deadlineNs); err != nil {
		return collErrf("locality %d: %v", loc.id, err)
	}
	return collOK(nil)
}

// collDataAction routes an unsolicited data-plane parcel into the target
// collective's inbox, creating it if the start relay has not arrived yet.
func (rt *Runtime) collDataAction(loc *Locality, args [][]byte) [][]byte {
	if len(args) == 0 {
		return nil
	}
	dh, err := decodeCollData(args[0])
	if err != nil {
		loc.decodeErrors.Add(1)
		return nil
	}
	loc.collbox(dh.id, dh.deadlineNs).put(dh.key, loc.detachBlobs(args[1:]))
	return nil
}

// ---------------------------------------------------------------------------
// Driver API.

// newCollHdr allocates a collective id and stamps the shared header fields.
func (rt *Runtime) newCollHdr(kind byte, root int, timeout time.Duration) collHdr {
	return collHdr{
		kind:       kind,
		id:         rt.coll.nextID.Add(1),
		root:       uint32(root),
		deadlineNs: time.Now().Add(timeout).UnixNano(),
	}
}

// startCollective invokes relay action aid on the root locality and waits
// for the tree to complete, returning the root relay's payload.
func (rt *Runtime) startCollective(h collHdr, aid uint32, timeout time.Duration, args [][]byte) ([][]byte, error) {
	ctl := append([][]byte{encodeCollHdr(h)}, args...)
	root := int(h.root)
	f := rt.locs[root].CallID(root, aid, ctl)
	return parseCollReply(f.GetTimeout(timeout))
}

// Broadcast invokes a registered action on every locality, relayed down a
// binomial tree rooted at locality `from` (log N injection steps per node
// instead of N at the root), and waits until the whole tree has run it.
func (rt *Runtime) Broadcast(from int, timeout time.Duration, action string, args ...[]byte) error {
	if from < 0 || from >= rt.Localities() {
		return fmt.Errorf("core: invalid broadcast source %d", from)
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return fmt.Errorf("core: unknown action %q", action)
	}
	rt.tracer.Emit("coll", "bcast", int64(rt.Localities()))
	h := rt.newCollHdr(collKindBcast, from, timeout)
	h.action = id
	if _, err := rt.startCollective(h, rt.coll.bcastID, timeout, args); err != nil {
		return fmt.Errorf("core: broadcast of %q: %w", action, err)
	}
	return nil
}

// Reduce invokes a registered action on every locality and folds the
// results up a binomial tree rooted at `root`, seeded with the root-local
// result. Partials are combined in ascending root-relative rank order —
// root first, then (root+1) mod N, (root+2) mod N, ... — so the result is
// deterministic for non-commutative folds. Because subtree aggregates are
// folded (not raw partials), the fold must be associative.
func (rt *Runtime) Reduce(root int, timeout time.Duration, action string,
	fold FoldFunc, args ...[]byte) ([][]byte, error) {
	if root < 0 || root >= rt.Localities() {
		return nil, fmt.Errorf("core: invalid reduce root %d", root)
	}
	if fold == nil {
		return nil, fmt.Errorf("core: nil fold function")
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return nil, fmt.Errorf("core: unknown action %q", action)
	}
	rt.tracer.Emit("coll", "reduce", int64(rt.Localities()))
	h := rt.newCollHdr(collKindReduce, root, timeout)
	h.action = id
	h.fold = rt.registerFold(fold)
	defer rt.dropFold(h.fold)
	acc, err := rt.startCollective(h, rt.coll.reduceID, timeout, args)
	if err != nil {
		return nil, fmt.Errorf("core: reduce of %q: %w", action, err)
	}
	return acc, nil
}

// Gather invokes an action on every locality, collects the per-locality
// results up a binomial tree rooted at `root`, and returns them indexed by
// locality id.
func (rt *Runtime) Gather(root int, timeout time.Duration, action string, args ...[]byte) ([][][]byte, error) {
	if root < 0 || root >= rt.Localities() {
		return nil, fmt.Errorf("core: invalid gather root %d", root)
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return nil, fmt.Errorf("core: unknown action %q", action)
	}
	rt.tracer.Emit("coll", "gather", int64(rt.Localities()))
	h := rt.newCollHdr(collKindGather, root, timeout)
	h.action = id
	recs, err := rt.startCollective(h, rt.coll.gatherID, timeout, args)
	if err != nil {
		return nil, fmt.Errorf("core: gather of %q: %w", action, err)
	}
	out := make([][][]byte, rt.Localities())
	seen := 0
	for _, rec := range recs {
		locID, blobs, err := decodeGatherRec(rec)
		if err != nil {
			return nil, fmt.Errorf("core: gather of %q: %w", action, err)
		}
		if locID < 0 || locID >= len(out) {
			return nil, fmt.Errorf("core: gather of %q: record for invalid locality %d", action, locID)
		}
		out[locID] = blobs
		seen++
	}
	if seen != len(out) {
		return nil, fmt.Errorf("core: gather of %q: %d/%d localities reported", action, seen, len(out))
	}
	return out, nil
}

// AllReduce invokes a registered action on every locality and folds the
// results with a recursive-doubling exchange (log N rounds; every locality
// ends holding the full result), returning the folded result. The fold
// combines partials in ascending locality order (0, 1, ..., N-1) and must
// be associative; commutativity is not required.
func (rt *Runtime) AllReduce(timeout time.Duration, action string, fold FoldFunc, args ...[]byte) ([][]byte, error) {
	if fold == nil {
		return nil, fmt.Errorf("core: nil fold function")
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return nil, fmt.Errorf("core: unknown action %q", action)
	}
	rt.tracer.Emit("coll", "allreduce", int64(rt.Localities()))
	h := rt.newCollHdr(collKindAllReduce, 0, timeout)
	h.action = id
	h.fold = rt.registerFold(fold)
	defer rt.dropFold(h.fold)
	acc, err := rt.startCollective(h, rt.coll.allReduceID, timeout, args)
	if err != nil {
		return nil, fmt.Errorf("core: allreduce of %q: %w", action, err)
	}
	return acc, nil
}

// AllToAll redistributes data between all localities with a pairwise
// exchange. On every locality the `produce` action is invoked with args and
// must return exactly N blobs — blob d is the block destined for locality d.
// Once a locality holds all N inbound blocks (its own included) the
// `consume` action is invoked with N args, arg s being the block sent by
// locality s. AllToAll returns once every locality has consumed.
func (rt *Runtime) AllToAll(timeout time.Duration, produce, consume string, args ...[]byte) error {
	pid, ok := rt.ActionID(produce)
	if !ok {
		return fmt.Errorf("core: unknown action %q", produce)
	}
	cid, ok := rt.ActionID(consume)
	if !ok {
		return fmt.Errorf("core: unknown action %q", consume)
	}
	rt.tracer.Emit("coll", "alltoall", int64(rt.Localities()))
	h := rt.newCollHdr(collKindAllToAll, 0, timeout)
	h.action = pid
	h.aux = cid
	if _, err := rt.startCollective(h, rt.coll.allToAllID, timeout, args); err != nil {
		return fmt.Errorf("core: alltoall %q/%q: %w", produce, consume, err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Flat O(N) reference implementations. These are the original fan-out
// collectives: every parcel originates at the root, whose injection queue
// serializes the whole operation. They remain as the semantic reference the
// tree implementations are property-tested against, and as the baseline the
// experiments harness measures the trees' ~log N scaling against.

// BroadcastFlat invokes an action on every locality directly from `from`
// and waits for all of them — the O(N) reference for Broadcast.
func (rt *Runtime) BroadcastFlat(from int, timeout time.Duration, action string, args ...[]byte) error {
	if from < 0 || from >= rt.Localities() {
		return fmt.Errorf("core: invalid broadcast source %d", from)
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return fmt.Errorf("core: unknown action %q", action)
	}
	src := rt.Locality(from)
	futs := make([]*amt.Future[[][]byte], rt.Localities())
	for l := 0; l < rt.Localities(); l++ {
		futs[l] = src.CallID(l, id, args)
	}
	deadline := time.Now().Add(timeout)
	for l, f := range futs {
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("core: broadcast of %q timed out at locality %d", action, l)
		}
		if _, err := f.GetTimeout(remain); err != nil {
			return fmt.Errorf("core: broadcast of %q to locality %d: %w", action, l, err)
		}
	}
	return nil
}

// ReduceFlat invokes an action on every locality directly from `root` and
// folds the results there — the O(N) reference for Reduce. The fold is
// seeded with the root-local result and applied in ascending root-relative
// rank order, matching Reduce exactly.
func (rt *Runtime) ReduceFlat(root int, timeout time.Duration, action string,
	fold FoldFunc, args ...[]byte) ([][]byte, error) {
	if root < 0 || root >= rt.Localities() {
		return nil, fmt.Errorf("core: invalid reduce root %d", root)
	}
	if fold == nil {
		return nil, fmt.Errorf("core: nil fold function")
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return nil, fmt.Errorf("core: unknown action %q", action)
	}
	n := rt.Localities()
	rootLoc := rt.Locality(root)
	futs := make([]*amt.Future[[][]byte], n)
	for k := 0; k < n; k++ {
		futs[k] = rootLoc.CallID((root+k)%n, id, args)
	}
	deadline := time.Now().Add(timeout)
	var acc [][]byte
	for k, f := range futs {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("core: reduce of %q timed out at locality %d", action, (root+k)%n)
		}
		partial, err := f.GetTimeout(remain)
		if err != nil {
			return nil, fmt.Errorf("core: reduce of %q at locality %d: %w", action, (root+k)%n, err)
		}
		if k == 0 {
			acc = partial // the root's own partial seeds the fold
		} else {
			acc = fold(acc, partial)
		}
	}
	return acc, nil
}

// GatherFlat invokes an action on every locality directly from `root` and
// returns the per-locality results — the O(N) reference for Gather.
func (rt *Runtime) GatherFlat(root int, timeout time.Duration, action string, args ...[]byte) ([][][]byte, error) {
	if root < 0 || root >= rt.Localities() {
		return nil, fmt.Errorf("core: invalid gather root %d", root)
	}
	id, ok := rt.ActionID(action)
	if !ok {
		return nil, fmt.Errorf("core: unknown action %q", action)
	}
	rootLoc := rt.Locality(root)
	futs := make([]*amt.Future[[][]byte], rt.Localities())
	for l := 0; l < rt.Localities(); l++ {
		futs[l] = rootLoc.CallID(l, id, args)
	}
	out := make([][][]byte, rt.Localities())
	deadline := time.Now().Add(timeout)
	for l, f := range futs {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("core: gather of %q timed out at locality %d", action, l)
		}
		res, err := f.GetTimeout(remain)
		if err != nil {
			return nil, fmt.Errorf("core: gather of %q at locality %d: %w", action, l, err)
		}
		out[l] = res
	}
	return out, nil
}

// AllReduceFlat is the O(N) reference for AllReduce: a flat reduce to
// locality 0 followed by a flat broadcast of the folded result (to the
// reserved no-op action, so the traffic shape matches a real flat
// allreduce: N partials in, N results out, all through one root).
func (rt *Runtime) AllReduceFlat(timeout time.Duration, action string, fold FoldFunc, args ...[]byte) ([][]byte, error) {
	deadline := time.Now().Add(timeout)
	acc, err := rt.ReduceFlat(0, timeout, action, fold, args...)
	if err != nil {
		return nil, err
	}
	remain := time.Until(deadline)
	if remain <= 0 {
		return nil, fmt.Errorf("core: allreduce of %q timed out after reduce phase", action)
	}
	if err := rt.BroadcastFlat(0, remain, barrierActionName, acc...); err != nil {
		return nil, err
	}
	return acc, nil
}
