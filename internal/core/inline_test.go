package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestInlineDeliveryRunsToCompletion: a bundle of inline-hinted small
// parcels executes synchronously on the delivering goroutine — by the time
// deliver returns, every action ran and the message owner is released.
func TestInlineDeliveryRunsToCompletion(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Uint64
	act := rt.MustRegisterInlineAction("inline_noop", func(*Locality, [][]byte) [][]byte {
		ran.Add(1)
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	const bundle = 8
	m := benchBundle(bundle, 64, act)
	owner := &stubOwner{}
	m.Owner = owner
	l.deliver(m)
	if got := ran.Load(); got != bundle {
		t.Fatalf("after deliver returned: %d of %d inline actions ran", got, bundle)
	}
	if got := owner.releases.Load(); got != 1 {
		t.Fatalf("owner releases = %d, want 1 (inline batch completed)", got)
	}
	if got := l.InlineExecuted(); got != bundle {
		t.Fatalf("InlineExecuted = %d, want %d", got, bundle)
	}
	if got := l.sched.InlineExecuted(); got != bundle {
		t.Fatalf("scheduler InlineExecuted = %d, want %d", got, bundle)
	}
	if txt := rt.StatsText(); !strings.Contains(txt, "inline lane") {
		t.Fatalf("StatsText does not surface the inline counters:\n%s", txt)
	}
}

// TestInlineDisabled: Config.InlineBudget < 0 restores spawn-always
// delivery even for hinted actions.
func TestInlineDisabled(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci", InlineBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Uint64
	act := rt.MustRegisterInlineAction("inline_off_noop", func(*Locality, [][]byte) [][]byte {
		ran.Add(1)
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	l.deliver(benchBundle(8, 64, act))
	for ran.Load() < 8 {
		runtime.Gosched()
	}
	if got := l.InlineExecuted(); got != 0 {
		t.Fatalf("InlineExecuted = %d with InlineBudget -1, want 0", got)
	}
}

// TestInlineBudgetCapsPerMessage: with a static budget of 1, exactly one
// parcel per message runs inline and the rest spawn (no spill — partition,
// not demotion).
func TestInlineBudgetCapsPerMessage(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci", InlineBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Uint64
	act := rt.MustRegisterInlineAction("inline_one_noop", func(*Locality, [][]byte) [][]byte {
		ran.Add(1)
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	const msgs, bundle = 5, 8
	for i := 0; i < msgs; i++ {
		l.deliver(benchBundle(bundle, 64, act))
	}
	for ran.Load() < msgs*bundle {
		runtime.Gosched()
	}
	if got := l.InlineExecuted(); got != msgs {
		t.Fatalf("InlineExecuted = %d, want %d (budget 1 per message)", got, msgs)
	}
	if got := l.InlineSpilled(); got != 0 {
		t.Fatalf("InlineSpilled = %d, want 0 (under-budget partition is not a spill)", got)
	}
}

// TestInlineHeavyActionDemoted is the safety escape: an inline-hinted
// action that in fact runs long first trips the per-message time cap (the
// rest of its batch demotes to spawned tasks mid-flight), then loses
// eligibility entirely once its service-time EWMA crosses the heavy
// ceiling — one slow action cannot keep stalling the completion drain.
func TestInlineHeavyActionDemoted(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Uint64
	act := rt.MustRegisterInlineAction("inline_heavy", func(*Locality, [][]byte) [][]byte {
		time.Sleep(300 * time.Microsecond) // far above the 20µs heavy ceiling
		ran.Add(1)
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	const bundle = 4
	l.deliver(benchBundle(bundle, 64, act))
	for ran.Load() < bundle {
		runtime.Gosched()
	}
	// The first run exceeds the 100µs time cap, so the remaining three demote.
	if got := l.InlineSpilled(); got == 0 {
		t.Fatal("time cap never demoted a heavy inline batch")
	}
	inlineAfterFirst := l.InlineExecuted()
	if inlineAfterFirst == 0 {
		t.Fatal("no inline run recorded for the first heavy parcel")
	}
	// The EWMA now knows the action is heavy: further messages spawn
	// everything.
	for i := 0; i < 3; i++ {
		l.deliver(benchBundle(bundle, 64, act))
	}
	for ran.Load() < 4*bundle {
		runtime.Gosched()
	}
	if got := l.InlineExecuted(); got != inlineAfterFirst {
		t.Fatalf("heavy action still ran inline after EWMA learned it: %d -> %d", inlineAfterFirst, got)
	}
}

// TestInlineVsSpawnEquivalence is the property test: the same randomized
// Apply/Call workload produces identical observable results with the inline
// lane enabled and disabled — same per-id execution counts (exactly once),
// same Call echoes. The lanes may differ in scheduling only.
func TestInlineVsSpawnEquivalence(t *testing.T) {
	type outcome struct {
		counts map[uint32]int
		echoes int
	}
	run := func(t *testing.T, inlineBudget int, seed int64) outcome {
		t.Helper()
		rt, err := NewRuntime(Config{
			Localities:         2,
			WorkersPerLocality: 2,
			Parcelport:         "lci_agg",
			InlineBudget:       inlineBudget,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Shutdown()
		var mu sync.Mutex
		counts := make(map[uint32]int)
		sink := rt.MustRegisterInlineAction("equiv_sink", func(loc *Locality, args [][]byte) [][]byte {
			if len(args) >= 1 && len(args[0]) >= 4 {
				id := binary.LittleEndian.Uint32(args[0])
				mu.Lock()
				counts[id]++
				mu.Unlock()
			}
			return nil
		})
		echo := rt.MustRegisterInlineAction("equiv_echo", func(loc *Locality, args [][]byte) [][]byte {
			return args
		})
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		l := rt.Locality(0)
		rng := rand.New(rand.NewSource(seed))
		const ops = 400
		echoes := 0
		var futs []func() error
		for i := 0; i < ops; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				idBuf := make([]byte, 4+rng.Intn(64))
				binary.LittleEndian.PutUint32(idBuf, uint32(i))
				if err := l.ApplyID(1, sink, [][]byte{idBuf}); err != nil {
					t.Fatal(err)
				}
			default:
				payload := make([]byte, 1+rng.Intn(128))
				rng.Read(payload)
				f := l.CallID(1, echo, [][]byte{payload})
				futs = append(futs, func() error {
					res, err := f.GetTimeout(30 * time.Second)
					if err != nil {
						return err
					}
					if len(res) != 1 || !bytes.Equal(res[0], payload) {
						return fmt.Errorf("echo mismatch: got %d blobs", len(res))
					}
					return nil
				})
				echoes++
			}
		}
		for _, wait := range futs {
			if err := wait(); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		want := 0
		mu.Lock()
		want = len(counts)
		mu.Unlock()
		_ = want
		for {
			mu.Lock()
			total := 0
			for _, c := range counts {
				total += c
			}
			done := total >= ops-echoes
			mu.Unlock()
			if done || time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
		}
		if inlineBudget >= 0 {
			if rt.Locality(1).InlineExecuted() == 0 {
				t.Fatal("inline-enabled run executed nothing inline")
			}
		} else if got := rt.Locality(1).InlineExecuted(); got != 0 {
			t.Fatalf("inline-disabled run executed %d inline", got)
		}
		mu.Lock()
		defer mu.Unlock()
		out := outcome{counts: make(map[uint32]int, len(counts)), echoes: echoes}
		for k, v := range counts {
			out.counts[k] = v
		}
		return out
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inl := run(t, 0, seed)
			spawn := run(t, -1, seed)
			if inl.echoes != spawn.echoes {
				t.Fatalf("echo counts differ: inline %d, spawn %d", inl.echoes, spawn.echoes)
			}
			if len(inl.counts) != len(spawn.counts) {
				t.Fatalf("sink id sets differ: inline %d, spawn %d", len(inl.counts), len(spawn.counts))
			}
			for id, c := range inl.counts {
				if c != 1 {
					t.Fatalf("inline run: id %d executed %d times, want exactly once", id, c)
				}
				if spawn.counts[id] != 1 {
					t.Fatalf("spawn run: id %d executed %d times, want exactly once", id, spawn.counts[id])
				}
			}
		})
	}
}

// TestInlineExactlyOnceUnderChaos: the inline lane sits above the ARQ and
// dedup layers, so a lossy, duplicating, corrupting fabric must not change
// the exactly-once guarantee for inline-executed actions.
func TestInlineExactlyOnceUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	rt, err := NewRuntime(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Parcelport:         "lci_agg",
		Fabric:             chaosFabric(0.02, 20260807),
		AggMaxQueued:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	var mu sync.Mutex
	counts := make(map[uint32]int)
	sink := rt.MustRegisterInlineAction("inline_chaos_sink", func(loc *Locality, args [][]byte) [][]byte {
		if len(args) == 1 && len(args[0]) >= 4 {
			id := binary.LittleEndian.Uint32(args[0])
			mu.Lock()
			counts[id]++
			mu.Unlock()
		}
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	l := rt.Locality(0)
	const total = 2000
	for i := 0; i < total; i++ {
		idBuf := make([]byte, 4)
		binary.LittleEndian.PutUint32(idBuf, uint32(i))
		if err := l.ApplyID(1, sink, [][]byte{idBuf}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		mu.Lock()
		n := len(counts)
		mu.Unlock()
		if n == total || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(counts) != total {
		t.Fatalf("delivered %d of %d distinct ids under chaos", len(counts), total)
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("id %d executed %d times under chaos, want exactly once", id, c)
		}
	}
	if rt.Locality(1).InlineExecuted() == 0 {
		t.Fatal("chaos run never used the inline lane")
	}
}

// TestInlineConcurrentDeliver exercises the inline lane from several
// delivering goroutines at once (the mt-progress shape where multiple
// workers drain completions concurrently). Run under the race detector via
// `make race`.
func TestInlineConcurrentDeliver(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Uint64
	act := rt.MustRegisterInlineAction("inline_conc", func(*Locality, [][]byte) [][]byte {
		ran.Add(1)
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	const goroutines, msgs, bundle = 4, 50, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := benchBundle(bundle, 32, act)
			for i := 0; i < msgs; i++ {
				l.deliver(m)
			}
		}()
	}
	wg.Wait()
	const total = goroutines * msgs * bundle
	for ran.Load() < total {
		runtime.Gosched()
	}
	if got := l.InlineExecuted(); got == 0 || got > total {
		t.Fatalf("InlineExecuted = %d out of %d delivered", got, total)
	}
}

// TestDeliverInlineBundleZeroAllocs is the inline lane's allocation gate:
// delivering a full default-budget bundle (32 small parcels, all run to
// completion inline) must not allocate once pools are warm — the lane adds
// budget checks and EWMA updates to the datapath, none of which may touch
// the heap.
func TestDeliverInlineBundleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; gate runs in non-race builds")
	}
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Uint64
	act := rt.MustRegisterInlineAction("inline_zeroalloc", func(*Locality, [][]byte) [][]byte {
		ran.Add(1)
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	l := rt.Locality(0)
	const bundle = 32 // the full default inline budget
	m := benchBundle(bundle, 64, act)
	owner := &stubOwner{}
	m.Owner = owner
	deliverOnce := func() {
		want := ran.Load() + bundle
		rel := owner.releases.Load() + 1
		l.deliver(m)
		if ran.Load() != want || owner.releases.Load() != rel {
			t.Fatalf("inline delivery was not synchronous: ran %d want %d, releases %d want %d",
				ran.Load(), want, owner.releases.Load(), rel)
		}
	}
	for i := 0; i < 8; i++ {
		deliverOnce()
	}
	avg := testing.AllocsPerRun(50, deliverOnce)
	if avg != 0 {
		t.Fatalf("inline delivery of a warm %d-parcel bundle allocates %.1f times per run, want 0", bundle, avg)
	}
	if got := l.InlineExecuted(); got == 0 {
		t.Fatal("gate measured the spawn path, not the inline lane")
	}
}
