package core

import (
	"runtime"
	"testing"
	"time"
)

// TestCollBoxFastPathZeroAlloc: a collective round whose data arrived before
// the participant asked for it (the common case once the tree is warm) must
// complete put+wait without allocating.
func TestCollBoxFastPathZeroAlloc(t *testing.T) {
	b := &collBox{
		msgs:    make(map[uint32][][]byte),
		waiters: make(map[uint32]chan struct{}),
	}
	blobs := [][]byte{[]byte("round")}
	deadline := time.Now().Add(time.Minute).UnixNano()
	// Warm the maps.
	b.put(7, blobs)
	if _, err := b.wait(7, deadline); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		b.put(7, blobs)
		if _, err := b.wait(7, deadline); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("collBox put+wait fast path allocates %.1f/op, want 0", allocs)
	}
}

// TestCollBoxParkPathPooled: the park path used to allocate a fresh waiter
// channel and a fresh timer per wait; both are pooled now, so a long run of
// park/wake cycles stays (near-)allocation-free on the waiting side.
func TestCollBoxParkPathPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates per channel op; malloc count is meaningless")
	}
	b := &collBox{
		msgs:    make(map[uint32][][]byte),
		waiters: make(map[uint32]chan struct{}),
	}
	blobs := [][]byte{[]byte("round")}
	deadline := time.Now().Add(time.Minute).UnixNano()

	// A single long-lived waker: parks are signalled through an unbuffered
	// channel so each wait really blocks before its put arrives.
	keys := make(chan uint32)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := range keys {
			// Let the waiter reach the select and park.
			for {
				b.mu.Lock()
				parked := b.waiters[k] != nil
				b.mu.Unlock()
				if parked {
					break
				}
				runtime.Gosched()
			}
			b.put(k, blobs)
		}
	}()

	cycle := func(k uint32) {
		keys <- k
		if _, err := b.wait(k, deadline); err != nil {
			t.Error(err)
		}
	}
	// Warm-up: populate both pools and the maps.
	for i := 0; i < 10; i++ {
		cycle(3)
	}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	const rounds = 400
	for i := 0; i < rounds; i++ {
		cycle(3)
	}
	runtime.ReadMemStats(&m1)
	close(keys)
	<-done

	allocs := m1.Mallocs - m0.Mallocs
	// Pre-pooling this path cost >=2 allocations per round (waiter channel +
	// timer); allow generous slack for runtime noise while still catching a
	// per-round allocation.
	if allocs > rounds/2 {
		t.Fatalf("park path allocated %d times over %d rounds; waiter/timer pooling is not effective", allocs, rounds)
	}
}
