package core

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
	"time"
)

func collectiveRuntime(t *testing.T, localities int) (*Runtime, *atomic.Int64) {
	t.Helper()
	rt, err := NewRuntime(Config{Localities: localities, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	rt.MustRegisterAction("mark", func(loc *Locality, args [][]byte) [][]byte {
		hits.Add(1)
		return nil
	})
	rt.MustRegisterAction("myid", func(loc *Locality, args [][]byte) [][]byte {
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(loc.ID()))
		return [][]byte{out}
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt, &hits
}

func TestBroadcastHitsEveryLocality(t *testing.T) {
	rt, hits := collectiveRuntime(t, 4)
	if err := rt.Broadcast(1, 20*time.Second, "mark"); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 4 {
		t.Fatalf("broadcast hit %d localities, want 4", hits.Load())
	}
}

func TestBroadcastErrors(t *testing.T) {
	rt, _ := collectiveRuntime(t, 2)
	if err := rt.Broadcast(9, time.Second, "mark"); err == nil {
		t.Fatal("invalid source should fail")
	}
	if err := rt.Broadcast(0, time.Second, "nope"); err == nil {
		t.Fatal("unknown action should fail")
	}
}

func TestReduceSumsIDs(t *testing.T) {
	rt, _ := collectiveRuntime(t, 4)
	sum, err := rt.Reduce(0, 20*time.Second, "myid", func(acc, partial [][]byte) [][]byte {
		a := binary.LittleEndian.Uint64(acc[0])
		p := binary.LittleEndian.Uint64(partial[0])
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, a+p)
		return [][]byte{out}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(sum[0]); got != 0+1+2+3 {
		t.Fatalf("reduce sum = %d, want 6", got)
	}
}

func TestReduceValidation(t *testing.T) {
	rt, _ := collectiveRuntime(t, 2)
	if _, err := rt.Reduce(5, time.Second, "myid", func(a, p [][]byte) [][]byte { return a }); err == nil {
		t.Fatal("invalid root should fail")
	}
	if _, err := rt.Reduce(0, time.Second, "myid", nil); err == nil {
		t.Fatal("nil fold should fail")
	}
	if _, err := rt.Reduce(0, time.Second, "nope", func(a, p [][]byte) [][]byte { return a }); err == nil {
		t.Fatal("unknown action should fail")
	}
}

func TestGatherCollectsPerLocality(t *testing.T) {
	rt, _ := collectiveRuntime(t, 3)
	res, err := rt.Gather(2, 20*time.Second, "myid")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("gather returned %d entries", len(res))
	}
	for l, blobs := range res {
		if got := binary.LittleEndian.Uint64(blobs[0]); got != uint64(l) {
			t.Fatalf("gather[%d] = %d", l, got)
		}
	}
}
