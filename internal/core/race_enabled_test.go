//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation gates skip under it.
const raceEnabled = true
