package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpxgo/internal/fabric"
)

// concatFold is deliberately non-commutative: fold order mistakes change the
// result bytes, so byte comparison pins the canonical ascending-rank order.
func concatFold(acc, partial [][]byte) [][]byte {
	out := make([]byte, 0, len(acc[0])+len(partial[0]))
	out = append(out, acc[0]...)
	out = append(out, partial[0]...)
	return [][]byte{out}
}

// label formats one locality's reduce partial.
func label(id int) string { return fmt.Sprintf("L%03d;", id) }

// wantConcat is the canonical reduce result: the root's partial first, then
// ascending root-relative rank order.
func wantConcat(root, n int) string {
	var b bytes.Buffer
	for k := 0; k < n; k++ {
		b.WriteString(label((root + k) % n))
	}
	return b.String()
}

// treeTestRuntime builds a runtime with the label/mark actions used by the
// tree-vs-flat tests. hits[l] counts how often locality l ran "mark".
func treeTestRuntime(t *testing.T, localities, workers int) (*Runtime, []atomic.Int64) {
	t.Helper()
	rt, err := NewRuntime(Config{
		Localities:         localities,
		WorkersPerLocality: workers,
		Parcelport:         "lci",
		IdleSleep:          100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := make([]atomic.Int64, localities)
	rt.MustRegisterAction("mark", func(loc *Locality, args [][]byte) [][]byte {
		hits[loc.ID()].Add(1)
		return nil
	})
	rt.MustRegisterAction("label", func(loc *Locality, args [][]byte) [][]byte {
		return [][]byte{[]byte(label(loc.ID()))}
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt, hits
}

// TestReduceSeedsFromRootNonCommutative is the regression test for the
// root-seeding bug: the old implementation seeded the fold with locality 0's
// partial regardless of root, which silently reordered results for
// non-commutative folds whenever root != 0. Both the tree Reduce and the
// flat reference must seed from the root and fold in ascending
// root-relative rank order.
func TestReduceSeedsFromRootNonCommutative(t *testing.T) {
	const n = 5
	rt, _ := treeTestRuntime(t, n, 2)
	for _, root := range []int{1, 3, n - 1} {
		want := wantConcat(root, n)
		got, err := rt.Reduce(root, 30*time.Second, "label", concatFold)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if string(got[0]) != want {
			t.Errorf("Reduce(root=%d) = %q, want %q (fold not seeded from root)", root, got[0], want)
		}
		flat, err := rt.ReduceFlat(root, 30*time.Second, "label", concatFold)
		if err != nil {
			t.Fatalf("flat root %d: %v", root, err)
		}
		if string(flat[0]) != want {
			t.Errorf("ReduceFlat(root=%d) = %q, want %q (fold not seeded from root)", root, flat[0], want)
		}
	}
}

// TestTreeCollectivesMatchFlatEveryRoot is the property test: for every
// cluster size and every root, each tree collective must produce results
// byte-identical to its flat O(N) reference (and identical side effects for
// broadcast). The fold is non-commutative so ordering bugs cannot hide.
func TestTreeCollectivesMatchFlatEveryRoot(t *testing.T) {
	sizes := []int{1, 2, 3, 5, 8, 64, 256}
	if testing.Short() || raceEnabled {
		// The 64/256-locality runs dominate the suite (and are ~10x slower
		// yet again under the race detector); the small sizes still cover
		// every tree shape transition.
		sizes = []int{1, 2, 3, 5, 8}
	}
	for _, n := range sizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			workers := 2
			if n >= 64 {
				workers = 1
			}
			rt, hits := treeTestRuntime(t, n, workers)
			timeout := 60 * time.Second

			resetHits := func() {
				for i := range hits {
					hits[i].Store(0)
				}
			}
			checkHits := func(what string, root int) {
				t.Helper()
				for i := range hits {
					if c := hits[i].Load(); c != 1 {
						t.Fatalf("n=%d root=%d: %s ran mark %d times on locality %d, want 1", n, root, what, c, i)
					}
				}
			}

			for root := 0; root < n; root++ {
				// Broadcast: identical side effects (every locality runs the
				// action exactly once) for tree and flat.
				resetHits()
				if err := rt.Broadcast(root, timeout, "mark"); err != nil {
					t.Fatalf("broadcast root %d: %v", root, err)
				}
				checkHits("tree broadcast", root)
				resetHits()
				if err := rt.BroadcastFlat(root, timeout, "mark"); err != nil {
					t.Fatalf("flat broadcast root %d: %v", root, err)
				}
				checkHits("flat broadcast", root)

				// Reduce: byte-identical fold result.
				tree, err := rt.Reduce(root, timeout, "label", concatFold)
				if err != nil {
					t.Fatalf("reduce root %d: %v", root, err)
				}
				flat, err := rt.ReduceFlat(root, timeout, "label", concatFold)
				if err != nil {
					t.Fatalf("flat reduce root %d: %v", root, err)
				}
				if want := wantConcat(root, n); string(tree[0]) != want || string(flat[0]) != want {
					t.Fatalf("reduce root %d: tree=%q flat=%q want %q", root, tree[0], flat[0], want)
				}

				// Gather: identical per-locality results.
				gTree, err := rt.Gather(root, timeout, "label")
				if err != nil {
					t.Fatalf("gather root %d: %v", root, err)
				}
				gFlat, err := rt.GatherFlat(root, timeout, "label")
				if err != nil {
					t.Fatalf("flat gather root %d: %v", root, err)
				}
				if !reflect.DeepEqual(gTree, gFlat) {
					t.Fatalf("gather root %d: tree and flat differ", root)
				}
			}

			// AllReduce has no root; once per size. Both implementations must
			// produce the canonical ascending-locality fold.
			tree, err := rt.AllReduce(timeout, "label", concatFold)
			if err != nil {
				t.Fatalf("allreduce: %v", err)
			}
			flat, err := rt.AllReduceFlat(timeout, "label", concatFold)
			if err != nil {
				t.Fatalf("flat allreduce: %v", err)
			}
			if want := wantConcat(0, n); string(tree[0]) != want || string(flat[0]) != want {
				t.Fatalf("allreduce: tree=%q flat=%q want %q", tree[0], flat[0], want)
			}
		})
	}
}

// TestAllReduceEveryLocalityHoldsResult verifies the defining allreduce
// property at a non-power-of-two size: after the exchange, every locality
// (not just the root) holds the complete fold.
func TestAllReduceEveryLocalityHoldsResult(t *testing.T) {
	const n = 6
	rt, _ := treeTestRuntime(t, n, 2)
	res, err := rt.AllReduce(30*time.Second, "label", concatFold)
	if err != nil {
		t.Fatal(err)
	}
	if want := wantConcat(0, n); string(res[0]) != want {
		t.Fatalf("allreduce = %q, want %q", res[0], want)
	}
}

// TestAllToAllExchange: every locality sends a distinct block to every other
// locality; every consume sees exactly the matrix row addressed to it.
func TestAllToAllExchange(t *testing.T) {
	const n = 5
	rt, err := NewRuntime(Config{Localities: n, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := make(map[int][]string)
	rt.MustRegisterAction("a2a_produce", func(loc *Locality, args [][]byte) [][]byte {
		blocks := make([][]byte, n)
		for d := 0; d < n; d++ {
			blocks[d] = []byte(fmt.Sprintf("from%d-to%d-%s", loc.ID(), d, args[0]))
		}
		return blocks
	})
	rt.MustRegisterAction("a2a_consume", func(loc *Locality, args [][]byte) [][]byte {
		row := make([]string, len(args))
		for s, b := range args {
			row[s] = string(b)
		}
		mu.Lock()
		got[loc.ID()] = row
		mu.Unlock()
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	if err := rt.AllToAll(30*time.Second, "a2a_produce", "a2a_consume", []byte("tag7")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("consume ran on %d localities, want %d", len(got), n)
	}
	for d := 0; d < n; d++ {
		for s := 0; s < n; s++ {
			want := fmt.Sprintf("from%d-to%d-tag7", s, d)
			if got[d][s] != want {
				t.Fatalf("locality %d received %q from %d, want %q", d, got[d][s], s, want)
			}
		}
	}
}

// TestAllToAllValidation: produce actions returning the wrong block count
// must fail the collective, not wedge it.
func TestAllToAllValidation(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 3, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	rt.MustRegisterAction("bad_produce", func(loc *Locality, args [][]byte) [][]byte {
		return [][]byte{[]byte("only-one")}
	})
	rt.MustRegisterAction("noop_consume", func(loc *Locality, args [][]byte) [][]byte { return nil })
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	if err := rt.AllToAll(10*time.Second, "nope", "noop_consume"); err == nil {
		t.Fatal("unknown produce action should fail")
	}
	if err := rt.AllToAll(10*time.Second, "bad_produce", "nope"); err == nil {
		t.Fatal("unknown consume action should fail")
	}
	if err := rt.AllToAll(30*time.Second, "bad_produce", "noop_consume"); err == nil {
		t.Fatal("wrong block count should fail the collective")
	}
}

// TestTreeBroadcastDeadLink: a tree broadcast crossing a partitioned link
// must surface an error within its deadline instead of hanging.
func TestTreeBroadcastDeadLink(t *testing.T) {
	rt, err := NewRuntime(Config{
		Localities:         3,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Fabric:             fabric.Config{LatencyNs: 200, GbitsPerSec: 100, Reliability: true},
		DeliveryTimeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.MustRegisterAction("mark", func(loc *Locality, args [][]byte) [][]byte { return nil })
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	if err := rt.Broadcast(0, 30*time.Second, "mark"); err != nil {
		t.Fatalf("healthy broadcast: %v", err)
	}
	rt.Network().SetLinkDown(0, 2)
	rt.Network().SetLinkDown(2, 0)
	start := time.Now()
	err = rt.Broadcast(0, 10*time.Second, "mark")
	if err == nil {
		t.Fatal("broadcast across a dead link should fail")
	}
	if took := time.Since(start); took > 8*time.Second {
		t.Fatalf("broadcast took %v to surface the dead link: %v", took, err)
	}
}

// TestChaosTreeCollectives drives the tree collectives over a lossy,
// duplicating, corrupting interconnect (with aggregation on, so tree hops
// ride bundles) and verifies exactly-once semantics: every broadcast runs
// its action exactly once per locality and every reduce returns the exact
// canonical bytes, with the ARQ absorbing the faults.
func TestChaosTreeCollectives(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	const n = 8
	rt, err := NewRuntime(Config{
		Localities:         n,
		WorkersPerLocality: 2,
		Parcelport:         "lci_agg",
		Fabric:             chaosFabric(0.02, 42),
		AggMaxQueued:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := make([]atomic.Int64, n)
	rt.MustRegisterAction("mark", func(loc *Locality, args [][]byte) [][]byte {
		hits[loc.ID()].Add(1)
		return nil
	})
	rt.MustRegisterAction("label", func(loc *Locality, args [][]byte) [][]byte {
		return [][]byte{[]byte(label(loc.ID()))}
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	const rounds = 5
	for r := 0; r < rounds; r++ {
		broot := r % n
		if err := rt.Broadcast(broot, time.Minute, "mark"); err != nil {
			t.Fatalf("round %d broadcast: %v", r, err)
		}
		rroot := (r*3 + 1) % n
		res, err := rt.Reduce(rroot, time.Minute, "label", concatFold)
		if err != nil {
			t.Fatalf("round %d reduce: %v", r, err)
		}
		if want := wantConcat(rroot, n); string(res[0]) != want {
			t.Fatalf("round %d reduce = %q, want %q", r, res[0], want)
		}
		all, err := rt.AllReduce(time.Minute, "label", concatFold)
		if err != nil {
			t.Fatalf("round %d allreduce: %v", r, err)
		}
		if want := wantConcat(0, n); string(all[0]) != want {
			t.Fatalf("round %d allreduce = %q, want %q", r, all[0], want)
		}
	}
	for i := range hits {
		if c := hits[i].Load(); c != rounds {
			t.Fatalf("locality %d ran mark %d times, want exactly %d", i, c, rounds)
		}
	}
	st := rt.Network().Device(0).Stats()
	if st.Retransmits == 0 {
		t.Fatalf("no retransmissions under 2%% loss: ARQ untested (%+v)", st)
	}
	if st.LinksDowned != 0 {
		t.Fatalf("link falsely declared down during chaos run: %+v", st)
	}
}

// TestCollBoxSweep: an inbox abandoned past its deadline (plus grace) is
// reaped by the rate-gated sweep, and its waiters fail instead of hanging.
func TestCollBoxSweep(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 1, WorkersPerLocality: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	loc := rt.Locality(0)
	past := time.Now().Add(-10 * time.Second).UnixNano()
	loc.collbox(99, past).put(1, [][]byte{[]byte("stale")})
	loc.collMu.Lock()
	if loc.collBoxes[99] == nil {
		loc.collMu.Unlock()
		t.Fatal("box not created")
	}
	loc.collMu.Unlock()

	// Force the sweep gate open and trigger a pass via another collbox call.
	loc.collSweepNs.Store(0)
	loc.collbox(100, time.Now().Add(time.Minute).UnixNano())
	loc.collMu.Lock()
	_, staleAlive := loc.collBoxes[99]
	_, freshAlive := loc.collBoxes[100]
	loc.collMu.Unlock()
	if staleAlive {
		t.Fatal("expired collective inbox survived the sweep")
	}
	if !freshAlive {
		t.Fatal("live collective inbox was swept")
	}
	loc.dropCollbox(100)
}
