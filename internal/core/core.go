// Package core is the public facade of the runtime: the analogue of the HPX
// programming model the paper's benchmarks are written against. It assembles
// the whole stack — simulated fabric, communication library (MPI-like or
// LCI-like), parcelport, parcel layer and per-locality task schedulers — and
// exposes localities, registered actions, fire-and-forget Apply and
// future-returning Call.
//
// All localities of the simulated cluster live in one process; each has its
// own scheduler (worker pool), parcelport instance and parcel layer,
// communicating exclusively through the fabric.
package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"hpxgo/internal/amt"
	"hpxgo/internal/fabric"
	"hpxgo/internal/lci"
	"hpxgo/internal/mpisim"
	"hpxgo/internal/parcel"
	"hpxgo/internal/parcelport"
	"hpxgo/internal/parcelport/lcipp"
	"hpxgo/internal/parcelport/mpipp"
	"hpxgo/internal/parcelport/tcppp"
	"hpxgo/internal/serialization"
	"hpxgo/internal/trace"
	"hpxgo/internal/tune"
)

// continuationAction is the reserved action id that completes Call futures.
const continuationAction = 0

// ErrPeerUnreachable is wrapped into the errors of Call futures and Apply
// when the fabric declared the destination HealthDown, or a Call exceeded
// Config.DeliveryTimeout. Test with errors.Is.
var ErrPeerUnreachable = errors.New("core: peer unreachable")

// ActionFunc is a registered remote action: it runs as a task on the target
// locality and returns result blobs (nil for void actions).
type ActionFunc func(loc *Locality, args [][]byte) [][]byte

// Config assembles a runtime.
type Config struct {
	// Localities is the number of simulated compute nodes. Default 2.
	Localities int
	// WorkersPerLocality is the worker-thread count per locality. Default 2.
	WorkersPerLocality int
	// Parcelport is the Table 1 configuration name (e.g. "mpi_i",
	// "lci_psr_cq_pin_i"). Default "lci" (the baseline).
	Parcelport string
	// ZeroCopyThreshold is HPX's zero-copy serialization threshold.
	// Default 8192.
	ZeroCopyThreshold int
	// MaxConnections caps the connection cache per destination. Default 8192.
	MaxConnections int
	// MaxMessageBytes bounds one aggregated HPX message (0 = unlimited).
	MaxMessageBytes int
	// Aggregation enables the sender-side parcel aggregation layer (also
	// selectable with a trailing "_agg" on the Parcelport name): small
	// same-destination messages coalesce into one fabric transfer, flushed
	// on size, age or backpressure.
	Aggregation bool
	// AggFlushBytes is the aggregation flush size threshold (default 4096).
	AggFlushBytes int
	// AggFlushDelay bounds how long a buffered message may wait (default 50µs).
	AggFlushDelay time.Duration
	// AggMaxQueued caps buffered sub-messages per destination; reaching it
	// forces a flush. Default parcelport.MaxPendingConnections.
	AggMaxQueued int
	// InlineBudget caps how many small parcels of one delivered message may
	// run to completion directly on the draining goroutine (the inline
	// lane) before the remainder spills to spawned tasks. Only actions
	// registered with an inline hint (RegisterInlineAction/MarkActionInline)
	// are eligible. Zero selects tune.DefaultInlineBudget; negative disables
	// inline execution entirely (every parcel spawns). Under Autotune this
	// value seeds the per-source adaptive budget.
	InlineBudget int
	// DrainBatch is the completion-drain budget: how many completion
	// records one parcelport background pass consumes, shared round-robin
	// across all of the port's completion queues. The LCI progress engine
	// derives its per-pass fabric-event batch as 2×DrainBatch (preserving
	// the hand-tuned 32/64 seed ratio), and the MPI parcelport bounds its
	// pending-connection sweep with the same value. Zero selects the
	// transport defaults (lcipp.DefaultDrainBatch / lci.DefaultProgressBatch).
	DrainBatch int
	// Autotune enables the adaptive control layer (internal/tune): the
	// static aggregation knobs and the zero-copy threshold become per-peer
	// feedback-controlled values actuated from observed ack RTT, egress
	// queue depth and packet-pool pressure, and the LCI parcelport scales
	// its dedicated progress goroutines under load watermarks (pin mode).
	// The static values above seed the controllers and bound actuation.
	Autotune bool
	// Fabric configures the simulated interconnect (Nodes is overwritten
	// with Localities). Zero value selects fabric.DefaultConfig.
	Fabric fabric.Config
	// LCI tunes the LCI library (LCI parcelports only).
	LCI lci.Config
	// LCIDevices replicates the LCI device (and its fabric context) per
	// locality — the §7.2 future-work configuration. Default 1.
	LCIDevices int
	// MPI tunes the MPI library (MPI parcelports only).
	MPI mpisim.Config
	// IdleSleep tunes worker backoff; see amt.Config.
	IdleSleep time.Duration
	// DeliveryTimeout bounds how long a Call future may wait for its remote
	// result before failing with ErrPeerUnreachable. Zero disables the
	// deadline; continuations to peers the fabric declares HealthDown are
	// reaped regardless whenever the fabric's reliability layer is active.
	DeliveryTimeout time.Duration
}

func (c *Config) fillDefaults() {
	if c.Localities <= 0 {
		c.Localities = 2
	}
	if c.WorkersPerLocality <= 0 {
		c.WorkersPerLocality = 2
	}
	if c.Parcelport == "" {
		c.Parcelport = "lci"
	}
	if c.ZeroCopyThreshold <= 0 {
		c.ZeroCopyThreshold = serialization.DefaultZeroCopyThreshold
	}
	if c.Fabric.Nodes == 0 && c.Fabric.LatencyNs == 0 && c.Fabric.GbitsPerSec == 0 {
		// Fill in the interconnect model field-wise so a config that only
		// sets fault/reliability knobs (or Rails etc.) keeps them.
		def := fabric.DefaultConfig(c.Localities)
		c.Fabric.LatencyNs = def.LatencyNs
		c.Fabric.GbitsPerSec = def.GbitsPerSec
		if c.Fabric.Rails == 0 {
			c.Fabric.Rails = def.Rails
		}
		if c.Fabric.PacketOverheadBytes == 0 {
			c.Fabric.PacketOverheadBytes = def.PacketOverheadBytes
		}
	}
	if c.LCIDevices <= 0 {
		c.LCIDevices = 1
	}
	c.Fabric.Nodes = c.Localities
	if c.Fabric.DevicesPerNode < c.LCIDevices {
		c.Fabric.DevicesPerNode = c.LCIDevices
	}
}

// Runtime is the simulated cluster: all localities plus the shared fabric
// and action registry.
type Runtime struct {
	cfg    Config
	ppCfg  parcelport.Config
	net    *fabric.Network
	locs   []*Locality
	world  *mpisim.World // MPI transport only
	tcpg   *tcppp.Group  // TCP transport only
	tracer *trace.Tracer
	regMu  sync.RWMutex
	byName map[string]uint32
	byID   []ActionFunc
	names  []string
	inline []bool // per-action inline hint (parallel to byID)

	// actionTab is the immutable snapshot of byID published at Start: the
	// registry is sealed then, so per-parcel dispatch reads one atomic
	// pointer instead of taking regMu.
	actionTab atomic.Pointer[[]ActionFunc]
	// inlineTab is the sealed snapshot of the inline hints, published with
	// actionTab. The receive path consults it per parcel, lock-free.
	inlineTab atomic.Pointer[[]bool]
	// actionSvc is the per-action inline service-time EWMA in ns (α = 1/4),
	// sized to the sealed registry at Start. An action whose EWMA crosses
	// the heavy threshold loses inline eligibility until it lightens —
	// the safety escape that keeps a mis-hinted action from stalling the
	// completion drain indefinitely.
	actionSvc []atomic.Int64

	// Collectives subsystem (see collectives.go): reserved relay-action ids,
	// the per-call fold table, and the collective-id allocator.
	coll collRuntime

	started atomic.Bool
	stopped atomic.Bool
}

// NewRuntime builds (but does not start) a runtime. Register actions, then
// call Start.
func NewRuntime(cfg Config) (*Runtime, error) {
	cfg.fillDefaults()
	ppCfg, err := parcelport.ParseConfig(cfg.Parcelport)
	if err != nil {
		return nil, err
	}
	if cfg.Aggregation {
		ppCfg.Aggregate = true
	}
	net, err := fabric.NewNetwork(cfg.Fabric)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{cfg: cfg, ppCfg: ppCfg, net: net, byName: make(map[string]uint32), tracer: trace.New(0)}
	net.SetTrace(rt.tracer.Emit)
	// Reserve the continuation action. It is inline-hinted: Future.Set is
	// non-blocking (mutex, close, callback spawns), so completing a Call on
	// the draining goroutine saves the spawn that dominates small-response
	// latency.
	rt.byID = append(rt.byID, rt.runContinuation)
	rt.names = append(rt.names, "__continuation")
	rt.byName["__continuation"] = continuationAction
	rt.inline = append(rt.inline, true)
	// The no-op used by Barrier (trivially inline-safe).
	rt.byID = append(rt.byID, func(*Locality, [][]byte) [][]byte { return nil })
	rt.names = append(rt.names, barrierActionName)
	rt.byName[barrierActionName] = uint32(len(rt.byID) - 1)
	rt.inline = append(rt.inline, true)
	// The tree-collective relay and data-plane actions (collectives.go).
	rt.registerCollectiveActions()

	switch ppCfg.Transport {
	case parcelport.TransportMPI:
		rt.world = mpisim.NewWorld(net, cfg.MPI)
	case parcelport.TransportTCP:
		g, err := tcppp.NewGroup(cfg.Localities, tcppp.Config{})
		if err != nil {
			return nil, err
		}
		rt.tcpg = g
	}
	rt.locs = make([]*Locality, cfg.Localities)
	for i := range rt.locs {
		loc, err := rt.buildLocality(i)
		if err != nil {
			return nil, err
		}
		rt.locs[i] = loc
	}
	return rt, nil
}

// buildLocality wires scheduler, parcelport and parcel layer for node i.
func (rt *Runtime) buildLocality(i int) (*Locality, error) {
	loc := &Locality{rt: rt, id: i, conts: make(map[uint64]contEntry), collBoxes: make(map[uint64]*collBox)}
	loc.sched = amt.New(amt.Config{
		Workers:   rt.cfg.WorkersPerLocality,
		Name:      fmt.Sprintf("locality-%d", i),
		IdleSleep: rt.cfg.IdleSleep,
	})
	switch rt.ppCfg.Transport {
	case parcelport.TransportMPI:
		loc.pp = mpipp.New(rt.world.Comm(i), mpipp.Config{
			ZeroCopyThreshold: rt.cfg.ZeroCopyThreshold,
			Original:          rt.ppCfg.Original,
			DrainBatch:        rt.cfg.DrainBatch,
		})
	case parcelport.TransportLCI:
		lciCfg := rt.cfg.LCI
		if rt.cfg.DrainBatch > 0 && lciCfg.ProgressBatch <= 0 {
			// One drain knob, two engines: the progress engine's fabric-event
			// batch tracks 2× the completion-drain budget, preserving the
			// hand-tuned 64:32 seed ratio.
			lciCfg.ProgressBatch = 2 * rt.cfg.DrainBatch
		}
		devs := make([]*lci.Device, rt.cfg.LCIDevices)
		for di := range devs {
			devs[di] = lci.NewDevice(rt.net.DeviceN(i, di), lciCfg, nil)
		}
		pp, err := lcipp.NewMulti(devs, loc.sched, lcipp.Config{
			ZeroCopyThreshold: rt.cfg.ZeroCopyThreshold,
			Protocol:          rt.ppCfg.Protocol,
			Completion:        rt.ppCfg.Completion,
			Progress:          rt.ppCfg.Progress,
			AdaptiveProgress:  rt.cfg.Autotune,
			DrainBatch:        rt.cfg.DrainBatch,
		})
		if err != nil {
			return nil, err
		}
		loc.pp = pp
		loc.lciDev = devs[0]
		loc.lciDevs = devs
	case parcelport.TransportTCP:
		loc.pp = rt.tcpg.Parcelport(i)
	}
	if rt.ppCfg.Aggregate {
		agg := parcelport.NewAggregator(loc.pp, rt.cfg.Localities, parcelport.AggConfig{
			FlushBytes: rt.cfg.AggFlushBytes,
			FlushDelay: rt.cfg.AggFlushDelay,
			MaxQueued:  rt.cfg.AggMaxQueued,
		})
		if lpp, ok := loc.pp.(*lcipp.Parcelport); ok && rt.ppCfg.Progress == parcelport.PinnedProgress {
			// In pin mode idle workers may all be busy with tasks, so the
			// dedicated progress thread drives the age-based flush too.
			lpp.SetProgressHook(agg.FlushStale)
		}
		loc.pp = agg
	}
	loc.layer = parcel.NewLayer(rt.cfg.Localities, parcel.Config{
		ZeroCopyThreshold: rt.cfg.ZeroCopyThreshold,
		MaxConnections:    rt.cfg.MaxConnections,
		Immediate:         rt.ppCfg.Immediate,
		MaxMessageBytes:   rt.cfg.MaxMessageBytes,
	}, loc.pp.Send)
	if agg, ok := loc.pp.(*parcelport.Aggregator); ok {
		// Warm-path shortcut: encode small parcels straight into the bundle
		// buffer instead of through a per-message scratch.
		loc.layer.SetParcelSender(agg.SendParcel)
	}
	if rt.cfg.Autotune {
		rt.wireAutotune(loc, i)
	}
	bg := loc.pp.BackgroundWork
	if loc.tuner != nil {
		if _, ok := loc.pp.(*parcelport.Aggregator); !ok {
			// Without the aggregation layer nothing else drives the
			// controllers' clock, so fold the rate-gated Tick into
			// background work (it self-limits to one pass per TickNs).
			inner := bg
			start := time.Now()
			ctl := loc.tuner
			bg = func(workerID int) bool {
				did := inner(workerID)
				if ctl.Tick(int64(time.Since(start))) {
					did = true
				}
				return did
			}
		}
	}
	if rt.cfg.DeliveryTimeout > 0 || rt.net.Config().Reliability {
		// Fold the continuation reaper into background work so delivery
		// timeouts and dead peers are noticed without a dedicated thread.
		loc.sched.SetBackground(func(workerID int) bool {
			did := bg(workerID)
			if loc.reapDeadContinuations() {
				did = true
			}
			return did
		})
	} else {
		loc.sched.SetBackground(bg)
	}
	return loc, nil
}

// wireAutotune builds locality i's adaptive controller and hooks it into
// the aggregation and parcel layers. The fabric device behind the transport
// supplies the RTT and queue-depth signals; the LCI device supplies pool
// pressure. TCP has no fabric device, so its controllers hold every knob at
// the static value (the laws only act on live signals).
func (rt *Runtime) wireAutotune(loc *Locality, i int) {
	var sig tune.Signals
	switch rt.ppCfg.Transport {
	case parcelport.TransportLCI, parcelport.TransportMPI:
		fdev := rt.net.DeviceN(i, 0)
		sig.RTTNs = fdev.LinkRTTNs
		sig.QueueDepth = fdev.EgressQueueDepth
	}
	if dev := loc.lciDev; dev != nil {
		sig.PoolRetries = func() uint64 { return dev.Stats().Retries }
	}
	sig.PendingTasks = loc.sched.Pending
	rails := 1
	if rt.net != nil {
		rails = rt.net.Config().Rails
	}
	ctl := tune.NewController(tune.Config{
		Dests:          rt.cfg.Localities,
		FlushBytes:     rt.cfg.AggFlushBytes,
		FlushDelayNs:   rt.cfg.AggFlushDelay.Nanoseconds(),
		ZCThreshold:    rt.cfg.ZeroCopyThreshold,
		StripeWidth:    rt.cfg.LCI.StripeWidth,
		MaxStripeWidth: rails,
		InlineBudget:   rt.cfg.InlineBudget,
		DrainBatch:     rt.cfg.DrainBatch,
	}, sig)
	loc.tuner = ctl
	if agg, ok := loc.pp.(*parcelport.Aggregator); ok {
		agg.SetTuner(ctl)
	}
	loc.layer.SetTuner(ctl)
	// Rendezvous stripe width: every LCI device of the locality reads its
	// per-destination width from the controller (devices are replicated
	// lanes to the same peers, so they share the law's verdict).
	for _, dev := range loc.lciDevs {
		dev.SetStripeTuner(ctl.StripeWidth)
	}
}

// RegisterAction registers fn under name on every locality. Must be called
// before Start; registration is process-wide so action ids agree everywhere.
func (rt *Runtime) RegisterAction(name string, fn ActionFunc) (uint32, error) {
	if rt.started.Load() {
		return 0, fmt.Errorf("core: RegisterAction(%q) after Start", name)
	}
	rt.regMu.Lock()
	defer rt.regMu.Unlock()
	if _, dup := rt.byName[name]; dup {
		return 0, fmt.Errorf("core: action %q already registered", name)
	}
	id := uint32(len(rt.byID))
	rt.byID = append(rt.byID, fn)
	rt.names = append(rt.names, name)
	rt.byName[name] = id
	rt.inline = append(rt.inline, false)
	return id, nil
}

// MustRegisterAction is RegisterAction, panicking on error (init-time use).
func (rt *Runtime) MustRegisterAction(name string, fn ActionFunc) uint32 {
	id, err := rt.RegisterAction(name, fn)
	if err != nil {
		panic(err)
	}
	return id
}

// RegisterInlineAction registers fn with the inline hint: the action
// promises to be small and non-blocking (no future waits, no long compute,
// no unbounded locks), so the receive path may run it to completion on the
// draining goroutine instead of spawning a task. A hinted action that
// nonetheless runs long is demoted by the service-time escape (see
// actionSvc); one that *blocks* stalls its drain goroutine until the
// scheduler's other workers pick up the slack — the hint is a promise, not
// a sandbox.
func (rt *Runtime) RegisterInlineAction(name string, fn ActionFunc) (uint32, error) {
	id, err := rt.RegisterAction(name, fn)
	if err != nil {
		return 0, err
	}
	rt.regMu.Lock()
	rt.inline[id] = true
	rt.regMu.Unlock()
	return id, nil
}

// MustRegisterInlineAction is RegisterInlineAction, panicking on error.
func (rt *Runtime) MustRegisterInlineAction(name string, fn ActionFunc) uint32 {
	id, err := rt.RegisterInlineAction(name, fn)
	if err != nil {
		panic(err)
	}
	return id
}

// MarkActionInline sets the inline hint on an already-registered action
// (same promise as RegisterInlineAction). Must be called before Start.
func (rt *Runtime) MarkActionInline(name string) error {
	if rt.started.Load() {
		return fmt.Errorf("core: MarkActionInline(%q) after Start", name)
	}
	rt.regMu.Lock()
	defer rt.regMu.Unlock()
	id, ok := rt.byName[name]
	if !ok {
		return fmt.Errorf("core: MarkActionInline: unknown action %q", name)
	}
	rt.inline[id] = true
	return nil
}

// ActionID resolves a registered action name.
func (rt *Runtime) ActionID(name string) (uint32, bool) {
	rt.regMu.RLock()
	defer rt.regMu.RUnlock()
	id, ok := rt.byName[name]
	return id, ok
}

// action returns the handler for an id, or nil. After Start it is lock-free
// (one atomic load of the sealed table); before Start it falls back to the
// registration lock.
func (rt *Runtime) action(id uint32) ActionFunc {
	if tab := rt.actionTab.Load(); tab != nil {
		t := *tab
		if int(id) >= len(t) {
			return nil
		}
		return t[id]
	}
	rt.regMu.RLock()
	defer rt.regMu.RUnlock()
	if int(id) >= len(rt.byID) {
		return nil
	}
	return rt.byID[id]
}

// Start launches every locality's parcelport and scheduler.
func (rt *Runtime) Start() error {
	if !rt.started.CompareAndSwap(false, true) {
		return fmt.Errorf("core: runtime already started")
	}
	// The registry is sealed now (RegisterAction rejects once started):
	// publish the immutable action table for lock-free dispatch.
	rt.regMu.RLock()
	tab := append([]ActionFunc(nil), rt.byID...)
	itab := append([]bool(nil), rt.inline...)
	rt.regMu.RUnlock()
	rt.actionSvc = make([]atomic.Int64, len(tab))
	rt.actionTab.Store(&tab)
	rt.inlineTab.Store(&itab)
	for _, loc := range rt.locs {
		loc := loc
		if err := loc.pp.Start(loc.deliver); err != nil {
			return err
		}
		if err := loc.sched.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Shutdown stops schedulers and parcelports. In-flight work is abandoned.
func (rt *Runtime) Shutdown() {
	if !rt.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, loc := range rt.locs {
		loc.sched.Stop()
	}
	for _, loc := range rt.locs {
		loc.pp.Stop()
	}
}

// Localities returns the number of localities.
func (rt *Runtime) Localities() int { return len(rt.locs) }

// Locality returns locality i.
func (rt *Runtime) Locality(i int) *Locality { return rt.locs[i] }

// ParcelportName returns the full Table 1 configuration string.
func (rt *Runtime) ParcelportName() string { return rt.ppCfg.String() }

// Network exposes the fabric (tests and stats).
func (rt *Runtime) Network() *fabric.Network { return rt.net }

// Trace returns the runtime's event tracer (disabled by default; call
// Trace().Enable(true) to record).
func (rt *Runtime) Trace() *trace.Tracer { return rt.tracer }

// MPIComm exposes a locality's MPI communicator for profiling; nil when the
// runtime does not use the MPI transport.
func (rt *Runtime) MPIComm(loc int) *mpisim.Comm {
	if rt.world == nil {
		return nil
	}
	return rt.world.Comm(loc)
}

// LCIDevice exposes a locality's LCI device for profiling; nil when the
// runtime does not use the LCI transport.
func (l *Locality) LCIDevice() *lci.Device { return l.lciDev }

// Tuner exposes the adaptive controller (nil unless Config.Autotune).
func (l *Locality) Tuner() *tune.Controller { return l.tuner }

// Barrier synchronizes all localities: locality 0 calls a no-op on everyone
// and waits. Returns false on timeout.
func (rt *Runtime) Barrier(timeout time.Duration) bool {
	loc0 := rt.locs[0]
	barrierID, _ := rt.ActionID(barrierActionName)
	futs := make([]*amt.Future[[][]byte], 0, len(rt.locs)-1)
	for i := 1; i < len(rt.locs); i++ {
		futs = append(futs, loc0.CallID(i, barrierID, nil))
	}
	deadline := time.Now().Add(timeout)
	for _, f := range futs {
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		if _, err := f.GetTimeout(remain); err != nil {
			return false
		}
	}
	return true
}

// barrierActionName is the reserved no-op action used by Barrier.
const barrierActionName = "__barrier"

// runContinuation is the reserved action that fulfils Call futures:
// args[0] = 8-byte continuation id, args[1:] = results.
func (rt *Runtime) runContinuation(loc *Locality, args [][]byte) [][]byte {
	if len(args) == 0 || len(args[0]) != 8 {
		return nil
	}
	id := binary.LittleEndian.Uint64(args[0])
	loc.contMu.Lock()
	e, ok := loc.conts[id]
	delete(loc.conts, id)
	loc.contMu.Unlock()
	if ok {
		e.f.Set(args[1:], nil)
	}
	return nil
}

// contEntry is one Call awaiting its remote result.
type contEntry struct {
	f          *amt.Future[[][]byte]
	dst        int
	deadlineNs int64 // unix nanos; 0 = no deadline
}

// Locality is one simulated compute node: scheduler, parcelport, parcel
// layer and continuation table.
type Locality struct {
	rt      *Runtime
	id      int
	sched   *amt.Scheduler
	pp      parcelport.Parcelport
	layer   *parcel.Layer
	lciDev  *lci.Device      // LCI transport only (stats)
	lciDevs []*lci.Device    // all replicated LCI devices (stripe-tuner wiring)
	tuner   *tune.Controller // Autotune only (adaptive knobs)

	contMu   sync.Mutex
	conts    map[uint64]contEntry
	nextCont atomic.Uint64

	// Collective inboxes buffer unsolicited data-plane messages (all-to-all
	// blocks, allreduce round partials) that may arrive before this node has
	// entered the collective. See collectives.go.
	collMu      sync.Mutex
	collBoxes   map[uint64]*collBox
	collSweepNs atomic.Int64

	nextReapNs      atomic.Int64 // rate-gates the continuation reaper
	parcelsExecuted atomic.Uint64
	decodeErrors    atomic.Uint64
	inlineExecuted  atomic.Uint64 // parcels run on the inline lane
	inlineSpilled   atomic.Uint64 // inline-eligible parcels demoted to spawn

	// delivPool recycles delivery contexts (parcel slab + task slots) so the
	// steady-state receive path allocates nothing. See deliver.
	delivPool sync.Pool
}

// ID returns the locality id (the MPI-rank analogue).
func (l *Locality) ID() int { return l.id }

// Scheduler exposes the locality's task scheduler.
func (l *Locality) Scheduler() *amt.Scheduler { return l.sched }

// ParcelLayer exposes the parcel layer (stats).
func (l *Locality) ParcelLayer() *parcel.Layer { return l.layer }

// ParcelsExecuted counts action invocations that arrived via parcels.
func (l *Locality) ParcelsExecuted() uint64 { return l.parcelsExecuted.Load() }

// DecodeErrors counts received messages dropped because they failed to
// decode (protocol corruption).
func (l *Locality) DecodeErrors() uint64 { return l.decodeErrors.Load() }

// InlineExecuted counts parcels run to completion on the draining goroutine
// (the inline lane of deliver).
func (l *Locality) InlineExecuted() uint64 { return l.inlineExecuted.Load() }

// InlineSpilled counts inline-eligible parcels that were demoted to spawned
// tasks because the per-message time cap expired mid-drain.
func (l *Locality) InlineSpilled() uint64 { return l.inlineSpilled.Load() }

// PendingContinuations reports Call futures still awaiting their remote
// results. A steadily growing value means calls are timing out (their table
// entries are reclaimed only when the response eventually arrives).
func (l *Locality) PendingContinuations() int {
	l.contMu.Lock()
	defer l.contMu.Unlock()
	return len(l.conts)
}

// Spawn schedules a local task.
func (l *Locality) Spawn(f func()) { l.sched.Spawn(f) }

// Async runs fn as a local task and returns a future for its result.
func Async[T any](l *Locality, fn func() (T, error)) *amt.Future[T] {
	return amt.Async(l.sched, fn)
}

// Apply invokes a registered action on dst, fire-and-forget.
func (l *Locality) Apply(dst int, action string, args ...[]byte) error {
	id, ok := l.rt.ActionID(action)
	if !ok {
		return fmt.Errorf("core: unknown action %q", action)
	}
	return l.ApplyID(dst, id, args)
}

// ApplyID is Apply with a pre-resolved action id (hot paths).
func (l *Locality) ApplyID(dst int, id uint32, args [][]byte) error {
	if dst < 0 || dst >= l.rt.Localities() {
		return fmt.Errorf("core: invalid destination locality %d", dst)
	}
	if dst == l.id {
		// Local invocation short-circuits the network, as in HPX.
		fn := l.rt.action(id)
		if fn == nil {
			return fmt.Errorf("core: unknown action id %d", id)
		}
		l.sched.Spawn(func() {
			fn(l, args)
		})
		return nil
	}
	if l.peerDown(dst) {
		return fmt.Errorf("core: apply to locality %d: %w", dst, ErrPeerUnreachable)
	}
	l.rt.tracer.Emit("parcel", "apply", int64(dst))
	l.layer.PutOne(serialization.Parcel{Source: l.id, Dest: dst, Action: id, Args: args})
	return nil
}

// Call invokes an action on dst and returns a future for its results.
func (l *Locality) Call(dst int, action string, args ...[]byte) *amt.Future[[][]byte] {
	f := amt.NewFuture[[][]byte](l.sched)
	id, ok := l.rt.ActionID(action)
	if !ok {
		f.Set(nil, fmt.Errorf("core: unknown action %q", action))
		return f
	}
	return l.callID(dst, id, args, f)
}

// CallID is Call with a pre-resolved action id.
func (l *Locality) CallID(dst int, id uint32, args [][]byte) *amt.Future[[][]byte] {
	return l.callID(dst, id, args, amt.NewFuture[[][]byte](l.sched))
}

func (l *Locality) callID(dst int, id uint32, args [][]byte, f *amt.Future[[][]byte]) *amt.Future[[][]byte] {
	if dst < 0 || dst >= l.rt.Localities() {
		f.Set(nil, fmt.Errorf("core: invalid destination locality %d", dst))
		return f
	}
	fn := l.rt.action(id)
	if fn == nil {
		f.Set(nil, fmt.Errorf("core: unknown action id %d", id))
		return f
	}
	if dst == l.id {
		l.sched.Spawn(func() {
			f.Set(fn(l, args), nil)
		})
		return f
	}
	if l.peerDown(dst) {
		f.Set(nil, fmt.Errorf("core: call to locality %d: %w", dst, ErrPeerUnreachable))
		return f
	}
	l.rt.tracer.Emit("parcel", "call", int64(dst))
	cid := l.nextCont.Add(1)
	var deadline int64
	if d := l.rt.cfg.DeliveryTimeout; d > 0 {
		deadline = time.Now().Add(d).UnixNano()
	}
	l.contMu.Lock()
	l.conts[cid] = contEntry{f: f, dst: dst, deadlineNs: deadline}
	l.contMu.Unlock()
	l.layer.PutOne(serialization.Parcel{Source: l.id, Dest: dst, Action: id, ContID: cid, Args: args})
	return f
}

// peerDown reports whether the fabric has declared the path to dst dead.
// Always false on the TCP transport (it does not ride the simulated fabric).
func (l *Locality) peerDown(dst int) bool {
	if l.rt.ppCfg.Transport == parcelport.TransportTCP {
		return false
	}
	return l.rt.net.PeerHealth(l.id, dst) == fabric.HealthDown
}

// reapDeadContinuations fails Call futures whose deadline passed or whose
// destination the fabric declared down, and discards parcels queued for dead
// peers. Rate-gated to one pass per millisecond per locality; reports
// whether any future was reaped.
func (l *Locality) reapDeadContinuations() bool {
	now := time.Now().UnixNano()
	next := l.nextReapNs.Load()
	if now < next || !l.nextReapNs.CompareAndSwap(next, now+int64(time.Millisecond)) {
		return false
	}
	downCache := make(map[int]bool)
	isDown := func(dst int) bool {
		v, ok := downCache[dst]
		if !ok {
			v = l.peerDown(dst)
			downCache[dst] = v
		}
		return v
	}
	var victims []contEntry
	l.contMu.Lock()
	for id, e := range l.conts {
		if (e.deadlineNs > 0 && now > e.deadlineNs) || isDown(e.dst) {
			delete(l.conts, id)
			victims = append(victims, e)
		}
	}
	l.contMu.Unlock()
	for dst, down := range downCache {
		if down {
			l.layer.DiscardDest(dst)
		}
	}
	for _, e := range victims {
		l.rt.tracer.Emit("parcel", "reap", int64(e.dst))
		e.f.Set(nil, fmt.Errorf("core: call to locality %d: no response before delivery timeout: %w",
			e.dst, ErrPeerUnreachable))
	}
	return len(victims) > 0
}

// delivery is the pooled receive context of one HPX message: the parcel
// slab the message decodes into, one reusable task slot per parcel (with a
// pre-bound spawn closure, so per-parcel spawning allocates nothing), and
// the message's buffer owner, released when the last task finishes. A
// delivery returns to its locality's pool only at refcount zero, so the
// pooled network buffers the decoded args alias stay valid for exactly as
// long as any task can read them.
type delivery struct {
	l      *Locality
	buf    serialization.DecodeBuf
	owner  serialization.RecvOwner
	refs   atomic.Int32
	tasks  []*parcelTask // pointer-stable reusable slots
	runs   []func()      // scratch batch handed to SpawnBatch
	inline []*parcelTask // scratch batch run on the inline lane
}

// parcelTask is one parcel's reusable spawn slot. run is the method value
// bound to exec, created once per slot and reused for every message.
type parcelTask struct {
	d   *delivery
	p   *serialization.Parcel
	fn  ActionFunc
	run func()
}

// task returns slot i, growing the slot list on first use.
func (d *delivery) task(i int) *parcelTask {
	for len(d.tasks) <= i {
		t := &parcelTask{}
		t.run = t.exec
		d.tasks = append(d.tasks, t)
	}
	return d.tasks[i]
}

// exec runs one parcel's action, then drops the delivery reference.
func (t *parcelTask) exec() {
	d := t.d
	l := d.l
	p := t.p
	fn := t.fn
	t.d, t.p, t.fn = nil, nil, nil
	l.parcelsExecuted.Add(1)
	l.rt.tracer.Emit("action", "run", int64(p.Action))
	if p.Action == continuationAction {
		// runContinuation publishes args[1:] to the Call future, which the
		// caller reads after this task is gone while the parcel slab is
		// recycled: detach the arg headers from the slab, and copy inline
		// bytes out of pooled receive buffers. Args at or above the
		// zero-copy threshold are zero-copy chunks — plain GC buffers,
		// never pooled — and stay aliased.
		p.Args = append(make([][]byte, 0, len(p.Args)), p.Args...)
		if d.owner != nil {
			sanitizeInlineArgs(p.Args, l.rt.cfg.ZeroCopyThreshold)
		}
	}
	results := fn(l, p.Args)
	if p.ContID != 0 {
		var idBuf [8]byte
		binary.LittleEndian.PutUint64(idBuf[:], p.ContID)
		args := append([][]byte{idBuf[:]}, results...)
		if d.owner != nil {
			// The reply parcel may be queued and encoded after this task
			// returns (connection-cache backpressure defers the encode), so
			// results that alias the delivered message — an echo action
			// returning its args — must not point into buffers about to be
			// recycled.
			sanitizeInlineArgs(args[1:], l.rt.cfg.ZeroCopyThreshold)
		}
		_ = l.ApplyID(p.Source, continuationAction, args)
	}
	d.unref()
}

// sanitizeInlineArgs replaces every arg shorter than the zero-copy threshold
// with a garbage-collected copy (one shared backing array). Args at or above
// the threshold are zero-copy chunk buffers, which the receive path never
// pools, so they are safe to alias indefinitely.
func sanitizeInlineArgs(args [][]byte, zcThreshold int) {
	total := 0
	for _, a := range args {
		if len(a) > 0 && len(a) < zcThreshold {
			total += len(a)
		}
	}
	if total == 0 {
		return
	}
	backing := make([]byte, 0, total)
	for i, a := range args {
		if len(a) > 0 && len(a) < zcThreshold {
			backing = append(backing, a...)
			args[i] = backing[len(backing)-len(a) : len(backing) : len(backing)]
		}
	}
}

// unref drops one task reference; the last one releases the message buffers
// and recycles the delivery context.
func (d *delivery) unref() {
	if d.refs.Add(-1) > 0 {
		return
	}
	if d.owner != nil {
		d.owner.Release()
		d.owner = nil
	}
	d.l.delivPool.Put(d)
}

// Deliver feeds a message straight into the locality's receiver datapath,
// exactly as the parcelport's delivery callback would. It exists for the
// datapath benchmark harness (internal/bench), which measures the decode →
// dispatch → spawn → execute path without a wire in between.
func (l *Locality) Deliver(m *serialization.Message) { l.deliver(m) }

// Inline-lane bounds. The count budget comes from Config.InlineBudget (or
// the per-source adaptive budget under Autotune); these cap the other two
// axes of the drain budget.
const (
	// inlineMaxArgBytes is the per-parcel eligibility cutoff: a parcel
	// whose summed arg bytes exceed it is not "small" and always spawns.
	inlineMaxArgBytes = 1024
	// inlineBytesBudget caps the summed arg bytes run inline per message,
	// so many just-under-cutoff parcels cannot add up to a long stall.
	inlineBytesBudget = 16 * 1024
	// inlineTimeBudget caps the wall time one message's inline batch may
	// occupy the draining goroutine; the remainder demotes to SpawnBatch.
	// Sized so a full default budget of light (<~2µs) actions fits.
	inlineTimeBudget = 100 * time.Microsecond
	// defaultInlineHeavyNs mirrors tune.Config.InlineHeavyNs for runtimes
	// without Autotune: the per-action service EWMA above which an action
	// loses inline eligibility.
	defaultInlineHeavyNs = 20_000
)

// profilingLabels gates the per-delivery pprof label swap on the inline
// lane. SetGoroutineLabels allocates, so the swap is off by default to keep
// the steady-state receive path at zero allocations; profiling runs flip it
// on to split inline execution from worker polling in CPU profiles.
var profilingLabels atomic.Bool

// EnableProfilingLabels toggles pprof goroutine labels on the inline
// delivery lane ("lane=inline-deliver"). Costs one allocation per delivered
// message while enabled.
func EnableProfilingLabels(on bool) { profilingLabels.Store(on) }

// inlineBudget returns the inline-lane count budget for parcels arriving
// from src: the adaptive per-source value under Autotune, the static config
// otherwise, zero when disabled.
func (l *Locality) inlineBudget(src int) int {
	if l.rt.cfg.InlineBudget < 0 {
		return 0
	}
	if l.tuner != nil {
		return l.tuner.InlineBudget(src)
	}
	if b := l.rt.cfg.InlineBudget; b > 0 {
		return b
	}
	return tune.DefaultInlineBudget
}

// inlineHeavyNs returns the service-time EWMA ceiling for inline
// eligibility.
func (l *Locality) inlineHeavyNs() int64 {
	if l.tuner != nil {
		return l.tuner.InlineHeavyNs()
	}
	return defaultInlineHeavyNs
}

// deliver is the parcelport's delivery callback: decode the HPX message
// into a pooled parcel slab, run the small inline-hinted parcels to
// completion right here on the draining goroutine, and batch-spawn the
// rest. In steady state the whole path — decode, dispatch, inline-execute
// or spawn, buffer recycle — performs zero allocations (enforced by
// TestDeliverBundleZeroAllocs and TestDeliverInlineBundleZeroAllocs).
//
// The inline lane is the run-to-completion optimization: a small parcel's
// spawn handoff (runner pop, channel send, wakeup) costs more than its
// action body, so eligible parcels skip the scheduler entirely. Eligibility
// per parcel: the action carries the inline hint, its service-time EWMA is
// below the heavy ceiling, the args are small, and the per-message count
// and byte budgets have room. The spill batch spawns *first*, so heavy
// work overlaps the inline runs instead of queueing behind them.
func (l *Locality) deliver(m *serialization.Message) {
	d, _ := l.delivPool.Get().(*delivery)
	if d == nil {
		d = &delivery{l: l}
	}
	parcels, err := serialization.DecodeInto(&d.buf, m)
	if err != nil {
		// Corrupted message: count it, drop it, and still release its pooled
		// buffers so they return to their pools instead of leaking.
		l.decodeErrors.Add(1)
		l.rt.tracer.Emit("parcel", "decode-error", int64(l.id))
		if m.Owner != nil {
			m.Owner.Release()
		}
		l.delivPool.Put(d)
		return
	}
	l.rt.tracer.Emit("parcel", "deliver", int64(len(parcels)))
	d.owner = m.Owner
	runs := d.runs[:0]
	inl := d.inline[:0]
	var hints []bool
	budget := 0
	if tab := l.rt.inlineTab.Load(); tab != nil && len(parcels) > 0 {
		if budget = l.inlineBudget(parcels[0].Source); budget > 0 {
			hints = *tab
		}
	}
	heavyNs := int64(0)
	if hints != nil {
		heavyNs = l.inlineHeavyNs()
	}
	inlBytes := 0
	n := 0
	for i := range parcels {
		p := &parcels[i]
		fn := l.rt.action(p.Action)
		if fn == nil {
			continue
		}
		t := d.task(n)
		t.d, t.p, t.fn = d, p, fn
		n++
		if len(inl) < budget && int(p.Action) < len(hints) && hints[p.Action] &&
			l.rt.actionSvc[p.Action].Load() < heavyNs {
			ab := 0
			for _, a := range p.Args {
				ab += len(a)
			}
			if ab <= inlineMaxArgBytes && inlBytes+ab <= inlineBytesBudget {
				inlBytes += ab
				inl = append(inl, t)
				continue
			}
		}
		runs = append(runs, t.run)
	}
	d.runs, d.inline = runs, inl
	if n == 0 {
		if d.owner != nil {
			d.owner.Release()
			d.owner = nil
		}
		l.delivPool.Put(d)
		return
	}
	// One extra reference guards d for the duration of the inline loop:
	// without it the last inline task would recycle d under our feet while
	// we still iterate d.inline.
	d.refs.Store(int32(n) + 1)
	if len(runs) > 0 {
		l.sched.SpawnBatch(runs)
	}
	if len(inl) > 0 {
		if profilingLabels.Load() {
			pprof.Do(context.Background(), pprof.Labels("lane", "inline-deliver"), func(context.Context) {
				l.runInlineBatch(d)
			})
		} else {
			l.runInlineBatch(d)
		}
	}
	d.unref()
}

// runInlineBatch executes d.inline on the calling (draining) goroutine
// under the per-message time cap, demoting the remainder to spawned tasks
// when the cap expires. Each run's service time feeds the per-action EWMA
// (the heavy escape) and, under Autotune, the per-source budget law.
func (l *Locality) runInlineBatch(d *delivery) {
	inl := d.inline
	src := inl[0].p.Source
	t0 := time.Now()
	deadline := t0.Add(inlineTimeBudget)
	for i, t := range inl {
		if t0.After(deadline) {
			rest := d.runs[:0]
			for _, u := range inl[i:] {
				rest = append(rest, u.run)
			}
			d.runs = rest
			l.sched.SpawnBatch(rest)
			spilled := len(inl) - i
			l.inlineSpilled.Add(uint64(spilled))
			if l.tuner != nil {
				l.tuner.ObserveInlineSpill(src, spilled)
			}
			return
		}
		aid := t.p.Action
		l.sched.RunInline(t.run)
		t1 := time.Now()
		svc := t1.Sub(t0).Nanoseconds()
		t0 = t1
		l.inlineExecuted.Add(1)
		if int(aid) < len(l.rt.actionSvc) {
			sv := &l.rt.actionSvc[aid]
			if old := sv.Load(); old == 0 {
				sv.Store(svc)
			} else {
				sv.Store(old + (svc-old)/4)
			}
		}
		if l.tuner != nil {
			l.tuner.ObserveInline(src, svc)
		}
	}
}
