package core

import (
	"runtime"
	"sync/atomic"
	"testing"

	"hpxgo/internal/serialization"
)

// benchBundle encodes one eager-sized bundle of n small parcels addressed to
// locality 0, the shape the aggregation layer produces for fine-grained
// traffic.
func benchBundle(n, argBytes int, action uint32) *serialization.Message {
	arg := make([]byte, argBytes)
	for i := range arg {
		arg[i] = byte(i)
	}
	ps := make([]*serialization.Parcel, n)
	for i := range ps {
		ps[i] = &serialization.Parcel{Source: 1, Dest: 0, Action: action, Args: [][]byte{arg}}
	}
	return serialization.Encode(ps, 0)
}

// BenchmarkDeliverBundle measures the receiver datapath from delivery
// callback to executed task: decode a bundled message, dispatch every parcel
// to its action, spawn the tasks and wait for them to finish.
func BenchmarkDeliverBundle(b *testing.B) {
	for _, bundle := range []int{1, 8, 32} {
		b.Run(benchName(bundle), func(b *testing.B) {
			rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
			if err != nil {
				b.Fatal(err)
			}
			var ran atomic.Uint64
			noop := rt.MustRegisterAction("bench_noop", func(*Locality, [][]byte) [][]byte {
				ran.Add(1)
				return nil
			})
			if err := rt.Start(); err != nil {
				b.Fatal(err)
			}
			defer rt.Shutdown()
			l := rt.Locality(0)
			m := benchBundle(bundle, 64, noop)
			// Warm the runner cache and any pooled state.
			for i := 0; i < 4; i++ {
				l.deliver(m)
			}
			for ran.Load() < uint64(4*bundle) {
				runtime.Gosched()
			}
			base := ran.Load()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.deliver(m)
				base += uint64(bundle)
				for ran.Load() < base {
					runtime.Gosched()
				}
			}
		})
	}
}

func benchName(n int) string {
	switch n {
	case 1:
		return "bundle=1"
	case 8:
		return "bundle=8"
	default:
		return "bundle=32"
	}
}
