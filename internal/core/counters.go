package core

import (
	"fmt"
	"strings"

	"hpxgo/internal/parcelport"
	"hpxgo/internal/parcelport/lcipp"
	"hpxgo/internal/parcelport/mpipp"
	"hpxgo/internal/parcelport/tcppp"
)

// StatsText renders the runtime's performance counters — the analogue of
// HPX's performance-counter interface — as an aligned text report: one
// block per locality covering the parcel layer, the parcelport and the
// transport beneath it.
func (rt *Runtime) StatsText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime counters (%s, %d localities)\n", rt.ParcelportName(), rt.Localities())
	for i, loc := range rt.locs {
		fmt.Fprintf(&b, "locality %d:\n", i)
		ls := loc.layer.Stats()
		fmt.Fprintf(&b, "  parcels sent %d in %d messages (%d aggregated, %d cache-exhausted), actions run %d, decode errors %d\n",
			ls.ParcelsSent, ls.MessagesSent, ls.AggregatedSends, ls.CacheExhausted, loc.ParcelsExecuted(), loc.DecodeErrors())
		fmt.Fprintf(&b, "  inline lane: %d run-to-completion, %d demoted to spawn, %d spawned tasks total\n",
			loc.InlineExecuted(), loc.InlineSpilled(), loc.sched.Executed())
		pport := loc.pp
		if agg, ok := pport.(*parcelport.Aggregator); ok {
			as := agg.Stats()
			fmt.Fprintf(&b, "  aggregation: %d msgs in %d bundles (+%d direct, %d cold), flushes %d size / %d age / %d cap / %d order / %d stop, %d unbundled\n",
				as.BundledMessages, as.Bundles, as.DirectSends, as.ColdSends,
				as.SizeFlushes, as.AgeFlushes, as.CapFlushes, as.OrderFlushes, as.StopFlushes, as.Unbundled)
			pport = agg.Inner()
		}
		switch pp := pport.(type) {
		case *mpipp.Parcelport:
			ps := pp.Stats()
			fmt.Fprintf(&b, "  mpi parcelport: %d msgs sent / %d recvd, piggybacked %d nzc / %d trans, pending conns %d\n",
				ps.MessagesSent, ps.MessagesRecvd, ps.HeadersPiggyNZC, ps.HeadersPiggyTr, pp.PendingConnections())
			cs := rt.world.Comm(i).Stats()
			fmt.Fprintf(&b, "  mpi library: %d Test calls, %d lock acquisitions, %v lock wait, %d posted / %d unexpected\n",
				cs.TestCalls, cs.LockAcquires, cs.LockWait.Round(1000), cs.PostedRecvs, cs.UnexpectedMsgs)
		case *lcipp.Parcelport:
			ps := pp.Stats()
			fmt.Fprintf(&b, "  lci parcelport: %d msgs sent / %d recvd, %d retries, %d sync polls, %d devices\n",
				ps.MessagesSent, ps.MessagesRecvd, ps.SendRetries, ps.SyncPolls, pp.Devices())
			ds := loc.lciDev.Stats()
			fmt.Fprintf(&b, "  lci device 0: %d medium / %d puts / %d long sent, %d progress calls, %d unexpected\n",
				ds.MediumSent, ds.PutsSent, ds.LongSent, ds.ProgressCalls, ds.Unexpected)
		case *tcppp.Parcelport:
			ps := pp.Stats()
			fmt.Fprintf(&b, "  tcp parcelport: %d msgs / %d bytes sent, %d msgs / %d bytes recvd\n",
				ps.MessagesSent, ps.BytesSent, ps.MessagesRecvd, ps.BytesRecvd)
		}
		if rt.ppCfg.Transport != parcelport.TransportTCP {
			fs := rt.net.Device(i).Stats()
			fmt.Fprintf(&b, "  fabric: injected %d pkts / %d B, delivered %d pkts / %d B, backpressured %d\n",
				fs.InjectedPackets, fs.InjectedBytes, fs.DeliveredPackets, fs.DeliveredBytes, fs.Backpressured)
			if rt.net.Config().Reliability {
				fmt.Fprintf(&b, "  fabric reliability: %d retransmits, %d acks sent, dropped %d corrupt / %d dup / %d to-down-links, %d links downed\n",
					fs.Retransmits, fs.AcksSent, fs.CorruptDropped, fs.DupDropped, fs.DownDropped, fs.LinksDowned)
				if rt.net.Config().Faults.Active() {
					fmt.Fprintf(&b, "  fabric faults: %d dropped, %d duplicated, %d corrupted, %d latency spikes\n",
						fs.FaultDropped, fs.FaultDuplicated, fs.FaultCorrupted, fs.LatencySpikes)
				}
				peers := make([]string, 0, rt.Localities()-1)
				for j := 0; j < rt.Localities(); j++ {
					if j != i {
						peers = append(peers, fmt.Sprintf("%d:%s", j, rt.net.PeerHealth(i, j)))
					}
				}
				fmt.Fprintf(&b, "  peer health: %s\n", strings.Join(peers, " "))
			}
		}
	}
	return b.String()
}
