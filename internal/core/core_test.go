package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hpxgo/internal/fabric"
	"hpxgo/internal/parcelport"
)

// allConfigs is every Table 1 configuration plus the §3.1 original-MPI
// ablation variants.
func allConfigs() []string {
	var names []string
	for _, c := range parcelport.Table1() {
		names = append(names, c.String())
	}
	return append(names, "mpi_orig", "mpi_orig_i", "tcp", "tcp_i")
}

// newRuntime builds a started runtime with an echo action registered.
func newRuntime(t *testing.T, ppName string, localities int) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Config{
		Localities:         localities,
		WorkersPerLocality: 2,
		Parcelport:         ppName,
		Fabric:             fabric.Config{LatencyNs: 500, GbitsPerSec: 100, Rails: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.MustRegisterAction("echo", func(loc *Locality, args [][]byte) [][]byte {
		return args
	})
	rt.MustRegisterAction("whoami", func(loc *Locality, args [][]byte) [][]byte {
		return [][]byte{{byte(loc.ID())}}
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestCallEchoAllConfigs(t *testing.T) {
	for _, name := range allConfigs() {
		name := name
		t.Run(name, func(t *testing.T) {
			rt := newRuntime(t, name, 2)
			payload := []byte("ping across the fabric")
			f := rt.Locality(0).Call(1, "echo", payload)
			res, err := f.GetTimeout(20 * time.Second)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(res) != 1 || !bytes.Equal(res[0], payload) {
				t.Fatalf("%s: bad echo %q", name, res)
			}
		})
	}
}

func TestLargeZeroCopyArgsAllTransports(t *testing.T) {
	// 16KiB and 64KiB arguments exercise the zero-copy chunk path (and the
	// rendezvous protocols underneath).
	for _, name := range []string{"mpi", "mpi_i", "lci_psr_cq_pin_i", "lci_sr_sy_mt_i", "mpi_orig"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rt := newRuntime(t, name, 2)
			for _, size := range []int{16 * 1024, 64 * 1024} {
				big := make([]byte, size)
				for i := range big {
					big[i] = byte(i * 13)
				}
				f := rt.Locality(0).Call(1, "echo", []byte("small"), big)
				res, err := f.GetTimeout(20 * time.Second)
				if err != nil {
					t.Fatalf("%s size %d: %v", name, size, err)
				}
				if len(res) != 2 || !bytes.Equal(res[1], big) {
					t.Fatalf("%s size %d: payload corrupted", name, size)
				}
			}
		})
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	for _, name := range []string{"mpi_i", "lci_psr_cq_pin_i", "lci_sr_cq_mt_i", "lci_psr_sy_pin_i"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rt := newRuntime(t, name, 2)
			const n = 100
			futs := make([]interface {
				GetTimeout(time.Duration) ([][]byte, error)
			}, n)
			for i := 0; i < n; i++ {
				size := 1 + (i%40)*400 // mixes eager and rendezvous paths
				arg := bytes.Repeat([]byte{byte(i)}, size)
				futs[i] = rt.Locality(0).Call(1, "echo", arg)
			}
			for i, f := range futs {
				res, err := f.GetTimeout(60 * time.Second)
				if err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if len(res) != 1 || len(res[0]) != 1+(i%40)*400 || res[0][0] != byte(i) {
					t.Fatalf("call %d corrupted", i)
				}
			}
		})
	}
}

func TestApplyFireAndForget(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	rt.MustRegisterAction("count", func(loc *Locality, args [][]byte) [][]byte {
		hits.Add(1)
		return nil
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	const n = 50
	for i := 0; i < n; i++ {
		if err := rt.Locality(0).Apply(1, "count", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for hits.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hits.Load() != n {
		t.Fatalf("executed %d actions, want %d", hits.Load(), n)
	}
}

func TestLocalShortCircuit(t *testing.T) {
	rt := newRuntime(t, "lci", 2)
	loc := rt.Locality(0)
	f := loc.Call(0, "whoami")
	res, err := f.GetTimeout(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res[0][0] != 0 {
		t.Fatalf("local call answered by %d", res[0][0])
	}
	// Local invocations must not touch the parcel layer.
	if rt.Locality(0).ParcelLayer().Stats().ParcelsSent != 0 {
		t.Fatal("local call went through the parcel layer")
	}
}

func TestBarrier(t *testing.T) {
	rt := newRuntime(t, "lci", 4)
	if !rt.Barrier(20 * time.Second) {
		t.Fatal("barrier timed out")
	}
}

func TestAllToAll(t *testing.T) {
	for _, name := range []string{"mpi_i", "lci_psr_cq_pin_i"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rt := newRuntime(t, name, 4)
			type futT = interface {
				GetTimeout(time.Duration) ([][]byte, error)
			}
			var futs []futT
			var wants []byte
			for src := 0; src < 4; src++ {
				for dst := 0; dst < 4; dst++ {
					if src == dst {
						continue
					}
					futs = append(futs, rt.Locality(src).Call(dst, "whoami"))
					wants = append(wants, byte(dst))
				}
			}
			for i, f := range futs {
				res, err := f.GetTimeout(30 * time.Second)
				if err != nil {
					t.Fatalf("pair %d: %v", i, err)
				}
				if res[0][0] != wants[i] {
					t.Fatalf("pair %d answered by %d, want %d", i, res[0][0], wants[i])
				}
			}
		})
	}
}

func TestUnknownAction(t *testing.T) {
	rt := newRuntime(t, "lci", 2)
	if err := rt.Locality(0).Apply(1, "nope"); err == nil {
		t.Fatal("Apply of unknown action should fail")
	}
	if _, err := rt.Locality(0).Call(1, "nope").GetTimeout(time.Second); err == nil {
		t.Fatal("Call of unknown action should fail")
	}
}

func TestInvalidDestination(t *testing.T) {
	rt := newRuntime(t, "lci", 2)
	if err := rt.Locality(0).Apply(7, "echo"); err == nil {
		t.Fatal("invalid destination should fail")
	}
	if _, err := rt.Locality(0).Call(-1, "echo").GetTimeout(time.Second); err == nil {
		t.Fatal("negative destination should fail")
	}
}

func TestRegisterAfterStartFails(t *testing.T) {
	rt := newRuntime(t, "lci", 2)
	if _, err := rt.RegisterAction("late", func(*Locality, [][]byte) [][]byte { return nil }); err == nil {
		t.Fatal("registration after Start should fail")
	}
}

func TestDuplicateRegistrationFails(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.MustRegisterAction("a", func(*Locality, [][]byte) [][]byte { return nil })
	if _, err := rt.RegisterAction("a", func(*Locality, [][]byte) [][]byte { return nil }); err == nil {
		t.Fatal("duplicate registration should fail")
	}
}

func TestBadParcelportName(t *testing.T) {
	if _, err := NewRuntime(Config{Parcelport: "smoke-signals"}); err == nil {
		t.Fatal("unknown parcelport name should fail")
	}
}

func TestParcelportNameExposed(t *testing.T) {
	rt := newRuntime(t, "lci", 2)
	if got := rt.ParcelportName(); got != "lci_psr_cq_pin_i" {
		t.Fatalf("ParcelportName = %q", got)
	}
}

func TestMultipleResultBlobs(t *testing.T) {
	rt, err := NewRuntime(Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "mpi"})
	if err != nil {
		t.Fatal(err)
	}
	rt.MustRegisterAction("split", func(loc *Locality, args [][]byte) [][]byte {
		var out [][]byte
		for _, b := range args[0] {
			out = append(out, []byte{b})
		}
		return out
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	res, err := rt.Locality(0).Call(1, "split", []byte{9, 8, 7}).GetTimeout(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0][0] != 9 || res[1][0] != 8 || res[2][0] != 7 {
		t.Fatalf("bad result blobs %v", res)
	}
}

func TestChainedRemoteCalls(t *testing.T) {
	// Locality 0 calls 1, whose action calls 2, testing nested communication
	// from within an action task.
	rt, err := NewRuntime(Config{Localities: 3, WorkersPerLocality: 2, Parcelport: "lci"})
	if err != nil {
		t.Fatal(err)
	}
	rt.MustRegisterAction("leaf", func(loc *Locality, args [][]byte) [][]byte {
		return [][]byte{[]byte(fmt.Sprintf("leaf@%d", loc.ID()))}
	})
	rt.MustRegisterAction("relay", func(loc *Locality, args [][]byte) [][]byte {
		res, err := loc.Call(2, "leaf").GetTimeout(20 * time.Second)
		if err != nil {
			return [][]byte{[]byte("error")}
		}
		return append([][]byte{[]byte("via1")}, res...)
	})
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	res, err := rt.Locality(0).Call(1, "relay").GetTimeout(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || string(res[0]) != "via1" || string(res[1]) != "leaf@2" {
		t.Fatalf("chained call result %q", res)
	}
}

func TestParcelsExecutedCounter(t *testing.T) {
	rt := newRuntime(t, "lci", 2)
	for i := 0; i < 5; i++ {
		if _, err := rt.Locality(0).Call(1, "echo", []byte{1}).GetTimeout(20 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Locality(1).ParcelsExecuted(); got != 5 {
		t.Fatalf("locality 1 executed %d parcels, want 5", got)
	}
}

func TestContinuationEncoding(t *testing.T) {
	// The continuation id must round-trip through the reserved action's
	// binary encoding.
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 0xDEADBEEFCAFE)
	if binary.LittleEndian.Uint64(buf[:]) != 0xDEADBEEFCAFE {
		t.Fatal("encoding sanity")
	}
}

func TestMultiDeviceRuntime(t *testing.T) {
	// The §7.2 future-work configuration: replicated LCI devices per
	// locality, exercised through the full runtime.
	rt, err := NewRuntime(Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		LCIDevices:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.MustRegisterAction("echo3", func(loc *Locality, args [][]byte) [][]byte { return args })
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	for i := 0; i < 30; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 100+i*500)
		res, err := rt.Locality(0).Call(1, "echo3", payload).GetTimeout(20 * time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(res) != 1 || !bytes.Equal(res[0], payload) {
			t.Fatalf("call %d corrupted", i)
		}
	}
}

func TestStatsTextCoversTransports(t *testing.T) {
	for _, tc := range []struct {
		pp     string
		needle string
	}{
		{"lci", "lci parcelport"},
		{"mpi_i", "mpi library"},
		{"tcp", "tcp parcelport"},
	} {
		rt := newRuntime(t, tc.pp, 2)
		if _, err := rt.Locality(0).Call(1, "echo", []byte("x")).GetTimeout(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		text := rt.StatsText()
		if !strings.Contains(text, tc.needle) {
			t.Fatalf("%s stats missing %q:\n%s", tc.pp, tc.needle, text)
		}
		if !strings.Contains(text, "locality 1") {
			t.Fatalf("%s stats missing locality block", tc.pp)
		}
	}
}

func TestTracerRecordsParcelFlow(t *testing.T) {
	rt := newRuntime(t, "lci", 2)
	rt.Trace().Enable(true)
	if _, err := rt.Locality(0).Call(1, "echo", []byte("traced")).GetTimeout(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.Trace().Total() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	var sawCall, sawDeliver, sawRun bool
	for _, e := range rt.Trace().Dump() {
		switch e.Cat + "/" + e.Label {
		case "parcel/call":
			sawCall = true
		case "parcel/deliver":
			sawDeliver = true
		case "action/run":
			sawRun = true
		}
	}
	if !sawCall || !sawDeliver || !sawRun {
		t.Fatalf("trace missing events: call=%v deliver=%v run=%v\n%s",
			sawCall, sawDeliver, sawRun, rt.Trace().String())
	}
}

func TestPendingContinuationsDrains(t *testing.T) {
	rt := newRuntime(t, "lci", 2)
	loc := rt.Locality(0)
	futs := make([]interface {
		GetTimeout(time.Duration) ([][]byte, error)
	}, 10)
	for i := range futs {
		futs[i] = loc.Call(1, "echo", []byte{byte(i)})
	}
	for _, f := range futs {
		if _, err := f.GetTimeout(20 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for loc.PendingContinuations() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := loc.PendingContinuations(); got != 0 {
		t.Fatalf("continuation table leaked %d entries", got)
	}
}
