// Package mpisim implements an MPI-like message-passing library on top of
// the simulated fabric, standing in for OpenMPI/UCX in the paper's testbeds.
// It provides the subset the HPX MPI parcelport uses: nonblocking two-sided
// send/receive with tag matching, wildcard source, an eager protocol for
// small messages and a rendezvous protocol for large ones, and request
// objects completed by Test/Wait.
//
// The library is initialized in (the analogue of) MPI_THREAD_MULTIPLE: any
// goroutine may call any operation. Faithfully to the behaviour the paper
// measures — and blames for the MPI parcelport's collapse under concurrency
// ("the vast majority of time inside the MPI_Test function, spinning on the
// blocking lock of the ucp_progress function") — the entire progress engine
// is guarded by ONE coarse-grained blocking lock. Every Isend, Irecv and
// Test serializes on it. Matching uses linear scans of the posted-receive
// and unexpected-message queues, as real MPI implementations effectively do
// for wildcard-heavy workloads.
package mpisim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hpxgo/internal/fabric"
)

// Wildcards and tag bounds.
const (
	// AnySource matches a receive against any sender rank.
	AnySource = -1
	// AnyTag matches a receive against any tag.
	AnyTag = -1
	// TagUB is the exclusive upper bound for tags, mirroring MPI_TAG_UB.
	TagUB = 1 << 20
)

// Wire opcodes.
const (
	opEager uint8 = iota + 1
	opRTS
	opCTS
	opRData
)

// Config tunes the library.
type Config struct {
	// EagerThreshold is the largest payload sent eagerly. Above it the
	// rendezvous protocol adds a round trip — modelling the UCX protocol
	// switch the paper suspects behind the MPI latency jump for >1KiB
	// messages (Fig. 7). Default 1024.
	EagerThreshold int
	// MaxPendingRndv bounds concurrent rendezvous sends per communicator.
	// Default 1 << 16.
	MaxPendingRndv int
}

func (c *Config) fillDefaults() {
	if c.EagerThreshold <= 0 {
		c.EagerThreshold = 1024
	}
	if c.MaxPendingRndv <= 0 {
		c.MaxPendingRndv = 1 << 16
	}
}

// World is the set of communicators, one per fabric node (like
// MPI_COMM_WORLD split over ranks).
type World struct {
	cfg   Config
	comms []*Comm
}

// NewWorld creates one communicator per node of the network.
func NewWorld(net *fabric.Network, cfg Config) *World {
	cfg.fillDefaults()
	w := &World{cfg: cfg}
	n := net.Config().Nodes
	w.comms = make([]*Comm, n)
	for i := 0; i < n; i++ {
		c := &Comm{
			world:       w,
			rank:        i,
			size:        n,
			dev:         net.Device(i),
			sendPending: make(map[uint32]*Request),
			recvPending: make(map[uint32]*Request),
			txSeq:       make([]uint64, n),
			rxSeq:       make([]uint64, n),
			rxHeld:      make([]map[uint64]*fabric.Packet, n),
		}
		for s := range c.rxHeld {
			c.rxHeld[s] = make(map[uint64]*fabric.Packet)
		}
		w.comms[i] = c
	}
	return w
}

// Comm returns the communicator of the given rank.
func (w *World) Comm(rank int) *Comm { return w.comms[rank] }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.comms) }

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int // bytes received
}

// reqKind distinguishes send and receive requests.
type reqKind uint8

const (
	kindSend reqKind = iota
	kindRecv
)

// Request is a nonblocking operation handle, the analogue of MPI_Request.
type Request struct {
	comm      *Comm
	kind      reqKind
	buf       []byte
	peer      int // destination (send) / source filter (recv, may be AnySource)
	tag       int // tag (recv may be AnyTag)
	handle    uint32
	done      atomic.Bool
	cancelled bool
	status    Status
}

// Done reports completion without driving progress (cheap atomic read).
func (r *Request) Done() bool { return r.done.Load() }

// Status returns the completion status; only valid once Done.
func (r *Request) Status() Status { return r.status }

// inbound is an unexpected arrival (eager payload or rendezvous RTS).
type inbound struct {
	src  int
	tag  int
	rts  bool
	pkt  *fabric.Packet // eager: payload; rts: the RTS packet
	size int
}

// Comm is a per-rank communicator. All state below mu is protected by the
// single coarse progress lock.
type Comm struct {
	world *World
	rank  int
	size  int
	dev   *fabric.Device

	mu         sync.Mutex // THE coarse-grained progress-engine lock
	posted     []*Request // posted receives, matched by linear scan
	unexpected []inbound  // unexpected arrivals, matched by linear scan

	sendPending map[uint32]*Request // rendezvous sends awaiting CTS
	recvPending map[uint32]*Request // rendezvous receives awaiting data
	nextHandle  uint32

	deferred []fabric.Packet // backpressured injections to retry in progress

	// MPI's non-overtaking rule requires that messages between a pair of
	// ranks match in the order they were sent, even though the fabric (like
	// real multi-rail hardware) may reorder packets. Every injected packet
	// carries a per-destination sequence number; arrivals are released to
	// the matching engine strictly in sequence, parking early packets in a
	// reorder buffer — the bookkeeping real transports (UCX, verbs RC QPs)
	// do for MPI.
	txSeq  []uint64
	rxSeq  []uint64
	rxHeld []map[uint64]*fabric.Packet

	// Profiling counters (the analogue of the paper's "time spent inside
	// MPI_Test, spinning on the blocking lock of ucp_progress").
	lockWaitNs    atomic.Int64
	lockAcquires  atomic.Uint64
	testCalls     atomic.Uint64
	progressPolls atomic.Uint64
}

// CommStats is a snapshot of a communicator's profiling counters.
type CommStats struct {
	// LockWait is the cumulative time callers spent waiting to acquire the
	// coarse progress lock.
	LockWait time.Duration
	// LockAcquires counts acquisitions of the progress lock.
	LockAcquires uint64
	// TestCalls counts Request.Test invocations.
	TestCalls uint64
	// ProgressPolls counts packets drained by the progress engine.
	ProgressPolls uint64
	// PostedRecvs and UnexpectedMsgs are the current queue lengths.
	PostedRecvs    int
	UnexpectedMsgs int
}

// Stats returns a snapshot of the communicator's profiling counters.
func (c *Comm) Stats() CommStats {
	c.lock()
	posted, unexp := len(c.posted), len(c.unexpected)
	c.mu.Unlock()
	return CommStats{
		LockWait:       time.Duration(c.lockWaitNs.Load()),
		LockAcquires:   c.lockAcquires.Load(),
		TestCalls:      c.testCalls.Load(),
		ProgressPolls:  c.progressPolls.Load(),
		PostedRecvs:    posted,
		UnexpectedMsgs: unexp,
	}
}

// lock acquires the coarse progress lock, accounting wait time.
func (c *Comm) lock() {
	if c.mu.TryLock() {
		c.lockAcquires.Add(1)
		return
	}
	start := time.Now()
	c.mu.Lock()
	c.lockWaitNs.Add(time.Since(start).Nanoseconds())
	c.lockAcquires.Add(1)
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// EagerThreshold returns the configured eager/rendezvous switch point.
func (c *Comm) EagerThreshold() int { return c.world.cfg.EagerThreshold }

// Isend starts a nonblocking send of buf to dst with the given tag. The
// buffer must not be modified until the request completes.
func (c *Comm) Isend(buf []byte, dst, tag int) (*Request, error) {
	if dst < 0 || dst >= c.size {
		return nil, fmt.Errorf("mpisim: invalid destination rank %d", dst)
	}
	if tag < 0 || tag >= TagUB {
		return nil, fmt.Errorf("mpisim: invalid tag %d", tag)
	}
	r := &Request{comm: c, kind: kindSend, buf: buf, peer: dst, tag: tag}
	c.lock()
	defer c.mu.Unlock()
	if len(buf) <= c.world.cfg.EagerThreshold {
		c.injectLocked(fabric.Packet{Dst: dst, Op: opEager, T0: uint64(tag), Data: buf})
		r.done.Store(true)
		r.status = Status{Source: c.rank, Tag: tag, Count: len(buf)}
		return r, nil
	}
	if len(c.sendPending) >= c.world.cfg.MaxPendingRndv {
		return nil, errors.New("mpisim: too many pending rendezvous sends")
	}
	h := c.allocHandleLocked(c.sendPending)
	r.handle = h
	c.sendPending[h] = r
	c.injectLocked(fabric.Packet{
		Dst: dst, Op: opRTS,
		T0: uint64(tag),
		T1: uint64(h)<<32 | uint64(uint32(len(buf))),
	})
	return r, nil
}

// Irecv posts a nonblocking receive into buf from src (or AnySource) with
// the given tag (or AnyTag).
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	if src != AnySource && (src < 0 || src >= c.size) {
		return nil, fmt.Errorf("mpisim: invalid source rank %d", src)
	}
	if tag != AnyTag && (tag < 0 || tag >= TagUB) {
		return nil, fmt.Errorf("mpisim: invalid tag %d", tag)
	}
	r := &Request{comm: c, kind: kindRecv, buf: buf, peer: src, tag: tag}
	c.lock()
	defer c.mu.Unlock()
	// Check the unexpected queue first (linear scan, oldest first).
	for i := range c.unexpected {
		u := &c.unexpected[i]
		if (src == AnySource || u.src == src) && (tag == AnyTag || u.tag == tag) {
			ib := *u
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			c.matchInboundLocked(r, ib)
			return r, nil
		}
	}
	c.posted = append(c.posted, r)
	return r, nil
}

// Test drives progress and reports whether the request has completed. Like
// MPI_Test it may be called repeatedly from any thread; every call takes the
// progress lock.
func (r *Request) Test() bool {
	r.comm.testCalls.Add(1)
	if r.done.Load() {
		return true
	}
	c := r.comm
	c.lock()
	c.progressLocked()
	c.mu.Unlock()
	return r.done.Load()
}

// Wait blocks (spinning on Test) until the request completes.
func (r *Request) Wait() Status {
	for !r.Test() {
	}
	return r.status
}

// Cancel removes a not-yet-matched receive request. It returns true if the
// request was cancelled, false if it already completed (or is a send).
func (r *Request) Cancel() bool {
	if r.kind != kindRecv {
		return false
	}
	c := r.comm
	c.lock()
	defer c.mu.Unlock()
	if r.done.Load() {
		return false
	}
	for i, pr := range c.posted {
		if pr == r {
			c.posted = append(c.posted[:i], c.posted[i+1:]...)
			r.cancelled = true
			r.done.Store(true)
			return true
		}
	}
	return false
}

// Progress drives the engine once without testing any particular request
// (used by background loops and tests).
func (c *Comm) Progress() {
	c.lock()
	c.progressLocked()
	c.mu.Unlock()
}

// PendingCounts reports (posted receives, unexpected messages) for tests.
func (c *Comm) PendingCounts() (posted, unexpected int) {
	c.lock()
	defer c.mu.Unlock()
	return len(c.posted), len(c.unexpected)
}

// --- internals (all called with c.mu held) ---

// allocHandleLocked finds an unused handle id in m.
func (c *Comm) allocHandleLocked(m map[uint32]*Request) uint32 {
	for {
		c.nextHandle++
		if _, taken := m[c.nextHandle]; !taken && c.nextHandle != 0 {
			return c.nextHandle
		}
	}
}

// injectLocked sends a packet, deferring it on backpressure. MPI has no
// user-visible retry semantics, so backpressure is absorbed internally.
// Every packet is stamped with the per-destination sequence number that
// enforces non-overtaking at the receiver.
func (c *Comm) injectLocked(p fabric.Packet) {
	p.T2 = c.txSeq[p.Dst]
	c.txSeq[p.Dst]++
	if len(c.deferred) > 0 {
		// Preserve injection order behind already-deferred packets.
		c.deferred = append(c.deferred, clonePacket(p))
		return
	}
	if err := c.dev.Inject(p); err != nil {
		c.deferred = append(c.deferred, clonePacket(p))
	}
}

// clonePacket copies the payload so deferred packets survive buffer reuse.
// (Eager sends complete immediately, allowing the caller to reuse buf.)
func clonePacket(p fabric.Packet) fabric.Packet {
	if len(p.Data) > 0 {
		d := make([]byte, len(p.Data))
		copy(d, p.Data)
		p.Data = d
	}
	return p
}

const progressBatch = 64

// progressLocked drains deferred injections and arrived packets.
func (c *Comm) progressLocked() {
	if len(c.deferred) > 0 {
		// Batch-inject the backlog: consecutive same-destination packets share
		// one rail-lock acquisition. On backpressure n stops short and the
		// remainder stays queued in order.
		n, _ := c.dev.InjectBatch(c.deferred)
		if n > 0 {
			rem := copy(c.deferred, c.deferred[n:])
			for i := rem; i < len(c.deferred); i++ {
				c.deferred[i] = fabric.Packet{}
			}
			c.deferred = c.deferred[:rem]
		}
	}
	for i := 0; i < progressBatch; i++ {
		pkt := c.dev.Poll()
		if pkt == nil {
			return
		}
		c.progressPolls.Add(1)
		c.admitLocked(pkt)
	}
}

// admitLocked releases arrivals to the matching engine in per-source
// sequence order, holding early packets until their predecessors land.
func (c *Comm) admitLocked(pkt *fabric.Packet) {
	src := pkt.Src
	if pkt.T2 != c.rxSeq[src] {
		c.rxHeld[src][pkt.T2] = pkt
		return
	}
	c.dispatchLocked(pkt)
	c.rxSeq[src]++
	for {
		next, ok := c.rxHeld[src][c.rxSeq[src]]
		if !ok {
			return
		}
		delete(c.rxHeld[src], c.rxSeq[src])
		c.dispatchLocked(next)
		c.rxSeq[src]++
	}
}

func (c *Comm) dispatchLocked(pkt *fabric.Packet) {
	switch pkt.Op {
	case opEager:
		ib := inbound{src: pkt.Src, tag: int(pkt.T0), pkt: pkt, size: len(pkt.Data)}
		if r := c.findPostedLocked(ib.src, ib.tag); r != nil {
			c.matchInboundLocked(r, ib)
		} else {
			c.unexpected = append(c.unexpected, ib)
		}
	case opRTS:
		ib := inbound{src: pkt.Src, tag: int(pkt.T0), rts: true, pkt: pkt, size: int(uint32(pkt.T1))}
		if r := c.findPostedLocked(ib.src, ib.tag); r != nil {
			c.matchInboundLocked(r, ib)
		} else {
			c.unexpected = append(c.unexpected, ib)
		}
	case opCTS:
		h := uint32(pkt.T0)
		recvH := uint32(pkt.T1)
		src := pkt.Src
		pkt.Release()
		r := c.sendPending[h]
		if r == nil {
			return // duplicate/late CTS: ignore
		}
		delete(c.sendPending, h)
		c.injectLocked(fabric.Packet{Dst: src, Op: opRData, T0: uint64(recvH), Data: r.buf})
		r.status = Status{Source: c.rank, Tag: r.tag, Count: len(r.buf)}
		r.done.Store(true)
	case opRData:
		h := uint32(pkt.T0)
		r := c.recvPending[h]
		if r == nil {
			pkt.Release()
			return
		}
		delete(c.recvPending, h)
		// Source and Tag were recorded at match time (they may have come
		// from wildcards); only the byte count is new here.
		r.status.Count = copy(r.buf, pkt.Data)
		pkt.Release()
		r.done.Store(true)
	}
}

// findPostedLocked scans the posted queue for the first matching receive and
// removes it.
func (c *Comm) findPostedLocked(src, tag int) *Request {
	for i, r := range c.posted {
		if (r.peer == AnySource || r.peer == src) && (r.tag == AnyTag || r.tag == tag) {
			c.posted = append(c.posted[:i], c.posted[i+1:]...)
			return r
		}
	}
	return nil
}

// matchInboundLocked completes a receive against an inbound eager payload or
// starts the rendezvous acceptance for an RTS.
func (c *Comm) matchInboundLocked(r *Request, ib inbound) {
	if !ib.rts {
		n := copy(r.buf, ib.pkt.Data)
		ib.pkt.Release()
		r.status = Status{Source: ib.src, Tag: ib.tag, Count: n}
		r.done.Store(true)
		return
	}
	h := c.allocHandleLocked(c.recvPending)
	r.handle = h
	r.status = Status{Source: ib.src, Tag: ib.tag}
	c.recvPending[h] = r
	sendH := uint32(ib.pkt.T1 >> 32)
	ib.pkt.Release()
	c.injectLocked(fabric.Packet{Dst: ib.src, Op: opCTS, T0: uint64(sendH), T1: uint64(h)})
}
