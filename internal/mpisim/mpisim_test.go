package mpisim

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hpxgo/internal/fabric"
)

func world(t *testing.T, nodes int, fcfg fabric.Config, cfg Config) *World {
	t.Helper()
	fcfg.Nodes = nodes
	net, err := fabric.NewNetwork(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewWorld(net, cfg)
}

func waitDone(t *testing.T, r *Request, timeout time.Duration, others ...*Comm) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.Test() {
			return r.Status()
		}
		for _, c := range others {
			c.Progress()
		}
	}
	t.Fatalf("request did not complete within %v", timeout)
	return Status{}
}

func TestEagerSendRecv(t *testing.T) {
	w := world(t, 2, fabric.Config{LatencyNs: 100}, Config{})
	a, b := w.Comm(0), w.Comm(1)
	buf := make([]byte, 64)
	rr, err := b.Irecv(buf, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := a.Isend([]byte("eager hello"), 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Test() {
		t.Fatal("eager send should complete immediately")
	}
	st := waitDone(t, rr, time.Second, a)
	if st.Source != 0 || st.Tag != 5 || st.Count != len("eager hello") {
		t.Fatalf("bad status %+v", st)
	}
	if string(buf[:st.Count]) != "eager hello" {
		t.Fatalf("bad payload %q", buf[:st.Count])
	}
}

func TestEagerUnexpected(t *testing.T) {
	w := world(t, 2, fabric.Config{}, Config{})
	a, b := w.Comm(0), w.Comm(1)
	if _, err := a.Isend([]byte("surprise"), 1, 3); err != nil {
		t.Fatal(err)
	}
	// Drive b until the message sits in the unexpected queue.
	deadline := time.Now().Add(time.Second)
	for {
		b.Progress()
		if _, u := b.PendingCounts(); u == 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("message never became unexpected")
		}
	}
	buf := make([]byte, 16)
	rr, err := b.Irecv(buf, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Test() {
		t.Fatal("receive should match the unexpected message synchronously")
	}
	if string(buf[:rr.Status().Count]) != "surprise" {
		t.Fatalf("bad payload")
	}
}

func TestWildcardSourceAndTag(t *testing.T) {
	w := world(t, 3, fabric.Config{}, Config{})
	b := w.Comm(1)
	buf := make([]byte, 32)
	rr, err := b.Irecv(buf, AnySource, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Comm(2).Isend([]byte("from two"), 1, 17); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, rr, time.Second)
	if st.Source != 2 || st.Tag != 17 {
		t.Fatalf("wildcard status %+v", st)
	}
}

func TestRendezvousLarge(t *testing.T) {
	w := world(t, 2, fabric.Config{LatencyNs: 100}, Config{EagerThreshold: 256})
	a, b := w.Comm(0), w.Comm(1)
	payload := make([]byte, 10000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	buf := make([]byte, len(payload))
	rr, err := b.Irecv(buf, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := a.Isend(payload, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Test() {
		t.Fatal("rendezvous send must not complete before CTS")
	}
	st := waitDone(t, rr, 2*time.Second, a)
	if st.Count != len(payload) || !bytes.Equal(buf, payload) {
		t.Fatal("rendezvous payload corrupted")
	}
	waitDone(t, sr, 2*time.Second, b)
}

func TestRendezvousUnexpectedRTS(t *testing.T) {
	w := world(t, 2, fabric.Config{}, Config{EagerThreshold: 64})
	a, b := w.Comm(0), w.Comm(1)
	payload := make([]byte, 500)
	sr, err := a.Isend(payload, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		b.Progress()
		if _, u := b.PendingCounts(); u == 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("RTS never queued as unexpected")
		}
	}
	buf := make([]byte, 500)
	rr, err := b.Irecv(buf, AnySource, 2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, rr, 2*time.Second, a, b)
	waitDone(t, sr, 2*time.Second, a, b)
	if rr.Status().Source != 0 {
		t.Fatalf("bad source %d", rr.Status().Source)
	}
}

func TestWildcardRecvRendezvousStatus(t *testing.T) {
	// A wildcard receive matched by an RTS must report the real source/tag.
	w := world(t, 3, fabric.Config{}, Config{EagerThreshold: 16})
	b := w.Comm(0)
	buf := make([]byte, 256)
	rr, err := b.Irecv(buf, AnySource, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Comm(2).Isend(make([]byte, 256), 0, 9); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, rr, 2*time.Second, w.Comm(2))
	if st.Source != 2 || st.Tag != 9 || st.Count != 256 {
		t.Fatalf("bad rendezvous wildcard status %+v", st)
	}
}

func TestValidation(t *testing.T) {
	w := world(t, 2, fabric.Config{}, Config{})
	a := w.Comm(0)
	if _, err := a.Isend(nil, 9, 0); err == nil {
		t.Fatal("expected invalid rank error")
	}
	if _, err := a.Isend(nil, 1, -1); err == nil {
		t.Fatal("expected invalid tag error")
	}
	if _, err := a.Isend(nil, 1, TagUB); err == nil {
		t.Fatal("expected tag >= TagUB error")
	}
	if _, err := a.Irecv(nil, 7, 0); err == nil {
		t.Fatal("expected invalid source error")
	}
	if _, err := a.Irecv(nil, AnySource, TagUB); err == nil {
		t.Fatal("expected invalid recv tag error")
	}
}

func TestCancel(t *testing.T) {
	w := world(t, 2, fabric.Config{}, Config{})
	b := w.Comm(1)
	rr, err := b.Irecv(make([]byte, 8), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Cancel() {
		t.Fatal("cancel of unmatched receive failed")
	}
	if !rr.Done() {
		t.Fatal("cancelled request should be done")
	}
	if rr.Cancel() {
		t.Fatal("double cancel should fail")
	}
	if p, _ := b.PendingCounts(); p != 0 {
		t.Fatal("cancelled receive still posted")
	}
	sr, _ := w.Comm(0).Isend([]byte("x"), 1, 1)
	if !sr.Done() {
		t.Fatal("eager send not done")
	}
	if sr.Cancel() {
		t.Fatal("cancel of a send should fail")
	}
}

func TestManyConcurrentMessagesDistinctTags(t *testing.T) {
	// The access pattern that hurts MPI in the paper: many concurrent
	// messages with arbitrary tags and wildcard-free matching, driven from
	// several goroutines calling Test (all serializing on the coarse lock).
	w := world(t, 2, fabric.Config{LatencyNs: 50}, Config{EagerThreshold: 512})
	a, b := w.Comm(0), w.Comm(1)
	const n = 300
	recvs := make([]*Request, n)
	for i := 0; i < n; i++ {
		var err error
		recvs[i], err = b.Irecv(make([]byte, 16), 0, i+1)
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 3 {
				r, err := a.Isend([]byte(fmt.Sprintf("m%04d", i)), 1, i+1)
				if err != nil {
					t.Errorf("Isend: %v", err)
					return
				}
				for !r.Test() {
					runtime.Gosched()
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for i, r := range recvs {
		for !r.Test() {
			if !time.Now().Before(deadline) {
				t.Fatalf("receive %d never completed", i)
			}
			runtime.Gosched()
		}
		if got := string(r.buf[:r.Status().Count]); got != fmt.Sprintf("m%04d", i) {
			t.Fatalf("recv %d got %q", i, got)
		}
	}
}

func TestEagerRoundTripProperty(t *testing.T) {
	w := world(t, 2, fabric.Config{}, Config{EagerThreshold: 1 << 16})
	a, b := w.Comm(0), w.Comm(1)
	tag := 0
	f := func(data []byte) bool {
		tag = (tag + 1) % TagUB
		if tag == 0 {
			tag = 1
		}
		buf := make([]byte, len(data))
		rr, err := b.Irecv(buf, 0, tag)
		if err != nil {
			return false
		}
		if _, err := a.Isend(data, 1, tag); err != nil {
			return false
		}
		deadline := time.Now().Add(time.Second)
		for !rr.Test() {
			if !time.Now().Before(deadline) {
				return false
			}
		}
		return rr.Status().Count == len(data) && bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBackpressureDeferred(t *testing.T) {
	// A tiny injection window forces the library to defer packets and flush
	// them from progress, transparently to the user.
	w := world(t, 2, fabric.Config{MaxInflight: 2, LatencyNs: 1000}, Config{})
	a, b := w.Comm(0), w.Comm(1)
	const n = 50
	recvs := make([]*Request, n)
	for i := 0; i < n; i++ {
		recvs[i], _ = b.Irecv(make([]byte, 8), 0, i+1)
	}
	for i := 0; i < n; i++ {
		if _, err := a.Isend([]byte{byte(i)}, 1, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range recvs {
		st := waitDone(t, r, 5*time.Second, a, b)
		if st.Count != 1 || r.buf[0] != byte(i) {
			t.Fatalf("recv %d corrupted", i)
		}
	}
}

func TestWorldAccessors(t *testing.T) {
	w := world(t, 4, fabric.Config{}, Config{EagerThreshold: 2048})
	if w.Size() != 4 {
		t.Fatalf("Size = %d", w.Size())
	}
	c := w.Comm(2)
	if c.Rank() != 2 || c.Size() != 4 || c.EagerThreshold() != 2048 {
		t.Fatalf("accessors wrong: rank=%d size=%d eager=%d", c.Rank(), c.Size(), c.EagerThreshold())
	}
}

func TestNonOvertakingOnReorderingFabric(t *testing.T) {
	// MPI's non-overtaking rule: two messages from the same sender with the
	// same tag must match posted receives in send order, even on a
	// multi-rail fabric that reorders packets. A small eager message sent
	// after a large rendezvous one would otherwise overtake it.
	w := world(t, 2, fabric.Config{LatencyNs: 0, GbitsPerSec: 1, Rails: 4}, Config{EagerThreshold: 64})
	a, b := w.Comm(0), w.Comm(1)
	const tag = 5
	big := make([]byte, 32*1024) // slow rendezvous
	big[0] = 'B'
	small := []byte{'S'}

	buf1 := make([]byte, 64*1024)
	buf2 := make([]byte, 64*1024)
	r1, err := b.Irecv(buf1, 0, tag)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Irecv(buf2, 0, tag)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Isend(big, 1, tag); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Isend(small, 1, tag); err != nil {
		t.Fatal(err)
	}
	st1 := waitDone(t, r1, 5*time.Second, a, b)
	st2 := waitDone(t, r2, 5*time.Second, a, b)
	if st1.Count != len(big) || buf1[0] != 'B' {
		t.Fatalf("first posted receive got %d bytes (lead %q), want the big message", st1.Count, buf1[0])
	}
	if st2.Count != 1 || buf2[0] != 'S' {
		t.Fatalf("second posted receive got %d bytes, want the small message", st2.Count)
	}
}

func TestInOrderManySameTag(t *testing.T) {
	// A stream of same-tag eager messages across a reordering fabric must
	// arrive in posted order.
	w := world(t, 2, fabric.Config{LatencyNs: 100, Rails: 4}, Config{})
	a, b := w.Comm(0), w.Comm(1)
	const n = 100
	recvs := make([]*Request, n)
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 4)
		var err error
		recvs[i], err = b.Irecv(bufs[i], 0, 3)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := a.Isend([]byte{byte(i)}, 1, 3); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		waitDone(t, recvs[i], 5*time.Second, a, b)
		if bufs[i][0] != byte(i) {
			t.Fatalf("receive %d matched message %d: overtaking", i, bufs[i][0])
		}
	}
}
