package mpisim

import (
	"testing"

	"hpxgo/internal/fabric"
)

func benchWorld(b *testing.B, cfg Config) *World {
	b.Helper()
	net, err := fabric.NewNetwork(fabric.Config{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	return NewWorld(net, cfg)
}

func BenchmarkEagerSendRecv(b *testing.B) {
	w := benchWorld(b, Config{})
	a, peer := w.Comm(0), w.Comm(1)
	payload := make([]byte, 64)
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := i%1000 + 2
		rr, err := peer.Irecv(buf, 0, tag)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Isend(payload, 1, tag); err != nil {
			b.Fatal(err)
		}
		for !rr.Test() {
		}
	}
}

func BenchmarkRendezvous16K(b *testing.B) {
	w := benchWorld(b, Config{})
	a, peer := w.Comm(0), w.Comm(1)
	payload := make([]byte, 16*1024)
	buf := make([]byte, 16*1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := i%1000 + 2
		rr, err := peer.Irecv(buf, 0, tag)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := a.Isend(payload, 1, tag)
		if err != nil {
			b.Fatal(err)
		}
		for !rr.Test() {
			sr.Test()
		}
	}
}

// BenchmarkTestOnPendingList measures the O(pending) polling cost the MPI
// parcelport pays: Test of one incomplete request while many receives sit
// posted (each Test takes the coarse lock and drives progress).
func BenchmarkTestOnPendingList(b *testing.B) {
	w := benchWorld(b, Config{})
	peer := w.Comm(1)
	for i := 0; i < 256; i++ {
		if _, err := peer.Irecv(make([]byte, 8), 0, i+2); err != nil {
			b.Fatal(err)
		}
	}
	r, err := peer.Irecv(make([]byte, 8), 0, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Test() {
			b.Fatal("request unexpectedly complete")
		}
	}
}
