package mpisim

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"hpxgo/internal/fabric"
)

// TestRandomizedTraffic fuzzes the library with a random mix of eager and
// rendezvous messages, random tags (including deliberate same-tag streams
// that exercise the non-overtaking order), and wildcard receives, over a
// reordering multi-rail fabric.
func TestRandomizedTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	w := world(t, 2, fabric.Config{LatencyNs: 150, Rails: 3}, Config{EagerThreshold: 1024})
	a, b := w.Comm(0), w.Comm(1)

	const nOps = 300
	payloads := make([][]byte, nOps)
	recvs := make([]*Request, nOps)
	bufs := make([][]byte, nOps)

	// Tags repeat every 10 ops: several same-tag in-order streams.
	tagOf := func(i int) int { return i%10 + 2 }

	for i := 0; i < nOps; i++ {
		size := 1 + rng.Intn(8192)
		payloads[i] = make([]byte, size)
		rng.Read(payloads[i])
		// Encode the op index in the first bytes so order within a tag
		// stream is checkable.
		payloads[i][0] = byte(i)
		if size > 1 {
			payloads[i][1] = byte(i >> 8)
		}
		bufs[i] = make([]byte, 8192)
		var err error
		recvs[i], err = b.Irecv(bufs[i], 0, tagOf(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nOps; i++ {
		if _, err := a.Isend(payloads[i], 1, tagOf(i)); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < nOps; i++ {
		for !recvs[i].Test() {
			if !time.Now().Before(deadline) {
				t.Fatalf("receive %d never completed", i)
			}
			a.Progress()
		}
		st := recvs[i].Status()
		if st.Count != len(payloads[i]) {
			t.Fatalf("recv %d: %d bytes, want %d", i, st.Count, len(payloads[i]))
		}
		if !bytes.Equal(bufs[i][:st.Count], payloads[i]) {
			t.Fatalf("recv %d corrupted", i)
		}
	}
}
