package lci

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hpxgo/internal/fabric"
)

// chunkFabric is the 2-node fabric the chunked-rendezvous tests run on:
// Expanse-like latency/bandwidth so the striping actually exercises the
// per-rail wire clocks.
func chunkFabric(rails int) fabric.Config {
	return fabric.Config{
		Nodes:               2,
		LatencyNs:           1000,
		GbitsPerSec:         100,
		Rails:               rails,
		PacketOverheadBytes: 64,
	}
}

// runLong performs one posted-first long transfer of payload from a to b
// into buf, driving both progress engines until the receive completes, and
// verifies the reassembled bytes.
func runLong(t *testing.T, a, b *Device, cq *CompQueue, payload, buf []byte, tag uint32) {
	t.Helper()
	if err := b.Recvl(0, tag, buf, cq, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := a.Sendl(1, tag, payload, nil, nil)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrRetry) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("Sendl retried past deadline")
		}
		a.Progress()
		b.Progress()
	}
	progressUntil(t, 10*time.Second, func() bool {
		_, ok := cq.Pop()
		return ok
	}, a, b)
	if !bytes.Equal(buf[:len(payload)], payload) {
		t.Fatalf("reassembled payload differs (size %d)", len(payload))
	}
}

// TestChunkedRendezvousBasic: a 1 MiB rendezvous striped as 16 KiB chunks
// over 4 rails reassembles byte-identically.
func TestChunkedRendezvousBasic(t *testing.T) {
	a, b := pair(t, chunkFabric(4), Config{ChunkSize: 16 << 10})
	cq := NewCompQueue(16)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	buf := make([]byte, len(payload))
	runLong(t, a, b, cq, payload, buf, 3)
	if got := b.Stats().LongRecvd; got != 1 {
		t.Fatalf("LongRecvd = %d, want 1", got)
	}
}

// TestChunkedRendezvousProperty: randomized sizes (including non-multiples
// of the chunk size and single-chunk edge cases), chunk sizes, stripe
// widths and rail counts. Rails >= 2 make chunks genuinely arrive
// interleaved across rails, so this doubles as the reordering property
// test: reassembly is by offset and must not care about arrival order.
func TestChunkedRendezvousProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 24; trial++ {
		rails := []int{2, 3, 4, 8}[rng.Intn(4)]
		chunk := []int{4 << 10, 16 << 10, 64 << 10}[rng.Intn(3)]
		stripe := rng.Intn(rails + 2) // 0 = all rails; may exceed rail count (clamped)
		size := chunk + rng.Intn(8*chunk) + rng.Intn(1024)
		t.Run(fmt.Sprintf("trial%d_r%d_c%d_s%d_n%d", trial, rails, chunk, stripe, size), func(t *testing.T) {
			a, b := pair(t, chunkFabric(rails), Config{ChunkSize: chunk, StripeWidth: stripe})
			cq := NewCompQueue(16)
			payload := make([]byte, size)
			rng.Read(payload)
			buf := make([]byte, size)
			runLong(t, a, b, cq, payload, buf, uint32(trial))
		})
	}
}

// TestChunkedRendezvousChaos: seeded packet drops force the ARQ to
// retransmit chunks (and possibly the FIN); every transfer must still
// reassemble byte-identically and complete exactly once.
func TestChunkedRendezvousChaos(t *testing.T) {
	fcfg := chunkFabric(4)
	fcfg.Faults = fabric.FaultConfig{DropProb: 0.05, Seed: 42}
	fcfg.RetransmitTimeoutNs = 50_000
	a, b := pair(t, fcfg, Config{ChunkSize: 16 << 10})
	cq := NewCompQueue(16)
	const transfers = 8
	payload := make([]byte, 256<<10)
	buf := make([]byte, len(payload))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < transfers; i++ {
		rng.Read(payload)
		runLong(t, a, b, cq, payload, buf, uint32(i))
	}
	if got := b.Stats().LongRecvd; got != transfers {
		t.Fatalf("LongRecvd = %d, want exactly %d (exactly-once delivery)", got, transfers)
	}
	if _, ok := cq.Pop(); ok {
		t.Fatal("spurious extra completion in the queue")
	}
}

// TestLostCTSRetry: with MaxInflight 1 and the reverse rail already
// occupied, the CTS inject backpressures inside acceptRTS. The CTS must be
// parked and retried — before the fix it was silently dropped, deadlocking
// the rendezvous.
func TestLostCTSRetry(t *testing.T) {
	fcfg := chunkFabric(1)
	fcfg.MaxInflight = 1
	a, b := pair(t, fcfg, Config{ChunkSize: 16 << 10})
	cq := NewCompQueue(16)

	// Occupy the b→a rail so the CTS hits the inflight cap: a medium
	// message queued toward a counts against the rail until a polls it,
	// but a is not progressed until after b has handled the RTS.
	if err := b.Sendm(0, 99, []byte("filler"), nil, nil); err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	buf := make([]byte, len(payload))
	if err := b.Recvl(0, 5, buf, cq, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Sendl(1, 5, payload, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Let b accept the RTS while the reverse rail is still full: the CTS
	// inject must backpressure and park rather than vanish.
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("CTS never hit backpressure; test setup no longer blocks the reverse rail")
		}
		b.Progress()
	}
	progressUntil(t, 10*time.Second, func() bool {
		_, ok := cq.Pop()
		return ok
	}, a, b)
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload mismatch after CTS retry")
	}
}

// TestLongHandlePressureInterleaved: more concurrent striped transfers than
// MaxLongHandles allows. Sendl reports ErrRetry under handle exhaustion
// (send handles now stay live until the remote FIN) and every transfer must
// still complete byte-identically.
func TestLongHandlePressureInterleaved(t *testing.T) {
	a, b := pair(t, chunkFabric(4), Config{ChunkSize: 16 << 10, MaxLongHandles: 2})
	cq := NewCompQueue(32)
	const transfers = 6
	payloads := make([][]byte, transfers)
	bufs := make([][]byte, transfers)
	rng := rand.New(rand.NewSource(11))
	for i := range payloads {
		payloads[i] = make([]byte, 96<<10)
		rng.Read(payloads[i])
		bufs[i] = make([]byte, len(payloads[i]))
		if err := b.Recvl(0, uint32(i), bufs[i], cq, nil); err != nil {
			t.Fatal(err)
		}
	}
	sent, sawRetry := 0, false
	deadline := time.Now().Add(10 * time.Second)
	for sent < transfers {
		err := a.Sendl(1, uint32(sent), payloads[sent], nil, nil)
		switch {
		case err == nil:
			sent++
		case errors.Is(err, ErrRetry):
			sawRetry = true
			a.Progress()
			b.Progress()
		default:
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled after %d sends", sent)
		}
	}
	if !sawRetry {
		t.Fatal("MaxLongHandles=2 never produced ErrRetry; pressure test is not exercising exhaustion")
	}
	done := 0
	progressUntil(t, 10*time.Second, func() bool {
		for {
			if _, ok := cq.Pop(); !ok {
				return done == transfers
			}
			done++
		}
	}, a, b)
	for i := range payloads {
		if !bytes.Equal(bufs[i], payloads[i]) {
			t.Fatalf("transfer %d corrupted under handle pressure", i)
		}
	}
}

// TestChunkedZeroAllocSteadyState is the alloc-gate row for the striped
// rendezvous datapath: once pools are warm, a full 64 KiB chunked transfer
// cycle (post, RTS/CTS, striped zero-copy chunks, FIN, completion) performs
// zero heap allocations.
func TestChunkedZeroAllocSteadyState(t *testing.T) {
	a, b := pair(t, chunkFabric(4), Config{ChunkSize: 16 << 10})
	cq := NewCompQueue(16)
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	buf := make([]byte, len(payload))
	xfer := func() {
		if err := b.Recvl(0, 1, buf, cq, nil); err != nil {
			t.Fatal(err)
		}
		for {
			err := a.Sendl(1, 1, payload, nil, nil)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrRetry) {
				t.Fatal(err)
			}
			a.Progress()
		}
		for {
			if _, ok := cq.Pop(); ok {
				break
			}
			a.Progress()
			b.Progress()
		}
	}
	for i := 0; i < 10; i++ {
		xfer() // warm every pool: packets, handles, posted-recv ring, waves
	}
	if avg := testing.AllocsPerRun(50, xfer); avg != 0 {
		t.Fatalf("steady-state chunked rendezvous allocates %.2f allocs/op, want 0", avg)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload mismatch")
	}
}

// FuzzChunkedReassembly fuzzes the reassembly parameters: any (size, chunk,
// stripe, rails) combination must reassemble byte-identically.
func FuzzChunkedReassembly(f *testing.F) {
	f.Add(uint32(1<<20), uint32(64<<10), uint8(0), uint8(4), int64(1))
	f.Add(uint32(100_000), uint32(4<<10), uint8(2), uint8(3), int64(9))
	f.Add(uint32(17), uint32(1<<10), uint8(1), uint8(1), int64(5))
	f.Fuzz(func(t *testing.T, size, chunk uint32, stripe, rails uint8, seed int64) {
		size = size%(2<<20) + 1
		chunk = chunk%(256<<10) + 512
		r := int(rails)%8 + 1
		fcfg := chunkFabric(r)
		net, err := fabric.NewNetwork(fcfg)
		if err != nil {
			t.Skip()
		}
		cfg := Config{ChunkSize: int(chunk), StripeWidth: int(stripe) % (r + 1)}
		a := NewDevice(net.Device(0), cfg, nil)
		b := NewDevice(net.Device(1), cfg, nil)
		cq := NewCompQueue(16)
		payload := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(payload)
		buf := make([]byte, size)
		if err := b.Recvl(0, 1, buf, cq, nil); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := a.Sendl(1, 1, payload, nil, nil)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrRetry) || time.Now().After(deadline) {
				t.Fatal(err)
			}
			a.Progress()
			b.Progress()
		}
		for {
			if _, ok := cq.Pop(); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("transfer did not complete")
			}
			a.Progress()
			b.Progress()
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("reassembly mismatch: size=%d chunk=%d stripe=%d rails=%d", size, chunk, stripe, r)
		}
	})
}
