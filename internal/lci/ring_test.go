package lci

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingBasic(t *testing.T) {
	r := newRing[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push to full ring succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from drained ring succeeded")
	}
}

func TestRingCapacityRoundsUp(t *testing.T) {
	r := newRing[int](5)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
}

func TestRingWrapAround(t *testing.T) {
	r := newRing[int](4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(round*10 + i) {
				t.Fatalf("push failed at round %d", round)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.TryPop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = (%d,%v)", round, v, ok)
			}
		}
	}
}

func TestRingLen(t *testing.T) {
	r := newRing[int](8)
	if r.Len() != 0 {
		t.Fatalf("empty Len = %d", r.Len())
	}
	r.TryPush(1)
	r.TryPush(2)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.TryPop()
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestRingConcurrentMPMC(t *testing.T) {
	r := newRing[int](64)
	const producers, perProducer = 4, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !r.TryPush(p*perProducer + i) {
					runtime.Gosched() // ring full: let consumers run
				}
			}
		}(p)
	}
	var consumed sync.Map
	var total sync.WaitGroup
	var count int64
	var countMu sync.Mutex
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		total.Add(1)
		go func() {
			defer total.Done()
			for {
				if v, ok := r.TryPop(); ok {
					if _, dup := consumed.LoadOrStore(v, true); dup {
						t.Errorf("duplicate value %d", v)
					}
					countMu.Lock()
					count++
					countMu.Unlock()
					continue
				}
				select {
				case <-done:
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	for {
		countMu.Lock()
		c := count
		countMu.Unlock()
		if c == producers*perProducer {
			break
		}
		runtime.Gosched()
	}
	close(done)
	total.Wait()
}

func TestRingPropertyFIFOSingleThread(t *testing.T) {
	f := func(vals []uint16) bool {
		r := newRing[uint16](1024)
		if len(vals) > 1024 {
			vals = vals[:1024]
		}
		for _, v := range vals {
			if !r.TryPush(v) {
				return false
			}
		}
		for _, want := range vals {
			got, ok := r.TryPop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.TryPop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
