package lci

import (
	"fmt"
	"sync"
)

// Memory registration. The paper lists explicit control of communication
// resources — including "access to the internal registered communication
// buffers and memory registration functions" — among LCI's features. On
// real RDMA hardware, registration pins pages and hands the NIC an rkey; on
// the simulated fabric it is pure accounting, but the API surface (explicit
// register/deregister, a registration capacity, nonblocking failure) is
// what the layers above program against.

// Mbuffer is a registered memory region.
type Mbuffer struct {
	Data []byte

	dev  *Device
	mu   sync.Mutex
	dead bool
}

// registry tracks a device's registered bytes against its cap.
type registry struct {
	mu    sync.Mutex
	bytes int64
	limit int64
	count int
}

// RegisterMemory registers buf for communication. It fails with ErrRetry
// when the registration cap (Config.MaxRegisteredBytes) is exhausted,
// mirroring the non-blocking resource semantics of the rest of the API.
func (d *Device) RegisterMemory(buf []byte) (*Mbuffer, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("lci: cannot register an empty buffer")
	}
	r := &d.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && r.bytes+int64(len(buf)) > r.limit {
		d.stats.retries.Add(1)
		return nil, ErrRetry
	}
	r.bytes += int64(len(buf))
	r.count++
	return &Mbuffer{Data: buf, dev: d}, nil
}

// Deregister releases the registration. Safe to call more than once.
func (m *Mbuffer) Deregister() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return
	}
	m.dead = true
	r := &m.dev.reg
	r.mu.Lock()
	r.bytes -= int64(len(m.Data))
	r.count--
	r.mu.Unlock()
}

// RegisteredBytes reports currently registered memory (tests/metrics).
func (d *Device) RegisteredBytes() int64 {
	d.reg.mu.Lock()
	defer d.reg.mu.Unlock()
	return d.reg.bytes
}
