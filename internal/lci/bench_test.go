package lci

import (
	"testing"

	"hpxgo/internal/fabric"
)

func BenchmarkRingPushPop(b *testing.B) {
	r := newRing[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(i)
		r.TryPop()
	}
}

func BenchmarkCompQueuePushPop(b *testing.B) {
	q := NewCompQueue(1024)
	req := Request{Type: CompRecv, Rank: 1, Tag: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(req)
		q.Pop()
	}
}

func BenchmarkSynchronizerSignalTest(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSynchronizer(1)
		s.signal(Request{})
		if !s.Test() {
			b.Fatal("not triggered")
		}
	}
}

// benchPair builds a 2-node device pair on a zero-latency fabric.
func benchPair(b *testing.B) (*Device, *Device) {
	b.Helper()
	net, err := fabric.NewNetwork(fabric.Config{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	return NewDevice(net.Device(0), Config{}, nil), NewDevice(net.Device(1), Config{}, nil)
}

func BenchmarkMediumSendRecv(b *testing.B) {
	a, peer := benchPair(b)
	cq := NewCompQueue(1024)
	payload := make([]byte, 64)
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := uint32(i%1000 + 1)
		if err := peer.Recvm(0, tag, buf, cq, nil); err != nil {
			b.Fatal(err)
		}
		if err := a.Sendm(1, tag, payload, nil, nil); err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := cq.Pop(); ok {
				break
			}
			peer.Progress()
		}
	}
}

func BenchmarkDynamicPut(b *testing.B) {
	a, peer := benchPair(b)
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Putd(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := peer.PutCQ().Pop(); ok {
				break
			}
			peer.Progress()
		}
	}
}

func BenchmarkLongRendezvous16K(b *testing.B) {
	a, peer := benchPair(b)
	cq := NewCompQueue(1024)
	payload := make([]byte, 16*1024)
	buf := make([]byte, 16*1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tag := uint32(i%1000 + 1)
		if err := peer.Recvl(0, tag, buf, cq, nil); err != nil {
			b.Fatal(err)
		}
		if err := a.Sendl(1, tag, payload, nil, nil); err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := cq.Pop(); ok {
				break
			}
			a.Progress()
			peer.Progress()
		}
	}
}
