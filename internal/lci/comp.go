package lci

import (
	"sync"
	"sync/atomic"

	"hpxgo/internal/fabric"
)

// CompType classifies a completion record.
type CompType uint8

const (
	// CompSend signals local completion of Sendm/Sendl: the source buffer may
	// be reused.
	CompSend CompType = iota
	// CompRecv signals that a posted Recvm/Recvl buffer has been filled.
	CompRecv
	// CompPut signals, at the target, the arrival of a dynamic put. Data
	// holds the LCI-allocated buffer.
	CompPut
)

func (t CompType) String() string {
	switch t {
	case CompSend:
		return "send"
	case CompRecv:
		return "recv"
	case CompPut:
		return "put"
	default:
		return "unknown"
	}
}

// Request is a completion record, delivered through one of the completion
// mechanisms. It is the LCI analogue of an MPI status, with the user context
// threaded through from the posting call.
type Request struct {
	Type CompType
	Rank int    // peer rank
	Tag  uint32 // message tag (put: the 32-bit immediate/meta word)
	Data []byte // recv/put payload (recv: the posted buffer trimmed to size)
	Ctx  any    // user context given at the posting call

	// Pkt, when non-nil on a CompPut record, is the pooled fabric packet
	// whose payload Data aliases. Ownership transfers to the consumer: it
	// must call Pkt.Release once it is done with Data so the packet recycles
	// to its device pool. A consumer that never releases only forfeits the
	// recycle — the packet falls to the GC (see the fabric pool protocol).
	Pkt *fabric.Packet
}

// Comp is a completion mechanism: something a finished operation signals.
// LCI lets nearly any communication primitive pair with any Comp; the three
// implementations here are CompQueue, Synchronizer and Handler.
type Comp interface {
	signal(Request)
}

// CompQueue is a multi-producer multi-consumer completion queue. Push is
// lock-free via the bounded ring; a rarely-used overflow list keeps Push
// non-dropping when a burst outruns the consumer.
type CompQueue struct {
	r *ring[Request]

	ovMu     sync.Mutex
	overflow []Request
	ovLen    atomic.Int64
}

// NewCompQueue creates a completion queue with the given capacity hint.
func NewCompQueue(capacity int) *CompQueue {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	return &CompQueue{r: newRing[Request](capacity)}
}

func (q *CompQueue) signal(req Request) { q.Push(req) }

// Push enqueues a completion record. It never blocks and never drops.
func (q *CompQueue) Push(req Request) {
	if q.r.TryPush(req) {
		return
	}
	q.ovMu.Lock()
	q.overflow = append(q.overflow, req)
	q.ovMu.Unlock()
	q.ovLen.Add(1)
}

// Pop dequeues one completion record, if any.
func (q *CompQueue) Pop() (Request, bool) {
	if req, ok := q.r.TryPop(); ok {
		return req, true
	}
	if q.ovLen.Load() > 0 {
		q.ovMu.Lock()
		if len(q.overflow) > 0 {
			req := q.overflow[0]
			q.overflow = q.overflow[1:]
			q.ovMu.Unlock()
			q.ovLen.Add(-1)
			return req, true
		}
		q.ovMu.Unlock()
	}
	return Request{}, false
}

// PopN dequeues up to len(buf) completion records into buf and returns how
// many were written. It amortizes the MPMC pop across a batch: the ring is
// drained record by record (each TryPop is one CAS), then a single overflow
// lock acquisition covers however many overflow records are still needed —
// instead of one lock probe per record as repeated Pop calls would pay once
// the ring runs dry. Safe for concurrent consumers; allocation-free.
func (q *CompQueue) PopN(buf []Request) int {
	n := 0
	for n < len(buf) {
		req, ok := q.r.TryPop()
		if !ok {
			break
		}
		buf[n] = req
		n++
	}
	if n < len(buf) && q.ovLen.Load() > 0 {
		q.ovMu.Lock()
		k := copy(buf[n:], q.overflow)
		if k > 0 {
			rest := copy(q.overflow, q.overflow[k:])
			// Zero the vacated tail so Data/Ctx/Pkt references don't pin
			// buffers past their dequeue.
			for i := rest; i < len(q.overflow); i++ {
				q.overflow[i] = Request{}
			}
			q.overflow = q.overflow[:rest]
		}
		q.ovMu.Unlock()
		if k > 0 {
			q.ovLen.Add(int64(-k))
			n += k
		}
	}
	return n
}

// Len returns the approximate queue length.
func (q *CompQueue) Len() int { return q.r.Len() + int(q.ovLen.Load()) }

// Synchronizer is the LCI analogue of an MPI request, generalized to allow
// multiple producers: it fires once `expected` signals have arrived. Unlike a
// completion queue it must be polled individually, which is exactly the cost
// the paper's `sy` variants pay.
type Synchronizer struct {
	expected int64
	count    atomic.Int64

	mu   sync.Mutex
	reqs []Request
}

// NewSynchronizer creates a synchronizer that triggers after expected signals.
func NewSynchronizer(expected int) *Synchronizer {
	if expected <= 0 {
		expected = 1
	}
	return &Synchronizer{expected: int64(expected)}
}

func (s *Synchronizer) signal(req Request) {
	s.mu.Lock()
	s.reqs = append(s.reqs, req)
	s.mu.Unlock()
	s.count.Add(1)
}

// Test reports whether the synchronizer has triggered, without resetting it.
func (s *Synchronizer) Test() bool { return s.count.Load() >= s.expected }

// Requests returns the accumulated completion records once triggered, or nil.
func (s *Synchronizer) Requests() []Request {
	if !s.Test() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Request, len(s.reqs))
	copy(out, s.reqs)
	return out
}

// Reset re-arms the synchronizer for reuse.
func (s *Synchronizer) Reset() {
	s.mu.Lock()
	s.reqs = s.reqs[:0]
	s.mu.Unlock()
	s.count.Store(0)
}

// Handler adapts a function to the Comp interface: the function runs inline
// on the progress thread when the operation completes. This mirrors LCI's
// function-handler completion mechanism.
type Handler func(Request)

func (h Handler) signal(req Request) { h(req) }
