// Package lci implements a Go analogue of the Lightweight Communication
// Interface (LCI), the communication library the paper integrates into HPX.
// It reproduces the API surface and the concurrency structure the LCI
// parcelport relies on:
//
//   - two-sided medium (eager) and long (rendezvous) send/receive with tag
//     matching,
//   - one-sided dynamic put whose target buffer is allocated by the runtime
//     on arrival and whose completion is pushed to a pre-configured
//     completion queue,
//   - completion queues (lock-free MPMC), synchronizers and handlers as
//     interchangeable completion mechanisms,
//   - a fixed pre-registered packet pool with nonblocking ErrRetry
//     backpressure,
//   - an explicit, thread-safe Progress function built from try-locks and
//     atomics (no coarse-grained blocking lock).
//
// The library sits on internal/fabric, the simulated interconnect.
package lci

import (
	"errors"
	"fmt"
	"sync/atomic"

	"hpxgo/internal/fabric"
)

// ErrRetry is returned by nonblocking operations when a resource (packet
// pool slot, injection queue, handle table) is temporarily exhausted. The
// caller decides when to retry, per LCI's explicit-control philosophy.
var ErrRetry = errors.New("lci: resource temporarily unavailable, retry")

// AnyRank matches messages from any source in Recvm/Recvl.
const AnyRank = -1

// Wire opcodes carried in fabric packets.
const (
	opMedium    uint8 = iota + 1 // eager two-sided message
	opPut                        // one-sided dynamic put
	opRTS                        // rendezvous request-to-send
	opCTS                        // rendezvous clear-to-send
	opLongData                   // rendezvous payload
	opShort                      // two-sided short message (payload in metadata)
	opPutRTS                     // one-sided long put: request-to-send
	opPutCTS                     // one-sided long put: clear-to-send
	opPutData                    // one-sided long put: payload
	opLongChunk                  // rendezvous payload chunk (striped across rails)
	opLongFin                    // rendezvous remote-completion notification
)

// DefaultChunkSize is the rendezvous chunk size when Config.ChunkSize is
// zero. It matches the fabric pool's maximum recycled payload (64 KiB): a
// chunk of this size is copied into a pooled buffer on inject and the
// buffer is recycled on release, so the steady-state chunk stream is
// allocation-free; one byte more and every chunk's payload would fall to
// the garbage collector.
const DefaultChunkSize = 64 << 10

// ShortSize is the maximum payload of a short send: it travels entirely in
// the packet's metadata words, the analogue of LCI's LCI_SHORT_SIZE
// immediate-data path that never touches a buffer.
const ShortSize = 8

// Config tunes a Device.
type Config struct {
	// EagerThreshold is the maximum medium-message payload (bytes). Larger
	// transfers must use the long (rendezvous) protocol. Default 8192,
	// matching LCI's default packet size and HPX's default zero-copy
	// serialization threshold.
	EagerThreshold int
	// PoolPackets is the number of pre-registered packet buffers.
	// Default 1024 (8 MiB of packet memory at the default EagerThreshold,
	// so large simulated clusters stay within host memory).
	PoolPackets int
	// CQCapacity is the capacity hint for the pre-configured put CQ if the
	// caller does not supply one.
	CQCapacity int
	// MatchShards is the number of matching-table shards. Default 64.
	MatchShards int
	// MaxLongHandles bounds concurrent rendezvous operations per side.
	// Default 4096.
	MaxLongHandles int
	// MaxRegisteredBytes caps explicitly registered memory (RegisterMemory).
	// Zero means unlimited.
	MaxRegisteredBytes int64
	// ChunkSize is the rendezvous chunk size: a long payload larger than
	// this is split into ChunkSize pieces striped across the fabric rails
	// instead of travelling as one monolithic opLongData packet. Default
	// DefaultChunkSize (64 KiB, the fabric pool's recycling limit).
	ChunkSize int
	// StripeWidth bounds how many rails one chunked transfer spreads
	// across. Zero means all rails. An installed stripe tuner
	// (SetStripeTuner) overrides this per destination.
	StripeWidth int
	// SingleBlobLong disables chunking entirely and restores the
	// pre-chunking monolithic opLongData path. It exists as the oracle and
	// baseline for the chunked protocol: benchmarks measure striping
	// speedup against it, and property tests check byte-identical results.
	SingleBlobLong bool
	// ProgressBatch bounds how many arrived packets one Progress call
	// drains, so a progress caller cannot monopolize the engine
	// indefinitely. Default DefaultProgressBatch. Surfaced through
	// core.Config.DrainBatch alongside the parcelport's completion-drain
	// budget (one documented knob for both drain loops).
	ProgressBatch int
}

func (c *Config) fillDefaults() {
	if c.EagerThreshold <= 0 {
		c.EagerThreshold = 8192
	}
	if c.PoolPackets <= 0 {
		c.PoolPackets = 1024
	}
	if c.CQCapacity <= 0 {
		c.CQCapacity = 1 << 14
	}
	if c.MatchShards <= 0 {
		c.MatchShards = 64
	}
	if c.MaxLongHandles <= 0 {
		c.MaxLongHandles = 4096
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.ProgressBatch <= 0 {
		c.ProgressBatch = DefaultProgressBatch
	}
}

// Packet is a pre-registered communication buffer from the device pool.
// Callers assemble message contents directly in Data (saving a copy, as the
// LCI parcelport does for header messages) and hand the packet to PutdPacket
// or SendmPacket, which return it to the pool.
type Packet struct {
	Data []byte // full capacity EagerThreshold bytes
	dev  *Device
}

// Stats are cumulative device counters.
type Stats struct {
	MediumSent    uint64
	MediumRecvd   uint64
	PutsSent      uint64
	PutsRecvd     uint64
	LongSent      uint64
	LongRecvd     uint64
	Retries       uint64
	ProgressCalls uint64
	Unexpected    uint64 // messages that arrived before their receive was posted
}

// Device is an LCI communication endpoint bound to one fabric device. All
// methods are safe for concurrent use by multiple goroutines.
type Device struct {
	cfg   Config
	fdev  *fabric.Device
	rank  int
	putCQ *CompQueue // pre-configured remote-completion queue for puts

	pool *ring[*Packet]

	match *matchTable

	sendHandles *handleTable[longSend]
	recvHandles *handleTable[longRecv]

	def deferred // backpressured injections awaiting retry
	reg registry // explicit memory-registration accounting

	// prPool recycles postedRecv records so the steady-state Recvm/Recvl →
	// deliver cycle allocates nothing; waves recycles the scratch packet
	// arrays streamChunks builds its InjectBatch calls in (a stack array
	// would escape through the batch-call slice).
	prPool *ring[*postedRecv]
	waves  *ring[*[chunkWave]fabric.Packet]

	// stripeTuner, when set, supplies the per-destination stripe width (the
	// adaptive layer's knob). Install before traffic starts; read by the
	// progress engine without synchronization.
	stripeTuner func(dst int) int

	stats struct {
		mediumSent    atomic.Uint64
		mediumRecvd   atomic.Uint64
		putsSent      atomic.Uint64
		putsRecvd     atomic.Uint64
		longSent      atomic.Uint64
		longRecvd     atomic.Uint64
		retries       atomic.Uint64
		progressCalls atomic.Uint64
		unexpected    atomic.Uint64
	}
}

// NewDevice creates a device on top of a fabric device. putCQ is the
// pre-configured completion queue that receives remote completions of
// dynamic puts; if nil a fresh queue is created (retrievable via PutCQ).
// This "pre-configured CQ only" restriction for puts is faithful to the LCI
// version used in the paper.
func NewDevice(fdev *fabric.Device, cfg Config, putCQ *CompQueue) *Device {
	cfg.fillDefaults()
	if putCQ == nil {
		putCQ = NewCompQueue(cfg.CQCapacity)
	}
	d := &Device{
		cfg:    cfg,
		fdev:   fdev,
		rank:   fdev.Node(),
		putCQ:  putCQ,
		pool:   newRing[*Packet](cfg.PoolPackets),
		match:  newMatchTable(cfg.MatchShards),
		prPool: newRing[*postedRecv](prPoolCap),
		waves:  newRing[*[chunkWave]fabric.Packet](wavePoolCap),
	}
	for i := 0; i < cfg.PoolPackets; i++ {
		d.pool.TryPush(&Packet{Data: make([]byte, cfg.EagerThreshold), dev: d})
	}
	d.sendHandles = newHandleTable[longSend](cfg.MaxLongHandles)
	d.recvHandles = newHandleTable[longRecv](cfg.MaxLongHandles)
	d.reg.limit = cfg.MaxRegisteredBytes
	return d
}

// prPoolCap / wavePoolCap bound the recycled postedRecv records and chunk
// wave buffers kept per device; both pools fill lazily and overflow to the
// garbage collector.
const (
	prPoolCap   = 1024
	wavePoolCap = 64
)

// getPR takes a recycled postedRecv (or allocates one on a miss).
func (d *Device) getPR() *postedRecv {
	if pr, ok := d.prPool.TryPop(); ok {
		return pr
	}
	return &postedRecv{}
}

// putPR zeroes a consumed postedRecv and returns it to the pool. Callers
// must hold the only reference: a record parked in the match table (or
// re-queued by postRecvFront) is still live and must not be recycled.
func (d *Device) putPR(pr *postedRecv) {
	*pr = postedRecv{}
	d.prPool.TryPush(pr)
}

// getWave / putWave recycle the scratch arrays streamChunks assembles its
// injection batches in.
func (d *Device) getWave() *[chunkWave]fabric.Packet {
	if w, ok := d.waves.TryPop(); ok {
		return w
	}
	return new([chunkWave]fabric.Packet)
}

func (d *Device) putWave(w *[chunkWave]fabric.Packet) {
	*w = [chunkWave]fabric.Packet{} // drop payload sub-slice references
	d.waves.TryPush(w)
}

// SetStripeTuner installs the per-destination stripe-width source (the
// adaptive layer's actuator). A returned width <= 0 falls back to the
// static Config.StripeWidth. Must be installed before traffic starts; the
// progress engine reads it without synchronization.
func (d *Device) SetStripeTuner(f func(dst int) int) { d.stripeTuner = f }

// chunkPlan decides how a long payload of the given size travels to dst:
// chunked (chunk size + stripe width) or, when chunking is disabled or the
// payload fits a single chunk, as the monolithic opLongData blob
// (chunkSize 0).
func (d *Device) chunkPlan(dst, size int) (chunkSize, stripe int) {
	if d.cfg.SingleBlobLong || size <= d.cfg.ChunkSize {
		return 0, 0
	}
	rails := d.fdev.Rails()
	sw := d.cfg.StripeWidth
	if t := d.stripeTuner; t != nil {
		if w := t(dst); w > 0 {
			sw = w
		}
	}
	if sw <= 0 || sw > rails {
		sw = rails
	}
	return d.cfg.ChunkSize, sw
}

// Rank returns this device's node id.
func (d *Device) Rank() int { return d.rank }

// EagerThreshold returns the configured medium-message size limit.
func (d *Device) EagerThreshold() int { return d.cfg.EagerThreshold }

// PutCQ returns the pre-configured completion queue for dynamic puts.
func (d *Device) PutCQ() *CompQueue { return d.putCQ }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		MediumSent:    d.stats.mediumSent.Load(),
		MediumRecvd:   d.stats.mediumRecvd.Load(),
		PutsSent:      d.stats.putsSent.Load(),
		PutsRecvd:     d.stats.putsRecvd.Load(),
		LongSent:      d.stats.longSent.Load(),
		LongRecvd:     d.stats.longRecvd.Load(),
		Retries:       d.stats.retries.Load(),
		ProgressCalls: d.stats.progressCalls.Load(),
		Unexpected:    d.stats.unexpected.Load(),
	}
}

// GetPacket takes a pre-registered packet from the pool, or returns ErrRetry
// when the pool is exhausted.
func (d *Device) GetPacket() (*Packet, error) {
	p, ok := d.pool.TryPop()
	if !ok {
		d.stats.retries.Add(1)
		return nil, ErrRetry
	}
	p.Data = p.Data[:cap(p.Data)]
	return p, nil
}

// PutPacket returns an unused packet to the pool.
func (d *Device) PutPacket(p *Packet) {
	if p == nil || p.dev != d {
		return
	}
	d.pool.TryPush(p) // pool is sized to hold all packets; push cannot fail
}

// Sends posts a short send: up to ShortSize bytes packed into the packet
// metadata, completing locally on return. The receive side matches it like
// a medium message (Recvm), so short and medium sends share a tag space.
func (d *Device) Sends(dst int, tag uint32, data []byte) error {
	if len(data) > ShortSize {
		return fmt.Errorf("lci: short send of %d bytes exceeds %d", len(data), ShortSize)
	}
	var word uint64
	for i, b := range data {
		word |= uint64(b) << (8 * i)
	}
	err := d.fdev.Inject(fabric.Packet{
		Dst: dst, Op: opShort,
		T0: uint64(tag),
		T1: word,
		T2: uint64(len(data)),
	})
	if err != nil {
		if errors.Is(err, fabric.ErrBackpressure) {
			d.stats.retries.Add(1)
			return ErrRetry
		}
		return err
	}
	d.stats.mediumSent.Add(1)
	return nil
}

// Sendm posts a medium (eager) send of data to dst with the given tag and
// signals comp locally once the buffer may be reused. Returns ErrRetry under
// resource exhaustion; the data must fit EagerThreshold.
func (d *Device) Sendm(dst int, tag uint32, data []byte, comp Comp, ctx any) error {
	if len(data) > d.cfg.EagerThreshold {
		return fmt.Errorf("lci: medium send of %d bytes exceeds eager threshold %d", len(data), d.cfg.EagerThreshold)
	}
	err := d.fdev.Inject(fabric.Packet{Dst: dst, Op: opMedium, T0: uint64(tag), Data: data})
	if err != nil {
		if errors.Is(err, fabric.ErrBackpressure) {
			d.stats.retries.Add(1)
			return ErrRetry
		}
		return err
	}
	d.stats.mediumSent.Add(1)
	if comp != nil {
		comp.signal(Request{Type: CompSend, Rank: dst, Tag: tag, Ctx: ctx})
	}
	return nil
}

// SendmPacket sends the first n bytes of a pool packet as a medium message
// and returns the packet to the pool. The packet contents were assembled in
// place, saving the user-to-library copy.
func (d *Device) SendmPacket(dst int, tag uint32, p *Packet, n int, comp Comp, ctx any) error {
	err := d.Sendm(dst, tag, p.Data[:n], comp, ctx)
	if err == nil {
		d.PutPacket(p)
	}
	return err
}

// Recvm posts a medium receive into buf for a message from src (or AnyRank)
// with the given tag. comp is signalled with the trimmed buffer when the
// message arrives.
func (d *Device) Recvm(src int, tag uint32, buf []byte, comp Comp, ctx any) error {
	pr := d.getPR()
	pr.src, pr.tag, pr.buf, pr.comp, pr.ctx, pr.long = src, tag, buf, comp, ctx, false
	if um := d.match.postRecv(kindMedium, src, tag, pr); um != nil {
		d.deliverMedium(um, pr)
	}
	return nil
}

// Putd performs a one-sided dynamic put: the target runtime allocates a
// buffer on arrival and pushes a CompPut record carrying `meta` to the
// target's pre-configured completion queue. There is no local completion;
// the source buffer may be reused on return (the fabric copies it).
func (d *Device) Putd(dst int, meta uint32, data []byte) error {
	err := d.fdev.Inject(fabric.Packet{Dst: dst, Op: opPut, T0: uint64(meta), Data: data})
	if err != nil {
		if errors.Is(err, fabric.ErrBackpressure) {
			d.stats.retries.Add(1)
			return ErrRetry
		}
		return err
	}
	d.stats.putsSent.Add(1)
	return nil
}

// PutdPacket sends the first n bytes of a pool packet as a dynamic put and
// returns the packet to the pool.
func (d *Device) PutdPacket(dst int, meta uint32, p *Packet, n int) error {
	err := d.Putd(dst, meta, p.Data[:n])
	if err == nil {
		d.PutPacket(p)
	}
	return err
}

// Putl performs a one-sided long put: like Putd the target buffer is
// allocated by the runtime and the completion (carrying meta) lands in the
// target's pre-configured completion queue, but the payload moves through
// the rendezvous protocol, so arbitrarily large buffers work without
// consuming eager resources. comp is signalled locally once the payload has
// been handed to the fabric.
func (d *Device) Putl(dst int, meta uint32, data []byte, comp Comp, ctx any) error {
	h, idx, ok := d.sendHandles.alloc()
	if !ok {
		d.stats.retries.Add(1)
		return ErrRetry
	}
	h.data = data
	h.comp = comp
	h.ctx = ctx
	h.dst = dst
	h.tag = meta
	err := d.fdev.Inject(fabric.Packet{
		Dst: dst, Op: opPutRTS,
		T0: uint64(meta),
		T1: uint64(idx)<<32 | uint64(uint32(len(data))),
	})
	if err != nil {
		d.sendHandles.release(idx)
		if errors.Is(err, fabric.ErrBackpressure) {
			d.stats.retries.Add(1)
			return ErrRetry
		}
		return err
	}
	return nil
}

// Sendl posts a long (rendezvous) send. comp is signalled once the payload
// buffer is reusable: for a chunked transfer the chunks travel zero-copy
// out of data, so completion waits for the receiver's opLongFin (every
// chunk copied out); the monolithic single-blob path copies at injection
// and completes as soon as the payload is handed to the fabric. Either
// way, data must stay untouched until comp fires.
func (d *Device) Sendl(dst int, tag uint32, data []byte, comp Comp, ctx any) error {
	h, idx, ok := d.sendHandles.alloc()
	if !ok {
		d.stats.retries.Add(1)
		return ErrRetry
	}
	h.data = data
	h.comp = comp
	h.ctx = ctx
	h.dst = dst
	h.tag = tag
	err := d.fdev.Inject(fabric.Packet{
		Dst: dst, Op: opRTS,
		T0: uint64(tag),
		T1: uint64(idx)<<32 | uint64(uint32(len(data))),
	})
	if err != nil {
		d.sendHandles.release(idx)
		if errors.Is(err, fabric.ErrBackpressure) {
			d.stats.retries.Add(1)
			return ErrRetry
		}
		return err
	}
	return nil
}

// Recvl posts a long (rendezvous) receive into buf. comp is signalled with
// the trimmed buffer once the payload has landed.
func (d *Device) Recvl(src int, tag uint32, buf []byte, comp Comp, ctx any) error {
	pr := d.getPR()
	pr.src, pr.tag, pr.buf, pr.comp, pr.ctx, pr.long = src, tag, buf, comp, ctx, true
	if um := d.match.postRecv(kindLong, src, tag, pr); um != nil {
		return d.acceptRTS(um, pr)
	}
	return nil
}

// deliverMedium copies an arrived eager message into the posted buffer,
// signals completion and returns the packet to the fabric pool. Callers must
// not touch pkt afterwards.
func (d *Device) deliverMedium(pkt *fabric.Packet, pr *postedRecv) {
	n := copy(pr.buf, pkt.Data)
	src, tag := pkt.Src, uint32(pkt.T0)
	pkt.Release()
	d.stats.mediumRecvd.Add(1)
	if pr.comp != nil {
		pr.comp.signal(Request{Type: CompRecv, Rank: src, Tag: tag, Data: pr.buf[:n], Ctx: pr.ctx})
	}
	d.putPR(pr)
}

// acceptRTS matches a rendezvous RTS with a posted long receive: allocate a
// receive handle and reply clear-to-send.
func (d *Device) acceptRTS(rts *fabric.Packet, pr *postedRecv) error {
	h, idx, ok := d.recvHandles.alloc()
	if !ok {
		// Re-queue the RTS as unexpected and report retry pressure: the next
		// posted receive will pick it up once handles free.
		d.match.pushUnexpected(kindLong, rts.Src, uint32(rts.T0), rts)
		d.match.postRecvFront(kindLong, pr.src, pr.tag, pr)
		d.stats.retries.Add(1)
		return ErrRetry
	}
	h.buf = pr.buf
	h.comp = pr.comp
	h.ctx = pr.ctx
	h.src = rts.Src
	h.tag = uint32(rts.T0)
	// Arm chunked reassembly: the RTS's low word announces the payload
	// size, which is the byte budget the completion counter counts down —
	// correct whether the payload then arrives as one opLongData blob or as
	// out-of-order opLongChunk pieces.
	h.expect = int(uint32(rts.T1))
	atomic.StoreInt64(&h.remaining, int64(h.expect))
	sendIdx := uint32(rts.T1 >> 32)
	h.sendIdx = sendIdx
	cts := fabric.Packet{Dst: rts.Src, Op: opCTS, T0: uint64(sendIdx), T1: uint64(idx)}
	rts.Release()
	d.putPR(pr)
	if err := d.fdev.Inject(cts); err != nil {
		if errors.Is(err, fabric.ErrBackpressure) {
			// Losing the CTS would deadlock the rendezvous: neither side
			// retransmits it. Park it on the deferred-work list and let the
			// next Progress pass retry until the reverse rail drains.
			d.stats.retries.Add(1)
			d.deferControl(cts)
			return nil
		}
		d.recvHandles.release(idx)
		return err
	}
	return nil
}
