package lci

import (
	"encoding/binary"
	"errors"
	"sync"

	"hpxgo/internal/fabric"
)

// progressBatch bounds how many packets one Progress call drains, so a
// progress caller cannot monopolize the engine indefinitely.
const progressBatch = 64

// deferred holds fabric injections that hit backpressure inside the progress
// engine (e.g. rendezvous payloads triggered by a CTS) and must be retried.
type deferred struct {
	mu     sync.Mutex
	pkts   []deferredSend
	replay []*fabric.Packet // arrived packets to re-dispatch (resource pressure)
}

type deferredSend struct {
	pkt     fabric.Packet
	sendIdx uint32 // send handle to complete+free once injected
	put     bool   // one-sided long put (counts as a put, not a long send)
}

// Progress advances the communication engine: it drains arrived packets from
// the fabric, performs tag matching, runs the rendezvous protocol and signals
// completion objects. It returns true if any work was done.
//
// Progress is safe to call from many goroutines concurrently ("mt" mode) —
// it is built from sharded locks, try-locks and atomics rather than one
// blocking lock, which is the design difference the paper measures against
// MPI. A single dedicated caller ("pin" mode) avoids even that contention.
func (d *Device) Progress() bool {
	d.stats.progressCalls.Add(1)
	did := d.retryDeferred()
	if d.replayDeferred() {
		did = true
	}
	for i := 0; i < progressBatch; i++ {
		pkt := d.fdev.Poll()
		if pkt == nil {
			break
		}
		did = true
		d.dispatch(pkt)
	}
	return did
}

// deferPacket re-queues an arrived packet whose handling hit a transient
// resource limit; the next Progress pass re-dispatches it.
func (d *Device) deferPacket(pkt *fabric.Packet) {
	d.def.mu.Lock()
	d.def.replay = append(d.def.replay, pkt)
	d.def.mu.Unlock()
}

// replayDeferred re-dispatches packets parked by deferPacket.
func (d *Device) replayDeferred() bool {
	d.def.mu.Lock()
	if len(d.def.replay) == 0 {
		d.def.mu.Unlock()
		return false
	}
	pkts := d.def.replay
	d.def.replay = nil
	d.def.mu.Unlock()
	for _, pkt := range pkts {
		d.dispatch(pkt)
	}
	return true
}

// handlePutCTS sends a one-sided long put's payload in response to the
// target's clear-to-send and signals local completion.
func (d *Device) handlePutCTS(cts *fabric.Packet) {
	sendIdx := uint32(cts.T0)
	recvIdx := uint32(cts.T1)
	h := d.sendHandles.get(sendIdx)
	out := fabric.Packet{Dst: h.dst, Op: opPutData, T0: uint64(recvIdx), Data: h.data}
	if err := d.fdev.Inject(out); err != nil {
		if errors.Is(err, fabric.ErrBackpressure) {
			d.deferPutSend(out, sendIdx)
			return
		}
	}
	d.completePutSend(sendIdx)
}

// completePutSend signals the put's local completion and frees the handle.
func (d *Device) completePutSend(sendIdx uint32) {
	h := d.sendHandles.get(sendIdx)
	if h.comp != nil {
		h.comp.signal(Request{Type: CompSend, Rank: h.dst, Tag: h.tag, Ctx: h.ctx})
	}
	d.sendHandles.release(sendIdx)
	d.stats.putsSent.Add(1)
}

// deferPutSend queues a backpressured put payload for retry.
func (d *Device) deferPutSend(pkt fabric.Packet, sendIdx uint32) {
	d.def.mu.Lock()
	d.def.pkts = append(d.def.pkts, deferredSend{pkt: pkt, sendIdx: sendIdx, put: true})
	d.def.mu.Unlock()
}

// dispatch handles one arrived packet.
func (d *Device) dispatch(pkt *fabric.Packet) {
	switch pkt.Op {
	case opMedium:
		tag := uint32(pkt.T0)
		if pr := d.match.arrive(kindMedium, pkt, tag); pr != nil {
			d.deliverMedium(pkt, pr)
		} else {
			d.stats.unexpected.Add(1)
		}
	case opShort:
		// Unpack the immediate payload into the packet's own data slot so the
		// ordinary medium delivery path applies. Pooled packets arrive with
		// payload capacity to spare, so this is allocation-free.
		n := int(pkt.T2)
		b := pkt.Data
		if cap(b) < ShortSize {
			b = make([]byte, ShortSize)
		}
		b = b[:ShortSize]
		binary.LittleEndian.PutUint64(b, pkt.T1)
		pkt.Data = b[:n]
		tag := uint32(pkt.T0)
		if pr := d.match.arrive(kindMedium, pkt, tag); pr != nil {
			d.deliverMedium(pkt, pr)
		} else {
			d.stats.unexpected.Add(1)
		}
	case opPut:
		// Dynamic put: the "LCI runtime" allocates the target buffer. The
		// fabric already handed us a private copy, so pass it through — zero
		// additional copies, as in the real implementation. The packet rides
		// the completion record so the consumer can recycle it (Release)
		// when it is done with Data; until then Data stays valid because the
		// pool never reuses a packet with live references.
		d.stats.putsRecvd.Add(1)
		d.putCQ.Push(Request{Type: CompPut, Rank: pkt.Src, Tag: uint32(pkt.T0), Data: pkt.Data, Pkt: pkt})
	case opRTS:
		tag := uint32(pkt.T0)
		if pr := d.match.arrive(kindLong, pkt, tag); pr != nil {
			// Matched a posted long receive: reply clear-to-send. acceptRTS
			// re-queues both sides on handle exhaustion.
			_ = d.acceptRTS(pkt, pr)
		} else {
			d.stats.unexpected.Add(1)
		}
	case opCTS:
		d.handleCTS(pkt)
		pkt.Release()
	case opPutRTS:
		// One-sided long put: allocate the target buffer now, accept.
		size := int(uint32(pkt.T1))
		h, idx, ok := d.recvHandles.alloc()
		if !ok {
			// Requeue for the next progress pass rather than dropping.
			d.deferPacket(pkt)
			d.stats.retries.Add(1)
			return
		}
		h.buf = make([]byte, size)
		h.src = pkt.Src
		h.tag = uint32(pkt.T0) // the put's meta word
		h.put = true
		sendIdx := uint32(pkt.T1 >> 32)
		if err := d.fdev.Inject(fabric.Packet{Dst: pkt.Src, Op: opPutCTS, T0: uint64(sendIdx), T1: uint64(idx)}); err != nil {
			d.recvHandles.release(idx)
			d.deferPacket(pkt) // keeps ownership; released when it finally lands
			return
		}
		pkt.Release()
	case opPutCTS:
		d.handlePutCTS(pkt)
		pkt.Release()
	case opPutData:
		idx := uint32(pkt.T0)
		h := d.recvHandles.get(idx)
		copy(h.buf, pkt.Data)
		// The "LCI runtime allocated" buffer surfaces through the
		// pre-configured put CQ, like a dynamic put.
		d.putCQ.Push(Request{Type: CompPut, Rank: h.src, Tag: h.tag, Data: h.buf})
		d.recvHandles.release(idx)
		d.stats.putsRecvd.Add(1)
		pkt.Release()
	case opLongData:
		idx := uint32(pkt.T0)
		h := d.recvHandles.get(idx)
		n := copy(h.buf, pkt.Data)
		if h.comp != nil {
			h.comp.signal(Request{Type: CompRecv, Rank: h.src, Tag: h.tag, Data: h.buf[:n], Ctx: h.ctx})
		}
		d.recvHandles.release(idx)
		d.stats.longRecvd.Add(1)
		pkt.Release()
	}
}

// handleCTS sends the rendezvous payload in response to a clear-to-send.
func (d *Device) handleCTS(cts *fabric.Packet) {
	sendIdx := uint32(cts.T0)
	recvIdx := uint32(cts.T1)
	h := d.sendHandles.get(sendIdx)
	out := fabric.Packet{Dst: h.dst, Op: opLongData, T0: uint64(recvIdx), Data: h.data}
	if err := d.fdev.Inject(out); err != nil {
		if errors.Is(err, fabric.ErrBackpressure) {
			d.deferSend(out, sendIdx)
			return
		}
		// Unreachable with a validated destination; drop the handle to avoid
		// leaking it.
	}
	d.completeLongSend(sendIdx)
}

// completeLongSend signals the sender's completion object and frees the
// handle.
func (d *Device) completeLongSend(sendIdx uint32) {
	h := d.sendHandles.get(sendIdx)
	if h.comp != nil {
		h.comp.signal(Request{Type: CompSend, Rank: h.dst, Tag: h.tag, Ctx: h.ctx})
	}
	d.sendHandles.release(sendIdx)
	d.stats.longSent.Add(1)
}

// deferSend queues a backpressured injection for retry on the next Progress.
func (d *Device) deferSend(pkt fabric.Packet, sendIdx uint32) {
	d.def.mu.Lock()
	d.def.pkts = append(d.def.pkts, deferredSend{pkt: pkt, sendIdx: sendIdx})
	d.def.mu.Unlock()
}

// retryDeferred re-attempts previously backpressured injections.
func (d *Device) retryDeferred() bool {
	d.def.mu.Lock()
	if len(d.def.pkts) == 0 {
		d.def.mu.Unlock()
		return false
	}
	pending := d.def.pkts
	d.def.pkts = nil
	d.def.mu.Unlock()

	did := false
	for i, ds := range pending {
		if err := d.fdev.Inject(ds.pkt); err != nil {
			if errors.Is(err, fabric.ErrBackpressure) {
				d.def.mu.Lock()
				d.def.pkts = append(d.def.pkts, pending[i:]...)
				d.def.mu.Unlock()
				return did
			}
			continue
		}
		if ds.put {
			d.completePutSend(ds.sendIdx)
		} else {
			d.completeLongSend(ds.sendIdx)
		}
		did = true
	}
	return did
}
