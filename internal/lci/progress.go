package lci

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"

	"hpxgo/internal/fabric"
)

// DefaultProgressBatch is the Config.ProgressBatch seed: how many packets
// one Progress call drains before yielding, so a progress caller cannot
// monopolize the engine indefinitely.
const DefaultProgressBatch = 64

// chunkWave bounds how many chunks streamChunks hands to one InjectBatch
// call: enough to amortize the producer lock across a rail's worth of
// chunks, small enough for the scratch array to recycle cheaply.
const chunkWave = 16

// deferred holds fabric injections that hit backpressure inside the progress
// engine (e.g. rendezvous payloads triggered by a CTS) and must be retried.
type deferred struct {
	mu     sync.Mutex
	pkts   []deferredSend
	replay []*fabric.Packet // arrived packets to re-dispatch (resource pressure)
}

// deferKind says what a deferred entry represents and what completes when
// its injection finally succeeds.
type deferKind uint8

const (
	// deferLong: a monolithic opLongData payload; completes the long send.
	deferLong deferKind = iota
	// deferPut: a one-sided long put payload; completes the put.
	deferPut
	// deferControl: a control packet (CTS) that must not be lost — the
	// rendezvous deadlocks without it. Nothing completes on injection.
	deferControl
	// deferChunks: a chunked rendezvous stream paused mid-payload. The
	// entry carries only the send handle; the retry resumes streamChunks
	// from the handle's cursor rather than re-injecting pkt.
	deferChunks
)

type deferredSend struct {
	pkt     fabric.Packet
	sendIdx uint32 // send handle to complete+free once injected
	kind    deferKind
}

// Progress advances the communication engine: it drains arrived packets from
// the fabric, performs tag matching, runs the rendezvous protocol and signals
// completion objects. It returns true if any work was done.
//
// Progress is safe to call from many goroutines concurrently ("mt" mode) —
// it is built from sharded locks, try-locks and atomics rather than one
// blocking lock, which is the design difference the paper measures against
// MPI. A single dedicated caller ("pin" mode) avoids even that contention.
func (d *Device) Progress() bool {
	d.stats.progressCalls.Add(1)
	did := d.retryDeferred()
	if d.replayDeferred() {
		did = true
	}
	for i := 0; i < d.cfg.ProgressBatch; i++ {
		pkt := d.fdev.Poll()
		if pkt == nil {
			break
		}
		did = true
		d.dispatch(pkt)
	}
	return did
}

// deferPacket re-queues an arrived packet whose handling hit a transient
// resource limit; the next Progress pass re-dispatches it.
func (d *Device) deferPacket(pkt *fabric.Packet) {
	d.def.mu.Lock()
	d.def.replay = append(d.def.replay, pkt)
	d.def.mu.Unlock()
}

// replayDeferred re-dispatches packets parked by deferPacket.
func (d *Device) replayDeferred() bool {
	d.def.mu.Lock()
	if len(d.def.replay) == 0 {
		d.def.mu.Unlock()
		return false
	}
	pkts := d.def.replay
	d.def.replay = nil
	d.def.mu.Unlock()
	for _, pkt := range pkts {
		d.dispatch(pkt)
	}
	return true
}

// handlePutCTS sends a one-sided long put's payload in response to the
// target's clear-to-send and signals local completion.
func (d *Device) handlePutCTS(cts *fabric.Packet) {
	sendIdx := uint32(cts.T0)
	recvIdx := uint32(cts.T1)
	h := d.sendHandles.get(sendIdx)
	out := fabric.Packet{Dst: h.dst, Op: opPutData, T0: uint64(recvIdx), Data: h.data}
	if err := d.fdev.Inject(out); err != nil {
		if errors.Is(err, fabric.ErrBackpressure) {
			d.deferPutSend(out, sendIdx)
			return
		}
	}
	d.completePutSend(sendIdx)
}

// completePutSend signals the put's local completion and frees the handle.
func (d *Device) completePutSend(sendIdx uint32) {
	h := d.sendHandles.get(sendIdx)
	if h.comp != nil {
		h.comp.signal(Request{Type: CompSend, Rank: h.dst, Tag: h.tag, Ctx: h.ctx})
	}
	d.sendHandles.release(sendIdx)
	d.stats.putsSent.Add(1)
}

// deferPutSend queues a backpressured put payload for retry.
func (d *Device) deferPutSend(pkt fabric.Packet, sendIdx uint32) {
	d.def.mu.Lock()
	d.def.pkts = append(d.def.pkts, deferredSend{pkt: pkt, sendIdx: sendIdx, kind: deferPut})
	d.def.mu.Unlock()
}

// deferControl queues a backpressured control packet (CTS) for retry. Unlike
// payload entries nothing completes when it lands — it just must not be
// dropped.
func (d *Device) deferControl(pkt fabric.Packet) {
	d.def.mu.Lock()
	d.def.pkts = append(d.def.pkts, deferredSend{pkt: pkt, kind: deferControl})
	d.def.mu.Unlock()
}

// deferChunks parks a paused chunk stream; the next Progress pass resumes
// it from the send handle's cursor.
func (d *Device) deferChunks(sendIdx uint32) {
	d.def.mu.Lock()
	d.def.pkts = append(d.def.pkts, deferredSend{sendIdx: sendIdx, kind: deferChunks})
	d.def.mu.Unlock()
}

// dispatch handles one arrived packet.
func (d *Device) dispatch(pkt *fabric.Packet) {
	switch pkt.Op {
	case opMedium:
		tag := uint32(pkt.T0)
		if pr := d.match.arrive(kindMedium, pkt, tag); pr != nil {
			d.deliverMedium(pkt, pr)
		} else {
			d.stats.unexpected.Add(1)
		}
	case opShort:
		// Unpack the immediate payload into the packet's own data slot so the
		// ordinary medium delivery path applies. Pooled packets arrive with
		// payload capacity to spare, so this is allocation-free.
		n := int(pkt.T2)
		b := pkt.Data
		if cap(b) < ShortSize {
			b = make([]byte, ShortSize)
		}
		b = b[:ShortSize]
		binary.LittleEndian.PutUint64(b, pkt.T1)
		pkt.Data = b[:n]
		tag := uint32(pkt.T0)
		if pr := d.match.arrive(kindMedium, pkt, tag); pr != nil {
			d.deliverMedium(pkt, pr)
		} else {
			d.stats.unexpected.Add(1)
		}
	case opPut:
		// Dynamic put: the "LCI runtime" allocates the target buffer. The
		// fabric already handed us a private copy, so pass it through — zero
		// additional copies, as in the real implementation. The packet rides
		// the completion record so the consumer can recycle it (Release)
		// when it is done with Data; until then Data stays valid because the
		// pool never reuses a packet with live references.
		d.stats.putsRecvd.Add(1)
		d.putCQ.Push(Request{Type: CompPut, Rank: pkt.Src, Tag: uint32(pkt.T0), Data: pkt.Data, Pkt: pkt})
	case opRTS:
		tag := uint32(pkt.T0)
		if pr := d.match.arrive(kindLong, pkt, tag); pr != nil {
			// Matched a posted long receive: reply clear-to-send. acceptRTS
			// re-queues both sides on handle exhaustion.
			_ = d.acceptRTS(pkt, pr)
		} else {
			d.stats.unexpected.Add(1)
		}
	case opCTS:
		d.handleCTS(pkt)
		pkt.Release()
	case opLongFin:
		// Remote completion of a chunked (zero-copy) long send: the
		// receiver has copied every borrowed chunk out of our buffer.
		d.completeLongSend(uint32(pkt.T0))
		pkt.Release()
	case opPutRTS:
		// One-sided long put: allocate the target buffer now, accept.
		size := int(uint32(pkt.T1))
		h, idx, ok := d.recvHandles.alloc()
		if !ok {
			// Requeue for the next progress pass rather than dropping.
			d.deferPacket(pkt)
			d.stats.retries.Add(1)
			return
		}
		h.buf = make([]byte, size)
		h.src = pkt.Src
		h.tag = uint32(pkt.T0) // the put's meta word
		h.put = true
		sendIdx := uint32(pkt.T1 >> 32)
		if err := d.fdev.Inject(fabric.Packet{Dst: pkt.Src, Op: opPutCTS, T0: uint64(sendIdx), T1: uint64(idx)}); err != nil {
			d.recvHandles.release(idx)
			d.deferPacket(pkt) // keeps ownership; released when it finally lands
			return
		}
		pkt.Release()
	case opPutCTS:
		d.handlePutCTS(pkt)
		pkt.Release()
	case opPutData:
		idx := uint32(pkt.T0)
		h := d.recvHandles.get(idx)
		copy(h.buf, pkt.Data)
		// The "LCI runtime allocated" buffer surfaces through the
		// pre-configured put CQ, like a dynamic put.
		d.putCQ.Push(Request{Type: CompPut, Rank: h.src, Tag: h.tag, Data: h.buf})
		d.recvHandles.release(idx)
		d.stats.putsRecvd.Add(1)
		pkt.Release()
	case opLongData:
		idx := uint32(pkt.T0)
		h := d.recvHandles.get(idx)
		n := copy(h.buf, pkt.Data)
		if h.comp != nil {
			h.comp.signal(Request{Type: CompRecv, Rank: h.src, Tag: h.tag, Data: h.buf[:n], Ctx: h.ctx})
		}
		d.recvHandles.release(idx)
		d.stats.longRecvd.Add(1)
		pkt.Release()
	case opLongChunk:
		// One striped rendezvous chunk: T1 is its byte offset in the posted
		// buffer, so the placement copy needs no ordering — chunks of one
		// transfer land concurrently from different rails and different
		// Progress callers. The atomic byte countdown (armed from the RTS
		// size in acceptRTS) elects exactly one completer; every chunk's
		// copy happens-before the final decrement observes zero.
		idx := uint32(pkt.T0)
		h := d.recvHandles.get(idx)
		off := int(pkt.T1)
		if off < len(h.buf) {
			copy(h.buf[off:], pkt.Data)
		}
		if atomic.AddInt64(&h.remaining, -int64(len(pkt.Data))) == 0 {
			n := h.expect
			if n > len(h.buf) {
				n = len(h.buf)
			}
			// Chunks travelled zero-copy out of the sender's buffer, so the
			// sender completes only on this remote-completion notification —
			// every chunk is copied out before the FIN is built.
			fin := fabric.Packet{Dst: h.src, Op: opLongFin, T0: uint64(h.sendIdx)}
			if h.comp != nil {
				h.comp.signal(Request{Type: CompRecv, Rank: h.src, Tag: h.tag, Data: h.buf[:n], Ctx: h.ctx})
			}
			d.recvHandles.release(idx)
			d.stats.longRecvd.Add(1)
			if err := d.fdev.Inject(fin); errors.Is(err, fabric.ErrBackpressure) {
				// Losing the FIN would leak the sender's handle and strand
				// its completion; park it like a backpressured CTS.
				d.stats.retries.Add(1)
				d.deferControl(fin)
			}
		}
		pkt.Release()
	}
}

// handleCTS sends the rendezvous payload in response to a clear-to-send:
// either as the monolithic opLongData blob (chunking disabled, or the
// payload fits one chunk) or as a chunk stream striped across rails.
func (d *Device) handleCTS(cts *fabric.Packet) {
	sendIdx := uint32(cts.T0)
	recvIdx := uint32(cts.T1)
	h := d.sendHandles.get(sendIdx)
	cs, sw := d.chunkPlan(h.dst, len(h.data))
	if cs == 0 {
		out := fabric.Packet{Dst: h.dst, Op: opLongData, T0: uint64(recvIdx), Data: h.data}
		if err := d.fdev.Inject(out); err != nil {
			if errors.Is(err, fabric.ErrBackpressure) {
				d.deferSend(out, sendIdx)
				return
			}
			// Unreachable with a validated destination; drop the handle to
			// avoid leaking it.
		}
		d.completeLongSend(sendIdx)
		return
	}
	h.recvIdx = recvIdx
	h.chunkSize = cs
	h.stripe = sw
	h.rails = d.fdev.Rails()
	// Rotate each transfer's first rail so concurrent narrow stripes from
	// one sender spread over the rail set instead of piling onto rail 0.
	h.railBase = int(sendIdx) % h.rails
	h.chunks = (len(h.data) + cs - 1) / cs
	h.sent = 0
	d.streamChunks(sendIdx)
}

// streamChunks advances a chunked rendezvous stream: it cuts the payload
// into chunkSize sub-slices, pins each to its stripe rail (rail-major
// order, so consecutive wave entries share a rail and InjectBatch amortizes
// the producer lock), and injects until the payload is fully on the wire or
// a rail backpressures — in which case the stream parks on the deferred
// list and resumes here, from h.sent, on a later Progress pass. The fabric
// copies each chunk on inject, so completion (buffer reusable) fires as
// soon as the last chunk is accepted.
func (d *Device) streamChunks(sendIdx uint32) bool {
	h := d.sendHandles.get(sendIdx)
	wave := d.getWave()
	progressed := false
	for h.sent < h.chunks {
		k := 0
		for k < chunkWave && h.sent+k < h.chunks {
			ci, railIdx := h.chunkAt(h.sent + k)
			off := ci * h.chunkSize
			end := off + h.chunkSize
			if end > len(h.data) {
				end = len(h.data)
			}
			wave[k] = fabric.Packet{
				Dst:    h.dst,
				Op:     opLongChunk,
				Rail:   fabric.RailPin(railIdx),
				T0:     uint64(h.recvIdx),
				T1:     uint64(off),
				T2:     uint64(len(h.data)),
				Data:   h.data[off:end],
				Borrow: true, // zero-copy: h.data stays pinned until the FIN
			}
			k++
		}
		n, err := d.fdev.InjectBatch(wave[:k])
		h.sent += n
		if n > 0 {
			progressed = true
		}
		if err != nil {
			if errors.Is(err, fabric.ErrBackpressure) {
				d.stats.retries.Add(1)
				d.putWave(wave)
				d.deferChunks(sendIdx)
				return progressed
			}
			// Unreachable with a validated destination; abandon the stream
			// and complete locally so the handle is not leaked (no chunks
			// means no FIN will ever arrive).
			d.putWave(wave)
			d.completeLongSend(sendIdx)
			return true
		}
	}
	// Every chunk is accepted, but the payload is only borrowed by the
	// fabric: local completion (and the handle release that lets the caller
	// reuse the buffer) waits for the receiver's opLongFin.
	d.putWave(wave)
	return true
}

// completeLongSend signals the sender's completion object and frees the
// handle.
func (d *Device) completeLongSend(sendIdx uint32) {
	h := d.sendHandles.get(sendIdx)
	if h.comp != nil {
		h.comp.signal(Request{Type: CompSend, Rank: h.dst, Tag: h.tag, Ctx: h.ctx})
	}
	d.sendHandles.release(sendIdx)
	d.stats.longSent.Add(1)
}

// deferSend queues a backpressured injection for retry on the next Progress.
func (d *Device) deferSend(pkt fabric.Packet, sendIdx uint32) {
	d.def.mu.Lock()
	d.def.pkts = append(d.def.pkts, deferredSend{pkt: pkt, sendIdx: sendIdx})
	d.def.mu.Unlock()
}

// retryDeferred re-attempts previously backpressured injections.
func (d *Device) retryDeferred() bool {
	d.def.mu.Lock()
	if len(d.def.pkts) == 0 {
		d.def.mu.Unlock()
		return false
	}
	pending := d.def.pkts
	d.def.pkts = nil
	d.def.mu.Unlock()

	did := false
	for i, ds := range pending {
		if ds.kind == deferChunks {
			// The stream re-parks itself on backpressure, so this entry is
			// never tail-requeued below.
			if d.streamChunks(ds.sendIdx) {
				did = true
			}
			continue
		}
		if err := d.fdev.Inject(ds.pkt); err != nil {
			if errors.Is(err, fabric.ErrBackpressure) {
				d.def.mu.Lock()
				d.def.pkts = append(d.def.pkts, pending[i:]...)
				d.def.mu.Unlock()
				return did
			}
			continue
		}
		switch ds.kind {
		case deferPut:
			d.completePutSend(ds.sendIdx)
		case deferLong:
			d.completeLongSend(ds.sendIdx)
		case deferControl:
			// Control packets complete nothing; landing is enough.
		}
		did = true
	}
	return did
}
