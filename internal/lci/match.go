package lci

import (
	"sync"

	"hpxgo/internal/fabric"
)

// matchKind separates the medium and long matching namespaces so a Recvm can
// never capture a rendezvous RTS with the same tag.
type matchKind uint8

const (
	kindMedium matchKind = iota
	kindLong
)

// postedRecv is a receive posted by the user, waiting for its message.
type postedRecv struct {
	src  int // AnyRank for wildcard
	tag  uint32
	buf  []byte
	comp Comp
	ctx  any
	long bool
}

// matchTable performs tag matching. It is sharded by (kind, tag) with one
// short mutex per shard — the fine-grained locking the paper contrasts with
// MPI's coarse progress lock. Entries carry the source rank so wildcard
// (AnyRank) receives fall out of the same scan.
type matchTable struct {
	shards []matchShard
	mask   uint32
}

type matchShard struct {
	mu     sync.Mutex
	posted map[uint64][]*postedRecv
	unexp  map[uint64][]*fabric.Packet
}

func newMatchTable(nShards int) *matchTable {
	n := 1
	for n < nShards {
		n <<= 1
	}
	t := &matchTable{shards: make([]matchShard, n), mask: uint32(n - 1)}
	for i := range t.shards {
		t.shards[i].posted = make(map[uint64][]*postedRecv)
		t.shards[i].unexp = make(map[uint64][]*fabric.Packet)
	}
	return t
}

func matchKey(kind matchKind, tag uint32) uint64 {
	return uint64(kind)<<32 | uint64(tag)
}

func (t *matchTable) shard(key uint64) *matchShard {
	// Fibonacci hash of the key to spread consecutive tags across shards.
	h := uint32(key*0x9E3779B97F4A7C15>>33) ^ uint32(key)
	return &t.shards[h&t.mask]
}

// postRecv registers a posted receive. If a matching unexpected message is
// already queued it is removed and returned instead (the caller delivers it),
// and the receive is not registered.
func (t *matchTable) postRecv(kind matchKind, src int, tag uint32, pr *postedRecv) *fabric.Packet {
	key := matchKey(kind, tag)
	s := t.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if list := s.unexp[key]; len(list) > 0 {
		for i, pkt := range list {
			if src == AnyRank || pkt.Src == src {
				s.unexp[key] = deleteAt(list, i)
				return pkt
			}
		}
	}
	s.posted[key] = append(s.posted[key], pr)
	return nil
}

// postRecvFront re-registers a receive at the head of its list (used when a
// rendezvous accept must be retried).
func (t *matchTable) postRecvFront(kind matchKind, src int, tag uint32, pr *postedRecv) {
	key := matchKey(kind, tag)
	s := t.shard(key)
	s.mu.Lock()
	s.posted[key] = append([]*postedRecv{pr}, s.posted[key]...)
	s.mu.Unlock()
}

// arrive matches an incoming packet against posted receives. If no receive
// matches, the packet is queued as unexpected and nil is returned.
func (t *matchTable) arrive(kind matchKind, pkt *fabric.Packet, tag uint32) *postedRecv {
	key := matchKey(kind, tag)
	s := t.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if list := s.posted[key]; len(list) > 0 {
		for i, pr := range list {
			if pr.src == AnyRank || pr.src == pkt.Src {
				s.posted[key] = deletePRAt(list, i)
				return pr
			}
		}
	}
	s.unexp[key] = append(s.unexp[key], pkt)
	return nil
}

// pushUnexpected queues a packet as unexpected without attempting a match.
func (t *matchTable) pushUnexpected(kind matchKind, src int, tag uint32, pkt *fabric.Packet) {
	key := matchKey(kind, tag)
	s := t.shard(key)
	s.mu.Lock()
	s.unexp[key] = append(s.unexp[key], pkt)
	s.mu.Unlock()
}

// unexpectedCount reports queued unexpected messages (for tests/stats).
func (t *matchTable) unexpectedCount() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, l := range s.unexp {
			n += len(l)
		}
		s.mu.Unlock()
	}
	return n
}

// deleteAt / deletePRAt keep the emptied slice (rather than dropping it to
// nil) so a steady-state post→match cycle on a stable tag set reuses the
// map entry's capacity instead of re-allocating on every append. The
// retained memory is bounded by the high-water mark per live tag.

func deleteAt(l []*fabric.Packet, i int) []*fabric.Packet {
	l[i] = l[len(l)-1]
	l[len(l)-1] = nil
	return l[:len(l)-1]
}

func deletePRAt(l []*postedRecv, i int) []*postedRecv {
	// Preserve posting order for the remaining receives (wildcards care).
	copy(l[i:], l[i+1:])
	l[len(l)-1] = nil
	return l[:len(l)-1]
}

// handleTable is a fixed-size slot table with a lock-free freelist, used for
// in-flight rendezvous state on both sides.
type handleTable[T any] struct {
	slots []T
	free  *ring[uint32]
}

func newHandleTable[T any](n int) *handleTable[T] {
	t := &handleTable[T]{slots: make([]T, n), free: newRing[uint32](n)}
	for i := 0; i < n; i++ {
		t.free.TryPush(uint32(i))
	}
	return t
}

func (t *handleTable[T]) alloc() (*T, uint32, bool) {
	idx, ok := t.free.TryPop()
	if !ok {
		return nil, 0, false
	}
	return &t.slots[idx], idx, true
}

func (t *handleTable[T]) get(idx uint32) *T { return &t.slots[idx] }

func (t *handleTable[T]) release(idx uint32) {
	var zero T
	t.slots[idx] = zero
	t.free.TryPush(idx)
}

// longSend is the sender-side state of an in-flight rendezvous.
type longSend struct {
	data []byte
	comp Comp
	ctx  any
	dst  int
	tag  uint32

	// Chunked-streaming cursor, populated by handleCTS when the payload is
	// split across rails (see streamChunks). Each field is touched by one
	// goroutine at a time: the CTS is dispatched by a single poller, and a
	// backpressured stream resumes only through the deferred-work list,
	// which hands the handle to exactly one retrier.
	recvIdx   uint32 // receiver's handle index (T0 of every chunk)
	chunkSize int    // bytes per chunk
	stripe    int    // rails this transfer is striped across
	rails     int    // total fabric rails (modulus for the rail mapping)
	railBase  int    // first rail of the stripe (decorrelates transfers)
	chunks    int    // total chunk count
	sent      int    // chunks already accepted by the fabric
}

// chunkAt maps a send-sequence position to (chunk index, rail). Chunks are
// enumerated rail-major — stripe slot s carries chunks s, s+stripe,
// s+2*stripe, ... — so a contiguous run of positions shares a rail and
// InjectBatch amortizes one producer-lock acquisition across it. The
// receiver reassembles by offset, so the on-the-wire order is irrelevant.
func (h *longSend) chunkAt(pos int) (ci, rail int) {
	sw := h.stripe
	for s := 0; s < sw; s++ {
		onRail := (h.chunks - s + sw - 1) / sw // chunks carried by slot s
		if pos < onRail {
			return s + pos*sw, (h.railBase + s) % h.rails
		}
		pos -= onRail
	}
	panic("lci: chunk position out of range")
}

// longRecv is the receiver-side state of an accepted rendezvous.
type longRecv struct {
	buf  []byte
	comp Comp
	ctx  any
	src  int
	tag  uint32
	put  bool // one-sided long put: completes into the put CQ

	// Chunked reassembly: expect is the total payload size announced by the
	// RTS; remaining counts undelivered bytes and is decremented atomically
	// by each arriving chunk (Progress is multi-threaded, so chunks of one
	// transfer can land concurrently). The decrement that reaches zero owns
	// completion and sends the opLongFin notification back to sendIdx on the
	// sender — chunks travel zero-copy out of the sender's buffer, so the
	// sender may not complete (and the caller may not reuse the buffer)
	// until the receiver has copied every chunk out. Plain int64 + atomic
	// ops (not atomic.Int64) so the slot table's zero-value recycling stays
	// copyable under vet.
	expect    int
	remaining int64
	sendIdx   uint32
}
