package lci

import "sync/atomic"

// ring is a bounded multi-producer multi-consumer FIFO queue (Dmitry Vyukov's
// sequence-numbered ring). Both TryPush and TryPop are lock-free in the sense
// that a stalled thread can delay at most the slot it claimed; there is no
// mutex anywhere. It backs the completion queues and the packet-pool
// freelist, the two structures the paper credits for LCI's low-overhead
// completion path ("polling one completion queue is preferable to polling
// multiple requests").
type ring[T any] struct {
	mask uint64
	buf  []ringSlot[T]
	_    [56]byte // keep enq and deq on separate cache lines
	enq  atomic.Uint64
	_    [56]byte
	deq  atomic.Uint64
}

type ringSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// newRing creates a ring with capacity rounded up to a power of two.
func newRing[T any](capacity int) *ring[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &ring[T]{mask: uint64(n - 1), buf: make([]ringSlot[T], n)}
	for i := range r.buf {
		r.buf[i].seq.Store(uint64(i))
	}
	return r
}

// TryPush enqueues v, returning false if the ring is full.
func (r *ring[T]) TryPush(v T) bool {
	pos := r.enq.Load()
	for {
		slot := &r.buf[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.val = v
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			return false // full
		default:
			pos = r.enq.Load()
		}
	}
}

// TryPop dequeues the oldest element, returning false if the ring is empty.
func (r *ring[T]) TryPop() (T, bool) {
	var zero T
	pos := r.deq.Load()
	for {
		slot := &r.buf[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				v := slot.val
				slot.val = zero
				slot.seq.Store(pos + r.mask + 1)
				return v, true
			}
			pos = r.deq.Load()
		case seq <= pos:
			return zero, false // empty
		default:
			pos = r.deq.Load()
		}
	}
}

// Len returns an approximate number of queued elements.
func (r *ring[T]) Len() int {
	n := int64(r.enq.Load()) - int64(r.deq.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap returns the ring capacity.
func (r *ring[T]) Cap() int { return len(r.buf) }
