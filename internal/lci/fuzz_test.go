package lci

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"hpxgo/internal/fabric"
)

// TestRandomizedTraffic drives a randomized mix of medium sends, long
// rendezvous and dynamic puts across a reordering fabric and verifies every
// payload arrives intact exactly once. This is the protocol-level fuzz test:
// any matching, handle-table or pool bug shows up as loss, duplication or
// corruption.
func TestRandomizedTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net, err := fabric.NewNetwork(fabric.Config{Nodes: 2, LatencyNs: 200, Rails: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := NewDevice(net.Device(0), Config{PoolPackets: 32}, nil)
	b := NewDevice(net.Device(1), Config{PoolPackets: 32}, nil)

	const nOps = 400
	type op struct {
		kind    int // 0 medium, 1 long, 2 put
		payload []byte
	}
	ops := make([]op, nOps)
	for i := range ops {
		kind := rng.Intn(3)
		var size int
		switch kind {
		case 0:
			size = 1 + rng.Intn(4096)
		case 1:
			size = 8193 + rng.Intn(40000)
		default:
			size = 1 + rng.Intn(2048)
		}
		payload := make([]byte, size)
		rng.Read(payload)
		ops[i] = op{kind: kind, payload: payload}
	}

	cq := NewCompQueue(1024)
	bufs := make([][]byte, nOps)
	// Post receives for the two-sided ops (tag = index+1).
	for i, o := range ops {
		bufs[i] = make([]byte, len(o.payload))
		switch o.kind {
		case 0:
			if err := b.Recvm(0, uint32(i+1), bufs[i], cq, i); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := b.Recvl(0, uint32(i+1), bufs[i], cq, i); err != nil && err != ErrRetry {
				t.Fatal(err)
			}
		}
	}
	// Fire all sends, retrying under backpressure.
	for i, o := range ops {
		for {
			var err error
			switch o.kind {
			case 0:
				err = a.Sendm(1, uint32(i+1), o.payload, nil, nil)
			case 1:
				err = a.Sendl(1, uint32(i+1), o.payload, nil, nil)
			default:
				err = a.Putd(1, uint32(i+1), o.payload)
			}
			if err == nil {
				break
			}
			if err != ErrRetry {
				t.Fatalf("op %d: %v", i, err)
			}
			a.Progress()
			b.Progress()
		}
	}

	seen := make([]bool, nOps)
	remaining := nOps
	deadline := time.Now().Add(30 * time.Second)
	for remaining > 0 && time.Now().Before(deadline) {
		a.Progress()
		b.Progress()
		for {
			req, ok := cq.Pop()
			if !ok {
				req, ok = b.PutCQ().Pop()
			}
			if !ok {
				break
			}
			var idx int
			var data []byte
			switch req.Type {
			case CompRecv:
				idx = req.Ctx.(int)
				data = req.Data
			case CompPut:
				idx = int(req.Tag) - 1
				data = req.Data
			default:
				continue
			}
			if idx < 0 || idx >= nOps {
				t.Fatalf("completion for unknown op %d", idx)
			}
			if seen[idx] {
				t.Fatalf("duplicate completion for op %d", idx)
			}
			seen[idx] = true
			remaining--
			if !bytes.Equal(data, ops[idx].payload) {
				t.Fatalf("op %d (kind %d, %d bytes) corrupted", idx, ops[idx].kind, len(ops[idx].payload))
			}
		}
	}
	if remaining > 0 {
		t.Fatalf("%d of %d operations never completed", remaining, nOps)
	}
}
