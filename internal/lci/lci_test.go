package lci

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpxgo/internal/fabric"
)

// pair builds two devices on a fresh 2-node network.
func pair(t *testing.T, fcfg fabric.Config, cfg Config) (*Device, *Device) {
	t.Helper()
	fcfg.Nodes = 2
	net, err := fabric.NewNetwork(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	a := NewDevice(net.Device(0), cfg, nil)
	b := NewDevice(net.Device(1), cfg, nil)
	return a, b
}

// progressUntil drives both devices until cond holds or the deadline passes.
func progressUntil(t *testing.T, timeout time.Duration, cond func() bool, devs ...*Device) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		for _, d := range devs {
			d.Progress()
		}
	}
	t.Fatalf("condition not reached within %v", timeout)
}

func TestMediumSendRecvPostedFirst(t *testing.T) {
	a, b := pair(t, fabric.Config{LatencyNs: 100}, Config{})
	cq := NewCompQueue(16)
	buf := make([]byte, 64)
	if err := b.Recvm(0, 7, buf, cq, "rctx"); err != nil {
		t.Fatal(err)
	}
	if err := a.Sendm(1, 7, []byte("medium payload"), nil, nil); err != nil {
		t.Fatal(err)
	}
	var got Request
	progressUntil(t, time.Second, func() bool {
		r, ok := cq.Pop()
		if ok {
			got = r
		}
		return ok
	}, a, b)
	if got.Type != CompRecv || got.Rank != 0 || got.Tag != 7 || got.Ctx != "rctx" {
		t.Fatalf("bad completion: %+v", got)
	}
	if string(got.Data) != "medium payload" {
		t.Fatalf("bad payload %q", got.Data)
	}
}

func TestMediumUnexpectedFirst(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	if err := a.Sendm(1, 9, []byte("early"), nil, nil); err != nil {
		t.Fatal(err)
	}
	// Let the message arrive unexpectedly before the receive is posted.
	progressUntil(t, time.Second, func() bool { return b.Stats().Unexpected == 1 }, b)

	cq := NewCompQueue(16)
	buf := make([]byte, 16)
	if err := b.Recvm(0, 9, buf, cq, nil); err != nil {
		t.Fatal(err)
	}
	r, ok := cq.Pop()
	if !ok {
		t.Fatal("posting the receive should match the queued unexpected message synchronously")
	}
	if string(r.Data) != "early" {
		t.Fatalf("bad payload %q", r.Data)
	}
}

func TestMediumWildcardRecv(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	cq := NewCompQueue(16)
	buf := make([]byte, 16)
	if err := b.Recvm(AnyRank, 0, buf, cq, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Sendm(1, 0, []byte("wild"), nil, nil); err != nil {
		t.Fatal(err)
	}
	var got Request
	progressUntil(t, time.Second, func() bool {
		r, ok := cq.Pop()
		if ok {
			got = r
		}
		return ok
	}, b)
	if got.Rank != 0 || string(got.Data) != "wild" {
		t.Fatalf("bad wildcard completion: %+v", got)
	}
}

func TestMediumSendLocalCompletion(t *testing.T) {
	a, _ := pair(t, fabric.Config{}, Config{})
	var fired atomic.Bool
	h := Handler(func(r Request) {
		if r.Type != CompSend || r.Rank != 1 || r.Tag != 3 || r.Ctx != 42 {
			t.Errorf("bad send completion %+v", r)
		}
		fired.Store(true)
	})
	if err := a.Sendm(1, 3, []byte("x"), h, 42); err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("medium send completion must fire at injection")
	}
}

func TestMediumTooLarge(t *testing.T) {
	a, _ := pair(t, fabric.Config{}, Config{EagerThreshold: 128})
	err := a.Sendm(1, 0, make([]byte, 129), nil, nil)
	if err == nil || errors.Is(err, ErrRetry) {
		t.Fatalf("expected a hard size error, got %v", err)
	}
}

func TestPutDynamic(t *testing.T) {
	a, b := pair(t, fabric.Config{LatencyNs: 50}, Config{})
	payload := []byte("one-sided dynamic put")
	if err := a.Putd(1, 0xBEEF, payload); err != nil {
		t.Fatal(err)
	}
	var got Request
	progressUntil(t, time.Second, func() bool {
		r, ok := b.PutCQ().Pop()
		if ok {
			got = r
		}
		return ok
	}, b)
	if got.Type != CompPut || got.Rank != 0 || got.Tag != 0xBEEF {
		t.Fatalf("bad put completion: %+v", got)
	}
	if !bytes.Equal(got.Data, payload) {
		t.Fatalf("bad payload %q", got.Data)
	}
}

func TestPutdPacketAssembly(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{PoolPackets: 8})
	p, err := a.GetPacket()
	if err != nil {
		t.Fatal(err)
	}
	n := copy(p.Data, "assembled in place")
	if err := a.PutdPacket(1, 5, p, n); err != nil {
		t.Fatal(err)
	}
	var got Request
	progressUntil(t, time.Second, func() bool {
		r, ok := b.PutCQ().Pop()
		if ok {
			got = r
		}
		return ok
	}, b)
	if string(got.Data) != "assembled in place" {
		t.Fatalf("bad payload %q", got.Data)
	}
	// The packet must be back in the pool: draining PoolPackets gets must work.
	for i := 0; i < 8; i++ {
		if _, err := a.GetPacket(); err != nil {
			t.Fatalf("pool packet %d missing after PutdPacket returned it: %v", i, err)
		}
	}
}

func TestPacketPoolExhaustionRetry(t *testing.T) {
	a, _ := pair(t, fabric.Config{}, Config{PoolPackets: 2})
	p1, err := a.GetPacket()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.GetPacket()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.GetPacket(); !errors.Is(err, ErrRetry) {
		t.Fatalf("expected ErrRetry on exhausted pool, got %v", err)
	}
	a.PutPacket(p1)
	if _, err := a.GetPacket(); err != nil {
		t.Fatalf("pool should have a free packet again: %v", err)
	}
	a.PutPacket(p2)
	if got := a.Stats().Retries; got != 1 {
		t.Fatalf("Retries = %d, want 1", got)
	}
}

func TestLongRendezvousPostedFirst(t *testing.T) {
	a, b := pair(t, fabric.Config{LatencyNs: 100}, Config{EagerThreshold: 64})
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	recvCQ := NewCompQueue(4)
	sendCQ := NewCompQueue(4)
	buf := make([]byte, len(payload))
	if err := b.Recvl(0, 11, buf, recvCQ, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Sendl(1, 11, payload, sendCQ, nil); err != nil {
		t.Fatal(err)
	}
	var r Request
	progressUntil(t, 2*time.Second, func() bool {
		req, ok := recvCQ.Pop()
		if ok {
			r = req
		}
		return ok
	}, a, b)
	if !bytes.Equal(r.Data, payload) {
		t.Fatal("rendezvous payload corrupted")
	}
	progressUntil(t, 2*time.Second, func() bool {
		_, ok := sendCQ.Pop()
		return ok
	}, a, b)
	sa, sb := a.Stats(), b.Stats()
	if sa.LongSent != 1 || sb.LongRecvd != 1 {
		t.Fatalf("long counters: sent=%d recvd=%d", sa.LongSent, sb.LongRecvd)
	}
}

func TestLongRendezvousRTSFirst(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{EagerThreshold: 64})
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Sendl(1, 4, payload, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Drain the RTS before the receive exists: it must queue as unexpected.
	progressUntil(t, time.Second, func() bool { return b.Stats().Unexpected == 1 }, b)

	recvCQ := NewCompQueue(4)
	buf := make([]byte, len(payload))
	if err := b.Recvl(0, 4, buf, recvCQ, nil); err != nil {
		t.Fatal(err)
	}
	var r Request
	progressUntil(t, 2*time.Second, func() bool {
		req, ok := recvCQ.Pop()
		if ok {
			r = req
		}
		return ok
	}, a, b)
	if !bytes.Equal(r.Data, payload) {
		t.Fatal("payload corrupted in RTS-first rendezvous")
	}
}

func TestManyTagsManyMessages(t *testing.T) {
	// Distinct tag per message, both directions matched correctly — the
	// pattern the LCI parcelport uses for follow-up messages.
	a, b := pair(t, fabric.Config{LatencyNs: 10, Rails: 2}, Config{})
	const n = 200
	cq := NewCompQueue(256)
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		bufs[i] = make([]byte, 32)
		if err := b.Recvm(0, uint32(i+1), bufs[i], cq, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		msg := []byte(fmt.Sprintf("msg-%d", i))
		if err := a.Sendm(1, uint32(i+1), msg, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	progressUntil(t, 5*time.Second, func() bool {
		for {
			r, ok := cq.Pop()
			if !ok {
				return seen == n
			}
			i := r.Ctx.(int)
			if want := fmt.Sprintf("msg-%d", i); string(r.Data) != want {
				t.Fatalf("tag %d delivered %q, want %q", r.Tag, r.Data, want)
			}
			seen++
		}
	}, a, b)
}

func TestCompQueueOverflowDoesNotDrop(t *testing.T) {
	q := NewCompQueue(4) // ring capacity 4
	for i := 0; i < 100; i++ {
		q.Push(Request{Tag: uint32(i)})
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	seen := make(map[uint32]bool)
	for i := 0; i < 100; i++ {
		r, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if seen[r.Tag] {
			t.Fatalf("duplicate tag %d", r.Tag)
		}
		seen[r.Tag] = true
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestCompQueuePopN(t *testing.T) {
	q := NewCompQueue(8) // ring capacity 8, the rest overflows
	const total = 50
	for i := 0; i < total; i++ {
		q.Push(Request{Tag: uint32(i)})
	}
	seen := make(map[uint32]bool)
	var buf [7]Request
	got := 0
	for got < total {
		n := q.PopN(buf[:])
		if n == 0 {
			t.Fatalf("PopN returned 0 with %d records remaining", total-got)
		}
		for _, r := range buf[:n] {
			if seen[r.Tag] {
				t.Fatalf("duplicate tag %d", r.Tag)
			}
			seen[r.Tag] = true
		}
		got += n
	}
	if n := q.PopN(buf[:]); n != 0 {
		t.Fatalf("drained queue returned %d records", n)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", q.Len())
	}
}

func TestCompQueuePopNInterleavedWithPush(t *testing.T) {
	q := NewCompQueue(4)
	var buf [16]Request
	next, got := 0, 0
	for round := 0; round < 40; round++ {
		for k := 0; k < 1+round%5; k++ {
			q.Push(Request{Tag: uint32(next)})
			next++
		}
		got += q.PopN(buf[:1+round%3])
	}
	for {
		n := q.PopN(buf[:])
		if n == 0 {
			break
		}
		got += n
	}
	if got != next {
		t.Fatalf("popped %d of %d pushed records", got, next)
	}
}

func TestSynchronizer(t *testing.T) {
	s := NewSynchronizer(3)
	if s.Test() {
		t.Fatal("fresh synchronizer must not be triggered")
	}
	s.signal(Request{Tag: 1})
	s.signal(Request{Tag: 2})
	if s.Test() {
		t.Fatal("2 of 3 signals should not trigger")
	}
	if s.Requests() != nil {
		t.Fatal("Requests before trigger should be nil")
	}
	s.signal(Request{Tag: 3})
	if !s.Test() {
		t.Fatal("3 signals should trigger")
	}
	if got := len(s.Requests()); got != 3 {
		t.Fatalf("Requests len = %d, want 3", got)
	}
	s.Reset()
	if s.Test() {
		t.Fatal("reset synchronizer must not be triggered")
	}
}

func TestSynchronizerDefaultExpected(t *testing.T) {
	s := NewSynchronizer(0)
	s.signal(Request{})
	if !s.Test() {
		t.Fatal("expected<=0 should default to 1")
	}
}

func TestConcurrentProgressSafety(t *testing.T) {
	// "mt" mode: several goroutines call Progress while several senders
	// inject. All messages must be delivered exactly once.
	a, b := pair(t, fabric.Config{LatencyNs: 50, Rails: 2}, Config{})
	const n = 500
	cq := NewCompQueue(1024)
	for i := 0; i < n; i++ {
		if err := b.Recvm(0, uint32(i+1), make([]byte, 16), cq, i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < n; i += 2 {
				for {
					if err := a.Sendm(1, uint32(i+1), []byte("payload"), nil, nil); err == nil {
						break
					}
				}
			}
		}(s)
	}
	stop := make(chan struct{})
	var pw sync.WaitGroup
	for p := 0; p < 3; p++ {
		pw.Add(1)
		go func() {
			defer pw.Done()
			for {
				b.Progress()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	seen := make(map[int]bool)
	deadline := time.Now().Add(10 * time.Second)
	for len(seen) < n && time.Now().Before(deadline) {
		if r, ok := cq.Pop(); ok {
			i := r.Ctx.(int)
			if seen[i] {
				t.Fatalf("duplicate delivery %d", i)
			}
			seen[i] = true
		}
	}
	close(stop)
	pw.Wait()
	if len(seen) != n {
		t.Fatalf("delivered %d, want %d", len(seen), n)
	}
}

func TestCompTypeString(t *testing.T) {
	if CompSend.String() != "send" || CompRecv.String() != "recv" || CompPut.String() != "put" {
		t.Fatal("CompType strings wrong")
	}
	if CompType(99).String() != "unknown" {
		t.Fatal("unknown CompType string wrong")
	}
}

func TestDeviceAccessors(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{EagerThreshold: 2048})
	if a.Rank() != 0 || b.Rank() != 1 {
		t.Fatal("bad ranks")
	}
	if a.EagerThreshold() != 2048 {
		t.Fatalf("EagerThreshold = %d", a.EagerThreshold())
	}
	if a.PutCQ() == nil {
		t.Fatal("nil PutCQ")
	}
}

func TestShortSend(t *testing.T) {
	a, b := pair(t, fabric.Config{LatencyNs: 50}, Config{})
	cq := NewCompQueue(16)
	buf := make([]byte, 16)
	if err := b.Recvm(0, 4, buf, cq, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Sends(1, 4, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	var got Request
	progressUntil(t, time.Second, func() bool {
		r, ok := cq.Pop()
		if ok {
			got = r
		}
		return ok
	}, b)
	if !bytes.Equal(got.Data, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("short payload %v", got.Data)
	}
}

func TestShortSendLimits(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{})
	if err := a.Sends(1, 1, make([]byte, ShortSize+1)); err == nil {
		t.Fatal("oversized short send should fail")
	}
	// Empty and max-size shorts round-trip.
	cq := NewCompQueue(16)
	for i, payload := range [][]byte{{}, bytes.Repeat([]byte{0xAB}, ShortSize)} {
		buf := make([]byte, ShortSize)
		if err := b.Recvm(0, uint32(10+i), buf, cq, nil); err != nil {
			t.Fatal(err)
		}
		if err := a.Sends(1, uint32(10+i), payload); err != nil {
			t.Fatal(err)
		}
		var got Request
		progressUntil(t, time.Second, func() bool {
			r, ok := cq.Pop()
			if ok {
				got = r
			}
			return ok
		}, b)
		if !bytes.Equal(got.Data, payload) {
			t.Fatalf("case %d: %v != %v", i, got.Data, payload)
		}
	}
}

func TestMemoryRegistration(t *testing.T) {
	a, _ := pair(t, fabric.Config{}, Config{MaxRegisteredBytes: 1000})
	m1, err := a.RegisterMemory(make([]byte, 600))
	if err != nil {
		t.Fatal(err)
	}
	if a.RegisteredBytes() != 600 {
		t.Fatalf("RegisteredBytes = %d", a.RegisteredBytes())
	}
	if _, err := a.RegisterMemory(make([]byte, 600)); !errors.Is(err, ErrRetry) {
		t.Fatalf("over-cap registration: %v", err)
	}
	m1.Deregister()
	m1.Deregister() // idempotent
	if a.RegisteredBytes() != 0 {
		t.Fatalf("RegisteredBytes after deregister = %d", a.RegisteredBytes())
	}
	m2, err := a.RegisterMemory(make([]byte, 900))
	if err != nil {
		t.Fatalf("registration after release failed: %v", err)
	}
	m2.Deregister()
	if _, err := a.RegisterMemory(nil); err == nil {
		t.Fatal("empty registration should fail")
	}
}

func TestSendmPacketRoundTrip(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{PoolPackets: 4})
	cq := NewCompQueue(4)
	buf := make([]byte, 32)
	if err := b.Recvm(0, 6, buf, cq, nil); err != nil {
		t.Fatal(err)
	}
	p, err := a.GetPacket()
	if err != nil {
		t.Fatal(err)
	}
	n := copy(p.Data, "packet-assembled send")
	if err := a.SendmPacket(1, 6, p, n, nil, nil); err != nil {
		t.Fatal(err)
	}
	var got Request
	progressUntil(t, time.Second, func() bool {
		r, ok := cq.Pop()
		if ok {
			got = r
		}
		return ok
	}, b)
	if string(got.Data) != "packet-assembled send" {
		t.Fatalf("payload %q", got.Data)
	}
	// All four packets must be back in the pool.
	for i := 0; i < 4; i++ {
		if _, err := a.GetPacket(); err != nil {
			t.Fatalf("pool packet %d missing: %v", i, err)
		}
	}
}

func TestBackpressureRetrySemantics(t *testing.T) {
	// A one-packet injection window: eager ops report ErrRetry, the
	// rendezvous payload is deferred inside the progress engine and
	// delivered once the window frees.
	fcfg := fabric.Config{MaxInflight: 1, LatencyNs: 1000}
	a, b := pair(t, fcfg, Config{EagerThreshold: 64})
	// Fill the a->b window.
	if err := a.Sendm(1, 1, []byte("fill"), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Sendm(1, 2, []byte("x"), nil, nil); !errors.Is(err, ErrRetry) {
		t.Fatalf("expected ErrRetry, got %v", err)
	}
	if err := a.Putd(1, 3, []byte("y")); !errors.Is(err, ErrRetry) {
		t.Fatalf("putd expected ErrRetry, got %v", err)
	}
	// Rendezvous across the tiny window: the CTS-triggered payload send
	// hits backpressure inside progress and must be deferred + retried.
	payload := make([]byte, 500)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	recvCQ := NewCompQueue(4)
	buf := make([]byte, len(payload))
	if err := b.Recvl(0, 9, buf, recvCQ, nil); err != nil {
		t.Fatal(err)
	}
	for {
		if err := a.Sendl(1, 9, payload, nil, nil); err == nil {
			break
		}
		a.Progress()
		b.Progress()
	}
	var r Request
	progressUntil(t, 10*time.Second, func() bool {
		req, ok := recvCQ.Pop()
		if ok {
			r = req
		}
		return ok
	}, a, b)
	if !bytes.Equal(r.Data, payload) {
		t.Fatal("deferred rendezvous payload corrupted")
	}
}

func TestLongHandleExhaustionRequeues(t *testing.T) {
	// One receive handle: concurrent rendezvous receives force the
	// accept-RTS path to requeue and retry (postRecvFront/pushUnexpected).
	a, b := pair(t, fabric.Config{}, Config{EagerThreshold: 16, MaxLongHandles: 1})
	cq := NewCompQueue(8)
	const n = 3
	payloads := make([][]byte, n)
	bufs := make([][]byte, n)
	for i := 0; i < n; i++ {
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 200)
		bufs[i] = make([]byte, 200)
		if err := b.Recvl(0, uint32(20+i), bufs[i], cq, i); err != nil && !errors.Is(err, ErrRetry) {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for {
			err := a.Sendl(1, uint32(20+i), payloads[i], nil, nil)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrRetry) {
				t.Fatal(err)
			}
			a.Progress()
			b.Progress()
		}
	}
	seen := 0
	progressUntil(t, 10*time.Second, func() bool {
		for {
			r, ok := cq.Pop()
			if !ok {
				return seen == n
			}
			i := r.Ctx.(int)
			if !bytes.Equal(r.Data, payloads[i]) {
				t.Fatalf("rendezvous %d corrupted under handle pressure", i)
			}
			seen++
		}
	}, a, b)
	if b.match.unexpectedCount() != 0 {
		t.Fatalf("unexpected queue not drained: %d", b.match.unexpectedCount())
	}
}

func TestPutPacketForeignDeviceIgnored(t *testing.T) {
	a, b := pair(t, fabric.Config{}, Config{PoolPackets: 2})
	p, err := a.GetPacket()
	if err != nil {
		t.Fatal(err)
	}
	b.PutPacket(p)   // wrong device: must be ignored
	b.PutPacket(nil) // nil-safe
	a.PutPacket(p)   // correct return
	if _, err := a.GetPacket(); err != nil {
		t.Fatal("packet lost after foreign PutPacket")
	}
}

func TestPutLong(t *testing.T) {
	a, b := pair(t, fabric.Config{LatencyNs: 100}, Config{EagerThreshold: 64})
	payload := make([]byte, 50000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	sendCQ := NewCompQueue(4)
	if err := a.Putl(1, 0xF00D, payload, sendCQ, "putl"); err != nil {
		t.Fatal(err)
	}
	var got Request
	progressUntil(t, 5*time.Second, func() bool {
		r, ok := b.PutCQ().Pop()
		if ok {
			got = r
		}
		return ok
	}, a, b)
	if got.Type != CompPut || got.Tag != 0xF00D || !bytes.Equal(got.Data, payload) {
		t.Fatalf("long put completion wrong: type=%v tag=%#x len=%d", got.Type, got.Tag, len(got.Data))
	}
	// Local completion with the caller's context.
	var local Request
	progressUntil(t, 5*time.Second, func() bool {
		r, ok := sendCQ.Pop()
		if ok {
			local = r
		}
		return ok
	}, a, b)
	if local.Type != CompSend || local.Ctx != "putl" {
		t.Fatalf("local put completion wrong: %+v", local)
	}
	if a.Stats().PutsSent != 1 || b.Stats().PutsRecvd != 1 {
		t.Fatalf("put counters: %+v / %+v", a.Stats(), b.Stats())
	}
}

func TestPutLongManyUnderHandlePressure(t *testing.T) {
	a, b := pair(t, fabric.Config{LatencyNs: 50}, Config{EagerThreshold: 32, MaxLongHandles: 2})
	const n = 10
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 500+i)
	}
	for i := range payloads {
		for {
			err := a.Putl(1, uint32(i), payloads[i], nil, nil)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrRetry) {
				t.Fatal(err)
			}
			a.Progress()
			b.Progress()
		}
	}
	seen := make([]bool, n)
	count := 0
	progressUntil(t, 10*time.Second, func() bool {
		for {
			r, ok := b.PutCQ().Pop()
			if !ok {
				return count == n
			}
			i := int(r.Tag)
			if seen[i] {
				t.Fatalf("duplicate put %d", i)
			}
			if !bytes.Equal(r.Data, payloads[i]) {
				t.Fatalf("put %d corrupted", i)
			}
			seen[i] = true
			count++
		}
	}, a, b)
}
