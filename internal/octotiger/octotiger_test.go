package octotiger

import (
	"math"
	"testing"
	"testing/quick"

	"hpxgo/internal/core"
	"hpxgo/internal/fabric"
)

func TestMortonRoundTripProperty(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 0x1FFFFF
		y &= 0x1FFFFF
		z &= 0x1FFFFF
		gx, gy, gz := MortonDecode(MortonEncode(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMortonLocality(t *testing.T) {
	// Morton keys of (0,0,0) and (1,0,0) must be closer than (0,0,0) and
	// (0,0,4): the space-filling property the partitioner relies on.
	near := MortonEncode(1, 0, 0) - MortonEncode(0, 0, 0)
	far := MortonEncode(0, 0, 4) - MortonEncode(0, 0, 0)
	if near >= far {
		t.Fatalf("Morton locality violated: near=%d far=%d", near, far)
	}
}

func TestBuildTreeFullRefinement(t *testing.T) {
	// RefineFraction 0 refines only to MinLevel: a complete octree.
	tr, err := BuildTree(Params{MaxLevel: 3, MinLevel: 3, RefineFraction: -1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Leaves) != 8*8*8 {
		t.Fatalf("full level-3 tree has %d leaves, want 512", len(tr.Leaves))
	}
	for i := 1; i < len(tr.Leaves); i++ {
		if tr.Leaves[i].Morton <= tr.Leaves[i-1].Morton {
			t.Fatal("leaves not in strict Morton order")
		}
	}
}

func TestBuildTreeAdaptive(t *testing.T) {
	tr, err := BuildTree(Params{MaxLevel: 4, MinLevel: 2, RefineFraction: 0.5, Seed: 42}, 4)
	if err != nil {
		t.Fatal(err)
	}
	minL, maxL := 99, 0
	for _, lf := range tr.Leaves {
		if lf.Level < minL {
			minL = lf.Level
		}
		if lf.Level > maxL {
			maxL = lf.Level
		}
	}
	if minL < 2 || maxL > 4 {
		t.Fatalf("leaf levels outside [2,4]: [%d,%d]", minL, maxL)
	}
	if maxL == minL {
		t.Fatal("tree is not adaptive (all leaves at one level)")
	}
	// Determinism: same seed, same tree.
	tr2, _ := BuildTree(Params{MaxLevel: 4, MinLevel: 2, RefineFraction: 0.5, Seed: 42}, 4)
	if len(tr2.Leaves) != len(tr.Leaves) {
		t.Fatal("tree build is not deterministic")
	}
}

func TestPartitionBalancedContiguous(t *testing.T) {
	const locs = 4
	tr, err := BuildTree(Params{MaxLevel: 3, MinLevel: 3}, locs)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, locs)
	prevOwner := 0
	for _, lf := range tr.Leaves {
		counts[lf.Owner]++
		if lf.Owner < prevOwner {
			t.Fatal("partition is not contiguous in Morton order")
		}
		prevOwner = lf.Owner
	}
	for l, c := range counts {
		if c < len(tr.Leaves)/locs-1 || c > len(tr.Leaves)/locs+1 {
			t.Fatalf("locality %d owns %d of %d leaves (unbalanced)", l, c, len(tr.Leaves))
		}
	}
}

func TestNeighborsSameLevelSymmetric(t *testing.T) {
	tr, err := BuildTree(Params{MaxLevel: 2, MinLevel: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, lf := range tr.Leaves {
		for f, nb := range lf.Neighbors {
			if nb < 0 {
				// Must actually be at the domain boundary.
				max := uint32(1<<uint(lf.Level)) - 1
				c := [3]uint32{lf.X, lf.Y, lf.Z}[f/2]
				if !(f%2 == 0 && c == 0 || f%2 == 1 && c == max) {
					t.Fatalf("leaf %d face %d has no neighbour but is interior", lf.Index, f)
				}
				continue
			}
			back := tr.Leaves[nb].Neighbors[f^1]
			if back != lf.Index {
				t.Fatalf("asymmetric adjacency: %d -f%d-> %d -f%d-> %d", lf.Index, f, nb, f^1, back)
			}
		}
	}
}

func TestNeighborsAdaptiveResolve(t *testing.T) {
	tr, err := BuildTree(Params{MaxLevel: 4, MinLevel: 1, RefineFraction: 0.4, Seed: 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every interior face must resolve to some leaf.
	for _, lf := range tr.Leaves {
		max := uint32(1 << uint(lf.Level))
		coords := [3]uint32{lf.X, lf.Y, lf.Z}
		for f, nb := range lf.Neighbors {
			interior := !(f%2 == 0 && coords[f/2] == 0 || f%2 == 1 && coords[f/2] == max-1)
			if interior && nb < 0 {
				t.Fatalf("interior face unresolved: leaf %d (level %d) face %d", lf.Index, lf.Level, f)
			}
			if nb >= 0 && tr.Leaves[nb] == nil {
				t.Fatal("dangling neighbour index")
			}
		}
	}
}

func TestRemoteFacesPositive(t *testing.T) {
	tr, err := BuildTree(Params{MaxLevel: 3, MinLevel: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RemoteFaces() == 0 {
		t.Fatal("a 4-way partition must cut some faces")
	}
	tr1, _ := BuildTree(Params{MaxLevel: 3, MinLevel: 3}, 1)
	if tr1.RemoteFaces() != 0 {
		t.Fatal("single locality cannot have remote faces")
	}
}

func TestFaceIndicesCountAndBounds(t *testing.T) {
	const s = 5
	for f := 0; f < 6; f++ {
		count := 0
		faceIndices(s, f, func(idx int) {
			if idx < 0 || idx >= s*s*s {
				t.Fatalf("face %d index %d out of range", f, idx)
			}
			count++
		})
		if count != s*s {
			t.Fatalf("face %d yielded %d indices, want %d", f, count, s*s)
		}
	}
}

func TestBoundaryRoundTrip(t *testing.T) {
	p := Params{SubgridSize: 4, Fields: 2}
	p.fillDefaults()
	lf := &Leaf{Morton: 123}
	st := newLeafState(p, lf)
	payload := st.extractBoundary(p, 3)
	vals := decodeF64s(payload)
	if len(vals) != p.Fields*p.SubgridSize*p.SubgridSize {
		t.Fatalf("boundary has %d values", len(vals))
	}
	// First value must equal the first face cell of field 0.
	var first float64
	got := false
	faceIndices(p.SubgridSize, 3, func(idx int) {
		if !got {
			first = st.fields[0][idx]
			got = true
		}
	})
	if vals[0] != first {
		t.Fatal("boundary extraction order mismatch")
	}
}

func TestCommitConservesMass(t *testing.T) {
	p := Params{SubgridSize: 6, Fields: 1}
	p.fillDefaults()
	st := newLeafState(p, &Leaf{Morton: 5})
	before := st.mass()
	st.selfInteraction(p)
	for i := range st.potential {
		st.potential[i] += float64(i%7) * 0.01 // arbitrary extra potential
	}
	st.commit()
	after := st.mass()
	if math.Abs(after-before) > 1e-9*math.Abs(before) {
		t.Fatalf("mass changed: %g -> %g", before, after)
	}
}

// runApp builds a runtime + app with small parameters and runs n steps.
func runApp(t *testing.T, pp string, localities, steps int) *App {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{
		Localities:         localities,
		WorkersPerLocality: 2,
		Parcelport:         pp,
		Fabric:             fabric.Config{LatencyNs: 300, GbitsPerSec: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(rt, Params{MaxLevel: 2, MinLevel: 2, SubgridSize: 4, Fields: 2, StopStep: steps})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	return app
}

func TestAppRunsLCI(t *testing.T) {
	app := runApp(t, "lci", 2, 2)
	if app.Steps() != 2 {
		t.Fatalf("Steps = %d", app.Steps())
	}
	if rel := math.Abs(app.TotalMass()-app.InitialMass()) / app.InitialMass(); rel > 1e-9 {
		t.Fatalf("mass drifted by %g", rel)
	}
}

func TestAppRunsMPI(t *testing.T) {
	app := runApp(t, "mpi_i", 2, 2)
	if app.Steps() != 2 {
		t.Fatalf("Steps = %d", app.Steps())
	}
}

func TestChecksumIndependentOfParcelportAndPartition(t *testing.T) {
	// The physics must not depend on the communication backend or the number
	// of localities: same checksum everywhere.
	ref := runApp(t, "lci", 1, 2).PotentialChecksum()
	for _, tc := range []struct {
		pp   string
		locs int
	}{{"lci", 2}, {"mpi_i", 2}, {"lci_sr_sy_mt_i", 3}} {
		got := runApp(t, tc.pp, tc.locs, 2).PotentialChecksum()
		if math.Abs(got-ref) > 1e-6*math.Abs(ref) {
			t.Fatalf("%s x%d: checksum %g, want %g", tc.pp, tc.locs, got, ref)
		}
	}
}

func TestProlongConservesMass(t *testing.T) {
	p := Params{SubgridSize: 6, Fields: 2}
	p.fillDefaults()
	parent := newLeafState(p, &Leaf{Morton: 77})
	parentMass := parent.mass()
	children := prolong(p, parent)
	if len(children) != 8 {
		t.Fatalf("prolong produced %d children", len(children))
	}
	var childMass float64
	for _, c := range children {
		childMass += c.mass()
	}
	if math.Abs(childMass-parentMass) > 1e-9*math.Abs(parentMass) {
		t.Fatalf("prolongation lost mass: %g -> %g", parentMass, childMass)
	}
}

func TestRegridRefinesAndConserves(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{
		Localities: 2, WorkersPerLocality: 2, Parcelport: "lci",
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(rt, Params{MaxLevel: 3, MinLevel: 2, SubgridSize: 4, Fields: 1, StopStep: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	before := len(app.Tree().Leaves)
	massBefore := app.TotalMass()
	// Threshold 0: every leaf below MaxLevel refines.
	refined, err := app.Regrid(0)
	if err != nil {
		t.Fatal(err)
	}
	if refined == 0 {
		t.Fatal("nothing refined at zero threshold")
	}
	after := len(app.Tree().Leaves)
	if after != before+7*refined {
		t.Fatalf("leaf count %d -> %d with %d refinements", before, after, refined)
	}
	if rel := math.Abs(app.TotalMass()-massBefore) / massBefore; rel > 1e-9 {
		t.Fatalf("regrid changed mass by %g", rel)
	}
	// Partition must remain contiguous and neighbours consistent.
	prevOwner := 0
	for _, lf := range app.Tree().Leaves {
		if lf.Owner < prevOwner {
			t.Fatal("partition not contiguous after regrid")
		}
		prevOwner = lf.Owner
		for f, nb := range lf.Neighbors {
			if nb >= 0 && app.Tree().Leaves[nb].Level == lf.Level {
				if back := app.Tree().Leaves[nb].Neighbors[f^1]; back != lf.Index {
					t.Fatalf("asymmetric adjacency after regrid: %d vs %d", lf.Index, back)
				}
			}
		}
	}
	// And the app must still step correctly on the new tree.
	if err := app.Step(); err != nil {
		t.Fatalf("step after regrid: %v", err)
	}
	// Very high threshold: no refinement.
	if n, err := app.Regrid(1e18); err != nil || n != 0 {
		t.Fatalf("high-threshold regrid: %d, %v", n, err)
	}
}

func TestRunWithRegridEnabled(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{Localities: 2, WorkersPerLocality: 2, Parcelport: "mpi_i"})
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(rt, Params{
		MaxLevel: 3, MinLevel: 2, SubgridSize: 4, Fields: 1,
		StopStep: 3, RegridEvery: 1, RegridThreshold: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	before := len(app.Tree().Leaves)
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	if len(app.Tree().Leaves) <= before {
		t.Fatal("regridding never grew the tree")
	}
	if rel := math.Abs(app.TotalMass()-app.InitialMass()) / app.InitialMass(); rel > 1e-9 {
		t.Fatalf("mass drifted by %g across regrids", rel)
	}
}
