package octotiger

import "testing"

func BenchmarkMortonEncodeDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := MortonEncode(uint32(i), uint32(i>>2), uint32(i>>4))
		MortonDecode(m)
	}
}

func BenchmarkBuildTreeLevel4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTree(Params{MaxLevel: 4, MinLevel: 2, RefineFraction: 0.5}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfInteraction(b *testing.B) {
	p := Params{SubgridSize: 8, Fields: 4}
	p.fillDefaults()
	st := newLeafState(p, &Leaf{Morton: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.selfInteraction(p)
	}
}

func BenchmarkExtractBoundary(b *testing.B) {
	p := Params{SubgridSize: 8, Fields: 4}
	p.fillDefaults()
	st := newLeafState(p, &Leaf{Morton: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.extractBoundary(p, i%6)
	}
}
