package octotiger

import (
	"fmt"
	"sort"
)

// Adaptive regridding. Real Octo-Tiger periodically re-adapts its octree to
// the evolving solution and re-partitions the new leaves over localities —
// a phase that reshuffles the communication pattern underneath the
// parcelport. The proxy refines any leaf whose field variance exceeds a
// threshold (up to MaxLevel), prolongates the parent data onto the eight
// children mass-conservatively, and rebuilds the Morton partition.

// refinementIndicator scores a leaf by the variance of its first field.
func (st *leafState) refinementIndicator() float64 {
	f := st.fields[0]
	var mean float64
	for _, v := range f {
		mean += v
	}
	mean /= float64(len(f))
	var acc float64
	for _, v := range f {
		d := v - mean
		acc += d * d
	}
	return acc / float64(len(f))
}

// prolong builds the eight children states of a refined leaf: each child
// upsamples one parent octant, scaled so the children's total mass equals
// the parent's.
func prolong(p Params, parent *leafState) []*leafState {
	s := p.SubgridSize
	children := make([]*leafState, 8)
	for ci := range children {
		st := &leafState{potential: make([]float64, s*s*s)}
		st.fields = make([][]float64, len(parent.fields))
		ox := (ci & 1) * s / 2
		oy := (ci >> 1 & 1) * s / 2
		oz := (ci >> 2 & 1) * s / 2
		for k := range st.fields {
			st.fields[k] = make([]float64, s*s*s)
			for z := 0; z < s; z++ {
				for y := 0; y < s; y++ {
					for x := 0; x < s; x++ {
						// Each parent octant cell maps to 2x2x2 child cells;
						// dividing by 8 conserves the total.
						px := ox + x/2
						py := oy + y/2
						pz := oz + z/2
						st.fields[k][x+s*(y+s*z)] = parent.fields[k][px+s*(py+s*pz)] / 8
					}
				}
			}
		}
		children[ci] = st
	}
	return children
}

// Regrid refines every leaf whose indicator exceeds threshold (and is below
// MaxLevel), rebuilds neighbours and the Morton partition, and migrates leaf
// state. Returns the number of leaves refined.
func (a *App) Regrid(threshold float64) (int, error) {
	type newLeaf struct {
		level   int
		x, y, z uint32
		state   *leafState
	}
	var out []newLeaf
	refined := 0
	for _, lf := range a.tree.Leaves {
		st := a.states[lf.Index]
		if lf.Level < a.p.MaxLevel && st.refinementIndicator() > threshold {
			refined++
			children := prolong(a.p, st)
			for ci, cst := range children {
				dx := uint32(ci & 1)
				dy := uint32(ci >> 1 & 1)
				dz := uint32(ci >> 2 & 1)
				out = append(out, newLeaf{
					level: lf.Level + 1,
					x:     lf.X<<1 | dx, y: lf.Y<<1 | dy, z: lf.Z<<1 | dz,
					state: cst,
				})
			}
		} else {
			out = append(out, newLeaf{level: lf.Level, x: lf.X, y: lf.Y, z: lf.Z, state: st})
		}
	}
	if refined == 0 {
		return 0, nil
	}

	// Rebuild the tree structures around the new leaf set.
	t := &Tree{Params: a.p, index: make(map[cellKey]int)}
	t.Leaves = make([]*Leaf, len(out))
	states := make([]*leafState, len(out))
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	mortonOf := func(nl newLeaf) uint64 {
		shift := uint(a.p.MaxLevel - nl.level)
		return MortonEncode(nl.x<<shift, nl.y<<shift, nl.z<<shift)
	}
	sort.Slice(order, func(i, j int) bool { return mortonOf(out[order[i]]) < mortonOf(out[order[j]]) })
	for rank, oi := range order {
		nl := out[oi]
		t.Leaves[rank] = &Leaf{
			Index: rank, Level: nl.level, X: nl.x, Y: nl.y, Z: nl.z,
			Morton: mortonOf(nl),
		}
		states[rank] = nl.state
		if _, dup := t.index[cellKey{nl.level, nl.x, nl.y, nl.z}]; dup {
			return 0, fmt.Errorf("octotiger: regrid produced duplicate cell (%d,%d,%d,%d)", nl.level, nl.x, nl.y, nl.z)
		}
		t.index[cellKey{nl.level, nl.x, nl.y, nl.z}] = rank
	}
	n := len(t.Leaves)
	for i, lf := range t.Leaves {
		lf.Owner = i * a.rt.Localities() / n
	}
	deltas := [6][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}
	for _, lf := range t.Leaves {
		for f, d := range deltas {
			lf.Neighbors[f] = t.findNeighbor(lf, d)
		}
	}
	a.tree = t
	a.states = states
	return refined, nil
}
